// Classroom: "students without access to a parallel platform could execute
// applications in simulation on a single node as a way to learn the
// principles of parallel programming" (paper, Section 1). This example
// studies the strong scaling of two very different applications — LU's
// tightly coupled wavefront vs CG's reduction-heavy iterations — entirely
// on the local machine, and also shows how the legacy MSG backend distorts
// the picture.
package main

import (
	"fmt"
	"log"

	"tireplay"
)

func main() {
	fmt.Println("Strong scaling study, simulated on one node")
	fmt.Println()

	plat := func(n int) *tireplay.Platform {
		p, _, err := tireplay.Cluster(tireplay.ClusterSpec{
			Name: "class", Hosts: n, Speed: 2.5e9,
			LinkBandwidth: 1.25e8, LinkLatency: 2.5e-5,
			BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	fmt.Printf("%6s | %12s %10s | %12s %10s\n", "procs", "LU A (s)", "speedup", "CG A (s)", "speedup")
	fmt.Println("--------------------------------------------------------------")
	var luBase, cgBase float64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		lu, err := tireplay.NewLU(tireplay.ClassA, n, 10)
		if err != nil {
			log.Fatal(err)
		}
		cg, err := tireplay.NewCG(tireplay.ClassA, n, 2)
		if err != nil {
			log.Fatal(err)
		}
		luRes, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat(n), tireplay.ReplayConfig{})
		if err != nil {
			log.Fatal(err)
		}
		cgRes, err := tireplay.Replay(tireplay.PerfectTrace(cg), plat(n), tireplay.ReplayConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if n == 1 {
			luBase, cgBase = luRes.SimulatedTime, cgRes.SimulatedTime
		}
		fmt.Printf("%6d | %12.3f %9.2fx | %12.3f %9.2fx\n",
			n, luRes.SimulatedTime, luBase/luRes.SimulatedTime,
			cgRes.SimulatedTime, cgBase/cgRes.SimulatedTime)
	}

	// Lesson two: the backend matters. Replay the same LU A-16 trace with
	// the accurate SMPI backend and the crude MSG prototype.
	fmt.Println()
	lu, err := tireplay.NewLU(tireplay.ClassA, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	smpi, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat(16), tireplay.ReplayConfig{Backend: tireplay.SMPI})
	if err != nil {
		log.Fatal(err)
	}
	lu, _ = tireplay.NewLU(tireplay.ClassA, 16, 10)
	msg, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat(16), tireplay.ReplayConfig{
		Backend: tireplay.MSG,
		MSG:     tireplay.MSGConfig{RefLatency: 6.5e-5, RefBandwidth: 1.25e8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same LU A-16 trace: SMPI backend %.3f s, legacy MSG backend %.3f s (%+.1f%%)\n",
		smpi.SimulatedTime, msg.SimulatedTime,
		100*(msg.SimulatedTime-smpi.SimulatedTime)/smpi.SimulatedTime)
	fmt.Println("the MSG prototype cannot model eager-mode overlap, so it overestimates")
}
