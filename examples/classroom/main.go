// Classroom: "students without access to a parallel platform could execute
// applications in simulation on a single node as a way to learn the
// principles of parallel programming" (paper, Section 1). This example
// studies the strong scaling of two very different applications — LU's
// tightly coupled wavefront vs CG's reduction-heavy iterations — entirely
// on the local machine, and also shows how the legacy MSG backend distorts
// the picture.
//
// The whole study is one declarative scenario batch: {LU, CG} x process
// counts plus the two backend variants, replayed concurrently on a worker
// pool.
package main

import (
	"context"
	"fmt"
	"log"

	"tireplay"
)

func platSpec(n int) *tireplay.PlatformSpec {
	return &tireplay.PlatformSpec{
		Name: "class", Topology: "flat", Hosts: n, Speed: 2.5e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2.5e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

func main() {
	fmt.Println("Strong scaling study, simulated on one node")
	fmt.Println()

	// Lesson one: strong scaling. Declare the {LU, CG} x procs grid.
	counts := []int{1, 2, 4, 8, 16, 32}
	var scenarios []*tireplay.Scenario
	for _, n := range counts {
		scenarios = append(scenarios,
			&tireplay.Scenario{
				Name:     fmt.Sprintf("lu-%d", n),
				Platform: platSpec(n),
				Workload: &tireplay.WorkloadSpec{Benchmark: "lu", Class: "A", Procs: n, Iterations: 10},
			},
			&tireplay.Scenario{
				Name:     fmt.Sprintf("cg-%d", n),
				Platform: platSpec(n),
				Workload: &tireplay.WorkloadSpec{Benchmark: "cg", Class: "A", Procs: n, Iterations: 2},
			})
	}
	// Lesson two: the backend matters. The same LU A-16 workload under the
	// accurate SMPI backend and the crude MSG prototype, in the same batch.
	luA16 := &tireplay.WorkloadSpec{Benchmark: "lu", Class: "A", Procs: 16, Iterations: 10}
	scenarios = append(scenarios,
		&tireplay.Scenario{
			Name: "lu-16-smpi", Platform: platSpec(16), Workload: luA16,
			Backend: "smpi",
		},
		&tireplay.Scenario{
			Name: "lu-16-msg", Platform: platSpec(16), Workload: luA16,
			Backend: "msg",
			MSG:     tireplay.MSGPrototypeConfig(),
		})

	results, err := tireplay.RunScenarios(context.Background(), scenarios,
		tireplay.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	byName := make(map[string]*tireplay.ReplayResult, len(results))
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		byName[r.Scenario.Name] = r.Replay
	}

	fmt.Printf("%6s | %12s %10s | %12s %10s\n", "procs", "LU A (s)", "speedup", "CG A (s)", "speedup")
	fmt.Println("--------------------------------------------------------------")
	luBase := byName["lu-1"].SimulatedTime
	cgBase := byName["cg-1"].SimulatedTime
	for _, n := range counts {
		lu := byName[fmt.Sprintf("lu-%d", n)].SimulatedTime
		cg := byName[fmt.Sprintf("cg-%d", n)].SimulatedTime
		fmt.Printf("%6d | %12.3f %9.2fx | %12.3f %9.2fx\n",
			n, lu, luBase/lu, cg, cgBase/cg)
	}

	fmt.Println()
	smpi := byName["lu-16-smpi"].SimulatedTime
	msg := byName["lu-16-msg"].SimulatedTime
	fmt.Printf("same LU A-16 trace: SMPI backend %.3f s, legacy MSG backend %.3f s (%+.1f%%)\n",
		smpi, msg, 100*(msg-smpi)/smpi)
	fmt.Println("the MSG prototype cannot model eager-mode overlap, so it overestimates")
}
