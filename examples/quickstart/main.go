// Quickstart: generate a small LU trace, write it to disk in the
// time-independent text format, load it back, and replay it on a simulated
// 8-node cluster — the minimal end-to-end tour of the framework.
package main

import (
	"fmt"
	"log"
	"os"

	"tireplay"
)

func main() {
	// 1. A workload: NAS LU, class S, 8 processes, 10 SSOR iterations.
	lu, err := tireplay.NewLU(tireplay.ClassS, 8, 10)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Its time-independent trace (volumes only, no timestamps).
	actions, err := tireplay.Materialize(tireplay.PerfectTrace(lu))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "tireplay-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	desc, err := tireplay.WriteTraces(dir, "lu_s8", actions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace description written to", desc)

	// 3. Load it back and sanity-check it.
	prov, err := tireplay.LoadTraces(desc, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := tireplay.ValidateTraces(prov); err != nil {
		log.Fatal(err)
	}
	stats, err := tireplay.CollectTraceStats(prov, 65536)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d ranks, %.3g instructions, %d p2p messages (%d eager)\n",
		stats.Ranks, stats.Instructions, stats.P2PMessages, stats.EagerMessages)

	// 4. Describe the target platform: 8 nodes at 2 Ginstr/s behind a
	// gigabit switch.
	plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
		Name: "target", Hosts: 8, Speed: 2e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Replay: the trace must be re-opened since streams are one-shot.
	prov, err = tireplay.LoadTraces(desc, 8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tireplay.Replay(prov, plat, tireplay.ReplayConfig{Backend: tireplay.SMPI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted execution time: %.4f s (replayed %d actions in %v)\n",
		res.SimulatedTime, res.Actions, res.Wall)
}
