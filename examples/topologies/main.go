// Topology dimensioning: the purchase question the topology zoo exists to
// answer — for a fixed 64-node budget, does the expected workload run
// faster on a fat tree or on a dragonfly, and does the dragonfly need
// Valiant spreading? Each candidate interconnect is one whole-platform
// value on a single sweep axis, so the comparison is pure configuration:
// same workload, same NIC speeds, different "topology" stanza in the
// platform spec.
package main

import (
	"context"
	"fmt"
	"log"

	"tireplay"
)

const procs = 64

func main() {
	// Shared NIC parameters; only the interconnect stanza varies.
	nic := map[string]any{
		"platform.speed":          2.0e9,
		"platform.link_bandwidth": 1.25e9,
		"platform.link_latency":   1.0e-6,
	}

	// The candidates, each a whole "platform" object: a 2-level radix-8
	// fat tree, a 4x4x4 dragonfly routed minimally and adaptively, and an
	// 8x8 torus as the low-cable-count baseline.
	candidates := []struct {
		label    string
		cables   int // switch-to-switch cables, the cost driver
		platform map[string]any
	}{
		{"fat tree 8-ary 2-tree", 2 * procs, map[string]any{
			"name": "ft", "topology": "fattree", "radix": 8, "levels": 2,
			"backbone_bandwidth": 5.0e9, "backbone_latency": 2.0e-6,
		}},
		{"dragonfly 4x4x4 minimal", 4*4*3 + 4*3, map[string]any{
			"name": "df-min", "topology": "dragonfly",
			"groups": 4, "routers_per_group": 4, "hosts_per_router": 4,
			"routing":         "minimal",
			"local_bandwidth": 5.0e9, "local_latency": 2.0e-6,
			"global_bandwidth": 1.0e10, "global_latency": 1.0e-5,
		}},
		{"dragonfly 4x4x4 adaptive", 4*4*3 + 4*3, map[string]any{
			"name": "df-ad", "topology": "dragonfly",
			"groups": 4, "routers_per_group": 4, "hosts_per_router": 4,
			"routing":         "adaptive",
			"local_bandwidth": 5.0e9, "local_latency": 2.0e-6,
			"global_bandwidth": 1.0e10, "global_latency": 1.0e-5,
		}},
		{"torus 8x8", 2 * 2 * procs, map[string]any{
			"name": "tor", "topology": "torus", "torus_dims": []any{8, 8},
			"backbone_bandwidth": 5.0e9, "backbone_latency": 2.0e-6,
		}},
	}

	values := make([]any, len(candidates))
	labels := make([]string, len(candidates))
	for i, c := range candidates {
		v := map[string]any{"platform": c.platform}
		for k, nv := range nic {
			v[k] = nv
		}
		values[i] = v
		labels[i] = c.label
	}

	sw := &tireplay.Sweep{
		Name: "topologies",
		Base: tireplay.Scenario{
			// The base platform is immediately overridden by the axis; it
			// only has to be valid.
			Platform: &tireplay.PlatformSpec{
				Name: "base", Topology: "crossbar", Hosts: procs, Speed: 2.0e9,
				LinkBandwidth: 1.25e9, LinkLatency: 1.0e-6,
			},
			Workload: &tireplay.WorkloadSpec{
				Benchmark: "cg", Class: "A", Procs: procs, Iterations: 8,
			},
		},
		NameFormat: "{interconnect}",
		Axes: []tireplay.SweepAxis{
			{Name: "interconnect", Values: values, Labels: labels},
		},
	}

	results, err := tireplay.CollectSweep(context.Background(), sw,
		tireplay.WithSweepWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CG A-%d on 64-node interconnect candidates\n\n", procs)
	fmt.Printf("%-26s | %9s | %6s | %s\n", "interconnect", "predicted", "cables", "s*cables")
	fmt.Println("-------------------------------------------------------------")
	best, bestScore := "", 0.0
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		// Crude cost-effectiveness: predicted seconds times cable count.
		score := r.Replay.SimulatedTime * float64(candidates[i].cables)
		fmt.Printf("%-26s | %8.3fs | %6d | %8.1f\n",
			candidates[i].label, r.Replay.SimulatedTime, candidates[i].cables, score)
		if best == "" || score < bestScore {
			best, bestScore = candidates[i].label, score
		}
	}
	fmt.Printf("\nmost cable-effective interconnect: %s\n", best)
}
