// LU prediction: the paper's headline scenario end to end. Acquire a trace
// of NAS LU on the emulated graphene cluster with minimal instrumentation,
// calibrate the simulator cache-awarely, replay with the SMPI backend, and
// compare the prediction to the emulated "real" execution — reporting the
// same relative error Figures 6/7 plot.
package main

import (
	"fmt"
	"log"

	"tireplay"
)

const iters = 10 // reduced SSOR iterations; errors are iteration-invariant

func main() {
	cluster := tireplay.Graphene()
	fmt.Printf("target cluster: %s (%d nodes, L2 %d KiB)\n",
		cluster.Name, cluster.Hosts, int(cluster.L2Bytes/1024))

	// Calibrate once: A-4 plus class rates (Section 3.4 of the paper).
	cal, err := tireplay.CalibrateCacheAware(cluster, []tireplay.NPBClass{tireplay.ClassB}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated rates: A-4 %.3g instr/s, B-4 %.3g instr/s\n",
		cal.ARate, cal.ClassRates[tireplay.ClassB])

	for _, procs := range []int{8, 16, 32, 64} {
		lu, err := tireplay.NewLU(tireplay.ClassB, procs, iters)
		if err != nil {
			log.Fatal(err)
		}

		// "Real" execution of the original (-O3, uninstrumented) binary.
		real, err := cluster.Run(lu, cluster.InstrConfig(
			tireplay.Uninstrumented, tireplay.CompileO3, tireplay.ClassB))
		if err != nil {
			log.Fatal(err)
		}

		// Acquisition run with minimal instrumentation.
		trace, err := tireplay.AcquiredTrace(lu, cluster.InstrConfig(
			tireplay.MinimalInstrumentation, tireplay.CompileO3, tireplay.ClassB))
		if err != nil {
			log.Fatal(err)
		}

		// Target platform with the calibrated rate; the SMPI replay gets
		// the cluster's network model but (faithfully to the paper-era
		// SMPI) no eager memcpy model.
		plat, model, err := cluster.Platform(procs)
		if err != nil {
			log.Fatal(err)
		}
		plat.SetSpeed(cal.RateFor(lu, tireplay.ClassB))
		replayMPI := cluster.MPI
		replayMPI.MemcpyBandwidth, replayMPI.MemcpyLatency = 0, 0

		res, err := tireplay.Replay(trace, plat, tireplay.ReplayConfig{
			Backend: tireplay.SMPI,
			Network: model,
			MPI:     replayMPI,
		})
		if err != nil {
			log.Fatal(err)
		}

		errPct := 100 * (res.SimulatedTime - real.Time) / real.Time
		fmt.Printf("LU B-%-3d real %8.3f s  predicted %8.3f s  error %+5.1f%%  (replay: %v)\n",
			procs, real.Time, res.SimulatedTime, errPct, res.Wall.Round(1e6))
	}
}
