// Dimensioning: the use case the paper's introduction motivates — "when a
// platform is yet to be specified and purchased, simulations can be used to
// determine a cost-effective hardware configuration appropriate for the
// expected application workload". One LU C-32 trace is replayed on a grid
// of hypothetical platforms (CPU speed x network generation) to find the
// cheapest configuration meeting a time budget.
package main

import (
	"fmt"
	"log"

	"tireplay"
)

const (
	procs      = 32
	iters      = 10
	timeBudget = 4.0 // seconds, for the reduced-iteration instance
)

type network struct {
	name     string
	linkBw   float64
	linkLat  float64
	backbone float64
	price    float64 // per node, arbitrary units
}

func main() {
	lu, err := tireplay.NewLU(tireplay.ClassC, procs, iters)
	if err != nil {
		log.Fatal(err)
	}

	networks := []network{
		{"1 GbE", 1.25e8, 3.0e-5, 1.25e9, 1.0},
		{"10 GbE", 1.25e9, 1.2e-5, 1.25e10, 2.5},
		{"IB QDR", 4.0e9, 2.0e-6, 4.0e10, 4.0},
	}
	speeds := []struct {
		name  string
		rate  float64
		price float64
	}{
		{"2.0 GHz", 2.0e9, 3},
		{"2.6 GHz", 2.6e9, 4},
		{"3.3 GHz", 3.3e9, 6},
	}

	fmt.Printf("LU C-%d, %d iterations, budget %.1f s\n\n", procs, iters, timeBudget)
	fmt.Printf("%-10s | %-8s | %9s | %7s | %s\n", "network", "cpu", "predicted", "price", "verdict")
	fmt.Println("------------------------------------------------------------")

	bestPrice, bestDesc := 0.0, ""
	for _, nw := range networks {
		for _, cpu := range speeds {
			plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
				Name: "candidate", Hosts: procs, Speed: cpu.rate,
				LinkBandwidth: nw.linkBw, LinkLatency: nw.linkLat,
				BackboneBandwidth: nw.backbone, BackboneLatency: 1e-6,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat,
				tireplay.ReplayConfig{Backend: tireplay.SMPI})
			if err != nil {
				log.Fatal(err)
			}
			price := float64(procs) * (nw.price + cpu.price)
			verdict := "over budget"
			if res.SimulatedTime <= timeBudget {
				verdict = "OK"
				if bestDesc == "" || price < bestPrice {
					bestPrice, bestDesc = price, nw.name+" + "+cpu.name
				}
			}
			fmt.Printf("%-10s | %-8s | %8.2fs | %7.0f | %s\n",
				nw.name, cpu.name, res.SimulatedTime, price, verdict)
		}
	}
	if bestDesc == "" {
		fmt.Println("\nno configuration meets the budget")
		return
	}
	fmt.Printf("\ncheapest configuration within budget: %s (price %.0f)\n", bestDesc, bestPrice)
}
