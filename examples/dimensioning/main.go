// Dimensioning: the use case the paper's introduction motivates — "when a
// platform is yet to be specified and purchased, simulations can be used to
// determine a cost-effective hardware configuration appropriate for the
// expected application workload". One LU C-32 workload is replayed on a
// grid of hypothetical platforms (CPU speed x network generation) to find
// the cheapest configuration meeting a time budget.
//
// The grid is declared as a batch of scenarios and executed concurrently on
// a worker pool: each replay is single-threaded and independent, so the
// sweep parallelizes perfectly while every prediction stays deterministic.
package main

import (
	"context"
	"fmt"
	"log"

	"tireplay"
)

const (
	procs      = 32
	iters      = 10
	timeBudget = 4.0 // seconds, for the reduced-iteration instance
)

type network struct {
	name     string
	linkBw   float64
	linkLat  float64
	backbone float64
	price    float64 // per node, arbitrary units
}

type candidate struct {
	network network
	cpuName string
	price   float64
}

func main() {
	networks := []network{
		{"1 GbE", 1.25e8, 3.0e-5, 1.25e9, 1.0},
		{"10 GbE", 1.25e9, 1.2e-5, 1.25e10, 2.5},
		{"IB QDR", 4.0e9, 2.0e-6, 4.0e10, 4.0},
	}
	speeds := []struct {
		name  string
		rate  float64
		price float64
	}{
		{"2.0 GHz", 2.0e9, 3},
		{"2.6 GHz", 2.6e9, 4},
		{"3.3 GHz", 3.3e9, 6},
	}

	// Declare the whole candidate grid as scenarios.
	var scenarios []*tireplay.Scenario
	var candidates []candidate
	for _, nw := range networks {
		for _, cpu := range speeds {
			scenarios = append(scenarios, &tireplay.Scenario{
				Name: nw.name + " + " + cpu.name,
				Platform: &tireplay.PlatformSpec{
					Name: "candidate", Topology: "flat", Hosts: procs, Speed: cpu.rate,
					LinkBandwidth: nw.linkBw, LinkLatency: nw.linkLat,
					BackboneBandwidth: nw.backbone, BackboneLatency: 1e-6,
				},
				Workload: &tireplay.WorkloadSpec{
					Benchmark: "lu", Class: "C", Procs: procs, Iterations: iters,
				},
			})
			candidates = append(candidates, candidate{
				network: nw,
				cpuName: cpu.name,
				price:   float64(procs) * (nw.price + cpu.price),
			})
		}
	}

	// Replay the grid on 4 workers; results come back in input order.
	results, err := tireplay.RunScenarios(context.Background(), scenarios,
		tireplay.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LU C-%d, %d iterations, budget %.1f s (grid of %d candidates on 4 workers)\n\n",
		procs, iters, timeBudget, len(scenarios))
	fmt.Printf("%-10s | %-8s | %9s | %7s | %s\n", "network", "cpu", "predicted", "price", "verdict")
	fmt.Println("------------------------------------------------------------")

	bestPrice, bestDesc := 0.0, ""
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		c := candidates[i]
		verdict := "over budget"
		if r.Replay.SimulatedTime <= timeBudget {
			verdict = "OK"
			if bestDesc == "" || c.price < bestPrice {
				bestPrice, bestDesc = c.price, r.Scenario.Name
			}
		}
		fmt.Printf("%-10s | %-8s | %8.2fs | %7.0f | %s\n",
			c.network.name, c.cpuName, r.Replay.SimulatedTime, c.price, verdict)
	}
	if bestDesc == "" {
		fmt.Println("\nno configuration meets the budget")
		return
	}
	fmt.Printf("\ncheapest configuration within budget: %s (price %.0f)\n", bestDesc, bestPrice)
}
