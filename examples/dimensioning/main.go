// Dimensioning: the use case the paper's introduction motivates — "when a
// platform is yet to be specified and purchased, simulations can be used to
// determine a cost-effective hardware configuration appropriate for the
// expected application workload". One LU C-32 workload is replayed on a
// grid of hypothetical platforms (CPU speed x network generation) to find
// the cheapest configuration meeting a time budget.
//
// The grid is one declarative Sweep — a base scenario plus a network axis
// and a CPU axis — instead of hand-written nested loops. Results stream in
// as each candidate's replay completes, and a JSONL sink could persist
// them; here we collect and rank them.
package main

import (
	"context"
	"fmt"
	"log"

	"tireplay"
)

const (
	procs      = 32
	iters      = 10
	timeBudget = 4.0 // seconds, for the reduced-iteration instance
)

// Per-node prices (arbitrary units), keyed by the axis value labels.
var (
	networkPrice = map[string]float64{"1 GbE": 1.0, "10 GbE": 2.5, "IB QDR": 4.0}
	cpuPrice     = map[string]float64{"2.0 GHz": 3, "2.6 GHz": 4, "3.3 GHz": 6}
)

func main() {
	// The candidate grid: every network generation crossed with every CPU
	// speed, declared as two sweep axes over one base scenario.
	sw := &tireplay.Sweep{
		Name: "dimensioning",
		Base: tireplay.Scenario{
			Platform: &tireplay.PlatformSpec{
				Name: "candidate", Topology: "flat", Hosts: procs, Speed: 2.0e9,
				LinkBandwidth: 1.25e8, LinkLatency: 3.0e-5,
				BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
			},
			Workload: &tireplay.WorkloadSpec{
				Benchmark: "lu", Class: "C", Procs: procs, Iterations: iters,
			},
		},
		NameFormat: "{network} + {cpu}",
		Axes: []tireplay.SweepAxis{
			{Name: "network", Values: []any{
				map[string]any{"platform.link_bandwidth": 1.25e8, "platform.link_latency": 3.0e-5, "platform.backbone_bandwidth": 1.25e9},
				map[string]any{"platform.link_bandwidth": 1.25e9, "platform.link_latency": 1.2e-5, "platform.backbone_bandwidth": 1.25e10},
				map[string]any{"platform.link_bandwidth": 4.0e9, "platform.link_latency": 2.0e-6, "platform.backbone_bandwidth": 4.0e10},
			}, Labels: []string{"1 GbE", "10 GbE", "IB QDR"}},
			{Name: "cpu", Path: "platform.speed", Values: []any{2.0e9, 2.6e9, 3.3e9},
				Labels: []string{"2.0 GHz", "2.6 GHz", "3.3 GHz"}},
		},
	}

	// Replay the grid on 4 workers; Collect returns results in grid order.
	results, err := tireplay.CollectSweep(context.Background(), sw,
		tireplay.WithSweepWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LU C-%d, %d iterations, budget %.1f s (grid of %d candidates on 4 workers)\n\n",
		procs, iters, timeBudget, len(results))
	fmt.Printf("%-10s | %-8s | %9s | %7s | %s\n", "network", "cpu", "predicted", "price", "verdict")
	fmt.Println("------------------------------------------------------------")

	bestPrice, bestDesc := 0.0, ""
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		network := r.Point.Labels["network"]
		cpu := r.Point.Labels["cpu"]
		price := procs * (networkPrice[network] + cpuPrice[cpu])
		verdict := "over budget"
		if r.Replay.SimulatedTime <= timeBudget {
			verdict = "OK"
			if bestDesc == "" || price < bestPrice {
				bestPrice, bestDesc = price, r.Point.Scenario.Name
			}
		}
		fmt.Printf("%-10s | %-8s | %8.2fs | %7.0f | %s\n",
			network, cpu, r.Replay.SimulatedTime, price, verdict)
	}
	if bestDesc == "" {
		fmt.Println("\nno configuration meets the budget")
		return
	}
	fmt.Printf("\ncheapest configuration within budget: %s (price %.0f)\n", bestDesc, bestPrice)
}
