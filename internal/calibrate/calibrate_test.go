package calibrate

import (
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/npb"
)

const calIters = 5

func TestMeasureRateNearBase(t *testing.T) {
	// A-4 is cache-resident on bordereau: the measured rate must be close
	// to (and, because of comm pollution and jitter, not far above) the
	// cluster's base rate. Fine instrumentation inflates counters, so the
	// classic procedure may overestimate slightly.
	b := ground.Bordereau()
	rate, err := MeasureRate(b, npb.ClassA,
		instrument.Config{Mode: instrument.Minimal, Compile: instrument.O3}, calIters)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.85*b.BaseRate || rate > 1.1*b.BaseRate {
		t.Fatalf("A-4 rate = %.3g, want within ~10%% of base %.3g", rate, b.BaseRate)
	}
}

func TestClassicA4OverestimatesViaInflation(t *testing.T) {
	// The classic procedure divides *fine-instrumented* counters by the
	// (slower) instrumented run time; inflation and overhead partially
	// cancel, keeping the rate plausible.
	b := ground.Bordereau()
	rate, err := ClassicA4(b, calIters)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.8*b.BaseRate || rate > 1.25*b.BaseRate {
		t.Fatalf("classic rate = %.3g, implausible vs base %.3g", rate, b.BaseRate)
	}
}

func TestCacheAwareRatesOrdering(t *testing.T) {
	// On bordereau, B-4 and C-4 spill out of L2: their measured rates must
	// be clearly below the A-4 (in-cache) rate — the phenomenon Section 3.4
	// exists to capture.
	b := ground.Bordereau()
	ca, err := NewCacheAware(b, []npb.Class{npb.ClassB, npb.ClassC}, calIters)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []npb.Class{npb.ClassB, npb.ClassC} {
		if ca.ClassRates[class] >= 0.97*ca.ARate {
			t.Fatalf("class %s rate %.4g not below A rate %.4g", class, ca.ClassRates[class], ca.ARate)
		}
	}
}

func TestCacheAwareGrapheneDegradesToClassic(t *testing.T) {
	// On graphene every calibration instance fits the 2 MB L2 except C-4;
	// for all studied instances (which are cache-resident) RateFor must
	// return the A rate, i.e. "calibrating with a run of the A-4 instance
	// is then enough".
	g := ground.Graphene()
	ca, err := NewCacheAware(g, []npb.Class{npb.ClassB}, calIters)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{8, 64, 128} {
		lu, err := npb.NewLU(npb.ClassB, procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rate := ca.RateFor(lu, npb.ClassB); rate != ca.ARate {
			t.Fatalf("B-%d on graphene: rate %.4g != A rate %.4g", procs, rate, ca.ARate)
		}
	}
}

func TestRateForSelectsByWorkingSet(t *testing.T) {
	b := ground.Bordereau()
	ca, err := NewCacheAware(b, []npb.Class{npb.ClassC}, calIters)
	if err != nil {
		t.Fatal(err)
	}
	// C-8 spills on bordereau: class rate. C-64 fits: A rate.
	c8, _ := npb.NewLU(npb.ClassC, 8, 1)
	c64, _ := npb.NewLU(npb.ClassC, 64, 1)
	if ca.RateFor(c8, npb.ClassC) != ca.ClassRates[npb.ClassC] {
		t.Fatal("C-8 should use the class rate on bordereau")
	}
	if ca.RateFor(c64, npb.ClassC) != ca.ARate {
		t.Fatal("C-64 should use the A rate on bordereau")
	}
}

func TestRateForUnknownClassFallsBack(t *testing.T) {
	ca := &CacheAware{ARate: 100, ClassRates: map[npb.Class]float64{}, L2Bytes: 1}
	lu, _ := npb.NewLU(npb.ClassB, 4, 1) // working set > 1 byte
	if rate := ca.RateFor(lu, npb.ClassB); rate != 100 {
		t.Fatalf("fallback rate = %v, want ARate", rate)
	}
}
