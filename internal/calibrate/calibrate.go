// Package calibrate implements the two calibration procedures of the paper:
// the original one — derive a single instruction rate from a run of the A-4
// instance (Section 2.3) — and the cache-aware one of Section 3.4, which
// additionally runs B-4 and C-4 on the same four cores and selects, per
// simulated instance, the rate of its class when the instance's data does
// not fit in the L2 cache.
//
// A calibration run measures what a user of the real framework measures:
// the hardware counter total of an instrumented run divided by its
// wall-clock time. The quotient is polluted by communication wait and by
// the instrumentation itself — realistic imperfections the paper's analysis
// attributes part of the replay error to.
package calibrate

import (
	"fmt"

	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/npb"
	"tireplay/internal/stats"
)

// calibrationProcs is the number of processes calibration runs use; the
// paper fixes it at four ("using only as few resources as four cores did
// not raise any issue").
const calibrationProcs = 4

// MeasureRate runs the class-4 LU instance on the cluster with the given
// acquisition configuration and returns instructions-per-second as a user
// of the real framework measures it: mean per-rank counter total divided by
// mean per-rank *exclusive application time* (TAU's profile separates time
// spent inside MPI from time spent computing, so the quotient is not
// polluted by communication waits — but it is still distorted by counter
// inflation, probe time and machine jitter, which is part of what the
// paper's accuracy analysis observes). iterations>0 shortens the run
// (rates converge after a few iterations).
func MeasureRate(c *ground.Cluster, class npb.Class, icfg instrument.Config, iterations int) (float64, error) {
	lu, err := npb.NewLU(class, calibrationProcs, iterations)
	if err != nil {
		return 0, err
	}
	icfg.Class = class
	run, err := c.Run(lu, icfg)
	if err != nil {
		return 0, err
	}
	counters, err := instrument.Counters(lu, icfg)
	if err != nil {
		return 0, err
	}
	mean, err := stats.Mean(counters)
	if err != nil {
		return 0, err
	}
	busy, err := stats.Mean(run.ComputeSeconds)
	if err != nil {
		return 0, err
	}
	if busy <= 0 {
		return 0, fmt.Errorf("calibrate: %s %s-4 run has no compute time", c.Name, class)
	}
	return mean / busy, nil
}

// ClassicA4 is the first implementation's procedure: one rate, measured on
// the A-4 instance. It combines the instruction total of the *fine-grain
// instrumented* acquisition run with the compute time of the *original*
// execution — the only two measurements the first tool chain collected.
// Because fine-grain probes inflate the counter by 10-13% (Section 2.2),
// the quotient overestimates the machine's true rate; Section 2.4 points at
// exactly this: the counter discrepancy "directly impacts the calibration
// of the replay tool that determines the rate at which each machine can
// process instructions", which is why the first implementation
// underestimates execution times at small process counts. Being
// cache-resident, A-4 additionally hides the slower out-of-cache regime
// (Section 2.3).
func ClassicA4(c *ground.Cluster, iterations int) (float64, error) {
	lu, err := npb.NewLU(npb.ClassA, calibrationProcs, iterations)
	if err != nil {
		return 0, err
	}
	orig, err := c.Run(lu, instrument.Config{Mode: instrument.None, Compile: instrument.O0, Class: npb.ClassA})
	if err != nil {
		return 0, err
	}
	counters, err := instrument.Counters(lu, instrument.Config{Mode: instrument.Fine, Compile: instrument.O0, Class: npb.ClassA})
	if err != nil {
		return 0, err
	}
	meanInstr, err := stats.Mean(counters)
	if err != nil {
		return 0, err
	}
	busy, err := stats.Mean(orig.ComputeSeconds)
	if err != nil {
		return 0, err
	}
	if busy <= 0 {
		return 0, fmt.Errorf("calibrate: %s A-4 original run has no compute time", c.Name)
	}
	return meanInstr / busy, nil
}

// CacheAware is the improved procedure of Section 3.4: per-class rates from
// A-4, B-4 and C-4 runs under the new acquisition settings (minimal
// instrumentation, -O3), selected per instance by comparing its working set
// to the cluster's L2 capacity.
type CacheAware struct {
	// ARate is the in-cache reference rate (from A-4).
	ARate float64
	// ClassRates holds the per-class rates measured at 4 processes.
	ClassRates map[npb.Class]float64
	// L2Bytes is the capacity the working-set test uses.
	L2Bytes float64
}

// NewCacheAware runs the calibration instances (A-4 always; each class in
// classes additionally) and returns the rate table. On clusters whose L2
// holds every class at four processes, all rates converge to the A-4 rate
// and the procedure gracefully degrades to the classic one — exactly the
// graphene situation described in Section 3.4.
func NewCacheAware(c *ground.Cluster, classes []npb.Class, iterations int) (*CacheAware, error) {
	aRate, err := MeasureRate(c, npb.ClassA,
		c.InstrConfig(instrument.Minimal, instrument.O3, npb.ClassA), iterations)
	if err != nil {
		return nil, err
	}
	ca := &CacheAware{
		ARate:      aRate,
		ClassRates: make(map[npb.Class]float64, len(classes)),
		L2Bytes:    c.L2Bytes,
	}
	for _, class := range classes {
		rate, err := MeasureRate(c, class,
			c.InstrConfig(instrument.Minimal, instrument.O3, class), iterations)
		if err != nil {
			return nil, err
		}
		ca.ClassRates[class] = rate
	}
	return ca, nil
}

// RateFor selects the rate for an instance: the class rate when any rank's
// working set exceeds L2 (the instance runs in the slow regime the class-4
// calibration captured), the A-4 rate otherwise.
func (ca *CacheAware) RateFor(w npb.Workload, class npb.Class) float64 {
	outOfCache := false
	for r := 0; r < w.Ranks(); r++ {
		if w.WorkingSet(r) > ca.L2Bytes {
			outOfCache = true
			break
		}
	}
	if outOfCache {
		if rate, ok := ca.ClassRates[class]; ok {
			return rate
		}
	}
	return ca.ARate
}
