package scenario

import (
	"context"
	"strings"
	"testing"

	"tireplay/internal/platform"
)

// topoSpecs returns 16-host zoo platforms as Spec JSON — the scenario layer
// never names the new constructors, proving topology selection is pure
// configuration.
func topoSpecs(t *testing.T) map[string]*platform.Spec {
	t.Helper()
	specs := map[string]string{
		"fattree": `{
			"name": "ft", "topology": "fattree", "radix": 4, "levels": 2,
			"speed": 1e9,
			"link_bandwidth": 1.25e8, "link_latency": 2e-5,
			"backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6
		}`,
		"dragonfly": `{
			"name": "df", "topology": "dragonfly",
			"groups": 2, "routers_per_group": 2, "hosts_per_router": 4,
			"routing": "adaptive", "speed": 1e9,
			"link_bandwidth": 1.25e8, "link_latency": 2e-5,
			"local_bandwidth": 1.25e9, "local_latency": 1e-6,
			"global_bandwidth": 2.5e9, "global_latency": 1e-5
		}`,
		"torus": `{
			"name": "tor", "topology": "torus", "torus_dims": [4, 4],
			"speed": 1e9,
			"link_bandwidth": 1.25e8, "link_latency": 2e-5,
			"backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6
		}`,
	}
	out := make(map[string]*platform.Spec, len(specs))
	for name, js := range specs {
		spec, err := platform.ReadSpec(strings.NewReader(js))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = spec
	}
	return out
}

// TestTopologySchedulerBackendParity replays the same workload on every zoo
// topology under both backends and both schedulers and requires the
// goroutine and continuation runs to be bit-identical — simulated time,
// action count, and every kernel counter.
func TestTopologySchedulerBackendParity(t *testing.T) {
	for name, spec := range topoSpecs(t) {
		for _, backend := range []string{"smpi", "msg"} {
			t.Run(name+"/"+backend, func(t *testing.T) {
				run := func(goroutines bool) *Scenario {
					s := &Scenario{
						Name:     name,
						Platform: spec,
						Workload: &WorkloadSpec{Benchmark: "cg", Class: "S", Procs: 16, Iterations: 2},
						Backend:  backend,
					}
					s.GoroutineProcs = goroutines
					if backend == "msg" {
						s.MSG.RefLatency, s.MSG.RefBandwidth = 6.5e-5, 1.25e8
					}
					return s
				}
				cont, err := run(false).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				goro, err := run(true).Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if cont.SimulatedTime <= 0 || cont.Actions <= 0 {
					t.Fatalf("degenerate result: %+v", cont)
				}
				if cont.SimulatedTime != goro.SimulatedTime {
					t.Fatalf("schedulers disagree: continuation %v, goroutine %v",
						cont.SimulatedTime, goro.SimulatedTime)
				}
				if cont.Actions != goro.Actions {
					t.Fatalf("action counts disagree: %d vs %d", cont.Actions, goro.Actions)
				}
				if cont.Engine != goro.Engine {
					t.Fatalf("engine stats disagree:\ncontinuation %+v\ngoroutine    %+v",
						cont.Engine, goro.Engine)
				}
			})
		}
	}
}

// TestTopologyRoutingModesDiverge pins that the dragonfly routing knob
// reaches the simulation: valiant detours cross more cable than minimal
// routes, so the predicted time must differ.
func TestTopologyRoutingModesDiverge(t *testing.T) {
	run := func(routing string) float64 {
		spec := &platform.Spec{
			Name: "df", Topology: "dragonfly",
			Groups: 4, RoutersPerGroup: 2, HostsPerRouter: 2,
			Routing: routing, Speed: 1e9,
			LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
			LocalBandwidth: 1.25e9, LocalLatency: 1e-6,
			GlobalBandwidth: 2.5e9, GlobalLatency: 1e-5,
		}
		s := &Scenario{
			Name:     "df-" + routing,
			Platform: spec,
			Workload: &WorkloadSpec{Benchmark: "cg", Class: "S", Procs: 16, Iterations: 2},
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	min, val := run("minimal"), run("valiant")
	if min == val {
		t.Fatalf("minimal and valiant routing predicted identical times (%v); routing knob ignored?", min)
	}
}

// TestTopologyRankCountMismatch: replaying more ranks than the derived
// shape provides fails at build time with the structured platform error.
func TestTopologyRankCountMismatch(t *testing.T) {
	spec := &platform.Spec{
		Name: "ft", Topology: "fattree", Radix: 2, Levels: 2, Hosts: 16,
		Speed: 1e9, LinkBandwidth: 1.25e8, BackboneBandwidth: 1.25e9,
	}
	s := &Scenario{
		Name:     "mismatch",
		Platform: spec,
		Workload: &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 16},
	}
	_, err := s.Run(context.Background())
	if err == nil {
		t.Fatal("expected rank-count mismatch error")
	}
	if !strings.Contains(err.Error(), `"hosts"`) {
		t.Fatalf("error %q does not name the hosts field", err)
	}
}
