// Package scenario is the declarative layer over the replay engine: a
// Scenario is a JSON-serializable description of one simulation — target
// platform, trace source, backend, and model knobs — that can be validated,
// stored, shipped, and executed. It is the unit of work the batch runner
// (package runner) schedules, which is how the paper's large evaluation
// grids ({LU,CG} x classes x process counts x backends x platforms) are
// expressed in this codebase.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"tireplay/internal/core"
	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

// WorkloadSpec selects an NPB workload model as the trace source: the
// replay then consumes the workload's perfect (distortion-free) trace, or,
// with an AcquisitionSpec, the trace an instrumented run would record.
type WorkloadSpec struct {
	// Benchmark is "lu", "cg", "ep", "mg", "bt", "sp", or "ft".
	Benchmark string `json:"benchmark"`
	// Class is the NPB problem class letter ("S", "W", "A", "B", "C", "D").
	Class string `json:"class"`
	// Procs is the number of MPI processes.
	Procs int `json:"procs"`
	// Iterations reduces the iteration count (0 selects the class default
	// where the benchmark has one; EP ignores it).
	Iterations int `json:"iterations,omitempty"`
}

// Build materializes the workload model.
func (w *WorkloadSpec) Build() (npb.Workload, error) {
	class, err := npb.ParseClass(w.Class)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(w.Benchmark) {
	case "lu":
		return npb.NewLU(class, w.Procs, w.Iterations)
	case "cg":
		return npb.NewCG(class, w.Procs, w.Iterations)
	case "ep":
		return npb.NewEP(class, w.Procs)
	case "mg":
		return npb.NewMG(class, w.Procs, w.Iterations)
	case "bt":
		return npb.NewBT(class, w.Procs, w.Iterations)
	case "sp":
		return npb.NewSP(class, w.Procs, w.Iterations)
	case "ft":
		return npb.NewFT(class, w.Procs, w.Iterations)
	default:
		return nil, fmt.Errorf("scenario: unknown benchmark %q (want lu, cg, ep, mg, bt, sp, or ft)", w.Benchmark)
	}
}

// AcquisitionSpec asks for the workload's *acquired* trace: the one an
// instrumented run would record, with the counter inflation of the chosen
// instrumentation mode (the paper's acquisition study, Sections 2.2/3.2).
type AcquisitionSpec struct {
	// Mode is "coarse", "minimal", or "fine".
	Mode string `json:"mode"`
	// Compile is "O0" or "O3" (a leading dash is accepted).
	Compile string `json:"compile"`
	// Cluster optionally names an emulated ground-truth cluster
	// ("bordereau" or "graphene") whose measured instrumentation costs and
	// -O3 factors parameterize the acquisition.
	Cluster string `json:"cluster,omitempty"`
}

func (a *AcquisitionSpec) config(class npb.Class) (instrument.Config, error) {
	var mode instrument.Mode
	switch strings.ToLower(a.Mode) {
	case "coarse":
		mode = instrument.Coarse
	case "minimal":
		mode = instrument.Minimal
	case "fine":
		mode = instrument.Fine
	default:
		return instrument.Config{}, fmt.Errorf("scenario: unknown instrumentation mode %q (want coarse, minimal, or fine)", a.Mode)
	}
	var compile instrument.Compile
	switch strings.TrimPrefix(strings.ToUpper(a.Compile), "-") {
	case "O0", "":
		compile = instrument.O0
	case "O3":
		compile = instrument.O3
	default:
		return instrument.Config{}, fmt.Errorf("scenario: unknown compile level %q (want O0 or O3)", a.Compile)
	}
	switch strings.ToLower(a.Cluster) {
	case "":
		return instrument.Config{Mode: mode, Compile: compile, Class: class}, nil
	case "bordereau":
		return ground.Bordereau().InstrConfig(mode, compile, class), nil
	case "graphene":
		return ground.Graphene().InstrConfig(mode, compile, class), nil
	default:
		return instrument.Config{}, fmt.Errorf("scenario: unknown cluster %q (want bordereau or graphene)", a.Cluster)
	}
}

// Scenario is one declarative replay description. Exactly one platform
// source and exactly one trace source must be set. The zero knobs select
// the accurate defaults (SMPI backend, platform factors as network model).
type Scenario struct {
	// Name labels the scenario in results and observer events.
	Name string `json:"name,omitempty"`

	// Platform sources (exactly one):

	// Platform is an inline serializable platform description.
	Platform *platform.Spec `json:"platform,omitempty"`
	// PlatformFile is the path of a JSON platform description.
	PlatformFile string `json:"platform_file,omitempty"`
	// Plat is a prebuilt platform, for programmatic use (not serialized).
	// Scenarios sharing one *Platform must not run concurrently; the runner
	// gives each scenario its own build when Platform/PlatformFile is used.
	Plat *platform.Platform `json:"-"`

	// HostSpeed, when positive, overrides the platform's compute rate —
	// typically with a calibrated value (Sections 2.3/3.4).
	HostSpeed float64 `json:"host_speed,omitempty"`

	// Trace sources (exactly one):

	// TraceDesc is the path of a trace-description file.
	TraceDesc string `json:"trace_desc,omitempty"`
	// Workload generates the trace from an NPB workload model.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Provider is a prebuilt trace source, for programmatic use (not
	// serialized).
	Provider trace.Provider `json:"-"`

	// Ranks is the rank count served from a merged (single-file) trace
	// description; 0 defaults to the platform's host count. Ignored for the
	// other sources.
	Ranks int `json:"ranks,omitempty"`

	// TraceCache controls the compiled binary trace cache for TraceDesc
	// sources. "auto" (the default) compiles the trace set into a sibling
	// .tib file keyed by the sources' mtime/size and replays from it,
	// falling back to text parsing if the cache cannot be built or read;
	// "on" requires the cache and fails otherwise; "off" always parses
	// text. A TraceDesc that already points at a .tib file is replayed
	// from it directly regardless of this knob.
	TraceCache string `json:"trace_cache,omitempty"`

	// TraceFormat selects a foreign trace importer for the TraceDesc path:
	// the name of a registered importer ("dumpi", "tau", ...), or "auto" to
	// sniff the format from the files. Empty means TraceDesc is a native
	// trace description (or .tib). Foreign dumps are converted in memory on
	// every run; compile them to .tib (tireplay -import -compile) for
	// repeated replays.
	TraceFormat string `json:"trace_format,omitempty"`

	// ImportRate converts CPU seconds into instruction volumes when an
	// imported dump carries no hardware instruction counter. Zero selects
	// the importer default (1e9). Only meaningful with TraceFormat.
	ImportRate float64 `json:"import_rate,omitempty"`

	// Acquisition, with Workload, replays the instrumented acquisition's
	// trace instead of the perfect one.
	Acquisition *AcquisitionSpec `json:"acquisition,omitempty"`

	// Backend names the registered replay backend; "" selects SMPI.
	Backend string `json:"backend,omitempty"`
	// GoroutineProcs replays on the legacy goroutine-per-rank scheduler
	// instead of continuation state machines. Simulated results are
	// bit-identical; the knob exists for differential testing.
	GoroutineProcs bool `json:"goroutine_procs,omitempty"`
	// MPI configures the SMPI backend's communication model.
	MPI mpi.ModelConfig `json:"mpi,omitempty"`
	// MSG configures the legacy backend.
	MSG msgreplay.Config `json:"msg,omitempty"`

	// Network overrides the network model, for programmatic use (not
	// serialized). When nil, the platform's piece-wise factors (if any)
	// are installed.
	Network sim.NetworkModel `json:"-"`
	// NoNetworkFactors suppresses the platform's piece-wise-linear factors
	// for this replay (the legacy MSG prototype was factor-free).
	NoNetworkFactors bool `json:"no_network_factors,omitempty"`

	// HostMapping maps rank i to host HostMapping[i] of the platform; empty
	// maps rank i to host i.
	HostMapping []int `json:"host_mapping,omitempty"`

	// ValidateTrace cross-validates the trace (matched sends/receives,
	// balanced collectives) before replaying.
	ValidateTrace bool `json:"validate_trace,omitempty"`
}

// Validate checks the scenario's structural consistency without touching
// the filesystem or building anything expensive.
func (s *Scenario) Validate() error {
	nplat := 0
	if s.Platform != nil {
		nplat++
	}
	if s.PlatformFile != "" {
		nplat++
	}
	if s.Plat != nil {
		nplat++
	}
	if nplat != 1 {
		return fmt.Errorf("scenario %s: want exactly one platform source (Platform, PlatformFile, or Plat), have %d", s.label(), nplat)
	}

	ntrace := 0
	if s.TraceDesc != "" {
		ntrace++
	}
	if s.Workload != nil {
		ntrace++
	}
	if s.Provider != nil {
		ntrace++
	}
	if ntrace != 1 {
		return fmt.Errorf("scenario %s: want exactly one trace source (TraceDesc, Workload, or Provider), have %d", s.label(), ntrace)
	}

	if s.Acquisition != nil {
		if s.Workload == nil {
			return fmt.Errorf("scenario %s: Acquisition requires a Workload trace source", s.label())
		}
		class, err := npb.ParseClass(s.Workload.Class)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.label(), err)
		}
		if _, err := s.Acquisition.config(class); err != nil {
			return fmt.Errorf("scenario %s: %w", s.label(), err)
		}
	}
	if s.Workload != nil {
		if s.Workload.Procs <= 0 {
			return fmt.Errorf("scenario %s: workload needs a positive process count, got %d", s.label(), s.Workload.Procs)
		}
		if _, err := npb.ParseClass(s.Workload.Class); err != nil {
			return fmt.Errorf("scenario %s: %w", s.label(), err)
		}
		switch strings.ToLower(s.Workload.Benchmark) {
		case "lu", "cg", "ep", "mg", "bt", "sp", "ft":
		default:
			return fmt.Errorf("scenario %s: unknown benchmark %q (want lu, cg, ep, mg, bt, sp, or ft)", s.label(), s.Workload.Benchmark)
		}
	}

	if _, err := core.Lookup(s.Backend); err != nil {
		return fmt.Errorf("scenario %s: %w", s.label(), err)
	}

	switch strings.ToLower(s.TraceCache) {
	case "", "auto", "on", "off":
	default:
		return fmt.Errorf("scenario %s: unknown trace cache mode %q (want auto, on, or off)", s.label(), s.TraceCache)
	}
	if s.TraceCache != "" && s.TraceDesc == "" {
		return fmt.Errorf("scenario %s: TraceCache requires a TraceDesc trace source", s.label())
	}

	if s.TraceFormat != "" {
		if s.TraceDesc == "" {
			return fmt.Errorf("scenario %s: TraceFormat requires a TraceDesc trace source", s.label())
		}
		if name := strings.ToLower(s.TraceFormat); name != "auto" {
			if _, ok := trace.LookupImporter(name); !ok {
				return fmt.Errorf("scenario %s: unknown trace format %q (registered: %v)", s.label(), s.TraceFormat, trace.Importers())
			}
		}
	}
	if s.ImportRate < 0 {
		return fmt.Errorf("scenario %s: negative import rate %g", s.label(), s.ImportRate)
	}
	if s.ImportRate > 0 && s.TraceFormat == "" {
		return fmt.Errorf("scenario %s: ImportRate is only meaningful with TraceFormat", s.label())
	}

	for i, h := range s.HostMapping {
		if h < 0 {
			return fmt.Errorf("scenario %s: host mapping entry %d is negative (%d)", s.label(), i, h)
		}
	}
	if s.HostSpeed < 0 {
		return fmt.Errorf("scenario %s: negative host speed %g", s.label(), s.HostSpeed)
	}
	if s.Network != nil && s.NoNetworkFactors {
		return fmt.Errorf("scenario %s: Network and NoNetworkFactors are mutually exclusive", s.label())
	}
	return nil
}

func (s *Scenario) label() string {
	if s.Name != "" {
		return fmt.Sprintf("%q", s.Name)
	}
	return "(unnamed)"
}

// buildPlatform materializes the platform source and its piece-wise network
// model (nil when the source has no factors or a prebuilt Plat is used).
func (s *Scenario) buildPlatform() (*platform.Platform, sim.NetworkModel, error) {
	switch {
	case s.Plat != nil:
		return s.Plat, nil, nil
	case s.Platform != nil:
		p, m, err := s.Platform.Build()
		if err != nil {
			return nil, nil, err
		}
		if m == nil {
			return p, nil, nil
		}
		return p, m, nil
	default:
		spec, err := platform.LoadSpec(s.PlatformFile)
		if err != nil {
			return nil, nil, err
		}
		p, m, err := spec.Build()
		if err != nil {
			return nil, nil, err
		}
		if m == nil {
			return p, nil, nil
		}
		return p, m, nil
	}
}

// provider materializes the trace source. defaultRanks is the merged-trace
// rank count used when Ranks is unset (TraceDesc source only) — the
// platform's host count, matching how smpirun infers -np from the hostfile.
// owned reports whether the scenario opened the provider itself and must
// close it after the replay (user-supplied Providers stay the caller's to
// close).
func (s *Scenario) provider(defaultRanks int) (prov trace.Provider, owned bool, err error) {
	switch {
	case s.Provider != nil:
		return s.Provider, false, nil
	case s.Workload != nil:
		w, err := s.Workload.Build()
		if err != nil {
			return nil, false, err
		}
		if s.Acquisition == nil {
			return npb.AsProvider(w), false, nil
		}
		class, err := npb.ParseClass(s.Workload.Class)
		if err != nil {
			return nil, false, err
		}
		cfg, err := s.Acquisition.config(class)
		if err != nil {
			return nil, false, err
		}
		return instrument.Acquired{W: w, Cfg: cfg}, false, nil
	default:
		if s.TraceFormat != "" {
			p, err := trace.Import(strings.ToLower(s.TraceFormat), s.TraceDesc,
				trace.ImportOptions{InstructionRate: s.ImportRate})
			return p, false, err
		}
		ranks := s.Ranks
		if ranks == 0 {
			ranks = defaultRanks
		}
		if trace.SniffTIB(s.TraceDesc) {
			p, err := trace.OpenTIB(s.TraceDesc)
			return p, err == nil, err
		}
		switch strings.ToLower(s.TraceCache) {
		case "off":
			p, err := trace.LoadDescription(s.TraceDesc, ranks)
			return p, false, err
		case "on":
			p, err := trace.OpenDescriptionCached(s.TraceDesc, ranks, 0)
			return p, err == nil, err
		default: // "auto": compiled cache with transparent text fallback
			if p, err := trace.OpenDescriptionCached(s.TraceDesc, ranks, 0); err == nil {
				return p, true, nil
			}
			p, err := trace.LoadDescription(s.TraceDesc, ranks)
			return p, false, err
		}
	}
}

// CompileTraceCache ensures the scenario's compiled binary trace cache (a
// sibling .tib of its TraceDesc) exists and is fresh, without replaying.
// It is a no-op (returning "", false, nil) when the scenario has no
// cacheable source: TraceCache "off", a TraceDesc already pointing at a
// .tib, or a Workload/Provider source. The sweep layer calls it once per
// distinct trace set before fanning a grid onto the worker pool, so the
// scenarios of a sweep share one compile instead of racing to rebuild the
// same cache concurrently.
func (s *Scenario) CompileTraceCache() (tibPath string, rebuilt bool, err error) {
	if s.TraceDesc == "" || s.TraceFormat != "" || strings.ToLower(s.TraceCache) == "off" || trace.SniffTIB(s.TraceDesc) {
		return "", false, nil
	}
	ranks := s.Ranks
	if ranks == 0 {
		plat, _, err := s.buildPlatform()
		if err != nil {
			return "", false, err
		}
		ranks = plat.Size()
	}
	return trace.CompileDescription(s.TraceDesc, ranks, 0)
}

// Run validates and executes the scenario. Cancellation is checked before
// the (single-threaded, typically sub-second) replay starts; a ctx that
// expires mid-replay does not interrupt it.
func (s *Scenario) Run(ctx context.Context) (*core.Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	plat, model, err := s.buildPlatform()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: building platform: %w", s.label(), err)
	}
	if s.HostSpeed > 0 {
		plat.SetSpeed(s.HostSpeed)
	}

	prov, owned, err := s.provider(plat.Size())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: building trace source: %w", s.label(), err)
	}
	if owned {
		// The compiled .tib cache provider holds a file descriptor.
		if c, ok := prov.(io.Closer); ok {
			defer c.Close()
		}
	}
	if s.ValidateTrace {
		if err := trace.Validate(prov); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.label(), err)
		}
	}

	cfg := core.Config{
		Backend:        s.Backend,
		MPI:            s.MPI,
		MSG:            s.MSG,
		GoroutineProcs: s.GoroutineProcs,
	}
	switch {
	case s.Network != nil:
		cfg.Network = s.Network
	case s.NoNetworkFactors:
		cfg.Network = nil
	default:
		cfg.Network = model
	}
	if len(s.HostMapping) > 0 {
		all := plat.Hosts()
		hosts := make([]*sim.Host, len(s.HostMapping))
		for i, h := range s.HostMapping {
			if h >= len(all) {
				return nil, fmt.Errorf("scenario %s: host mapping entry %d (%d) out of range [0,%d)", s.label(), i, h, len(all))
			}
			hosts[i] = all[h]
		}
		cfg.Hosts = hosts
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := core.Replay(prov, plat, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.label(), err)
	}
	return res, nil
}

// ReadAll decodes a JSON array of scenarios from r.
func ReadAll(r io.Reader) ([]*Scenario, error) {
	var out []*Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("scenario: decoding: %w", err)
	}
	return out, nil
}

// Load reads a JSON scenario array from a file.
func Load(path string) ([]*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// WriteAll encodes scenarios as indented JSON to w.
func WriteAll(w io.Writer, scenarios []*Scenario) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(scenarios)
}
