package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"tireplay/internal/core"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

func flatSpec(hosts int) *platform.Spec {
	return &platform.Spec{
		Name: "test", Topology: "flat", Hosts: hosts, Speed: 1e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

func luScenario(procs int) *Scenario {
	return &Scenario{
		Name:     "lu",
		Platform: flatSpec(procs),
		Workload: &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: procs, Iterations: 2},
	}
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
	}{
		{"empty", &Scenario{}},
		{"no trace source", &Scenario{Platform: flatSpec(4)}},
		{"two trace sources", &Scenario{
			Platform:  flatSpec(4),
			TraceDesc: "x.desc",
			Workload:  &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
		}},
		{"two platform sources", &Scenario{
			Platform: flatSpec(4), PlatformFile: "p.json",
			Workload: &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
		}},
		{"unknown backend", &Scenario{
			Platform: flatSpec(4),
			Workload: &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
			Backend:  "no-such-backend",
		}},
		{"unknown benchmark", &Scenario{
			Platform: flatSpec(4),
			Workload: &WorkloadSpec{Benchmark: "is", Class: "S", Procs: 4},
		}},
		{"trace format without desc", &Scenario{
			Platform:    flatSpec(4),
			Workload:    &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
			TraceFormat: "dumpi",
		}},
		{"unknown trace format", &Scenario{
			Platform:    flatSpec(4),
			TraceDesc:   "x.desc",
			TraceFormat: "no-such-format",
		}},
		{"bad class", &Scenario{
			Platform: flatSpec(4),
			Workload: &WorkloadSpec{Benchmark: "lu", Class: "Z", Procs: 4},
		}},
		{"acquisition without workload", &Scenario{
			Platform:    flatSpec(4),
			TraceDesc:   "x.desc",
			Acquisition: &AcquisitionSpec{Mode: "minimal", Compile: "O3"},
		}},
		{"bad acquisition mode", &Scenario{
			Platform:    flatSpec(4),
			Workload:    &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
			Acquisition: &AcquisitionSpec{Mode: "nope", Compile: "O3"},
		}},
		{"negative mapping", &Scenario{
			Platform:    flatSpec(4),
			Workload:    &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
			HostMapping: []int{0, -1, 2, 3},
		}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid scenario", tc.name)
		}
	}
	if err := luScenario(4).Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestRunWorkloadScenario(t *testing.T) {
	res, err := luScenario(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 || res.Actions <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestRunMSGBackendScenario(t *testing.T) {
	s := luScenario(4)
	s.Backend = "msg"
	s.MSG.RefLatency, s.MSG.RefBandwidth = 6.5e-5, 1.25e8
	msg, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	smpi, err := luScenario(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.SimulatedTime == smpi.SimulatedTime {
		t.Fatal("msg and smpi backends predicted identical times; backend knob ignored?")
	}
}

func TestRunTraceFileScenario(t *testing.T) {
	// Round-trip: generate, write, replay from disk via the scenario.
	lu, err := npb.NewLU(npb.ClassS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var perRank [][]trace.Action
	for r := 0; r < 4; r++ {
		st, err := npb.AsProvider(lu).Rank(r)
		if err != nil {
			t.Fatal(err)
		}
		var acts []trace.Action
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			acts = append(acts, a)
		}
		perRank = append(perRank, acts)
	}
	dir := t.TempDir()
	desc, err := trace.WriteSet(dir, "lu_s4", perRank)
	if err != nil {
		t.Fatal(err)
	}

	s := &Scenario{
		Platform:      flatSpec(4),
		TraceDesc:     desc,
		ValidateTrace: true,
	}
	fromFile, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fromWorkload, err := luScenario(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fromFile.SimulatedTime != fromWorkload.SimulatedTime {
		t.Fatalf("file replay %v != workload replay %v",
			fromFile.SimulatedTime, fromWorkload.SimulatedTime)
	}
}

func TestMergedTraceRanksDefaultToPlatformSize(t *testing.T) {
	// A single-entry description serves all ranks from one merged trace;
	// with Ranks unset the platform's host count must be used (the smpirun
	// -np inference), not a single unfiltered rank.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "merged.trace"),
		[]byte("p0 compute 1000\np0 send p1 1240\np1 recv p0 1240\np1 compute 500\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "merged.desc"), []byte("merged.trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Scenario{
		Platform:  flatSpec(2),
		TraceDesc: filepath.Join(dir, "merged.desc"),
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions != 4 {
		t.Fatalf("replayed %d actions, want 4 (both ranks served from the merged trace)", res.Actions)
	}
}

func TestRunPlatformFileScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plat.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.WriteSpec(f, flatSpec(4)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := luScenario(4)
	s.Platform, s.PlatformFile = nil, path
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestRunAcquiredScenarioSlower(t *testing.T) {
	// The instrumented acquisition inflates compute volumes, so its replay
	// must predict a strictly larger time than the perfect trace's.
	perfect, err := luScenario(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := luScenario(4)
	s.Acquisition = &AcquisitionSpec{Mode: "fine", Compile: "O0", Cluster: "graphene"}
	acquired, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if acquired.SimulatedTime <= perfect.SimulatedTime {
		t.Fatalf("acquired replay %v <= perfect replay %v",
			acquired.SimulatedTime, perfect.SimulatedTime)
	}
}

func TestRunHostMapping(t *testing.T) {
	// Map 2 ranks onto hosts 0 and 3 of a larger platform.
	s := &Scenario{
		Platform: flatSpec(8),
		Provider: trace.NewMemProvider([][]trace.Action{
			{{Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 1e6}},
			{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 1e6}},
		}),
		HostMapping: []int{0, 3},
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.HostMapping = []int{0, 99}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("out-of-range host mapping accepted")
	}
}

func TestNoNetworkFactors(t *testing.T) {
	withFactors := func(nn bool) *Scenario {
		spec := flatSpec(2)
		spec.Factors = []platform.SegmentSpec{
			{MaxBytes: 65536, LatFactor: 3, BwFactor: 0.3},
			{MaxBytes: 0, LatFactor: 2, BwFactor: 0.5},
		}
		return &Scenario{
			Platform:         spec,
			NoNetworkFactors: nn,
			Provider: trace.NewMemProvider([][]trace.Action{
				{{Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 1e6}},
				{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 1e6}},
			}),
		}
	}
	factored, err := withFactors(false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := withFactors(true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if factored.SimulatedTime <= plain.SimulatedTime {
		t.Fatalf("factors had no effect: %v vs %v", factored.SimulatedTime, plain.SimulatedTime)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := luScenario(4).Run(ctx); err == nil {
		t.Fatal("cancelled context not honoured")
	}
}

func TestHostSpeedOverride(t *testing.T) {
	slow := luScenario(4)
	slow.HostSpeed = 1e8
	fast := luScenario(4)
	fast.HostSpeed = 1e10
	sres, err := slow.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fast.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sres.SimulatedTime <= fres.SimulatedTime {
		t.Fatalf("slower hosts predicted faster execution: %v vs %v",
			sres.SimulatedTime, fres.SimulatedTime)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []*Scenario{
		{
			Name:     "lu-b8-smpi",
			Platform: flatSpec(8),
			Workload: &WorkloadSpec{Benchmark: "lu", Class: "B", Procs: 8, Iterations: 5},
			Backend:  "smpi",
		},
		{
			Name:        "cg-a16-msg",
			Platform:    flatSpec(16),
			Workload:    &WorkloadSpec{Benchmark: "cg", Class: "A", Procs: 16, Iterations: 5},
			Backend:     "msg",
			HostMapping: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost scenarios: %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || out[i].Backend != in[i].Backend {
			t.Fatalf("scenario %d metadata lost: %+v", i, out[i])
		}
		if *out[i].Workload != *in[i].Workload {
			t.Fatalf("scenario %d workload lost: %+v", i, out[i].Workload)
		}
		if out[i].Platform.Hosts != in[i].Platform.Hosts {
			t.Fatalf("scenario %d platform lost: %+v", i, out[i].Platform)
		}
		if err := out[i].Validate(); err != nil {
			t.Fatalf("scenario %d invalid after round trip: %v", i, err)
		}
	}
	// Decoded scenarios must actually run.
	res, err := out[0].Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time")
	}
}

// TestStrictDecodingNamesOffendingField: a typoed knob anywhere in a
// scenario file — top level or inside a nested config — must fail loudly
// with an error naming the field, never silently select defaults.
func TestStrictDecodingNamesOffendingField(t *testing.T) {
	cases := []struct {
		json, field string
	}{
		{`[{"bckend": "smpi"}]`, "bckend"},
		{`[{"workload": {"benchmark": "lu", "class": "S", "prcs": 4}}]`, "prcs"},
		{`[{"mpi": {"eager_treshold": 1024}}]`, "eager_treshold"},
		{`[{"msg": {"ref_lat": 1e-5}}]`, "ref_lat"},
		{`[{"platform": {"topology": "flat", "hosts": 4, "sped": 1e9}}]`, "sped"},
	}
	for _, tc := range cases {
		_, err := ReadAll(bytes.NewReader([]byte(tc.json)))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.json)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(tc.field)) {
			t.Errorf("%s: error %v does not name field %q", tc.json, err, tc.field)
		}
	}
}

func TestLoadScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(path, []byte(`[
	  {
	    "name": "quick",
	    "platform": {"name": "c", "topology": "flat", "hosts": 4, "speed": 1e9,
	      "link_bandwidth": 1.25e8, "link_latency": 2e-5,
	      "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
	    "workload": {"benchmark": "cg", "class": "S", "procs": 4, "iterations": 2}
	  }
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	scenarios, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 1 {
		t.Fatalf("loaded %d scenarios, want 1", len(scenarios))
	}
	res, err := scenarios[0].Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no simulated time")
	}
}

// The compiled binary trace cache must be bit-identical to text replay:
// same simulated time, same action count — the cache is an ingestion
// optimization, never a model change.
func TestTraceCacheModesBitIdentical(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	perRank := make([][]trace.Action, 4)
	for r := 0; r < 4; r++ {
		st, err := npb.AsProvider(lu).Rank(r)
		if err != nil {
			t.Fatal(err)
		}
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			perRank[r] = append(perRank[r], a)
		}
	}
	dir := t.TempDir()
	desc, err := trace.WriteSet(dir, "lu_s4", perRank)
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode string) *core.Result {
		t.Helper()
		s := &Scenario{
			Platform:   flatSpec(4),
			TraceDesc:  desc,
			TraceCache: mode,
		}
		res, err := s.Run(context.Background())
		if err != nil {
			t.Fatalf("mode %q: %v", mode, err)
		}
		return res
	}

	text := run("off")
	if _, err := os.Stat(desc + trace.TIBExt); err == nil {
		t.Fatal("TraceCache off still wrote a .tib cache")
	}
	compiled := run("on")
	if _, err := os.Stat(desc + trace.TIBExt); err != nil {
		t.Fatalf("TraceCache on did not write the sibling cache: %v", err)
	}
	auto := run("auto")

	if compiled.SimulatedTime != text.SimulatedTime || auto.SimulatedTime != text.SimulatedTime {
		t.Fatalf("simulated times diverge: text %v, on %v, auto %v",
			text.SimulatedTime, compiled.SimulatedTime, auto.SimulatedTime)
	}
	if compiled.Actions != text.Actions || auto.Actions != text.Actions {
		t.Fatalf("action counts diverge: text %d, on %d, auto %d",
			text.Actions, compiled.Actions, auto.Actions)
	}
}

// A TraceDesc pointing directly at a compiled .tib file (tracegen -tib
// output) must replay without any description file.
func TestTraceDescAcceptsTIBDirectly(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var perRank [][]trace.Action
	for r := 0; r < 4; r++ {
		st, err := npb.AsProvider(lu).Rank(r)
		if err != nil {
			t.Fatal(err)
		}
		var acts []trace.Action
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			acts = append(acts, a)
		}
		perRank = append(perRank, acts)
	}
	tibPath := filepath.Join(t.TempDir(), "lu_s4.tib")
	if err := trace.WriteTIBFile(tibPath, perRank); err != nil {
		t.Fatal(err)
	}

	s := &Scenario{Platform: flatSpec(4), TraceDesc: tibPath}
	direct, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fromWorkload, err := luScenario(4).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if direct.SimulatedTime != fromWorkload.SimulatedTime {
		t.Fatalf("direct .tib replay %v != workload replay %v",
			direct.SimulatedTime, fromWorkload.SimulatedTime)
	}
}

func TestValidateTraceCacheKnob(t *testing.T) {
	bad := &Scenario{Platform: flatSpec(4), TraceDesc: "x.desc", TraceCache: "maybe"}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown trace cache mode")
	}
	wrongSource := &Scenario{
		Platform:   flatSpec(4),
		Workload:   &WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4},
		TraceCache: "on",
	}
	if err := wrongSource.Validate(); err == nil {
		t.Fatal("Validate accepted TraceCache without a TraceDesc source")
	}
	for _, mode := range []string{"", "auto", "on", "off"} {
		s := &Scenario{Platform: flatSpec(4), TraceDesc: "x.desc", TraceCache: mode}
		if err := s.Validate(); err != nil {
			t.Fatalf("mode %q rejected: %v", mode, err)
		}
	}
}
