package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes sweep results as they complete. Sinks are driven from the
// consuming goroutine (never concurrently); a sink error aborts the sweep
// — silently dropping results would defeat the point of streaming them.
type Sink interface {
	Write(*Record) error
}

// JSONLSink writes one JSON Record per line — the streaming counterpart
// of the result store, readable back with ReadRecords.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink wraps w as a JSON-lines sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write emits one record as a JSON line.
func (s *JSONLSink) Write(rec *Record) error {
	return s.enc.Encode(rec)
}

// CSVSink writes results as CSV rows: the fixed result columns plus one
// column per named axis (filled with the point's value labels). Rows are
// flushed as they are written, so a killed sweep leaves every completed
// row on disk.
type CSVSink struct {
	w           *csv.Writer
	axes        []string
	wroteHeader bool
}

// NewCSVSink wraps w as a CSV sink with one extra column per axis name.
func NewCSVSink(w io.Writer, axes ...string) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w), axes: axes}
}

// Write emits one record as a CSV row (preceded by the header row on
// first use).
func (s *CSVSink) Write(rec *Record) error {
	if !s.wroteHeader {
		header := append([]string{"index", "name", "fingerprint", "cached"}, s.axes...)
		header = append(header, "simulated_time", "actions", "wall_seconds", "error")
		if err := s.w.Write(header); err != nil {
			return fmt.Errorf("sweep: csv sink: %w", err)
		}
		s.wroteHeader = true
	}
	row := []string{
		strconv.Itoa(rec.Index),
		rec.Name,
		rec.Fingerprint,
		strconv.FormatBool(rec.Cached),
	}
	for _, a := range s.axes {
		row = append(row, rec.Labels[a])
	}
	if rec.Replay != nil {
		row = append(row,
			strconv.FormatFloat(rec.Replay.SimulatedTime, 'g', -1, 64),
			strconv.FormatInt(rec.Replay.Actions, 10),
			strconv.FormatFloat(rec.Replay.Wall.Seconds(), 'g', -1, 64))
	} else {
		row = append(row, "", "", "")
	}
	row = append(row, rec.Err)
	if err := s.w.Write(row); err != nil {
		return fmt.Errorf("sweep: csv sink: %w", err)
	}
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		return fmt.Errorf("sweep: csv sink: %w", err)
	}
	return nil
}
