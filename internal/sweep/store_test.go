package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"tireplay/internal/core"
)

// fakeFingerprint derives a stable fake fingerprint for test records.
func fakeFingerprint(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("store-test-%d", i)))
	return hex.EncodeToString(sum[:])
}

// fakeRecord builds the canonical record every writer of fingerprint i
// produces — content-addressed, so concurrent writers race benignly.
func fakeRecord(i int) *Record {
	return &Record{
		Fingerprint: fakeFingerprint(i),
		Replay:      &core.Result{SimulatedTime: float64(i) * 1.25, Actions: int64(i)},
	}
}

// TestStoreConcurrentAccess hammers one directory through two Store
// handles (simulating two processes sharing it, as the sweep service
// does) with overlapping Put/Get of the same fingerprints. Run under
// -race; asserts no lost, torn, or cross-keyed records.
func TestStoreConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir) // second handle on the same directory
	if err != nil {
		t.Fatal(err)
	}

	const fps = 8
	const goroutines = 16
	const rounds = 40

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := st1
			if g%2 == 1 {
				st = st2
			}
			for r := 0; r < rounds; r++ {
				i := (g + r) % fps
				if (g+r)%3 == 0 {
					// Reader: a record is either absent or exactly right.
					rec, err := st.Get(fakeFingerprint(i))
					if err != nil {
						errc <- fmt.Errorf("goroutine %d: get %d: %w", g, i, err)
						return
					}
					if rec != nil && (rec.Replay == nil || rec.Replay.SimulatedTime != float64(i)*1.25) {
						errc <- fmt.Errorf("goroutine %d: get %d returned corrupt record %+v", g, i, rec)
						return
					}
				} else {
					if err := st.Put(fakeRecord(i)); err != nil {
						errc <- fmt.Errorf("goroutine %d: put %d: %w", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every fingerprint written at least once must be present and intact.
	n, err := st1.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != fps {
		t.Fatalf("store holds %d records, want %d", n, fps)
	}
	seen := 0
	for rec, err := range st2.Walk() {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		var i int
		for j := 0; j < fps; j++ {
			if fakeFingerprint(j) == rec.Fingerprint {
				i = j
			}
		}
		if rec.Replay == nil || rec.Replay.SimulatedTime != float64(i)*1.25 || rec.Replay.Actions != int64(i) {
			t.Errorf("walked record %s is corrupt: %+v", rec.Fingerprint, rec.Replay)
		}
	}
	if seen != fps {
		t.Fatalf("walk saw %d records, want %d", seen, fps)
	}

	// No temp-file debris: every writer either renamed or removed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestStoreListWalk covers the enumeration iterators: sorted order, a
// corrupt record reported without hiding its neighbours, early break.
func TestStoreListWalk(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Empty store: no yields, Len 0.
	for range st.List() {
		t.Fatal("List on empty store yielded")
	}
	if n, _ := st.Len(); n != 0 {
		t.Fatalf("empty Len = %d", n)
	}

	var want []string
	for i := 0; i < 5; i++ {
		if err := st.Put(fakeRecord(i)); err != nil {
			t.Fatal(err)
		}
		want = append(want, fakeFingerprint(i))
	}
	sort.Strings(want)

	var got []string
	for fp, err := range st.List() {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fp)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("List = %v, want %v", got, want)
	}

	// A corrupt record is yielded as an error; the rest still walk.
	if err := os.WriteFile(filepath.Join(dir, fakeFingerprint(99)+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	goodRecords, errs := 0, 0
	for rec, err := range st.Walk() {
		if err != nil {
			errs++
			continue
		}
		if rec.Replay == nil {
			t.Errorf("walked record %s has no replay", rec.Fingerprint)
		}
		goodRecords++
	}
	if goodRecords != 5 || errs != 1 {
		t.Fatalf("walk over corrupt store: %d good, %d errors; want 5 and 1", goodRecords, errs)
	}

	// Early break stops the iteration cleanly.
	count := 0
	for _, err := range st.List() {
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Fatalf("broke after %d fingerprints, want 2", count)
	}

	// A record stored under the wrong name is an integrity error.
	if err := os.Rename(filepath.Join(dir, fakeFingerprint(0)+".json"),
		filepath.Join(dir, fakeFingerprint(42)+".json")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(fakeFingerprint(42)); err == nil {
		t.Fatal("cross-keyed record not detected")
	}
}
