// Package sweep is the declarative grid layer over the batch runner: a
// Sweep is a JSON-serializable specification of a whole parameter study —
// a base Scenario template plus named axes whose cartesian product expands
// into concrete scenarios. The paper's entire evaluation is such a grid
// ({LU, CG} x classes x process counts x backends x platforms), and so are
// the dimensioning studies the introduction motivates; this package turns
// the hand-written nested loops those used to require into a spec that can
// be stored, shipped, diffed, resumed, and streamed.
//
// Every expanded point carries a deterministic fingerprint (SHA-256 of the
// scenario's canonical JSON, display name excluded), which keys the
// persistent result store: re-running an edited or interrupted sweep
// replays only the points whose scenarios are not already on disk, the
// same way the compiled trace cache makes re-ingestion free.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tireplay/internal/scenario"
)

// Axis is one named parameter dimension of a sweep. Each value produces
// one slice of the grid along this axis.
//
// A scalar (or array) value is assigned to the scenario field addressed by
// Path — a dotted JSON field path such as "workload.procs", "backend", or
// "platform.speed" (Path defaults to Name). An object value instead
// assigns several fields together: each of its keys is a dotted path, so
// one axis can vary coupled knobs, e.g.
//
//	{"name": "procs", "values": [
//	  {"workload.procs": 8,  "platform.hosts": 8},
//	  {"workload.procs": 16, "platform.hosts": 16}]}
//
// (To assign a whole object to one field, use the object form with a
// single key: {"mpi": {...}}.)
type Axis struct {
	// Name identifies the axis in skip constraints, name templates, and
	// result records. Names must be unique within a sweep.
	Name string `json:"name"`
	// Path is the dotted JSON field path scalar values are assigned to;
	// empty selects Name. Ignored for object values.
	Path string `json:"path,omitempty"`
	// Values are the axis's parameter values, in grid order.
	Values []any `json:"values"`
	// Labels optionally names each value for display (scenario names, CSV
	// columns, skip constraints); must match Values in length when set.
	// The default label is the value's compact rendering.
	Labels []string `json:"labels,omitempty"`
}

// label returns the display label of the axis's i-th value.
func (a *Axis) label(i int) string {
	if len(a.Labels) > 0 {
		return a.Labels[i]
	}
	return valueLabel(a.Values[i])
}

func valueLabel(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		return strconv.Itoa(x)
	case bool:
		return strconv.FormatBool(x)
	default:
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(b)
	}
}

// Sweep is a declarative, JSON-serializable parameter grid: a base
// scenario template plus axes expanded as a cartesian product (first axis
// slowest, last axis fastest — the order of equivalent nested loops).
type Sweep struct {
	// Name labels the sweep in result records.
	Name string `json:"name,omitempty"`
	// Base is the scenario template every grid point starts from. It must
	// be fully serializable: the programmatic-only fields (Plat, Provider,
	// Network) cannot survive expansion and are rejected.
	Base scenario.Scenario `json:"base"`
	// Axes are the parameter dimensions; an empty list expands to the base
	// scenario alone.
	Axes []Axis `json:"axes,omitempty"`
	// Skip drops grid points: a point is skipped when every entry of any
	// one map matches, comparing the point's value label for the named
	// axis, e.g. {"backend": "msg", "class": "D"}.
	Skip []map[string]string `json:"skip,omitempty"`
	// NameFormat names expanded scenarios: every "{axis}" placeholder is
	// replaced by that axis's value label, e.g. "{bench} {class}-{procs}".
	// Empty selects the base name and the axis labels joined with "/".
	NameFormat string `json:"name_format,omitempty"`
	// Store is the result-store directory results persist to (and resume
	// from); empty means no persistence unless the caller overrides it.
	Store string `json:"store,omitempty"`
	// Resume controls the result store, mirroring Scenario.TraceCache:
	// "auto" (the default) reuses completed results when a store is
	// configured; "on" requires a store and fails without one; "off"
	// re-runs every point, overwriting stored results.
	Resume string `json:"resume,omitempty"`
}

// Point is one expanded grid point: a concrete scenario plus the axis
// values that produced it.
type Point struct {
	// Index is the point's position in the expanded grid (deterministic:
	// same spec, same order).
	Index int
	// Values and Labels record each axis's value and display label.
	Values map[string]any
	Labels map[string]string
	// Scenario is the concrete, validated scenario.
	Scenario *scenario.Scenario
	// Fingerprint is the hex SHA-256 of the scenario's canonical JSON with
	// the display name cleared — it identifies the replay work, not its
	// label, and keys the result store.
	Fingerprint string
}

// maxPoints bounds runaway grids (a typo multiplying axes) to fail loudly
// instead of expanding forever.
const maxPoints = 1 << 20

// Validate checks the sweep's structural consistency without expanding it.
func (s *Sweep) Validate() error {
	if s.Base.Plat != nil || s.Base.Provider != nil || s.Base.Network != nil {
		return fmt.Errorf("sweep %s: base scenario must be fully serializable (Plat, Provider, and Network are programmatic-only)", s.label())
	}
	switch strings.ToLower(s.Resume) {
	case "", "auto", "on", "off":
	default:
		return fmt.Errorf("sweep %s: unknown resume mode %q (want auto, on, or off)", s.label(), s.Resume)
	}
	seen := make(map[string]bool, len(s.Axes))
	total := 1
	for i := range s.Axes {
		a := &s.Axes[i]
		if a.Name == "" {
			return fmt.Errorf("sweep %s: axis %d has no name", s.label(), i)
		}
		if seen[a.Name] {
			return fmt.Errorf("sweep %s: duplicate axis %q", s.label(), a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) == 0 {
			return fmt.Errorf("sweep %s: axis %q has no values", s.label(), a.Name)
		}
		if len(a.Labels) > 0 && len(a.Labels) != len(a.Values) {
			return fmt.Errorf("sweep %s: axis %q has %d labels for %d values", s.label(), a.Name, len(a.Labels), len(a.Values))
		}
		if total > maxPoints/len(a.Values) {
			return fmt.Errorf("sweep %s: grid exceeds %d points", s.label(), maxPoints)
		}
		total *= len(a.Values)
	}
	for _, skip := range s.Skip {
		for name := range skip {
			if !seen[name] {
				return fmt.Errorf("sweep %s: skip constraint names unknown axis %q", s.label(), name)
			}
		}
	}
	if s.NameFormat != "" {
		for _, m := range placeholderRe.FindAllStringSubmatch(s.NameFormat, -1) {
			if !seen[m[1]] {
				return fmt.Errorf("sweep %s: name format placeholder {%s} names no axis", s.label(), m[1])
			}
		}
	}
	return nil
}

var placeholderRe = regexp.MustCompile(`\{([^{}]+)\}`)

func (s *Sweep) label() string {
	if s.Name != "" {
		return fmt.Sprintf("%q", s.Name)
	}
	return "(unnamed)"
}

// Expand materializes the grid: the cartesian product of the axes over the
// base template, minus skipped points, each strictly decoded, named,
// validated, and fingerprinted. Expansion is deterministic — the same spec
// yields the same scenarios in the same order with the same fingerprints.
func (s *Sweep) Expand() ([]Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	baseDoc, err := json.Marshal(&s.Base)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: encoding base scenario: %w", s.label(), err)
	}

	var points []Point
	idx := make([]int, len(s.Axes))
	for {
		pt, err := s.expandPoint(baseDoc, idx, len(points))
		if err != nil {
			return nil, err
		}
		if pt != nil {
			points = append(points, *pt)
		}
		// Odometer: last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return points, nil
}

// expandPoint builds the grid point selected by idx, or nil if a skip
// constraint drops it. pointIndex is its position among kept points.
func (s *Sweep) expandPoint(baseDoc []byte, idx []int, pointIndex int) (*Point, error) {
	labels := make(map[string]string, len(s.Axes))
	values := make(map[string]any, len(s.Axes))
	for ai := range s.Axes {
		a := &s.Axes[ai]
		labels[a.Name] = a.label(idx[ai])
		values[a.Name] = a.Values[idx[ai]]
	}
	for _, skip := range s.Skip {
		match := len(skip) > 0
		for name, want := range skip {
			if labels[name] != want {
				match = false
				break
			}
		}
		if match {
			return nil, nil
		}
	}

	// Fresh deep copy of the base document for this point.
	var doc map[string]any
	if err := json.Unmarshal(baseDoc, &doc); err != nil {
		return nil, fmt.Errorf("sweep %s: decoding base scenario: %w", s.label(), err)
	}
	if doc == nil {
		doc = make(map[string]any)
	}
	for ai := range s.Axes {
		a := &s.Axes[ai]
		if err := applyAxisValue(doc, a, a.Values[idx[ai]]); err != nil {
			return nil, fmt.Errorf("sweep %s: axis %q: %w", s.label(), a.Name, err)
		}
	}

	data, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: encoding point: %w", s.label(), err)
	}
	sc := new(scenario.Scenario)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sc); err != nil {
		// A typoed axis path lands here as an unknown JSON field; the
		// decoder's error names it.
		return nil, fmt.Errorf("sweep %s: point %s: %w", s.label(), pointLabel(s.Axes, labels), err)
	}
	sc.Name = s.pointName(labels)
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("sweep %s: point %s: %w", s.label(), pointLabel(s.Axes, labels), err)
	}
	fp, err := Fingerprint(sc)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: point %s: %w", s.label(), pointLabel(s.Axes, labels), err)
	}
	return &Point{
		Index:       pointIndex,
		Values:      values,
		Labels:      labels,
		Scenario:    sc,
		Fingerprint: fp,
	}, nil
}

func pointLabel(axes []Axis, labels map[string]string) string {
	parts := make([]string, 0, len(axes))
	for i := range axes {
		parts = append(parts, axes[i].Name+"="+labels[axes[i].Name])
	}
	if len(parts) == 0 {
		return "(base)"
	}
	return strings.Join(parts, " ")
}

// pointName renders the scenario name for a grid point.
func (s *Sweep) pointName(labels map[string]string) string {
	if s.NameFormat != "" {
		return placeholderRe.ReplaceAllStringFunc(s.NameFormat, func(m string) string {
			return labels[m[1:len(m)-1]]
		})
	}
	parts := make([]string, 0, len(s.Axes)+1)
	if s.Base.Name != "" {
		parts = append(parts, s.Base.Name)
	}
	for i := range s.Axes {
		parts = append(parts, labels[s.Axes[i].Name])
	}
	return strings.Join(parts, "/")
}

// applyAxisValue writes one axis value into the point's JSON document.
func applyAxisValue(doc map[string]any, a *Axis, v any) error {
	if obj, ok := v.(map[string]any); ok {
		// Object form: each key is a dotted path. Apply in sorted order so
		// conflicting paths resolve deterministically.
		paths := make([]string, 0, len(obj))
		for p := range obj {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			if err := assignPath(doc, p, obj[p]); err != nil {
				return err
			}
		}
		return nil
	}
	path := a.Path
	if path == "" {
		path = a.Name
	}
	return assignPath(doc, path, v)
}

// assignPath sets doc's field at a dotted path, creating intermediate
// objects as needed.
func assignPath(doc map[string]any, path string, v any) error {
	if path == "" {
		return fmt.Errorf("empty field path")
	}
	parts := strings.Split(path, ".")
	cur := doc
	for _, p := range parts[:len(parts)-1] {
		next, ok := cur[p]
		if !ok || next == nil {
			m := make(map[string]any)
			cur[p] = m
			cur = m
			continue
		}
		m, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("path %q: field %q is not an object", path, p)
		}
		cur = m
	}
	cur[parts[len(parts)-1]] = v
	return nil
}

// Fingerprint returns the hex SHA-256 of the scenario's canonical JSON
// with the display name cleared: two points with the same replay-relevant
// knobs share a fingerprint even under different names.
func Fingerprint(sc *scenario.Scenario) (string, error) {
	c := *sc
	c.Name = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ReadSpec strictly decodes a JSON Sweep from r: unknown fields anywhere
// in the spec — a typoed knob in the base scenario, a misspelled axis key
// — fail with an error naming the offending field instead of silently
// selecting defaults.
func ReadSpec(r io.Reader) (*Sweep, error) {
	var s Sweep
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: decoding spec: %w", err)
	}
	return &s, nil
}

// Load reads a JSON Sweep spec from a file.
func Load(path string) (*Sweep, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteSpec encodes the sweep as indented JSON.
func WriteSpec(w io.Writer, s *Sweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
