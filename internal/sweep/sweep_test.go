package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/runner"
	"tireplay/internal/scenario"
	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

// gridSpec is the acceptance-criteria sweep: {lu, cg} x {2,4,8,16} procs x
// {smpi, msg} x {1,2,3,4} iterations = 64 points.
func gridSpec() *Sweep {
	return &Sweep{
		Name: "test-grid",
		Base: scenario.Scenario{
			Platform: flatSpec(16),
			Workload: &scenario.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 2, Iterations: 1},
		},
		NameFormat: "{bench}-{procs}p-{backend}-i{iters}",
		Axes: []Axis{
			{Name: "bench", Path: "workload.benchmark", Values: []any{"lu", "cg"}},
			{Name: "procs", Values: []any{
				map[string]any{"workload.procs": 2, "platform.hosts": 2},
				map[string]any{"workload.procs": 4, "platform.hosts": 4},
				map[string]any{"workload.procs": 8, "platform.hosts": 8},
				map[string]any{"workload.procs": 16, "platform.hosts": 16},
			}, Labels: []string{"2", "4", "8", "16"}},
			{Name: "backend", Values: []any{"smpi", "msg"}},
			{Name: "iters", Path: "workload.iterations", Values: []any{1, 2, 3, 4}},
		},
	}
}

func flatSpec(hosts int) *platform.Spec {
	return &platform.Spec{
		Name: "test", Topology: "flat", Hosts: hosts, Speed: 1e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

func TestExpandDeterministic(t *testing.T) {
	sw := gridSpec()
	a, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 64 {
		t.Fatalf("grid has %d points, want 64", len(a))
	}
	// Same spec, expanded again: same order, names, fingerprints.
	b, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// And once more after a JSON round trip of the spec itself.
	var buf bytes.Buffer
	if err := WriteSpec(&buf, sw); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rt.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for _, other := range [][]Point{b, c} {
			if a[i].Scenario.Name != other[i].Scenario.Name {
				t.Fatalf("point %d name differs: %q vs %q", i, a[i].Scenario.Name, other[i].Scenario.Name)
			}
			if a[i].Fingerprint != other[i].Fingerprint {
				t.Fatalf("point %d fingerprint differs", i)
			}
		}
		if a[i].Index != i {
			t.Fatalf("point %d has index %d", i, a[i].Index)
		}
	}
	// Fingerprints identify distinct work.
	seen := make(map[string]string)
	for _, pt := range a {
		if prev, dup := seen[pt.Fingerprint]; dup {
			t.Fatalf("points %q and %q share a fingerprint", prev, pt.Scenario.Name)
		}
		seen[pt.Fingerprint] = pt.Scenario.Name
	}
}

func TestExpandNamesAndLastAxisFastest(t *testing.T) {
	pts, err := gridSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Scenario.Name != "lu-2p-smpi-i1" {
		t.Fatalf("first point named %q", pts[0].Scenario.Name)
	}
	if pts[1].Scenario.Name != "lu-2p-smpi-i2" {
		t.Fatalf("second point named %q (last axis must vary fastest)", pts[1].Scenario.Name)
	}
	if last := pts[len(pts)-1].Scenario.Name; last != "cg-16p-msg-i4" {
		t.Fatalf("last point named %q", last)
	}
}

func TestSkipConstraints(t *testing.T) {
	sw := gridSpec()
	sw.Skip = []map[string]string{{"bench": "cg", "backend": "msg"}}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64-16 {
		t.Fatalf("grid has %d points after skip, want 48", len(pts))
	}
	for _, pt := range pts {
		if pt.Labels["bench"] == "cg" && pt.Labels["backend"] == "msg" {
			t.Fatalf("skipped combination survived: %s", pt.Scenario.Name)
		}
	}
	// Indexes stay dense and ordered.
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
	}
}

func TestFingerprintIgnoresDisplayName(t *testing.T) {
	a := gridSpec()
	b := gridSpec()
	b.NameFormat = "renamed {bench} {procs} {backend} {iters}"
	pa, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i].Fingerprint != pb[i].Fingerprint {
			t.Fatalf("point %d: renaming changed the fingerprint", i)
		}
		if pa[i].Scenario.Name == pb[i].Scenario.Name {
			t.Fatalf("point %d: names did not change", i)
		}
	}
}

func TestStrictDecodingNamesOffendingField(t *testing.T) {
	// A typoed axis path must fail loudly, naming the field.
	sw := gridSpec()
	sw.Axes[3].Path = "workload.iterationz"
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "iterationz") {
		t.Fatalf("typoed axis path error %v does not name the field", err)
	}

	// A typoed knob in a sweep spec file must fail loudly too.
	if _, err := ReadSpec(strings.NewReader(`{"nme": "x"}`)); err == nil || !strings.Contains(err.Error(), "nme") {
		t.Fatalf("typoed spec field error %v does not name the field", err)
	}
	bad := `{"base": {"platform": {"topology": "flat", "hosts": 2, "speed": 1e9,
	  "link_bandwidth": 1.25e8, "link_latency": 2e-5,
	  "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
	  "workload": {"benchmark": "ep", "class": "S", "prcs": 2}}}`
	if _, err := ReadSpec(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "prcs") {
		t.Fatalf("typoed base knob error %v does not name the field", err)
	}
}

func TestValidateRejectsBadSweeps(t *testing.T) {
	base := scenario.Scenario{
		Platform: flatSpec(2),
		Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 2},
	}
	cases := []struct {
		name string
		mut  func(*Sweep)
	}{
		{"unnamed axis", func(s *Sweep) { s.Axes = []Axis{{Values: []any{1}}} }},
		{"duplicate axis", func(s *Sweep) {
			s.Axes = []Axis{{Name: "a", Values: []any{1}}, {Name: "a", Values: []any{2}}}
		}},
		{"empty values", func(s *Sweep) { s.Axes = []Axis{{Name: "a"}} }},
		{"label mismatch", func(s *Sweep) {
			s.Axes = []Axis{{Name: "a", Values: []any{1, 2}, Labels: []string{"one"}}}
		}},
		{"bad resume", func(s *Sweep) { s.Resume = "maybe" }},
		{"unknown skip axis", func(s *Sweep) { s.Skip = []map[string]string{{"nope": "1"}} }},
		{"unknown placeholder", func(s *Sweep) { s.NameFormat = "{nope}" }},
		{"programmatic base", func(s *Sweep) { s.Base.Provider = nil; s.Base.Plat = nil; s.Base.Network = fakeModel{} }},
	}
	for _, tc := range cases {
		sw := &Sweep{Base: base}
		tc.mut(sw)
		if err := sw.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the sweep", tc.name)
		}
	}
}

func TestRunStreamsToJSONLSinkBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("64-point grid in -short mode")
	}
	sw := gridSpec()
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh reference batch straight through the runner.
	ref := make([]*scenario.Scenario, len(pts))
	for i, pt := range pts {
		ref[i] = pt.Scenario
	}
	want, err := runner.Run(context.Background(), ref, runner.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	results, err := Collect(context.Background(), sw, WithWorkers(4), WithSink(NewJSONLSink(&jsonl)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(pts) {
		t.Fatalf("sweep yielded %d results, want %d", len(results), len(pts))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d (%s): %v", i, r.Point.Scenario.Name, r.Err)
		}
		if r.Replay.SimulatedTime != want[i].Replay.SimulatedTime || r.Replay.Actions != want[i].Replay.Actions {
			t.Fatalf("point %d (%s): sweep result %v/%d != batch %v/%d",
				i, r.Point.Scenario.Name,
				r.Replay.SimulatedTime, r.Replay.Actions,
				want[i].Replay.SimulatedTime, want[i].Replay.Actions)
		}
	}

	recs, err := ReadRecords(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pts) {
		t.Fatalf("JSONL sink has %d records, want %d", len(recs), len(pts))
	}
	byIndex := make(map[int]*Record, len(recs))
	for _, rec := range recs {
		byIndex[rec.Index] = rec
	}
	for i := range pts {
		rec := byIndex[i]
		if rec == nil {
			t.Fatalf("JSONL sink missed point %d", i)
		}
		if rec.Replay.SimulatedTime != want[i].Replay.SimulatedTime {
			t.Fatalf("point %d: JSONL SimulatedTime %v != %v", i, rec.Replay.SimulatedTime, want[i].Replay.SimulatedTime)
		}
		if rec.Fingerprint != pts[i].Fingerprint || rec.Sweep != "test-grid" {
			t.Fatalf("point %d: record metadata %+v", i, rec)
		}
	}
}

// TestResumeReplaysOnlyUnfinishedPoints is the acceptance test: kill a
// 64-point sweep midway (by breaking out of the stream), then re-run the
// same spec with the same store; only the unfinished points may execute,
// and every result — cached or fresh — must be bit-identical to a fresh
// batch.
func TestResumeReplaysOnlyUnfinishedPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("64-point grid in -short mode")
	}
	sw := gridSpec()
	sw.Store = filepath.Join(t.TempDir(), "results")

	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]*scenario.Scenario, len(pts))
	for i, pt := range pts {
		ref[i] = pt.Scenario
	}
	want, err := runner.Run(context.Background(), ref, runner.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	// First run, killed after 20 results: the store keeps what completed.
	const killAfter = 20
	got := 0
	for r, err := range Run(context.Background(), sw, WithWorkers(4)) {
		if err != nil {
			t.Fatal(err)
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Point.Scenario.Name, r.Err)
		}
		got++
		if got == killAfter {
			break
		}
	}
	store, err := OpenStore(sw.Store)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := store.Len()
	if err != nil {
		t.Fatal(err)
	}
	// In-flight replays may land after the consumer broke off, but the
	// store can never exceed what the pool completed and never lose what
	// was streamed.
	if stored < killAfter || stored >= len(pts) {
		t.Fatalf("store holds %d results after killing at %d of %d", stored, killAfter, len(pts))
	}

	// Second run: exactly the missing points execute, and the full result
	// set is bit-identical to the fresh batch.
	executed := 0
	results, err := Collect(context.Background(), sw, WithWorkers(4),
		WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Started {
				executed++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if executed != len(pts)-stored {
		t.Fatalf("resume executed %d points, want exactly the %d unfinished", executed, len(pts)-stored)
	}
	if len(results) != len(pts) {
		t.Fatalf("resume yielded %d results, want %d", len(results), len(pts))
	}
	cachedCount := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
		if r.Cached {
			cachedCount++
		}
		if r.Replay.SimulatedTime != want[i].Replay.SimulatedTime || r.Replay.Actions != want[i].Replay.Actions {
			t.Fatalf("point %d (%s, cached=%v): %v/%d != fresh %v/%d",
				i, r.Point.Scenario.Name, r.Cached,
				r.Replay.SimulatedTime, r.Replay.Actions,
				want[i].Replay.SimulatedTime, want[i].Replay.Actions)
		}
	}
	if cachedCount != stored {
		t.Fatalf("resume served %d cached results, store had %d", cachedCount, stored)
	}

	// Third run: everything cached, nothing executes.
	executed = 0
	results, err = Collect(context.Background(), sw, WithWorkers(4),
		WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Started {
				executed++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("fully-stored sweep executed %d points", executed)
	}
	if len(results) != len(pts) {
		t.Fatalf("fully-stored sweep yielded %d results", len(results))
	}

	// Resume "off" ignores the store and re-runs everything.
	executed = 0
	if _, err := Collect(context.Background(), sw, WithWorkers(4), WithResume("off"),
		WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Started {
				executed++
			}
		})); err != nil {
		t.Fatal(err)
	}
	if executed != len(pts) {
		t.Fatalf("resume off executed %d points, want %d", executed, len(pts))
	}
}

func TestResumeOnRequiresStore(t *testing.T) {
	sw := &Sweep{
		Base: scenario.Scenario{
			Platform: flatSpec(2),
			Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 2},
		},
		Resume: "on",
	}
	_, err := Collect(context.Background(), sw)
	if err == nil || !strings.Contains(err.Error(), "store") {
		t.Fatalf("resume on without store: err = %v", err)
	}
}

func TestEditedSweepKeepsSharedPoints(t *testing.T) {
	mk := func(procs []any, labels []string) *Sweep {
		return &Sweep{
			Name: "edit",
			Base: scenario.Scenario{
				Platform: flatSpec(4),
				Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 2},
			},
			Axes: []Axis{{Name: "procs", Values: procs, Labels: labels}},
		}
	}
	small := mk([]any{
		map[string]any{"workload.procs": 2, "platform.hosts": 2},
	}, []string{"2"})
	store := filepath.Join(t.TempDir(), "store")
	small.Store = store
	if _, err := Collect(context.Background(), small); err != nil {
		t.Fatal(err)
	}

	// Editing the sweep (adding a procs value) must keep the completed
	// point cached and execute only the new one.
	grown := mk([]any{
		map[string]any{"workload.procs": 2, "platform.hosts": 2},
		map[string]any{"workload.procs": 4, "platform.hosts": 4},
	}, []string{"2", "4"})
	grown.Store = store
	executed := 0
	results, err := Collect(context.Background(), grown,
		WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Started {
				executed++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if executed != 1 {
		t.Fatalf("edited sweep executed %d points, want 1", executed)
	}
	if len(results) != 2 || !results[0].Cached || results[1].Cached {
		t.Fatalf("edited sweep results: %+v", results)
	}
}

func TestJSONLRoundTripsThroughStore(t *testing.T) {
	sw := &Sweep{
		Name: "rt",
		Base: scenario.Scenario{
			Platform: flatSpec(4),
			Workload: &scenario.WorkloadSpec{Benchmark: "cg", Class: "S", Procs: 4, Iterations: 2},
		},
		Axes: []Axis{{Name: "backend", Values: []any{"smpi", "msg"}}},
	}
	var jsonl bytes.Buffer
	results, err := Collect(context.Background(), sw, WithSink(NewJSONLSink(&jsonl)))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(results) {
		t.Fatalf("%d records for %d results", len(recs), len(results))
	}
	// Feed the sink's records into a fresh store and read them back: the
	// sink and the store share one schema, losslessly.
	store, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range recs {
		back, err := store.Get(rec.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		if back == nil {
			t.Fatalf("record %s lost", rec.Fingerprint)
		}
		if !reflect.DeepEqual(back, rec) {
			t.Fatalf("record %s changed through the store:\n%+v\n%+v", rec.Fingerprint, rec, back)
		}
	}
	// And a sweep resumed from that store serves the same replays.
	sw.Store = store.Dir()
	resumed, err := Collect(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resumed {
		if !r.Cached {
			t.Fatalf("point %d not cached after store import", i)
		}
		if r.Replay.SimulatedTime != results[i].Replay.SimulatedTime {
			t.Fatalf("point %d: %v != %v", i, r.Replay.SimulatedTime, results[i].Replay.SimulatedTime)
		}
	}
}

// TestSweepSharesCompiledTraceCache checks a TraceDesc-based sweep
// compiles the binary trace cache once up front (before the pool fans
// out) and that every point replays from it.
func TestSweepSharesCompiledTraceCache(t *testing.T) {
	dir := t.TempDir()
	w, err := npb.NewCG(npb.ClassS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var perRank [][]trace.Action
	prov := npb.AsProvider(w)
	for r := 0; r < prov.NumRanks(); r++ {
		st, err := prov.Rank(r)
		if err != nil {
			t.Fatal(err)
		}
		var acts []trace.Action
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			acts = append(acts, a)
		}
		perRank = append(perRank, acts)
	}
	desc, err := trace.WriteSet(dir, "cg_s4", perRank)
	if err != nil {
		t.Fatal(err)
	}

	sw := &Sweep{
		Base: scenario.Scenario{
			Platform:  flatSpec(4),
			TraceDesc: desc,
		},
		Axes: []Axis{{Name: "backend", Values: []any{"smpi", "msg"}}},
	}
	results, err := Collect(context.Background(), sw, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(desc + ".tib"); err != nil {
		t.Fatalf("sweep did not build the shared trace cache: %v", err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Point.Scenario.Name, r.Err)
		}
	}
	// A second run must reuse the cache untouched.
	st1, err := os.Stat(desc + ".tib")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(context.Background(), sw, WithWorkers(2)); err != nil {
		t.Fatal(err)
	}
	st2, err := os.Stat(desc + ".tib")
	if err != nil {
		t.Fatal(err)
	}
	if !st1.ModTime().Equal(st2.ModTime()) || st1.Size() != st2.Size() {
		t.Fatal("second sweep rebuilt the trace cache")
	}
}

func TestCSVSink(t *testing.T) {
	sw := &Sweep{
		Base: scenario.Scenario{
			Platform: flatSpec(2),
			Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 2},
		},
		Axes: []Axis{{Name: "backend", Values: []any{"smpi", "msg"}}},
	}
	var csvBuf bytes.Buffer
	if _, err := Collect(context.Background(), sw, WithSink(NewCSVSink(&csvBuf, "backend"))); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), csvBuf.String())
	}
	if !strings.Contains(lines[0], "backend") || !strings.Contains(lines[0], "simulated_time") {
		t.Fatalf("CSV header %q missing columns", lines[0])
	}
	if !strings.Contains(lines[1], "smpi") || !strings.Contains(lines[2], "msg") {
		t.Fatalf("CSV rows misordered or missing labels:\n%s", csvBuf.String())
	}
}

func TestPerPointFailureDoesNotAbortSweep(t *testing.T) {
	sw := &Sweep{
		Base: scenario.Scenario{
			Platform: flatSpec(4),
			Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 4},
		},
		// procs 999 exceeds the platform: that point fails, the rest run.
		Axes: []Axis{{Name: "procs", Path: "workload.procs", Values: []any{2, 999, 4}}},
	}
	results, err := Collect(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good points failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("oversized point did not fail")
	}
}

func TestCancellationSkipsRemainingPoints(t *testing.T) {
	sw := gridSpec()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n, skipped := 0, 0
	for r, err := range Run(ctx, sw, WithWorkers(1)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 3 {
			cancel()
		}
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if n != 64 {
		t.Fatalf("cancelled sweep yielded %d results, want all 64 (skipped carry the error)", n)
	}
	if skipped == 0 {
		t.Fatal("no point carried the cancellation error")
	}
}

// fakeModel satisfies sim.NetworkModel for validation tests.
type fakeModel struct{}

func (fakeModel) Effective(route sim.Route, size float64) (latency, rateCap float64) {
	return 0, 0
}

func TestSpecFileLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.json")
	specJSON := `{
	  "name": "file-sweep",
	  "base": {
	    "platform": {"name": "c", "topology": "flat", "hosts": 4, "speed": 1e9,
	      "link_bandwidth": 1.25e8, "link_latency": 2e-5,
	      "backbone_bandwidth": 1.25e9, "backbone_latency": 1e-6},
	    "workload": {"benchmark": "ep", "class": "S", "procs": 4}
	  },
	  "axes": [
	    {"name": "procs", "values": [
	      {"workload.procs": 2, "platform.hosts": 2},
	      {"workload.procs": 4, "platform.hosts": 4}], "labels": ["2", "4"]},
	    {"name": "backend", "values": ["smpi", "msg"]}
	  ]
	}`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("file sweep expands to %d points, want 4", len(pts))
	}
	results, err := Collect(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Point.Scenario.Name, r.Err)
		}
		if r.Replay.SimulatedTime <= 0 {
			t.Fatalf("%s: no simulated time", r.Point.Scenario.Name)
		}
	}
}
