package sweep

import (
	"context"
	"fmt"
	"iter"
	"sort"
	"strings"

	"tireplay/internal/core"
	"tireplay/internal/runner"
	"tireplay/internal/scenario"
)

// Result is the outcome of one grid point of a sweep.
type Result struct {
	// Point is the expanded grid point.
	Point Point
	// Replay is the replay outcome, nil if the point failed or was
	// skipped by cancellation.
	Replay *core.Result
	// Err is the point's failure (or the context's error for points
	// skipped by cancellation), nil on success.
	Err error
	// Cached reports the result was served from the result store instead
	// of replayed.
	Cached bool
}

// Record converts the result to its serialized form.
func (r *Result) Record(sweepName string) *Record {
	rec := &Record{
		Sweep:       sweepName,
		Index:       r.Point.Index,
		Name:        r.Point.Scenario.Name,
		Fingerprint: r.Point.Fingerprint,
		Values:      r.Point.Values,
		Labels:      r.Point.Labels,
		Cached:      r.Cached,
		Replay:      r.Replay,
	}
	if r.Err != nil {
		rec.Err = r.Err.Error()
	}
	return rec
}

// Option configures a sweep run.
type Option func(*runConfig)

type runConfig struct {
	workers  int
	sinks    []Sink
	store    string
	resume   string
	observer func(runner.Event)
}

// WithWorkers sets the worker-pool size; n < 1 selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *runConfig) { c.workers = n }
}

// WithSink attaches a result sink (JSONL, CSV, or custom); every streamed
// result — including cached ones — is written to each sink in completion
// order. May be given multiple times.
func WithSink(s Sink) Option {
	return func(c *runConfig) { c.sinks = append(c.sinks, s) }
}

// WithStore overrides the sweep's result-store directory.
func WithStore(dir string) Option {
	return func(c *runConfig) { c.store = dir }
}

// WithResume overrides the sweep's resume mode ("auto", "on", or "off").
func WithResume(mode string) Option {
	return func(c *runConfig) { c.resume = mode }
}

// WithObserver installs the batch runner's progress callback for the
// replayed (non-cached) points.
func WithObserver(f func(runner.Event)) Option {
	return func(c *runConfig) { c.observer = f }
}

// Run expands the sweep and executes it on a worker pool, yielding results
// as they complete: stored results first (in grid order, when resuming),
// then live replays in completion order. Per-point failures ride in
// Result.Err and do not stop the sweep; a non-nil error from the iterator
// (spec, store, or sink failure) is fatal and ends the iteration. Breaking
// out of the loop cancels the remaining points and reclaims the pool.
//
// With a result store configured (Sweep.Store or WithStore), every
// successful replay is persisted under its scenario fingerprint, and —
// unless resume is "off" — points whose fingerprint is already stored are
// served from disk instead of replayed, so re-running an edited or
// interrupted sweep only replays what is missing.
func Run(ctx context.Context, sw *Sweep, opts ...Option) iter.Seq2[Result, error] {
	cfg := runConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	return func(yield func(Result, error) bool) {
		points, err := sw.Expand()
		if err != nil {
			yield(Result{}, err)
			return
		}

		resume := strings.ToLower(cfg.resume)
		if resume == "" {
			resume = strings.ToLower(sw.Resume)
		}
		if resume == "" {
			resume = "auto"
		}
		switch resume {
		case "auto", "on", "off":
		default:
			yield(Result{}, fmt.Errorf("sweep %s: unknown resume mode %q (want auto, on, or off)", sw.label(), resume))
			return
		}
		storeDir := cfg.store
		if storeDir == "" {
			storeDir = sw.Store
		}
		if resume == "on" && storeDir == "" {
			yield(Result{}, fmt.Errorf("sweep %s: resume \"on\" requires a result store (Sweep.Store or WithStore)", sw.label()))
			return
		}
		var store *Store
		if storeDir != "" {
			store, err = OpenStore(storeDir)
			if err != nil {
				yield(Result{}, err)
				return
			}
		}

		// emit persists, tees to sinks, and hands the result to the
		// consumer. Store and sink failures are fatal: dropping results
		// silently would corrupt the resume set.
		emit := func(r Result) bool {
			rec := r.Record(sw.Name)
			if store != nil && !r.Cached && r.Err == nil {
				if err := store.Put(rec); err != nil {
					yield(r, err)
					return false
				}
			}
			for _, s := range cfg.sinks {
				if err := s.Write(rec); err != nil {
					yield(r, err)
					return false
				}
			}
			return yield(r, nil)
		}

		// Partition the grid into stored results and pending replays.
		var pending []Point
		var cached []Result
		if store != nil && resume != "off" {
			for _, pt := range points {
				rec, err := store.Get(pt.Fingerprint)
				if err != nil {
					yield(Result{Point: pt}, err)
					return
				}
				if rec != nil && rec.Replay != nil {
					cached = append(cached, Result{Point: pt, Replay: rec.Replay, Cached: true})
				} else {
					pending = append(pending, pt)
				}
			}
		} else {
			pending = points
		}
		for _, r := range cached {
			if !emit(r) {
				return
			}
		}
		if len(pending) == 0 {
			return
		}

		// Share the compiled trace caches: compile each distinct trace set
		// once, before the pool fans out, instead of letting every worker
		// race to rebuild the same .tib. Errors are left for the scenarios
		// themselves to surface (or to fall back from, in auto mode).
		prewarmTraceCaches(pending)

		scenarios := make([]*scenario.Scenario, len(pending))
		for i, pt := range pending {
			scenarios[i] = pt.Scenario
		}
		ropts := []runner.Option{runner.WithWorkers(cfg.workers)}
		if cfg.observer != nil {
			ropts = append(ropts, runner.WithObserver(cfg.observer))
		}
		for rr := range runner.Stream(ctx, scenarios, ropts...) {
			if !emit(Result{Point: pending[rr.Index], Replay: rr.Replay, Err: rr.Err}) {
				return
			}
		}
	}
}

// Collect drains Run into a slice ordered by grid index. The error is the
// first fatal (spec/store/sink) failure, or ctx's error when the sweep was
// cancelled; per-point failures stay in their Result.
func Collect(ctx context.Context, sw *Sweep, opts ...Option) ([]Result, error) {
	var out []Result
	for r, err := range Run(ctx, sw, opts...) {
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point.Index < out[j].Point.Index })
	return out, ctx.Err()
}

// prewarmTraceCaches compiles each distinct TraceDesc trace set once.
func prewarmTraceCaches(points []Point) {
	type key struct {
		desc  string
		ranks int
	}
	seen := make(map[key]bool)
	for _, pt := range points {
		s := pt.Scenario
		if s.TraceDesc == "" {
			continue
		}
		k := key{s.TraceDesc, s.Ranks}
		if seen[k] {
			continue
		}
		seen[k] = true
		s.CompileTraceCache() //nolint:errcheck // replay surfaces cache errors
	}
}
