package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tireplay/internal/core"
)

// Record is the serialized form of one sweep result — the unit the result
// store persists and the JSONL sink emits, so stored results and streamed
// result files round-trip through the same schema.
type Record struct {
	// Sweep is the owning sweep's name.
	Sweep string `json:"sweep,omitempty"`
	// Index is the point's position in the expanded grid.
	Index int `json:"index"`
	// Name is the expanded scenario's display name.
	Name string `json:"name,omitempty"`
	// Fingerprint keys the record in the result store.
	Fingerprint string `json:"fingerprint"`
	// Seq is the record's 1-based position in its sweep's completion
	// order. Only the sweep service sets it (streams resume with
	// ?after=N); locally-run and stored records leave it zero.
	Seq int64 `json:"seq,omitempty"`
	// Values and Labels record the point's axis values and display labels.
	Values map[string]any    `json:"values,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Cached reports the result was served from the store, not replayed.
	Cached bool `json:"cached,omitempty"`
	// Replay is the full replay outcome, nil on failure. JSON encoding of
	// float64 is shortest-round-trip, so a stored result reloads
	// bit-identical to the fresh replay.
	Replay *core.Result `json:"replay,omitempty"`
	// Err is the point's failure message, "" on success.
	Err string `json:"error,omitempty"`
}

// Store is the persistent on-disk result store: one JSON Record per
// completed point, keyed by scenario fingerprint, written atomically
// (unique temp file + fsync + rename) so an interrupted sweep never
// leaves a torn record. It is safe for concurrent use — including
// several Stores in several processes sharing one directory: temp names
// are unique per writer, and because records are content-addressed by
// fingerprint, concurrent writers of the same fingerprint race benignly
// (last rename wins, all candidates encode the same scenario).
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a result store directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(fingerprint string) string {
	return filepath.Join(st.dir, fingerprint+".json")
}

// Get loads the record stored under a fingerprint; a miss returns
// (nil, nil).
func (st *Store) Get(fingerprint string) (*Record, error) {
	data, err := os.ReadFile(st.path(fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading stored result: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("sweep: stored result %s: %w", fingerprint, err)
	}
	if rec.Fingerprint != fingerprint {
		return nil, fmt.Errorf("sweep: stored result %s carries fingerprint %s", fingerprint, rec.Fingerprint)
	}
	return &rec, nil
}

// Put persists a record under its fingerprint, atomically replacing any
// previous result for the same scenario. The temp file is fsynced before
// the rename, so a record that Put returned success for survives a crash
// (a torn write can at worst lose the rename, never corrupt the record).
func (st *Store) Put(rec *Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("sweep: record has no fingerprint")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encoding result: %w", err)
	}
	// os.CreateTemp picks a name unique across processes, so two writers
	// of the same fingerprint never clobber each other's temp file; the
	// final rename is atomic and last-write-wins.
	tmp, err := os.CreateTemp(st.dir, rec.Fingerprint+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(rec.Fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems refuse it, and the record data is already safe.
	if d, err := os.Open(st.dir); err == nil {
		d.Sync() //nolint:errcheck
		d.Close()
	}
	return nil
}

// List iterates the fingerprints currently stored, in sorted order. A
// directory read failure is yielded once as ("", err).
func (st *Store) List() iter.Seq2[string, error] {
	return func(yield func(string, error) bool) {
		entries, err := os.ReadDir(st.dir)
		if err != nil {
			yield("", fmt.Errorf("sweep: listing store: %w", err))
			return
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
				names = append(names, strings.TrimSuffix(e.Name(), ".json"))
			}
		}
		sort.Strings(names)
		for _, fp := range names {
			if !yield(fp, nil) {
				return
			}
		}
	}
}

// Walk iterates the stored records (in fingerprint order), decoding each
// lazily — the streaming counterpart of reading the whole directory. A
// record that fails to load is yielded as (nil, err) and iteration
// continues, so one corrupt file does not hide the rest.
func (st *Store) Walk() iter.Seq2[*Record, error] {
	return func(yield func(*Record, error) bool) {
		for fp, err := range st.List() {
			if err != nil {
				yield(nil, err)
				return
			}
			rec, err := st.Get(fp)
			if err == nil && rec == nil {
				// Deleted between List and Get; not an error.
				continue
			}
			if !yield(rec, err) {
				return
			}
		}
	}
}

// Len counts the records currently stored.
func (st *Store) Len() (int, error) {
	n := 0
	for _, err := range st.List() {
		if err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// ReadRecords decodes a JSONL stream of Records (the JSONL sink's output).
func ReadRecords(r io.Reader) ([]*Record, error) {
	dec := json.NewDecoder(r)
	var out []*Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("sweep: decoding results: %w", err)
		}
		out = append(out, &rec)
	}
}
