package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tireplay/internal/core"
)

// Record is the serialized form of one sweep result — the unit the result
// store persists and the JSONL sink emits, so stored results and streamed
// result files round-trip through the same schema.
type Record struct {
	// Sweep is the owning sweep's name.
	Sweep string `json:"sweep,omitempty"`
	// Index is the point's position in the expanded grid.
	Index int `json:"index"`
	// Name is the expanded scenario's display name.
	Name string `json:"name,omitempty"`
	// Fingerprint keys the record in the result store.
	Fingerprint string `json:"fingerprint"`
	// Values and Labels record the point's axis values and display labels.
	Values map[string]any    `json:"values,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Cached reports the result was served from the store, not replayed.
	Cached bool `json:"cached,omitempty"`
	// Replay is the full replay outcome, nil on failure. JSON encoding of
	// float64 is shortest-round-trip, so a stored result reloads
	// bit-identical to the fresh replay.
	Replay *core.Result `json:"replay,omitempty"`
	// Err is the point's failure message, "" on success.
	Err string `json:"error,omitempty"`
}

// Store is the persistent on-disk result store: one JSON Record per
// completed point, keyed by scenario fingerprint, written atomically
// (temp file + rename) so an interrupted sweep never leaves a torn
// record. It is safe for concurrent use.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a result store directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(fingerprint string) string {
	return filepath.Join(st.dir, fingerprint+".json")
}

// Get loads the record stored under a fingerprint; a miss returns
// (nil, nil).
func (st *Store) Get(fingerprint string) (*Record, error) {
	data, err := os.ReadFile(st.path(fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: reading stored result: %w", err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("sweep: stored result %s: %w", fingerprint, err)
	}
	if rec.Fingerprint != fingerprint {
		return nil, fmt.Errorf("sweep: stored result %s carries fingerprint %s", fingerprint, rec.Fingerprint)
	}
	return &rec, nil
}

// Put persists a record under its fingerprint, atomically replacing any
// previous result for the same scenario.
func (st *Store) Put(rec *Record) error {
	if rec.Fingerprint == "" {
		return fmt.Errorf("sweep: record has no fingerprint")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: encoding result: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, rec.Fingerprint+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path(rec.Fingerprint)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing result: %w", err)
	}
	return nil
}

// Len counts the records currently stored.
func (st *Store) Len() (int, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// ReadRecords decodes a JSONL stream of Records (the JSONL sink's output).
func ReadRecords(r io.Reader) ([]*Record, error) {
	dec := json.NewDecoder(r)
	var out []*Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("sweep: decoding results: %w", err)
		}
		out = append(out, &rec)
	}
}
