// Package instrument models the trace-acquisition tool chain of the paper:
// TAU/PDT instrumentation of the application and the compiler optimization
// level. Both distort the two quantities the time-independent traces are
// built from — wall-clock time (Tables 1 and 2) and the hardware instruction
// counter (Figures 1, 2, 4 and 5) — and the whole point of Sections 3.1/3.2
// is to choose a combination that distorts them as little as possible.
//
// Three instrumentation modes are modelled:
//
//   - Coarse: hand-inserted counter reads at the boundaries of the studied
//     section only (the reference the paper compares against in the counter
//     discrepancy experiments);
//   - Fine: TAU's default automatic instrumentation — a probe on *every*
//     application function call plus call-path bookkeeping on each MPI
//     event (the paper's first implementation);
//   - Minimal: TAU with the exclude-all selective-instrumentation file of
//     Section 3.2 — probes fire only when entering and exiting MPI
//     functions.
//
// The compile model captures -O0 vs -O3: optimization scales the
// application's base instruction count (and hence compute time) down, while
// probe instructions, which live in pre-built libraries, are unaffected.
package instrument

import (
	"fmt"

	"tireplay/internal/npb"
	"tireplay/internal/trace"
)

// Mode is the instrumentation granularity.
type Mode int

// Instrumentation modes.
const (
	// None is the original, uninstrumented application.
	None Mode = iota
	// Coarse reads the hardware counter at section boundaries only.
	Coarse
	// Minimal instruments MPI function boundaries only (selective TAU).
	Minimal
	// Fine instruments every application function call (default TAU).
	Fine
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Coarse:
		return "coarse"
	case Minimal:
		return "minimal"
	case Fine:
		return "fine"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Compile is the optimization level of the build.
type Compile int

// Compile levels.
const (
	O0 Compile = iota
	O3
)

func (c Compile) String() string {
	if c == O3 {
		return "-O3"
	}
	return "-O0"
}

// Costs parameterizes the instrumentation machinery. The defaults are tuned
// so the model reproduces the paper's measured ranges (see EXPERIMENTS.md).
type Costs struct {
	// AppProbeInstr is the number of instructions one application-function
	// probe adds to the counter (Fine mode only).
	AppProbeInstr float64
	// AppProbeTime is the wall-clock cost of one application-function probe
	// in seconds (Fine mode only). Probes are cheap straight-line library
	// code, so their time cost is far below base-instruction parity.
	AppProbeTime float64
	// MPIProbeInstrFine / MPIProbeInstrMinimal are the instructions one MPI
	// event adds to the counter: wrapper entry/exit, counter reads, event
	// record construction — plus full call-path building in Fine mode.
	MPIProbeInstrFine    float64
	MPIProbeInstrMinimal float64
	// MPIEventTimeFine / MPIEventTimeMinimal are the wall-clock costs per
	// MPI event (dominated by trace buffering and flushing).
	MPIEventTimeFine    float64
	MPIEventTimeMinimal float64
	// CoarseSectionInstr is the one-off counter cost of the hand-inserted
	// reads in Coarse mode.
	CoarseSectionInstr float64
}

// DefaultCosts is the tuned cost model.
var DefaultCosts = Costs{
	AppProbeInstr:        200,
	AppProbeTime:         55e-9,
	MPIProbeInstrFine:    9000,
	MPIProbeInstrMinimal: 5500,
	MPIEventTimeFine:     30e-6,
	MPIEventTimeMinimal:  15e-6,
	CoarseSectionInstr:   2000,
}

// O3Scale returns the factor the base instruction count shrinks by when the
// class is compiled with -O3 (loop unrolling, vectorization, inlining). The
// per-class values are derived from the paper's Table 2 time ratios.
func O3Scale(class npb.Class) float64 {
	switch class {
	case npb.ClassC:
		return 0.76
	default:
		return 0.82
	}
}

// Config is one acquisition setup: instrumentation mode, compile level, and
// the class being compiled (which fixes the -O3 factor).
type Config struct {
	Mode    Mode
	Compile Compile
	Class   npb.Class
	// O3ScaleOverride replaces the class default -O3 factor when positive.
	// Optimization gains depend on the compiler/ISA pair, so the cluster
	// models carry their own measured factors.
	O3ScaleOverride float64
	// Costs overrides DefaultCosts when non-nil.
	Costs *Costs
}

func (c Config) costs() Costs {
	if c.Costs != nil {
		return *c.Costs
	}
	return DefaultCosts
}

func (c Config) String() string {
	return fmt.Sprintf("%s,%s", c.Mode, c.Compile)
}

// compileScale is the factor applied to base instructions.
func (c Config) compileScale() float64 {
	if c.Compile != O3 {
		return 1
	}
	if c.O3ScaleOverride > 0 {
		return c.O3ScaleOverride
	}
	return O3Scale(c.Class)
}

// ComputeCost evaluates a compute operation under this configuration.
// It returns the scaled base instruction count (what actually executes of
// the application), the counted instructions (what the hardware counter
// reports: base plus probe instructions), and the probe wall-time added to
// the segment.
func (c Config) ComputeCost(op npb.Op) (base, counted, probeTime float64) {
	base = op.Action.Instructions * c.compileScale()
	counted = base
	if c.Mode == Fine {
		k := c.costs()
		counted += k.AppProbeInstr * op.Calls
		probeTime = k.AppProbeTime * op.Calls
	}
	return base, counted, probeTime
}

// MPICost evaluates an MPI operation: the extra counted instructions and
// the probe wall-time attributable to the event.
func (c Config) MPICost(op npb.Op) (extraInstr, probeTime float64) {
	k := c.costs()
	switch c.Mode {
	case Fine:
		return k.MPIProbeInstrFine, k.MPIEventTimeFine
	case Minimal:
		return k.MPIProbeInstrMinimal, k.MPIEventTimeMinimal
	default:
		return 0, 0
	}
}

// Counters streams the whole workload and returns the per-rank hardware
// instruction counter readings an acquisition run with this configuration
// would measure. Mode None returns an error: the original build exposes no
// counters.
func Counters(w npb.Workload, cfg Config) ([]float64, error) {
	if cfg.Mode == None {
		return nil, fmt.Errorf("instrument: the uninstrumented build has no counters")
	}
	out := make([]float64, w.Ranks())
	for rank := 0; rank < w.Ranks(); rank++ {
		st, err := w.Rank(rank)
		if err != nil {
			return nil, err
		}
		total := cfg.costs().CoarseSectionInstr // section-boundary reads
		for {
			op, ok, err := st.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if op.Action.Kind == trace.Compute {
				_, counted, _ := cfg.ComputeCost(op)
				total += counted
			} else if op.Action.Kind != trace.Init && op.Action.Kind != trace.Finalize {
				extra, _ := cfg.MPICost(op)
				total += extra
			}
		}
		out[rank] = total
	}
	return out, nil
}

// Acquired exposes the time-independent trace an instrumented run of w
// produces: compute volumes are the per-segment *counter* readings (base
// instructions inflated by the probes firing inside and around the
// segment), which is exactly how instrumentation error propagates into the
// replay (Section 2.2: "it will likely simulate something closer to the
// instrumented version than the original application").
type Acquired struct {
	W   npb.Workload
	Cfg Config
}

// NumRanks implements trace.Provider.
func (a Acquired) NumRanks() int { return a.W.Ranks() }

// Rank implements trace.Provider.
func (a Acquired) Rank(rank int) (trace.Stream, error) {
	ops, err := a.W.Rank(rank)
	if err != nil {
		return nil, err
	}
	if a.Cfg.Mode == None {
		return nil, fmt.Errorf("instrument: cannot acquire a trace from an uninstrumented run")
	}
	return &acquiredStream{ops: ops, cfg: a.Cfg}, nil
}

type acquiredStream struct {
	ops npb.OpStream
	cfg Config
	// pendingExtra accumulates MPI probe instructions to be charged to the
	// next compute segment (the counter read happens on MPI entry, so
	// wrapper instructions land in the preceding inter-MPI interval; we
	// fold them forward, which is equivalent in total).
	pendingExtra float64
}

func (s *acquiredStream) Next() (trace.Action, bool, error) {
	for {
		op, ok, err := s.ops.Next()
		if err != nil || !ok {
			return trace.Action{}, ok, err
		}
		a := op.Action
		if a.Kind == trace.Compute {
			_, counted, _ := s.cfg.ComputeCost(op)
			a.Instructions = counted + s.pendingExtra
			s.pendingExtra = 0
			return a, true, nil
		}
		if a.Kind != trace.Init && a.Kind != trace.Finalize {
			extra, _ := s.cfg.MPICost(op)
			s.pendingExtra += extra
		}
		return a, true, nil
	}
}
