package instrument

import (
	"math"
	"testing"

	"tireplay/internal/npb"
	"tireplay/internal/trace"
)

func computeOp(instr, calls float64) npb.Op {
	return npb.Op{
		Action: trace.Action{Rank: 0, Kind: trace.Compute, Instructions: instr, Peer: -1},
		Calls:  calls,
	}
}

func sendOp() npb.Op {
	return npb.Op{Action: trace.Action{Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 100}, Calls: 1}
}

func TestComputeCostNone(t *testing.T) {
	cfg := Config{Mode: None, Compile: O0}
	base, counted, probe := cfg.ComputeCost(computeOp(1000, 10))
	if base != 1000 || counted != 1000 || probe != 0 {
		t.Fatalf("none: %v %v %v", base, counted, probe)
	}
}

func TestComputeCostFineAddsProbes(t *testing.T) {
	cfg := Config{Mode: Fine, Compile: O0}
	base, counted, probe := cfg.ComputeCost(computeOp(1000, 10))
	if base != 1000 {
		t.Fatalf("base = %v", base)
	}
	if counted != 1000+DefaultCosts.AppProbeInstr*10 {
		t.Fatalf("counted = %v", counted)
	}
	if probe != DefaultCosts.AppProbeTime*10 {
		t.Fatalf("probe time = %v", probe)
	}
}

func TestComputeCostMinimalAddsNothingPerCall(t *testing.T) {
	cfg := Config{Mode: Minimal, Compile: O0}
	base, counted, probe := cfg.ComputeCost(computeOp(1000, 10))
	if base != 1000 || counted != 1000 || probe != 0 {
		t.Fatalf("minimal compute: %v %v %v", base, counted, probe)
	}
}

func TestO3ScalesBaseNotProbes(t *testing.T) {
	cfg := Config{Mode: Fine, Compile: O3, Class: npb.ClassB}
	base, counted, _ := cfg.ComputeCost(computeOp(1000, 10))
	wantBase := 1000 * O3Scale(npb.ClassB)
	if math.Abs(base-wantBase) > 1e-9 {
		t.Fatalf("base = %v, want %v", base, wantBase)
	}
	if math.Abs((counted-base)-DefaultCosts.AppProbeInstr*10) > 1e-9 {
		t.Fatalf("probe instructions were scaled: %v", counted-base)
	}
}

func TestO3ScalePerClass(t *testing.T) {
	if O3Scale(npb.ClassB) != 0.82 || O3Scale(npb.ClassC) != 0.76 {
		t.Fatalf("O3 scales = %v, %v", O3Scale(npb.ClassB), O3Scale(npb.ClassC))
	}
	if O3Scale(npb.ClassA) != 0.82 {
		t.Fatalf("default O3 scale = %v", O3Scale(npb.ClassA))
	}
}

func TestMPICostByMode(t *testing.T) {
	fine, _ := Config{Mode: Fine}.MPICost(sendOp())
	min, _ := Config{Mode: Minimal}.MPICost(sendOp())
	coarse, _ := Config{Mode: Coarse}.MPICost(sendOp())
	none, _ := Config{Mode: None}.MPICost(sendOp())
	if fine != DefaultCosts.MPIProbeInstrFine || min != DefaultCosts.MPIProbeInstrMinimal {
		t.Fatalf("fine=%v min=%v", fine, min)
	}
	if coarse != 0 || none != 0 {
		t.Fatalf("coarse=%v none=%v, want 0", coarse, none)
	}
	if fine <= min {
		t.Fatal("fine MPI probes should cost more than minimal")
	}
}

func TestCustomCostsOverride(t *testing.T) {
	costs := Costs{AppProbeInstr: 1, AppProbeTime: 2, MPIProbeInstrFine: 3, MPIEventTimeFine: 4}
	cfg := Config{Mode: Fine, Costs: &costs}
	_, counted, probe := cfg.ComputeCost(computeOp(0, 5))
	if counted != 5 || probe != 10 {
		t.Fatalf("custom costs: counted=%v probe=%v", counted, probe)
	}
	extra, ptime := cfg.MPICost(sendOp())
	if extra != 3 || ptime != 4 {
		t.Fatalf("custom MPI costs: %v %v", extra, ptime)
	}
}

func TestCountersFineExceedCoarse(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Counters(lu, Config{Mode: Coarse})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Counters(lu, Config{Mode: Fine})
	if err != nil {
		t.Fatal(err)
	}
	min, err := Counters(lu, Config{Mode: Minimal})
	if err != nil {
		t.Fatal(err)
	}
	for r := range coarse {
		if !(fine[r] > min[r] && min[r] > coarse[r]) {
			t.Fatalf("rank %d: fine=%v min=%v coarse=%v, want fine>min>coarse",
				r, fine[r], min[r], coarse[r])
		}
	}
}

func TestCountersMatchBaseInstructions(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Counters(lu, Config{Mode: Coarse})
	if err != nil {
		t.Fatal(err)
	}
	for r := range coarse {
		want := lu.BaseInstructions(r) + DefaultCosts.CoarseSectionInstr
		if math.Abs(coarse[r]-want) > 1e-6*want {
			t.Fatalf("rank %d coarse counter = %v, want %v", r, coarse[r], want)
		}
	}
}

func TestCountersRejectNone(t *testing.T) {
	lu, _ := npb.NewLU(npb.ClassS, 4, 1)
	if _, err := Counters(lu, Config{Mode: None}); err == nil {
		t.Fatal("expected error for uninstrumented counters")
	}
}

// TestFineDiscrepancyInPaperBand: the relative counter difference between
// fine and coarse instrumentation of B-8 must land in the ~10-16% band of
// Figures 1 and 2.
func TestFineDiscrepancyInPaperBand(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassB, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	coarse, _ := Counters(lu, Config{Mode: Coarse})
	fine, _ := Counters(lu, Config{Mode: Fine})
	for r := range coarse {
		diff := 100 * (fine[r] - coarse[r]) / coarse[r]
		if diff < 8 || diff > 18 {
			t.Fatalf("rank %d fine-vs-coarse = %.2f%%, want in [8,18]", r, diff)
		}
	}
}

// TestMinimalDiscrepancySmall: minimal instrumentation must keep the
// counter discrepancy below ~6% for B-8 (Figures 4/5).
func TestMinimalDiscrepancySmall(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassB, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfgMin := Config{Mode: Minimal, Compile: O3, Class: npb.ClassB}
	cfgCoarse := Config{Mode: Coarse, Compile: O3, Class: npb.ClassB}
	coarse, _ := Counters(lu, cfgCoarse)
	min, _ := Counters(lu, cfgMin)
	for r := range coarse {
		diff := 100 * (min[r] - coarse[r]) / coarse[r]
		if diff < 0 || diff > 6 {
			t.Fatalf("rank %d minimal-vs-coarse = %.2f%%, want in [0,6]", r, diff)
		}
	}
}

// TestDiscrepancyGrowsWithProcesses reproduces the trend of Figure 2: the
// fine-instrumentation discrepancy increases with the process count.
func TestDiscrepancyGrowsWithProcesses(t *testing.T) {
	mean := func(procs int) float64 {
		lu, err := npb.NewLU(npb.ClassB, procs, 5)
		if err != nil {
			t.Fatal(err)
		}
		coarse, _ := Counters(lu, Config{Mode: Coarse})
		fine, _ := Counters(lu, Config{Mode: Fine})
		s := 0.0
		for r := range coarse {
			s += (fine[r] - coarse[r]) / coarse[r]
		}
		return s / float64(procs)
	}
	d8, d128 := mean(8), mean(128)
	if d128 <= d8 {
		t.Fatalf("discrepancy at 128 procs (%.3f) not larger than at 8 (%.3f)", d128, d8)
	}
}

func TestAcquiredTraceInflatesVolumes(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(p trace.Provider) float64 {
		st, err := p.Rank(0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return total
			}
			if a.Kind == trace.Compute {
				total += a.Instructions
			}
		}
	}
	perfect := sum(npb.AsProvider(lu))
	fine := sum(Acquired{W: lu, Cfg: Config{Mode: Fine}})
	if fine <= perfect {
		t.Fatalf("fine trace volume %v <= perfect %v", fine, perfect)
	}
}

func TestAcquiredTraceStructurePreserved(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same action kinds in the same order as the perfect trace.
	perfect, _ := npb.AsProvider(lu).Rank(1)
	acquired, _ := Acquired{W: lu, Cfg: Config{Mode: Minimal}}.Rank(1)
	for i := 0; ; i++ {
		pa, pok, _ := perfect.Next()
		aa, aok, _ := acquired.Next()
		if pok != aok {
			t.Fatalf("stream lengths diverge at %d", i)
		}
		if !pok {
			break
		}
		if pa.Kind != aa.Kind || pa.Peer != aa.Peer || pa.Bytes != aa.Bytes {
			t.Fatalf("action %d differs: %+v vs %+v", i, pa, aa)
		}
	}
}

func TestAcquiredTraceValidates(t *testing.T) {
	lu, err := npb.NewLU(npb.ClassS, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(Acquired{W: lu, Cfg: Config{Mode: Fine}}); err != nil {
		t.Fatal(err)
	}
}

func TestAcquiredRejectsNone(t *testing.T) {
	lu, _ := npb.NewLU(npb.ClassS, 2, 1)
	if _, err := (Acquired{W: lu, Cfg: Config{Mode: None}}).Rank(0); err == nil {
		t.Fatal("expected error acquiring from uninstrumented run")
	}
}

func TestModeAndCompileStrings(t *testing.T) {
	if Fine.String() != "fine" || Minimal.String() != "minimal" || None.String() != "none" || Coarse.String() != "coarse" {
		t.Fatal("mode names wrong")
	}
	if O0.String() != "-O0" || O3.String() != "-O3" {
		t.Fatal("compile names wrong")
	}
	cfg := Config{Mode: Fine, Compile: O3}
	if cfg.String() != "fine,-O3" {
		t.Fatalf("config string = %q", cfg.String())
	}
}
