package msgreplay

import (
	"math"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/sim"
)

func testWorld(t *testing.T, n int, cfg Config) (*World, *sim.Engine) {
	t.Helper()
	p, err := platform.NewFlatCluster(platform.FlatConfig{
		Name: "m", Hosts: n, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p)
	w, err := NewWorld(e, p.Hosts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, e
}

func TestSmallSendIsAsyncButNotDetached(t *testing.T) {
	// The sender returns immediately, but the transfer only starts when the
	// receiver posts: a late receiver pays full latency + transfer.
	w, e := testWorld(t, 2, Config{})
	var sendEnd, recvWait float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 2048) // small
		sendEnd = r.Proc().Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(1)
		before := r.Proc().Now()
		r.Recv(0)
		recvWait = r.Proc().Now() - before
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd != 0 {
		t.Fatalf("async send end = %v, want 0", sendEnd)
	}
	wantWait := 2.1e-5 + 2048/1e9
	if math.Abs(recvWait-wantWait) > 1e-9 {
		t.Fatalf("recv wait = %v, want %v (transfer starts at match)", recvWait, wantWait)
	}
}

func TestLargeSendBlocks(t *testing.T) {
	w, e := testWorld(t, 2, Config{})
	var sendEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 1<<20)
		sendEnd = r.Proc().Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(0.5)
		r.Recv(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd < 0.5 {
		t.Fatalf("large send returned at %v, want blocking", sendEnd)
	}
}

func TestIsendWaitBalanced(t *testing.T) {
	w, e := testWorld(t, 2, Config{})
	w.Spawn(0, func(r *Rank) {
		c := r.Isend(1, 100)
		r.Wait(c)
	})
	w.Spawn(1, func(r *Rank) { r.Recv(0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIrecvWait(t *testing.T) {
	w, e := testWorld(t, 2, Config{})
	var end float64
	w.Spawn(0, func(r *Rank) {
		c := r.Irecv(1)
		r.Compute(1e9) // overlap
		r.Wait(c)
		end = r.Proc().Now()
	})
	w.Spawn(1, func(r *Rank) { r.Send(0, 500) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1.0) > 1e-3 {
		t.Fatalf("end = %v, want ~1.0 (compute dominates)", end)
	}
}

func TestMonolithicCollectiveSynchronizesAll(t *testing.T) {
	const n = 4
	w, e := testWorld(t, n, Config{RefLatency: 1e-3, RefBandwidth: 1e9})
	ends := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.Proc().Sleep(float64(i) * 0.1)
			r.Bcast(1024, 0)
			ends[i] = r.Proc().Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Monolithic model: everyone leaves at lastArrival + log2(4)*(lat+size/bw).
	want := 0.3 + 2*(1e-3+1024/1e9)
	for i, end := range ends {
		if math.Abs(end-want) > 1e-9 {
			t.Fatalf("rank %d bcast end = %v, want %v", i, end, want)
		}
	}
}

func TestCollectiveFormulas(t *testing.T) {
	const n = 8
	cfg := Config{RefLatency: 1e-3, RefBandwidth: 1e8}
	cases := []struct {
		name string
		call func(r *Rank)
		want float64
	}{
		{"barrier", func(r *Rank) { r.Barrier() }, 3 * 1e-3},
		{"bcast", func(r *Rank) { r.Bcast(1e6, 0) }, 3 * (1e-3 + 1e6/1e8)},
		{"reduce", func(r *Rank) { r.Reduce(1e6, 0) }, 3 * (1e-3 + 1e6/1e8)},
		{"allreduce", func(r *Rank) { r.AllReduce(1e6) }, 6 * (1e-3 + 1e6/1e8)},
		{"alltoall", func(r *Rank) { r.AllToAll(1e6) }, 7 * (1e-3 + 1e6/1e8)},
		{"gather", func(r *Rank) { r.Gather(1e6, 0) }, 7 * (1e-3 + 1e6/1e8)},
		{"allgather", func(r *Rank) { r.AllGather(1e6) }, 7 * (1e-3 + 1e6/1e8)},
	}
	for _, tc := range cases {
		w, e := testWorld(t, n, cfg)
		ends := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, func(r *Rank) {
				tc.call(r)
				ends[i] = r.Proc().Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i, end := range ends {
			if math.Abs(end-tc.want) > 1e-9 {
				t.Fatalf("%s: rank %d end = %v, want %v", tc.name, i, end, tc.want)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	p, _ := platform.NewFlatCluster(platform.FlatConfig{
		Name: "m", Hosts: 1, Speed: 1e9,
		LinkBandwidth: 1e9, BackboneBandwidth: 1e10,
	})
	e := sim.NewEngine(p)
	if _, err := NewWorld(e, nil, Config{}); err == nil {
		t.Error("expected error for empty hosts")
	}
	if _, err := NewWorld(e, p.Hosts(), Config{RefLatency: -1}); err == nil {
		t.Error("expected error for negative latency")
	}
}

func TestDefaultEagerThreshold(t *testing.T) {
	var c Config
	if c.eagerThreshold() != 65536 {
		t.Fatalf("default threshold = %v", c.eagerThreshold())
	}
	c.EagerThreshold = 1000
	if c.eagerThreshold() != 1000 {
		t.Fatalf("custom threshold = %v", c.eagerThreshold())
	}
}
