package msgreplay

import (
	"fmt"

	"tireplay/internal/sim"
)

// TaskRank compiles one rank's MSG-style replay calls into sim micro-ops,
// mirroring the Rank methods op for op: the same mailbox space, the same
// eager/blocking split, the same shared barrier and monolithic collective
// formulas. Registers: 0 for blocking sends, 1 for blocking receives; the
// pending FIFO carries isend/irecv across actions.
type TaskRank struct {
	world *World
	rank  int
}

// TaskRank returns the compiler for one rank.
func (w *World) TaskRank(rank int) *TaskRank {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("msgreplay: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	return &TaskRank{world: w, rank: rank}
}

// Rank returns the compiled rank's index.
func (tr *TaskRank) Rank() int { return tr.rank }

// Compute compiles Rank.Compute.
func (tr *TaskRank) Compute(p *sim.Prog, instr float64) {
	p.Exec(instr)
}

// Send compiles Rank.Send: small messages are fire-and-forget asynchronous
// sends, large ones block.
func (tr *TaskRank) Send(p *sim.Prog, dst int, bytes float64) {
	if bytes < tr.world.cfg.eagerThreshold() {
		p.PutDiscard(tr.world.box(tr.rank, dst), bytes)
		return
	}
	p.Put(tr.world.box(tr.rank, dst), bytes, 0)
	p.WaitReg(0)
}

// Isend compiles Rank.Isend onto the pending FIFO.
func (tr *TaskRank) Isend(p *sim.Prog, dst int, bytes float64) {
	p.PutPending(tr.world.box(tr.rank, dst), bytes)
}

// Recv compiles Rank.Recv.
func (tr *TaskRank) Recv(p *sim.Prog, src int) {
	p.Get(tr.world.box(src, tr.rank), 1)
	p.WaitReg(1)
}

// Irecv compiles Rank.Irecv onto the pending FIFO.
func (tr *TaskRank) Irecv(p *sim.Prog, src int) {
	p.GetPending(tr.world.box(src, tr.rank))
}

// collective compiles Rank.collective: synchronize, then charge d.
func (tr *TaskRank) collective(p *sim.Prog, d float64) {
	p.Await(tr.world.barrier)
	if d > 0 {
		p.Sleep(d)
	}
}

// Barrier compiles Rank.Barrier.
func (tr *TaskRank) Barrier(p *sim.Prog) {
	tr.collective(p, tr.world.log2ceil()*tr.world.cfg.RefLatency)
}

// Bcast compiles Rank.Bcast.
func (tr *TaskRank) Bcast(p *sim.Prog, bytes float64, root int) {
	tr.collective(p, tr.world.log2ceil()*tr.world.perHop(bytes))
}

// Reduce compiles Rank.Reduce.
func (tr *TaskRank) Reduce(p *sim.Prog, bytes float64, root int) {
	tr.collective(p, tr.world.log2ceil()*tr.world.perHop(bytes))
}

// AllReduce compiles Rank.AllReduce.
func (tr *TaskRank) AllReduce(p *sim.Prog, bytes float64) {
	tr.collective(p, 2*tr.world.log2ceil()*tr.world.perHop(bytes))
}

// AllToAll compiles Rank.AllToAll.
func (tr *TaskRank) AllToAll(p *sim.Prog, bytes float64) {
	tr.collective(p, float64(tr.world.Size()-1)*tr.world.perHop(bytes))
}

// Gather compiles Rank.Gather.
func (tr *TaskRank) Gather(p *sim.Prog, bytes float64, root int) {
	tr.collective(p, float64(tr.world.Size()-1)*tr.world.perHop(bytes))
}

// AllGather compiles Rank.AllGather.
func (tr *TaskRank) AllGather(p *sim.Prog, bytes float64) {
	tr.collective(p, float64(tr.world.Size()-1)*tr.world.perHop(bytes))
}

// AllToAllV compiles Rank.AllToAllV: the same vectorHops charge.
func (tr *TaskRank) AllToAllV(p *sim.Prog, vols []float64) {
	tr.collective(p, tr.world.vectorHops(vols, tr.rank))
}

// AllGatherV compiles Rank.AllGatherV.
func (tr *TaskRank) AllGatherV(p *sim.Prog, vols []float64) {
	tr.collective(p, tr.world.vectorHops(vols, tr.rank))
}
