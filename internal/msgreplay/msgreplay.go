// Package msgreplay reimplements the paper's *first* trace replay backend,
// the one built on SimGrid's MSG API (Section 2.4 and the beginning of
// Section 3.3). It exists as the baseline whose inaccuracy Figure 3 shows:
//
//   - small messages (< 64 KiB) are sent with a plain asynchronous send —
//     the transfer only starts when the receiver posts its receive, unlike
//     the detached eager mode of real MPI runtimes ("we tried to model that
//     by using an asynchronous send for such small messages. However, it is
//     not what is actually implemented by most MPI runtimes");
//   - large messages use a fully blocking task send;
//   - collective operations are modelled by monolithic formulas instead of
//     being simulated as sets of point-to-point messages, and synchronize
//     all ranks;
//   - the network model is factor-free (no piece-wise-linear corrections).
package msgreplay

import (
	"fmt"
	"math"

	"tireplay/internal/sim"
)

// Config holds the reference network figures used by the monolithic
// collective formulas (the MSG prototype hard-coded comparable constants).
type Config struct {
	// EagerThreshold mirrors the "size < 65536" test of the original
	// action_send; zero selects 65536.
	EagerThreshold float64 `json:"eager_threshold,omitempty"`
	// RefLatency and RefBandwidth parameterize the collective formulas.
	RefLatency   float64 `json:"ref_latency,omitempty"`
	RefBandwidth float64 `json:"ref_bandwidth,omitempty"`
}

func (c Config) eagerThreshold() float64 {
	if c.EagerThreshold == 0 {
		return 65536
	}
	return c.EagerThreshold
}

// PrototypeConfig returns the reference network figures the original MSG
// prototype hard-coded (the values every paper-faithful replay of the first
// implementation uses).
func PrototypeConfig() Config {
	return Config{RefLatency: 6.5e-5, RefBandwidth: 1.25e8}
}

// World is the MSG-style replay context: ranks mapped to hosts and a shared
// barrier for monolithic collectives.
type World struct {
	engine  *sim.Engine
	hosts   []*sim.Host
	cfg     Config
	barrier *sim.Barrier
	pairs   *sim.PairSpace
}

// NewWorld creates a replay context for len(hosts) ranks. The pair mailbox
// space is deliberately not pinned: MSG transfers start only when both sides
// are present, which is the modelling deficiency the paper fixes.
func NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg Config) (*World, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("msgreplay: empty host list")
	}
	if cfg.RefLatency < 0 || cfg.RefBandwidth < 0 {
		return nil, fmt.Errorf("msgreplay: negative reference network figures")
	}
	return &World{
		engine:  engine,
		hosts:   hosts,
		cfg:     cfg,
		barrier: engine.NewBarrier(len(hosts)),
		pairs:   engine.NewPairSpace("m", nil),
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.hosts) }

// Spawn starts one rank's body.
func (w *World) Spawn(rank int, body func(*Rank)) {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("msgreplay: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	w.engine.Spawn(fmt.Sprintf("msg-rank%d", rank), w.hosts[rank], func(p *sim.Proc) {
		body(&Rank{world: w, rank: rank, proc: p})
	})
}

// SpawnProg starts one rank as a continuation program; see TaskRank for the
// compiler producing such feeds.
func (w *World) SpawnProg(rank int, feed sim.Feed) {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("msgreplay: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	w.engine.SpawnProg(fmt.Sprintf("msg-rank%d", rank), w.hosts[rank], feed)
}

func (w *World) box(src, dst int) sim.Mbox { return w.pairs.Box(src, dst) }

// Rank is one replayed process under the MSG backend.
type Rank struct {
	world *World
	rank  int
	proc  *sim.Proc
}

// Rank returns the process rank.
func (r *Rank) Rank() int { return r.rank }

// Proc exposes the simulated process.
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Compute executes instructions at the host speed.
func (r *Rank) Compute(instr float64) { r.proc.Execute(instr) }

// Send reproduces the original action_send: below the threshold the message
// becomes a fire-and-forget asynchronous send (the transfer starts only at
// match time); at or above it, a blocking task send.
func (r *Rank) Send(dst int, bytes float64) {
	if bytes < r.world.cfg.eagerThreshold() {
		r.proc.PutAsyncBox(r.world.box(r.rank, dst), bytes)
		return
	}
	r.proc.PutBox(r.world.box(r.rank, dst), bytes)
}

// Isend posts an asynchronous send and returns the underlying comm so that
// explicit isend/wait trace pairs stay balanced.
func (r *Rank) Isend(dst int, bytes float64) *sim.Comm {
	return r.proc.PutAsyncBox(r.world.box(r.rank, dst), bytes)
}

// Recv blocks until a message from src is fully received; with unpinned
// mailboxes this always pays the full latency + size/bandwidth from match
// time, the root cause of the linearly growing error of Figure 3.
func (r *Rank) Recv(src int) {
	r.proc.GetBox(r.world.box(src, r.rank))
}

// Irecv posts an asynchronous receive.
func (r *Rank) Irecv(src int) *sim.Comm {
	return r.proc.GetAsyncBox(r.world.box(src, r.rank))
}

// Wait blocks on an asynchronous receive.
func (r *Rank) Wait(c *sim.Comm) {
	if c != nil {
		r.proc.WaitComm(c)
	}
}

// WaitAny blocks until at least one comm in cs has completed and returns the
// index of the lowest-indexed completed one. MSG comms are never nil (even
// small sends return a live comm), so the set passes through unchanged.
func (r *Rank) WaitAny(cs []*sim.Comm) int {
	return r.proc.WaitAnyComm(cs)
}

// collective synchronizes all ranks, then charges everyone the monolithic
// duration d computed from the reference network figures.
func (r *Rank) collective(d float64) {
	r.world.barrier.Await(r.proc)
	if d > 0 {
		r.proc.Sleep(d)
	}
}

func (w *World) log2ceil() float64 {
	return math.Ceil(math.Log2(float64(w.Size())))
}

// perHop is the modelled cost of moving bytes across one logical hop.
func (w *World) perHop(bytes float64) float64 {
	d := w.cfg.RefLatency
	if w.cfg.RefBandwidth > 0 {
		d += bytes / w.cfg.RefBandwidth
	}
	return d
}

// Barrier applies the monolithic model: log2(P) latency hops.
func (r *Rank) Barrier() {
	r.collective(r.world.log2ceil() * r.world.cfg.RefLatency)
}

// Bcast charges log2(P) full hops.
func (r *Rank) Bcast(bytes float64, root int) {
	r.collective(r.world.log2ceil() * r.world.perHop(bytes))
}

// Reduce charges log2(P) full hops.
func (r *Rank) Reduce(bytes float64, root int) {
	r.collective(r.world.log2ceil() * r.world.perHop(bytes))
}

// AllReduce charges 2*log2(P) full hops (reduce then broadcast).
func (r *Rank) AllReduce(bytes float64) {
	r.collective(2 * r.world.log2ceil() * r.world.perHop(bytes))
}

// AllToAll charges P-1 full hops.
func (r *Rank) AllToAll(bytes float64) {
	r.collective(float64(r.world.Size()-1) * r.world.perHop(bytes))
}

// Gather charges P-1 full hops.
func (r *Rank) Gather(bytes float64, root int) {
	r.collective(float64(r.world.Size()-1) * r.world.perHop(bytes))
}

// AllGather charges P-1 full hops.
func (r *Rank) AllGather(bytes float64) {
	r.collective(float64(r.world.Size()-1) * r.world.perHop(bytes))
}

// vectorHops sums the per-hop cost of the P-1 distinct volumes a vector
// collective moves through rank's position: one hop per peer, each at its
// own size. It is the vector generalization of the (P-1)*perHop(bytes)
// formulas above.
func (w *World) vectorHops(vols []float64, rank int) float64 {
	var d float64
	for k, v := range vols {
		if k == rank {
			continue
		}
		d += w.perHop(v)
	}
	return d
}

// AllToAllV charges one hop per peer at that peer's send volume.
func (r *Rank) AllToAllV(vols []float64) {
	r.collective(r.world.vectorHops(vols, r.rank))
}

// AllGatherV charges one hop per remote block at that block's size.
func (r *Rank) AllGatherV(vols []float64) {
	r.collective(r.world.vectorHops(vols, r.rank))
}
