// Package stats provides the small set of statistics helpers used by the
// trace-replay experiments: summary statistics over per-process samples,
// relative errors, and fixed-seed deterministic jitter sources.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty sample sets.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// RelErr returns the relative error of predicted with regard to reference,
// in percent: 100*(predicted-reference)/reference. A positive value means
// the prediction overestimates the reference.
func RelErr(predicted, reference float64) float64 {
	if reference == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(int(math.Copysign(1, predicted)))
	}
	return 100 * (predicted - reference) / reference
}

// Summary condenses a per-process sample distribution into the values the
// paper's box-plot style figures display.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var s Summary
	var err error
	s.N = len(xs)
	if s.Min, err = Min(xs); err != nil {
		return s, err
	}
	if s.Max, err = Max(xs); err != nil {
		return s, err
	}
	if s.Q1, err = Quantile(xs, 0.25); err != nil {
		return s, err
	}
	if s.Median, err = Quantile(xs, 0.5); err != nil {
		return s, err
	}
	if s.Q3, err = Quantile(xs, 0.75); err != nil {
		return s, err
	}
	if s.Mean, err = Mean(xs); err != nil {
		return s, err
	}
	return s, nil
}

// String renders the summary as "min/q1/med/q3/max (mean)" with two decimals.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f/%.2f/%.2f/%.2f/%.2f (mean %.2f)",
		s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}
