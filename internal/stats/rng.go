package stats

// RNG is a small deterministic pseudo-random generator (SplitMix64) used to
// model per-process jitter in the ground-truth cluster emulation. We do not
// use math/rand so that streams are stable across Go releases and cheap to
// fork per process: reproducibility of the "real" cluster runs is what makes
// the accuracy experiments meaningful.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent stream for the given process index. Streams
// forked from the same parent with different ids never collide in practice
// (golden-ratio increments land in distinct orbits).
func (r *RNG) Fork(id uint64) *RNG {
	return &RNG{state: r.state ^ (id+1)*0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns a multiplicative noise factor uniform in [1-amp, 1+amp].
func (r *RNG) Jitter(amp float64) float64 {
	return 1 + amp*(2*r.Float64()-1)
}

// Normal returns an approximately normal deviate with mean 0 and the given
// standard deviation, via the sum of twelve uniforms (Irwin-Hall). Accurate
// enough for jitter modelling and branch-free.
func (r *RNG) Normal(stddev float64) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return (s - 6) * stddev
}
