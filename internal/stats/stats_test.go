package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSimple(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m != 2.5 {
		t.Fatalf("mean = %v, want 2.5", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("max = %v, want 7", m)
	}
}

func TestQuantileMedianOdd(t *testing.T) {
	q, err := Quantile([]float64{5, 1, 3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Fatalf("median = %v, want 3", q)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	q, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2.5 {
		t.Fatalf("q25 = %v, want 2.5", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 9 || xs[1] != 1 || xs[2] != 5 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileRejectsOutOfRange(t *testing.T) {
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("expected error for q>1")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("expected error for q<0")
	}
}

func TestStddev(t *testing.T) {
	s, err := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s)
	}
}

func TestRelErrSigns(t *testing.T) {
	if e := RelErr(110, 100); math.Abs(e-10) > 1e-12 {
		t.Errorf("overestimate: %v, want 10", e)
	}
	if e := RelErr(90, 100); math.Abs(e+10) > 1e-12 {
		t.Errorf("underestimate: %v, want -10", e)
	}
	if e := RelErr(0, 0); e != 0 {
		t.Errorf("0/0: %v, want 0", e)
	}
	if e := RelErr(1, 0); !math.IsInf(e, 1) {
		t.Errorf("1/0: %v, want +Inf", e)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %v/%v, want 2/4", s.Q1, s.Q3)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		q0, _ := Quantile(xs, 0)
		q1, _ := Quantile(xs, 1)
		return q0 == lo && q1 == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m, _ := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return m >= lo-1e-6 && m <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(7)
	a, b := r.Fork(0), r.Fork(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGJitterRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(0.05)
		if j < 0.95 || j > 1.05 {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	n := 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	if math.Abs(mean) > 0.1 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(sd-2) > 0.1 {
		t.Errorf("normal stddev = %v, want ~2", sd)
	}
}
