package core

// This file is the one rank-driver loop shared by every backend: it pulls
// actions off a rank's trace stream and issues them through RankOps. It
// replaces the two copy-pasted per-backend loops of the original design and
// reports malformed traces as structured errors instead of panicking.

import (
	"errors"
	"fmt"

	"tireplay/internal/trace"
)

// Sentinel causes of trace replay failures, matchable with errors.Is.
var (
	// ErrNoOutstandingRequest reports a wait action with no nonblocking
	// operation left to wait on.
	ErrNoOutstandingRequest = errors.New("wait with no outstanding request")
	// ErrUnsupportedAction reports an action kind the driver cannot replay.
	ErrUnsupportedAction = errors.New("unsupported action kind")
)

// TraceError reports a malformed trace detected while replaying one rank.
// It is surfaced through Replay (and hence Scenario.Run) wrapped, so callers
// can match it with errors.As and its cause with errors.Is.
type TraceError struct {
	// Backend is the name of the backend that was replaying.
	Backend string
	// Rank is the rank whose stream was malformed.
	Rank int
	// Kind is the offending action kind, when the failure is tied to one.
	Kind trace.Kind
	// Err is the underlying cause.
	Err error
}

func (e *TraceError) Error() string {
	return fmt.Sprintf("%s replay, rank %d, action %q: %v", e.Backend, e.Rank, e.Kind, e.Err)
}

func (e *TraceError) Unwrap() error { return e.Err }

// spawnRank starts rank's replay process on world: the shared driver loop
// runs the stream to completion and aborts the whole simulation with a
// structured error on a malformed trace.
func spawnRank(world World, backend string, rank, nranks int, stream trace.Stream, actions *int64) {
	world.Spawn(rank, func(ops RankOps) {
		if err := driveRank(ops, rank, nranks, stream, actions); err != nil {
			var te *TraceError
			if errors.As(err, &te) && te.Backend == "" {
				te.Backend = backend
			}
			ops.Proc().Fail(err)
		}
	})
}

// driveRank replays one rank's action stream through ops. Nonblocking
// operations are queued and consumed FIFO by wait/waitall, matching how the
// trace acquisition records MPI_Wait on the oldest outstanding request.
// Wait-any consumes whichever pending operation the backend reports complete
// first; waitsome is k successive wait-anys. Every action is bounds-checked
// against the communicator size before it reaches the backend, so an
// out-of-range peer or root in a trace surfaces as a TraceError instead of a
// backend panic (or a hang on a mailbox nobody serves).
func driveRank(ops RankOps, rank, nranks int, stream trace.Stream, actions *int64) error {
	var pending []Request
	for {
		a, ok, err := stream.Next()
		if err != nil {
			return &TraceError{Rank: rank, Err: fmt.Errorf("reading stream: %w", err)}
		}
		if !ok {
			return nil
		}
		// The engine is single-threaded (lockstep), so the shared counter
		// needs no synchronization.
		*actions++
		if err := a.ValidateIn(nranks); err != nil {
			return &TraceError{Rank: rank, Kind: a.Kind, Err: err}
		}
		switch a.Kind {
		case trace.Init, trace.Finalize:
			// Structural markers: no simulated cost.
		case trace.Compute:
			ops.Compute(a.Instructions)
		case trace.Send:
			ops.Send(a.Peer, a.Bytes)
		case trace.ISend:
			pending = append(pending, ops.Isend(a.Peer, a.Bytes))
		case trace.Recv:
			ops.Recv(a.Peer)
		case trace.IRecv:
			pending = append(pending, ops.Irecv(a.Peer))
		case trace.Wait:
			if len(pending) == 0 {
				return &TraceError{Rank: rank, Kind: a.Kind, Err: ErrNoOutstandingRequest}
			}
			ops.Wait(pending[0])
			pending = pending[1:]
		case trace.WaitAll:
			ops.WaitAll(pending)
			pending = pending[:0]
		case trace.WaitAny:
			if len(pending) == 0 {
				return &TraceError{Rank: rank, Kind: a.Kind, Err: ErrNoOutstandingRequest}
			}
			idx := ops.WaitAny(pending)
			pending = append(pending[:idx], pending[idx+1:]...)
		case trace.WaitSome:
			if a.Count > len(pending) {
				return &TraceError{Rank: rank, Kind: a.Kind,
					Err: fmt.Errorf("%w: waitsome of %d with %d outstanding", ErrNoOutstandingRequest, a.Count, len(pending))}
			}
			for i := 0; i < a.Count; i++ {
				idx := ops.WaitAny(pending)
				pending = append(pending[:idx], pending[idx+1:]...)
			}
		case trace.Barrier:
			ops.Barrier()
		case trace.Bcast:
			ops.Bcast(a.Bytes, a.Root)
		case trace.Reduce:
			ops.Reduce(a.Bytes, a.Root)
		case trace.AllReduce:
			ops.AllReduce(a.Bytes)
		case trace.AllToAll:
			ops.AllToAll(a.Bytes)
		case trace.Gather:
			ops.Gather(a.Bytes, a.Root)
		case trace.AllGather:
			ops.AllGather(a.Bytes)
		case trace.AllToAllV:
			ops.AllToAllV(a.Volumes)
		case trace.AllGatherV:
			ops.AllGatherV(a.Volumes)
		default:
			return &TraceError{Rank: rank, Kind: a.Kind, Err: ErrUnsupportedAction}
		}
	}
}
