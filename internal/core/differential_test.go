package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/trace"
)

// Differential property: the continuation scheduler (the default) and the
// legacy goroutine-per-rank scheduler must produce bit-identical results —
// the same simulated time, action count, and every engine counter — on
// random traces exercising every replayable action kind, for both backends
// and across model configurations. This is the test that licenses compiling
// ranks to state machines at all.

// randomTrace builds a balanced random trace over n ranks: matched
// eager and rendezvous point-to-point traffic, isend/irecv with FIFO
// wait/waitall, compute, and the full collective set.
func randomTrace(rng *rand.Rand, n int) [][]trace.Action {
	perRank := make([][]trace.Action, n)
	addAll := func(kind trace.Kind, bytes float64, root int) {
		for r := 0; r < n; r++ {
			perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: kind, Bytes: bytes, Root: root, Peer: -1})
		}
	}
	for round := 0; round < 15; round++ {
		switch rng.Intn(6) {
		case 0: // blocking exchange, size straddling the eager threshold
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(150000))
			perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.Send, Peer: dst, Bytes: size})
			perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.Recv, Peer: src, Bytes: size})
		case 1: // nonblocking pair drained by wait or waitall
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(150000))
			perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.ISend, Peer: dst, Bytes: size})
			perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.IRecv, Peer: src, Bytes: size})
			if rng.Intn(2) == 0 {
				perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.Wait, Peer: -1})
				perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.Wait, Peer: -1})
			} else {
				perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.WaitAll, Peer: -1})
				perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.WaitAll, Peer: -1})
			}
		case 2:
			for r := 0; r < n; r++ {
				perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.Compute, Instructions: float64(rng.Intn(1e6)), Peer: -1})
			}
		case 3:
			addAll(trace.Barrier, 0, 0)
		case 4:
			root := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				addAll(trace.Bcast, float64(1+rng.Intn(100000)), root)
			case 1:
				addAll(trace.Reduce, float64(1+rng.Intn(4096)), root)
			default:
				addAll(trace.Gather, float64(1+rng.Intn(4096)), root)
			}
		default:
			switch rng.Intn(3) {
			case 0:
				addAll(trace.AllReduce, float64(1+rng.Intn(100000)), 0)
			case 1:
				addAll(trace.AllToAll, float64(1+rng.Intn(8192)), 0)
			default:
				addAll(trace.AllGather, float64(1+rng.Intn(8192)), 0)
			}
		}
	}
	// Every rank finishes with a waitall so no pending request leaks.
	addAll(trace.WaitAll, 0, 0)
	return perRank
}

func TestContinuationGoroutineBitIdentical(t *testing.T) {
	configs := []Config{
		{Backend: SMPI},
		{Backend: SMPI, MPI: mpi.ModelConfig{
			SendOverhead: 1e-7, RecvOverhead: 2e-7,
			MemcpyBandwidth: 5e9, MemcpyLatency: 1e-8,
			Bcast: mpi.BcastChain, AllReduce: mpi.AllReduceRing,
		}},
		{Backend: MSG, MSG: msgreplay.Config{RefLatency: 1e-5, RefBandwidth: 1e9}},
	}
	f := func(seed int64) bool {
		// 5 ranks: odd size exercises the non-power-of-two collective paths.
		const n = 5
		rng := rand.New(rand.NewSource(seed))
		perRank := randomTrace(rng, n)
		for _, cfg := range configs {
			task := cfg
			task.GoroutineProcs = false
			goro := cfg
			goro.GoroutineProcs = true
			resTask, errTask := Replay(trace.NewMemProvider(perRank), testPlatform(t, n), task)
			resGoro, errGoro := Replay(trace.NewMemProvider(perRank), testPlatform(t, n), goro)
			if (errTask == nil) != (errGoro == nil) {
				t.Logf("error mismatch (backend %s): task=%v goroutine=%v", cfg.Backend, errTask, errGoro)
				return false
			}
			if errTask != nil {
				continue
			}
			if resTask.SimulatedTime != resGoro.SimulatedTime {
				t.Logf("backend %s: simulated time %v (continuation) != %v (goroutine)",
					cfg.Backend, resTask.SimulatedTime, resGoro.SimulatedTime)
				return false
			}
			if resTask.Actions != resGoro.Actions {
				t.Logf("backend %s: actions %d != %d", cfg.Backend, resTask.Actions, resGoro.Actions)
				return false
			}
			if resTask.Engine != resGoro.Engine {
				t.Logf("backend %s: stats diverge\n continuation: %+v\n goroutine:    %+v",
					cfg.Backend, resTask.Engine, resGoro.Engine)
				return false
			}
		}
		return true
	}
	max := 25
	if testing.Short() {
		max = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// The trace-level failure modes must also be scheduler-independent: the
// structured TraceError for an orphan wait, and the deadlock report for
// crossed blocking receives, have to read identically in both modes.
func TestTraceFailuresIdenticalAcrossSchedulers(t *testing.T) {
	cases := []struct {
		name    string
		perRank [][]trace.Action
	}{
		{"orphan-wait", [][]trace.Action{
			{{Rank: 0, Kind: trace.Compute, Instructions: 10, Peer: -1}, {Rank: 0, Kind: trace.Wait, Peer: -1}},
		}},
		{"crossed-recv-deadlock", [][]trace.Action{
			{{Rank: 0, Kind: trace.Recv, Peer: 1, Bytes: 8}, {Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 8}},
			{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 8}, {Rank: 1, Kind: trace.Send, Peer: 0, Bytes: 8}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := len(tc.perRank)
			_, errTask := Replay(trace.NewMemProvider(tc.perRank), testPlatform(t, n), Config{})
			_, errGoro := Replay(trace.NewMemProvider(tc.perRank), testPlatform(t, n), Config{GoroutineProcs: true})
			if errTask == nil || errGoro == nil {
				t.Fatalf("want errors, got task=%v goroutine=%v", errTask, errGoro)
			}
			if errTask.Error() != errGoro.Error() {
				t.Fatalf("failure reports diverge:\n continuation: %v\n goroutine:    %v", errTask, errGoro)
			}
		})
	}
}

// The continuation deadlock report is also pinned to a golden string so the
// lazy mailbox-name rendering can never drift from the historical format.
func TestCrossedRecvDeadlockGolden(t *testing.T) {
	perRank := [][]trace.Action{
		{{Rank: 0, Kind: trace.Recv, Peer: 1, Bytes: 8}},
		{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 8}},
	}
	_, err := Replay(trace.NewMemProvider(perRank), testPlatform(t, 2), Config{})
	if err == nil {
		t.Fatal("crossed receives must deadlock")
	}
	const golden = `core: replay failed: sim: deadlock at t=0 with 2 blocked process(es): ` +
		`rank0: wait(comm 1 on "p:1>0"); rank1: wait(comm 2 on "p:0>1")`
	if err.Error() != golden {
		t.Fatalf("deadlock report = %q, want %q", err.Error(), golden)
	}
}
