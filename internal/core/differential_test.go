package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/trace"
)

// Differential property: the continuation scheduler (the default) and the
// legacy goroutine-per-rank scheduler must produce bit-identical results —
// the same simulated time, action count, and every engine counter — on
// random traces exercising every replayable action kind, for both backends
// and across model configurations. This is the test that licenses compiling
// ranks to state machines at all.

// randomTrace builds a balanced random trace over n ranks: matched
// eager and rendezvous point-to-point traffic, isend/irecv with FIFO
// wait/waitall, nonblocking bursts drained by waitany/waitsome, compute,
// the full collective set, and uneven vector collectives.
func randomTrace(rng *rand.Rand, n int) [][]trace.Action {
	perRank := make([][]trace.Action, n)
	addAll := func(kind trace.Kind, bytes float64, root int) {
		for r := 0; r < n; r++ {
			perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: kind, Bytes: bytes, Root: root, Peer: -1})
		}
	}
	for round := 0; round < 15; round++ {
		switch rng.Intn(8) {
		case 0: // blocking exchange, size straddling the eager threshold
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(150000))
			perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.Send, Peer: dst, Bytes: size})
			perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.Recv, Peer: src, Bytes: size})
		case 1: // nonblocking pair drained by wait or waitall
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(150000))
			perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.ISend, Peer: dst, Bytes: size})
			perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.IRecv, Peer: src, Bytes: size})
			if rng.Intn(2) == 0 {
				perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.Wait, Peer: -1})
				perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.Wait, Peer: -1})
			} else {
				perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.WaitAll, Peer: -1})
				perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.WaitAll, Peer: -1})
			}
		case 2:
			for r := 0; r < n; r++ {
				perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.Compute, Instructions: float64(rng.Intn(1e6)), Peer: -1})
			}
		case 3:
			addAll(trace.Barrier, 0, 0)
		case 4:
			root := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				addAll(trace.Bcast, float64(1+rng.Intn(100000)), root)
			case 1:
				addAll(trace.Reduce, float64(1+rng.Intn(4096)), root)
			default:
				addAll(trace.Gather, float64(1+rng.Intn(4096)), root)
			}
		case 5:
			switch rng.Intn(3) {
			case 0:
				addAll(trace.AllReduce, float64(1+rng.Intn(100000)), 0)
			case 1:
				addAll(trace.AllToAll, float64(1+rng.Intn(8192)), 0)
			default:
				addAll(trace.AllGather, float64(1+rng.Intn(8192)), 0)
			}
		case 6: // vector collectives with uneven, cross-rank-consistent volumes
			if rng.Intn(2) == 0 {
				// Per-pair volumes: rank r's entry for peer k derives from
				// (r, k) only, so every rank compiles the same exchange.
				base := float64(1 + rng.Intn(8192))
				for r := 0; r < n; r++ {
					vols := make([]float64, n)
					for k := 0; k < n; k++ {
						if k != r {
							vols[k] = base * float64(1+(r*13+k*7)%5)
						}
					}
					perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.AllToAllV, Peer: -1, Volumes: vols})
				}
			} else {
				// Contribution sizes depend on the contributing rank only, so
				// all ranks record one identical vector.
				vols := make([]float64, n)
				for k := 0; k < n; k++ {
					vols[k] = float64(1 + rng.Intn(8192))
				}
				for r := 0; r < n; r++ {
					perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.AllGatherV, Peer: -1,
						Volumes: append([]float64(nil), vols...)})
				}
			}
		default: // nonblocking burst to both neighbors drained out of order
			for r := 0; r < n; r++ {
				next, prev := (r+1)%n, (r-1+n)%n
				size := float64(1 + rng.Intn(150000))
				perRank[r] = append(perRank[r],
					trace.Action{Rank: r, Kind: trace.ISend, Peer: next, Bytes: size},
					trace.Action{Rank: r, Kind: trace.ISend, Peer: prev, Bytes: size},
					trace.Action{Rank: r, Kind: trace.IRecv, Peer: prev, Bytes: size},
					trace.Action{Rank: r, Kind: trace.IRecv, Peer: next, Bytes: size})
				switch rng.Intn(3) {
				case 0: // four waitanys
					for i := 0; i < 4; i++ {
						perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.WaitAny, Peer: -1})
					}
				case 1: // waitsome of 3 plus a waitall for the rest
					perRank[r] = append(perRank[r],
						trace.Action{Rank: r, Kind: trace.WaitSome, Peer: -1, Count: 3},
						trace.Action{Rank: r, Kind: trace.WaitAll, Peer: -1})
				default: // waitany, then drain with a waitall
					perRank[r] = append(perRank[r],
						trace.Action{Rank: r, Kind: trace.WaitAny, Peer: -1},
						trace.Action{Rank: r, Kind: trace.WaitAll, Peer: -1})
				}
			}
		}
	}
	// Every rank finishes with a waitall so no pending request leaks.
	addAll(trace.WaitAll, 0, 0)
	return perRank
}

func TestContinuationGoroutineBitIdentical(t *testing.T) {
	configs := []Config{
		{Backend: SMPI},
		{Backend: SMPI, MPI: mpi.ModelConfig{
			SendOverhead: 1e-7, RecvOverhead: 2e-7,
			MemcpyBandwidth: 5e9, MemcpyLatency: 1e-8,
			Bcast: mpi.BcastChain, AllReduce: mpi.AllReduceRing,
		}},
		{Backend: MSG, MSG: msgreplay.Config{RefLatency: 1e-5, RefBandwidth: 1e9}},
	}
	f := func(seed int64) bool {
		// 5 ranks: odd size exercises the non-power-of-two collective paths.
		const n = 5
		rng := rand.New(rand.NewSource(seed))
		perRank := randomTrace(rng, n)
		for _, cfg := range configs {
			task := cfg
			task.GoroutineProcs = false
			goro := cfg
			goro.GoroutineProcs = true
			resTask, errTask := Replay(trace.NewMemProvider(perRank), testPlatform(t, n), task)
			resGoro, errGoro := Replay(trace.NewMemProvider(perRank), testPlatform(t, n), goro)
			if (errTask == nil) != (errGoro == nil) {
				t.Logf("error mismatch (backend %s): task=%v goroutine=%v", cfg.Backend, errTask, errGoro)
				return false
			}
			if errTask != nil {
				continue
			}
			if resTask.SimulatedTime != resGoro.SimulatedTime {
				t.Logf("backend %s: simulated time %v (continuation) != %v (goroutine)",
					cfg.Backend, resTask.SimulatedTime, resGoro.SimulatedTime)
				return false
			}
			if resTask.Actions != resGoro.Actions {
				t.Logf("backend %s: actions %d != %d", cfg.Backend, resTask.Actions, resGoro.Actions)
				return false
			}
			if resTask.Engine != resGoro.Engine {
				t.Logf("backend %s: stats diverge\n continuation: %+v\n goroutine:    %+v",
					cfg.Backend, resTask.Engine, resGoro.Engine)
				return false
			}
		}
		return true
	}
	max := 25
	if testing.Short() {
		max = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Fatal(err)
	}
}

// A DUMPI-imported trace must replay end to end — importer registry in,
// vector collectives and wait sets through the drivers, out the other side
// bit-identical across both schedulers and both backends.
func TestDUMPIImportReplaysBitIdentical(t *testing.T) {
	dir := t.TempDir()
	dumps := []string{`
MPI_Init entering at walltime 10.0, cputime 0 seconds in thread 0.
MPI_Init returning at walltime 10.5, cputime 1 seconds in thread 0.
MPI_Send entering at walltime 11.0, cputime 3 seconds in thread 0.
int count=256
datatype=11 (MPI_DOUBLE)
int dest=1
MPI_Send returning at walltime 11.1, cputime 3 seconds in thread 0.
MPI_Alltoallv entering at walltime 12.0, cputime 4 seconds in thread 0.
int sendcounts[2]={16, 32}
sendtype=11 (MPI_DOUBLE)
MPI_Alltoallv returning at walltime 12.5, cputime 4 seconds in thread 0.
MPI_Isend entering at walltime 13.0, cputime 4 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int dest=1
MPI_Isend returning at walltime 13.0, cputime 4 seconds in thread 0.
MPI_Irecv entering at walltime 13.1, cputime 4 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int source=1
MPI_Irecv returning at walltime 13.1, cputime 4 seconds in thread 0.
MPI_Waitany entering at walltime 13.2, cputime 4 seconds in thread 0.
MPI_Waitany returning at walltime 13.3, cputime 4 seconds in thread 0.
MPI_Wait entering at walltime 13.4, cputime 4 seconds in thread 0.
MPI_Wait returning at walltime 13.5, cputime 4 seconds in thread 0.
MPI_Allgatherv entering at walltime 14.0, cputime 5 seconds in thread 0.
int recvcounts[2]={8, 24}
recvtype=11 (MPI_DOUBLE)
MPI_Allgatherv returning at walltime 14.2, cputime 5 seconds in thread 0.
MPI_Finalize entering at walltime 15.0, cputime 6 seconds in thread 0.
MPI_Finalize returning at walltime 15.1, cputime 6 seconds in thread 0.
`, `
MPI_Init entering at walltime 10.0, cputime 0 seconds in thread 0.
MPI_Init returning at walltime 10.5, cputime 1 seconds in thread 0.
MPI_Recv entering at walltime 11.0, cputime 2 seconds in thread 0.
int count=256
datatype=11 (MPI_DOUBLE)
int source=0
MPI_Recv returning at walltime 11.2, cputime 2 seconds in thread 0.
MPI_Alltoallv entering at walltime 12.0, cputime 3 seconds in thread 0.
int sendcounts[2]={16, 32}
sendtype=11 (MPI_DOUBLE)
MPI_Alltoallv returning at walltime 12.5, cputime 3 seconds in thread 0.
MPI_Isend entering at walltime 13.0, cputime 3 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int dest=0
MPI_Isend returning at walltime 13.0, cputime 3 seconds in thread 0.
MPI_Irecv entering at walltime 13.1, cputime 3 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int source=0
MPI_Irecv returning at walltime 13.1, cputime 3 seconds in thread 0.
MPI_Waitsome entering at walltime 13.2, cputime 3 seconds in thread 0.
int outcount=2
MPI_Waitsome returning at walltime 13.3, cputime 3 seconds in thread 0.
MPI_Allgatherv entering at walltime 14.0, cputime 4 seconds in thread 0.
int recvcounts[2]={8, 24}
recvtype=11 (MPI_DOUBLE)
MPI_Allgatherv returning at walltime 14.2, cputime 4 seconds in thread 0.
MPI_Finalize entering at walltime 15.0, cputime 5 seconds in thread 0.
MPI_Finalize returning at walltime 15.1, cputime 5 seconds in thread 0.
`}
	for i, body := range dumps {
		name := filepath.Join(dir, fmt.Sprintf("dump-%d.txt", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	configs := []Config{
		{Backend: SMPI},
		{Backend: MSG, MSG: msgreplay.Config{RefLatency: 1e-5, RefBandwidth: 1e9}},
	}
	for _, cfg := range configs {
		var results []*Result
		for _, goroutines := range []bool{false, true} {
			// Re-import per replay: the provider streams from the files.
			p, err := trace.Import("auto", dir, trace.ImportOptions{InstructionRate: 1e9})
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.GoroutineProcs = goroutines
			res, err := Replay(p, testPlatform(t, 2), c)
			if err != nil {
				t.Fatalf("backend %s goroutines=%v: %v", cfg.Backend, goroutines, err)
			}
			if res.SimulatedTime <= 0 {
				t.Fatalf("backend %s: non-positive simulated time %v", cfg.Backend, res.SimulatedTime)
			}
			results = append(results, res)
		}
		if results[0].SimulatedTime != results[1].SimulatedTime ||
			results[0].Actions != results[1].Actions ||
			results[0].Engine != results[1].Engine {
			t.Fatalf("backend %s: schedulers disagree on the imported trace:\n continuation: %+v\n goroutine:    %+v",
				cfg.Backend, results[0], results[1])
		}
	}
}

// The trace-level failure modes must also be scheduler-independent: the
// structured TraceError for an orphan wait, and the deadlock report for
// crossed blocking receives, have to read identically in both modes.
func TestTraceFailuresIdenticalAcrossSchedulers(t *testing.T) {
	cases := []struct {
		name    string
		perRank [][]trace.Action
	}{
		{"orphan-wait", [][]trace.Action{
			{{Rank: 0, Kind: trace.Compute, Instructions: 10, Peer: -1}, {Rank: 0, Kind: trace.Wait, Peer: -1}},
		}},
		{"crossed-recv-deadlock", [][]trace.Action{
			{{Rank: 0, Kind: trace.Recv, Peer: 1, Bytes: 8}, {Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 8}},
			{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 8}, {Rank: 1, Kind: trace.Send, Peer: 0, Bytes: 8}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := len(tc.perRank)
			_, errTask := Replay(trace.NewMemProvider(tc.perRank), testPlatform(t, n), Config{})
			_, errGoro := Replay(trace.NewMemProvider(tc.perRank), testPlatform(t, n), Config{GoroutineProcs: true})
			if errTask == nil || errGoro == nil {
				t.Fatalf("want errors, got task=%v goroutine=%v", errTask, errGoro)
			}
			if errTask.Error() != errGoro.Error() {
				t.Fatalf("failure reports diverge:\n continuation: %v\n goroutine:    %v", errTask, errGoro)
			}
		})
	}
}

// The continuation deadlock report is also pinned to a golden string so the
// lazy mailbox-name rendering can never drift from the historical format.
func TestCrossedRecvDeadlockGolden(t *testing.T) {
	perRank := [][]trace.Action{
		{{Rank: 0, Kind: trace.Recv, Peer: 1, Bytes: 8}},
		{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 8}},
	}
	_, err := Replay(trace.NewMemProvider(perRank), testPlatform(t, 2), Config{})
	if err == nil {
		t.Fatal("crossed receives must deadlock")
	}
	const golden = `core: replay failed: sim: deadlock at t=0 with 2 blocked process(es): ` +
		`rank0: wait(comm 1 on "p:1>0"); rank1: wait(comm 2 on "p:0>1")`
	if err.Error() != golden {
		t.Fatalf("deadlock report = %q, want %q", err.Error(), golden)
	}
}
