package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tireplay/internal/trace"
)

// Property: for a compute-only trace, simulated time equals total
// instructions divided by host speed, for random volumes.
func TestComputeOnlyExactProperty(t *testing.T) {
	plat := testPlatform(t, 1)
	f := func(vols []uint32) bool {
		var actions []trace.Action
		total := 0.0
		for _, v := range vols {
			actions = append(actions, trace.Action{Rank: 0, Kind: trace.Compute, Instructions: float64(v), Peer: -1})
			total += float64(v)
		}
		prov := trace.NewMemProvider([][]trace.Action{actions})
		res, err := Replay(prov, plat, Config{})
		if err != nil {
			return false
		}
		want := total / 1e9
		return res.SimulatedTime >= want*(1-1e-9) && res.SimulatedTime <= want*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling every compute volume of a compute-dominated trace
// roughly doubles the predicted time (scaling sanity).
func TestComputeScalingProperty(t *testing.T) {
	run := func(scale float64) float64 {
		mk := func(rank, peer int) []trace.Action {
			var a []trace.Action
			for i := 0; i < 20; i++ {
				a = append(a,
					trace.Action{Rank: rank, Kind: trace.Compute, Instructions: scale * 1e7, Peer: -1},
					trace.Action{Rank: rank, Kind: trace.Send, Peer: peer, Bytes: 1000},
					trace.Action{Rank: rank, Kind: trace.Recv, Peer: peer, Bytes: 1000},
				)
			}
			return a
		}
		prov := trace.NewMemProvider([][]trace.Action{mk(0, 1), mk(1, 0)})
		res, err := Replay(prov, testPlatform(t, 2), Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.SimulatedTime
	}
	t1, t2 := run(1), run(2)
	if t2 < 1.8*t1 || t2 > 2.2*t1 {
		t.Fatalf("doubling compute scaled time by %.3f, want ~2", t2/t1)
	}
}

// Property: random balanced traces (matched sends/receives with random
// sizes and interleavings) always replay to completion under both backends.
func TestRandomBalancedTracesReplayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		perRank := make([][]trace.Action, n)
		// Generate rounds: in each round a random pair exchanges a random
		// message, everyone computes, occasionally all ranks join a
		// collective.
		for round := 0; round < 20; round++ {
			src := rng.Intn(n)
			dst := (src + 1 + rng.Intn(n-1)) % n
			size := float64(1 + rng.Intn(200000))
			perRank[src] = append(perRank[src], trace.Action{Rank: src, Kind: trace.Send, Peer: dst, Bytes: size})
			perRank[dst] = append(perRank[dst], trace.Action{Rank: dst, Kind: trace.Recv, Peer: src, Bytes: size})
			for r := 0; r < n; r++ {
				perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.Compute, Instructions: float64(rng.Intn(1e6)), Peer: -1})
			}
			if rng.Intn(4) == 0 {
				for r := 0; r < n; r++ {
					perRank[r] = append(perRank[r], trace.Action{Rank: r, Kind: trace.AllReduce, Bytes: 40, Peer: -1})
				}
			}
		}
		for _, backend := range []BackendKind{SMPI, MSG} {
			cfg := Config{Backend: backend}
			if backend == MSG {
				cfg.MSG.RefLatency, cfg.MSG.RefBandwidth = 1e-5, 1e9
			}
			prov := trace.NewMemProvider(perRank)
			res, err := Replay(prov, testPlatform(t, n), cfg)
			if err != nil || res.SimulatedTime < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: a trace that deadlocks (crossed blocking receives)
// must be reported as a deadlock, not hang.
func TestCrossedRecvDeadlockReported(t *testing.T) {
	perRank := [][]trace.Action{
		{{Rank: 0, Kind: trace.Recv, Peer: 1, Bytes: 8}, {Rank: 0, Kind: trace.Send, Peer: 1, Bytes: 8}},
		{{Rank: 1, Kind: trace.Recv, Peer: 0, Bytes: 8}, {Rank: 1, Kind: trace.Send, Peer: 0, Bytes: 8}},
	}
	prov := trace.NewMemProvider(perRank)
	if _, err := Replay(prov, testPlatform(t, 2), Config{}); err == nil {
		t.Fatal("crossed blocking receives must deadlock")
	}
}

// Failure injection: collective imbalance (one rank missing a barrier)
// deadlocks under the SMPI backend and is reported.
func TestCollectiveImbalanceReported(t *testing.T) {
	perRank := [][]trace.Action{
		{{Rank: 0, Kind: trace.Barrier, Peer: -1}},
		{{Rank: 1, Kind: trace.Compute, Instructions: 1, Peer: -1}},
	}
	prov := trace.NewMemProvider(perRank)
	if _, err := Replay(prov, testPlatform(t, 2), Config{}); err == nil {
		t.Fatal("imbalanced barrier must be reported")
	}
}
