package core

import (
	"errors"
	"testing"

	"tireplay/internal/msgreplay"
	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

func backendConfig(backend string) Config {
	cfg := Config{Backend: backend}
	if backend == MSG {
		cfg.MSG = msgreplay.Config{RefLatency: 1e-5, RefBandwidth: 1e9}
	}
	return cfg
}

// TestMalformedTraceWaitNoRequest covers the wait-with-no-outstanding-request
// path for each backend: it must surface a *TraceError wrapping
// ErrNoOutstandingRequest, not panic.
func TestMalformedTraceWaitNoRequest(t *testing.T) {
	for _, backend := range []string{SMPI, MSG} {
		prov := provFromText(t, "p0 compute 1000\np0 wait\n")
		_, err := Replay(prov, testPlatform(t, 1), backendConfig(backend))
		if err == nil {
			t.Fatalf("%s: expected error for orphan wait", backend)
		}
		var te *TraceError
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %v is not a *TraceError", backend, err)
		}
		if !errors.Is(err, ErrNoOutstandingRequest) {
			t.Fatalf("%s: error %v does not wrap ErrNoOutstandingRequest", backend, err)
		}
		if te.Backend != backend || te.Rank != 0 || te.Kind != trace.Wait {
			t.Fatalf("%s: wrong TraceError fields: %+v", backend, te)
		}
	}
}

// TestMalformedTraceUnsupportedAction covers the unsupported-action-kind path
// for each backend.
func TestMalformedTraceUnsupportedAction(t *testing.T) {
	for _, backend := range []string{SMPI, MSG} {
		prov := trace.NewMemProvider([][]trace.Action{
			{{Rank: 0, Kind: trace.Kind(99)}},
		})
		_, err := Replay(prov, testPlatform(t, 1), backendConfig(backend))
		if err == nil {
			t.Fatalf("%s: expected error for unsupported action", backend)
		}
		var te *TraceError
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %v is not a *TraceError", backend, err)
		}
		if !errors.Is(err, ErrUnsupportedAction) {
			t.Fatalf("%s: error %v does not wrap ErrUnsupportedAction", backend, err)
		}
		if te.Backend != backend || te.Kind != trace.Kind(99) {
			t.Fatalf("%s: wrong TraceError fields: %+v", backend, te)
		}
	}
}

// errStream fails on the first Next call.
type errStream struct{}

func (errStream) Next() (trace.Action, bool, error) {
	return trace.Action{}, false, errors.New("boom")
}

type errProvider struct{}

func (errProvider) NumRanks() int                  { return 1 }
func (errProvider) Rank(int) (trace.Stream, error) { return errStream{}, nil }

// TestStreamErrorSurfaces checks that a failing trace stream aborts the
// replay with a wrapped error rather than a panic.
func TestStreamErrorSurfaces(t *testing.T) {
	_, err := Replay(errProvider{}, testPlatform(t, 1), Config{})
	if err == nil {
		t.Fatal("expected error from failing stream")
	}
	var te *TraceError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *TraceError", err)
	}
}

func TestRegistryListsBuiltins(t *testing.T) {
	names := Backends()
	want := map[string]bool{SMPI: false, MSG: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("builtin backend %q not registered (got %v)", n, names)
		}
	}
}

func TestLookupDefaultsToSMPI(t *testing.T) {
	b, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != SMPI {
		t.Fatalf("default backend = %q, want smpi", b.Name())
	}
	if _, err := Lookup("no-such-backend"); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}

// fixedBackend is a trivial custom backend: every operation costs a fixed
// simulated delay. It exercises the registry extension point end to end.
type fixedBackend struct{ delay float64 }

func (fixedBackend) Name() string { return "fixed" }

func (b fixedBackend) NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg Config) (World, error) {
	return &fixedWorld{engine: engine, hosts: hosts, delay: b.delay}, nil
}

type fixedWorld struct {
	engine *sim.Engine
	hosts  []*sim.Host
	delay  float64
}

func (w *fixedWorld) Spawn(rank int, body func(RankOps)) {
	w.engine.Spawn("fixed", w.hosts[rank], func(p *sim.Proc) {
		body(&fixedOps{proc: p, delay: w.delay})
	})
}

type fixedOps struct {
	proc  *sim.Proc
	delay float64
}

func (o *fixedOps) Proc() *sim.Proc            { return o.proc }
func (o *fixedOps) Compute(float64)            { o.proc.Sleep(o.delay) }
func (o *fixedOps) Send(int, float64)          { o.proc.Sleep(o.delay) }
func (o *fixedOps) Isend(int, float64) Request { o.proc.Sleep(o.delay); return struct{}{} }
func (o *fixedOps) Recv(int)                   { o.proc.Sleep(o.delay) }
func (o *fixedOps) Irecv(int) Request          { o.proc.Sleep(o.delay); return struct{}{} }
func (o *fixedOps) Wait(Request)               {}
func (o *fixedOps) WaitAll([]Request)          {}
func (o *fixedOps) WaitAny([]Request) int      { return 0 }
func (o *fixedOps) Barrier()                   { o.proc.Sleep(o.delay) }
func (o *fixedOps) Bcast(float64, int)         { o.proc.Sleep(o.delay) }
func (o *fixedOps) Reduce(float64, int)        { o.proc.Sleep(o.delay) }
func (o *fixedOps) AllReduce(float64)          { o.proc.Sleep(o.delay) }
func (o *fixedOps) AllToAll(float64)           { o.proc.Sleep(o.delay) }
func (o *fixedOps) Gather(float64, int)        { o.proc.Sleep(o.delay) }
func (o *fixedOps) AllGather(float64)          { o.proc.Sleep(o.delay) }
func (o *fixedOps) AllToAllV([]float64)        { o.proc.Sleep(o.delay) }
func (o *fixedOps) AllGatherV([]float64)       { o.proc.Sleep(o.delay) }

func TestRegisterCustomBackend(t *testing.T) {
	Register("fixed", fixedBackend{delay: 0.5})
	t.Cleanup(func() {
		registryMu.Lock()
		delete(registry, "fixed")
		registryMu.Unlock()
	})

	prov := provFromText(t, "p0 compute 1000\np0 compute 1000\n")
	res, err := Replay(prov, testPlatform(t, 1), Config{Backend: "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime != 1.0 {
		t.Fatalf("simulated time = %v, want 1.0 (2 ops x 0.5s)", res.SimulatedTime)
	}
	if res.Actions != 2 {
		t.Fatalf("actions = %d, want 2", res.Actions)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(SMPI, smpiBackend{})
}
