package core

import (
	"math"
	"strings"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/platform"
	"tireplay/internal/trace"
)

func testPlatform(t *testing.T, n int) *platform.Platform {
	t.Helper()
	p, err := platform.NewFlatCluster(platform.FlatConfig{
		Name: "test", Hosts: n, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func provFromText(t *testing.T, perRank ...string) trace.Provider {
	t.Helper()
	var all [][]trace.Action
	for _, src := range perRank {
		actions, err := trace.ReadAll(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, actions)
	}
	return trace.NewMemProvider(all)
}

func TestReplayComputeOnly(t *testing.T) {
	prov := provFromText(t, "p0 compute 2000000000\n")
	res, err := Replay(prov, testPlatform(t, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SimulatedTime-2.0) > 1e-9 {
		t.Fatalf("simulated time = %v, want 2.0", res.SimulatedTime)
	}
	if res.Actions != 1 {
		t.Fatalf("actions = %d, want 1", res.Actions)
	}
}

func TestReplayPaperSnippet(t *testing.T) {
	// The trace snippet of Section 3.2: p0 computes and sends to p1 and p2.
	prov := provFromText(t,
		"p0 compute 956140\np0 send p1 1240\np0 compute 2110\np0 send p2 1240\np0 compute 3821\n",
		"p1 recv p0 1240\n",
		"p2 recv p0 1240\n",
	)
	res, err := Replay(prov, testPlatform(t, 3), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Actions != 7 {
		t.Fatalf("actions = %d, want 7", res.Actions)
	}
	// p0's compute dominates: (956140+2110+3821)/1e9 plus transfers.
	if res.SimulatedTime <= 962071.0/1e9 {
		t.Fatalf("simulated time = %v, too small", res.SimulatedTime)
	}
}

func TestReplaySMPIEagerVsMSGAsync(t *testing.T) {
	// A pipelined pattern: the sender pushes small messages while the
	// receiver computes. Under SMPI (eager/detached) the transfers overlap
	// the receiver's compute; under MSG they only start at recv time, so
	// MSG must predict a strictly larger makespan.
	var sb0, sb1 strings.Builder
	for i := 0; i < 50; i++ {
		sb0.WriteString("p0 compute 1000000\np0 send p1 2048\n")
		sb1.WriteString("p1 compute 1500000\np1 recv p0 2048\n")
	}
	prov := provFromText(t, sb0.String(), sb1.String())
	plat := testPlatform(t, 2)

	smpi, err := Replay(prov, plat, Config{Backend: SMPI})
	if err != nil {
		t.Fatal(err)
	}
	prov = provFromText(t, sb0.String(), sb1.String())
	msg, err := Replay(prov, testPlatform(t, 2), Config{
		Backend: MSG,
		MSG:     msgreplay.Config{RefLatency: 2.1e-5, RefBandwidth: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg.SimulatedTime <= smpi.SimulatedTime {
		t.Fatalf("MSG time %v <= SMPI time %v; async sends should cost more",
			msg.SimulatedTime, smpi.SimulatedTime)
	}
}

func TestReplayIsendIrecvWait(t *testing.T) {
	prov := provFromText(t,
		"p0 irecv p1 8\np0 send p1 100000\np0 wait\n",
		"p1 irecv p0 100000\np1 send p0 8\np1 wait\n",
	)
	res, err := Replay(prov, testPlatform(t, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestReplayWaitAll(t *testing.T) {
	prov := provFromText(t,
		"p0 irecv p1 8\np0 irecv p1 8\np0 waitall\n",
		"p1 send p0 8\np1 send p0 8\n",
	)
	if _, err := Replay(prov, testPlatform(t, 2), Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCollectives(t *testing.T) {
	mk := func(rank int) string {
		return strings.ReplaceAll(
			"pR compute 1000\npR barrier\npR bcast 1024\npR allreduce 40\npR reduce 8\npR alltoall 64\npR allgather 64\npR gather 32\n",
			"R", string(rune('0'+rank)))
	}
	for _, backend := range []BackendKind{SMPI, MSG} {
		prov := provFromText(t, mk(0), mk(1), mk(2), mk(3))
		cfg := Config{Backend: backend}
		if backend == MSG {
			cfg.MSG = msgreplay.Config{RefLatency: 1e-5, RefBandwidth: 1e9}
		}
		res, err := Replay(prov, testPlatform(t, 4), cfg)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if res.SimulatedTime <= 0 {
			t.Fatalf("%v: no simulated time", backend)
		}
	}
}

func TestReplayV1RecvWithoutSize(t *testing.T) {
	// v1 traces omit the receive size; replay must still match the send.
	prov := provFromText(t,
		"p0 send p1 1240\n",
		"p1 recv p0\n",
	)
	if _, err := Replay(prov, testPlatform(t, 2), Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMemcpyModelledIncreasesSenderTime(t *testing.T) {
	mkProv := func() trace.Provider {
		var s0, s1 strings.Builder
		for i := 0; i < 100; i++ {
			s0.WriteString("p0 send p1 4096\n")
			s1.WriteString("p1 recv p0 4096\n")
		}
		return provFromText(t, s0.String(), s1.String())
	}
	without, err := Replay(mkProv(), testPlatform(t, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Replay(mkProv(), testPlatform(t, 2), Config{
		MPI: mpi.ModelConfig{MemcpyBandwidth: 1e8, MemcpyLatency: 1e-5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.SimulatedTime <= without.SimulatedTime {
		t.Fatalf("memcpy model did not increase time: %v vs %v",
			with.SimulatedTime, without.SimulatedTime)
	}
}

func TestReplayPiecewiseNetworkModel(t *testing.T) {
	model, err := platform.NewPiecewiseModel([]platform.Segment{
		{MaxBytes: 65536, LatFactor: 2, BwFactor: 0.5},
		{MaxBytes: math.MaxFloat64, LatFactor: 1, BwFactor: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	prov := provFromText(t, "p0 send p1 100000\n", "p1 recv p0 100000\n")
	plain, err := Replay(prov, testPlatform(t, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	prov = provFromText(t, "p0 send p1 100000\n", "p1 recv p0 100000\n")
	factored, err := Replay(prov, testPlatform(t, 2), Config{Network: model})
	if err != nil {
		t.Fatal(err)
	}
	// 100 kB message: bw factor 0.95 -> slightly slower than plain.
	if factored.SimulatedTime <= plain.SimulatedTime {
		t.Fatalf("piecewise model had no effect: %v vs %v",
			factored.SimulatedTime, plain.SimulatedTime)
	}
}

func TestReplayErrors(t *testing.T) {
	plat := testPlatform(t, 2)
	// Too many ranks for the platform.
	prov := provFromText(t, "p0 compute 1\n", "p1 compute 1\n", "p2 compute 1\n")
	if _, err := Replay(prov, plat, Config{}); err == nil {
		t.Error("expected error for rank/host mismatch")
	}
	// Orphan wait.
	prov = provFromText(t, "p0 wait\n")
	if _, err := Replay(prov, plat, Config{}); err == nil {
		t.Error("expected error for orphan wait")
	}
	// Unmatched recv -> deadlock.
	prov = provFromText(t, "p0 recv p1\n", "p1 compute 1\n")
	if _, err := Replay(prov, plat, Config{}); err == nil {
		t.Error("expected deadlock error")
	}
	// Unknown backend.
	prov = provFromText(t, "p0 compute 1\n")
	if _, err := Replay(prov, plat, Config{Backend: "no-such-backend"}); err == nil {
		t.Error("expected error for unknown backend")
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func() trace.Provider {
		var s0, s1 strings.Builder
		for i := 0; i < 200; i++ {
			s0.WriteString("p0 compute 500000\np0 send p1 3000\np0 irecv p1 100\np0 wait\n")
			s1.WriteString("p1 compute 700000\np1 recv p0 3000\np1 send p0 100\n")
		}
		return provFromText(t, s0.String(), s1.String())
	}
	a, err := Replay(mk(), testPlatform(t, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(mk(), testPlatform(t, 2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimulatedTime != b.SimulatedTime {
		t.Fatalf("non-deterministic replay: %v vs %v", a.SimulatedTime, b.SimulatedTime)
	}
}

func TestResultThroughput(t *testing.T) {
	prov := provFromText(t, "p0 compute 1000\n")
	res, err := Replay(prov, testPlatform(t, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActionsPerSecond() <= 0 {
		t.Fatalf("throughput = %v", res.ActionsPerSecond())
	}
}

func TestBackendNames(t *testing.T) {
	if SMPI != "smpi" || MSG != "msg" {
		t.Fatal("backend names wrong")
	}
}
