package core

// The continuation-mode rank driver: the same action loop as driver.go, but
// instead of executing each action on a goroutine-backed process it lowers
// the action into sim micro-ops through TaskOps. The feed is invoked by the
// engine exactly when the previous action's ops have drained — the moment the
// goroutine driver would read its next action — so action counts, trace
// errors, and compile-time panics land at identical points in simulated time.

import (
	"fmt"

	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

// spawnRankTask starts rank as a continuation program on world. The pending
// FIFO lives in the machine; the driver only tracks its depth, which is all
// the no-outstanding-request trace check needs.
func spawnRankTask(world TaskWorld, backend string, rank, nranks int, stream trace.Stream, actions *int64) {
	ops := world.TaskOps(rank)
	npending := 0
	world.SpawnProg(rank, func(prog *sim.Prog) (bool, error) {
		a, ok, err := stream.Next()
		if err != nil {
			return false, &TraceError{Backend: backend, Rank: rank, Err: fmt.Errorf("reading stream: %w", err)}
		}
		if !ok {
			return false, nil
		}
		// The engine is single-threaded (lockstep), so the shared counter
		// needs no synchronization.
		*actions++
		if err := a.ValidateIn(nranks); err != nil {
			return false, &TraceError{Backend: backend, Rank: rank, Kind: a.Kind, Err: err}
		}
		switch a.Kind {
		case trace.Init, trace.Finalize:
			// Structural markers: no simulated cost.
		case trace.Compute:
			ops.Compute(prog, a.Instructions)
		case trace.Send:
			ops.Send(prog, a.Peer, a.Bytes)
		case trace.ISend:
			ops.Isend(prog, a.Peer, a.Bytes)
			npending++
		case trace.Recv:
			ops.Recv(prog, a.Peer)
		case trace.IRecv:
			ops.Irecv(prog, a.Peer)
			npending++
		case trace.Wait:
			if npending == 0 {
				return false, &TraceError{Backend: backend, Rank: rank, Kind: a.Kind, Err: ErrNoOutstandingRequest}
			}
			prog.WaitPending()
			npending--
		case trace.WaitAll:
			prog.WaitAllPending()
			npending = 0
		case trace.WaitAny:
			if npending == 0 {
				return false, &TraceError{Backend: backend, Rank: rank, Kind: a.Kind, Err: ErrNoOutstandingRequest}
			}
			prog.WaitAnyPending()
			npending--
		case trace.WaitSome:
			if a.Count > npending {
				return false, &TraceError{Backend: backend, Rank: rank, Kind: a.Kind,
					Err: fmt.Errorf("%w: waitsome of %d with %d outstanding", ErrNoOutstandingRequest, a.Count, npending)}
			}
			for i := 0; i < a.Count; i++ {
				prog.WaitAnyPending()
			}
			npending -= a.Count
		case trace.Barrier:
			ops.Barrier(prog)
		case trace.Bcast:
			ops.Bcast(prog, a.Bytes, a.Root)
		case trace.Reduce:
			ops.Reduce(prog, a.Bytes, a.Root)
		case trace.AllReduce:
			ops.AllReduce(prog, a.Bytes)
		case trace.AllToAll:
			ops.AllToAll(prog, a.Bytes)
		case trace.Gather:
			ops.Gather(prog, a.Bytes, a.Root)
		case trace.AllGather:
			ops.AllGather(prog, a.Bytes)
		case trace.AllToAllV:
			ops.AllToAllV(prog, a.Volumes)
		case trace.AllGatherV:
			ops.AllGatherV(prog, a.Volumes)
		default:
			return false, &TraceError{Backend: backend, Rank: rank, Kind: a.Kind, Err: ErrUnsupportedAction}
		}
		return true, nil
	})
}
