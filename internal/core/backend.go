package core

// This file is the backend abstraction: both replay implementations (the
// accurate SMPI-style backend and the legacy MSG prototype) are driven
// through the same RankOps interface by a single shared driver loop (see
// driver.go), and are looked up by name in a process-wide registry. Third
// parties can plug in further backends with Register; the Scenario/Runner
// layers select them by name.

import (
	"fmt"
	"sort"
	"sync"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/sim"
)

// Request is an opaque handle to an outstanding nonblocking operation. Each
// backend hands out its own concrete type; the driver only stores handles
// and passes them back to Wait/WaitAll of the backend that produced them.
type Request any

// RankOps is the per-rank operation set a replay backend must provide: the
// MPI subset the time-independent trace format records, plus access to the
// underlying simulated process. Every method is called from inside the
// rank's own simulated process.
type RankOps interface {
	// Proc exposes the simulated process the rank runs on (for custom
	// compute modelling and structured failure via Proc.Fail).
	Proc() *sim.Proc
	// Compute executes instr instructions at the host's calibrated rate.
	Compute(instr float64)

	// Point-to-point operations. WaitAny blocks until at least one request
	// completes and returns the index of the lowest-indexed completed one;
	// the driver builds waitsome on top of it (k successive wait-anys).
	Send(dst int, bytes float64)
	Isend(dst int, bytes float64) Request
	Recv(src int)
	Irecv(src int) Request
	Wait(q Request)
	WaitAll(qs []Request)
	WaitAny(qs []Request) int

	// Collective operations. The vector collectives take one volume per rank
	// (already validated against the communicator size by the driver).
	Barrier()
	Bcast(bytes float64, root int)
	Reduce(bytes float64, root int)
	AllReduce(bytes float64)
	AllToAll(bytes float64)
	Gather(bytes float64, root int)
	AllGather(bytes float64)
	AllToAllV(vols []float64)
	AllGatherV(vols []float64)
}

// World is one backend's replay context: a set of ranks bound to hosts on a
// shared engine.
type World interface {
	// Spawn starts rank's body as a simulated process.
	Spawn(rank int, body func(RankOps))
}

// TaskOps is the compile-time counterpart of RankOps: each method lowers one
// trace action into sim micro-ops appended to the given program, instead of
// executing it on a goroutine-backed process. Wait/waitall are absent on
// purpose — the driver emits Prog.WaitPending/WaitAllPending itself, because
// the pending-request FIFO (and the no-outstanding-request trace check) is
// driver state, not backend state.
type TaskOps interface {
	Compute(p *sim.Prog, instr float64)

	// Point-to-point operations. Isend/Irecv push onto the program's pending
	// FIFO.
	Send(p *sim.Prog, dst int, bytes float64)
	Isend(p *sim.Prog, dst int, bytes float64)
	Recv(p *sim.Prog, src int)
	Irecv(p *sim.Prog, src int)

	// Collective operations.
	Barrier(p *sim.Prog)
	Bcast(p *sim.Prog, bytes float64, root int)
	Reduce(p *sim.Prog, bytes float64, root int)
	AllReduce(p *sim.Prog, bytes float64)
	AllToAll(p *sim.Prog, bytes float64)
	Gather(p *sim.Prog, bytes float64, root int)
	AllGather(p *sim.Prog, bytes float64)
	AllToAllV(p *sim.Prog, vols []float64)
	AllGatherV(p *sim.Prog, vols []float64)
}

// TaskWorld is implemented by worlds whose backend can also compile ranks to
// continuation programs. Replay uses this path by default — each rank becomes
// a resumable state machine stepped inline by the event loop rather than a
// goroutine — falling back to Spawn for backends that only execute, or when
// Config.GoroutineProcs forces the legacy scheduler for differential testing.
type TaskWorld interface {
	World
	// TaskOps returns the per-rank action compiler.
	TaskOps(rank int) TaskOps
	// SpawnProg starts rank as a continuation program fed by feed.
	SpawnProg(rank int, feed sim.Feed)
}

// Backend builds replay worlds for one simulation model.
type Backend interface {
	// Name is the registry key ("smpi", "msg", ...).
	Name() string
	// NewWorld creates the replay context for len(hosts) ranks; cfg carries
	// the backend-specific knobs (Config.MPI, Config.MSG).
	NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg Config) (World, error)
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Backend)
)

// Register makes a backend selectable by name in Config.Backend and
// Scenario.Backend. It panics on an empty name or a duplicate registration,
// like database/sql.Register.
func Register(name string, b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("core: Register with empty backend name")
	}
	if b == nil {
		panic("core: Register with nil backend")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	registry[name] = b
}

// Lookup resolves a backend name; the empty string selects SMPI, the
// paper's accurate default.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = SMPI
	}
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown backend %q (registered: %v)", name, Backends())
	}
	return b, nil
}

// Backends returns the sorted names of all registered backends.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(SMPI, smpiBackend{})
	Register(MSG, msgBackend{})
}

// ---------------------------------------------------------------------------
// SMPI backend adapter.

type smpiBackend struct{}

func (smpiBackend) Name() string { return SMPI }

func (smpiBackend) NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg Config) (World, error) {
	w, err := mpi.NewWorld(engine, hosts, cfg.MPI)
	if err != nil {
		return nil, err
	}
	return smpiWorld{w}, nil
}

type smpiWorld struct{ w *mpi.World }

func (sw smpiWorld) Spawn(rank int, body func(RankOps)) {
	sw.w.Spawn(rank, func(r *mpi.Rank) { body(smpiOps{r}) })
}

func (sw smpiWorld) TaskOps(rank int) TaskOps { return sw.w.TaskRank(rank) }

func (sw smpiWorld) SpawnProg(rank int, feed sim.Feed) { sw.w.SpawnProg(rank, feed) }

// smpiOps adapts *mpi.Rank to RankOps. Embedding promotes every method whose
// signature already matches; only the request-typed ones need wrapping.
type smpiOps struct{ *mpi.Rank }

func (o smpiOps) Isend(dst int, bytes float64) Request { return o.Rank.Isend(dst, bytes) }
func (o smpiOps) Irecv(src int) Request                { return o.Rank.Irecv(src) }

func (o smpiOps) Wait(q Request) { o.Rank.Wait(o.req(q)) }

func (o smpiOps) WaitAll(qs []Request) {
	reqs := make([]*mpi.Request, len(qs))
	for i, q := range qs {
		reqs[i] = o.req(q)
	}
	o.Rank.WaitAll(reqs)
}

func (o smpiOps) WaitAny(qs []Request) int {
	reqs := make([]*mpi.Request, len(qs))
	for i, q := range qs {
		reqs[i] = o.req(q)
	}
	return o.Rank.WaitAny(reqs)
}

func (o smpiOps) req(q Request) *mpi.Request {
	r, ok := q.(*mpi.Request)
	if !ok {
		o.Proc().Fail(fmt.Errorf("core: smpi backend: wait on foreign request %T", q))
	}
	return r
}

// ---------------------------------------------------------------------------
// MSG backend adapter.

type msgBackend struct{}

func (msgBackend) Name() string { return MSG }

func (msgBackend) NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg Config) (World, error) {
	w, err := msgreplay.NewWorld(engine, hosts, cfg.MSG)
	if err != nil {
		return nil, err
	}
	return msgWorld{w}, nil
}

type msgWorld struct{ w *msgreplay.World }

func (mw msgWorld) Spawn(rank int, body func(RankOps)) {
	mw.w.Spawn(rank, func(r *msgreplay.Rank) { body(msgOps{r}) })
}

func (mw msgWorld) TaskOps(rank int) TaskOps { return mw.w.TaskRank(rank) }

func (mw msgWorld) SpawnProg(rank int, feed sim.Feed) { mw.w.SpawnProg(rank, feed) }

// msgOps adapts *msgreplay.Rank to RankOps.
type msgOps struct{ *msgreplay.Rank }

func (o msgOps) Isend(dst int, bytes float64) Request { return o.Rank.Isend(dst, bytes) }
func (o msgOps) Irecv(src int) Request                { return o.Rank.Irecv(src) }

func (o msgOps) Wait(q Request) {
	c, ok := q.(*sim.Comm)
	if !ok {
		o.Proc().Fail(fmt.Errorf("core: msg backend: wait on foreign request %T", q))
	}
	o.Rank.Wait(c)
}

// WaitAll waits on the comms one by one: the MSG prototype had no grouped
// wait, which is part of the modelling gap the paper discusses.
func (o msgOps) WaitAll(qs []Request) {
	for _, q := range qs {
		o.Wait(q)
	}
}

func (o msgOps) WaitAny(qs []Request) int {
	cs := make([]*sim.Comm, len(qs))
	for i, q := range qs {
		c, ok := q.(*sim.Comm)
		if !ok {
			o.Proc().Fail(fmt.Errorf("core: msg backend: wait-any on foreign request %T", q))
		}
		cs[i] = c
	}
	return o.Rank.WaitAny(cs)
}
