// Package core is the time-independent trace replay engine: it drives
// per-rank action streams through a replay backend — the rewritten SMPI
// backend (Section 3.3) or the original MSG prototype (Section 2.4) the
// paper compares, or any backend plugged in via Register — and reports the
// simulated execution time.
//
// Replaying a trace amounts to what the paper's smpi_replay main does:
// initialize, run every rank's action stream to completion, finalize, and
// read the simulated clock. All backends share one driver loop (driver.go)
// over the RankOps interface (backend.go); malformed traces surface as
// structured *TraceError values rather than panics.
package core

import (
	"fmt"
	"io"
	"time"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

// BackendKind names a registered replay backend. It is a string alias so
// the built-in constants below, scenario specs, and CLI flags all use the
// same vocabulary.
type BackendKind = string

const (
	// SMPI is the rewritten backend: eager/rendezvous point-to-point
	// protocols, piece-wise-linear network factors, collectives as trees of
	// point-to-point messages.
	SMPI BackendKind = "smpi"
	// MSG is the first-prototype backend: asynchronous sends for small
	// messages, factor-free network, monolithic collectives.
	MSG BackendKind = "msg"
)

// Config parameterizes a replay.
type Config struct {
	// Backend names the replay implementation; "" selects SMPI. Any name
	// registered via Register is accepted.
	Backend BackendKind
	// Network is the network model installed in the kernel; nil selects the
	// factor-free default. The SMPI pipeline passes the platform's
	// piece-wise-linear model here.
	Network sim.NetworkModel
	// MPI configures the SMPI backend's communication model.
	MPI mpi.ModelConfig
	// MSG configures the legacy backend.
	MSG msgreplay.Config
	// Hosts optionally maps ranks to specific hosts; by default rank i runs
	// on the platform's i-th host.
	Hosts []*sim.Host
	// GoroutineProcs forces the legacy goroutine-per-rank scheduler instead
	// of the continuation state machines the built-in backends compile to.
	// The two are bit-identical in simulated times and stats; the goroutine
	// path exists for differential testing and for third-party backends that
	// only implement World.
	GoroutineProcs bool
}

// Result reports a completed replay. It is JSON-serializable (the sweep
// result store persists it); the float fields round-trip bit-identically.
type Result struct {
	// SimulatedTime is the predicted execution time in seconds — the value
	// compared against real executions throughout the paper's evaluation.
	SimulatedTime float64 `json:"simulated_time"`
	// Actions is the total number of trace actions replayed.
	Actions int64 `json:"actions"`
	// Wall is the wall-clock duration of the replay itself (the efficiency
	// axis of the paper), serialized in nanoseconds.
	Wall time.Duration `json:"wall_ns"`
	// Engine exposes kernel counters (events, context switches, ...).
	Engine sim.Stats `json:"engine"`
}

// ActionsPerSecond is the replay throughput in trace actions per wall
// second.
func (r *Result) ActionsPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Actions) / r.Wall.Seconds()
}

// Replay runs every rank of prov on plat under cfg and returns the
// simulated time. Malformed traces are reported as errors wrapping a
// *TraceError; a trace that deadlocks surfaces the kernel's DeadlockError.
func Replay(prov trace.Provider, plat *platform.Platform, cfg Config) (*Result, error) {
	n := prov.NumRanks()
	if n <= 0 {
		return nil, fmt.Errorf("core: trace has no ranks")
	}
	hosts := cfg.Hosts
	if hosts == nil {
		if n > plat.Size() {
			return nil, fmt.Errorf("core: trace has %d ranks but platform %s has only %d hosts",
				n, plat.Name, plat.Size())
		}
		hosts = plat.Hosts()[:n]
	}
	if len(hosts) != n {
		return nil, fmt.Errorf("core: host mapping has %d entries for %d ranks", len(hosts), n)
	}

	backend, err := Lookup(cfg.Backend)
	if err != nil {
		return nil, err
	}

	var opts []sim.Option
	if cfg.Network != nil {
		opts = append(opts, sim.WithNetworkModel(cfg.Network))
	}
	if cfg.GoroutineProcs {
		opts = append(opts, sim.WithGoroutineProcs())
	}
	engine := sim.NewEngine(plat, opts...)

	world, err := backend.NewWorld(engine, hosts, cfg)
	if err != nil {
		return nil, err
	}
	// Streams of ranks that never finish — because another rank's malformed
	// trace aborted the simulation, the trace deadlocked, or the caller was
	// cancelled — would otherwise be abandoned mid-file; close every stream
	// that can be closed once the engine has stopped.
	streams := make([]trace.Stream, 0, n)
	defer func() {
		for _, s := range streams {
			if c, ok := s.(io.Closer); ok {
				c.Close()
			}
		}
	}()
	// Continuation mode is the default whenever the backend can compile its
	// ranks; the goroutine scheduler remains available for differential
	// testing and execute-only backends.
	taskWorld, taskMode := world.(TaskWorld)
	if cfg.GoroutineProcs {
		taskMode = false
	}
	var actions int64
	for rank := 0; rank < n; rank++ {
		stream, err := prov.Rank(rank)
		if err != nil {
			return nil, fmt.Errorf("core: opening stream for rank %d: %w", rank, err)
		}
		streams = append(streams, stream)
		if taskMode {
			spawnRankTask(taskWorld, backend.Name(), rank, n, stream, &actions)
		} else {
			spawnRank(world, backend.Name(), rank, n, stream, &actions)
		}
	}

	start := time.Now()
	if err := engine.Run(); err != nil {
		return nil, fmt.Errorf("core: replay failed: %w", err)
	}
	return &Result{
		SimulatedTime: engine.Now(),
		Actions:       actions,
		Wall:          time.Since(start),
		Engine:        engine.Stats(),
	}, nil
}
