// Package core is the time-independent trace replay engine: it drives
// per-rank action streams through one of the two simulation backends the
// paper compares — the rewritten SMPI backend (Section 3.3) and the original
// MSG prototype (Section 2.4) — and reports the simulated execution time.
//
// Replaying a trace amounts to what the paper's smpi_replay main does:
// initialize, run every rank's action stream to completion, finalize, and
// read the simulated clock.
package core

import (
	"fmt"
	"time"

	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/trace"
)

// BackendKind selects the replay implementation.
type BackendKind int

const (
	// SMPI is the rewritten backend: eager/rendezvous point-to-point
	// protocols, piece-wise-linear network factors, collectives as trees of
	// point-to-point messages.
	SMPI BackendKind = iota
	// MSG is the first-prototype backend: asynchronous sends for small
	// messages, factor-free network, monolithic collectives.
	MSG
)

func (b BackendKind) String() string {
	switch b {
	case SMPI:
		return "smpi"
	case MSG:
		return "msg"
	}
	return fmt.Sprintf("BackendKind(%d)", int(b))
}

// Config parameterizes a replay.
type Config struct {
	// Backend selects the replay implementation (default SMPI).
	Backend BackendKind
	// Network is the network model installed in the kernel; nil selects the
	// factor-free default. The SMPI pipeline passes the platform's
	// piece-wise-linear model here.
	Network sim.NetworkModel
	// MPI configures the SMPI backend's communication model.
	MPI mpi.ModelConfig
	// MSG configures the legacy backend.
	MSG msgreplay.Config
	// Hosts optionally maps ranks to specific hosts; by default rank i runs
	// on the platform's i-th host.
	Hosts []*sim.Host
}

// Result reports a completed replay.
type Result struct {
	// SimulatedTime is the predicted execution time in seconds — the value
	// compared against real executions throughout the paper's evaluation.
	SimulatedTime float64
	// Actions is the total number of trace actions replayed.
	Actions int64
	// Wall is the wall-clock duration of the replay itself (the efficiency
	// axis of the paper).
	Wall time.Duration
	// Engine exposes kernel counters (events, context switches, ...).
	Engine sim.Stats
}

// ActionsPerSecond is the replay throughput in trace actions per wall
// second.
func (r *Result) ActionsPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Actions) / r.Wall.Seconds()
}

// Replay runs every rank of prov on plat under cfg and returns the
// simulated time.
func Replay(prov trace.Provider, plat *platform.Platform, cfg Config) (*Result, error) {
	n := prov.NumRanks()
	if n <= 0 {
		return nil, fmt.Errorf("core: trace has no ranks")
	}
	hosts := cfg.Hosts
	if hosts == nil {
		if n > plat.Size() {
			return nil, fmt.Errorf("core: trace has %d ranks but platform %s has only %d hosts",
				n, plat.Name, plat.Size())
		}
		hosts = plat.Hosts()[:n]
	}
	if len(hosts) != n {
		return nil, fmt.Errorf("core: host mapping has %d entries for %d ranks", len(hosts), n)
	}

	var opts []sim.Option
	if cfg.Network != nil {
		opts = append(opts, sim.WithNetworkModel(cfg.Network))
	}
	engine := sim.NewEngine(plat, opts...)

	var actions int64 // engine is single-threaded (lockstep), plain counter is safe
	switch cfg.Backend {
	case SMPI:
		world, err := mpi.NewWorld(engine, hosts, cfg.MPI)
		if err != nil {
			return nil, err
		}
		for rank := 0; rank < n; rank++ {
			stream, err := prov.Rank(rank)
			if err != nil {
				return nil, fmt.Errorf("core: opening stream for rank %d: %w", rank, err)
			}
			spawnSMPI(world, rank, stream, &actions)
		}
	case MSG:
		world, err := msgreplay.NewWorld(engine, hosts, cfg.MSG)
		if err != nil {
			return nil, err
		}
		for rank := 0; rank < n; rank++ {
			stream, err := prov.Rank(rank)
			if err != nil {
				return nil, fmt.Errorf("core: opening stream for rank %d: %w", rank, err)
			}
			spawnMSG(world, rank, stream, &actions)
		}
	default:
		return nil, fmt.Errorf("core: unknown backend %v", cfg.Backend)
	}

	start := time.Now()
	if err := engine.Run(); err != nil {
		return nil, fmt.Errorf("core: replay failed: %w", err)
	}
	return &Result{
		SimulatedTime: engine.Now(),
		Actions:       actions,
		Wall:          time.Since(start),
		Engine:        engine.Stats(),
	}, nil
}

// spawnSMPI drives one rank's stream through the SMPI backend. Nonblocking
// operations are queued and consumed FIFO by wait/waitall, matching how the
// trace acquisition records MPI_Wait on the oldest outstanding request.
func spawnSMPI(world *mpi.World, rank int, stream trace.Stream, actions *int64) {
	world.Spawn(rank, func(r *mpi.Rank) {
		var pending []*mpi.Request
		for {
			a, ok, err := stream.Next()
			if err != nil {
				panic(fmt.Errorf("rank %d: %w", rank, err))
			}
			if !ok {
				return
			}
			*actions++
			switch a.Kind {
			case trace.Init, trace.Finalize:
				// Structural markers: no simulated cost.
			case trace.Compute:
				r.Compute(a.Instructions)
			case trace.Send:
				r.Send(a.Peer, a.Bytes)
			case trace.ISend:
				pending = append(pending, r.Isend(a.Peer, a.Bytes))
			case trace.Recv:
				r.Recv(a.Peer)
			case trace.IRecv:
				pending = append(pending, r.Irecv(a.Peer))
			case trace.Wait:
				if len(pending) == 0 {
					panic(fmt.Errorf("rank %d: wait with no outstanding request", rank))
				}
				r.Wait(pending[0])
				pending = pending[1:]
			case trace.WaitAll:
				r.WaitAll(pending)
				pending = pending[:0]
			case trace.Barrier:
				r.Barrier()
			case trace.Bcast:
				r.Bcast(a.Bytes, a.Root)
			case trace.Reduce:
				r.Reduce(a.Bytes, a.Root)
			case trace.AllReduce:
				r.AllReduce(a.Bytes)
			case trace.AllToAll:
				r.AllToAll(a.Bytes)
			case trace.Gather:
				r.Gather(a.Bytes, a.Root)
			case trace.AllGather:
				r.AllGather(a.Bytes)
			default:
				panic(fmt.Errorf("rank %d: unsupported action %v", rank, a.Kind))
			}
		}
	})
}

// spawnMSG drives one rank's stream through the legacy MSG backend.
func spawnMSG(world *msgreplay.World, rank int, stream trace.Stream, actions *int64) {
	world.Spawn(rank, func(r *msgreplay.Rank) {
		var pending []*sim.Comm
		for {
			a, ok, err := stream.Next()
			if err != nil {
				panic(fmt.Errorf("rank %d: %w", rank, err))
			}
			if !ok {
				return
			}
			*actions++
			switch a.Kind {
			case trace.Init, trace.Finalize:
			case trace.Compute:
				r.Compute(a.Instructions)
			case trace.Send:
				r.Send(a.Peer, a.Bytes)
			case trace.ISend:
				pending = append(pending, r.Isend(a.Peer, a.Bytes))
			case trace.Recv:
				r.Recv(a.Peer)
			case trace.IRecv:
				pending = append(pending, r.Irecv(a.Peer))
			case trace.Wait:
				if len(pending) == 0 {
					panic(fmt.Errorf("rank %d: wait with no outstanding request", rank))
				}
				r.Wait(pending[0])
				pending = pending[1:]
			case trace.WaitAll:
				for _, c := range pending {
					r.Wait(c)
				}
				pending = pending[:0]
			case trace.Barrier:
				r.Barrier()
			case trace.Bcast:
				r.Bcast(a.Bytes, a.Root)
			case trace.Reduce:
				r.Reduce(a.Bytes, a.Root)
			case trace.AllReduce:
				r.AllReduce(a.Bytes)
			case trace.AllToAll:
				r.AllToAll(a.Bytes)
			case trace.Gather:
				r.Gather(a.Bytes, a.Root)
			case trace.AllGather:
				r.AllGather(a.Bytes)
			default:
				panic(fmt.Errorf("rank %d: unsupported action %v", rank, a.Kind))
			}
		}
	})
}
