// Package npb models the NAS Parallel Benchmark applications used in the
// paper's evaluation as generators of per-rank operation streams. An
// operation stream is richer than a time-independent trace: besides the
// trace action (compute volumes, MPI calls) it carries the number of
// application-level function calls inside each compute segment, which the
// instrumentation model needs to compute counter inflation and probe time,
// and each workload exposes its per-rank hot working set for the cache
// model of Sections 2.3/3.4.
//
// The LU generator reproduces the published structure of NPB-LU (SSOR
// solver): a 2D pencil decomposition of the x-y plane, per-k-plane
// wavefront exchanges in the lower and upper triangular sweeps
// (exchange_1), full halo swaps after the right-hand-side computation
// (exchange_3, irecv/send/wait), and periodic residual-norm allreduces.
// Its instruction constants are calibrated against the paper's own counter
// measurements: 5125 instructions per grid-point iteration yields 1.70e11
// instructions per process for B-8 and 8.87e10 for C-64, the two figures
// quoted in Section 2.2.
package npb

import (
	"fmt"

	"tireplay/internal/trace"
)

// Op is one operation of a workload stream: a trace action plus the
// application-function-call count the instrumentation model consumes.
type Op struct {
	Action trace.Action
	// Calls is the number of instrumented application function calls
	// attributable to this operation: callsPerPoint * points for compute
	// segments, 1 for MPI calls.
	Calls float64
}

// OpStream is a pull-based stream of operations for one rank.
type OpStream interface {
	Next() (op Op, ok bool, err error)
}

// Workload is an application whose execution can be generated rank by rank.
type Workload interface {
	// Name is the instance label, e.g. "LU B-8".
	Name() string
	// Ranks is the number of MPI processes.
	Ranks() int
	// Rank returns a fresh operation stream for one rank.
	Rank(rank int) (OpStream, error)
	// WorkingSet returns the rank's hot working set in bytes, the quantity
	// compared against the L2 capacity by the cache model.
	WorkingSet(rank int) float64
	// BaseInstructions returns the analytic total of compute instructions
	// the rank executes (uninstrumented, -O0 reference build).
	BaseInstructions(rank int) float64
}

// Class is an NPB problem class.
type Class byte

// NPB classes.
const (
	ClassS Class = 'S'
	ClassW Class = 'W'
	ClassA Class = 'A'
	ClassB Class = 'B'
	ClassC Class = 'C'
	ClassD Class = 'D'
)

// luSize returns the LU cubic grid dimension for the class.
func (c Class) luSize() (int, error) {
	switch c {
	case ClassS:
		return 12, nil
	case ClassW:
		return 33, nil
	case ClassA:
		return 64, nil
	case ClassB:
		return 102, nil
	case ClassC:
		return 162, nil
	case ClassD:
		return 408, nil
	}
	return 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// luIterations returns the published itmax for the class.
func (c Class) luIterations() (int, error) {
	switch c {
	case ClassS:
		return 50, nil
	case ClassW, ClassD:
		return 300, nil
	case ClassA, ClassB, ClassC:
		return 250, nil
	}
	return 0, fmt.Errorf("npb: unknown class %q", string(c))
}

func (c Class) String() string { return string(c) }

// ParseClass converts a one-letter class name.
func ParseClass(s string) (Class, error) {
	if len(s) != 1 {
		return 0, fmt.Errorf("npb: bad class %q", s)
	}
	c := Class(s[0])
	if _, err := c.luSize(); err != nil {
		return 0, err
	}
	return c, nil
}

// grid2D computes the px x py process grid NPB-LU uses: P must be a power
// of two; the x dimension gets the larger factor.
func grid2D(p int) (px, py int, err error) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, 0, fmt.Errorf("npb: LU requires a power-of-two process count, got %d", p)
	}
	k := 0
	for 1<<k < p {
		k++
	}
	px = 1 << ((k + 1) / 2)
	py = p / px
	return px, py, nil
}

// split gives the idx-th share of n divided into parts (remainder spread
// over the first ranks, as NPB does).
func split(n, parts, idx int) int {
	base := n / parts
	if idx < n%parts {
		return base + 1
	}
	return base
}

// workloadProvider adapts a Workload into a trace.Provider by dropping the
// call counts — the "perfect" (coarse-instrumentation) trace of the
// workload.
type workloadProvider struct{ w Workload }

// AsProvider exposes a workload's exact action streams as a trace.Provider.
func AsProvider(w Workload) trace.Provider { return workloadProvider{w} }

func (p workloadProvider) NumRanks() int { return p.w.Ranks() }

func (p workloadProvider) Rank(rank int) (trace.Stream, error) {
	ops, err := p.w.Rank(rank)
	if err != nil {
		return nil, err
	}
	return opActionStream{ops}, nil
}

type opActionStream struct{ ops OpStream }

func (s opActionStream) Next() (trace.Action, bool, error) {
	op, ok, err := s.ops.Next()
	return op.Action, ok, err
}
