package npb

import (
	"fmt"

	"tireplay/internal/trace"
)

// Instruction economics of the LU model, calibrated against the counter
// values the paper reports in Section 2.2 (1.70e11 instructions/process for
// B-8, 8.87e10 for C-64, both at 250 iterations): 5125 instructions per
// grid-point iteration, split across the four compute phases of one SSOR
// step.
const (
	// InstrRHSX and InstrRHSY are the right-hand-side phases (per point per
	// iteration), each followed by an exchange_3 halo swap.
	InstrRHSX = 913
	InstrRHSY = 912
	// InstrBLTS and InstrBUTS are the lower/upper triangular wavefront
	// solves (per point per iteration).
	InstrBLTS = 1650
	InstrBUTS = 1650
	// InstrPerPointIter is the per-point-per-iteration total.
	InstrPerPointIter = InstrRHSX + InstrRHSY + InstrBLTS + InstrBUTS
	// InstrSetupPerPoint is the one-time initialization cost (setbv, setiv,
	// erhs) per grid point.
	InstrSetupPerPoint = 500
	// CallsPerPoint is the density of instrumented application function
	// calls per grid-point iteration; the fine-grain TAU instrumentation
	// fires a probe on every one of them.
	CallsPerPoint = 2.56
	// BytesPerPlanePoint sizes the hot working set: the per-point bytes of
	// the arrays touched repeatedly while sweeping one k-plane (solution,
	// RHS, and the four 5x5 block-Jacobian arrays). 500 B/point makes A-4
	// cache-resident in a 1 MB L2 while B-4, C-4 and C-8 spill, and keeps
	// every instance of the study resident in graphene's 2 MB L2 — matching
	// Sections 2.3 and 3.4.
	BytesPerPlanePoint = 500
	// doubleBytes * 5 solution components per boundary point.
	wordsPerBoundaryPoint = 5
	doubleBytes           = 8
	// ghost planes exchanged by exchange_3.
	ghostPlanes = 2
	// normBytes is the payload of a residual-norm allreduce (5 doubles).
	normBytes = 40
)

// LU is an instance of the NPB LU benchmark: class x process count.
type LU struct {
	Class Class
	Procs int
	// Iterations overrides the class itmax when positive. The SSOR loop is
	// steady-state, so experiments may run fewer iterations and extrapolate
	// linearly (see DESIGN.md).
	Iterations int

	n, px, py, itmax int
}

// NewLU validates and returns an LU instance.
func NewLU(class Class, procs int, iterations int) (*LU, error) {
	n, err := class.luSize()
	if err != nil {
		return nil, err
	}
	itmax, err := class.luIterations()
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		itmax = iterations
	}
	px, py, err := grid2D(procs)
	if err != nil {
		return nil, err
	}
	if px > n || py > n {
		return nil, fmt.Errorf("npb: LU %s on %d processes: grid %dx%d exceeds problem size %d",
			string(class), procs, px, py, n)
	}
	return &LU{Class: class, Procs: procs, Iterations: iterations,
		n: n, px: px, py: py, itmax: itmax}, nil
}

// Name implements Workload ("LU B-8" style, matching the paper's instance
// names).
func (l *LU) Name() string { return fmt.Sprintf("LU %s-%d", l.Class, l.Procs) }

// Ranks implements Workload.
func (l *LU) Ranks() int { return l.Procs }

// ItMax returns the number of SSOR iterations the instance runs.
func (l *LU) ItMax() int { return l.itmax }

// Grid returns the process grid dimensions (px across x, py across y).
func (l *LU) Grid() (px, py int) { return l.px, l.py }

// coords maps a rank to its (ix, iy) grid position.
func (l *LU) coords(rank int) (ix, iy int) { return rank % l.px, rank / l.px }

// instrScale is a per-class correction of the per-point instruction cost.
// The paper's measurements imply C executes ~4% more instructions per
// point-iteration than B (8.87e10 per process at C-64 vs 1.70e11 at B-8):
// larger grids spend relatively more in boundary and pipeline prologue
// code. Classes without published counters use 1.
func (l *LU) instrScale() float64 {
	if l.Class == ClassC {
		return 1.042
	}
	return 1
}

// Dims returns the rank's pencil dimensions (full z extent).
func (l *LU) Dims(rank int) (nxLoc, nyLoc, nz int) {
	ix, iy := l.coords(rank)
	return split(l.n, l.px, ix), split(l.n, l.py, iy), l.n
}

// neighbors returns the wavefront neighbors of rank (-1 when absent):
// north = ix-1, south = ix+1, west = iy-1, east = iy+1.
func (l *LU) neighbors(rank int) (north, south, west, east int) {
	ix, iy := l.coords(rank)
	north, south, west, east = -1, -1, -1, -1
	if ix > 0 {
		north = rank - 1
	}
	if ix < l.px-1 {
		south = rank + 1
	}
	if iy > 0 {
		west = rank - l.px
	}
	if iy < l.py-1 {
		east = rank + l.px
	}
	return
}

// WorkingSet implements Workload: the per-plane hot arrays of the rank's
// pencil.
func (l *LU) WorkingSet(rank int) float64 {
	nxLoc, nyLoc, _ := l.Dims(rank)
	return float64(BytesPerPlanePoint) * float64(nxLoc) * float64(nyLoc)
}

// points returns the rank's grid points (pencil volume).
func (l *LU) points(rank int) float64 {
	nxLoc, nyLoc, nz := l.Dims(rank)
	return float64(nxLoc) * float64(nyLoc) * float64(nz)
}

// BaseInstructions implements Workload. It must stay consistent with what
// the stream emits; a property test enforces the equality.
func (l *LU) BaseInstructions(rank int) float64 {
	pts := l.points(rank)
	perIter := float64(InstrPerPointIter) * pts
	// Norm computations: one in setup, one in teardown, one per norm
	// iteration of the SSOR loop.
	norms := float64(l.normIterations()+2) * normComputeInstr(pts)
	return l.instrScale() * (float64(InstrSetupPerPoint)*pts + float64(l.itmax)*perIter + norms)
}

// normIterations counts the iterations at which a residual norm (and its
// allreduce) happens: the first, plus every inorm-th; NPB sets inorm=itmax
// so in practice the first and the last, plus the setup and verification
// norms.
func (l *LU) normIterations() int {
	count := 0
	for it := 1; it <= l.itmax; it++ {
		if l.isNormIteration(it) {
			count++
		}
	}
	return count
}

func (l *LU) isNormIteration(it int) bool {
	return it == 1 || it == l.itmax
}

func normComputeInstr(points float64) float64 {
	// l2norm touches every point once with a handful of flops.
	return 8 * points
}

// Rank implements Workload with a lazily refilled per-iteration stream, so
// replaying a 64-rank instance never materializes millions of ops at once.
func (l *LU) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= l.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, l.Procs)
	}
	return &luStream{lu: l, rank: rank}, nil
}

// luStream generates one rank's operations phase by phase.
type luStream struct {
	lu   *LU
	rank int
	buf  []Op
	pos  int
	// phase: 0 = setup pending, 1..itmax = that iteration pending,
	// itmax+1 = teardown pending, itmax+2 = done.
	phase int
}

// Next implements OpStream.
func (s *luStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *luStream) refill() bool {
	l := s.lu
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.emitSetup()
	case s.phase <= l.itmax:
		s.emitIteration(s.phase)
	case s.phase == l.itmax+1:
		s.emitTeardown()
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

func (s *luStream) emit(kind trace.Kind, instr, bytes float64, peer int, calls float64) {
	s.buf = append(s.buf, Op{
		Action: trace.Action{
			Rank:         s.rank,
			Kind:         kind,
			Instructions: instr,
			Peer:         peer,
			Bytes:        bytes,
		},
		Calls: calls,
	})
}

func (s *luStream) compute(instr, calls float64) {
	if instr > 0 {
		s.emit(trace.Compute, s.lu.instrScale()*instr, 0, -1, calls)
	}
}

// emitSetup models init: parameter broadcasts, initial state computation,
// one halo swap and the initial residual norm.
func (s *luStream) emitSetup() {
	l := s.lu
	pts := l.points(s.rank)
	s.emit(trace.Init, 0, 0, -1, 0)
	s.emit(trace.Bcast, 0, normBytes, -1, 1)
	s.emit(trace.Bcast, 0, normBytes, -1, 1)
	s.compute(float64(InstrSetupPerPoint)*pts, CallsPerPoint*pts/10)
	s.emitExchange3()
	s.compute(normComputeInstr(pts), pts/10)
	s.emit(trace.AllReduce, 0, normBytes, -1, 1)
}

// emitExchange3 is the full halo swap of the RHS computation: ghost planes
// to/from the four neighbors, posted as irecv / send / wait (the NPB
// exchange_3 pattern), first in x then in y.
func (s *luStream) emitExchange3() {
	l := s.lu
	nxLoc, nyLoc, nz := l.Dims(s.rank)
	north, south, west, east := l.neighbors(s.rank)
	xBytes := float64(ghostPlanes * wordsPerBoundaryPoint * doubleBytes * nyLoc * nz)
	yBytes := float64(ghostPlanes * wordsPerBoundaryPoint * doubleBytes * nxLoc * nz)
	swap := func(a, b int, bytes float64) {
		var nrecv int
		if a >= 0 {
			s.emit(trace.IRecv, 0, bytes, a, 1)
			nrecv++
		}
		if b >= 0 {
			s.emit(trace.IRecv, 0, bytes, b, 1)
			nrecv++
		}
		if a >= 0 {
			s.emit(trace.Send, 0, bytes, a, 1)
		}
		if b >= 0 {
			s.emit(trace.Send, 0, bytes, b, 1)
		}
		if nrecv > 0 {
			s.emit(trace.WaitAll, 0, 0, -1, 1)
		}
	}
	swap(north, south, xBytes)
	swap(west, east, yBytes)
}

// emitIteration generates one SSOR time step.
func (s *luStream) emitIteration(it int) {
	l := s.lu
	nxLoc, nyLoc, nz := l.Dims(s.rank)
	planePts := float64(nxLoc) * float64(nyLoc)
	pts := planePts * float64(nz)
	north, south, west, east := l.neighbors(s.rank)
	nsBytes := float64(wordsPerBoundaryPoint * doubleBytes * nyLoc) // row along y
	weBytes := float64(wordsPerBoundaryPoint * doubleBytes * nxLoc) // column along x

	// Right-hand side with halo swaps.
	s.compute(float64(InstrRHSX)*pts, CallsPerPoint*pts*float64(InstrRHSX)/float64(InstrPerPointIter))
	s.emitExchange3()
	s.compute(float64(InstrRHSY)*pts, CallsPerPoint*pts*float64(InstrRHSY)/float64(InstrPerPointIter))

	planeCallsBLTS := CallsPerPoint * planePts * float64(InstrBLTS) / float64(InstrPerPointIter)
	planeCallsBUTS := CallsPerPoint * planePts * float64(InstrBUTS) / float64(InstrPerPointIter)

	// Lower-triangular wavefront: dependencies flow from north and west.
	for k := 0; k < nz; k++ {
		if north >= 0 {
			s.emit(trace.Recv, 0, nsBytes, north, 1)
		}
		if west >= 0 {
			s.emit(trace.Recv, 0, weBytes, west, 1)
		}
		s.compute(float64(InstrBLTS)*planePts, planeCallsBLTS)
		if south >= 0 {
			s.emit(trace.Send, 0, nsBytes, south, 1)
		}
		if east >= 0 {
			s.emit(trace.Send, 0, weBytes, east, 1)
		}
	}
	// Upper-triangular wavefront: reversed.
	for k := nz - 1; k >= 0; k-- {
		if south >= 0 {
			s.emit(trace.Recv, 0, nsBytes, south, 1)
		}
		if east >= 0 {
			s.emit(trace.Recv, 0, weBytes, east, 1)
		}
		s.compute(float64(InstrBUTS)*planePts, planeCallsBUTS)
		if north >= 0 {
			s.emit(trace.Send, 0, nsBytes, north, 1)
		}
		if west >= 0 {
			s.emit(trace.Send, 0, weBytes, west, 1)
		}
	}
	// Residual norm.
	if l.isNormIteration(it) {
		s.compute(normComputeInstr(pts), pts/10)
		s.emit(trace.AllReduce, 0, normBytes, -1, 1)
	}
}

// emitTeardown models verification: error and surface-integral norms.
func (s *luStream) emitTeardown() {
	pts := s.lu.points(s.rank)
	s.compute(normComputeInstr(pts), pts/10)
	s.emit(trace.AllReduce, 0, normBytes, -1, 1)
	s.emit(trace.AllReduce, 0, normBytes, -1, 1)
	s.emit(trace.AllReduce, 0, normBytes, -1, 1)
	s.emit(trace.Finalize, 0, 0, -1, 0)
}

var _ Workload = (*LU)(nil)
