package npb

import (
	"math"
	"testing"

	"tireplay/internal/trace"
)

func TestEPValidationAndName(t *testing.T) {
	ep, err := NewEP(ClassA, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Name() != "EP A-8" {
		t.Fatalf("name = %q", ep.Name())
	}
	if _, err := NewEP(Class('Z'), 8); err == nil {
		t.Error("accepted bad class")
	}
	if _, err := NewEP(ClassA, 3); err == nil {
		t.Error("accepted non-power-of-two procs")
	}
}

func TestEPInstructionsMatchStream(t *testing.T) {
	ep, err := NewEP(ClassS, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ep.Rank(0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind == trace.Compute {
			sum += op.Action.Instructions
		}
	}
	want := ep.BaseInstructions(0)
	if math.Abs(sum-want) > 1e-6*want {
		t.Fatalf("stream %.6g != analytic %.6g", sum, want)
	}
	// EP's total work is independent of P: per-rank share halves as P
	// doubles.
	ep2, _ := NewEP(ClassS, 8)
	if math.Abs(ep2.BaseInstructions(0)*2-want) > 1e-6*want {
		t.Fatalf("EP per-rank work does not scale as 1/P: %g at 8 procs vs %g at 4",
			ep2.BaseInstructions(0), want)
	}
}

func TestEPTraceIsComputeDominatedAndBalanced(t *testing.T) {
	ep, err := NewEP(ClassS, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(AsProvider(ep)); err != nil {
		t.Fatal(err)
	}
	st, _ := ep.Rank(3)
	p2p := 0
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind.HasPeer() {
			p2p++
		}
	}
	if p2p != 0 {
		t.Fatalf("EP emitted %d point-to-point actions, want none", p2p)
	}
}

func TestGrid3D(t *testing.T) {
	cases := []struct{ p, px, py, pz int }{
		{1, 1, 1, 1}, {2, 2, 1, 1}, {4, 2, 2, 1}, {8, 2, 2, 2},
		{16, 4, 2, 2}, {64, 4, 4, 4}, {128, 8, 4, 4},
	}
	for _, c := range cases {
		px, py, pz, err := grid3D(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if px*py*pz != c.p {
			t.Fatalf("grid3D(%d) = %dx%dx%d does not multiply out", c.p, px, py, pz)
		}
		if px != c.px || py != c.py || pz != c.pz {
			t.Fatalf("grid3D(%d) = %dx%dx%d, want %dx%dx%d", c.p, px, py, pz, c.px, c.py, c.pz)
		}
	}
	if _, _, _, err := grid3D(6); err == nil {
		t.Error("accepted non-power-of-two")
	}
}

func TestMGValidation(t *testing.T) {
	if _, err := NewMG(ClassB, 8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMG(ClassB, 5, 0); err == nil {
		t.Error("accepted non-power-of-two procs")
	}
	if _, err := NewMG(Class('Z'), 8, 0); err == nil {
		t.Error("accepted bad class")
	}
}

func TestMGInstructionsMatchStream(t *testing.T) {
	mg, err := NewMG(ClassS, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 8; rank++ {
		st, err := mg.Rank(rank)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for {
			op, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if op.Action.Kind == trace.Compute {
				sum += op.Action.Instructions
			}
		}
		want := mg.BaseInstructions(rank)
		if math.Abs(sum-want) > 1e-6*want {
			t.Fatalf("rank %d: stream %.6g != analytic %.6g", rank, sum, want)
		}
	}
}

func TestMGTraceBalanced(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		mg, err := NewMG(ClassS, procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Validate(AsProvider(mg)); err != nil {
			t.Fatalf("MG S-%d: %v", procs, err)
		}
	}
}

func TestMGHaloSizesShrinkWithLevel(t *testing.T) {
	mg, err := NewMG(ClassA, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := mg.Rank(0)
	var sizes []float64
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind == trace.Send {
			sizes = append(sizes, op.Action.Bytes)
		}
	}
	if len(sizes) == 0 {
		t.Fatal("no halo messages")
	}
	maxSize, minSize := sizes[0], sizes[0]
	for _, s := range sizes {
		maxSize = math.Max(maxSize, s)
		minSize = math.Min(minSize, s)
	}
	// Fine-level faces are orders of magnitude larger than coarse ones.
	if maxSize < 100*minSize {
		t.Fatalf("halo sizes %v..%v: expected a wide multiscale range", minSize, maxSize)
	}
}

func TestMGNeighborsSymmetric(t *testing.T) {
	mg, err := NewMG(ClassS, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// If a is b's -x neighbour, b must be a's +x neighbour, etc.
	opposite := [6]int{1, 0, 3, 2, 5, 4}
	for rank := 0; rank < 8; rank++ {
		nb := mg.neighbors3D(rank)
		for d, peer := range nb {
			if peer < 0 {
				continue
			}
			back := mg.neighbors3D(peer)
			if back[opposite[d]] != rank {
				t.Fatalf("rank %d dir %d -> %d, but reverse is %d", rank, d, peer, back[opposite[d]])
			}
		}
	}
}

func TestMGSingleRankNoMessages(t *testing.T) {
	mg, err := NewMG(ClassS, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := mg.Rank(0)
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind.HasPeer() {
			t.Fatalf("single-rank MG emitted %v", op.Action)
		}
	}
}
