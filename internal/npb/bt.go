package npb

import (
	"fmt"

	"tireplay/internal/trace"
)

// BT models the NPB block-tridiagonal solver on a square process grid with
// an x-y pencil decomposition: each iteration rebuilds the right-hand side,
// exchanges the four pencil faces with nonblocking operations drained out
// of order (waitsome + waitall — the copy_faces pattern), then runs
// forward/backward line-solve sweeps across the grid rows and columns. The
// z direction is local to the pencil, so its sweep is pure compute.
type BT struct {
	Class Class
	Procs int
	// Iterations overrides the class niter when positive.
	Iterations int

	n, niter, q int
}

// btParams returns (grid dimension, iterations) for a class.
func btParams(c Class) (int, int, error) {
	switch c {
	case ClassS:
		return 12, 60, nil
	case ClassW:
		return 24, 200, nil
	case ClassA:
		return 64, 200, nil
	case ClassB:
		return 102, 200, nil
	case ClassC:
		return 162, 200, nil
	case ClassD:
		return 408, 250, nil
	}
	return 0, 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// BT instruction economics (per grid point per iteration).
const (
	InstrBTRHS      = 120
	InstrBTSolve    = 70 // per direction, split over the two sweep halves
	InstrBTAdd      = 12
	btCallsPerPoint = 0.15
	// btVars is the number of solution components per point; btLineBytes the
	// boundary payload of one line-solve interface point (a 5x5 block plus
	// the rhs vector).
	btVars      = 5
	btLineBytes = 8 * (btVars*btVars + btVars)
)

// gridSquare factors a square process count into its side, as BT and SP
// require ("the number of processes must be a perfect square").
func gridSquare(p int) (int, error) {
	if p <= 0 {
		return 0, fmt.Errorf("npb: process count must be positive, got %d", p)
	}
	q := 1
	for q*q < p {
		q++
	}
	if q*q != p {
		return 0, fmt.Errorf("npb: BT/SP require a square process count, got %d", p)
	}
	return q, nil
}

// NewBT validates and returns a BT instance.
func NewBT(class Class, procs, iterations int) (*BT, error) {
	n, niter, err := btParams(class)
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		niter = iterations
	}
	q, err := gridSquare(procs)
	if err != nil {
		return nil, err
	}
	if q > n {
		return nil, fmt.Errorf("npb: BT %s on %d processes exceeds the %d^3 grid", string(class), procs, n)
	}
	return &BT{Class: class, Procs: procs, Iterations: iterations, n: n, niter: niter, q: q}, nil
}

// Name implements Workload.
func (b *BT) Name() string { return fmt.Sprintf("BT %s-%d", b.Class, b.Procs) }

// Ranks implements Workload.
func (b *BT) Ranks() int { return b.Procs }

// coords returns the rank's position in the q x q grid.
func (b *BT) coords(rank int) (ix, iy int) { return rank % b.q, rank / b.q }

// localDims returns the rank's pencil cross-section.
func (b *BT) localDims(rank int) (nx, ny int) {
	ix, iy := b.coords(rank)
	return split(b.n, b.q, ix), split(b.n, b.q, iy)
}

// localPoints is the rank's grid-point count (the pencil spans all of z).
func (b *BT) localPoints(rank int) float64 {
	nx, ny := b.localDims(rank)
	return float64(nx) * float64(ny) * float64(b.n)
}

// WorkingSet implements Workload: solution, rhs, and the three block
// Jacobians of the line solves.
func (b *BT) WorkingSet(rank int) float64 {
	return 8 * float64(2*btVars+3*btVars*btVars) * b.localPoints(rank)
}

// BaseInstructions implements Workload.
func (b *BT) BaseInstructions(rank int) float64 {
	perPoint := float64(InstrBTRHS + 3*InstrBTSolve + InstrBTAdd)
	return float64(b.niter) * perPoint * b.localPoints(rank)
}

// Rank implements Workload.
func (b *BT) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= b.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, b.Procs)
	}
	return &btStream{bt: b, rank: rank}, nil
}

type btStream struct {
	bt    *BT
	rank  int
	buf   []Op
	pos   int
	phase int // 0 init, 1..niter iterations, niter+1 teardown
}

func (s *btStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *btStream) refill() bool {
	b := s.bt
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.emit(trace.Init, 0, 0, -1, 0)
	case s.phase <= b.niter:
		s.emitIteration()
	case s.phase == b.niter+1:
		s.emit(trace.AllReduce, 0, 8*btVars, -1, 1) // verification norms
		s.emit(trace.Finalize, 0, 0, -1, 0)
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

func (s *btStream) emit(kind trace.Kind, instr, bytes float64, peer int, calls float64) {
	s.buf = append(s.buf, Op{
		Action: trace.Action{Rank: s.rank, Kind: kind, Instructions: instr, Bytes: bytes, Peer: peer},
		Calls:  calls,
	})
}

func (s *btStream) emitIteration() {
	b := s.bt
	pts := b.localPoints(s.rank)
	s.emit(trace.Compute, InstrBTRHS*pts, 0, -1, btCallsPerPoint*pts)
	s.emitCopyFaces()
	// x and y line solves sweep across the grid; z is pencil-local.
	s.emitSweep(0)
	s.emitSweep(1)
	s.emit(trace.Compute, InstrBTSolve*pts, 0, -1, btCallsPerPoint*pts)
	s.emit(trace.Compute, InstrBTAdd*pts, 0, -1, btCallsPerPoint*pts)
}

// emitCopyFaces posts nonblocking receives and sends for the four pencil
// faces (periodic in both grid directions), then drains them out of order:
// a waitsome for the first half, a waitall for the rest.
func (s *btStream) emitCopyFaces() {
	b := s.bt
	if b.q == 1 {
		return
	}
	ix, iy := b.coords(s.rank)
	nx, ny := b.localDims(s.rank)
	at := func(x, y int) int { return y*b.q + x }
	type face struct {
		peer  int
		bytes float64
	}
	faces := []face{
		{at((ix+1)%b.q, iy), 8 * btVars * float64(ny) * float64(b.n)},
		{at((ix-1+b.q)%b.q, iy), 8 * btVars * float64(ny) * float64(b.n)},
		{at(ix, (iy+1)%b.q), 8 * btVars * float64(nx) * float64(b.n)},
		{at(ix, (iy-1+b.q)%b.q), 8 * btVars * float64(nx) * float64(b.n)},
	}
	posted := 0
	for _, f := range faces {
		if f.peer != s.rank {
			s.emit(trace.IRecv, 0, f.bytes, f.peer, 1)
			posted++
		}
	}
	for _, f := range faces {
		if f.peer != s.rank {
			s.emit(trace.ISend, 0, f.bytes, f.peer, 1)
			posted++
		}
	}
	if posted == 0 {
		return
	}
	if half := posted / 2; half > 0 {
		s.buf = append(s.buf, Op{
			Action: trace.Action{Rank: s.rank, Kind: trace.WaitSome, Peer: -1, Count: half},
			Calls:  1,
		})
	}
	s.emit(trace.WaitAll, 0, 0, -1, 1)
}

// emitSweep is one direction's line solve: a forward elimination pipelined
// toward higher grid coordinates, then the back substitution flowing the
// other way — the wavefront structure of BT's solve stages.
func (s *btStream) emitSweep(dir int) {
	b := s.bt
	ix, iy := b.coords(s.rank)
	nx, ny := b.localDims(s.rank)
	at := func(x, y int) int { return y*b.q + x }
	var pos, lo, hi int
	var ifaceBytes float64
	if dir == 0 {
		pos = ix
		lo, hi = at(ix-1, iy), at(ix+1, iy)
		ifaceBytes = btLineBytes * float64(ny) * float64(b.n)
	} else {
		pos = iy
		lo, hi = at(ix, iy-1), at(ix, iy+1)
		ifaceBytes = btLineBytes * float64(nx) * float64(b.n)
	}
	pts := b.localPoints(s.rank)
	half := InstrBTSolve * pts / 2
	// Forward elimination.
	if pos > 0 {
		s.emit(trace.Recv, 0, 0, lo, 1)
	}
	s.emit(trace.Compute, half, 0, -1, btCallsPerPoint*pts/2)
	if pos < b.q-1 {
		s.emit(trace.Send, 0, ifaceBytes, hi, 1)
	}
	// Back substitution.
	if pos < b.q-1 {
		s.emit(trace.Recv, 0, 0, hi, 1)
	}
	s.emit(trace.Compute, half, 0, -1, btCallsPerPoint*pts/2)
	if pos > 0 {
		s.emit(trace.Send, 0, ifaceBytes, lo, 1)
	}
}

var _ Workload = (*BT)(nil)
