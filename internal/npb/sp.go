package npb

import (
	"fmt"

	"tireplay/internal/trace"
)

// SP models the NPB scalar-pentadiagonal solver: the same square-grid
// pencil decomposition and sweep structure as BT, but with scalar (not
// block) line systems — lighter compute and thinner interface payloads —
// and a face exchange drained one completion at a time with waitany,
// overlapping each arrival's unpack compute with the remaining transfers.
type SP struct {
	Class Class
	Procs int
	// Iterations overrides the class niter when positive.
	Iterations int

	n, niter, q int
}

// spParams returns (grid dimension, iterations) for a class.
func spParams(c Class) (int, int, error) {
	switch c {
	case ClassS:
		return 12, 100, nil
	case ClassW:
		return 36, 400, nil
	case ClassA:
		return 64, 400, nil
	case ClassB:
		return 102, 400, nil
	case ClassC:
		return 162, 400, nil
	case ClassD:
		return 408, 500, nil
	}
	return 0, 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// SP instruction economics (per grid point per iteration).
const (
	InstrSPRHS   = 80
	InstrSPSolve = 45 // per direction
	InstrSPAdd   = 10
	// InstrSPUnpack is the per-face-point unpack cost overlapped with the
	// remaining transfers after each waitany completion.
	InstrSPUnpack   = 4
	spCallsPerPoint = 0.12
	spVars          = 5
	// spLineBytes is the scalar pentadiagonal interface payload per line.
	spLineBytes = 8 * 2 * spVars
)

// NewSP validates and returns an SP instance.
func NewSP(class Class, procs, iterations int) (*SP, error) {
	n, niter, err := spParams(class)
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		niter = iterations
	}
	q, err := gridSquare(procs)
	if err != nil {
		return nil, err
	}
	if q > n {
		return nil, fmt.Errorf("npb: SP %s on %d processes exceeds the %d^3 grid", string(class), procs, n)
	}
	return &SP{Class: class, Procs: procs, Iterations: iterations, n: n, niter: niter, q: q}, nil
}

// Name implements Workload.
func (s *SP) Name() string { return fmt.Sprintf("SP %s-%d", s.Class, s.Procs) }

// Ranks implements Workload.
func (s *SP) Ranks() int { return s.Procs }

func (s *SP) coords(rank int) (ix, iy int) { return rank % s.q, rank / s.q }

func (s *SP) localDims(rank int) (nx, ny int) {
	ix, iy := s.coords(rank)
	return split(s.n, s.q, ix), split(s.n, s.q, iy)
}

func (s *SP) localPoints(rank int) float64 {
	nx, ny := s.localDims(rank)
	return float64(nx) * float64(ny) * float64(s.n)
}

// WorkingSet implements Workload: solution, rhs, and the scalar
// pentadiagonal coefficient arrays.
func (s *SP) WorkingSet(rank int) float64 {
	return 8 * float64(2*spVars+15) * s.localPoints(rank)
}

// BaseInstructions implements Workload.
func (s *SP) BaseInstructions(rank int) float64 {
	perPoint := float64(InstrSPRHS + 3*InstrSPSolve + InstrSPAdd)
	return float64(s.niter) * perPoint * s.localPoints(rank)
}

// Rank implements Workload.
func (s *SP) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= s.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, s.Procs)
	}
	return &spStream{sp: s, rank: rank}, nil
}

type spStream struct {
	sp    *SP
	rank  int
	buf   []Op
	pos   int
	phase int // 0 init, 1..niter iterations, niter+1 teardown
}

func (s *spStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *spStream) refill() bool {
	sp := s.sp
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.emit(trace.Init, 0, 0, -1, 0)
	case s.phase <= sp.niter:
		s.emitIteration()
	case s.phase == sp.niter+1:
		s.emit(trace.AllReduce, 0, 8*spVars, -1, 1)
		s.emit(trace.Finalize, 0, 0, -1, 0)
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

func (s *spStream) emit(kind trace.Kind, instr, bytes float64, peer int, calls float64) {
	s.buf = append(s.buf, Op{
		Action: trace.Action{Rank: s.rank, Kind: kind, Instructions: instr, Bytes: bytes, Peer: peer},
		Calls:  calls,
	})
}

func (s *spStream) emitIteration() {
	sp := s.sp
	pts := sp.localPoints(s.rank)
	s.emit(trace.Compute, InstrSPRHS*pts, 0, -1, spCallsPerPoint*pts)
	s.emitFaceExchange()
	s.emitSweep(0)
	s.emitSweep(1)
	s.emit(trace.Compute, InstrSPSolve*pts, 0, -1, spCallsPerPoint*pts)
	s.emit(trace.Compute, InstrSPAdd*pts, 0, -1, spCallsPerPoint*pts)
}

// emitFaceExchange posts the four periodic face transfers and drains them
// one at a time: each waitany completion is followed by that face's unpack
// compute, overlapped with the transfers still in flight.
func (s *spStream) emitFaceExchange() {
	sp := s.sp
	if sp.q == 1 {
		return
	}
	ix, iy := sp.coords(s.rank)
	nx, ny := sp.localDims(s.rank)
	at := func(x, y int) int { return y*sp.q + x }
	type face struct {
		peer  int
		bytes float64
		area  float64
	}
	faces := []face{
		{at((ix+1)%sp.q, iy), 8 * spVars * float64(ny) * float64(sp.n), float64(ny) * float64(sp.n)},
		{at((ix-1+sp.q)%sp.q, iy), 8 * spVars * float64(ny) * float64(sp.n), float64(ny) * float64(sp.n)},
		{at(ix, (iy+1)%sp.q), 8 * spVars * float64(nx) * float64(sp.n), float64(nx) * float64(sp.n)},
		{at(ix, (iy-1+sp.q)%sp.q), 8 * spVars * float64(nx) * float64(sp.n), float64(nx) * float64(sp.n)},
	}
	posted := 0
	var unpack float64
	for _, f := range faces {
		if f.peer != s.rank {
			s.emit(trace.IRecv, 0, f.bytes, f.peer, 1)
			posted++
			unpack += InstrSPUnpack * f.area
		}
	}
	for _, f := range faces {
		if f.peer != s.rank {
			s.emit(trace.ISend, 0, f.bytes, f.peer, 1)
			posted++
		}
	}
	if posted == 0 {
		return
	}
	perDrain := unpack / float64(posted)
	for i := 0; i < posted; i++ {
		s.emit(trace.WaitAny, 0, 0, -1, 1)
		s.emit(trace.Compute, perDrain, 0, -1, 1)
	}
}

// emitSweep mirrors BT's sweep with scalar interface payloads.
func (s *spStream) emitSweep(dir int) {
	sp := s.sp
	ix, iy := sp.coords(s.rank)
	nx, ny := sp.localDims(s.rank)
	at := func(x, y int) int { return y*sp.q + x }
	var pos, lo, hi int
	var ifaceBytes float64
	if dir == 0 {
		pos = ix
		lo, hi = at(ix-1, iy), at(ix+1, iy)
		ifaceBytes = spLineBytes * float64(ny) * float64(sp.n)
	} else {
		pos = iy
		lo, hi = at(ix, iy-1), at(ix, iy+1)
		ifaceBytes = spLineBytes * float64(nx) * float64(sp.n)
	}
	pts := sp.localPoints(s.rank)
	half := InstrSPSolve * pts / 2
	if pos > 0 {
		s.emit(trace.Recv, 0, 0, lo, 1)
	}
	s.emit(trace.Compute, half, 0, -1, spCallsPerPoint*pts/2)
	if pos < sp.q-1 {
		s.emit(trace.Send, 0, ifaceBytes, hi, 1)
	}
	if pos < sp.q-1 {
		s.emit(trace.Recv, 0, 0, hi, 1)
	}
	s.emit(trace.Compute, half, 0, -1, spCallsPerPoint*pts/2)
	if pos > 0 {
		s.emit(trace.Send, 0, ifaceBytes, lo, 1)
	}
}

var _ Workload = (*SP)(nil)
