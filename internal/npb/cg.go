package npb

import (
	"fmt"
	"math"

	"tireplay/internal/trace"
)

// CG models the NPB conjugate-gradient kernel: an irregular sparse
// matrix-vector product whose communication pattern — recursive-halving
// reductions across process rows plus scalar allreduces — is very different
// from LU's wavefront. The paper's future work mentions assessing the
// framework on other applications; CG is the second workload our examples
// and extension benchmarks use.
type CG struct {
	Class Class
	Procs int
	// Iterations overrides the class niter when positive.
	Iterations int

	n, nzRow, niter int
}

// cgParams returns (n, nonzeros-per-row, niter) for a class.
func cgParams(c Class) (int, int, int, error) {
	switch c {
	case ClassS:
		return 1400, 7, 15, nil
	case ClassW:
		return 7000, 8, 15, nil
	case ClassA:
		return 14000, 11, 15, nil
	case ClassB:
		return 75000, 13, 75, nil
	case ClassC:
		return 150000, 15, 75, nil
	case ClassD:
		return 1500000, 21, 100, nil
	}
	return 0, 0, 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// CG instruction economics (per inner conjugate-gradient iteration).
const (
	// cgInnerIters is the number of CG iterations per outer step.
	cgInnerIters = 25
	// InstrPerNonzero covers the sparse matvec.
	InstrPerNonzero = 10
	// InstrPerRowVector covers the vector updates (axpy, dot products).
	InstrPerRowVector = 24
	// cgCallsPerRow is the instrumented-call density per matrix row.
	cgCallsPerRow = 0.6
)

// NewCG validates and returns a CG instance. Like LU, CG requires a
// power-of-two process count.
func NewCG(class Class, procs, iterations int) (*CG, error) {
	n, nzRow, niter, err := cgParams(class)
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		niter = iterations
	}
	if _, _, err := grid2D(procs); err != nil {
		return nil, err
	}
	return &CG{Class: class, Procs: procs, Iterations: iterations,
		n: n, nzRow: nzRow, niter: niter}, nil
}

// Name implements Workload.
func (c *CG) Name() string { return fmt.Sprintf("CG %s-%d", c.Class, c.Procs) }

// Ranks implements Workload.
func (c *CG) Ranks() int { return c.Procs }

// rowsPerRank is the rank's share of matrix rows.
func (c *CG) rowsPerRank() float64 { return float64(c.n) / float64(c.Procs) }

// WorkingSet implements Workload: the rank's matrix slice plus vectors.
func (c *CG) WorkingSet(rank int) float64 {
	return c.rowsPerRank() * float64(c.nzRow*12+4*8)
}

// innerInstr is the compute volume of one inner CG iteration.
func (c *CG) innerInstr() float64 {
	nnz := c.rowsPerRank() * float64(c.nzRow)
	return InstrPerNonzero*nnz + InstrPerRowVector*c.rowsPerRank()
}

// BaseInstructions implements Workload.
func (c *CG) BaseInstructions(rank int) float64 {
	return float64(c.niter) * cgInnerIters * c.innerInstr()
}

// Rank implements Workload.
func (c *CG) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= c.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, c.Procs)
	}
	return &cgStream{cg: c, rank: rank}, nil
}

type cgStream struct {
	cg    *CG
	rank  int
	buf   []Op
	pos   int
	phase int // 0 = setup, 1..niter = outer iterations, niter+1 = done marker
}

// Next implements OpStream.
func (s *cgStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *cgStream) refill() bool {
	c := s.cg
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.buf = append(s.buf, Op{Action: trace.Action{Rank: s.rank, Kind: trace.Init, Peer: -1}})
	case s.phase <= c.niter:
		s.emitOuter()
	case s.phase == c.niter+1:
		s.buf = append(s.buf, Op{Action: trace.Action{Rank: s.rank, Kind: trace.Finalize, Peer: -1}})
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

func (s *cgStream) emitOuter() {
	c := s.cg
	calls := cgCallsPerRow * c.rowsPerRank()
	levels := int(math.Round(math.Log2(float64(c.Procs))))
	segBytes := 8 * c.rowsPerRank()
	for inner := 0; inner < cgInnerIters; inner++ {
		s.buf = append(s.buf, Op{
			Action: trace.Action{Rank: s.rank, Kind: trace.Compute, Instructions: c.innerInstr(), Peer: -1},
			Calls:  calls,
		})
		// Reduction across the exchange dimension: recursive halving,
		// irecv/send/wait against XOR partners.
		for l := 0; l < levels; l++ {
			partner := s.rank ^ (1 << l)
			s.buf = append(s.buf,
				Op{Action: trace.Action{Rank: s.rank, Kind: trace.IRecv, Peer: partner, Bytes: segBytes}, Calls: 1},
				Op{Action: trace.Action{Rank: s.rank, Kind: trace.Send, Peer: partner, Bytes: segBytes}, Calls: 1},
				Op{Action: trace.Action{Rank: s.rank, Kind: trace.Wait, Peer: -1}, Calls: 1},
			)
		}
		// rho and alpha dot products.
		s.buf = append(s.buf,
			Op{Action: trace.Action{Rank: s.rank, Kind: trace.AllReduce, Bytes: 8, Peer: -1}, Calls: 1},
			Op{Action: trace.Action{Rank: s.rank, Kind: trace.AllReduce, Bytes: 8, Peer: -1}, Calls: 1},
		)
	}
	// Residual norm of the outer step.
	s.buf = append(s.buf, Op{Action: trace.Action{Rank: s.rank, Kind: trace.AllReduce, Bytes: 8, Peer: -1}, Calls: 1})
}

var _ Workload = (*CG)(nil)
