package npb

import (
	"fmt"
	"math"

	"tireplay/internal/trace"
)

// EP models the NPB "embarrassingly parallel" kernel: each rank generates
// and tests its share of 2^(M+1) Gaussian pairs independently, then three
// small allreduces combine the sums and the annulus counts. EP is the pure
// compute extreme of the benchmark family — the opposite end of the
// spectrum from LU's fine-grain coupling — and exercises the replay on a
// workload where the network model is almost irrelevant.
type EP struct {
	Class Class
	Procs int

	m int // log2 of the pair count minus 1
}

// epM returns the published M parameter for a class.
func epM(c Class) (int, error) {
	switch c {
	case ClassS:
		return 24, nil
	case ClassW:
		return 25, nil
	case ClassA:
		return 28, nil
	case ClassB:
		return 30, nil
	case ClassC:
		return 32, nil
	case ClassD:
		return 36, nil
	}
	return 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// EP instruction economics.
const (
	// InstrPerPair covers generating one random pair and the acceptance
	// test (two lcg draws, squares, log/sqrt on acceptance).
	InstrPerPair = 90
	// epCallsPerPair is the instrumented-call density.
	epCallsPerPair = 0.08
	// epSegments splits the per-rank batch so traces contain several
	// compute segments (the real code reports progress in chunks).
	epSegments = 16
)

// NewEP validates and returns an EP instance. Unlike LU, EP accepts any
// positive process count; we keep the power-of-two requirement for
// consistency with the rest of the suite.
func NewEP(class Class, procs int) (*EP, error) {
	m, err := epM(class)
	if err != nil {
		return nil, err
	}
	if _, _, err := grid2D(procs); err != nil {
		return nil, err
	}
	return &EP{Class: class, Procs: procs, m: m}, nil
}

// Name implements Workload.
func (e *EP) Name() string { return fmt.Sprintf("EP %s-%d", e.Class, e.Procs) }

// Ranks implements Workload.
func (e *EP) Ranks() int { return e.Procs }

// pairsPerRank is the rank's share of the 2^(M+1) pairs.
func (e *EP) pairsPerRank() float64 {
	return math.Exp2(float64(e.m+1)) / float64(e.Procs)
}

// WorkingSet implements Workload: EP streams random numbers through a tiny
// buffer; it always fits in cache.
func (e *EP) WorkingSet(rank int) float64 { return 128 * 1024 }

// BaseInstructions implements Workload.
func (e *EP) BaseInstructions(rank int) float64 {
	return InstrPerPair * e.pairsPerRank()
}

// Rank implements Workload.
func (e *EP) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= e.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, e.Procs)
	}
	var ops []Op
	emit := func(kind trace.Kind, instr, bytes float64, calls float64) {
		ops = append(ops, Op{
			Action: trace.Action{Rank: rank, Kind: kind, Instructions: instr, Bytes: bytes, Peer: -1},
			Calls:  calls,
		})
	}
	emit(trace.Init, 0, 0, 0)
	perSeg := e.BaseInstructions(rank) / epSegments
	callsPerSeg := epCallsPerPair * e.pairsPerRank() / epSegments
	for s := 0; s < epSegments; s++ {
		emit(trace.Compute, perSeg, 0, callsPerSeg)
	}
	// sx, sy sums and the ten annulus counts.
	emit(trace.AllReduce, 0, 8, 1)
	emit(trace.AllReduce, 0, 8, 1)
	emit(trace.AllReduce, 0, 80, 1)
	emit(trace.Finalize, 0, 0, 0)
	return NewOpSlice(ops), nil
}

// NewOpSlice wraps a materialized op list as an OpStream.
func NewOpSlice(ops []Op) OpStream { return &opSlice{ops: ops} }

type opSlice struct {
	ops []Op
	pos int
}

func (s *opSlice) Next() (Op, bool, error) {
	if s.pos >= len(s.ops) {
		return Op{}, false, nil
	}
	op := s.ops[s.pos]
	s.pos++
	return op, true, nil
}

var _ Workload = (*EP)(nil)
