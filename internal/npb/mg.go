package npb

import (
	"fmt"

	"tireplay/internal/trace"
)

// MG models the NPB multigrid kernel: V-cycles over a hierarchy of 3D
// grids, each level exchanging face halos with the six neighbours of a 3D
// process decomposition. MG stresses the replay differently from LU
// (latency-bound small messages at coarse levels, bandwidth-bound large
// faces at fine levels) and from CG (no global reductions inside the
// cycle).
type MG struct {
	Class Class
	Procs int
	// Iterations overrides the class default when positive.
	Iterations int

	n, niter   int
	px, py, pz int
}

// mgParams returns (grid dimension, iterations) per class.
func mgParams(c Class) (int, int, error) {
	switch c {
	case ClassS:
		return 32, 4, nil
	case ClassW:
		return 128, 4, nil
	case ClassA:
		return 256, 4, nil
	case ClassB:
		return 256, 20, nil
	case ClassC:
		return 512, 20, nil
	case ClassD:
		return 1024, 50, nil
	}
	return 0, 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// MG instruction economics (per grid point per V-cycle): the residual,
// smoother, restriction and prolongation stencils.
const (
	InstrMGResidual = 21
	InstrMGSmooth   = 24
	InstrMGTransfer = 15
	mgCallsPerPoint = 0.12
	// mgMinLevelDim stops coarsening when the global grid reaches this
	// dimension.
	mgMinLevelDim = 4
)

// grid3D factors a power-of-two process count into the most cubic
// (px, py, pz).
func grid3D(p int) (px, py, pz int, err error) {
	if p <= 0 || p&(p-1) != 0 {
		return 0, 0, 0, fmt.Errorf("npb: MG requires a power-of-two process count, got %d", p)
	}
	px, py, pz = 1, 1, 1
	for q := p; q > 1; q /= 2 {
		switch {
		case px <= py && px <= pz:
			px *= 2
		case py <= pz:
			py *= 2
		default:
			pz *= 2
		}
	}
	return px, py, pz, nil
}

// NewMG validates and returns an MG instance.
func NewMG(class Class, procs, iterations int) (*MG, error) {
	n, niter, err := mgParams(class)
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		niter = iterations
	}
	px, py, pz, err := grid3D(procs)
	if err != nil {
		return nil, err
	}
	if px > n || py > n || pz > n {
		return nil, fmt.Errorf("npb: MG %s on %d processes exceeds the %d^3 grid", string(class), procs, n)
	}
	return &MG{Class: class, Procs: procs, Iterations: iterations,
		n: n, niter: niter, px: px, py: py, pz: pz}, nil
}

// Name implements Workload.
func (m *MG) Name() string { return fmt.Sprintf("MG %s-%d", m.Class, m.Procs) }

// Ranks implements Workload.
func (m *MG) Ranks() int { return m.Procs }

// Grid returns the 3D process decomposition.
func (m *MG) Grid() (px, py, pz int) { return m.px, m.py, m.pz }

// levels returns the V-cycle depth.
func (m *MG) levels() int {
	l := 0
	for d := m.n; d >= mgMinLevelDim; d /= 2 {
		l++
	}
	return l
}

// localDims returns the rank's subgrid at level 0 (finest).
func (m *MG) localDims(rank int) (nx, ny, nz int) {
	ix := rank % m.px
	iy := (rank / m.px) % m.py
	iz := rank / (m.px * m.py)
	return split(m.n, m.px, ix), split(m.n, m.py, iy), split(m.n, m.pz, iz)
}

// neighbors3D returns the six face neighbours (-1 when at the boundary;
// NPB-MG is periodic, but we model the non-periodic variant to keep the
// message graph acyclic per direction, which does not change the volume
// shape).
func (m *MG) neighbors3D(rank int) [6]int {
	ix := rank % m.px
	iy := (rank / m.px) % m.py
	iz := rank / (m.px * m.py)
	at := func(x, y, z int) int { return z*m.px*m.py + y*m.px + x }
	nb := [6]int{-1, -1, -1, -1, -1, -1}
	if ix > 0 {
		nb[0] = at(ix-1, iy, iz)
	}
	if ix < m.px-1 {
		nb[1] = at(ix+1, iy, iz)
	}
	if iy > 0 {
		nb[2] = at(ix, iy-1, iz)
	}
	if iy < m.py-1 {
		nb[3] = at(ix, iy+1, iz)
	}
	if iz > 0 {
		nb[4] = at(ix, iy, iz-1)
	}
	if iz < m.pz-1 {
		nb[5] = at(ix, iy, iz+1)
	}
	return nb
}

// WorkingSet implements Workload: the finest-level subgrid with its halo
// (8 bytes per point, two resident arrays).
func (m *MG) WorkingSet(rank int) float64 {
	nx, ny, nz := m.localDims(rank)
	return 16 * float64(nx+2) * float64(ny+2) * float64(nz+2)
}

// pointsAtLevel returns the rank's subgrid volume at a level.
func (m *MG) pointsAtLevel(rank, level int) float64 {
	nx, ny, nz := m.localDims(rank)
	f := 1 << level
	lx, ly, lz := nx/f, ny/f, nz/f
	if lx < 1 {
		lx = 1
	}
	if ly < 1 {
		ly = 1
	}
	if lz < 1 {
		lz = 1
	}
	return float64(lx) * float64(ly) * float64(lz)
}

// BaseInstructions implements Workload.
func (m *MG) BaseInstructions(rank int) float64 {
	total := 0.0
	perPoint := float64(InstrMGResidual + 2*InstrMGSmooth + InstrMGTransfer)
	for l := 0; l < m.levels(); l++ {
		total += perPoint * m.pointsAtLevel(rank, l)
	}
	return float64(m.niter) * total
}

// Rank implements Workload with one V-cycle per refill.
func (m *MG) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= m.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, m.Procs)
	}
	return &mgStream{mg: m, rank: rank}, nil
}

type mgStream struct {
	mg    *MG
	rank  int
	buf   []Op
	pos   int
	phase int // 0 init, 1..niter cycles, niter+1 teardown
}

func (s *mgStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *mgStream) refill() bool {
	m := s.mg
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.emit(trace.Init, 0, 0, -1, 0)
	case s.phase <= m.niter:
		s.emitVCycle()
		// Residual norm after each cycle.
		s.emit(trace.AllReduce, 0, 8, -1, 1)
	case s.phase == m.niter+1:
		s.emit(trace.AllReduce, 0, 8, -1, 1) // final verification norm
		s.emit(trace.Finalize, 0, 0, -1, 0)
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

func (s *mgStream) emit(kind trace.Kind, instr, bytes float64, peer int, calls float64) {
	s.buf = append(s.buf, Op{
		Action: trace.Action{Rank: s.rank, Kind: kind, Instructions: instr, Bytes: bytes, Peer: peer},
		Calls:  calls,
	})
}

// emitVCycle descends to the coarsest level and climbs back, exchanging
// halos at each level.
func (s *mgStream) emitVCycle() {
	m := s.mg
	L := m.levels()
	// Downstroke: smooth + residual + restrict.
	for l := 0; l < L; l++ {
		pts := m.pointsAtLevel(s.rank, l)
		s.emit(trace.Compute, float64(InstrMGSmooth+InstrMGResidual)*pts, 0, -1, mgCallsPerPoint*pts)
		s.emitHalo(l)
	}
	// Upstroke: prolongate + smooth.
	for l := L - 1; l >= 0; l-- {
		pts := m.pointsAtLevel(s.rank, l)
		s.emit(trace.Compute, float64(InstrMGSmooth+InstrMGTransfer)*pts, 0, -1, mgCallsPerPoint*pts)
		s.emitHalo(l)
	}
}

// emitHalo exchanges the six faces at a level: irecv all, send all, waitall
// (the comm3 pattern of NPB-MG).
func (s *mgStream) emitHalo(level int) {
	m := s.mg
	nx, ny, nz := m.localDims(s.rank)
	f := 1 << level
	lx, ly, lz := max(nx/f, 1), max(ny/f, 1), max(nz/f, 1)
	faceBytes := [6]float64{
		8 * float64(ly) * float64(lz), 8 * float64(ly) * float64(lz), // x faces
		8 * float64(lx) * float64(lz), 8 * float64(lx) * float64(lz), // y faces
		8 * float64(lx) * float64(ly), 8 * float64(lx) * float64(ly), // z faces
	}
	nb := m.neighbors3D(s.rank)
	posted := 0
	for d, peer := range nb {
		if peer >= 0 {
			s.emit(trace.IRecv, 0, faceBytes[d], peer, 1)
			posted++
		}
	}
	for d, peer := range nb {
		if peer >= 0 {
			s.emit(trace.Send, 0, faceBytes[d], peer, 1)
		}
	}
	if posted > 0 {
		s.emit(trace.WaitAll, 0, 0, -1, 1)
	}
}

var _ Workload = (*MG)(nil)
