package npb

import (
	"testing"

	"tireplay/internal/core"
	"tireplay/internal/platform"
)

func smokePlatform(t *testing.T, n int) *platform.Platform {
	t.Helper()
	p, err := platform.NewFlatCluster(platform.FlatConfig{
		Name: "smoke", Hosts: n, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The new workloads must replay to completion — the waitany/waitsome drains
// and vector collectives included — with bit-identical simulated times and
// action counts under both schedulers.
func TestNewWorkloadsReplayBothModes(t *testing.T) {
	plat := smokePlatform(t, 9)
	for _, tc := range []struct {
		name string
		mk   func() (Workload, error)
	}{
		{"bt-4", func() (Workload, error) { return NewBT(ClassS, 4, 2) }},
		{"sp-9", func() (Workload, error) { return NewSP(ClassS, 9, 2) }},
		{"ft-5", func() (Workload, error) { return NewFT(ClassS, 5, 2) }}, // 64 % 5 != 0: uneven transpose
		{"bt-1", func() (Workload, error) { return NewBT(ClassS, 1, 2) }},
		{"ft-1", func() (Workload, error) { return NewFT(ClassS, 1, 2) }},
	} {
		w, err := tc.mk()
		if err != nil {
			t.Fatal(err)
		}
		var times []float64
		var actions []int64
		for _, goroutines := range []bool{false, true} {
			res, err := core.Replay(AsProvider(w), plat, core.Config{GoroutineProcs: goroutines})
			if err != nil {
				t.Fatalf("%s goroutines=%v: %v", tc.name, goroutines, err)
			}
			if res.SimulatedTime <= 0 {
				t.Fatalf("%s: non-positive simulated time %v", tc.name, res.SimulatedTime)
			}
			times = append(times, res.SimulatedTime)
			actions = append(actions, res.Actions)
		}
		if times[0] != times[1] || actions[0] != actions[1] {
			t.Fatalf("%s: schedulers disagree: times %v actions %v", tc.name, times, actions)
		}
	}
}

func TestNewWorkloadConstructorsValidate(t *testing.T) {
	if _, err := NewBT(ClassS, 3, 1); err == nil {
		t.Fatal("BT accepted non-square process count")
	}
	if _, err := NewSP(ClassS, 5, 1); err == nil {
		t.Fatal("SP accepted non-square process count")
	}
	if _, err := NewFT(ClassS, 65, 1); err == nil {
		t.Fatal("FT accepted more processes than planes")
	}
	if _, err := NewFT(Class('X'), 4, 1); err == nil {
		t.Fatal("FT accepted unknown class")
	}
}

// BT/SP/FT must satisfy the cross-rank consistency the replay requires:
// matched sends/recvs and identical collective sequences. Replaying on the
// MSG backend (monolithic collectives with strict barrier synchronization)
// would hang on any mismatch; completing is the property.
func TestNewWorkloadsReplayOnMSG(t *testing.T) {
	plat := smokePlatform(t, 4)
	for _, mk := range []func() (Workload, error){
		func() (Workload, error) { return NewBT(ClassS, 4, 1) },
		func() (Workload, error) { return NewSP(ClassS, 4, 1) },
		func() (Workload, error) { return NewFT(ClassS, 3, 1) },
	} {
		w, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.Config{Backend: core.MSG}
		cfg.MSG.RefLatency = 1e-5
		cfg.MSG.RefBandwidth = 1e9
		if _, err := core.Replay(AsProvider(w), plat, cfg); err != nil {
			t.Fatalf("%s on msg: %v", w.Name(), err)
		}
	}
}
