package npb

import (
	"fmt"
	"math"

	"tireplay/internal/trace"
)

// FT models the NPB 3D fast-Fourier-transform kernel: each iteration
// evolves the spectrum and runs FFT passes separated by a global transpose.
// With a 1D slab decomposition the transpose is an all-to-all whose per-pair
// volumes are the products of both ranks' slab widths — uneven whenever the
// grid does not divide evenly by the process count — which makes FT the
// natural workload for the alltoallv action. The final checksum collection
// is an allgatherv of per-slab contributions.
type FT struct {
	Class Class
	Procs int
	// Iterations overrides the class niter when positive.
	Iterations int

	nx, ny, nz, niter int
}

// ftParams returns (nx, ny, nz, niter) for a class (the published FT grids).
func ftParams(c Class) (int, int, int, int, error) {
	switch c {
	case ClassS:
		return 64, 64, 64, 6, nil
	case ClassW:
		return 128, 128, 32, 6, nil
	case ClassA:
		return 256, 256, 128, 6, nil
	case ClassB:
		return 512, 256, 256, 20, nil
	case ClassC:
		return 512, 512, 512, 20, nil
	case ClassD:
		return 2048, 1024, 1024, 25, nil
	}
	return 0, 0, 0, 0, fmt.Errorf("npb: unknown class %q", string(c))
}

// FT instruction economics (per complex grid point).
const (
	// InstrFTButterfly covers one point's share of a 1D FFT pass: ~5 log2 n
	// floating-point operations lowered to a few instructions each.
	InstrFTButterfly = 9
	// InstrFTEvolve covers the per-point spectrum evolution multiply.
	InstrFTEvolve   = 8
	ftCallsPerPoint = 0.05
	// ftComplexBytes is the storage of one double-complex grid point.
	ftComplexBytes = 16
)

// NewFT validates and returns an FT instance. The slab decomposition needs
// at least one plane per rank in both transposed dimensions, but — unlike
// the power-of-two workloads — any process count satisfying that works,
// precisely because the transpose volumes may be uneven.
func NewFT(class Class, procs, iterations int) (*FT, error) {
	nx, ny, nz, niter, err := ftParams(class)
	if err != nil {
		return nil, err
	}
	if iterations > 0 {
		niter = iterations
	}
	if procs < 1 {
		return nil, fmt.Errorf("npb: FT needs at least one process, got %d", procs)
	}
	if procs > nx || procs > ny {
		return nil, fmt.Errorf("npb: FT %s slab decomposition supports at most %d processes, got %d",
			string(class), min(nx, ny), procs)
	}
	return &FT{Class: class, Procs: procs, Iterations: iterations,
		nx: nx, ny: ny, nz: nz, niter: niter}, nil
}

// Name implements Workload.
func (f *FT) Name() string { return fmt.Sprintf("FT %s-%d", f.Class, f.Procs) }

// Ranks implements Workload.
func (f *FT) Ranks() int { return f.Procs }

// slabX and slabY are the rank's plane counts in the two decomposed
// dimensions (x before the transpose, y after).
func (f *FT) slabX(rank int) int { return split(f.nx, f.Procs, rank) }
func (f *FT) slabY(rank int) int { return split(f.ny, f.Procs, rank) }

// localPoints is the rank's grid-point count in the x-slab layout.
func (f *FT) localPoints(rank int) float64 {
	return float64(f.slabX(rank)) * float64(f.ny) * float64(f.nz)
}

// WorkingSet implements Workload: two resident complex arrays plus the
// transpose scratch buffer.
func (f *FT) WorkingSet(rank int) float64 {
	return 3 * ftComplexBytes * f.localPoints(rank)
}

// fftPassInstr is the compute volume of all 1D FFT passes over one layout
// of the rank's points.
func (f *FT) fftPassInstr(rank int) float64 {
	logn := math.Log2(float64(f.nx)) + math.Log2(float64(f.ny)) + math.Log2(float64(f.nz))
	return InstrFTButterfly * f.localPoints(rank) * logn / 3
}

// BaseInstructions implements Workload.
func (f *FT) BaseInstructions(rank int) float64 {
	perIter := InstrFTEvolve*f.localPoints(rank) + 2*f.fftPassInstr(rank)
	return float64(f.niter) * perIter
}

// transposeVols returns the alltoallv send vector of the slab transpose:
// the block handed to rank k is this rank's x-planes times k's y-planes
// times the full z extent. Both split remainders land in the vector, so any
// nx%P or ny%P imbalance shows up as unequal volumes.
func (f *FT) transposeVols(rank int) []float64 {
	vols := make([]float64, f.Procs)
	for k := 0; k < f.Procs; k++ {
		if k == rank {
			continue
		}
		vols[k] = ftComplexBytes * float64(f.slabX(rank)) * float64(f.slabY(k)) * float64(f.nz)
	}
	return vols
}

// checksumVols returns the allgatherv vector of the final checksum
// collection: rank k contributes one complex value per x-plane it owns —
// identical on every rank, as the action requires.
func (f *FT) checksumVols() []float64 {
	vols := make([]float64, f.Procs)
	for k := 0; k < f.Procs; k++ {
		vols[k] = ftComplexBytes * float64(f.slabX(k))
	}
	return vols
}

// Rank implements Workload.
func (f *FT) Rank(rank int) (OpStream, error) {
	if rank < 0 || rank >= f.Procs {
		return nil, fmt.Errorf("npb: rank %d out of range [0,%d)", rank, f.Procs)
	}
	return &ftStream{ft: f, rank: rank}, nil
}

type ftStream struct {
	ft    *FT
	rank  int
	buf   []Op
	pos   int
	phase int // 0 init, 1..niter iterations, niter+1 teardown
}

func (s *ftStream) Next() (Op, bool, error) {
	for s.pos >= len(s.buf) {
		if !s.refill() {
			return Op{}, false, nil
		}
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true, nil
}

func (s *ftStream) refill() bool {
	f := s.ft
	s.buf = s.buf[:0]
	s.pos = 0
	switch {
	case s.phase == 0:
		s.buf = append(s.buf, Op{Action: trace.Action{Rank: s.rank, Kind: trace.Init, Peer: -1}})
	case s.phase <= f.niter:
		s.emitIteration()
	case s.phase == f.niter+1:
		// Checksum collection and teardown.
		s.buf = append(s.buf,
			Op{Action: trace.Action{Rank: s.rank, Kind: trace.AllGatherV, Peer: -1, Volumes: f.checksumVols()}, Calls: 1},
			Op{Action: trace.Action{Rank: s.rank, Kind: trace.Finalize, Peer: -1}})
	default:
		return false
	}
	s.phase++
	return len(s.buf) > 0 || s.refill()
}

// emitIteration is one evolve + forward/inverse FFT step: local passes
// separated by the transpose, then the iteration checksum.
func (s *ftStream) emitIteration() {
	f := s.ft
	pts := f.localPoints(s.rank)
	calls := ftCallsPerPoint * pts
	s.buf = append(s.buf, Op{
		Action: trace.Action{Rank: s.rank, Kind: trace.Compute, Peer: -1,
			Instructions: InstrFTEvolve*pts + f.fftPassInstr(s.rank)},
		Calls: calls,
	})
	if f.Procs > 1 {
		s.buf = append(s.buf, Op{
			Action: trace.Action{Rank: s.rank, Kind: trace.AllToAllV, Peer: -1, Volumes: f.transposeVols(s.rank)},
			Calls:  1,
		})
	}
	s.buf = append(s.buf,
		Op{Action: trace.Action{Rank: s.rank, Kind: trace.Compute, Peer: -1, Instructions: f.fftPassInstr(s.rank)},
			Calls: calls},
		Op{Action: trace.Action{Rank: s.rank, Kind: trace.AllReduce, Peer: -1, Bytes: ftComplexBytes}, Calls: 1},
	)
}

var _ Workload = (*FT)(nil)
