package npb

import (
	"math"
	"testing"
	"testing/quick"

	"tireplay/internal/trace"
)

func TestGrid2D(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2},
		{16, 4, 4}, {32, 8, 4}, {64, 8, 8}, {128, 16, 8},
	}
	for _, c := range cases {
		px, py, err := grid2D(c.p)
		if err != nil {
			t.Fatalf("grid2D(%d): %v", c.p, err)
		}
		if px != c.px || py != c.py {
			t.Fatalf("grid2D(%d) = %dx%d, want %dx%d", c.p, px, py, c.px, c.py)
		}
	}
	for _, bad := range []int{0, -1, 3, 6, 12, 100} {
		if _, _, err := grid2D(bad); err == nil {
			t.Errorf("grid2D(%d) accepted", bad)
		}
	}
}

func TestSplitConserves(t *testing.T) {
	f := func(n16, parts8 uint8) bool {
		n := int(n16) + 1
		parts := int(parts8)%n + 1
		total := 0
		for i := 0; i < parts; i++ {
			s := split(n, parts, i)
			if s < n/parts || s > n/parts+1 {
				return false
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassParams(t *testing.T) {
	for _, c := range []struct {
		class Class
		size  int
		iters int
	}{
		{ClassS, 12, 50}, {ClassA, 64, 250}, {ClassB, 102, 250}, {ClassC, 162, 250},
	} {
		n, err := c.class.luSize()
		if err != nil || n != c.size {
			t.Fatalf("class %s size = %d,%v", c.class, n, err)
		}
		it, err := c.class.luIterations()
		if err != nil || it != c.iters {
			t.Fatalf("class %s iters = %d,%v", c.class, it, err)
		}
	}
	if _, err := ParseClass("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseClass("Z"); err == nil {
		t.Fatal("accepted bad class")
	}
	if _, err := ParseClass("BB"); err == nil {
		t.Fatal("accepted two-letter class")
	}
}

func TestLUValidation(t *testing.T) {
	if _, err := NewLU(ClassB, 8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLU(ClassB, 6, 0); err == nil {
		t.Error("accepted non-power-of-two procs")
	}
	if _, err := NewLU(ClassS, 1024, 0); err == nil {
		t.Error("accepted grid larger than problem")
	}
	if _, err := NewLU(Class('Z'), 8, 0); err == nil {
		t.Error("accepted bad class")
	}
}

// TestLUPaperInstructionCounts verifies the calibration of the instruction
// model against the two counter values quoted in Section 2.2 of the paper:
// ~1.70e11 instructions per process for B-8 and ~8.87e10 for C-64.
func TestLUPaperInstructionCounts(t *testing.T) {
	b8, err := NewLU(ClassB, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for r := 0; r < 8; r++ {
		mean += b8.BaseInstructions(r)
	}
	mean /= 8
	if math.Abs(mean-1.70e11)/1.70e11 > 0.03 {
		t.Fatalf("B-8 mean instructions = %.3e, want within 3%% of 1.70e11", mean)
	}
	c64, err := NewLU(ClassC, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean = 0
	for r := 0; r < 64; r++ {
		mean += c64.BaseInstructions(r)
	}
	mean /= 64
	if math.Abs(mean-8.87e10)/8.87e10 > 0.03 {
		t.Fatalf("C-64 mean instructions = %.3e, want within 3%% of 8.87e10", mean)
	}
}

// TestLUStreamMatchesAnalytic checks that the generated compute volumes sum
// exactly to BaseInstructions for every rank.
func TestLUStreamMatchesAnalytic(t *testing.T) {
	lu, err := NewLU(ClassS, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 8; rank++ {
		st, err := lu.Rank(rank)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for {
			op, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if op.Action.Kind == trace.Compute {
				sum += op.Action.Instructions
			}
		}
		want := lu.BaseInstructions(rank)
		if math.Abs(sum-want) > 1e-6*want {
			t.Fatalf("rank %d: generated %.6e instructions, analytic %.6e", rank, sum, want)
		}
	}
}

// TestLUTraceBalanced validates the cross-rank consistency of the generated
// trace (every send matched, collectives balanced) via the trace validator.
func TestLUTraceBalanced(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16} {
		lu, err := NewLU(ClassS, procs, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Validate(AsProvider(lu)); err != nil {
			t.Fatalf("LU S-%d: %v", procs, err)
		}
	}
}

// Property: message volumes are conserved pairwise for random instances.
func TestLUSendRecvVolumesMatchProperty(t *testing.T) {
	f := func(pSel, classSel uint8) bool {
		procs := []int{1, 2, 4, 8}[pSel%4]
		class := []Class{ClassS, ClassW}[classSel%2]
		lu, err := NewLU(class, procs, 2)
		if err != nil {
			return false
		}
		sent := map[[2]int]float64{}
		recvd := map[[2]int]float64{}
		for rank := 0; rank < procs; rank++ {
			st, _ := lu.Rank(rank)
			for {
				op, ok, err := st.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				a := op.Action
				switch a.Kind {
				case trace.Send, trace.ISend:
					sent[[2]int{a.Rank, a.Peer}] += a.Bytes
				case trace.Recv, trace.IRecv:
					recvd[[2]int{a.Peer, a.Rank}] += a.Bytes
				}
			}
		}
		if len(sent) != len(recvd) {
			return false
		}
		for k, v := range sent {
			if math.Abs(recvd[k]-v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLUNeighbors(t *testing.T) {
	lu, err := NewLU(ClassB, 8, 1) // 4x2 grid
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 = (ix 0, iy 0): no north, south=1, no west, east=4.
	n, s, w, e := lu.neighbors(0)
	if n != -1 || s != 1 || w != -1 || e != 4 {
		t.Fatalf("rank0 neighbors = %d,%d,%d,%d", n, s, w, e)
	}
	// Rank 5 = (ix 1, iy 1): north=4, south=6, west=1, east=-1 (py=2).
	n, s, w, e = lu.neighbors(5)
	if n != 4 || s != 6 || w != 1 || e != -1 {
		t.Fatalf("rank5 neighbors = %d,%d,%d,%d", n, s, w, e)
	}
}

func TestLUDimsCoverGrid(t *testing.T) {
	lu, err := NewLU(ClassB, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	px, py := lu.Grid()
	// Sum of nxLoc over a row of ranks must equal n; same for columns.
	totalX := 0
	for ix := 0; ix < px; ix++ {
		nx, _, _ := lu.Dims(ix) // iy = 0 row
		totalX += nx
	}
	if totalX != 102 {
		t.Fatalf("sum nxLoc = %d, want 102", totalX)
	}
	totalY := 0
	for iy := 0; iy < py; iy++ {
		_, ny, _ := lu.Dims(iy * px)
		totalY += ny
	}
	if totalY != 102 {
		t.Fatalf("sum nyLoc = %d, want 102", totalY)
	}
}

// TestLUWorkingSetCacheThresholds verifies the cache-model calibration of
// Sections 2.3/3.4: A-4 fits a 1 MB L2; B-4, C-4 and C-8 do not; every
// studied instance (P >= 8) fits a 2 MB L2.
func TestLUWorkingSetCacheThresholds(t *testing.T) {
	const mb = 1 << 20
	ws := func(class Class, procs int) float64 {
		lu, err := NewLU(class, procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		w := 0.0
		for r := 0; r < procs; r++ {
			if s := lu.WorkingSet(r); s > w {
				w = s
			}
		}
		return w
	}
	if w := ws(ClassA, 4); w >= 1*mb {
		t.Errorf("A-4 working set %.0f B should fit 1 MB L2", w)
	}
	for _, c := range []struct {
		class Class
		procs int
	}{{ClassB, 4}, {ClassC, 4}, {ClassC, 8}} {
		if w := ws(c.class, c.procs); w < 1*mb {
			t.Errorf("%s-%d working set %.0f B should exceed 1 MB L2", c.class, c.procs, w)
		}
	}
	for _, c := range []struct {
		class Class
		procs int
	}{{ClassB, 8}, {ClassB, 128}, {ClassC, 8}, {ClassC, 128}} {
		if w := ws(c.class, c.procs); w >= 2*mb {
			t.Errorf("%s-%d working set %.0f B should fit 2 MB L2", c.class, c.procs, w)
		}
	}
}

func TestLUMessageSizesEager(t *testing.T) {
	// Wavefront messages must be small (eager); exchange_3 halos large
	// (rendezvous) for class B at 8 procs.
	lu, err := NewLU(ClassB, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := lu.Rank(5) // interior-ish rank
	if err != nil {
		t.Fatal(err)
	}
	var small, large int
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind == trace.Send {
			if op.Action.Bytes < 65536 {
				small++
			} else {
				large++
			}
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("small=%d large=%d, want both present", small, large)
	}
	if small < 10*large {
		t.Fatalf("small=%d large=%d: wavefront messages should dominate", small, large)
	}
}

func TestLUIterationOverride(t *testing.T) {
	lu1, _ := NewLU(ClassS, 4, 1)
	lu5, _ := NewLU(ClassS, 4, 5)
	if lu1.ItMax() != 1 || lu5.ItMax() != 5 {
		t.Fatalf("itmax = %d,%d", lu1.ItMax(), lu5.ItMax())
	}
	if lu5.BaseInstructions(0) <= lu1.BaseInstructions(0) {
		t.Fatal("more iterations should mean more instructions")
	}
}

func TestLUSingleRankHasNoMessages(t *testing.T) {
	lu, err := NewLU(ClassS, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := lu.Rank(0)
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind.HasPeer() {
			t.Fatalf("single-rank LU emitted %v", op.Action)
		}
	}
}

func TestCGValidationAndBalance(t *testing.T) {
	if _, err := NewCG(ClassB, 6, 0); err == nil {
		t.Error("accepted non-power-of-two procs")
	}
	if _, err := NewCG(Class('Z'), 8, 0); err == nil {
		t.Error("accepted bad class")
	}
	cg, err := NewCG(ClassS, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(AsProvider(cg)); err != nil {
		t.Fatal(err)
	}
}

func TestCGInstructionsMatchAnalytic(t *testing.T) {
	cg, err := NewCG(ClassS, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := cg.Rank(0)
	sum := 0.0
	for {
		op, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if op.Action.Kind == trace.Compute {
			sum += op.Action.Instructions
		}
	}
	want := cg.BaseInstructions(0)
	if math.Abs(sum-want) > 1e-9*want {
		t.Fatalf("generated %.6e, analytic %.6e", sum, want)
	}
}

func TestWorkloadNames(t *testing.T) {
	lu, _ := NewLU(ClassB, 8, 0)
	if lu.Name() != "LU B-8" {
		t.Fatalf("name = %q", lu.Name())
	}
	cg, _ := NewCG(ClassC, 16, 0)
	if cg.Name() != "CG C-16" {
		t.Fatalf("name = %q", cg.Name())
	}
}

func TestAsProviderStreams(t *testing.T) {
	lu, _ := NewLU(ClassS, 2, 1)
	prov := AsProvider(lu)
	if prov.NumRanks() != 2 {
		t.Fatalf("ranks = %d", prov.NumRanks())
	}
	st, err := prov.Rank(0)
	if err != nil {
		t.Fatal(err)
	}
	a, ok, err := st.Next()
	if err != nil || !ok || a.Kind != trace.Init {
		t.Fatalf("first action = %+v ok=%v err=%v", a, ok, err)
	}
	if _, err := prov.Rank(9); err == nil {
		t.Fatal("expected range error")
	}
}
