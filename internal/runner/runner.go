// Package runner executes batches of scenarios on a worker pool. Each
// simulation engine is single-threaded and scenarios share no state, so a
// sweep — the paper's whole evaluation grid, or a dimensioning study over
// candidate platforms — is embarrassingly parallel across scenarios while
// every individual replay stays deterministic.
//
// Stream is the core: it yields one Result per scenario in completion
// order, which is what lets the sweep layer (package sweep) persist and
// report results as they land instead of blocking on the whole batch. Run
// is the batch convenience built on top of it.
package runner

import (
	"context"
	"iter"
	"runtime"
	"sync"

	"tireplay/internal/core"
	"tireplay/internal/scenario"
)

// Result is the outcome of one scenario of a batch. Exactly one of Replay
// and Err is set, unless the scenario was skipped by cancellation (then Err
// is the context's error).
type Result struct {
	// Index is the scenario's position in the input slice. Run returns
	// results in input order; Stream yields them in completion order and
	// Index identifies the scenario.
	Index int
	// Scenario is the executed scenario.
	Scenario *scenario.Scenario
	// Replay is the replay outcome, nil if the scenario failed or was
	// skipped.
	Replay *core.Result
	// Err is the scenario's failure, nil on success. A failure affects only
	// this scenario; the rest of the batch still runs.
	Err error
}

// EventKind tags observer callbacks.
type EventKind int

const (
	// Started fires when a worker picks the scenario up.
	Started EventKind = iota
	// Finished fires when the scenario completes (Result.Replay set),
	// fails (Result.Err set), or is skipped by cancellation.
	Finished
)

// Event is one progress notification.
type Event struct {
	Kind EventKind
	// Result carries the scenario and its index; Replay/Err are only
	// meaningful for Finished events.
	Result Result
	// Done and Total report batch progress as of this event. Done increases
	// by exactly one per Finished event — including scenarios skipped by
	// cancellation — and reaches Total once every scenario has a terminal
	// Result.
	Done, Total int
}

// Option configures a batch run.
type Option func(*config)

type config struct {
	workers  int
	observer func(Event)
}

// WithWorkers sets the worker-pool size; n < 1 selects GOMAXPROCS. Workers
// only add wall-clock parallelism: per-scenario results are bit-identical
// to a sequential run.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithObserver installs a progress callback. Events are delivered
// serialized (never concurrently), but from worker goroutines and in
// completion order, which is nondeterministic across runs.
func WithObserver(f func(Event)) Option {
	return func(c *config) { c.observer = f }
}

// Stream executes every scenario on a pool of workers and yields one
// terminal Result per scenario in completion order. Scenario failures are
// carried in their Result and do not abort the batch. When ctx is
// cancelled mid-batch, every not-yet-started scenario is still yielded,
// skipped, with the context's error as its Err — the stream always
// delivers exactly len(scenarios) results unless the consumer stops
// early. Stopping early (breaking out of the range loop) cancels the
// remaining work and reclaims the pool.
func Stream(ctx context.Context, scenarios []*scenario.Scenario, opts ...Option) iter.Seq[Result] {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.workers > len(scenarios) {
		cfg.workers = len(scenarios)
	}

	return func(yield func(Result) bool) {
		if len(scenarios) == 0 {
			return
		}
		// Early consumer exit must stop the pool, not leak it: cancel the
		// derived context and drain until the pool closes the channel.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		var (
			mu   sync.Mutex // serializes observer callbacks and the done counter
			done int
		)
		notify := func(kind EventKind, r Result) {
			if cfg.observer == nil && kind != Finished {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if kind == Finished {
				done++
			}
			if cfg.observer != nil {
				cfg.observer(Event{Kind: kind, Result: r, Done: done, Total: len(scenarios)})
			}
		}

		out := make(chan Result)
		indexes := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range indexes {
					r := Result{Index: i, Scenario: scenarios[i]}
					if err := ctx.Err(); err != nil {
						// Cancelled: mark the scenario skipped, don't run it.
						r.Err = err
					} else {
						notify(Started, r)
						r.Replay, r.Err = r.Scenario.Run(ctx)
					}
					notify(Finished, r)
					out <- r
				}
			}()
		}

		go func() {
		feed:
			for i := range scenarios {
				select {
				case indexes <- i:
				case <-ctx.Done():
					// Indexes from i on were never handed to a worker: report
					// them skipped with the context's error.
					for j := i; j < len(scenarios); j++ {
						r := Result{Index: j, Scenario: scenarios[j], Err: ctx.Err()}
						notify(Finished, r)
						out <- r
					}
					break feed
				}
			}
			close(indexes)
			wg.Wait()
			close(out)
		}()

		for r := range out {
			if !yield(r) {
				cancel()
				for range out { // unblock the pool until it closes the channel
				}
				return
			}
		}
	}
}

// Run executes every scenario on a pool of workers and returns one Result
// per scenario, in input order. Scenario failures are recorded in their
// Result and do not abort the batch; the returned error is non-nil only
// when ctx is cancelled, in which case not-yet-started scenarios carry the
// context error in their Result.
func Run(ctx context.Context, scenarios []*scenario.Scenario, opts ...Option) ([]Result, error) {
	results := make([]Result, len(scenarios))
	for i, s := range scenarios {
		results[i] = Result{Index: i, Scenario: s}
	}
	for r := range Stream(ctx, scenarios, opts...) {
		results[r.Index] = r
	}
	return results, ctx.Err()
}
