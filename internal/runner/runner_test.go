package runner

import (
	"context"
	"errors"
	"testing"

	"tireplay/internal/core"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/scenario"
	"tireplay/internal/trace"
)

func flatSpec(hosts int) *platform.Spec {
	return &platform.Spec{
		Name: "test", Topology: "flat", Hosts: hosts, Speed: 1e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

// sweep builds the acceptance-criteria batch: {LU, CG} x {A, B} x {8, 16}
// ranks = 8 scenarios, alternating backends.
func sweep(t *testing.T) []*scenario.Scenario {
	t.Helper()
	var out []*scenario.Scenario
	for _, bench := range []string{"lu", "cg"} {
		for _, class := range []string{"A", "B"} {
			for _, procs := range []int{8, 16} {
				out = append(out, &scenario.Scenario{
					Name:     bench + "-" + class,
					Platform: flatSpec(procs),
					Workload: &scenario.WorkloadSpec{
						Benchmark: bench, Class: class, Procs: procs, Iterations: 3,
					},
				})
			}
		}
	}
	if len(out) < 8 {
		t.Fatalf("sweep has %d scenarios, want >= 8", len(out))
	}
	return out
}

// TestParallelMatchesSequentialReplay checks the batch runner with 4
// workers produces the same SimulatedTime per scenario as direct sequential
// core.Replay calls.
func TestParallelMatchesSequentialReplay(t *testing.T) {
	scenarios := sweep(t)

	// Sequential reference, straight through the low-level API.
	want := make([]float64, len(scenarios))
	for i, s := range scenarios {
		w, err := s.Workload.Build()
		if err != nil {
			t.Fatal(err)
		}
		plat, _, err := s.Platform.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Replay(npb.AsProvider(w), plat, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.SimulatedTime
	}

	results, err := Run(context.Background(), scenarios, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("scenario %d (%s): %v", i, scenarios[i].Name, r.Err)
		}
		if r.Index != i || r.Scenario != scenarios[i] {
			t.Fatalf("result %d misordered: index %d", i, r.Index)
		}
		if r.Replay.SimulatedTime != want[i] {
			t.Fatalf("scenario %d (%s): parallel SimulatedTime %v != sequential %v",
				i, scenarios[i].Name, r.Replay.SimulatedTime, want[i])
		}
	}
}

// TestRunDeterministicAcrossWorkerCounts re-runs the same batch at several
// pool sizes; per-scenario results must be identical.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	scenarios := sweep(t)
	base, err := Run(context.Background(), scenarios, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		results, err := Run(context.Background(), scenarios, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range results {
			if results[i].Err != nil {
				t.Fatalf("workers=%d scenario %d: %v", workers, i, results[i].Err)
			}
			if results[i].Replay.SimulatedTime != base[i].Replay.SimulatedTime {
				t.Fatalf("workers=%d scenario %d: SimulatedTime %v != %v",
					workers, i, results[i].Replay.SimulatedTime, base[i].Replay.SimulatedTime)
			}
			if results[i].Replay.Actions != base[i].Replay.Actions {
				t.Fatalf("workers=%d scenario %d: Actions %d != %d",
					workers, i, results[i].Replay.Actions, base[i].Replay.Actions)
			}
		}
	}
}

// TestErrorIsolation checks a failing scenario doesn't abort the others.
func TestErrorIsolation(t *testing.T) {
	good := func() *scenario.Scenario {
		return &scenario.Scenario{
			Platform: flatSpec(4),
			Workload: &scenario.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 4, Iterations: 2},
		}
	}
	// Malformed trace: a wait with no outstanding request.
	bad := &scenario.Scenario{
		Platform: flatSpec(1),
		Provider: trace.NewMemProvider([][]trace.Action{
			{{Rank: 0, Kind: trace.Wait, Peer: -1}},
		}),
	}
	scenarios := []*scenario.Scenario{good(), bad, good()}
	results, err := Run(context.Background(), scenarios, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good scenarios failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("malformed scenario did not fail")
	}
	if !errors.Is(results[1].Err, core.ErrNoOutstandingRequest) {
		t.Fatalf("error %v does not wrap ErrNoOutstandingRequest", results[1].Err)
	}
	var te *core.TraceError
	if !errors.As(results[1].Err, &te) {
		t.Fatalf("error %v is not a *TraceError", results[1].Err)
	}
}

// TestCancellationMidBatch cancels after the first completion; later
// scenarios must be skipped with the context error and Run must report it.
func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var scenarios []*scenario.Scenario
	for i := 0; i < 12; i++ {
		scenarios = append(scenarios, &scenario.Scenario{
			Platform: flatSpec(4),
			Workload: &scenario.WorkloadSpec{Benchmark: "cg", Class: "S", Procs: 4, Iterations: 2},
		})
	}

	finished := 0
	results, err := Run(ctx, scenarios, WithWorkers(1), WithObserver(func(ev Event) {
		if ev.Kind == Finished {
			finished++
			if finished == 1 {
				cancel()
			}
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	ran, skipped := 0, 0
	for _, r := range results {
		switch {
		case r.Err == nil && r.Replay != nil:
			ran++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("scenario %d: unexpected state (replay=%v err=%v)", r.Index, r.Replay, r.Err)
		}
	}
	if ran == 0 {
		t.Fatal("no scenario completed before cancellation")
	}
	if skipped == 0 {
		t.Fatal("no scenario was skipped after cancellation")
	}
	if ran+skipped != len(scenarios) {
		t.Fatalf("ran %d + skipped %d != %d", ran, skipped, len(scenarios))
	}
}

// TestStreamDeliversAllResults checks the streaming core yields exactly
// one terminal result per scenario, in completion order, covering every
// index.
func TestStreamDeliversAllResults(t *testing.T) {
	scenarios := sweep(t)
	seen := make(map[int]int)
	for r := range Stream(context.Background(), scenarios, WithWorkers(4)) {
		seen[r.Index]++
		if r.Err != nil {
			t.Fatalf("scenario %d: %v", r.Index, r.Err)
		}
		if r.Replay == nil || r.Replay.SimulatedTime <= 0 {
			t.Fatalf("scenario %d: degenerate replay %+v", r.Index, r.Replay)
		}
	}
	if len(seen) != len(scenarios) {
		t.Fatalf("stream yielded %d distinct indexes, want %d", len(seen), len(scenarios))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d yielded %d times", i, n)
		}
	}
}

// TestStreamEarlyBreakStopsPool breaks out of the stream after the first
// result; the pool must shut down without leaking goroutines (the race
// detector plus -timeout guard the rest).
func TestStreamEarlyBreakStopsPool(t *testing.T) {
	scenarios := sweep(t)
	got := 0
	for range Stream(context.Background(), scenarios, WithWorkers(2)) {
		got++
		break
	}
	if got != 1 {
		t.Fatalf("consumed %d results, want 1", got)
	}
}

// TestCancellationReportingConsistent is the regression test for
// cancellation reporting: under cancellation at arbitrary points, every
// scenario must get exactly one terminal result, skipped results must
// carry the context's error, and the observer's Done counter must increase
// by exactly one per Finished event, reaching Total.
func TestCancellationReportingConsistent(t *testing.T) {
	mkBatch := func(n int) []*scenario.Scenario {
		var out []*scenario.Scenario
		for i := 0; i < n; i++ {
			out = append(out, &scenario.Scenario{
				Platform: flatSpec(2),
				Workload: &scenario.WorkloadSpec{Benchmark: "ep", Class: "S", Procs: 2},
			})
		}
		return out
	}
	const n = 16
	for round := 0; round < 8; round++ {
		cancelAfter := round % (n / 2) // vary the cancellation point
		ctx, cancel := context.WithCancel(context.Background())

		var (
			finishedPer = make([]int, n)
			lastDone    int
			finished    int
		)
		results, err := Run(ctx, mkBatch(n), WithWorkers(3), WithObserver(func(ev Event) {
			if ev.Kind != Finished {
				return
			}
			finished++
			if ev.Done != lastDone+1 {
				t.Errorf("round %d: Done jumped %d -> %d", round, lastDone, ev.Done)
			}
			if ev.Done > ev.Total {
				t.Errorf("round %d: Done %d > Total %d", round, ev.Done, ev.Total)
			}
			lastDone = ev.Done
			finishedPer[ev.Result.Index]++
			if finished == cancelAfter+1 {
				cancel()
			}
		}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: Run error = %v, want context.Canceled", round, err)
		}
		if lastDone != n {
			t.Fatalf("round %d: final Done %d, want %d", round, lastDone, n)
		}
		for i, c := range finishedPer {
			if c != 1 {
				t.Fatalf("round %d: scenario %d got %d Finished events", round, i, c)
			}
		}
		skipped := 0
		for _, r := range results {
			switch {
			case r.Err == nil && r.Replay != nil:
			case r.Replay == nil && errors.Is(r.Err, context.Canceled):
				skipped++
			default:
				t.Fatalf("round %d: scenario %d inconsistent (replay=%v err=%v)",
					round, r.Index, r.Replay, r.Err)
			}
		}
		if skipped == 0 {
			t.Fatalf("round %d: cancellation after %d completions skipped nothing", round, cancelAfter)
		}
	}
}

// TestObserverEvents checks started/finished pairing, progress counters,
// and that callbacks are serialized.
func TestObserverEvents(t *testing.T) {
	scenarios := sweep(t)
	// The runner serializes observer callbacks, so plain counters suffice;
	// `go test -race` would flag a violation of that guarantee.
	started, finished := 0, 0
	lastDone := 0
	results, err := Run(context.Background(), scenarios, WithWorkers(4),
		WithObserver(func(ev Event) {
			switch ev.Kind {
			case Started:
				started++
			case Finished:
				finished++
				if ev.Done <= lastDone || ev.Done > ev.Total {
					t.Errorf("done counter not increasing: %d after %d", ev.Done, lastDone)
				}
				lastDone = ev.Done
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if started != len(scenarios) || finished != len(scenarios) {
		t.Fatalf("started %d / finished %d, want %d each", started, finished, len(scenarios))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

// TestEmptyBatch returns immediately.
func TestEmptyBatch(t *testing.T) {
	results, err := Run(context.Background(), nil, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results for empty batch", len(results))
	}
}

// TestInvalidScenarioReported checks Validate failures land in the Result.
func TestInvalidScenarioReported(t *testing.T) {
	results, err := Run(context.Background(), []*scenario.Scenario{{}}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil {
		t.Fatal("empty scenario did not fail validation")
	}
}
