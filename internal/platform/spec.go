package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// Spec is a serializable platform description, the equivalent of the
// platform.xml file passed to smpirun in the paper. It covers the flat,
// hierarchical, and crossbar cluster shapes plus the structured topologies
// of the topology zoo (fat tree, dragonfly, torus), with optional
// piece-wise network factors.
type Spec struct {
	Name     string `json:"name"`
	Topology string `json:"topology"` // "flat", "hierarchical", "crossbar", "fattree", "dragonfly", or "torus"

	// Hosts is the node count for flat/crossbar shapes. For the structured
	// topologies the count is derived from the shape fields; Hosts may still
	// be set and is then cross-checked against the derived count.
	Hosts           int `json:"hosts,omitempty"`
	Cabinets        int `json:"cabinets,omitempty"`
	HostsPerCabinet int `json:"hosts_per_cabinet,omitempty"`

	// Fat tree ("fattree"): a k-ary n-tree with radix^levels hosts. The
	// switch cables take the backbone_* parameters.
	Radix  int `json:"radix,omitempty"`
	Levels int `json:"levels,omitempty"`

	// Dragonfly ("dragonfly"): groups*routers_per_group*hosts_per_router
	// hosts; routing is "minimal" (default), "valiant", or "adaptive".
	// Intra-group cables take local_*, inter-group cables global_*.
	Groups          int    `json:"groups,omitempty"`
	RoutersPerGroup int    `json:"routers_per_group,omitempty"`
	HostsPerRouter  int    `json:"hosts_per_router,omitempty"`
	Routing         string `json:"routing,omitempty"`

	// Torus ("torus"): 2 or 3 dimension radii, product = hosts. The
	// node-to-node ring cables take the backbone_* parameters.
	TorusDims []int `json:"torus_dims,omitempty"`

	Speed float64 `json:"speed"` // instructions per second

	LinkBandwidth     float64 `json:"link_bandwidth"`
	LinkLatency       float64 `json:"link_latency"`
	CabinetBandwidth  float64 `json:"cabinet_bandwidth,omitempty"`
	CabinetLatency    float64 `json:"cabinet_latency,omitempty"`
	BackboneBandwidth float64 `json:"backbone_bandwidth"`
	BackboneLatency   float64 `json:"backbone_latency"`
	LocalBandwidth    float64 `json:"local_bandwidth,omitempty"`
	LocalLatency      float64 `json:"local_latency,omitempty"`
	GlobalBandwidth   float64 `json:"global_bandwidth,omitempty"`
	GlobalLatency     float64 `json:"global_latency,omitempty"`
	LoopbackLatency   float64 `json:"loopback_latency,omitempty"`

	// Factors holds the optional piece-wise-linear segments; MaxBytes<=0 in
	// the last entry means "unbounded".
	Factors []SegmentSpec `json:"factors,omitempty"`
}

// SegmentSpec is the serializable form of a Segment.
type SegmentSpec struct {
	MaxBytes  float64 `json:"max_bytes"`
	LatFactor float64 `json:"lat_factor"`
	BwFactor  float64 `json:"bw_factor"`
}

// Build materializes the spec into a Platform and, when factors are present,
// a PiecewiseModel (nil otherwise).
func (s *Spec) Build() (*Platform, *PiecewiseModel, error) {
	var p *Platform
	var err error
	switch s.Topology {
	case "flat", "":
		p, err = NewFlatCluster(FlatConfig{
			Name:              s.Name,
			Hosts:             s.Hosts,
			Speed:             s.Speed,
			LinkBandwidth:     s.LinkBandwidth,
			LinkLatency:       s.LinkLatency,
			BackboneBandwidth: s.BackboneBandwidth,
			BackboneLatency:   s.BackboneLatency,
			LoopbackLatency:   s.LoopbackLatency,
		})
	case "crossbar":
		p, err = NewCrossbarCluster(CrossbarConfig{
			Name:            s.Name,
			Hosts:           s.Hosts,
			Speed:           s.Speed,
			LinkBandwidth:   s.LinkBandwidth,
			LinkLatency:     s.LinkLatency,
			LoopbackLatency: s.LoopbackLatency,
		})
	case "hierarchical":
		p, err = NewHierarchicalCluster(HierConfig{
			Name:              s.Name,
			Cabinets:          s.Cabinets,
			HostsPerCabinet:   s.HostsPerCabinet,
			Speed:             s.Speed,
			LinkBandwidth:     s.LinkBandwidth,
			LinkLatency:       s.LinkLatency,
			CabinetBandwidth:  s.CabinetBandwidth,
			CabinetLatency:    s.CabinetLatency,
			BackboneBandwidth: s.BackboneBandwidth,
			BackboneLatency:   s.BackboneLatency,
			LoopbackLatency:   s.LoopbackLatency,
		})
	case "fattree":
		p, err = NewFatTree(FatTreeConfig{
			Name:              s.Name,
			Radix:             s.Radix,
			Levels:            s.Levels,
			Speed:             s.Speed,
			LinkBandwidth:     s.LinkBandwidth,
			LinkLatency:       s.LinkLatency,
			BackboneBandwidth: s.BackboneBandwidth,
			BackboneLatency:   s.BackboneLatency,
			LoopbackLatency:   s.LoopbackLatency,
		})
	case "dragonfly":
		p, err = NewDragonfly(DragonflyConfig{
			Name:            s.Name,
			Groups:          s.Groups,
			RoutersPerGroup: s.RoutersPerGroup,
			HostsPerRouter:  s.HostsPerRouter,
			Routing:         s.Routing,
			Speed:           s.Speed,
			LinkBandwidth:   s.LinkBandwidth,
			LinkLatency:     s.LinkLatency,
			LocalBandwidth:  s.LocalBandwidth,
			LocalLatency:    s.LocalLatency,
			GlobalBandwidth: s.GlobalBandwidth,
			GlobalLatency:   s.GlobalLatency,
			LoopbackLatency: s.LoopbackLatency,
		})
	case "torus":
		p, err = NewTorus(TorusConfig{
			Name:              s.Name,
			Dims:              s.TorusDims,
			Speed:             s.Speed,
			LinkBandwidth:     s.LinkBandwidth,
			LinkLatency:       s.LinkLatency,
			BackboneBandwidth: s.BackboneBandwidth,
			BackboneLatency:   s.BackboneLatency,
			LoopbackLatency:   s.LoopbackLatency,
		})
	default:
		return nil, nil, fmt.Errorf("platform: unknown topology %q", s.Topology)
	}
	if err != nil {
		return nil, nil, err
	}
	// For the structured topologies the host count is derived from shape
	// fields; an explicit "hosts" must agree so rank-count mismatches
	// surface at build time instead of as routing panics mid-replay.
	switch s.Topology {
	case "fattree", "dragonfly", "torus":
		if s.Hosts != 0 && s.Hosts != p.Size() {
			return nil, nil, fmt.Errorf(`platform: %s: "hosts" = %d but the %s shape yields %d hosts`,
				s.Name, s.Hosts, s.Topology, p.Size())
		}
	}
	var model *PiecewiseModel
	if len(s.Factors) > 0 {
		segs := make([]Segment, len(s.Factors))
		for i, f := range s.Factors {
			max := f.MaxBytes
			if max <= 0 {
				max = math.MaxFloat64
			}
			segs[i] = Segment{MaxBytes: max, LatFactor: f.LatFactor, BwFactor: f.BwFactor}
		}
		model, err = NewPiecewiseModel(segs)
		if err != nil {
			return nil, nil, err
		}
	}
	return p, model, nil
}

// ReadSpec decodes a JSON Spec from r.
func ReadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("platform: decoding spec: %w", err)
	}
	return &s, nil
}

// LoadSpec reads a JSON Spec from a file.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpec(f)
}

// WriteSpec encodes s as indented JSON to w.
func WriteSpec(w io.Writer, s *Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
