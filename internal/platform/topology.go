package platform

import (
	"fmt"

	"tireplay/internal/sim"
	"tireplay/internal/topo"
)

// linkParams carries the bandwidth/latency pair a topology link class gets,
// plus the Spec JSON field its bandwidth comes from (for error messages).
type linkParams struct {
	bandwidth, latency float64
	bwField            string
}

// buildTopoPlatform materializes a topo.Topology into a Platform: one
// sim.Host per endpoint, one sim.Link per directional topology link (with
// parameters chosen by link class), and a routeFn adapting the topology's
// integer routes to sim.RouterInto. The int scratch buffer is reused across
// calls, which is safe because scenarios sharing one *Platform never run
// concurrently (documented on Spec.Build and the constructors).
func buildTopoPlatform(name string, t topo.Topology, speed float64, params map[topo.Class]linkParams, loopback float64) (*Platform, error) {
	descs := t.Links()
	for _, d := range descs {
		pr, ok := params[d.Class]
		if !ok || pr.bandwidth <= 0 {
			return nil, fmt.Errorf(`platform: %s: %q must be positive for %s links`, name, pr.bwField, d.Class)
		}
	}
	n := t.Hosts()
	p := &Platform{
		Name:            name,
		byName:          make(map[string]*sim.Host, n),
		LoopbackLatency: loopback,
	}
	index := make(map[*sim.Host]int, n)
	for i := 0; i < n; i++ {
		h := &sim.Host{Name: fmt.Sprintf("%s-%d", name, i), Speed: speed}
		p.hosts = append(p.hosts, h)
		p.byName[h.Name] = h
		index[h] = i
	}
	links := make([]*sim.Link, len(descs))
	for id, d := range descs {
		pr := params[d.Class]
		links[id] = &sim.Link{
			Name:      name + "-" + d.Name,
			Bandwidth: pr.bandwidth,
			Latency:   pr.latency,
		}
	}
	p.links = links
	scratch := make([]int, 0, 64)
	p.routeFn = func(buf []*sim.Link, src, dst *sim.Host) sim.Route {
		si, ok1 := index[src]
		di, ok2 := index[dst]
		if !ok1 || !ok2 {
			panic(fmt.Sprintf("platform %s: route between foreign hosts %s and %s", name, src, dst))
		}
		scratch = t.AppendRoute(scratch[:0], si, di)
		lat := 0.0
		for _, id := range scratch {
			l := links[id]
			buf = append(buf, l)
			lat += l.Latency
		}
		return sim.Route{Links: buf, Latency: lat}
	}
	return p, nil
}

// FatTreeConfig parameterizes a k-ary n-tree cluster (radix^levels hosts).
type FatTreeConfig struct {
	Name string
	// Radix is the switch arity k, Levels the tree depth n.
	Radix, Levels int
	// Speed is the per-host compute rate (instructions/s).
	Speed float64
	// LinkBandwidth/LinkLatency describe each node's NIC links.
	LinkBandwidth float64
	LinkLatency   float64
	// BackboneBandwidth/BackboneLatency describe the switch-to-switch cables.
	BackboneBandwidth float64
	BackboneLatency   float64
	// LoopbackLatency for intra-node transfers.
	LoopbackLatency float64
}

// NewFatTree builds a k-ary n-tree cluster with deterministic
// destination-based up*/down* routing (see topo.FatTree). Scenarios sharing
// the returned *Platform must not run concurrently.
func NewFatTree(cfg FatTreeConfig) (*Platform, error) {
	t, err := topo.NewFatTree(cfg.Radix, cfg.Levels)
	if err != nil {
		return nil, err
	}
	return buildTopoPlatform(cfg.Name, t, cfg.Speed, map[topo.Class]linkParams{
		topo.ClassHost:   {cfg.LinkBandwidth, cfg.LinkLatency, "link_bandwidth"},
		topo.ClassFabric: {cfg.BackboneBandwidth, cfg.BackboneLatency, "backbone_bandwidth"},
	}, cfg.LoopbackLatency)
}

// DragonflyConfig parameterizes a dragonfly cluster
// (groups*routers_per_group*hosts_per_router hosts).
type DragonflyConfig struct {
	Name string
	// Groups of RoutersPerGroup fully connected routers, each with
	// HostsPerRouter endpoints.
	Groups, RoutersPerGroup, HostsPerRouter int
	// Routing is "minimal" (default), "valiant", or "adaptive".
	Routing string
	// Speed is the per-host compute rate (instructions/s).
	Speed float64
	// LinkBandwidth/LinkLatency describe each node's NIC links.
	LinkBandwidth float64
	LinkLatency   float64
	// LocalBandwidth/LocalLatency describe intra-group router cables.
	LocalBandwidth float64
	LocalLatency   float64
	// GlobalBandwidth/GlobalLatency describe the inter-group cables.
	GlobalBandwidth float64
	GlobalLatency   float64
	// LoopbackLatency for intra-node transfers.
	LoopbackLatency float64
}

// NewDragonfly builds a dragonfly cluster with deterministic per-flow path
// selection (see topo.Dragonfly). Scenarios sharing the returned *Platform
// must not run concurrently.
func NewDragonfly(cfg DragonflyConfig) (*Platform, error) {
	routing, err := topo.ParseRouting(cfg.Routing)
	if err != nil {
		return nil, err
	}
	t, err := topo.NewDragonfly(cfg.Groups, cfg.RoutersPerGroup, cfg.HostsPerRouter, routing)
	if err != nil {
		return nil, err
	}
	return buildTopoPlatform(cfg.Name, t, cfg.Speed, map[topo.Class]linkParams{
		topo.ClassHost:   {cfg.LinkBandwidth, cfg.LinkLatency, "link_bandwidth"},
		topo.ClassLocal:  {cfg.LocalBandwidth, cfg.LocalLatency, "local_bandwidth"},
		topo.ClassGlobal: {cfg.GlobalBandwidth, cfg.GlobalLatency, "global_bandwidth"},
	}, cfg.LoopbackLatency)
}

// TorusConfig parameterizes a 2D/3D torus cluster (product of Dims hosts).
type TorusConfig struct {
	Name string
	// Dims lists 2 or 3 dimension radii, each at least 2.
	Dims []int
	// Speed is the per-host compute rate (instructions/s).
	Speed float64
	// LinkBandwidth/LinkLatency describe each node's injection/ejection links.
	LinkBandwidth float64
	LinkLatency   float64
	// BackboneBandwidth/BackboneLatency describe the node-to-node ring cables.
	BackboneBandwidth float64
	BackboneLatency   float64
	// LoopbackLatency for intra-node transfers.
	LoopbackLatency float64
}

// NewTorus builds a torus cluster with dimension-order routing (see
// topo.Torus). Scenarios sharing the returned *Platform must not run
// concurrently.
func NewTorus(cfg TorusConfig) (*Platform, error) {
	t, err := topo.NewTorus(cfg.Dims)
	if err != nil {
		return nil, err
	}
	return buildTopoPlatform(cfg.Name, t, cfg.Speed, map[topo.Class]linkParams{
		topo.ClassHost:   {cfg.LinkBandwidth, cfg.LinkLatency, "link_bandwidth"},
		topo.ClassFabric: {cfg.BackboneBandwidth, cfg.BackboneLatency, "backbone_bandwidth"},
	}, cfg.LoopbackLatency)
}
