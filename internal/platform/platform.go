// Package platform describes simulated execution platforms: hosts, links,
// and routing between them. It provides builders for the cluster shapes
// used in the paper — a flat cluster where all nodes hang off a single
// switch (bordereau) and a hierarchical cluster with per-cabinet switches
// joined by a backbone (graphene) — plus a full-bisection crossbar, the
// structured topology zoo (k-ary fat trees, dragonflies, and 2D/3D tori
// materialized from internal/topo with real deterministic routing), and
// the piece-wise-linear network factor model the SMPI backend relies on.
package platform

import (
	"fmt"
	"sort"

	"tireplay/internal/sim"
)

// Platform is a set of hosts with a routing function. It implements
// sim.Router.
type Platform struct {
	// Name of the platform (e.g. "bordereau").
	Name string

	hosts   []*sim.Host
	byName  map[string]*sim.Host
	links   []*sim.Link
	routeFn func(buf []*sim.Link, src, dst *sim.Host) sim.Route

	// LoopbackLatency is the latency of a host talking to itself (intra-node
	// communication); such routes cross no link.
	LoopbackLatency float64
}

// Hosts returns the platform's hosts in rank order.
func (p *Platform) Hosts() []*sim.Host { return p.hosts }

// Host returns the i-th host. It panics if i is out of range, as rank→host
// mapping errors are programming bugs.
func (p *Platform) Host(i int) *sim.Host { return p.hosts[i] }

// HostByName looks a host up by name.
func (p *Platform) HostByName(name string) (*sim.Host, bool) {
	h, ok := p.byName[name]
	return h, ok
}

// Links returns every link of the platform (for inspection and tests).
func (p *Platform) Links() []*sim.Link { return p.links }

// Size returns the number of hosts.
func (p *Platform) Size() int { return len(p.hosts) }

// Route implements sim.Router.
func (p *Platform) Route(src, dst *sim.Host) sim.Route {
	return p.RouteInto(nil, src, dst)
}

// RouteInto implements sim.RouterInto: the route's links are appended to
// buf, so the engine can reuse one buffer per transfer slot instead of
// allocating a slice on every routing call.
func (p *Platform) RouteInto(buf []*sim.Link, src, dst *sim.Host) sim.Route {
	if src == dst {
		return sim.Route{Links: buf, Latency: p.LoopbackLatency}
	}
	return p.routeFn(buf, src, dst)
}

// SetSpeed sets the compute rate of every host, in instructions per second.
// Calibration uses it to install measured rates before a replay.
func (p *Platform) SetSpeed(speed float64) {
	for _, h := range p.hosts {
		h.Speed = speed
	}
}

// FlatConfig parameterizes a single-switch cluster.
type FlatConfig struct {
	Name string
	// Hosts is the number of nodes.
	Hosts int
	// Speed is the per-host compute rate (instructions/s); may be
	// overwritten later by calibration.
	Speed float64
	// LinkBandwidth/LinkLatency describe each node's private link to the
	// switch.
	LinkBandwidth float64
	LinkLatency   float64
	// BackboneBandwidth/BackboneLatency describe the switch fabric crossed
	// by every inter-node transfer.
	BackboneBandwidth float64
	BackboneLatency   float64
	// LoopbackLatency for intra-node transfers.
	LoopbackLatency float64
}

// NewFlatCluster builds a bordereau-like cluster: every pair of distinct
// hosts communicates through its two private links and a shared backbone.
func NewFlatCluster(cfg FlatConfig) (*Platform, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("platform: flat cluster needs at least one host, got %d", cfg.Hosts)
	}
	if cfg.LinkBandwidth <= 0 || cfg.BackboneBandwidth <= 0 {
		return nil, fmt.Errorf("platform: non-positive bandwidth in flat cluster config")
	}
	p := &Platform{
		Name:            cfg.Name,
		byName:          make(map[string]*sim.Host, cfg.Hosts),
		LoopbackLatency: cfg.LoopbackLatency,
	}
	backbone := &sim.Link{
		Name:      cfg.Name + "-backbone",
		Bandwidth: cfg.BackboneBandwidth,
		Latency:   cfg.BackboneLatency,
	}
	p.links = append(p.links, backbone)
	private := make(map[*sim.Host]*sim.Link, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		h := &sim.Host{Name: fmt.Sprintf("%s-%d", cfg.Name, i), Speed: cfg.Speed}
		l := &sim.Link{
			Name:      fmt.Sprintf("%s-%d-up", cfg.Name, i),
			Bandwidth: cfg.LinkBandwidth,
			Latency:   cfg.LinkLatency,
		}
		p.hosts = append(p.hosts, h)
		p.byName[h.Name] = h
		p.links = append(p.links, l)
		private[h] = l
	}
	p.routeFn = func(buf []*sim.Link, src, dst *sim.Host) sim.Route {
		ls, ok1 := private[src]
		ld, ok2 := private[dst]
		if !ok1 || !ok2 {
			panic(fmt.Sprintf("platform %s: route between foreign hosts %s and %s", cfg.Name, src, dst))
		}
		return sim.Route{
			Links:   append(buf, ls, backbone, ld),
			Latency: ls.Latency + backbone.Latency + ld.Latency,
		}
	}
	return p, nil
}

// CrossbarConfig parameterizes a full-bisection cluster.
type CrossbarConfig struct {
	Name string
	// Hosts is the number of nodes.
	Hosts int
	// Speed is the per-host compute rate (instructions/s).
	Speed float64
	// LinkBandwidth/LinkLatency describe each node's uplink into and
	// downlink out of the switching fabric.
	LinkBandwidth float64
	LinkLatency   float64
	// LoopbackLatency for intra-node transfers.
	LoopbackLatency float64
}

// NewCrossbarCluster builds a full-bisection (non-blocking crossbar)
// cluster: each node owns a dedicated uplink and downlink, and the fabric
// itself never contends, so a transfer crosses exactly the sender's uplink
// and the receiver's downlink. Disjoint transfers thus share no link at
// all — the topology of modern fat-tree clusters at full bisection, and the
// shape under which the kernel's per-component incremental solver pays off
// most.
func NewCrossbarCluster(cfg CrossbarConfig) (*Platform, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("platform: crossbar cluster needs at least one host, got %d", cfg.Hosts)
	}
	if cfg.LinkBandwidth <= 0 {
		return nil, fmt.Errorf("platform: non-positive bandwidth in crossbar cluster config")
	}
	p := &Platform{
		Name:            cfg.Name,
		byName:          make(map[string]*sim.Host, cfg.Hosts),
		LoopbackLatency: cfg.LoopbackLatency,
	}
	type ports struct{ up, down *sim.Link }
	links := make(map[*sim.Host]ports, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		h := &sim.Host{Name: fmt.Sprintf("%s-%d", cfg.Name, i), Speed: cfg.Speed}
		up := &sim.Link{
			Name:      fmt.Sprintf("%s-%d-up", cfg.Name, i),
			Bandwidth: cfg.LinkBandwidth,
			Latency:   cfg.LinkLatency,
		}
		down := &sim.Link{
			Name:      fmt.Sprintf("%s-%d-down", cfg.Name, i),
			Bandwidth: cfg.LinkBandwidth,
			Latency:   cfg.LinkLatency,
		}
		p.hosts = append(p.hosts, h)
		p.byName[h.Name] = h
		p.links = append(p.links, up, down)
		links[h] = ports{up, down}
	}
	p.routeFn = func(buf []*sim.Link, src, dst *sim.Host) sim.Route {
		ls, ok1 := links[src]
		ld, ok2 := links[dst]
		if !ok1 || !ok2 {
			panic(fmt.Sprintf("platform %s: route between foreign hosts %s and %s", cfg.Name, src, dst))
		}
		return sim.Route{
			Links:   append(buf, ls.up, ld.down),
			Latency: ls.up.Latency + ld.down.Latency,
		}
	}
	return p, nil
}

// HierConfig parameterizes a cabinet-based hierarchical cluster.
type HierConfig struct {
	Name string
	// Cabinets is the number of cabinets; HostsPerCabinet nodes sit in each.
	Cabinets        int
	HostsPerCabinet int
	Speed           float64
	// Node private links.
	LinkBandwidth float64
	LinkLatency   float64
	// Cabinet switch crossed by all intra-cabinet traffic.
	CabinetBandwidth float64
	CabinetLatency   float64
	// Backbone joining the cabinet switches.
	BackboneBandwidth float64
	BackboneLatency   float64
	LoopbackLatency   float64
}

// NewHierarchicalCluster builds a graphene-like cluster: nodes are scattered
// across cabinets interconnected by a hierarchy of switches. Intra-cabinet
// routes cross the two private links and the cabinet switch; inter-cabinet
// routes additionally cross both cabinet uplinks and the backbone.
func NewHierarchicalCluster(cfg HierConfig) (*Platform, error) {
	if cfg.Cabinets <= 0 || cfg.HostsPerCabinet <= 0 {
		return nil, fmt.Errorf("platform: hierarchical cluster needs positive cabinet/host counts")
	}
	if cfg.LinkBandwidth <= 0 || cfg.CabinetBandwidth <= 0 || cfg.BackboneBandwidth <= 0 {
		return nil, fmt.Errorf("platform: non-positive bandwidth in hierarchical cluster config")
	}
	p := &Platform{
		Name:            cfg.Name,
		byName:          make(map[string]*sim.Host),
		LoopbackLatency: cfg.LoopbackLatency,
	}
	backbone := &sim.Link{
		Name:      cfg.Name + "-backbone",
		Bandwidth: cfg.BackboneBandwidth,
		Latency:   cfg.BackboneLatency,
	}
	p.links = append(p.links, backbone)
	type nodeInfo struct {
		private *sim.Link
		cabinet int
	}
	cabSwitch := make([]*sim.Link, cfg.Cabinets)
	cabUp := make([]*sim.Link, cfg.Cabinets)
	for c := 0; c < cfg.Cabinets; c++ {
		cabSwitch[c] = &sim.Link{
			Name:      fmt.Sprintf("%s-cab%d-switch", cfg.Name, c),
			Bandwidth: cfg.CabinetBandwidth,
			Latency:   cfg.CabinetLatency,
		}
		cabUp[c] = &sim.Link{
			Name:      fmt.Sprintf("%s-cab%d-up", cfg.Name, c),
			Bandwidth: cfg.CabinetBandwidth,
			Latency:   cfg.CabinetLatency,
		}
		p.links = append(p.links, cabSwitch[c], cabUp[c])
	}
	nodes := make(map[*sim.Host]nodeInfo)
	for c := 0; c < cfg.Cabinets; c++ {
		for i := 0; i < cfg.HostsPerCabinet; i++ {
			id := c*cfg.HostsPerCabinet + i
			h := &sim.Host{Name: fmt.Sprintf("%s-%d", cfg.Name, id), Speed: cfg.Speed}
			l := &sim.Link{
				Name:      fmt.Sprintf("%s-%d-up", cfg.Name, id),
				Bandwidth: cfg.LinkBandwidth,
				Latency:   cfg.LinkLatency,
			}
			p.hosts = append(p.hosts, h)
			p.byName[h.Name] = h
			p.links = append(p.links, l)
			nodes[h] = nodeInfo{private: l, cabinet: c}
		}
	}
	p.routeFn = func(buf []*sim.Link, src, dst *sim.Host) sim.Route {
		ns, ok1 := nodes[src]
		nd, ok2 := nodes[dst]
		if !ok1 || !ok2 {
			panic(fmt.Sprintf("platform %s: route between foreign hosts %s and %s", cfg.Name, src, dst))
		}
		if ns.cabinet == nd.cabinet {
			sw := cabSwitch[ns.cabinet]
			return sim.Route{
				Links:   append(buf, ns.private, sw, nd.private),
				Latency: ns.private.Latency + sw.Latency + nd.private.Latency,
			}
		}
		links := append(buf, ns.private, cabUp[ns.cabinet], backbone, cabUp[nd.cabinet], nd.private)
		lat := 0.0
		for _, l := range links {
			lat += l.Latency
		}
		return sim.Route{Links: links, Latency: lat}
	}
	return p, nil
}

// Segment is one piece of the piece-wise-linear network model: it applies to
// messages up to MaxBytes (inclusive) and scales the base latency and
// bandwidth of the route.
type Segment struct {
	// MaxBytes is the upper bound (inclusive) of the message-size range this
	// segment covers. The last segment should use +Inf (or math.MaxFloat64).
	MaxBytes float64
	// LatFactor multiplies the route latency.
	LatFactor float64
	// BwFactor multiplies the bottleneck bandwidth to produce the per-flow
	// rate cap.
	BwFactor float64
}

// PiecewiseModel is the SMPI-style network model of Section 3.3: correction
// factors that depend on the message size, accounting for protocol switches
// (eager/rendezvous) and TCP behaviour on the cluster interconnect.
type PiecewiseModel struct {
	segments []Segment
}

// NewPiecewiseModel builds a model from segments, which are sorted by
// MaxBytes. At least one segment is required and factors must be positive.
func NewPiecewiseModel(segments []Segment) (*PiecewiseModel, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("platform: piecewise model needs at least one segment")
	}
	segs := append([]Segment(nil), segments...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].MaxBytes < segs[j].MaxBytes })
	for _, s := range segs {
		if s.LatFactor <= 0 || s.BwFactor <= 0 {
			return nil, fmt.Errorf("platform: non-positive factor in segment %+v", s)
		}
	}
	return &PiecewiseModel{segments: segs}, nil
}

// factors returns the factors applying to a message of the given size.
func (m *PiecewiseModel) factors(size float64) Segment {
	for _, s := range m.segments {
		if size <= s.MaxBytes {
			return s
		}
	}
	return m.segments[len(m.segments)-1]
}

// Effective implements sim.NetworkModel: the latency is scaled by the
// segment's LatFactor and the flow is capped at BwFactor times the
// bottleneck bandwidth of the route.
func (m *PiecewiseModel) Effective(route sim.Route, size float64) (latency, rateCap float64) {
	s := m.factors(size)
	latency = route.Latency * s.LatFactor
	bottleneck := 0.0
	for i, l := range route.Links {
		if i == 0 || l.Bandwidth < bottleneck {
			bottleneck = l.Bandwidth
		}
	}
	if bottleneck > 0 {
		rateCap = bottleneck * s.BwFactor
	}
	return latency, rateCap
}

var _ sim.NetworkModel = (*PiecewiseModel)(nil)
var _ sim.Router = (*Platform)(nil)
var _ sim.RouterInto = (*Platform)(nil)
