package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tireplay/internal/sim"
)

func flat(t *testing.T, n int) *Platform {
	t.Helper()
	p, err := NewFlatCluster(FlatConfig{
		Name: "test", Hosts: n, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1.25e10, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFlatClusterShape(t *testing.T) {
	p := flat(t, 4)
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
	// 1 backbone + 4 private links.
	if len(p.Links()) != 5 {
		t.Fatalf("links = %d, want 5", len(p.Links()))
	}
	r := p.Route(p.Host(0), p.Host(3))
	if len(r.Links) != 3 {
		t.Fatalf("route links = %d, want 3 (up, backbone, down)", len(r.Links))
	}
	wantLat := 1e-5 + 1e-6 + 1e-5
	if math.Abs(r.Latency-wantLat) > 1e-15 {
		t.Fatalf("route latency = %v, want %v", r.Latency, wantLat)
	}
}

func TestFlatClusterLoopback(t *testing.T) {
	p := flat(t, 2)
	p.LoopbackLatency = 1e-7
	r := p.Route(p.Host(1), p.Host(1))
	if len(r.Links) != 0 || r.Latency != 1e-7 {
		t.Fatalf("loopback route = %+v", r)
	}
}

func TestFlatClusterRejectsBadConfig(t *testing.T) {
	if _, err := NewFlatCluster(FlatConfig{Hosts: 0}); err == nil {
		t.Error("expected error for zero hosts")
	}
	if _, err := NewFlatCluster(FlatConfig{Hosts: 2, LinkBandwidth: 0, BackboneBandwidth: 1}); err == nil {
		t.Error("expected error for zero link bandwidth")
	}
}

func TestHostByName(t *testing.T) {
	p := flat(t, 3)
	h, ok := p.HostByName("test-2")
	if !ok || h != p.Host(2) {
		t.Fatalf("HostByName = %v,%v", h, ok)
	}
	if _, ok := p.HostByName("nope"); ok {
		t.Fatal("found nonexistent host")
	}
}

func TestSetSpeed(t *testing.T) {
	p := flat(t, 3)
	p.SetSpeed(42)
	for _, h := range p.Hosts() {
		if h.Speed != 42 {
			t.Fatalf("host %s speed = %v", h.Name, h.Speed)
		}
	}
}

func hier(t *testing.T) *Platform {
	t.Helper()
	p, err := NewHierarchicalCluster(HierConfig{
		Name: "g", Cabinets: 4, HostsPerCabinet: 36, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-5,
		CabinetBandwidth: 1.25e10, CabinetLatency: 2e-6,
		BackboneBandwidth: 2.5e10, BackboneLatency: 3e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHierarchicalClusterShape(t *testing.T) {
	p := hier(t)
	if p.Size() != 144 {
		t.Fatalf("size = %d, want 144", p.Size())
	}
	// Intra-cabinet: hosts 0 and 1 are both in cabinet 0.
	r := p.Route(p.Host(0), p.Host(1))
	if len(r.Links) != 3 {
		t.Fatalf("intra-cabinet route links = %d, want 3", len(r.Links))
	}
	// Inter-cabinet: hosts 0 (cab 0) and 40 (cab 1).
	r = p.Route(p.Host(0), p.Host(40))
	if len(r.Links) != 5 {
		t.Fatalf("inter-cabinet route links = %d, want 5", len(r.Links))
	}
	wantLat := 1e-5 + 2e-6 + 3e-6 + 2e-6 + 1e-5
	if math.Abs(r.Latency-wantLat) > 1e-15 {
		t.Fatalf("inter-cabinet latency = %v, want %v", r.Latency, wantLat)
	}
}

func TestHierarchicalRejectsBadConfig(t *testing.T) {
	if _, err := NewHierarchicalCluster(HierConfig{Cabinets: 0, HostsPerCabinet: 1}); err == nil {
		t.Error("expected error for zero cabinets")
	}
}

func TestRouteSymmetryProperty(t *testing.T) {
	p := hier(t)
	f := func(a, b uint8) bool {
		i, j := int(a)%p.Size(), int(b)%p.Size()
		ri := p.Route(p.Host(i), p.Host(j))
		rj := p.Route(p.Host(j), p.Host(i))
		// Latency symmetric and same link count.
		return ri.Latency == rj.Latency && len(ri.Links) == len(rj.Links)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPiecewiseModelSelection(t *testing.T) {
	m, err := NewPiecewiseModel([]Segment{
		{MaxBytes: 1024, LatFactor: 2, BwFactor: 0.5},
		{MaxBytes: 65536, LatFactor: 1.5, BwFactor: 0.9},
		{MaxBytes: math.MaxFloat64, LatFactor: 1, BwFactor: 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	route := sim.Route{
		Links:   []*sim.Link{{Bandwidth: 100}, {Bandwidth: 50}},
		Latency: 1e-3,
	}
	lat, cap := m.Effective(route, 100)
	if lat != 2e-3 || cap != 25 {
		t.Fatalf("small msg: lat=%v cap=%v, want 2e-3, 25", lat, cap)
	}
	lat, cap = m.Effective(route, 65536)
	if lat != 1.5e-3 || cap != 45 {
		t.Fatalf("medium msg: lat=%v cap=%v, want 1.5e-3, 45", lat, cap)
	}
	lat, cap = m.Effective(route, 1e9)
	if lat != 1e-3 || cap != 48.5 {
		t.Fatalf("large msg: lat=%v cap=%v, want 1e-3, 48.5", lat, cap)
	}
}

func TestPiecewiseModelSortsSegments(t *testing.T) {
	m, err := NewPiecewiseModel([]Segment{
		{MaxBytes: math.MaxFloat64, LatFactor: 1, BwFactor: 1},
		{MaxBytes: 10, LatFactor: 3, BwFactor: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.factors(5)
	if s.LatFactor != 3 {
		t.Fatalf("factors(5) = %+v, want the small segment", s)
	}
}

func TestPiecewiseModelValidation(t *testing.T) {
	if _, err := NewPiecewiseModel(nil); err == nil {
		t.Error("expected error for empty segments")
	}
	if _, err := NewPiecewiseModel([]Segment{{MaxBytes: 1, LatFactor: 0, BwFactor: 1}}); err == nil {
		t.Error("expected error for zero factor")
	}
}

// Property: factor lookup is piecewise-constant and never panics across a
// wide size range, and latency scaling is monotone in route latency.
func TestPiecewiseFactorsTotalProperty(t *testing.T) {
	m, err := NewPiecewiseModel([]Segment{
		{MaxBytes: 64, LatFactor: 3, BwFactor: 0.3},
		{MaxBytes: 65536, LatFactor: 1.8, BwFactor: 0.8},
		{MaxBytes: math.MaxFloat64, LatFactor: 1, BwFactor: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(sz uint32) bool {
		s := m.factors(float64(sz))
		return s.LatFactor >= 1 && s.LatFactor <= 3 && s.BwFactor > 0 && s.BwFactor <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := &Spec{
		Name: "bb", Topology: "flat", Hosts: 8, Speed: 2e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1.25e10, BackboneLatency: 1e-6,
		Factors: []SegmentSpec{{MaxBytes: 65536, LatFactor: 1.5, BwFactor: 0.9}, {MaxBytes: 0, LatFactor: 1, BwFactor: 0.97}},
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "bb" || got.Hosts != 8 || len(got.Factors) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	p, model, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 8 || model == nil {
		t.Fatalf("build: size=%d model=%v", p.Size(), model)
	}
}

func TestSpecBuildHierarchical(t *testing.T) {
	spec := &Spec{
		Name: "g", Topology: "hierarchical", Cabinets: 2, HostsPerCabinet: 3,
		Speed: 1e9, LinkBandwidth: 1e9, LinkLatency: 1e-5,
		CabinetBandwidth: 1e10, CabinetLatency: 1e-6,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	}
	p, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 {
		t.Fatalf("size = %d, want 6", p.Size())
	}
}

func TestSpecUnknownTopology(t *testing.T) {
	spec := &Spec{Topology: "hypercube"}
	if _, _, err := spec.Build(); err == nil {
		t.Fatal("expected error for unknown topology")
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"name":"x","bogus":1}`))
	if err == nil {
		t.Fatal("expected error for unknown field")
	}
}

// End-to-end: platform used as router in the engine gives expected times.
func TestPlatformInEngine(t *testing.T) {
	p := flat(t, 2)
	e := sim.NewEngine(p)
	var end float64
	e.Spawn("s", p.Host(0), func(pr *sim.Proc) { pr.Put("mb", 1.25e6) })
	e.Spawn("r", p.Host(1), func(pr *sim.Proc) {
		pr.Get("mb")
		end = pr.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// latency 2.1e-5 + 1.25e6/1.25e9 = 2.1e-5 + 1e-3
	want := 2.1e-5 + 1e-3
	if math.Abs(end-want) > 1e-12 {
		t.Fatalf("end = %v, want %v", end, want)
	}
}

func TestCrossbarClusterShape(t *testing.T) {
	p, err := NewCrossbarCluster(CrossbarConfig{
		Name: "xbar", Hosts: 4, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatalf("size = %d, want 4", p.Size())
	}
	// One uplink and one downlink per host, no shared fabric link.
	if len(p.Links()) != 8 {
		t.Fatalf("links = %d, want 8", len(p.Links()))
	}
	r := p.Route(p.Host(0), p.Host(3))
	if len(r.Links) != 2 {
		t.Fatalf("route links = %d, want 2 (up, down)", len(r.Links))
	}
	if math.Abs(r.Latency-2e-5) > 1e-15 {
		t.Fatalf("route latency = %v, want 2e-5", r.Latency)
	}
	// Full bisection: routes of disjoint host pairs share no link.
	r2 := p.Route(p.Host(1), p.Host(2))
	for _, a := range r.Links {
		for _, b := range r2.Links {
			if a == b {
				t.Fatalf("disjoint pairs share link %s", a.Name)
			}
		}
	}
	// Same sender to two receivers shares exactly the uplink.
	r3 := p.Route(p.Host(0), p.Host(2))
	if r.Links[0] != r3.Links[0] {
		t.Fatal("same sender should reuse its uplink")
	}
	if r.Links[1] == r3.Links[1] {
		t.Fatal("different receivers must not share a downlink")
	}
}

func TestCrossbarClusterRejectsBadConfig(t *testing.T) {
	if _, err := NewCrossbarCluster(CrossbarConfig{Hosts: 0, LinkBandwidth: 1}); err == nil {
		t.Error("expected error for zero hosts")
	}
	if _, err := NewCrossbarCluster(CrossbarConfig{Hosts: 2}); err == nil {
		t.Error("expected error for zero link bandwidth")
	}
}

func TestSpecBuildCrossbar(t *testing.T) {
	s := &Spec{
		Name: "x", Topology: "crossbar", Hosts: 3, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-6,
	}
	p, model, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model != nil {
		t.Fatal("no factors requested, model should be nil")
	}
	if p.Size() != 3 || len(p.Links()) != 6 {
		t.Fatalf("crossbar spec built size=%d links=%d, want 3/6", p.Size(), len(p.Links()))
	}
}
