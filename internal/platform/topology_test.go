package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tireplay/internal/sim"
)

func fattree(t *testing.T, radix, levels int) *Platform {
	t.Helper()
	p, err := NewFatTree(FatTreeConfig{
		Name: "ft", Radix: radix, Levels: levels, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		BackboneBandwidth: 5e9, BackboneLatency: 2e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFatTreePlatformShape(t *testing.T) {
	p := fattree(t, 4, 2)
	if p.Size() != 16 {
		t.Fatalf("size = %d, want 16", p.Size())
	}
	// 2*hosts NIC links + 2*hosts*(levels-1) switch cables.
	if len(p.Links()) != 2*16*2 {
		t.Fatalf("links = %d, want %d", len(p.Links()), 2*16*2)
	}
	// Same tier-1 switch: NIC up + NIC down.
	r := p.Route(p.Host(0), p.Host(3))
	if len(r.Links) != 2 {
		t.Fatalf("intra-switch route links = %d, want 2", len(r.Links))
	}
	if math.Abs(r.Latency-2e-6) > 1e-18 {
		t.Fatalf("intra-switch latency = %v, want 2e-6", r.Latency)
	}
	// Different tier-1 switch: NIC, up cable, down cable, NIC.
	r = p.Route(p.Host(0), p.Host(5))
	if len(r.Links) != 4 {
		t.Fatalf("cross-switch route links = %d, want 4", len(r.Links))
	}
	if math.Abs(r.Latency-(2e-6+4e-6)) > 1e-18 {
		t.Fatalf("cross-switch latency = %v, want 6e-6", r.Latency)
	}
}

func TestDragonflyPlatformShape(t *testing.T) {
	p, err := NewDragonfly(DragonflyConfig{
		Name: "df", Groups: 3, RoutersPerGroup: 2, HostsPerRouter: 2,
		Routing: "minimal", Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		LocalBandwidth: 5e9, LocalLatency: 2e-6,
		GlobalBandwidth: 1e10, GlobalLatency: 1e-5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 12 {
		t.Fatalf("size = %d, want 12", p.Size())
	}
	// 2*12 NIC + 3*2*1 local + 3*2 global directional links.
	if len(p.Links()) != 24+6+6 {
		t.Fatalf("links = %d, want 36", len(p.Links()))
	}
	// Same router: NICs only.
	if r := p.Route(p.Host(0), p.Host(1)); len(r.Links) != 2 {
		t.Fatalf("same-router route links = %d, want 2", len(r.Links))
	}
	// Same group, different router: one local cable between NICs.
	r := p.Route(p.Host(0), p.Host(2))
	if len(r.Links) != 3 {
		t.Fatalf("intra-group route links = %d, want 3", len(r.Links))
	}
	if math.Abs(r.Latency-(2e-6+2e-6)) > 1e-18 {
		t.Fatalf("intra-group latency = %v, want 4e-6", r.Latency)
	}
	// Inter-group minimal: at most 5 links including one global cable.
	r = p.Route(p.Host(0), p.Host(11))
	if len(r.Links) > 5 {
		t.Fatalf("inter-group route links = %d, want <= 5", len(r.Links))
	}
	globals := 0
	for _, l := range r.Links {
		if strings.Contains(l.Name, "-g") && !strings.Contains(l.Name, "-r") && !strings.Contains(l.Name, "h") {
			globals++
		}
	}
	if globals != 1 {
		t.Fatalf("inter-group minimal route crosses %d global cables, want 1", globals)
	}
}

func TestTorusPlatformShape(t *testing.T) {
	p, err := NewTorus(TorusConfig{
		Name: "tor", Dims: []int{4, 4}, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		BackboneBandwidth: 5e9, BackboneLatency: 2e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 16 {
		t.Fatalf("size = %d, want 16", p.Size())
	}
	// 2*16 NIC + 16*2*2 neighbor links.
	if len(p.Links()) != 32+64 {
		t.Fatalf("links = %d, want 96", len(p.Links()))
	}
	// Nodes 0=(0,0) and 5=(1,1): two network hops.
	r := p.Route(p.Host(0), p.Host(5))
	if len(r.Links) != 4 {
		t.Fatalf("diagonal route links = %d, want 4", len(r.Links))
	}
	// Wraparound: (0,0) -> (3,0) is one hop the negative way.
	r = p.Route(p.Host(0), p.Host(3))
	if len(r.Links) != 3 {
		t.Fatalf("wraparound route links = %d, want 3", len(r.Links))
	}
}

// TestTopologyRouteSymmetry extends the flat/hier symmetry property to the
// zoo: hop count and latency are symmetric under src/dst exchange.
func TestTopologyRouteSymmetry(t *testing.T) {
	platforms := []*Platform{fattree(t, 2, 3)}
	for _, routing := range []string{"minimal", "valiant", "adaptive"} {
		p, err := NewDragonfly(DragonflyConfig{
			Name: "df-" + routing, Groups: 4, RoutersPerGroup: 2, HostsPerRouter: 2,
			Routing: routing, Speed: 1e9,
			LinkBandwidth: 1e9, LinkLatency: 1e-6,
			LocalBandwidth: 1e9, LocalLatency: 2e-6,
			GlobalBandwidth: 1e9, GlobalLatency: 1e-5,
		})
		if err != nil {
			t.Fatal(err)
		}
		platforms = append(platforms, p)
	}
	tor, err := NewTorus(TorusConfig{
		Name: "tor", Dims: []int{3, 4}, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-6,
		BackboneBandwidth: 1e9, BackboneLatency: 2e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	platforms = append(platforms, tor)
	for _, p := range platforms {
		f := func(a, b uint8) bool {
			i, j := int(a)%p.Size(), int(b)%p.Size()
			ri := p.Route(p.Host(i), p.Host(j))
			rj := p.Route(p.Host(j), p.Host(i))
			// The reverse route crosses mirrored links in the opposite
			// order, so the latency sums may differ by rounding.
			return math.Abs(ri.Latency-rj.Latency) <= 1e-12*ri.Latency &&
				len(ri.Links) == len(rj.Links)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

// TestTopologyRouteIntoReuse pins the pooled-route contract the engine
// relies on: RouteInto appends into the caller's buffer without holding on
// to it, and consecutive calls reuse the internal scratch without
// corrupting earlier results.
func TestTopologyRouteIntoReuse(t *testing.T) {
	p := fattree(t, 2, 2)
	buf := make([]*sim.Link, 0, 16)
	r1 := p.RouteInto(buf, p.Host(0), p.Host(3))
	names1 := make([]string, len(r1.Links))
	for i, l := range r1.Links {
		names1[i] = l.Name
	}
	r2 := p.RouteInto(r1.Links[len(r1.Links):], p.Host(1), p.Host(2))
	for i, l := range r1.Links {
		if l.Name != names1[i] {
			t.Fatalf("second RouteInto corrupted first route at %d: %s != %s", i, l.Name, names1[i])
		}
	}
	if len(r2.Links) == 0 {
		t.Fatal("second route empty")
	}
}

func TestSpecBuildFatTree(t *testing.T) {
	s := &Spec{
		Name: "ft", Topology: "fattree", Radix: 2, Levels: 3, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-6,
		BackboneBandwidth: 1e9, BackboneLatency: 1e-6,
	}
	p, model, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if model != nil {
		t.Fatal("no factors requested, model should be nil")
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d, want 8", p.Size())
	}
}

func TestSpecBuildDragonflyJSON(t *testing.T) {
	js := `{
		"name": "df", "topology": "dragonfly",
		"groups": 2, "routers_per_group": 2, "hosts_per_router": 2,
		"routing": "adaptive", "speed": 1e9,
		"link_bandwidth": 1.25e9, "link_latency": 1e-6,
		"local_bandwidth": 5e9, "local_latency": 2e-6,
		"global_bandwidth": 1e10, "global_latency": 1e-5
	}`
	s, err := ReadSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 8 {
		t.Fatalf("size = %d, want 8", p.Size())
	}
	// Round trip through WriteSpec preserves the shape fields.
	var buf bytes.Buffer
	if err := WriteSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups != 2 || got.RoutersPerGroup != 2 || got.HostsPerRouter != 2 || got.Routing != "adaptive" {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestSpecBuildTorusJSON(t *testing.T) {
	js := `{
		"name": "tor", "topology": "torus", "torus_dims": [4, 2, 2],
		"speed": 1e9,
		"link_bandwidth": 1.25e9, "link_latency": 1e-6,
		"backbone_bandwidth": 5e9, "backbone_latency": 2e-6
	}`
	s, err := ReadSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 16 {
		t.Fatalf("size = %d, want 16", p.Size())
	}
}

// TestSpecHostsCrossCheck: an explicit "hosts" that disagrees with the
// derived shape is a structured error naming the field, not a panic later.
func TestSpecHostsCrossCheck(t *testing.T) {
	s := &Spec{
		Name: "ft", Topology: "fattree", Radix: 2, Levels: 2, Hosts: 5,
		Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9,
	}
	_, _, err := s.Build()
	if err == nil {
		t.Fatal("expected hosts mismatch error")
	}
	if !strings.Contains(err.Error(), `"hosts"`) {
		t.Fatalf("error %q does not name the hosts field", err)
	}
	s.Hosts = 4
	if _, _, err := s.Build(); err != nil {
		t.Fatalf("matching hosts rejected: %v", err)
	}
	s.Hosts = 0
	if _, _, err := s.Build(); err != nil {
		t.Fatalf("omitted hosts rejected: %v", err)
	}
}

// TestSpecTopologyValidationFuzz throws randomized invalid shapes at every
// zoo topology and requires a structured error naming an offending field —
// never a panic, never silent acceptance.
func TestSpecTopologyValidationFuzz(t *testing.T) {
	build := func(s *Spec) (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Build panicked on %+v: %v", s, r)
			}
		}()
		_, _, err = s.Build()
		return err
	}
	f := func(rawRadix, rawLevels, rawGroups, rawRouters, rawHostsPer int8, rawD0, rawD1 uint8) bool {
		// Keep shapes small (a few negatives through one-digit positives) so
		// the valid draws build quickly while invalid ones still appear.
		radix, levels := int(rawRadix%8), int(rawLevels%6)
		groups, routers, hostsPer := int(rawGroups%8), int(rawRouters%8), int(rawHostsPer%8)
		d0, d1 := int(rawD0%8), int(rawD1%8)
		ft := &Spec{
			Name: "f", Topology: "fattree", Radix: radix, Levels: levels,
			Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9,
		}
		if err := build(ft); radix < 2 || levels < 1 {
			if err == nil {
				return false
			}
			if !strings.Contains(err.Error(), `"radix"`) && !strings.Contains(err.Error(), `"levels"`) {
				return false
			}
		}
		df := &Spec{
			Name: "d", Topology: "dragonfly",
			Groups: groups, RoutersPerGroup: routers, HostsPerRouter: hostsPer,
			Speed: 1e9, LinkBandwidth: 1e9, LocalBandwidth: 1e9, GlobalBandwidth: 1e9,
		}
		if err := build(df); groups < 1 || routers < 1 || hostsPer < 1 {
			if err == nil {
				return false
			}
			bad := strings.Contains(err.Error(), `"groups"`) ||
				strings.Contains(err.Error(), `"routers_per_group"`) ||
				strings.Contains(err.Error(), `"hosts_per_router"`)
			if !bad {
				return false
			}
		}
		tor := &Spec{
			Name: "t", Topology: "torus", TorusDims: []int{d0, d1},
			Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9,
		}
		if err := build(tor); d0 < 2 || d1 < 2 {
			if err == nil {
				return false
			}
			if !strings.Contains(err.Error(), `"torus_dims"`) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Degenerate shapes the int8 fuzz above can't produce.
	for _, s := range []*Spec{
		{Name: "t", Topology: "torus", Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9},
		{Name: "t", Topology: "torus", TorusDims: []int{4}, Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9},
		{Name: "t", Topology: "torus", TorusDims: []int{2, 2, 2, 2}, Speed: 1e9, LinkBandwidth: 1e9, BackboneBandwidth: 1e9},
		{Name: "d", Topology: "dragonfly", Groups: 2, RoutersPerGroup: 2, HostsPerRouter: 2, Routing: "bogus",
			Speed: 1e9, LinkBandwidth: 1e9, LocalBandwidth: 1e9, GlobalBandwidth: 1e9},
		{Name: "f", Topology: "fattree", Radix: 2, Levels: 2, Speed: 1e9, BackboneBandwidth: 1e9},
		{Name: "f", Topology: "fattree", Radix: 2, Levels: 2, Speed: 1e9, LinkBandwidth: 1e9},
	} {
		if err := build(s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

// End-to-end: a fat-tree platform drives the engine and two transfers that
// share no cable finish as fast as one alone (full bisection at radix 2).
func TestTopologyPlatformInEngine(t *testing.T) {
	p := fattree(t, 2, 2)
	e := sim.NewEngine(p)
	var end1, end2 float64
	e.Spawn("s1", p.Host(0), func(pr *sim.Proc) { pr.Put("a", 1.25e6) })
	e.Spawn("r1", p.Host(1), func(pr *sim.Proc) { pr.Get("a"); end1 = pr.Now() })
	e.Spawn("s2", p.Host(2), func(pr *sim.Proc) { pr.Put("b", 1.25e6) })
	e.Spawn("r2", p.Host(3), func(pr *sim.Proc) { pr.Get("b"); end2 = pr.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Each transfer crosses its own pair of NIC links only (same tier-1
	// switch): latency 2e-6, bandwidth 1.25e9 -> 1e-3 transfer time.
	want := 2e-6 + 1e-3
	if math.Abs(end1-want) > 1e-12 || math.Abs(end2-want) > 1e-12 {
		t.Fatalf("ends = %v, %v; want both %v", end1, end2, want)
	}
}
