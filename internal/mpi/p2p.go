package mpi

import (
	"fmt"

	"tireplay/internal/sim"
)

// Send sends bytes to rank dst with MPI_Send semantics under the configured
// model: below the eager threshold the call returns after the local costs
// only (the transfer is detached and proceeds on its own); at or above it,
// the call blocks until the transfer completes (rendezvous).
func (r *Rank) Send(dst int, bytes float64) {
	r.checkPeer(dst, "Send")
	cfg := r.world.cfg
	if cfg.SendOverhead > 0 {
		r.proc.Sleep(cfg.SendOverhead)
	}
	if bytes < cfg.eagerThreshold() {
		r.eagerCopy(bytes)
		r.proc.PutDetachedBox(r.world.p2pBox(r.rank, dst), bytes, nil)
		return
	}
	r.proc.PutBox(r.world.p2pBox(r.rank, dst), bytes)
}

// Isend is the nonblocking send. Eager messages complete immediately (the
// returned request is already done); rendezvous messages complete when the
// transfer does.
func (r *Rank) Isend(dst int, bytes float64) *Request {
	r.checkPeer(dst, "Isend")
	cfg := r.world.cfg
	if cfg.SendOverhead > 0 {
		r.proc.Sleep(cfg.SendOverhead)
	}
	if bytes < cfg.eagerThreshold() {
		r.eagerCopy(bytes)
		r.proc.PutDetachedBox(r.world.p2pBox(r.rank, dst), bytes, nil)
		return &Request{}
	}
	return &Request{comm: r.proc.PutAsyncBox(r.world.p2pBox(r.rank, dst), bytes)}
}

// Recv blocks until a message from src has fully arrived.
func (r *Rank) Recv(src int) {
	r.checkPeer(src, "Recv")
	cfg := r.world.cfg
	r.proc.GetBox(r.world.p2pBox(src, r.rank))
	if cfg.RecvOverhead > 0 {
		r.proc.Sleep(cfg.RecvOverhead)
	}
}

// Irecv posts a nonblocking receive from src.
func (r *Rank) Irecv(src int) *Request {
	r.checkPeer(src, "Irecv")
	return &Request{comm: r.proc.GetAsyncBox(r.world.p2pBox(src, r.rank))}
}

// Wait blocks until the request completes.
func (r *Rank) Wait(q *Request) {
	if q == nil {
		return // tolerate nil for replayed waits with no outstanding request
	}
	if q.comm != nil {
		r.proc.WaitComm(q.comm)
	}
}

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(qs []*Request) {
	for _, q := range qs {
		r.Wait(q)
	}
}

// WaitAny blocks until at least one request in qs completes and returns the
// index of the lowest-indexed completed one, as MPI_Waitany does (modulo
// MPI's unspecified choice among simultaneous completions — fixing lowest
// index keeps the replay deterministic). Nil requests and eager sends count
// as already complete.
func (r *Rank) WaitAny(qs []*Request) int {
	if len(qs) == 0 {
		panic(fmt.Sprintf("mpi: rank %d: WaitAny on empty request set", r.rank))
	}
	for i, q := range qs {
		if q == nil || q.comm == nil || q.comm.Done() {
			return i
		}
	}
	cs := make([]*sim.Comm, len(qs))
	for i, q := range qs {
		cs[i] = q.comm
	}
	return r.proc.WaitAnyComm(cs)
}

// Test reports whether the request has completed, without blocking.
func (r *Rank) Test(q *Request) bool {
	return q == nil || q.Done()
}

// SendRecv exchanges messages with two peers (possibly the same) without
// deadlocking, as MPI_Sendrecv does. It is the building block of the
// recursive-doubling and pairwise-exchange collectives.
func (r *Rank) SendRecv(dst int, sendBytes float64, src int) {
	req := r.Isend(dst, sendBytes)
	r.Recv(src)
	r.Wait(req)
}

// eagerCopy charges the sender-side memory copy of an eager send when the
// model includes it.
func (r *Rank) eagerCopy(bytes float64) {
	cfg := r.world.cfg
	if cfg.MemcpyBandwidth > 0 {
		r.proc.Sleep(cfg.MemcpyLatency + bytes/cfg.MemcpyBandwidth)
	}
}

func (r *Rank) checkPeer(peer int, op string) {
	if peer < 0 || peer >= r.world.Size() {
		panic(fmt.Sprintf("mpi: rank %d: %s peer %d outside communicator of size %d",
			r.rank, op, peer, r.world.Size()))
	}
	if peer == r.rank {
		panic(fmt.Sprintf("mpi: rank %d: %s to self is not supported by the replay model", r.rank, op))
	}
}

// sendColl/recvColl are the internal p2p operations used by collectives;
// they use the dedicated collective mailbox namespace so tree messages never
// interleave with application messages, and follow the same eager/rendezvous
// protocol rules. Together with sendRecvColl and putColl they form the
// collPrims primitive set the shared collective algorithms (coll.go) are
// written against; the continuation compiler (task.go) implements the same
// set by emitting the equivalent micro-ops, which is what guarantees both
// execution modes produce identical message schedules.
func (r *Rank) sendColl(dst int, bytes float64) {
	cfg := r.world.cfg
	if cfg.SendOverhead > 0 {
		r.proc.Sleep(cfg.SendOverhead)
	}
	if bytes < cfg.eagerThreshold() {
		r.eagerCopy(bytes)
		r.proc.PutDetachedBox(r.world.collBox(r.rank, dst), bytes, nil)
		return
	}
	r.proc.PutBox(r.world.collBox(r.rank, dst), bytes)
}

func (r *Rank) recvColl(src int) {
	cfg := r.world.cfg
	r.proc.GetBox(r.world.collBox(src, r.rank))
	if cfg.RecvOverhead > 0 {
		r.proc.Sleep(cfg.RecvOverhead)
	}
}

func (r *Rank) sendRecvColl(dst int, bytes float64, src int) {
	cfg := r.world.cfg
	if cfg.SendOverhead > 0 {
		r.proc.Sleep(cfg.SendOverhead)
	}
	var comm *sim.Comm
	if bytes < cfg.eagerThreshold() {
		r.eagerCopy(bytes)
		r.proc.PutDetachedBox(r.world.collBox(r.rank, dst), bytes, nil)
	} else {
		comm = r.proc.PutAsyncBox(r.world.collBox(r.rank, dst), bytes)
	}
	r.recvColl(src)
	if comm != nil {
		r.proc.WaitComm(comm)
	}
}

// putColl is a fully blocking send on the collective namespace, bypassing
// the eager/rendezvous protocol split: the chain broadcast's head uses it to
// pace segment injection.
func (r *Rank) putColl(dst int, bytes float64) {
	r.proc.PutBox(r.world.collBox(r.rank, dst), bytes)
}
