package mpi

import (
	"testing"
)

func runCollective(t *testing.T, n int, body func(r *Rank)) []float64 {
	t.Helper()
	w, e := testWorld(t, n, ModelConfig{})
	ends := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			body(r)
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return ends
}

func TestBcastAlgorithmsAllDeliver(t *testing.T) {
	for _, algo := range []BcastAlgo{BcastBinomial, BcastLinear, BcastChain} {
		for _, n := range []int{2, 5, 8} {
			ends := runCollective(t, n, func(r *Rank) { r.BcastWith(algo, 1<<20, 0) })
			for i := 1; i < n; i++ {
				if ends[i] <= 0 {
					t.Fatalf("algo %d, n=%d: rank %d never received", algo, n, i)
				}
			}
		}
	}
}

func TestBcastChainSegmentsOverlap(t *testing.T) {
	// For a long chain and a large message, the pipelined chain must beat
	// the linear algorithm (root serializes P-1 full transfers) because
	// segments overlap along the chain.
	const n, bytes = 8, 4 << 20
	chain := runCollective(t, n, func(r *Rank) { r.BcastWith(BcastChain, bytes, 0) })
	linear := runCollective(t, n, func(r *Rank) { r.BcastWith(BcastLinear, bytes, 0) })
	last := func(ends []float64) float64 {
		m := 0.0
		for _, e := range ends {
			if e > m {
				m = e
			}
		}
		return m
	}
	if last(chain) >= last(linear) {
		t.Fatalf("chain bcast (%.4f s) not faster than linear (%.4f s) for large messages",
			last(chain), last(linear))
	}
}

func TestBcastNonZeroRootAlgorithms(t *testing.T) {
	for _, algo := range []BcastAlgo{BcastLinear, BcastChain} {
		ends := runCollective(t, 6, func(r *Rank) { r.BcastWith(algo, 4096, 2) })
		for i, end := range ends {
			if i != 2 && end <= 0 {
				t.Fatalf("algo %d: rank %d never received from root 2", algo, i)
			}
		}
	}
}

func TestAllReduceAlgorithmsComplete(t *testing.T) {
	for _, algo := range []AllReduceAlgo{AllReduceRDB, AllReduceReduceBcast, AllReduceRing} {
		for _, n := range []int{2, 4, 6, 8} {
			ends := runCollective(t, n, func(r *Rank) { r.AllReduceWith(algo, 1<<18) })
			for i, end := range ends {
				if end <= 0 {
					t.Fatalf("algo %d, n=%d: rank %d did not finish", algo, n, i)
				}
			}
		}
	}
}

func TestAllReduceRingMovesLessPerStep(t *testing.T) {
	// For large payloads the ring (2(P-1) chunks of bytes/P) must beat
	// reduce+bcast (2 log2 P full-size hops) on bandwidth-dominated
	// networks.
	const n, bytes = 8, 8 << 20
	ring := runCollective(t, n, func(r *Rank) { r.AllReduceWith(AllReduceRing, bytes) })
	rb := runCollective(t, n, func(r *Rank) { r.AllReduceWith(AllReduceReduceBcast, bytes) })
	maxOf := func(ends []float64) float64 {
		m := 0.0
		for _, e := range ends {
			if e > m {
				m = e
			}
		}
		return m
	}
	if maxOf(ring) >= maxOf(rb) {
		t.Fatalf("ring allreduce (%.4f s) not faster than reduce+bcast (%.4f s) for large payloads",
			maxOf(ring), maxOf(rb))
	}
}

func TestSingleRankCollectiveAlgosFree(t *testing.T) {
	w, e := testWorld(t, 1, ModelConfig{})
	var end float64
	w.Spawn(0, func(r *Rank) {
		r.BcastWith(BcastChain, 100, 0)
		r.AllReduceWith(AllReduceRing, 100)
		end = r.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("single-rank collectives took %v", end)
	}
}

func TestModelConfigSelectsCollectiveAlgos(t *testing.T) {
	// With ring allreduce configured, the generic AllReduce entry point
	// (used by trace replay) must behave like the explicit ring call.
	run := func(cfg ModelConfig, body func(r *Rank)) float64 {
		w, e := testWorld(t, 8, cfg)
		end := 0.0
		for i := 0; i < 8; i++ {
			w.Spawn(i, func(r *Rank) {
				body(r)
				if now := r.Now(); now > end {
					end = now
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	const bytes = 8 << 20
	viaConfig := run(ModelConfig{AllReduce: AllReduceRing}, func(r *Rank) { r.AllReduce(bytes) })
	explicit := run(ModelConfig{}, func(r *Rank) { r.AllReduceWith(AllReduceRing, bytes) })
	if viaConfig != explicit {
		t.Fatalf("configured ring (%v) != explicit ring (%v)", viaConfig, explicit)
	}
	rdb := run(ModelConfig{}, func(r *Rank) { r.AllReduce(bytes) })
	if viaConfig == rdb {
		t.Fatal("algorithm selection had no effect")
	}
	linearBcast := run(ModelConfig{Bcast: BcastLinear}, func(r *Rank) { r.Bcast(bytes, 0) })
	binomBcast := run(ModelConfig{}, func(r *Rank) { r.Bcast(bytes, 0) })
	if linearBcast == binomBcast {
		t.Fatal("bcast algorithm selection had no effect")
	}
}
