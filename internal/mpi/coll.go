package mpi

import "fmt"

// Collective operations simulated as sets of point-to-point messages
// (Section 3.3: the SMPI rewrite replaces the MSG prototype's "monolithic
// performance models of collective communications" with actual message
// exchanges, following the algorithms of mainstream MPI implementations).
//
// The algorithms are written once, as free functions over the collPrims
// primitive set, and driven by two implementations: the executing *Rank
// (goroutine mode) and the compiling *TaskRank (continuation mode). Both
// modes therefore produce the same message schedule by construction — the
// property the differential replay tests pin down to bit-identical times.

// collPrims is the primitive set a collective algorithm needs: identity plus
// the protocol-following point-to-point operations on the collective mailbox
// namespace.
type collPrims interface {
	Rank() int
	Size() int
	sendColl(dst int, bytes float64)
	recvColl(src int)
	sendRecvColl(dst int, bytes float64, src int)
	putColl(dst int, bytes float64) // blocking send (chain-head pacing)
}

// Barrier synchronizes all ranks: a binomial-tree gather of empty messages
// to rank 0 followed by a binomial-tree release.
func (r *Rank) Barrier() { barrierColl(r) }

// Bcast broadcasts bytes from root using the configured algorithm
// (binomial tree by default).
func (r *Rank) Bcast(bytes float64, root int) {
	bcastWithColl(r, r.world.cfg.Bcast, bytes, root)
}

// BcastWith broadcasts using an explicit algorithm.
func (r *Rank) BcastWith(algo BcastAlgo, bytes float64, root int) {
	bcastWithColl(r, algo, bytes, root)
}

// Reduce combines bytes from every rank onto root along a binomial tree.
func (r *Rank) Reduce(bytes float64, root int) {
	checkRootColl(r, root, "Reduce")
	reduceTree(r, root, bytes)
}

// AllReduce combines and redistributes bytes across all ranks using the
// configured algorithm. The default, recursive doubling, runs log2 P
// exchange rounds on power-of-two communicators and falls back to
// Reduce+Bcast otherwise, as common MPI runtimes do for irregular sizes.
func (r *Rank) AllReduce(bytes float64) {
	allReduceWithColl(r, r.world.cfg.AllReduce, bytes)
}

// AllReduceWith reduces-and-redistributes using an explicit algorithm.
func (r *Rank) AllReduceWith(algo AllReduceAlgo, bytes float64) {
	allReduceWithColl(r, algo, bytes)
}

// AllToAll exchanges bytes with every other rank using the pairwise-exchange
// algorithm.
func (r *Rank) AllToAll(bytes float64) { alltoallPairwise(r, bytes) }

// Gather collects bytes from every rank to root (linear algorithm: each
// non-root sends once, the root receives P-1 messages).
func (r *Rank) Gather(bytes float64, root int) {
	checkRootColl(r, root, "Gather")
	gatherLinear(r, bytes, root)
}

// AllGather uses the ring algorithm: P-1 steps, each rank forwarding bytes
// to its successor while receiving from its predecessor.
func (r *Rank) AllGather(bytes float64) { allGatherRing(r, bytes) }

// AllToAllV is the vector all-to-all: vols[k] is the number of bytes this
// rank sends to rank k (vols[rank] is ignored). It uses the same
// pairwise-exchange schedule as AllToAll with per-pair volumes.
func (r *Rank) AllToAllV(vols []float64) {
	checkVolsColl(r, vols, "AllToAllV")
	alltoallvPairwise(r, vols)
}

// AllGatherV is the vector all-gather: vols[k] is the number of bytes rank k
// contributes. Every rank must pass the same vector (as MPI requires of the
// recvcounts argument). It uses the same ring schedule as AllGather with
// per-origin block sizes.
func (r *Rank) AllGatherV(vols []float64) {
	checkVolsColl(r, vols, "AllGatherV")
	allGatherVRing(r, vols)
}

// barrierColl is the binomial gather + release barrier.
func barrierColl(c collPrims) {
	reduceTree(c, 0, 1)
	bcastTree(c, 0, 1)
}

// allReduceRDB is the recursive-doubling implementation with the
// reduce+bcast fallback for non-power-of-two communicators.
func allReduceRDB(c collPrims, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		for mask := 1; mask < p; mask <<= 1 {
			partner := c.Rank() ^ mask
			c.sendRecvColl(partner, bytes, partner)
		}
		return
	}
	reduceTree(c, 0, bytes)
	bcastTree(c, 0, bytes)
}

// alltoallPairwise exchanges bytes with every other rank: P-1 rounds, in
// round i exchanging with a shifted schedule.
func alltoallPairwise(c collPrims, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	rank := c.Rank()
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		c.sendRecvColl(dst, bytes, src)
	}
}

// alltoallvPairwise is the vector form of alltoallPairwise: the same P-1
// round schedule, each round carrying the volume owed to that round's
// destination. Zero-volume pairs still exchange (an empty message), keeping
// the schedule — and therefore the two execution modes — identical for every
// volume vector.
func alltoallvPairwise(c collPrims, vols []float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	rank := c.Rank()
	for i := 1; i < p; i++ {
		dst := (rank + i) % p
		src := (rank - i + p) % p
		c.sendRecvColl(dst, vols[dst], src)
	}
}

// allGatherVRing is the vector form of allGatherRing: at step i each rank
// forwards the block that originated at rank (rank-i+p)%p, so block k
// travels the ring at its own size vols[k].
func allGatherVRing(c collPrims, vols []float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	rank := c.Rank()
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		c.sendRecvColl(next, vols[(rank-i+p)%p], prev)
	}
}

// gatherLinear collects bytes to root: each non-root sends once, the root
// receives P-1 messages in rank order.
func gatherLinear(c collPrims, bytes float64, root int) {
	p := c.Size()
	if p == 1 {
		return
	}
	if c.Rank() == root {
		for src := 0; src < p; src++ {
			if src != root {
				c.recvColl(src)
			}
		}
		return
	}
	c.sendColl(root, bytes)
}

// allGatherRing runs P-1 forwarding steps around the ring.
func allGatherRing(c collPrims, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	rank := c.Rank()
	next := (rank + 1) % p
	prev := (rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		c.sendRecvColl(next, bytes, prev)
	}
}

// bcastTree implements the binomial broadcast: the root's subtree unfolds in
// log2 P rounds. vrank is the rank relative to the root.
func bcastTree(c collPrims, root int, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	vrank := (c.Rank() - root + p) % p
	// Receive from parent (unless root).
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % p
		c.recvColl(parent)
	}
	// Forward to children.
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	for ; mask < p; mask <<= 1 {
		child := vrank + mask
		if child >= p {
			break
		}
		c.sendColl((child+root)%p, bytes)
	}
}

// reduceTree is the mirror image of bcastTree: leaves send first, inner
// nodes receive from their subtree then forward to their parent. The
// children form a contiguous range of masks, so they are visited by
// iterating masks downward — no per-call slice as the historical
// implementation allocated.
func reduceTree(c collPrims, root int, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	vrank := (c.Rank() - root + p) % p
	first := 1
	for first <= vrank {
		first <<= 1
	}
	// Receive from children, in reverse order of the bcast sends: child
	// masks run [first, top] where top is the largest power of two below p;
	// children landing at or beyond p simply do not exist.
	top := 1
	for top < p {
		top <<= 1
	}
	top >>= 1
	for mask := top; mask >= first; mask >>= 1 {
		child := vrank + mask
		if child >= p {
			continue
		}
		c.recvColl((child + root) % p)
	}
	if vrank != 0 {
		m := first >> 1
		parent := ((vrank - m) + root) % p
		c.sendColl(parent, bytes)
	}
}

func checkRootColl(c collPrims, root int, op string) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: rank %d: %s root %d outside communicator of size %d",
			c.Rank(), op, root, c.Size()))
	}
}

func checkVolsColl(c collPrims, vols []float64, op string) {
	if len(vols) != c.Size() {
		panic(fmt.Sprintf("mpi: rank %d: %s volume vector has %d entries for communicator of size %d",
			c.Rank(), op, len(vols), c.Size()))
	}
	for k, v := range vols {
		if v < 0 {
			panic(fmt.Sprintf("mpi: rank %d: %s negative volume %g for rank %d",
				c.Rank(), op, v, k))
		}
	}
}
