package mpi

import "fmt"

// Collective operations simulated as sets of point-to-point messages
// (Section 3.3: the SMPI rewrite replaces the MSG prototype's "monolithic
// performance models of collective communications" with actual message
// exchanges, following the algorithms of mainstream MPI implementations).

// Barrier synchronizes all ranks: a binomial-tree gather of empty messages
// to rank 0 followed by a binomial-tree release.
func (r *Rank) Barrier() {
	r.reduceTree(0, 1)
	r.bcastTree(0, 1)
}

// Bcast broadcasts bytes from root using the configured algorithm
// (binomial tree by default).
func (r *Rank) Bcast(bytes float64, root int) {
	r.BcastWith(r.world.cfg.Bcast, bytes, root)
}

// Reduce combines bytes from every rank onto root along a binomial tree.
func (r *Rank) Reduce(bytes float64, root int) {
	r.checkRoot(root, "Reduce")
	r.reduceTree(root, bytes)
}

// AllReduce combines and redistributes bytes across all ranks using the
// configured algorithm. The default, recursive doubling, runs log2 P
// exchange rounds on power-of-two communicators and falls back to
// Reduce+Bcast otherwise, as common MPI runtimes do for irregular sizes.
func (r *Rank) AllReduce(bytes float64) {
	r.AllReduceWith(r.world.cfg.AllReduce, bytes)
}

// allReduceRDB is the recursive-doubling implementation with the
// reduce+bcast fallback for non-power-of-two communicators.
func (r *Rank) allReduceRDB(bytes float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	if p&(p-1) == 0 {
		for mask := 1; mask < p; mask <<= 1 {
			partner := r.rank ^ mask
			r.sendRecvColl(partner, bytes, partner)
		}
		return
	}
	r.reduceTree(0, bytes)
	r.bcastTree(0, bytes)
}

// AllToAll exchanges bytes with every other rank using the pairwise-exchange
// algorithm: P-1 rounds, in round i exchanging with rank^i patterns (for
// power-of-two) or a shifted schedule otherwise.
func (r *Rank) AllToAll(bytes float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	for i := 1; i < p; i++ {
		dst := (r.rank + i) % p
		src := (r.rank - i + p) % p
		r.sendRecvColl(dst, bytes, src)
	}
}

// Gather collects bytes from every rank to root (linear algorithm: each
// non-root sends once, the root receives P-1 messages).
func (r *Rank) Gather(bytes float64, root int) {
	r.checkRoot(root, "Gather")
	if r.Size() == 1 {
		return
	}
	if r.rank == root {
		for src := 0; src < r.Size(); src++ {
			if src != root {
				r.recvColl(src)
			}
		}
		return
	}
	r.sendColl(root, bytes)
}

// AllGather uses the ring algorithm: P-1 steps, each rank forwarding bytes
// to its successor while receiving from its predecessor.
func (r *Rank) AllGather(bytes float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	next := (r.rank + 1) % p
	prev := (r.rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		r.sendRecvColl(next, bytes, prev)
	}
}

// bcastTree implements the binomial broadcast: the root's subtree unfolds in
// log2 P rounds. vrank is the rank relative to the root.
func (r *Rank) bcastTree(root int, bytes float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	vrank := (r.rank - root + p) % p
	// Receive from parent (unless root).
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % p
		r.recvColl(parent)
	}
	// Forward to children.
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	for ; mask < p; mask <<= 1 {
		child := vrank + mask
		if child >= p {
			break
		}
		r.sendColl((child+root)%p, bytes)
	}
}

// reduceTree is the mirror image of bcastTree: leaves send first, inner
// nodes receive from their subtree then forward to their parent.
func (r *Rank) reduceTree(root int, bytes float64) {
	p := r.Size()
	if p == 1 {
		return
	}
	vrank := (r.rank - root + p) % p
	// Receive from children, in reverse order of the bcast sends.
	var children []int
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	for ; mask < p; mask <<= 1 {
		child := vrank + mask
		if child >= p {
			break
		}
		children = append(children, (child+root)%p)
	}
	for i := len(children) - 1; i >= 0; i-- {
		r.recvColl(children[i])
	}
	if vrank != 0 {
		m := 1
		for m <= vrank {
			m <<= 1
		}
		m >>= 1
		parent := ((vrank - m) + root) % p
		r.sendColl(parent, bytes)
	}
}

func (r *Rank) checkRoot(root int, op string) {
	if root < 0 || root >= r.Size() {
		panic(fmt.Sprintf("mpi: rank %d: %s root %d outside communicator of size %d",
			r.rank, op, root, r.Size()))
	}
}
