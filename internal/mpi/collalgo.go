package mpi

// Selectable collective algorithms. SMPI (and every production MPI) ships
// several implementations per collective and picks one by message size and
// communicator shape; exposing the choice lets the benchmarks quantify how
// much the algorithm — as opposed to the network model — contributes to
// simulated collective cost.

// BcastAlgo selects the broadcast implementation.
type BcastAlgo int

// Broadcast algorithms.
const (
	// BcastBinomial is the default log2(P)-depth tree.
	BcastBinomial BcastAlgo = iota
	// BcastLinear has the root send to every rank directly (flat tree).
	BcastLinear
	// BcastChain forwards along a pipeline rank i -> i+1, segmenting the
	// payload so segments overlap (efficient for large messages).
	BcastChain
)

// AllReduceAlgo selects the allreduce implementation.
type AllReduceAlgo int

// Allreduce algorithms.
const (
	// AllReduceRDB is recursive doubling (default for power-of-two sizes).
	AllReduceRDB AllReduceAlgo = iota
	// AllReduceReduceBcast combines a binomial reduce with a binomial
	// broadcast.
	AllReduceReduceBcast
	// AllReduceRing is the bandwidth-optimal ring: a reduce-scatter
	// followed by an allgather, 2(P-1) steps of bytes/P each.
	AllReduceRing
)

// chainSegmentBytes is the pipeline segment size of BcastChain.
const chainSegmentBytes = 8192

// bcastWithColl broadcasts using an explicit algorithm.
func bcastWithColl(c collPrims, algo BcastAlgo, bytes float64, root int) {
	checkRootColl(c, root, "BcastWith")
	p := c.Size()
	if p == 1 {
		return
	}
	rank := c.Rank()
	switch algo {
	case BcastLinear:
		if rank == root {
			for dst := 0; dst < p; dst++ {
				if dst != root {
					c.sendColl(dst, bytes)
				}
			}
			return
		}
		c.recvColl(root)
	case BcastChain:
		// Ranks form a chain in root-relative order; the payload moves in
		// segments so downstream ranks start forwarding before the whole
		// message has arrived.
		vrank := (rank - root + p) % p
		prev := (rank - 1 + p) % p
		next := (rank + 1) % p
		segments := int(bytes / chainSegmentBytes)
		if segments < 1 {
			segments = 1
		}
		seg := bytes / float64(segments)
		for s := 0; s < segments; s++ {
			if vrank != 0 {
				c.recvColl(prev)
			}
			if vrank != p-1 {
				if vrank == 0 {
					// The chain head paces itself by sending each segment
					// synchronously; without this flow control every
					// segment would be pushed eagerly at once, the link
					// would be shared among all of them, and the pipeline
					// would degenerate into a store-and-forward chain.
					c.putColl(next, seg)
				} else {
					// Downstream ranks are naturally paced by arrivals.
					c.sendColl(next, seg)
				}
			}
		}
	default:
		bcastTree(c, root, bytes)
	}
}

// allReduceWithColl reduces-and-redistributes using an explicit algorithm.
func allReduceWithColl(c collPrims, algo AllReduceAlgo, bytes float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	switch algo {
	case AllReduceReduceBcast:
		reduceTree(c, 0, bytes)
		bcastTree(c, 0, bytes)
	case AllReduceRing:
		// Reduce-scatter then allgather around the ring; each of the
		// 2(P-1) steps moves one bytes/P chunk.
		chunk := bytes / float64(p)
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		for step := 0; step < 2*(p-1); step++ {
			c.sendRecvColl(next, chunk, prev)
		}
	default:
		allReduceRDB(c, bytes)
	}
}
