package mpi

import (
	"fmt"

	"tireplay/internal/sim"
)

// TaskRank is the continuation-mode counterpart of Rank: instead of executing
// MPI calls on a goroutine-backed process, it compiles each call into sim
// micro-ops appended to a Prog, which the engine interprets inline from the
// event loop. The emitters are line-for-line lowerings of the Rank methods in
// p2p.go — same protocol split, same sleeps, same mailboxes, in the same
// order — and the collectives are the very same algorithm functions
// (coll.go), driven through the collPrims interface. That is what makes the
// two modes produce bit-identical simulated times.
//
// Register convention: register 0 holds the send side of a blocking or
// exchanged operation, register 1 the receive side. Both are always waited
// and released within the action that allocated them; only the pending FIFO
// (Isend/Irecv) crosses actions.
type TaskRank struct {
	world *World
	rank  int
	prog  *sim.Prog // program currently being emitted into
}

// TaskRank returns the compiler for one rank.
func (w *World) TaskRank(rank int) *TaskRank {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	return &TaskRank{world: w, rank: rank}
}

// Rank returns the compiled rank's index.
func (tr *TaskRank) Rank() int { return tr.rank }

// Size returns the communicator size.
func (tr *TaskRank) Size() int { return tr.world.Size() }

func (tr *TaskRank) bind(p *sim.Prog) { tr.prog = p }

// Compute compiles Rank.Compute.
func (tr *TaskRank) Compute(p *sim.Prog, instr float64) {
	p.Exec(instr)
}

// Send compiles Rank.Send: eager sends detach after the local costs,
// rendezvous sends block until the transfer completes.
func (tr *TaskRank) Send(p *sim.Prog, dst int, bytes float64) {
	tr.bind(p)
	tr.checkPeer(dst, "Send")
	tr.emitSend(tr.world.p2pBox(tr.rank, dst), bytes)
}

// Isend compiles Rank.Isend onto the pending FIFO. Eager sends push an
// already-done placeholder so trace waits stay FIFO-aligned.
func (tr *TaskRank) Isend(p *sim.Prog, dst int, bytes float64) {
	tr.bind(p)
	tr.checkPeer(dst, "Isend")
	cfg := tr.world.cfg
	if cfg.SendOverhead > 0 {
		p.Sleep(cfg.SendOverhead)
	}
	box := tr.world.p2pBox(tr.rank, dst)
	if bytes < cfg.eagerThreshold() {
		tr.emitEagerCopy(bytes)
		p.PutDetached(box, bytes)
		p.PushPendingDone()
		return
	}
	p.PutPending(box, bytes)
}

// Recv compiles Rank.Recv.
func (tr *TaskRank) Recv(p *sim.Prog, src int) {
	tr.bind(p)
	tr.checkPeer(src, "Recv")
	tr.emitRecv(tr.world.p2pBox(src, tr.rank))
}

// Irecv compiles Rank.Irecv onto the pending FIFO.
func (tr *TaskRank) Irecv(p *sim.Prog, src int) {
	tr.bind(p)
	tr.checkPeer(src, "Irecv")
	p.GetPending(tr.world.p2pBox(src, tr.rank))
}

// Barrier compiles Rank.Barrier.
func (tr *TaskRank) Barrier(p *sim.Prog) {
	tr.bind(p)
	barrierColl(tr)
}

// Bcast compiles Rank.Bcast with the configured algorithm.
func (tr *TaskRank) Bcast(p *sim.Prog, bytes float64, root int) {
	tr.bind(p)
	bcastWithColl(tr, tr.world.cfg.Bcast, bytes, root)
}

// Reduce compiles Rank.Reduce.
func (tr *TaskRank) Reduce(p *sim.Prog, bytes float64, root int) {
	tr.bind(p)
	checkRootColl(tr, root, "Reduce")
	reduceTree(tr, root, bytes)
}

// AllReduce compiles Rank.AllReduce with the configured algorithm.
func (tr *TaskRank) AllReduce(p *sim.Prog, bytes float64) {
	tr.bind(p)
	allReduceWithColl(tr, tr.world.cfg.AllReduce, bytes)
}

// AllToAll compiles Rank.AllToAll.
func (tr *TaskRank) AllToAll(p *sim.Prog, bytes float64) {
	tr.bind(p)
	alltoallPairwise(tr, bytes)
}

// Gather compiles Rank.Gather.
func (tr *TaskRank) Gather(p *sim.Prog, bytes float64, root int) {
	tr.bind(p)
	checkRootColl(tr, root, "Gather")
	gatherLinear(tr, bytes, root)
}

// AllGather compiles Rank.AllGather.
func (tr *TaskRank) AllGather(p *sim.Prog, bytes float64) {
	tr.bind(p)
	allGatherRing(tr, bytes)
}

// AllToAllV compiles Rank.AllToAllV: the same pairwise schedule, driven
// through the same algorithm function.
func (tr *TaskRank) AllToAllV(p *sim.Prog, vols []float64) {
	tr.bind(p)
	checkVolsColl(tr, vols, "AllToAllV")
	alltoallvPairwise(tr, vols)
}

// AllGatherV compiles Rank.AllGatherV.
func (tr *TaskRank) AllGatherV(p *sim.Prog, vols []float64) {
	tr.bind(p)
	checkVolsColl(tr, vols, "AllGatherV")
	allGatherVRing(tr, vols)
}

// emitSend lowers a blocking protocol send (Rank.Send body).
func (tr *TaskRank) emitSend(box sim.Mbox, bytes float64) {
	cfg := tr.world.cfg
	if cfg.SendOverhead > 0 {
		tr.prog.Sleep(cfg.SendOverhead)
	}
	if bytes < cfg.eagerThreshold() {
		tr.emitEagerCopy(bytes)
		tr.prog.PutDetached(box, bytes)
		return
	}
	tr.prog.Put(box, bytes, 0)
	tr.prog.WaitReg(0)
}

// emitRecv lowers a blocking receive (Rank.Recv body).
func (tr *TaskRank) emitRecv(box sim.Mbox) {
	cfg := tr.world.cfg
	tr.prog.Get(box, 1)
	tr.prog.WaitReg(1)
	if cfg.RecvOverhead > 0 {
		tr.prog.Sleep(cfg.RecvOverhead)
	}
}

// emitEagerCopy lowers Rank.eagerCopy.
func (tr *TaskRank) emitEagerCopy(bytes float64) {
	cfg := tr.world.cfg
	if cfg.MemcpyBandwidth > 0 {
		tr.prog.Sleep(cfg.MemcpyLatency + bytes/cfg.MemcpyBandwidth)
	}
}

// collPrims implementation: the same algorithms in coll.go drive these
// compile-time emitters.

func (tr *TaskRank) sendColl(dst int, bytes float64) {
	tr.emitSend(tr.world.collBox(tr.rank, dst), bytes)
}

func (tr *TaskRank) recvColl(src int) {
	tr.emitRecv(tr.world.collBox(src, tr.rank))
}

func (tr *TaskRank) sendRecvColl(dst int, bytes float64, src int) {
	cfg := tr.world.cfg
	if cfg.SendOverhead > 0 {
		tr.prog.Sleep(cfg.SendOverhead)
	}
	rendezvous := bytes >= cfg.eagerThreshold()
	if rendezvous {
		tr.prog.Put(tr.world.collBox(tr.rank, dst), bytes, 0)
	} else {
		tr.emitEagerCopy(bytes)
		tr.prog.PutDetached(tr.world.collBox(tr.rank, dst), bytes)
	}
	tr.recvColl(src)
	if rendezvous {
		tr.prog.WaitReg(0)
	}
}

func (tr *TaskRank) putColl(dst int, bytes float64) {
	tr.prog.Put(tr.world.collBox(tr.rank, dst), bytes, 0)
	tr.prog.WaitReg(0)
}

func (tr *TaskRank) checkPeer(peer int, op string) {
	if peer < 0 || peer >= tr.world.Size() {
		panic(fmt.Sprintf("mpi: rank %d: %s peer %d outside communicator of size %d",
			tr.rank, op, peer, tr.world.Size()))
	}
	if peer == tr.rank {
		panic(fmt.Sprintf("mpi: rank %d: %s to self is not supported by the replay model", tr.rank, op))
	}
}
