package mpi

import (
	"math"
	"testing"

	"tireplay/internal/platform"
	"tireplay/internal/sim"
)

// testWorld builds an n-rank world on a flat cluster with simple numbers:
// 1 GB/s links, 10 GB/s backbone, 10 us link latency.
func testWorld(t *testing.T, n int, cfg ModelConfig) (*World, *sim.Engine) {
	t.Helper()
	p, err := platform.NewFlatCluster(platform.FlatConfig{
		Name: "t", Hosts: n, Speed: 1e9,
		LinkBandwidth: 1e9, LinkLatency: 1e-5,
		BackboneBandwidth: 1e10, BackboneLatency: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p)
	w, err := NewWorld(e, p.Hosts(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, e
}

const routeLat = 2.1e-5 // 2 links at 1e-5 + backbone 1e-6

func approx(t *testing.T, got, want, tolFrac float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tolFrac*math.Abs(want)+1e-12 {
		t.Fatalf("%s = %v, want %v (±%v%%)", what, got, want, 100*tolFrac)
	}
}

func TestEagerSendReturnsImmediately(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{})
	var sendEnd, recvEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 1024)
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Recv(0)
		recvEnd = r.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd != 0 {
		t.Fatalf("eager send took %v, want 0 (no memcpy modelled)", sendEnd)
	}
	// Transfer: latency + 1024/1e9.
	approx(t, recvEnd, routeLat+1024/1e9, 1e-9, "recv end")
}

func TestEagerSendChargesMemcpyWhenModelled(t *testing.T) {
	cfg := ModelConfig{MemcpyBandwidth: 2e9, MemcpyLatency: 1e-6}
	w, e := testWorld(t, 2, cfg)
	var sendEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 2048)
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) { r.Recv(0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, sendEnd, 1e-6+2048/2e9, 1e-9, "eager sender memcpy cost")
}

func TestRendezvousSendBlocks(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{})
	var sendEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 1<<20) // 1 MiB >= threshold
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(0.5)
		r.Recv(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Sender blocks until receiver posts at 0.5, then transfer.
	want := 0.5 + routeLat + float64(1<<20)/1e9
	approx(t, sendEnd, want, 1e-9, "rendezvous send end")
}

func TestEagerThresholdBoundary(t *testing.T) {
	// Exactly 65536 bytes must use rendezvous ("size < 65536" is eager).
	w, e := testWorld(t, 2, ModelConfig{})
	var sendEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 65536)
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(1)
		r.Recv(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd < 1 {
		t.Fatalf("64 KiB send returned at %v: eager, want rendezvous", sendEnd)
	}
}

func TestCustomEagerThreshold(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{EagerThreshold: 100})
	var sendEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 200) // above custom threshold -> rendezvous
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(0.25)
		r.Recv(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendEnd < 0.25 {
		t.Fatalf("send returned at %v, want rendezvous wait", sendEnd)
	}
}

func TestEagerOverlapWithReceiverCompute(t *testing.T) {
	// The receiver computes while the eager message is in flight: the recv
	// posted after arrival returns instantly. This is the behaviour the MSG
	// prototype could not express.
	w, e := testWorld(t, 2, ModelConfig{})
	var recvWait float64
	w.Spawn(0, func(r *Rank) { r.Send(1, 4096) })
	w.Spawn(1, func(r *Rank) {
		r.Proc().Sleep(0.1) // much longer than the transfer
		before := r.Now()
		r.Recv(0)
		recvWait = r.Now() - before
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvWait > 1e-9 {
		t.Fatalf("recv waited %v, want ~0 (data already buffered)", recvWait)
	}
}

func TestIsendWaitAndTest(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{})
	var eagerDone, largeDoneBefore, largeDoneAfter bool
	w.Spawn(0, func(r *Rank) {
		qe := r.Isend(1, 8)
		eagerDone = r.Test(qe)
		ql := r.Isend(1, 1<<20)
		largeDoneBefore = r.Test(ql)
		r.Wait(ql)
		largeDoneAfter = r.Test(ql)
		r.Wait(nil) // must not panic
	})
	w.Spawn(1, func(r *Rank) {
		r.Recv(0)
		r.Recv(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !eagerDone {
		t.Error("eager isend not immediately complete")
	}
	if largeDoneBefore {
		t.Error("large isend complete before wait")
	}
	if !largeDoneAfter {
		t.Error("large isend incomplete after wait")
	}
}

func TestIrecvWaitAll(t *testing.T) {
	w, e := testWorld(t, 3, ModelConfig{})
	var end float64
	w.Spawn(0, func(r *Rank) {
		qs := []*Request{r.Irecv(1), r.Irecv(2)}
		r.WaitAll(qs)
		end = r.Now()
	})
	w.Spawn(1, func(r *Rank) { r.Send(0, 1000) })
	w.Spawn(2, func(r *Rank) {
		r.Proc().Sleep(0.3)
		r.Send(0, 1000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end < 0.3 {
		t.Fatalf("waitall returned at %v, want >= 0.3", end)
	}
}

func TestSendRecvNoDeadlock(t *testing.T) {
	// Symmetric large-message exchange would deadlock with blocking sends;
	// SendRecv must complete.
	w, e := testWorld(t, 2, ModelConfig{})
	w.Spawn(0, func(r *Rank) { r.SendRecv(1, 1<<20, 1) })
	w.Spawn(1, func(r *Rank) { r.SendRecv(0, 1<<20, 0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvOverheads(t *testing.T) {
	cfg := ModelConfig{SendOverhead: 1e-3, RecvOverhead: 2e-3}
	w, e := testWorld(t, 2, ModelConfig(cfg))
	var sendEnd, recvEnd float64
	w.Spawn(0, func(r *Rank) {
		r.Send(1, 8)
		sendEnd = r.Now()
	})
	w.Spawn(1, func(r *Rank) {
		r.Recv(0)
		recvEnd = r.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, sendEnd, 1e-3, 1e-9, "send overhead")
	if recvEnd < 1e-3+2e-3 {
		t.Fatalf("recv end = %v, want >= send overhead + recv overhead", recvEnd)
	}
}

func collectiveWorld(t *testing.T, n int) (*World, *sim.Engine, []float64) {
	w, e := testWorld(t, n, ModelConfig{})
	ends := make([]float64, n)
	return w, e, ends
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 5 // non power of two on purpose
	w, e, ends := collectiveWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.Proc().Sleep(float64(i) * 0.1) // staggered arrivals
			r.Barrier()
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Nobody leaves before the last arrival at 0.4.
	for i, end := range ends {
		if end < 0.4 {
			t.Fatalf("rank %d left barrier at %v, before last arrival", i, end)
		}
		if end > 0.41 {
			t.Fatalf("rank %d left barrier at %v, too slow", i, end)
		}
	}
}

func TestBcastDelivers(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 8} {
		w, e, ends := collectiveWorld(t, n)
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, func(r *Rank) {
				r.Bcast(1024, 0)
				ends[i] = r.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 1; i < n; i++ {
			if ends[i] <= 0 {
				t.Fatalf("n=%d: rank %d finished bcast at %v, want > 0", n, i, ends[i])
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	const n = 6
	w, e, ends := collectiveWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.Bcast(512, 3)
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Eager sends are free for the root (no memcpy modelled), so only check
	// that every non-root rank actually received through the tree.
	for i := 0; i < n; i++ {
		if i != 3 && ends[i] <= 0 {
			t.Fatalf("rank %d finished bcast at %v, want > 0", i, ends[i])
		}
	}
}

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		w, e, ends := collectiveWorld(t, n)
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, func(r *Rank) {
				r.Reduce(2048, 0)
				ends[i] = r.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ends[0] <= 0 {
			t.Fatalf("n=%d: root finished at %v", n, ends[0])
		}
	}
}

func TestAllReducePowerOfTwoAndOdd(t *testing.T) {
	for _, n := range []int{2, 4, 8, 3, 6} {
		w, e, ends := collectiveWorld(t, n)
		for i := 0; i < n; i++ {
			i := i
			w.Spawn(i, func(r *Rank) {
				r.AllReduce(40)
				ends[i] = r.Now()
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if ends[i] <= 0 {
				t.Fatalf("n=%d: rank %d never finished allreduce", n, i)
			}
		}
	}
}

func TestAllReduceSingleRankIsFree(t *testing.T) {
	w, e, ends := collectiveWorld(t, 1)
	w.Spawn(0, func(r *Rank) {
		r.AllReduce(40)
		r.Barrier()
		r.AllToAll(8)
		r.AllGather(8)
		r.Gather(8, 0)
		ends[0] = r.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 0 {
		t.Fatalf("single-rank collectives took %v, want 0", ends[0])
	}
}

func TestAllToAllCompletes(t *testing.T) {
	const n = 4
	w, e, ends := collectiveWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.AllToAll(4096)
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if end <= 0 {
			t.Fatalf("rank %d alltoall end = %v", i, end)
		}
	}
}

func TestGatherAndAllGather(t *testing.T) {
	const n = 5
	w, e, ends := collectiveWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.Gather(128, 2)
			r.AllGather(128)
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if end <= 0 {
			t.Fatalf("rank %d end = %v", i, end)
		}
	}
}

func TestBackToBackCollectivesKeepOrder(t *testing.T) {
	// Successive collectives on the same pair mailboxes must not cross-match.
	const n = 4
	w, e, _ := collectiveWorld(t, n)
	times := make([][]float64, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			for k := 0; k < 10; k++ {
				r.AllReduce(40)
				times[i] = append(times[i], r.Now())
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for k := 1; k < 10; k++ {
			if times[i][k] < times[i][k-1] {
				t.Fatalf("rank %d: allreduce %d ended before %d", i, k, k-1)
			}
		}
	}
}

func TestLargeMessageCollective(t *testing.T) {
	// Collectives with rendezvous-sized payloads must not deadlock.
	const n = 4
	w, e, ends := collectiveWorld(t, n)
	for i := 0; i < n; i++ {
		i := i
		w.Spawn(i, func(r *Rank) {
			r.AllReduce(1 << 20)
			r.Bcast(1<<20, 0)
			r.Reduce(1<<20, 0)
			ends[i] = r.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, end := range ends {
		if end <= 0 {
			t.Fatalf("rank %d end = %v", i, end)
		}
	}
}

func TestComputeUsesHostSpeed(t *testing.T) {
	w, e := testWorld(t, 1, ModelConfig{})
	var end float64
	w.Spawn(0, func(r *Rank) {
		r.Compute(2e9)
		end = r.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, end, 2.0, 1e-9, "compute at 1e9 instr/s")
}

func TestWorldValidation(t *testing.T) {
	p, _ := platform.NewFlatCluster(platform.FlatConfig{
		Name: "t", Hosts: 2, Speed: 1e9,
		LinkBandwidth: 1e9, BackboneBandwidth: 1e10,
	})
	e := sim.NewEngine(p)
	if _, err := NewWorld(e, nil, ModelConfig{}); err == nil {
		t.Error("expected error for empty hosts")
	}
	if _, err := NewWorld(e, []*sim.Host{nil}, ModelConfig{}); err == nil {
		t.Error("expected error for nil host")
	}
}

func TestPeerValidationFaults(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{})
	w.Spawn(0, func(r *Rank) { r.Send(5, 10) })
	if err := e.Run(); err == nil {
		t.Fatal("expected error for out-of-range peer")
	}
}

func TestSelfSendFaults(t *testing.T) {
	w, e := testWorld(t, 2, ModelConfig{})
	w.Spawn(0, func(r *Rank) { r.Send(0, 10) })
	if err := e.Run(); err == nil {
		t.Fatal("expected error for self send")
	}
}
