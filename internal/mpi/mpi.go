// Package mpi implements MPI point-to-point and collective communication
// semantics on top of the simulation kernel. It corresponds to the SMPI
// layer the paper's new replay framework is re-implemented in (Section 3.3):
// small messages follow the eager protocol — the sender detaches and at most
// pays a local memory copy — large messages follow a rendezvous protocol,
// and collectives are simulated as sets of point-to-point messages rather
// than monolithic formulas.
//
// A ModelConfig selects the fidelity profile. The ground-truth cluster
// emulation and the SMPI replay backend share this package and differ only
// in their configs: most notably, the ground truth charges the sender-side
// memory copy of eager sends while the paper-era SMPI does not model it yet
// ("SMPI does not model the time to copy data in memory in the MPI_Send
// function yet", Section 4.3) — reproducing the small systematic
// underestimation visible in Figures 6 and 7.
package mpi

import (
	"fmt"

	"tireplay/internal/sim"
)

// DefaultEagerThreshold is the protocol switch point: messages strictly
// smaller use the eager mode ("when the message is smaller than 64KB, the
// eager mode is activated").
const DefaultEagerThreshold = 65536

// ModelConfig tunes the MPI communication model.
type ModelConfig struct {
	// EagerThreshold in bytes; messages strictly below it are sent eagerly
	// (detached), others use rendezvous. Zero selects
	// DefaultEagerThreshold.
	EagerThreshold float64 `json:"eager_threshold,omitempty"`
	// MemcpyBandwidth, when positive, charges the sender of an eager
	// message bytes/MemcpyBandwidth seconds for the local buffer copy.
	// Zero means the copy is not modelled (the paper-era SMPI behaviour).
	MemcpyBandwidth float64 `json:"memcpy_bandwidth,omitempty"`
	// MemcpyLatency is a fixed per-eager-send sender-side cost, charged
	// only when MemcpyBandwidth is modelled.
	MemcpyLatency float64 `json:"memcpy_latency,omitempty"`
	// SendOverhead and RecvOverhead are fixed per-call CPU costs (the
	// os/or parameters of LogP-like models), charged on every send/recv.
	SendOverhead float64 `json:"send_overhead,omitempty"`
	RecvOverhead float64 `json:"recv_overhead,omitempty"`
	// Bcast and AllReduce select the collective algorithms used by the
	// generic Bcast/AllReduce entry points (and hence by trace replay).
	// Zero values select the defaults (binomial tree, recursive doubling).
	Bcast     BcastAlgo     `json:"bcast,omitempty"`
	AllReduce AllReduceAlgo `json:"all_reduce,omitempty"`
}

func (c ModelConfig) eagerThreshold() float64 {
	if c.EagerThreshold == 0 {
		return DefaultEagerThreshold
	}
	return c.EagerThreshold
}

// World is an MPI communicator bound to a set of hosts (rank i runs on
// hosts[i]). Its two pair-mailbox namespaces — application ("p") and
// collective ("c") — are pinned to the destination hosts so eager transfers
// can start before the receive is posted, which is the detached behaviour
// the paper describes for real MPI runtimes. Pair spaces replace the
// historical per-pair name precomputation, whose O(P²) strings and pin map
// entries dominated memory at thousands of ranks.
type World struct {
	engine *sim.Engine
	hosts  []*sim.Host
	cfg    ModelConfig
	p2p    *sim.PairSpace
	coll   *sim.PairSpace
}

// NewWorld creates a communicator of len(hosts) ranks.
func NewWorld(engine *sim.Engine, hosts []*sim.Host, cfg ModelConfig) (*World, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mpi: empty host list")
	}
	for i, h := range hosts {
		if h == nil {
			return nil, fmt.Errorf("mpi: nil host for rank %d", i)
		}
	}
	w := &World{engine: engine, hosts: hosts, cfg: cfg}
	w.p2p = engine.NewPairSpace("p", hosts)
	w.coll = engine.NewPairSpace("c", hosts)
	return w, nil
}

// p2pBox and collBox return the pair mailboxes for a directed pair.
func (w *World) p2pBox(src, dst int) sim.Mbox  { return w.p2p.Box(src, dst) }
func (w *World) collBox(src, dst int) sim.Mbox { return w.coll.Box(src, dst) }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.hosts) }

// Engine returns the underlying simulation engine.
func (w *World) Engine() *sim.Engine { return w.engine }

// Host returns the host of the given rank.
func (w *World) Host(rank int) *sim.Host { return w.hosts[rank] }

// Config returns the communication model configuration.
func (w *World) Config() ModelConfig { return w.cfg }

// Spawn starts the body of one rank as a simulated process.
func (w *World) Spawn(rank int, body func(*Rank)) *Rank {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	r := &Rank{world: w, rank: rank}
	w.engine.Spawn(fmt.Sprintf("rank%d", rank), w.hosts[rank], func(p *sim.Proc) {
		r.proc = p
		body(r)
	})
	return r
}

// SpawnProg starts one rank as a continuation program fed by feed; see
// TaskRank for the compiler producing such feeds.
func (w *World) SpawnProg(rank int, feed sim.Feed) {
	if rank < 0 || rank >= len(w.hosts) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(w.hosts)))
	}
	w.engine.SpawnProg(fmt.Sprintf("rank%d", rank), w.hosts[rank], feed)
}

// Rank is one MPI process.
type Rank struct {
	world *World
	rank  int
	proc  *sim.Proc
}

// Rank returns the process's rank in the world.
func (r *Rank) Rank() int { return r.rank }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.world.Size() }

// Proc exposes the underlying simulated process (for custom compute
// modelling, e.g. the ground-truth cache-aware rates).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the simulated time.
func (r *Rank) Now() float64 { return r.proc.Now() }

// Compute executes instr instructions at the host's calibrated rate.
func (r *Rank) Compute(instr float64) { r.proc.Execute(instr) }

// Request represents an outstanding nonblocking operation. A nil comm means
// the operation completed immediately (eager sends).
type Request struct {
	comm *sim.Comm
}

// Done reports whether the request has completed.
func (q *Request) Done() bool { return q.comm == nil || q.comm.Done() }
