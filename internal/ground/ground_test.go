package ground

import (
	"testing"

	"tireplay/internal/instrument"
	"tireplay/internal/npb"
)

func TestClusterDefinitions(t *testing.T) {
	b := Bordereau()
	if b.Hosts != 93 || b.L2Bytes != 1<<20 {
		t.Fatalf("bordereau = %+v", b)
	}
	g := Graphene()
	if g.Hosts != 144 || g.L2Bytes != 2<<20 {
		t.Fatalf("graphene = %+v", g)
	}
	if g.BaseRate <= b.BaseRate {
		t.Fatal("graphene should be faster than bordereau")
	}
	// Ground truth must model the eager memcpy (the feature SMPI lacks).
	if b.MPI.MemcpyBandwidth <= 0 || g.MPI.MemcpyBandwidth <= 0 {
		t.Fatal("ground truth must model the eager memcpy")
	}
}

func TestCacheResidency(t *testing.T) {
	b, g := Bordereau(), Graphene()
	luA4, _ := npb.NewLU(npb.ClassA, 4, 1)
	luB4, _ := npb.NewLU(npb.ClassB, 4, 1)
	luC8, _ := npb.NewLU(npb.ClassC, 8, 1)
	if !b.CacheResident(luA4) {
		t.Error("A-4 must be cache-resident on bordereau (Section 2.3)")
	}
	if b.CacheResident(luB4) {
		t.Error("B-4 must spill on bordereau (Section 3.4)")
	}
	if b.CacheResident(luC8) {
		t.Error("C-8 must spill on bordereau")
	}
	for _, procs := range []int{8, 16, 32, 64, 128} {
		for _, class := range []npb.Class{npb.ClassB, npb.ClassC} {
			lu, err := npb.NewLU(class, procs, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !g.CacheResident(lu) {
				t.Errorf("%s must be cache-resident on graphene (Section 3.4)", lu.Name())
			}
		}
	}
}

func TestRateForAppliesCacheAndJitter(t *testing.T) {
	b := Bordereau()
	luA4, _ := npb.NewLU(npb.ClassA, 4, 1)
	luC4, _ := npb.NewLU(npb.ClassC, 4, 1)
	rA := b.rateFor(luA4, 0)
	rC := b.rateFor(luC4, 0)
	if rA > b.BaseRate {
		t.Fatalf("jittered rate %v exceeds base %v", rA, b.BaseRate)
	}
	if rA < b.BaseRate*(1-b.JitterAmp) {
		t.Fatalf("jittered rate %v below floor", rA)
	}
	if rC >= rA*b.OutOfCacheFactor*1.05 {
		t.Fatalf("out-of-cache rate %v not reduced vs %v", rC, rA)
	}
}

func TestRunSmallInstance(t *testing.T) {
	b := Bordereau()
	lu, err := npb.NewLU(npb.ClassS, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(lu, instrument.Config{Mode: instrument.None})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("run time = %v", res.Time)
	}
	// Lower bound: pure compute of the slowest rank at full speed.
	minCompute := lu.BaseInstructions(0) / b.BaseRate
	if res.Time < minCompute {
		t.Fatalf("run time %v below compute lower bound %v", res.Time, minCompute)
	}
}

func TestRunDeterministic(t *testing.T) {
	g := Graphene()
	run := func() float64 {
		lu, err := npb.NewLU(npb.ClassS, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run(lu, instrument.Config{Mode: instrument.None})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("ground truth not deterministic: %v vs %v", a, b)
	}
}

func TestInstrumentedRunSlower(t *testing.T) {
	b := Bordereau()
	mk := func() npb.Workload {
		lu, err := npb.NewLU(npb.ClassS, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return lu
	}
	orig, err := b.Run(mk(), instrument.Config{Mode: instrument.None})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := b.Run(mk(), instrument.Config{Mode: instrument.Fine})
	if err != nil {
		t.Fatal(err)
	}
	if instr.Time <= orig.Time {
		t.Fatalf("instrumented run %v not slower than original %v", instr.Time, orig.Time)
	}
	minimal, err := b.Run(mk(), instrument.Config{Mode: instrument.Minimal})
	if err != nil {
		t.Fatal(err)
	}
	if minimal.Time >= instr.Time {
		t.Fatalf("minimal instrumentation %v not cheaper than fine %v", minimal.Time, instr.Time)
	}
}

func TestO3RunFaster(t *testing.T) {
	b := Bordereau()
	lu := func() npb.Workload {
		l, err := npb.NewLU(npb.ClassS, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	o0, err := b.Run(lu(), instrument.Config{Mode: instrument.None, Compile: instrument.O0, Class: npb.ClassS})
	if err != nil {
		t.Fatal(err)
	}
	o3, err := b.Run(lu(), instrument.Config{Mode: instrument.None, Compile: instrument.O3, Class: npb.ClassS})
	if err != nil {
		t.Fatal(err)
	}
	if o3.Time >= o0.Time {
		t.Fatalf("-O3 run %v not faster than -O0 %v", o3.Time, o0.Time)
	}
}

func TestRunRejectsOversizedWorkload(t *testing.T) {
	b := Bordereau()
	lu, err := npb.NewLU(npb.ClassB, 128, 1) // bordereau has 93 nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(lu, instrument.Config{Mode: instrument.None}); err == nil {
		t.Fatal("expected error for 128 ranks on 93 nodes")
	}
}

// TestGroundTruthMagnitudes sanity-checks the tuned constants against the
// paper's Table 1/2 originals, scaled to the reduced iteration count:
// B-8 on bordereau took ~93 s at -O0 over 250 iterations (~0.37 s/iter).
func TestGroundTruthMagnitudes(t *testing.T) {
	if testing.Short() {
		t.Skip("magnitude check needs a multi-iteration run")
	}
	const iters = 10
	b := Bordereau()
	lu, err := npb.NewLU(npb.ClassB, 8, iters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(lu, instrument.Config{Mode: instrument.None, Compile: instrument.O0, Class: npb.ClassB})
	if err != nil {
		t.Fatal(err)
	}
	perIter := res.Time / iters
	if perIter < 0.25 || perIter > 0.55 {
		t.Fatalf("B-8 bordereau = %.3f s/iteration, want ~0.37 (93 s / 250)", perIter)
	}
}
