package ground

import (
	"tireplay/internal/instrument"
	"tireplay/internal/npb"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
)

// Factor tables of the piece-wise-linear network model, shared by the
// ground truth and the SMPI replay (SMPI's model was validated against the
// real interconnect, so handing the replay the same tuned factors mirrors
// the paper's setup; the replay's remaining error comes from protocol
// modelling, not factor mismatch). MaxBytes 0 in the last segment means
// "unbounded" (platform.Spec convention).
func gigabitEthernetFactors() []platform.SegmentSpec {
	return []platform.SegmentSpec{
		{MaxBytes: 1024, LatFactor: 1.9, BwFactor: 0.25},
		{MaxBytes: 8192, LatFactor: 1.5, BwFactor: 0.55},
		{MaxBytes: 65536, LatFactor: 1.3, BwFactor: 0.80},
		{MaxBytes: 1 << 20, LatFactor: 1.05, BwFactor: 0.92},
		{MaxBytes: 0, LatFactor: 1, BwFactor: 0.97},
	}
}

// Bordereau models the paper's aging cluster: 93 dual-proc dual-core
// 2.6 GHz Opteron 2218 nodes (1 MB L2 per core) behind a single 10 Gb
// switch, with gigabit NICs.
func Bordereau() *Cluster {
	return &Cluster{
		Name:             "bordereau",
		Hosts:            93,
		BaseRate:         2.15e9,
		L2Bytes:          1 << 20,
		OutOfCacheFactor: 0.86,
		JitterAmp:        0.05,
		Seed:             42,
		O3Scales: map[npb.Class]float64{
			npb.ClassB: 0.82,
			npb.ClassC: 0.85,
		},
		MPI: mpi.ModelConfig{
			MemcpyBandwidth: 2.2e9,
			MemcpyLatency:   5e-6,
			SendOverhead:    2e-6,
			RecvOverhead:    2e-6,
		},
		Spec: func(n int) *platform.Spec {
			return &platform.Spec{
				Name:              "bordereau",
				Topology:          "flat",
				Hosts:             n,
				Speed:             2.15e9,
				LinkBandwidth:     1.25e8, // gigabit NIC
				LinkLatency:       3.0e-5,
				BackboneBandwidth: 1.25e9, // 10 Gb switch fabric
				BackboneLatency:   1.5e-6,
				LoopbackLatency:   2e-7,
				Factors:           gigabitEthernetFactors(),
			}
		},
	}
}

// Graphene models the more recent cluster: 144 quad-core 2.53 GHz Xeon
// X3440 nodes (2 MB L2 per core) scattered across four cabinets
// interconnected by a hierarchy of 10 Gb switches.
func Graphene() *Cluster {
	return &Cluster{
		Name:             "graphene",
		Hosts:            144,
		BaseRate:         4.0e9,
		L2Bytes:          2 << 20,
		OutOfCacheFactor: 0.85,
		JitterAmp:        0.035,
		Seed:             7,
		O3Scales: map[npb.Class]float64{
			npb.ClassB: 0.82,
			npb.ClassC: 0.76,
		},
		// graphene ran the newer TAU 2.21 with faster local disks: probes
		// are noticeably cheaper per MPI event than on bordereau.
		ProbeCosts: &instrument.Costs{
			AppProbeInstr:        200,
			AppProbeTime:         55e-9,
			MPIProbeInstrFine:    9000,
			MPIProbeInstrMinimal: 5500,
			MPIEventTimeFine:     12e-6,
			MPIEventTimeMinimal:  8e-6,
			CoarseSectionInstr:   2000,
		},
		MPI: mpi.ModelConfig{
			MemcpyBandwidth: 3.2e9,
			MemcpyLatency:   6e-6,
			SendOverhead:    1.5e-6,
			RecvOverhead:    1.5e-6,
		},
		Spec: func(n int) *platform.Spec {
			perCab := 36
			cabinets := (n + perCab - 1) / perCab
			if cabinets < 1 {
				cabinets = 1
			}
			return &platform.Spec{
				Name:              "graphene",
				Topology:          "hierarchical",
				Cabinets:          cabinets,
				HostsPerCabinet:   perCab,
				Speed:             4.0e9,
				LinkBandwidth:     1.25e8,
				LinkLatency:       2.5e-5,
				CabinetBandwidth:  1.25e9,
				CabinetLatency:    1.5e-6,
				BackboneBandwidth: 2.5e9,
				BackboneLatency:   2e-6,
				LoopbackLatency:   2e-7,
				Factors:           gigabitEthernetFactors(),
			}
		},
	}
}
