// Package ground emulates the *real* execution platforms of the paper's
// evaluation — the Grid'5000 bordereau and graphene clusters — which are the
// reference every accuracy figure is computed against. Since the physical
// machines are not available, the emulation is the same simulation kernel
// configured with a deliberately richer machine model than any replay
// backend has access to:
//
//   - cache-dependent instruction rates: a rank whose hot working set
//     exceeds the per-core L2 capacity computes at a reduced rate
//     (Section 2.3);
//   - the sender-side memory copy of eager messages, which the paper-era
//     SMPI does not model (Section 4.3);
//   - deterministic per-rank speed jitter (OS noise, aging hardware — the
//     paper calls bordereau "prone to failures and suspect behaviors");
//   - instrumentation probe time and counter inflation when running an
//     instrumented build (Sections 2.1/2.2).
//
// The controlled gaps between this model and the replay backends are what
// produce the error shapes of Figures 3, 6 and 7.
package ground

import (
	"fmt"

	"tireplay/internal/instrument"
	"tireplay/internal/mpi"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/stats"
	"tireplay/internal/trace"
)

// Cluster describes one emulated execution platform.
type Cluster struct {
	// Name of the cluster ("bordereau", "graphene").
	Name string
	// Hosts is the node count (one rank per node).
	Hosts int
	// BaseRate is the in-cache instruction rate of one core (instr/s).
	BaseRate float64
	// L2Bytes is the per-core L2 capacity.
	L2Bytes float64
	// OutOfCacheFactor multiplies the rate of ranks whose working set
	// exceeds L2Bytes.
	OutOfCacheFactor float64
	// JitterAmp is the amplitude of the per-rank slowdown: rank r computes
	// at BaseRate * cache * (1 - JitterAmp*u_r) with u_r deterministic in
	// [0,1). Real time can only be lost to noise, never gained.
	JitterAmp float64
	// Seed drives the deterministic jitter streams.
	Seed uint64
	// MPI is the ground-truth communication model (memcpy modelled).
	MPI mpi.ModelConfig
	// O3Scales holds per-class -O3 instruction factors measured on this
	// cluster's compiler/ISA pair (nil entries fall back to the class
	// defaults of the instrument package).
	O3Scales map[npb.Class]float64
	// ProbeCosts overrides the instrumentation cost model for this cluster
	// (TAU version, local disk speed); nil keeps the defaults.
	ProbeCosts *instrument.Costs
	// Spec describes the cluster's network for n ranks as a serializable
	// platform description (including its piece-wise-linear factor model),
	// which is what lets declarative sweeps target the cluster.
	Spec func(n int) *platform.Spec
}

// Platform materializes the cluster's network for n ranks, together with
// its piece-wise-linear factor model — Spec(n), built.
func (c *Cluster) Platform(n int) (*platform.Platform, *platform.PiecewiseModel, error) {
	return c.Spec(n).Build()
}

// RunResult is one emulated execution.
type RunResult struct {
	// Time is the wall-clock time of the run in seconds (the "real"
	// execution time of the paper's comparisons).
	Time float64
	// ComputeSeconds is the per-rank time spent outside MPI (application
	// compute plus in-application probe time) — what TAU reports as
	// exclusive application time. Calibration divides counters by it.
	ComputeSeconds []float64
	// Engine exposes the kernel counters of the emulation.
	Engine sim.Stats
}

// rateFor returns the effective compute rate of one rank.
func (c *Cluster) rateFor(w npb.Workload, rank int) float64 {
	rate := c.BaseRate
	if w.WorkingSet(rank) > c.L2Bytes {
		rate *= c.OutOfCacheFactor
	}
	if c.JitterAmp > 0 {
		u := stats.NewRNG(c.Seed).Fork(uint64(rank)).Float64()
		rate *= 1 - c.JitterAmp*u
	}
	return rate
}

// InstrConfig builds an acquisition configuration for this cluster,
// installing its measured -O3 factor for the class.
func (c *Cluster) InstrConfig(mode instrument.Mode, compile instrument.Compile, class npb.Class) instrument.Config {
	cfg := instrument.Config{Mode: mode, Compile: compile, Class: class, Costs: c.ProbeCosts}
	if s, ok := c.O3Scales[class]; ok {
		cfg.O3ScaleOverride = s
	}
	return cfg
}

// CacheResident reports whether every rank of the workload fits in L2.
func (c *Cluster) CacheResident(w npb.Workload) bool {
	for r := 0; r < w.Ranks(); r++ {
		if w.WorkingSet(r) > c.L2Bytes {
			return false
		}
	}
	return true
}

// Run emulates one execution of w built and instrumented as icfg describes,
// and returns its wall-clock time. Use instrument.Counters for the counter
// readings and instrument.Acquired for the trace the run would produce.
func (c *Cluster) Run(w npb.Workload, icfg instrument.Config) (*RunResult, error) {
	n := w.Ranks()
	if n > c.Hosts {
		return nil, fmt.Errorf("ground: %s has %d nodes, workload needs %d", c.Name, c.Hosts, n)
	}
	plat, model, err := c.Platform(n)
	if err != nil {
		return nil, err
	}
	var opts []sim.Option
	if model != nil {
		opts = append(opts, sim.WithNetworkModel(model))
	}
	engine := sim.NewEngine(plat, opts...)
	world, err := mpi.NewWorld(engine, plat.Hosts()[:n], c.MPI)
	if err != nil {
		return nil, err
	}
	busy := make([]float64, n)
	for rank := 0; rank < n; rank++ {
		stream, err := w.Rank(rank)
		if err != nil {
			return nil, err
		}
		c.spawnRank(world, rank, c.rateFor(w, rank), stream, icfg, &busy[rank])
	}
	if err := engine.Run(); err != nil {
		return nil, fmt.Errorf("ground: emulating %s on %s: %w", w.Name(), c.Name, err)
	}
	return &RunResult{Time: engine.Now(), ComputeSeconds: busy, Engine: engine.Stats()}, nil
}

// spawnRank drives one rank's operation stream on the emulated machine.
func (c *Cluster) spawnRank(world *mpi.World, rank int, rate float64, stream npb.OpStream, icfg instrument.Config, busy *float64) {
	world.Spawn(rank, func(r *mpi.Rank) {
		var pending []*mpi.Request
		for {
			op, ok, err := stream.Next()
			if err != nil {
				panic(fmt.Errorf("rank %d: %w", rank, err))
			}
			if !ok {
				return
			}
			a := op.Action
			if a.Kind == trace.Compute {
				base, _, probeTime := icfg.ComputeCost(op)
				r.Proc().ExecuteAtRate(base, rate)
				if probeTime > 0 {
					r.Proc().Sleep(probeTime)
				}
				*busy += base/rate + probeTime
				continue
			}
			if a.Kind != trace.Init && a.Kind != trace.Finalize {
				if _, probeTime := icfg.MPICost(op); probeTime > 0 {
					r.Proc().Sleep(probeTime)
				}
			}
			switch a.Kind {
			case trace.Init, trace.Finalize:
			case trace.Send:
				r.Send(a.Peer, a.Bytes)
			case trace.ISend:
				pending = append(pending, r.Isend(a.Peer, a.Bytes))
			case trace.Recv:
				r.Recv(a.Peer)
			case trace.IRecv:
				pending = append(pending, r.Irecv(a.Peer))
			case trace.Wait:
				if len(pending) == 0 {
					panic(fmt.Errorf("rank %d: wait with no outstanding request", rank))
				}
				r.Wait(pending[0])
				pending = pending[1:]
			case trace.WaitAll:
				r.WaitAll(pending)
				pending = pending[:0]
			case trace.Barrier:
				r.Barrier()
			case trace.Bcast:
				r.Bcast(a.Bytes, a.Root)
			case trace.Reduce:
				r.Reduce(a.Bytes, a.Root)
			case trace.AllReduce:
				r.AllReduce(a.Bytes)
			case trace.AllToAll:
				r.AllToAll(a.Bytes)
			case trace.Gather:
				r.Gather(a.Bytes, a.Root)
			case trace.AllGather:
				r.AllGather(a.Bytes)
			default:
				panic(fmt.Errorf("rank %d: unsupported op %v", rank, a.Kind))
			}
		}
	})
}
