package sim

import "container/heap"

// timer is a scheduled callback in simulated time. Ties on deadline are
// broken by insertion sequence so runs are deterministic.
//
// The two hot kinds — waking a sleeping process and moving a comm out of
// its latency stage — are encoded as fields rather than closures: a closure
// per Sleep and per transfer is measurable GC pressure on large replays.
// fire covers everything else.
type timer struct {
	deadline float64
	seq      int64
	proc     *Proc // wake this process, or
	comm     *Comm // move this comm to its fluid stage, or
	fire     func()
	index    int
	canceled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// at schedules fire to run at absolute simulated time deadline.
func (e *Engine) at(deadline float64, fire func()) *timer {
	e.timerSeq++
	t := &timer{deadline: deadline, seq: e.timerSeq, fire: fire}
	heap.Push(&e.timers, t)
	return t
}

// cancel deactivates t and removes it from the heap immediately, via the
// index maintained by the heap operations. Historically cancel only set the
// flag and left the entry behind until its deadline, so replays that cancel
// many long-deadline timers grew the heap without bound.
func (e *Engine) cancel(t *timer) {
	if t == nil || t.canceled {
		return
	}
	t.canceled = true
	if t.index >= 0 {
		heap.Remove(&e.timers, t.index)
	}
}

// after schedules fire to run d simulated seconds from now.
func (e *Engine) after(d float64, fire func()) *timer {
	return e.at(e.now+d, fire)
}

// acquireTimer hands out a timer, recycling fired ones in pooled
// (pure-continuation) mode; no handle to a wake/flow timer ever escapes the
// kernel there, so reuse is safe.
func (e *Engine) acquireTimer() *timer {
	e.timerSeq++
	if n := len(e.timerPool); e.pooled && n > 0 {
		t := e.timerPool[n-1]
		e.timerPool[n-1] = nil
		e.timerPool = e.timerPool[:n-1]
		*t = timer{seq: e.timerSeq}
		return t
	}
	return &timer{seq: e.timerSeq}
}

// releaseTimer recycles a fired wake/flow timer. Closure timers (fire) are
// excluded: tests and models hold their handles for later cancellation.
func (e *Engine) releaseTimer(t *timer) {
	if !e.pooled || t.fire != nil {
		return
	}
	t.proc = nil
	t.comm = nil
	e.timerPool = append(e.timerPool, t)
}

// afterWake schedules p to be woken d simulated seconds from now.
func (e *Engine) afterWake(d float64, p *Proc) *timer {
	t := e.acquireTimer()
	t.deadline = e.now + d
	t.proc = p
	heap.Push(&e.timers, t)
	return t
}

// afterFlow schedules c's transition out of its latency stage d simulated
// seconds from now.
func (e *Engine) afterFlow(d float64, c *Comm) *timer {
	t := e.acquireTimer()
	t.deadline = e.now + d
	t.comm = c
	heap.Push(&e.timers, t)
	return t
}

// dispatch runs a fired timer's action, then recycles the timer when safe.
func (e *Engine) dispatch(t *timer) {
	switch {
	case t.proc != nil:
		e.wake(t.proc)
	case t.comm != nil:
		e.flowStage(t.comm)
	default:
		t.fire()
	}
	e.releaseTimer(t)
}
