package sim

import "container/heap"

// timer is a scheduled callback in simulated time. Ties on deadline are
// broken by insertion sequence so runs are deterministic.
type timer struct {
	deadline float64
	seq      int64
	fire     func()
	index    int
	canceled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// at schedules fire to run at absolute simulated time deadline.
func (e *Engine) at(deadline float64, fire func()) *timer {
	e.timerSeq++
	t := &timer{deadline: deadline, seq: e.timerSeq, fire: fire}
	heap.Push(&e.timers, t)
	return t
}

// after schedules fire to run d simulated seconds from now.
func (e *Engine) after(d float64, fire func()) *timer {
	return e.at(e.now+d, fire)
}
