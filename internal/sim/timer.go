package sim

import "container/heap"

// timer is a scheduled callback in simulated time. Ties on deadline are
// broken by insertion sequence so runs are deterministic.
//
// The two hot kinds — waking a sleeping process and moving a comm out of
// its latency stage — are encoded as fields rather than closures: a closure
// per Sleep and per transfer is measurable GC pressure on large replays.
// fire covers everything else.
type timer struct {
	deadline float64
	seq      int64
	proc     *Proc // wake this process, or
	comm     *Comm // move this comm to its fluid stage, or
	fire     func()
	index    int
	canceled bool
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// at schedules fire to run at absolute simulated time deadline.
func (e *Engine) at(deadline float64, fire func()) *timer {
	e.timerSeq++
	t := &timer{deadline: deadline, seq: e.timerSeq, fire: fire}
	heap.Push(&e.timers, t)
	return t
}

// cancel deactivates t and removes it from the heap immediately, via the
// index maintained by the heap operations. Historically cancel only set the
// flag and left the entry behind until its deadline, so replays that cancel
// many long-deadline timers grew the heap without bound.
func (e *Engine) cancel(t *timer) {
	if t == nil || t.canceled {
		return
	}
	t.canceled = true
	if t.index >= 0 {
		heap.Remove(&e.timers, t.index)
	}
}

// after schedules fire to run d simulated seconds from now.
func (e *Engine) after(d float64, fire func()) *timer {
	return e.at(e.now+d, fire)
}

// afterWake schedules p to be woken d simulated seconds from now.
func (e *Engine) afterWake(d float64, p *Proc) *timer {
	e.timerSeq++
	t := &timer{deadline: e.now + d, seq: e.timerSeq, proc: p}
	heap.Push(&e.timers, t)
	return t
}

// afterFlow schedules c's transition out of its latency stage d simulated
// seconds from now.
func (e *Engine) afterFlow(d float64, c *Comm) *timer {
	e.timerSeq++
	t := &timer{deadline: e.now + d, seq: e.timerSeq, comm: c}
	heap.Push(&e.timers, t)
	return t
}

// dispatch runs a fired timer's action.
func (e *Engine) dispatch(t *timer) {
	switch {
	case t.proc != nil:
		e.wake(t.proc)
	case t.comm != nil:
		e.flowStage(t.comm)
	default:
		t.fire()
	}
}
