package sim

import "fmt"

// Mbox identifies a mailbox without a string name. Named mailboxes (the
// string API used by tests and small models) get sequential ids in space 0;
// pair spaces (one per backend namespace, e.g. MPI's application and
// collective namespaces) encode (space, src rank, dst rank) directly into
// the integer, so a P-rank world needs no per-pair setup at all — the
// historical per-pair name precomputation and pinning was O(P²) strings and
// map entries, several GiB at 4096 ranks.
type Mbox uint64

const (
	mboxRankBits = 21 // 2M ranks per space
	mboxRankMask = 1<<mboxRankBits - 1
)

// PairSpace is a family of mailboxes indexed by a directed rank pair. When
// hosts is non-nil, the mailbox (src,dst) is pinned to hosts[dst]: detached
// (eager) sends start their transfer before the receive is posted, exactly
// what PinMailbox provides for named mailboxes.
type PairSpace struct {
	id     uint64
	prefix string
	hosts  []*Host // pinned destination hosts; nil = unpinned
}

// NewPairSpace registers a pair-mailbox namespace. prefix appears in
// diagnostics only (names render as "prefix:src>dst"). hosts, when non-nil,
// pins mailbox (src,dst) to hosts[dst] for eager-send semantics.
func (e *Engine) NewPairSpace(prefix string, hosts []*Host) *PairSpace {
	s := &PairSpace{id: uint64(len(e.spaces) + 1), prefix: prefix, hosts: hosts}
	e.spaces = append(e.spaces, s)
	return s
}

// Box returns the mailbox for the directed pair (src, dst).
func (s *PairSpace) Box(src, dst int) Mbox {
	if uint(src) > mboxRankMask || uint(dst) > mboxRankMask {
		panic(fmt.Sprintf("sim: pair mailbox rank out of range: (%d,%d)", src, dst))
	}
	return Mbox(s.id<<(2*mboxRankBits) | uint64(src)<<mboxRankBits | uint64(dst))
}

// mailbox is a rendezvous point where sends and receives match in FIFO
// order, as in SimGrid/SMPI. Mailboxes are created lazily on first use and
// recycled once both queues drain, so live memory tracks in-flight traffic
// rather than the quadratic number of rank pairs.
type mailbox struct {
	box   Mbox
	sends []*Comm // posted sends not yet matched by a recv
	recvs []*Comm // posted recvs not yet matched by a send
}

// box returns the mailbox for m, creating it (from the recycle pool if
// possible) on first use.
func (e *Engine) box(m Mbox) *mailbox {
	mb := e.boxes[m]
	if mb == nil {
		if n := len(e.boxPool); n > 0 {
			mb = e.boxPool[n-1]
			e.boxPool[n-1] = nil
			e.boxPool = e.boxPool[:n-1]
		} else {
			mb = &mailbox{}
		}
		mb.box = m
		e.boxes[m] = mb
	}
	return mb
}

// namedBox resolves a string-named mailbox (space 0), assigning it an id on
// first use.
func (e *Engine) namedBox(name string) *mailbox {
	id, ok := e.namedIDs[name]
	if !ok {
		e.namedNames = append(e.namedNames, name)
		id = Mbox(len(e.namedNames))
		e.namedIDs[name] = id
	}
	return e.box(id)
}

// reapBox recycles a mailbox whose queues have both drained. The next post
// to the same Mbox simply recreates it, so this is purely a memory bound:
// long replays touch quadratically many pairs but keep only the active ones
// alive.
func (e *Engine) reapBox(mb *mailbox) {
	if len(mb.sends) != 0 || len(mb.recvs) != 0 {
		return
	}
	delete(e.boxes, mb.box)
	mb.box = 0
	mb.sends = mb.sends[:0]
	mb.recvs = mb.recvs[:0]
	e.boxPool = append(e.boxPool, mb)
}

// boxName renders a mailbox id for diagnostics. Pair names are formatted on
// demand and never stored.
func (e *Engine) boxName(m Mbox) string {
	sid := uint64(m) >> (2 * mboxRankBits)
	if sid == 0 {
		if m == 0 {
			return "<none>"
		}
		return e.namedNames[m-1]
	}
	s := e.spaces[sid-1]
	return fmt.Sprintf("%s:%d>%d", s.prefix, (uint64(m)>>mboxRankBits)&mboxRankMask, uint64(m)&mboxRankMask)
}

// pinnedHost returns the host mb is pinned to, or nil: the declared
// destination of receives, which lets detached sends start early.
func (e *Engine) pinnedHost(mb *mailbox) *Host {
	sid := uint64(mb.box) >> (2 * mboxRankBits)
	if sid == 0 {
		return e.mailboxHosts[e.namedNames[mb.box-1]]
	}
	s := e.spaces[sid-1]
	if s.hosts == nil {
		return nil
	}
	return s.hosts[uint64(mb.box)&mboxRankMask]
}

// PinMailbox declares that receives on the named mailbox will always be
// posted from host h. This lets detached (eager) sends start their transfer
// before the receive is posted, which is exactly the behaviour the paper's
// SMPI backend models for small messages. Pair spaces pin whole namespaces
// at creation instead (NewPairSpace).
func (e *Engine) PinMailbox(name string, h *Host) {
	e.mailboxHosts[name] = h
	e.namedBox(name) // ensure the name is registered for pinnedHost lookups
}
