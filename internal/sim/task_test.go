package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Tests of the continuation scheduler: tasks and micro-op programs must be
// observationally identical to goroutine-backed processes — same simulated
// times, same stats, same diagnostics.

func TestSpawnTaskSleepSequence(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1e9}})
	h := &Host{Name: "h", Speed: 1e9}
	state := 0
	var times []float64
	e.SpawnTask("t", h, func(tk *Task) Step {
		times = append(times, tk.Now())
		if state++; state <= 3 {
			return tk.Sleep(0.5)
		}
		return Done
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1.5 {
		t.Fatalf("end time = %v, want 1.5", e.Now())
	}
	if len(times) != 4 || times[1] != 0.5 || times[3] != 1.5 {
		t.Fatalf("wake times = %v", times)
	}
	// One context switch per resume, exactly as a goroutine proc counts.
	if cs := e.Stats().ContextSwitches; cs != 4 {
		t.Fatalf("context switches = %d, want 4", cs)
	}
}

func TestSpawnTaskStepWithoutBlockingFails(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1e9}})
	h := &Host{Name: "h", Speed: 1e9}
	e.SpawnTask("bad", h, func(tk *Task) Step { return Blocked })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "step returned Blocked without blocking") {
		t.Fatalf("err = %v, want step-protocol violation", err)
	}
}

func TestTaskFailSurfacesError(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1e9}})
	h := &Host{Name: "h", Speed: 1e9}
	boom := errors.New("boom")
	e.SpawnTask("t", h, func(tk *Task) Step { tk.Fail(boom); return Done })
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestProgFeedErrorAndPanicParity(t *testing.T) {
	h := func() (*Engine, *Host) {
		e := NewEngine(pairRouter{&Link{Bandwidth: 1e9}})
		return e, &Host{Name: "h", Speed: 1e9}
	}
	boom := errors.New("malformed")
	e, host := h()
	e.SpawnProg("r", host, func(p *Prog) (bool, error) { return false, boom })
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("feed error: %v, want boom", err)
	}
	// A panic inside the feed is reported like a panic in a goroutine body.
	e, host = h()
	e.SpawnProg("r", host, func(p *Prog) (bool, error) { panic("kaput") })
	errProg := e.Run()
	e, host = h()
	e.Spawn("r", host, func(p *Proc) { panic("kaput") })
	errGo := e.Run()
	if errProg == nil || errGo == nil || errProg.Error() != errGo.Error() {
		t.Fatalf("panic reports differ:\n prog: %v\n goro: %v", errProg, errGo)
	}
}

// progPingPong runs the canonical matched put/get exchange in both schedulers
// over identical pair mailboxes and returns (end time, stats).
func progPingPong(t *testing.T, rounds int, continuation bool) (float64, Stats) {
	t.Helper()
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-6}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	space := e.NewPairSpace("t", hs)
	ab, ba := space.Box(0, 1), space.Box(1, 0)
	if continuation {
		i, j := 0, 0
		e.SpawnProg("a", hs[0], func(p *Prog) (bool, error) {
			if i++; i > rounds {
				return false, nil
			}
			p.Put(ab, 1024, 0)
			p.WaitReg(0)
			p.Get(ba, 1)
			p.WaitReg(1)
			return true, nil
		})
		e.SpawnProg("b", hs[1], func(p *Prog) (bool, error) {
			if j++; j > rounds {
				return false, nil
			}
			p.Get(ab, 0)
			p.WaitReg(0)
			p.Put(ba, 1024, 1)
			p.WaitReg(1)
			return true, nil
		})
	} else {
		e.Spawn("a", hs[0], func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.PutBox(ab, 1024)
				p.GetBox(ba)
			}
		})
		e.Spawn("b", hs[1], func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.GetBox(ab)
				p.PutBox(ba, 1024)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now(), e.Stats()
}

func TestProgPingPongBitIdenticalToGoroutines(t *testing.T) {
	endC, statsC := progPingPong(t, 100, true)
	endG, statsG := progPingPong(t, 100, false)
	if endC != endG {
		t.Fatalf("end time %v (continuation) != %v (goroutine)", endC, endG)
	}
	if statsC != statsG {
		t.Fatalf("stats diverge:\n continuation: %+v\n goroutine:    %+v", statsC, statsG)
	}
}

func TestProgPendingFIFO(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-6}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	space := e.NewPairSpace("t", hs)
	ab := space.Box(0, 1)
	sent := 0
	e.SpawnProg("s", hs[0], func(p *Prog) (bool, error) {
		switch sent++; sent {
		case 1:
			p.PutPending(ab, 100)
			p.PutPending(ab, 200)
			p.PushPendingDone() // a born-done request interleaved in the FIFO
			p.PutPending(ab, 300)
		case 2:
			p.WaitPending()
			p.WaitPending()
			p.WaitAllPending()
		default:
			return false, nil
		}
		return true, nil
	})
	got := 0
	e.SpawnProg("r", hs[1], func(p *Prog) (bool, error) {
		if got++; got > 3 {
			return false, nil
		}
		p.Get(ab, 0)
		p.WaitReg(0)
		return true, nil
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestProgBarrierAgainstGoroutine(t *testing.T) {
	run := func(continuation bool) (float64, Stats) {
		e := NewEngine(pairRouter{&Link{Bandwidth: 1e9}})
		hs := newTestHosts(4, 1e9)
		bar := e.NewBarrier(4)
		for i := 0; i < 4; i++ {
			d := float64(i) * 0.25
			if continuation {
				n := 0
				e.SpawnProg(fmt.Sprintf("p%d", i), hs[i], func(p *Prog) (bool, error) {
					if n++; n > 1 {
						return false, nil
					}
					p.Sleep(d)
					p.Await(bar)
					p.Sleep(0.1)
					return true, nil
				})
			} else {
				e.Spawn(fmt.Sprintf("p%d", i), hs[i], func(p *Proc) {
					p.Sleep(d)
					bar.Await(p)
					p.Sleep(0.1)
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	endC, statsC := run(true)
	endG, statsG := run(false)
	if endC != endG || endC != 0.85 {
		t.Fatalf("end times: continuation %v, goroutine %v, want 0.85", endC, endG)
	}
	if statsC != statsG {
		t.Fatalf("stats diverge:\n continuation: %+v\n goroutine:    %+v", statsC, statsG)
	}
}

// TestBlockedOnCommClearedAfterWait pins the unblock path: once a process
// resumes from a comm wait, its blockInfo must not keep the comm alive (the
// reference would defeat pooling and could leak a recycled comm into a later
// deadlock report).
func TestBlockedOnCommClearedAfterWait(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-6}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	checked := false
	e.Spawn("s", hs[0], func(p *Proc) { p.Put("mb", 1024) })
	e.Spawn("r", hs[1], func(p *Proc) {
		p.Get("mb")
		if p.blockedOn.comm != nil {
			t.Errorf("blockedOn.comm = %v after wait, want nil", p.blockedOn.comm)
		}
		checked = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("receiver never ran")
	}
}

// TestDeadlockReportIdenticalSchedulers replays the same never-matched
// receive under both schedulers and requires byte-identical deadlock
// diagnostics — the lazily rendered pair-mailbox names must reproduce the
// historical text exactly.
func TestDeadlockReportIdenticalSchedulers(t *testing.T) {
	run := func(continuation bool) string {
		e := NewEngine(pairRouter{&Link{Bandwidth: 1e9, Latency: 1e-6}})
		hs := newTestHosts(2, 1e9)
		space := e.NewPairSpace("p", hs)
		box := space.Box(1, 0)
		if continuation {
			n := 0
			e.SpawnProg("rank0", hs[0], func(p *Prog) (bool, error) {
				if n++; n > 1 {
					return false, nil
				}
				p.Get(box, 0)
				p.WaitReg(0)
				return true, nil
			})
		} else {
			e.Spawn("rank0", hs[0], func(p *Proc) { p.GetBox(box) })
		}
		err := e.Run()
		var d *DeadlockError
		if !errors.As(err, &d) {
			t.Fatalf("err = %v, want DeadlockError", err)
		}
		return err.Error()
	}
	gotC, gotG := run(true), run(false)
	if gotC != gotG {
		t.Fatalf("deadlock reports diverge:\n continuation: %s\n goroutine:    %s", gotC, gotG)
	}
	const golden = `sim: deadlock at t=0 with 1 blocked process(es): rank0: wait(comm 1 on "p:1>0")`
	if gotC != golden {
		t.Fatalf("deadlock report = %q, want %q", gotC, golden)
	}
}
