package sim

import (
	"errors"
	"math"
	"testing"
)

// pairRouter routes every pair over a fixed shared link; same-host routes
// are empty (infinitely fast after zero latency).
type pairRouter struct{ link *Link }

func (r pairRouter) Route(src, dst *Host) Route {
	if src == dst {
		return Route{}
	}
	return Route{Links: []*Link{r.link}, Latency: r.link.Latency}
}

// tableRouter routes by explicit (src,dst) table.
type tableRouter map[[2]*Host]Route

func (r tableRouter) Route(src, dst *Host) Route { return r[[2]*Host{src, dst}] }

func newTestHosts(n int, speed float64) []*Host {
	hs := make([]*Host, n)
	for i := range hs {
		hs[i] = &Host{Name: string(rune('a' + i)), Speed: speed}
	}
	return hs
}

const tol = 1e-9

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-4}
	e := NewEngine(pairRouter{link})
	h := &Host{Name: "h", Speed: 1e9}
	var end float64
	e.Spawn("p", h, func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(0.25)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, end, 1.75, "end time")
	approx(t, e.Now(), 1.75, "engine time")
}

func TestExecuteUsesHostSpeed(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	h := &Host{Name: "h", Speed: 2e9}
	e.Spawn("p", h, func(p *Proc) { p.Execute(4e9) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, e.Now(), 2.0, "execute time")
}

func TestExecuteAtRateOverridesSpeed(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	h := &Host{Name: "h", Speed: 1e9}
	e.Spawn("p", h, func(p *Proc) { p.ExecuteAtRate(1e9, 0.5e9) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, e.Now(), 2.0, "execute time")
}

func TestExecuteZeroAmountIsFree(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	h := &Host{Name: "h", Speed: 1e9}
	e.Spawn("p", h, func(p *Proc) { p.Execute(0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, e.Now(), 0, "time")
}

func TestPingTime(t *testing.T) {
	// One message of 1e6 B over a 1e8 B/s link with 1 ms latency:
	// t = 0.001 + 0.01 = 0.011.
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 1e-3}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.Spawn("sender", hs[0], func(p *Proc) { p.Put("mb", 1e6) })
	var recvEnd float64
	e.Spawn("receiver", hs[1], func(p *Proc) {
		p.Get("mb")
		recvEnd = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, recvEnd, 0.011, "receive end")
}

func TestBlockingSendWaitsForReceiver(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var sendEnd float64
	e.Spawn("sender", hs[0], func(p *Proc) {
		p.Put("mb", 1e6) // 0.01 s transfer
		sendEnd = p.Now()
	})
	e.Spawn("receiver", hs[1], func(p *Proc) {
		p.Sleep(5) // receiver shows up late
		p.Get("mb")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, sendEnd, 5.01, "blocking send completes only after match+transfer")
}

func TestTwoFlowsShareLink(t *testing.T) {
	// Two simultaneous 1e6 B transfers over one 1e8 B/s link: each gets
	// 5e7 B/s, both complete at 0.02 s (zero latency).
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(4, 1e9)
	ends := make([]float64, 2)
	e.Spawn("s0", hs[0], func(p *Proc) { p.Put("a", 1e6); ends[0] = p.Now() })
	e.Spawn("s1", hs[1], func(p *Proc) { p.Put("b", 1e6); ends[1] = p.Now() })
	e.Spawn("r0", hs[2], func(p *Proc) { p.Get("a") })
	e.Spawn("r1", hs[3], func(p *Proc) { p.Get("b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, ends[0], 0.02, "flow 0 end")
	approx(t, ends[1], 0.02, "flow 1 end")
}

func TestMaxMinTwoBottlenecks(t *testing.T) {
	// Flow A crosses l1 (cap 10); flow B crosses l1 and l2 (cap 4).
	// Max-min: B limited by l2 at 4, A gets the rest of l1: 6.
	hs := newTestHosts(4, 1e9)
	l1 := &Link{Name: "l1", Bandwidth: 10, Latency: 0}
	l2 := &Link{Name: "l2", Bandwidth: 4, Latency: 0}
	r := tableRouter{
		{hs[0], hs[1]}: {Links: []*Link{l1}},
		{hs[2], hs[3]}: {Links: []*Link{l1, l2}},
	}
	e := NewEngine(r)
	endA, endB := 0.0, 0.0
	e.Spawn("sA", hs[0], func(p *Proc) { p.Put("a", 60); endA = p.Now() })
	e.Spawn("sB", hs[2], func(p *Proc) { p.Put("b", 60); endB = p.Now() })
	e.Spawn("rA", hs[1], func(p *Proc) { p.Get("a") })
	e.Spawn("rB", hs[3], func(p *Proc) { p.Get("b") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// B finishes at 60/4 = 15. A runs at 6 until B's share frees... but B
	// finishes after A: A transfers 60 B at 6 B/s = 10 s < 15, so A ends at
	// 10 and B then speeds up to 4 (still its cap by l2). B: 40 B done at
	// t=10, remaining 20 at 4 B/s -> ends 15.
	approx(t, endA, 10, "flow A end")
	approx(t, endB, 15, "flow B end")
}

type capModel struct{ cap float64 }

func (m capModel) Effective(route Route, size float64) (float64, float64) {
	return route.Latency, m.cap
}

func TestRateCapLimitsFlow(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 0}
	e := NewEngine(pairRouter{link}, WithNetworkModel(capModel{cap: 1e6}))
	hs := newTestHosts(2, 1e9)
	e.Spawn("s", hs[0], func(p *Proc) { p.Put("mb", 1e6) })
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, e.Now(), 1.0, "capped transfer time")
}

func TestDetachedSendWithPinnedMailboxStartsEarly(t *testing.T) {
	// With the mailbox pinned, a detached send starts moving immediately;
	// a receive posted later than the transfer duration returns at once.
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 1e-3}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.PinMailbox("mb", hs[1])
	var sendEnd, recvEnd float64
	e.Spawn("s", hs[0], func(p *Proc) {
		p.PutDetached("mb", 1e6, nil) // in flight: done at 0.011
		sendEnd = p.Now()
	})
	e.Spawn("r", hs[1], func(p *Proc) {
		p.Sleep(1)
		p.Get("mb")
		recvEnd = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, sendEnd, 0, "detached send returns immediately")
	approx(t, recvEnd, 1, "late receive finds buffered data")
}

func TestDetachedSendReceiverWaitsForArrival(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 1e-3}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.PinMailbox("mb", hs[1])
	var recvEnd float64
	e.Spawn("s", hs[0], func(p *Proc) {
		p.Sleep(0.5)
		p.PutDetached("mb", 1e6, nil)
	})
	e.Spawn("r", hs[1], func(p *Proc) {
		p.Get("mb") // posted first; data arrives at 0.5+0.011
		recvEnd = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, recvEnd, 0.511, "receive completes at arrival")
}

func TestDetachedSendUnpinnedWaitsForMatch(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 1e-3}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var recvEnd float64
	e.Spawn("s", hs[0], func(p *Proc) { p.PutDetached("mb", 1e6, nil) })
	e.Spawn("r", hs[1], func(p *Proc) {
		p.Sleep(1)
		p.Get("mb") // transfer starts only now (unpinned mailbox)
		recvEnd = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, recvEnd, 1.011, "transfer starts at match")
}

func TestZeroSizeCommCompletesAfterLatency(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 2e-3}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.Spawn("s", hs[0], func(p *Proc) { p.Put("mb", 0) })
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, e.Now(), 2e-3, "zero-size comm time")
}

func TestPayloadDelivered(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var got any
	e.Spawn("s", hs[0], func(p *Proc) {
		c := p.PutPayload("mb", 8, "hello")
		p.WaitComm(c)
	})
	e.Spawn("r", hs[1], func(p *Proc) { got = p.Get("mb").Payload })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("payload = %v, want hello", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e8, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(1, 1e9)
	e.Spawn("r", hs[0], func(p *Proc) { p.Get("never") })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 process", d.Blocked)
	}
}

func TestNegativeComputeFaults(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	hs := newTestHosts(1, 1e9)
	e.Spawn("p", hs[0], func(p *Proc) { p.Execute(-1) })
	if err := e.Run(); err == nil {
		t.Fatal("expected error for negative compute")
	}
}

func TestPanicInBodyBecomesError(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	hs := newTestHosts(1, 1e9)
	e.Spawn("p", hs[0], func(p *Proc) { panic("boom") })
	if err := e.Run(); err == nil {
		t.Fatal("expected error from panicking body")
	}
}

func TestZeroBandwidthLinkIsError(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 0, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.Spawn("s", hs[0], func(p *Proc) { p.Put("mb", 10) })
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb") })
	if err := e.Run(); err == nil {
		t.Fatal("expected error for zero-bandwidth link")
	}
}

func TestWaitAllAndTest(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e6, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var tested, after bool
	e.Spawn("s", hs[0], func(p *Proc) {
		c1 := p.PutAsync("a", 1e6)
		c2 := p.PutAsync("b", 1e6)
		tested = p.TestComm(c1) // nothing matched yet
		p.WaitAll([]*Comm{c1, c2})
		after = p.TestComm(c1) && p.TestComm(c2)
	})
	e.Spawn("r", hs[1], func(p *Proc) {
		p.Get("a")
		p.Get("b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tested {
		t.Error("TestComm returned true before match")
	}
	if !after {
		t.Error("TestComm returned false after WaitAll")
	}
	// Sequential matching: both 1e6 B flows share sequentially-ish; total
	// bytes 2e6 over 1e6 B/s => 2 s regardless of interleaving.
	approx(t, e.Now(), 2, "total time")
}

func TestSpawnFromRunningProcess(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1e9, Latency: 0}})
	hs := newTestHosts(2, 1e9)
	var childRan bool
	e.Spawn("parent", hs[0], func(p *Proc) {
		p.Engine().Spawn("child", hs[1], func(c *Proc) {
			c.Sleep(1)
			childRan = true
		})
		p.Sleep(2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
	approx(t, e.Now(), 2, "end time")
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (float64, Stats) {
		link := &Link{Name: "l", Bandwidth: 1e7, Latency: 1e-4}
		e := NewEngine(pairRouter{link})
		hs := newTestHosts(8, 1e9)
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("s", hs[i], func(p *Proc) {
				for k := 0; k < 10; k++ {
					p.Put(string(rune('a'+i)), float64(1000*(k+1)))
					p.Execute(1e6)
				}
			})
			e.Spawn("r", hs[4+i], func(p *Proc) {
				for k := 0; k < 10; k++ {
					p.Get(string(rune('a' + i)))
					p.Execute(2e6)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("non-deterministic end time: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("non-deterministic stats: %+v vs %+v", s1, s2)
	}
}

func TestCommStateTransitions(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e6, Latency: 0.5}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var c *Comm
	var stPending, stDone CommState
	e.Spawn("s", hs[0], func(p *Proc) {
		c = p.PutAsync("mb", 1e6)
		stPending = c.State()
		p.WaitComm(c)
		stDone = c.State()
	})
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if stPending != CommPending {
		t.Errorf("state before match = %v, want pending", stPending)
	}
	if stDone != CommDone {
		t.Errorf("state after wait = %v, want done", stDone)
	}
	approx(t, c.FinishTime(), 1.5, "finish time")
}

func TestStatsCount(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.Spawn("s", hs[0], func(p *Proc) { p.Put("mb", 1); p.Put("mb", 1) })
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb"); p.Get("mb") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.CommsStarted != 2 || st.CommsCompleted != 2 {
		t.Fatalf("comm stats = %+v, want 2 started/completed", st)
	}
	if st.ContextSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
}
