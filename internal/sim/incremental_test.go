package sim

import (
	"fmt"
	"math"
	"testing"

	"tireplay/internal/stats"
)

// referenceShares is the historical from-scratch max-min solver, preserved
// verbatim as the oracle for the incremental solver: one pass of progressive
// filling over the complete flow set, re-deriving every rate. The
// incremental solver must reproduce its allocation bit-for-bit after any
// sequence of arrivals and departures.
func referenceShares(flows []*flow) []float64 {
	rates := make([]float64, len(flows))
	if len(flows) == 0 {
		return rates
	}
	type scratch struct {
		rem float64
		n   int
	}
	idx := make(map[*Link]int)
	var states []scratch
	for _, f := range flows {
		for _, l := range f.links {
			if _, ok := idx[l]; !ok {
				idx[l] = len(states)
				states = append(states, scratch{rem: l.Bandwidth})
			}
			states[idx[l]].n++
		}
	}
	unfixed := len(flows)
	fixed := make([]bool, len(flows))
	for unfixed > 0 {
		level := math.Inf(1)
		for _, s := range states {
			if s.n > 0 {
				if share := s.rem / float64(s.n); share < level {
					level = share
				}
			}
		}
		capBound := false
		for i, f := range flows {
			if !fixed[i] && f.cap > 0 && f.cap <= level {
				level = f.cap
				capBound = true
			}
		}
		if math.IsInf(level, 1) {
			for i := range flows {
				if !fixed[i] {
					rates[i] = math.Inf(1)
					fixed[i] = true
					unfixed--
				}
			}
			break
		}
		const relEps = 1e-12
		progressed := false
		for i, f := range flows {
			if fixed[i] {
				continue
			}
			constrained := capBound && f.cap > 0 && f.cap <= level*(1+relEps)
			if !constrained {
				for _, l := range f.links {
					s := &states[idx[l]]
					if s.n > 0 && s.rem/float64(s.n) <= level*(1+relEps) {
						constrained = true
						break
					}
				}
			}
			if !constrained {
				continue
			}
			rates[i] = level
			fixed[i] = true
			unfixed--
			progressed = true
			for _, l := range f.links {
				s := &states[idx[l]]
				s.rem -= level
				if s.rem < 0 {
					s.rem = 0
				}
				s.n--
			}
		}
		if !progressed {
			for i, f := range flows {
				if fixed[i] {
					continue
				}
				rates[i] = level
				fixed[i] = true
				unfixed--
				for _, l := range f.links {
					s := &states[idx[l]]
					s.rem -= level
					if s.rem < 0 {
						s.rem = 0
					}
					s.n--
				}
			}
		}
	}
	return rates
}

// TestIncrementalSolverMatchesReference drives randomized flow
// arrival/departure sequences through the incremental component solver and
// checks after every mutation that each active flow's rate is bit-identical
// to a from-scratch progressive filling of the full flow set.
func TestIncrementalSolverMatchesReference(t *testing.T) {
	rng := stats.NewRNG(0x5eed)
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		nLinks := 2 + int(rng.Uint64()%10)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = &Link{Name: fmt.Sprintf("l%d", i), Bandwidth: 1 + 99*rng.Float64()}
		}
		e := NewEngine(pairRouter{links[0]})
		var live []*flow
		for step := 0; step < 80; step++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				maxLinks := 3
				if nLinks < maxLinks {
					maxLinks = nLinks
				}
				n := 1 + int(rng.Uint64()%uint64(maxLinks))
				seen := map[int]bool{}
				var ls []*Link
				for len(ls) < n {
					k := int(rng.Uint64() % uint64(nLinks))
					if !seen[k] {
						seen[k] = true
						ls = append(ls, links[k])
					}
				}
				var cap float64
				if rng.Float64() < 0.4 {
					cap = 0.5 + 49*rng.Float64()
				}
				f := &flow{comm: mkComm(1e6), links: ls, cap: cap, rem: 1e6}
				e.addFlow(f)
				live = append(live, f)
			} else {
				i := int(rng.Uint64() % uint64(len(live)))
				e.removeFlow(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			e.recomputeShares()
			want := referenceShares(live)
			for i, f := range live {
				if f.rate != want[i] {
					t.Fatalf("trial %d step %d: flow %d rate = %v, want %v (bit-identical)",
						trial, step, i, f.rate, want[i])
				}
			}
		}
	}
}

// crossRouter is a full-bisection test topology: every host owns an uplink
// and a downlink, and a fraction of the pairs additionally cross a shared
// backbone, so concurrent transfers form several connected components of
// varying size.
type crossRouter struct {
	up, down []*Link
	backbone *Link
	hosts    map[*Host]int
}

func (r crossRouter) Route(src, dst *Host) Route {
	s, d := r.hosts[src], r.hosts[dst]
	ls := []*Link{r.up[s]}
	if (s+d)%3 == 0 {
		ls = append(ls, r.backbone)
	}
	ls = append(ls, r.down[d])
	lat := 0.0
	for _, l := range ls {
		lat += l.Latency
	}
	return Route{Links: ls, Latency: lat}
}

// runEquivalenceWorkload executes one randomized multi-component workload
// and returns the end time plus every comm's finish time.
func runEquivalenceWorkload(seed uint64, opts ...Option) (float64, []float64) {
	rng := stats.NewRNG(seed)
	n := 6 + int(rng.Uint64()%6) // sender/receiver pairs
	r := crossRouter{
		backbone: &Link{Name: "bb", Bandwidth: 5e7 * (1 + rng.Float64()), Latency: 1e-5},
		hosts:    make(map[*Host]int),
	}
	hosts := make([]*Host, 2*n)
	for i := range hosts {
		hosts[i] = &Host{Name: fmt.Sprintf("h%d", i), Speed: 1e9}
		r.hosts[hosts[i]] = i
	}
	for i := 0; i < 2*n; i++ {
		r.up = append(r.up, &Link{Name: fmt.Sprintf("u%d", i), Bandwidth: 1e7 * (1 + rng.Float64()), Latency: 1e-6})
		r.down = append(r.down, &Link{Name: fmt.Sprintf("d%d", i), Bandwidth: 1e7 * (1 + rng.Float64()), Latency: 1e-6})
	}
	// Pre-generate the whole workload so both engine configurations replay
	// the exact same program.
	rounds := 4 + int(rng.Uint64()%4)
	sizes := make([][]float64, n)
	pauses := make([][]float64, n)
	for i := range sizes {
		sizes[i] = make([]float64, rounds)
		pauses[i] = make([]float64, rounds)
		for k := range sizes[i] {
			sizes[i][k] = 1e3 + 1e6*rng.Float64()
			pauses[i][k] = 1e-4 * rng.Float64()
		}
	}

	e := NewEngine(r, opts...)
	comms := make([][]*Comm, n)
	for i := 0; i < n; i++ {
		i := i
		e.Spawn(fmt.Sprintf("s%d", i), hosts[i], func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Sleep(pauses[i][k])
				c := p.Put(fmt.Sprintf("mb%d", i), sizes[i][k])
				comms[i] = append(comms[i], c)
			}
		})
		e.Spawn(fmt.Sprintf("r%d", i), hosts[n+i], func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Get(fmt.Sprintf("mb%d", i))
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	var finishes []float64
	for _, cs := range comms {
		for _, c := range cs {
			finishes = append(finishes, c.FinishTime())
		}
	}
	return e.Now(), finishes
}

// TestEngineIncrementalEquivalence runs full simulations under the
// incremental solver and the from-scratch reference mode and requires
// bit-identical simulated times — end time and every transfer's finish.
func TestEngineIncrementalEquivalence(t *testing.T) {
	seeds := []uint64{1, 2, 3, 7, 11, 13, 42, 1e6 + 7}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		endInc, finInc := runEquivalenceWorkload(seed)
		endRef, finRef := runEquivalenceWorkload(seed, WithFromScratchSharing())
		if endInc != endRef {
			t.Fatalf("seed %d: end time %v (incremental) != %v (from-scratch)", seed, endInc, endRef)
		}
		if len(finInc) != len(finRef) {
			t.Fatalf("seed %d: %d comms (incremental) != %d (from-scratch)", seed, len(finInc), len(finRef))
		}
		for i := range finInc {
			if finInc[i] != finRef[i] {
				t.Fatalf("seed %d: comm %d finish %v != %v", seed, i, finInc[i], finRef[i])
			}
		}
	}
}

// TestIncrementalResolvesFewerFlows checks the point of the exercise: on a
// multi-component workload the incremental solver passes far fewer flows
// through progressive filling than the from-scratch mode does, while
// (per the equivalence tests) producing the same times.
func TestIncrementalResolvesFewerFlows(t *testing.T) {
	run := func(opts ...Option) Stats {
		rng := stats.NewRNG(99)
		_ = rng
		e, hosts := equivalenceEngine(opts...)
		n := len(hosts) / 2
		for i := 0; i < n; i++ {
			i := i
			e.Spawn(fmt.Sprintf("s%d", i), hosts[i], func(p *Proc) {
				for k := 0; k < 6; k++ {
					p.Put(fmt.Sprintf("mb%d", i), 1e5*float64(1+(i+k)%5))
				}
			})
			e.Spawn(fmt.Sprintf("r%d", i), hosts[n+i], func(p *Proc) {
				for k := 0; k < 6; k++ {
					p.Get(fmt.Sprintf("mb%d", i))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	inc := run()
	ref := run(WithFromScratchSharing())
	if inc.FlowsResolved >= ref.FlowsResolved {
		t.Fatalf("incremental resolved %d flows, from-scratch %d: expected strictly fewer",
			inc.FlowsResolved, ref.FlowsResolved)
	}
	if inc.ComponentsResolved == 0 {
		t.Fatal("no components recorded by the incremental solver")
	}
}

// equivalenceEngine builds a 16-pair full-bisection engine for counter and
// stress tests.
func equivalenceEngine(opts ...Option) (*Engine, []*Host) {
	const n = 16
	r := crossRouter{
		backbone: &Link{Name: "bb", Bandwidth: 1e9, Latency: 1e-5},
		hosts:    make(map[*Host]int),
	}
	hosts := make([]*Host, 2*n)
	for i := range hosts {
		hosts[i] = &Host{Name: fmt.Sprintf("h%d", i), Speed: 1e9}
		r.hosts[hosts[i]] = i
	}
	for i := 0; i < 2*n; i++ {
		r.up = append(r.up, &Link{Name: fmt.Sprintf("u%d", i), Bandwidth: 1e7, Latency: 1e-6})
		r.down = append(r.down, &Link{Name: fmt.Sprintf("d%d", i), Bandwidth: 1e7, Latency: 1e-6})
	}
	return NewEngine(r, opts...), hosts
}
