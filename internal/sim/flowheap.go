package sim

import "container/heap"

// flowHeap is an indexed min-heap of active flows keyed by projected
// completion time, with arrival-sequence tie-breaking so same-instant
// completions are processed in arrival order. It replaces the historical
// per-event linear scan over all flows: the earliest completion is read off
// the top, and a flow's key is touched only when the solver changes its
// rate.
type flowHeap []*flow

func (h flowHeap) Len() int { return len(h) }

func (h flowHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}

func (h flowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *flowHeap) Push(x any) {
	f := x.(*flow)
	f.heapIdx = len(*h)
	*h = append(*h, f)
}

func (h *flowHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.heapIdx = -1
	*h = old[:n-1]
	return f
}

func (h *flowHeap) push(f *flow)   { heap.Push(h, f) }
func (h *flowHeap) fix(f *flow)    { heap.Fix(h, f.heapIdx) }
func (h *flowHeap) remove(f *flow) { heap.Remove(h, f.heapIdx) }
func (h *flowHeap) pop() *flow     { return heap.Pop(h).(*flow) }
