package sim

import "fmt"

// Barrier is a reusable n-party synchronization point for simulated
// processes. The MSG-style replay backend uses it to implement monolithic
// collective models: every rank blocks until the last one arrives, then all
// resume (and typically sleep the modelled collective duration).
type Barrier struct {
	engine  *Engine
	n       int
	gen     int64
	count   int
	waiting []*Proc
}

// NewBarrier creates a barrier for n parties.
func (e *Engine) NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("sim: NewBarrier(%d): need at least one party", n))
	}
	return &Barrier{engine: e, n: n}
}

// Await blocks p until n processes have arrived. It returns true on the
// process that arrived last (useful to compute a shared quantity exactly
// once per round). The barrier is reusable: generations keep successive
// rounds apart.
func (b *Barrier) Await(p *Proc) bool {
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		for _, w := range b.waiting {
			b.engine.wake(w)
		}
		b.waiting = b.waiting[:0]
		return true
	}
	my := b.gen
	b.waiting = append(b.waiting, p)
	for b.gen == my {
		p.block(blockInfo{what: "barrier", n: b.count, m: b.n})
	}
	return false
}
