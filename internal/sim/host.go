// Package sim implements the discrete-event simulation kernel the replay
// framework is built on. It plays the role SimGrid's SURF/SIMIX layers play
// in the paper: simulated processes run as goroutines scheduled in lockstep
// (exactly one at a time, in deterministic FIFO order), computations are
// modelled as timers, and communications as fluid flows that share link
// bandwidth under bounded max-min fairness.
package sim

import "fmt"

// Host is a computing resource. One simulated process is typically pinned to
// one host (one core), so computations do not contend with each other: an
// Execute of n instructions at rate r lasts exactly n/r seconds.
type Host struct {
	// Name identifies the host in routes and error messages.
	Name string
	// Speed is the default compute rate in instructions per second used by
	// Proc.Execute. Calibration (Section 3.4 of the paper) determines this
	// value for simulated platforms.
	Speed float64
}

func (h *Host) String() string {
	if h == nil {
		return "<nil host>"
	}
	return h.Name
}

// Link is a network resource with a capacity shared by the flows that cross
// it. Latency is accounted once per transfer, before the fluid stage.
type Link struct {
	// Name identifies the link.
	Name string
	// Bandwidth is the capacity in bytes per second. It must be positive for
	// any link placed on a route.
	Bandwidth float64
	// Latency in seconds, summed along a route.
	Latency float64
}

func (l *Link) String() string {
	if l == nil {
		return "<nil link>"
	}
	return fmt.Sprintf("%s(bw=%g,lat=%g)", l.Name, l.Bandwidth, l.Latency)
}

// Route is the ordered set of links a transfer between two hosts traverses,
// plus the total base latency of the path (usually the sum of the link
// latencies, but routers may add switching delays).
type Route struct {
	Links   []*Link
	Latency float64
}

// Router resolves the route between two hosts. Implementations live in the
// platform package (flat cluster, hierarchical cluster, ...).
type Router interface {
	Route(src, dst *Host) Route
}

// RouterInto is an optional Router extension for allocation-free routing:
// RouteInto appends the route's links to buf — typically a buffer owned by
// the comm being routed and reused across transfers — and returns a Route
// whose Links are backed by it. Implementations must always return Links
// derived from buf (possibly empty) and must not retain the slice.
type RouterInto interface {
	Router
	RouteInto(buf []*Link, src, dst *Host) Route
}

// NetworkModel maps a transfer (route, size) to the effective latency and an
// optional per-flow rate cap. It is the hook through which the SMPI
// piece-wise-linear model of Section 3.3 plugs into the kernel: correction
// factors depending on the message size adjust both values. The zero model
// (DefaultModel) applies the route latency unchanged and no cap.
type NetworkModel interface {
	Effective(route Route, size float64) (latency, rateCap float64)
}

// DefaultModel is the factor-free network model: latency is the route
// latency and flows are limited only by link capacities.
type DefaultModel struct{}

// Effective implements NetworkModel.
func (DefaultModel) Effective(route Route, size float64) (latency, rateCap float64) {
	return route.Latency, 0
}
