package sim

import "fmt"

// Step is what a continuation step function returns: whether the task has
// finished, or blocked on a primitive and must be resumed when the
// corresponding wake event fires.
type Step uint8

// Step values.
const (
	// Blocked: the task called a blocking primitive; the engine re-runs the
	// step function when the wake event fires.
	Blocked Step = iota
	// Done: the task has finished.
	Done
)

// Task is the continuation-style face of a simulated process: instead of a
// goroutine parked inside blocking calls, the process is a step function the
// engine invokes inline from the event loop. Blocking primitives return
// immediately after arming their wake event; the step function propagates
// Blocked upward and is re-entered on wake. No resume/yield channels, no
// goroutine stack per rank — the reason the continuation kernel scales to
// thousands of ranks where the goroutine scheduler thrashes.
type Task struct {
	p *Proc
}

// Proc returns the underlying process (shared identity with the goroutine
// API: name, host, deadlock reporting).
func (t *Task) Proc() *Proc { return t.p }

// Now returns the current simulated time.
func (t *Task) Now() float64 { return t.p.engine.now }

// Engine returns the engine this task runs on.
func (t *Task) Engine() *Engine { return t.p.engine }

// Fail aborts the whole simulation with err, exactly like Proc.Fail: the
// step unwinds immediately and Engine.Run returns err with its chain intact.
func (t *Task) Fail(err error) {
	if err == nil {
		t.p.faultf("Fail(nil)")
	}
	panic(simFault{err})
}

// SpawnTask creates a continuation-style process: step is invoked from the
// event loop until it returns Done; when it returns Blocked (after calling a
// blocking primitive) it is re-invoked on wake. External step functions may
// retain *Comm values indefinitely, so spawning one disables the engine's
// comm/timer recycling (SpawnProg machines, which provably release their
// references, keep it).
func (e *Engine) SpawnTask(name string, host *Host, step func(*Task) Step) *Proc {
	e.pooled = false
	return e.spawnStep(name, host, step)
}

func (e *Engine) spawnStep(name string, host *Host, step func(*Task) Step) *Proc {
	if host == nil {
		panic("sim: SpawnTask with nil host")
	}
	if step == nil {
		panic("sim: SpawnTask with nil step")
	}
	e.procSeq++
	p := &Proc{
		Name:   name,
		Host:   host,
		id:     e.procSeq,
		engine: e,
		state:  procRunnable,
		step:   step,
	}
	p.task.p = p
	e.procs = append(e.procs, p)
	e.runq.push(p)
	e.nalive++
	return p
}

// stepTask runs one step of a continuation process, mirroring the goroutine
// wrapper's lifecycle handling (fault conversion, completion accounting).
func (e *Engine) stepTask(p *Proc) {
	s, failed := runStep(e, p)
	if s == Done || failed {
		p.state = procDone
		p.blockedOn = blockInfo{}
		e.nalive--
		e.current = nil
		return
	}
	if p.state != procBlocked {
		// A step returned Blocked without arming a wake event; nothing would
		// ever resume it. Surface the bug instead of deadlocking silently.
		e.fail(fmt.Errorf("sim: process %s: step returned Blocked without blocking", p.Name))
		p.state = procDone
		e.nalive--
	}
	e.current = nil
}

// runStep invokes the step function under the same recover discipline as the
// goroutine wrapper: simFault panics become the carried error, anything else
// becomes a process-panicked error — bit-identical messages in both modes.
func runStep(e *Engine, p *Proc) (s Step, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(simFault); ok {
				e.fail(f.err)
			} else {
				e.fail(fmt.Errorf("sim: process %s panicked: %v", p.Name, r))
			}
			failed = true
		}
	}()
	return p.step(&p.task), false
}

// Sleep arms a wake timer d simulated seconds from now and blocks the task.
// It always returns Blocked, so step functions can `return t.Sleep(d)`.
func (t *Task) Sleep(d float64) Step {
	p := t.p
	if d < 0 {
		p.faultf("Sleep(%g): negative duration", d)
	}
	e := p.engine
	e.afterWake(d, p)
	p.state = procBlocked
	p.blockedOn = blockInfo{what: "sleep", amt: d}
	return Blocked
}

// Wait registers the task as a waiter on c unless it is already done. It
// returns true when c is done (keep executing) and false when the task must
// return Blocked; on wake, re-invoke Wait — like the goroutine WaitComm
// loop, the waiter re-registers until the comm completes.
func (t *Task) Wait(c *Comm) bool {
	p := t.p
	if c == nil {
		p.faultf("wait on nil comm")
	}
	if c.engine != p.engine {
		p.faultf("wait on comm from another engine")
	}
	if c.Done() {
		return true
	}
	if c.waiters == nil {
		c.waiters = c.waiterBuf[:0]
	}
	c.waiters = append(c.waiters, p)
	p.state = procBlocked
	p.blockedOn = blockInfo{what: "wait", comm: c}
	return false
}

// PutAsync posts a send on a named mailbox; see Proc.PutAsync.
func (t *Task) PutAsync(mb string, size float64) *Comm {
	return t.PutAsyncBox(t.p.engine.namedBox(mb).box, size)
}

// PutDetached posts a fire-and-forget send on a named mailbox.
func (t *Task) PutDetached(mb string, size float64, payload any) *Comm {
	return t.PutDetachedBox(t.p.engine.namedBox(mb).box, size, payload)
}

// GetAsync posts a receive on a named mailbox.
func (t *Task) GetAsync(mb string) *Comm {
	return t.GetAsyncBox(t.p.engine.namedBox(mb).box)
}

// PutAsyncBox posts a send on a pair mailbox.
func (t *Task) PutAsyncBox(mb Mbox, size float64) *Comm {
	p := t.p
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.box(mb), p, size, nil, false)
}

// PutDetachedBox posts a fire-and-forget send on a pair mailbox.
func (t *Task) PutDetachedBox(mb Mbox, size float64, payload any) *Comm {
	p := t.p
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.box(mb), p, size, payload, true)
}

// GetAsyncBox posts a receive on a pair mailbox.
func (t *Task) GetAsyncBox(mb Mbox) *Comm {
	p := t.p
	e := p.engine
	return e.postRecv(e.box(mb), p)
}

// Arrive is the continuation-style Barrier.Await: it returns true when the
// task is the last arriver (barrier passed; keep executing) and false when
// the task must return Blocked. Unlike Await, the caller must not re-invoke
// Arrive on wake — being woken IS the barrier release.
func (b *Barrier) Arrive(t *Task) bool {
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		for _, w := range b.waiting {
			b.engine.wake(w)
		}
		b.waiting = b.waiting[:0]
		return true
	}
	p := t.p
	b.waiting = append(b.waiting, p)
	p.state = procBlocked
	p.blockedOn = blockInfo{what: "barrier", n: b.count, m: b.n}
	return false
}
