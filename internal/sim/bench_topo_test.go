// Topology-zoo kernel benchmarks: the solver scaling of the structured
// platforms (fat tree, dragonfly, torus). Like the other large benchmarks
// they live in the external test package so they can drive the kernel
// through internal/mpi and internal/platform the way real replays do.
package sim_test

import (
	"fmt"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
)

// topoPlatform builds the benchmark shape of one zoo topology at the given
// rank count. The shapes keep NIC bandwidth below fabric bandwidth so the
// interesting contention happens inside the interconnect.
func topoPlatform(tb testing.TB, topo string, ranks int) *platform.Platform {
	tb.Helper()
	var (
		p   *platform.Platform
		err error
	)
	link := struct{ bw, lat float64 }{1.25e9, 1e-6}
	switch topo {
	case "fattree":
		shapes := map[int][2]int{32: {2, 5}, 256: {16, 2}, 1024: {32, 2}}
		s, ok := shapes[ranks]
		if !ok {
			tb.Fatalf("no fattree shape for %d ranks", ranks)
		}
		p, err = platform.NewFatTree(platform.FatTreeConfig{
			Name: "ft", Radix: s[0], Levels: s[1], Speed: 1e9,
			LinkBandwidth: link.bw, LinkLatency: link.lat,
			BackboneBandwidth: 4 * link.bw, BackboneLatency: 2 * link.lat,
		})
	case "dragonfly":
		shapes := map[int][3]int{32: {2, 4, 4}, 256: {8, 8, 4}, 1024: {16, 8, 8}}
		s, ok := shapes[ranks]
		if !ok {
			tb.Fatalf("no dragonfly shape for %d ranks", ranks)
		}
		p, err = platform.NewDragonfly(platform.DragonflyConfig{
			Name: "df", Groups: s[0], RoutersPerGroup: s[1], HostsPerRouter: s[2],
			Routing: "adaptive", Speed: 1e9,
			LinkBandwidth: link.bw, LinkLatency: link.lat,
			LocalBandwidth: 4 * link.bw, LocalLatency: 2 * link.lat,
			GlobalBandwidth: 8 * link.bw, GlobalLatency: 1e-5,
		})
	case "torus":
		shapes := map[int][]int{32: {4, 4, 2}, 256: {16, 16}, 1024: {16, 8, 8}}
		s, ok := shapes[ranks]
		if !ok {
			tb.Fatalf("no torus shape for %d ranks", ranks)
		}
		p, err = platform.NewTorus(platform.TorusConfig{
			Name: "tor", Dims: s, Speed: 1e9,
			LinkBandwidth: link.bw, LinkLatency: link.lat,
			BackboneBandwidth: 4 * link.bw, BackboneLatency: 2 * link.lat,
		})
	default:
		tb.Fatalf("unknown topology %q", topo)
	}
	if err != nil {
		tb.Fatal(err)
	}
	if p.Size() != ranks {
		tb.Fatalf("%s shape yields %d hosts, want %d", topo, p.Size(), ranks)
	}
	return p
}

// runTopoAlltoAll drives the desynchronized pairwise alltoall of
// BenchmarkLargeAlltoAll on a zoo platform under the continuation scheduler.
// Above 256 ranks the exchange is windowed to 32 rounds per rank: on the
// blocking topologies a full 1023-round exchange keeps the entire fabric in
// one connected component for minutes of wall clock (the dragonfly run
// takes ~5 min alone), and the first rounds already exhibit the per-round
// component structure the benchmark gates. The window is part of the
// benchmark's definition, not a silent cap — 256-rank variants stay
// all-to-all in full.
func runTopoAlltoAll(tb testing.TB, plat *platform.Platform) sim.Stats {
	tb.Helper()
	ranks := plat.Size()
	rounds := ranks - 1
	if ranks > 256 {
		rounds = 32
	}
	e := sim.NewEngine(plat)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		me := rank
		tr := w.TaskRank(rank)
		i := 0
		w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
			if i++; i > rounds {
				return false, nil
			}
			dst := (me + i) % ranks
			src := (me - i + ranks) % ranks
			tr.Isend(p, dst, alltoallSize(me, dst, ranks))
			tr.Recv(p, src)
			p.WaitPending()
			return true, nil
		})
	}
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
	return e.Stats()
}

// runTopoNeighbor drives a ring nearest-neighbor exchange (the halo pattern
// of stencil codes, mapped to consecutive ranks): every round each rank
// swaps jittered payloads with both ring neighbors. On the torus,
// consecutive ranks are grid neighbors in the first dimension, so this is
// the topology's best case; on the fat tree most exchanges stay under one
// tier-1 switch; on the dragonfly they stay inside a group.
func runTopoNeighbor(tb testing.TB, plat *platform.Platform) sim.Stats {
	tb.Helper()
	ranks := plat.Size()
	const rounds = 16
	e := sim.NewEngine(plat)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		me := rank
		up := (me + 1) % ranks
		dn := (me - 1 + ranks) % ranks
		tr := w.TaskRank(rank)
		round := 0
		w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
			if round++; round > rounds {
				return false, nil
			}
			tr.Isend(p, up, alltoallSize(me, up, ranks)*float64(1+round%3))
			tr.Isend(p, dn, alltoallSize(me, dn, ranks)*float64(1+round%3))
			tr.Recv(p, dn)
			tr.Recv(p, up)
			p.WaitPending()
			return true, nil
		})
	}
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
	return e.Stats()
}

// BenchmarkTopologies measures the solver's behaviour on the structured
// platforms: an adversarial desynchronized alltoall and a local
// nearest-neighbor exchange, per topology, at 256 and 1024 ranks. The
// reported metrics expose what the routing structure does to the sharing
// solver — how many flows each recompute re-solves and how large the
// biggest connected component grows. Only the 1024-rank variants are gated
// in CI (BENCH_baseline.json).
func BenchmarkTopologies(b *testing.B) {
	patterns := []struct {
		name string
		run  func(testing.TB, *platform.Platform) sim.Stats
	}{
		{"alltoall", runTopoAlltoAll},
		{"neighbor", runTopoNeighbor},
	}
	for _, topo := range []string{"fattree", "dragonfly", "torus"} {
		for _, pat := range patterns {
			for _, ranks := range []int{256, 1024} {
				b.Run(fmt.Sprintf("topo=%s/pattern=%s/ranks=%d", topo, pat.name, ranks), func(b *testing.B) {
					var st sim.Stats
					for i := 0; i < b.N; i++ {
						st = pat.run(b, topoPlatform(b, topo, ranks))
					}
					b.ReportMetric(float64(st.FlowsResolved)/float64(st.ShareRecomputes), "flows-resolved/recompute")
					b.ReportMetric(float64(st.MaxComponentFlows), "max-component-flows")
				})
			}
		}
	}
}

// TestTopologySchedulersAgree replays the benchmark workloads at 32 ranks
// under both schedulers on every zoo topology and requires bit-identical
// end times and kernel counters — the same parity contract the crossbar
// suite pins, now over structured routes.
func TestTopologySchedulersAgree(t *testing.T) {
	for _, topo := range []string{"fattree", "dragonfly", "torus"} {
		t.Run(topo, func(t *testing.T) {
			const ranks = 32
			run := func(continuation bool) (float64, sim.Stats) {
				plat := topoPlatform(t, topo, ranks)
				e := sim.NewEngine(plat)
				w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
				if err != nil {
					t.Fatal(err)
				}
				for rank := 0; rank < ranks; rank++ {
					me := rank
					if continuation {
						tr := w.TaskRank(rank)
						i := 0
						w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
							if i++; i >= ranks {
								return false, nil
							}
							dst := (me + i) % ranks
							src := (me - i + ranks) % ranks
							tr.Isend(p, dst, alltoallSize(me, dst, ranks))
							tr.Recv(p, src)
							p.WaitPending()
							return true, nil
						})
					} else {
						w.Spawn(rank, func(r *mpi.Rank) {
							for i := 1; i < ranks; i++ {
								dst := (me + i) % ranks
								src := (me - i + ranks) % ranks
								r.SendRecv(dst, alltoallSize(me, dst, ranks), src)
							}
						})
					}
				}
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				return e.Now(), e.Stats()
			}
			endC, statsC := run(true)
			endG, statsG := run(false)
			if endC != endG {
				t.Fatalf("end time %v (continuation) != %v (goroutine)", endC, endG)
			}
			if statsC != statsG {
				t.Fatalf("stats diverge:\n continuation: %+v\n goroutine:    %+v", statsC, statsG)
			}
		})
	}
}
