// Large-scale kernel benchmarks. They live in the external test package so
// they can drive the kernel through internal/mpi and internal/platform, the
// way real replays do.
package sim_test

import (
	"fmt"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/stats"
)

// alltoallSize returns a deterministic per-pair payload, jittered above the
// rendezvous threshold so flows desynchronize: every completion lands on its
// own event, which is the adversarial regime for the sharing solver (a
// synchronized alltoall batches whole rounds into single recomputes and
// hides the solver's scaling).
func alltoallSize(src, dst, ranks int) float64 {
	rng := stats.NewRNG(0xa2a).Fork(uint64(src*ranks + dst))
	return 65536 * (1 + rng.Float64())
}

// runLargeAlltoAll simulates a pairwise-exchange alltoall (the algorithm of
// mpi.Rank.AllToAll, with heterogeneous payloads) on a full-bisection
// cluster and returns the engine stats.
func runLargeAlltoAll(b *testing.B, ranks int, opts ...sim.Option) sim.Stats {
	b.Helper()
	plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
		Name: "xbar", Hosts: ranks, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(plat, opts...)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		w.Spawn(rank, func(r *mpi.Rank) {
			p := r.Size()
			me := r.Rank()
			for i := 1; i < p; i++ {
				dst := (me + i) % p
				src := (me - i + p) % p
				r.SendRecv(dst, alltoallSize(me, dst, p), src)
			}
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e.Stats()
}

// runLargeAlltoAllTask is the continuation-mode twin of runLargeAlltoAll:
// each rank is compiled, one exchange per feed call, into the micro-op
// equivalent of SendRecv (isend + recv + wait) through the mpi TaskRank
// compiler — the same schedule, with no goroutine stacks or resume channels.
func runLargeAlltoAllTask(b *testing.B, ranks int) sim.Stats {
	b.Helper()
	plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
		Name: "xbar", Hosts: ranks, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(plat)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		me := rank
		tr := w.TaskRank(rank)
		i := 0
		w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
			if i++; i >= ranks {
				return false, nil
			}
			dst := (me + i) % ranks
			src := (me - i + ranks) % ranks
			tr.Isend(p, dst, alltoallSize(me, dst, ranks))
			tr.Recv(p, src)
			p.WaitPending()
			return true, nil
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e.Stats()
}

// BenchmarkLargeAlltoAll measures the kernel hot paths at scale on a
// desynchronized alltoall. At 128/256 ranks it compares the incremental
// per-component sharing solver against the historical from-scratch pass (the
// flows-resolved metric shows why the gap widens: the incremental solver
// re-solves a near-constant handful of flows per recompute). At 1024 ranks it
// compares the two schedulers head to head — goroutine-per-rank versus
// continuation state machines — and at 4096 ranks it runs the continuation
// kernel alone: the goroutine scheduler's per-rank stacks and channel
// handoffs make that size unpleasant on a laptop, which is precisely the
// scaling wall the continuation rework removes.
func BenchmarkLargeAlltoAll(b *testing.B) {
	for _, ranks := range []int{128, 256} {
		for _, mode := range []struct {
			name string
			opts []sim.Option
		}{
			{"incremental", nil},
			{"fromscratch", []sim.Option{sim.WithFromScratchSharing()}},
		} {
			b.Run(fmt.Sprintf("ranks=%d/%s", ranks, mode.name), func(b *testing.B) {
				var st sim.Stats
				for i := 0; i < b.N; i++ {
					st = runLargeAlltoAll(b, ranks, mode.opts...)
				}
				b.ReportMetric(float64(st.FlowsResolved)/float64(st.ShareRecomputes), "flows-resolved/recompute")
			})
		}
	}
	for _, sc := range []struct {
		ranks      int
		goroutines bool
	}{
		{1024, true},
		{1024, false},
		{4096, false},
	} {
		name := "continuation"
		if sc.goroutines {
			name = "goroutine"
		}
		b.Run(fmt.Sprintf("ranks=%d/%s", sc.ranks, name), func(b *testing.B) {
			var st sim.Stats
			for i := 0; i < b.N; i++ {
				if sc.goroutines {
					st = runLargeAlltoAll(b, sc.ranks)
				} else {
					st = runLargeAlltoAllTask(b, sc.ranks)
				}
			}
			b.ReportMetric(float64(st.ContextSwitches), "context-switches")
		})
	}
}

// alltoallvVols builds rank me's per-peer volume vector for the vector
// benchmark: deterministic, uneven (each pair its own multiple), and jittered
// above the rendezvous threshold so completions desynchronize.
func alltoallvVols(me, ranks int) []float64 {
	vols := make([]float64, ranks)
	for k := 0; k < ranks; k++ {
		if k == me {
			continue
		}
		rng := stats.NewRNG(0xa2a5).Fork(uint64(me*ranks + k))
		vols[k] = 65536 * (1 + rng.Float64()) * float64(1+(me*13+k*7)%4)
	}
	return vols
}

// runLargeAlltoAllV drives the real vector collective — mpi.Rank.AllToAllV's
// pairwise schedule with per-peer volumes — under the goroutine scheduler.
func runLargeAlltoAllV(b *testing.B, ranks int) sim.Stats {
	b.Helper()
	plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
		Name: "xbar", Hosts: ranks, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(plat)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		me := rank
		w.Spawn(rank, func(r *mpi.Rank) {
			r.AllToAllV(alltoallvVols(me, ranks))
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e.Stats()
}

// runLargeAlltoAllVTask is the continuation twin: the TaskRank compiler emits
// the identical pairwise schedule as micro-ops, no goroutine stacks.
func runLargeAlltoAllVTask(b *testing.B, ranks int) sim.Stats {
	b.Helper()
	plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
		Name: "xbar", Hosts: ranks, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(plat)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		me := rank
		tr := w.TaskRank(rank)
		done := false
		w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
			if done {
				return false, nil
			}
			done = true
			tr.AllToAllV(p, alltoallvVols(me, ranks))
			return true, nil
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e.Stats()
}

// BenchmarkLargeAlltoAllV measures the vector collective at 256 ranks under
// both schedulers: 255 desynchronized pairwise exchanges per rank, every one
// with its own payload — the transpose traffic FT-class replays put through
// the kernel, and a CI guard on the vector-collective hot path.
func BenchmarkLargeAlltoAllV(b *testing.B) {
	const ranks = 256
	for _, sc := range []struct {
		name string
		run  func(*testing.B, int) sim.Stats
	}{
		{"continuation", runLargeAlltoAllVTask},
		{"goroutine", runLargeAlltoAllV},
	} {
		b.Run(fmt.Sprintf("ranks=%d/%s", ranks, sc.name), func(b *testing.B) {
			var st sim.Stats
			for i := 0; i < b.N; i++ {
				st = sc.run(b, ranks)
			}
			b.ReportMetric(float64(st.CommsCompleted), "comms")
		})
	}
}

// TestLargeAlltoAllVSchedulersAgree is the correctness companion: on the
// vector-collective workload both schedulers must agree bit-identically.
func TestLargeAlltoAllVSchedulersAgree(t *testing.T) {
	ranks := 48
	if testing.Short() {
		ranks = 16
	}
	run := func(task bool) (float64, sim.Stats) {
		plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
			Name: "xbar", Hosts: ranks, Speed: 1e9,
			LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(plat)
		w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < ranks; rank++ {
			me := rank
			if task {
				tr := w.TaskRank(rank)
				done := false
				w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
					if done {
						return false, nil
					}
					done = true
					tr.AllToAllV(p, alltoallvVols(me, ranks))
					return true, nil
				})
			} else {
				w.Spawn(rank, func(r *mpi.Rank) {
					r.AllToAllV(alltoallvVols(me, ranks))
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	endC, statsC := run(true)
	endG, statsG := run(false)
	if endC != endG {
		t.Fatalf("end time %v (continuation) != %v (goroutine)", endC, endG)
	}
	if statsC != statsG {
		t.Fatalf("stats diverge:\n continuation: %+v\n goroutine:    %+v", statsC, statsG)
	}
}

// TestLargeAlltoAllSchedulersAgree is the correctness companion of the
// scheduler benchmark: on the same workload, goroutine and continuation
// execution must agree bit-identically on end time and on every engine
// counter.
func TestLargeAlltoAllSchedulersAgree(t *testing.T) {
	ranks := 48
	if testing.Short() {
		ranks = 16
	}
	run := func(continuation bool) (float64, sim.Stats) {
		plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
			Name: "xbar", Hosts: ranks, Speed: 1e9,
			LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(plat)
		w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < ranks; rank++ {
			me := rank
			if continuation {
				tr := w.TaskRank(rank)
				i := 0
				w.SpawnProg(rank, func(p *sim.Prog) (bool, error) {
					if i++; i >= ranks {
						return false, nil
					}
					dst := (me + i) % ranks
					src := (me - i + ranks) % ranks
					tr.Isend(p, dst, alltoallSize(me, dst, ranks))
					tr.Recv(p, src)
					p.WaitPending()
					return true, nil
				})
			} else {
				w.Spawn(rank, func(r *mpi.Rank) {
					p := r.Size()
					for i := 1; i < p; i++ {
						dst := (me + i) % p
						src := (me - i + p) % p
						r.SendRecv(dst, alltoallSize(me, dst, p), src)
					}
				})
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	endC, statsC := run(true)
	endG, statsG := run(false)
	if endC != endG {
		t.Fatalf("end time %v (continuation) != %v (goroutine)", endC, endG)
	}
	if statsC != statsG {
		t.Fatalf("stats diverge:\n continuation: %+v\n goroutine:    %+v", statsC, statsG)
	}
}

// TestLargeAlltoAllModesAgree is the scaled-down correctness companion of
// the benchmark: the incremental and from-scratch solvers must produce
// bit-identical engine end times on the benchmark workload.
func TestLargeAlltoAllModesAgree(t *testing.T) {
	ranks := 32
	if testing.Short() {
		ranks = 12
	}
	run := func(opts ...sim.Option) (float64, sim.Stats) {
		plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
			Name: "xbar", Hosts: ranks, Speed: 1e9,
			LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(plat, opts...)
		w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < ranks; rank++ {
			w.Spawn(rank, func(r *mpi.Rank) {
				p := r.Size()
				me := r.Rank()
				for i := 1; i < p; i++ {
					dst := (me + i) % p
					src := (me - i + p) % p
					r.SendRecv(dst, alltoallSize(me, dst, p), src)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	incEnd, incStats := run()
	refEnd, refStats := run(sim.WithFromScratchSharing())
	if incEnd != refEnd {
		t.Fatalf("end time %v (incremental) != %v (from-scratch)", incEnd, refEnd)
	}
	if incStats.CommsCompleted != refStats.CommsCompleted {
		t.Fatalf("comms %d != %d", incStats.CommsCompleted, refStats.CommsCompleted)
	}
	if incStats.FlowsResolved >= refStats.FlowsResolved {
		t.Fatalf("incremental resolved %d flows, from-scratch %d: expected strictly fewer",
			incStats.FlowsResolved, refStats.FlowsResolved)
	}
}
