// Large-scale kernel benchmarks. They live in the external test package so
// they can drive the kernel through internal/mpi and internal/platform, the
// way real replays do.
package sim_test

import (
	"fmt"
	"testing"

	"tireplay/internal/mpi"
	"tireplay/internal/platform"
	"tireplay/internal/sim"
	"tireplay/internal/stats"
)

// alltoallSize returns a deterministic per-pair payload, jittered above the
// rendezvous threshold so flows desynchronize: every completion lands on its
// own event, which is the adversarial regime for the sharing solver (a
// synchronized alltoall batches whole rounds into single recomputes and
// hides the solver's scaling).
func alltoallSize(src, dst, ranks int) float64 {
	rng := stats.NewRNG(0xa2a).Fork(uint64(src*ranks + dst))
	return 65536 * (1 + rng.Float64())
}

// runLargeAlltoAll simulates a pairwise-exchange alltoall (the algorithm of
// mpi.Rank.AllToAll, with heterogeneous payloads) on a full-bisection
// cluster and returns the engine stats.
func runLargeAlltoAll(b *testing.B, ranks int, opts ...sim.Option) sim.Stats {
	b.Helper()
	plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
		Name: "xbar", Hosts: ranks, Speed: 1e9,
		LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(plat, opts...)
	w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for rank := 0; rank < ranks; rank++ {
		w.Spawn(rank, func(r *mpi.Rank) {
			p := r.Size()
			me := r.Rank()
			for i := 1; i < p; i++ {
				dst := (me + i) % p
				src := (me - i + p) % p
				r.SendRecv(dst, alltoallSize(me, dst, p), src)
			}
		})
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return e.Stats()
}

// BenchmarkLargeAlltoAll measures the fluid-network hot path at scale:
// a desynchronized 128- and 256-rank alltoall under the incremental
// per-component solver, and the same workload with the from-scratch solver
// the kernel historically ran on every flow change. The flows-resolved
// metric shows why the gap widens with rank count: the incremental solver
// re-solves a near-constant handful of flows per recompute while the
// from-scratch pass re-solves every active flow.
func BenchmarkLargeAlltoAll(b *testing.B) {
	for _, ranks := range []int{128, 256} {
		for _, mode := range []struct {
			name string
			opts []sim.Option
		}{
			{"incremental", nil},
			{"fromscratch", []sim.Option{sim.WithFromScratchSharing()}},
		} {
			b.Run(fmt.Sprintf("ranks=%d/%s", ranks, mode.name), func(b *testing.B) {
				var st sim.Stats
				for i := 0; i < b.N; i++ {
					st = runLargeAlltoAll(b, ranks, mode.opts...)
				}
				b.ReportMetric(float64(st.FlowsResolved)/float64(st.ShareRecomputes), "flows-resolved/recompute")
			})
		}
	}
}

// TestLargeAlltoAllModesAgree is the scaled-down correctness companion of
// the benchmark: the incremental and from-scratch solvers must produce
// bit-identical engine end times on the benchmark workload.
func TestLargeAlltoAllModesAgree(t *testing.T) {
	ranks := 32
	if testing.Short() {
		ranks = 12
	}
	run := func(opts ...sim.Option) (float64, sim.Stats) {
		plat, err := platform.NewCrossbarCluster(platform.CrossbarConfig{
			Name: "xbar", Hosts: ranks, Speed: 1e9,
			LinkBandwidth: 1.25e9, LinkLatency: 1e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(plat, opts...)
		w, err := mpi.NewWorld(e, plat.Hosts(), mpi.ModelConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < ranks; rank++ {
			w.Spawn(rank, func(r *mpi.Rank) {
				p := r.Size()
				me := r.Rank()
				for i := 1; i < p; i++ {
					dst := (me + i) % p
					src := (me - i + p) % p
					r.SendRecv(dst, alltoallSize(me, dst, p), src)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Stats()
	}
	incEnd, incStats := run()
	refEnd, refStats := run(sim.WithFromScratchSharing())
	if incEnd != refEnd {
		t.Fatalf("end time %v (incremental) != %v (from-scratch)", incEnd, refEnd)
	}
	if incStats.CommsCompleted != refStats.CommsCompleted {
		t.Fatalf("comms %d != %d", incStats.CommsCompleted, refStats.CommsCompleted)
	}
	if incStats.FlowsResolved >= refStats.FlowsResolved {
		t.Fatalf("incremental resolved %d flows, from-scratch %d: expected strictly fewer",
			incStats.FlowsResolved, refStats.FlowsResolved)
	}
}
