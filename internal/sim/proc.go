package sim

import "fmt"

type procState int

const (
	procCreated procState = iota
	procRunnable
	procRunning
	procBlocked
	procDone
)

// Proc is a simulated process. Its body runs in a dedicated goroutine but
// only while the engine has handed it control, so bodies are written as
// plain sequential code calling the blocking primitives below.
type Proc struct {
	// Name identifies the process in errors and deadlock reports.
	Name string
	// Host is the resource the process computes on.
	Host *Host

	id        int64
	engine    *Engine
	state     procState
	blockedOn blockInfo
	resume    chan struct{}
	fault     error

	// Continuation-mode fields: non-nil step means the process is resumed by
	// invoking step inline from the event loop instead of a channel handoff
	// to a goroutine. task is the value handed to step (embedded to avoid a
	// per-process allocation).
	step func(*Task) Step
	task Task
}

// blockInfo describes why a process is blocked. It holds the raw operands
// and formats only when a deadlock report is actually produced: rendering
// the reason eagerly cost two allocations on every blocking primitive,
// which dominated large replays.
type blockInfo struct {
	what string  // "sleep", "wait", "waitany", "barrier"
	comm *Comm   // wait only
	amt  float64 // sleep duration
	n, m int     // barrier arrived/party counts; waitany comm count
}

func (b blockInfo) String() string {
	switch b.what {
	case "sleep":
		return fmt.Sprintf("sleep(%g)", b.amt)
	case "wait":
		return fmt.Sprintf("wait(comm %d on %q)", b.comm.ID, b.comm.Mailbox())
	case "waitany":
		return fmt.Sprintf("waitany(%d comms)", b.n)
	case "barrier":
		return fmt.Sprintf("barrier(%d/%d)", b.n, b.m)
	}
	return b.what
}

// simFault carries a simulated-program failure through panic/recover from
// the faulting primitive to the process wrapper, which converts it into an
// engine error. Simulated program bugs (negative compute amounts, waiting on
// foreign comms, ...) abort the whole simulation: a replay with a corrupted
// trace must not silently produce a time.
type simFault struct{ err error }

func (p *Proc) faultf(format string, args ...any) {
	panic(simFault{fmt.Errorf("sim: process %s: "+format, append([]any{p.Name}, args...)...)})
}

// Fail aborts the whole simulation with err: the process unwinds immediately
// and Engine.Run returns err (the first failure wins). Layers above the
// kernel use it to surface structured errors — e.g. a malformed trace — with
// their error chain intact, where a plain panic would flatten it to a string.
// Must be called from the failing process itself.
func (p *Proc) Fail(err error) {
	if err == nil {
		p.faultf("Fail(nil)")
	}
	panic(simFault{err})
}

// Spawn creates a simulated process named name pinned to host, running body.
// It may be called before Run or from a running process.
func (e *Engine) Spawn(name string, host *Host, body func(*Proc)) *Proc {
	if host == nil {
		panic("sim: Spawn with nil host")
	}
	// A goroutine body may retain *Comm values arbitrarily long, so its
	// engine must never recycle them.
	e.pooled = false
	e.procSeq++
	p := &Proc{
		Name:   name,
		Host:   host,
		id:     e.procSeq,
		engine: e,
		state:  procRunnable,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	e.runq.push(p)
	e.nalive++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if f, ok := r.(simFault); ok {
					e.fail(f.err)
				} else {
					e.fail(fmt.Errorf("sim: process %s panicked: %v", name, r))
				}
			}
			p.state = procDone
			e.nalive--
			e.current = nil
			e.yield <- struct{}{}
		}()
		body(p)
	}()
	return p
}

// resume hands control to p until it blocks or finishes: a direct step-
// function call for continuation processes, a channel handoff for goroutine
// processes. Both count one context switch, so the stat is comparable (and
// bit-identical) across modes.
func (e *Engine) resume(p *Proc) {
	if p.state != procRunnable {
		return
	}
	p.state = procRunning
	e.current = p
	e.stats.ContextSwitches++
	if p.step != nil {
		e.stepTask(p)
		return
	}
	p.resume <- struct{}{}
	<-e.yield
}

// block parks the calling process until the engine wakes it. reason is shown
// in deadlock reports.
func (p *Proc) block(reason blockInfo) {
	e := p.engine
	if e.current != p {
		panic("sim: primitive called from outside the running process")
	}
	p.state = procBlocked
	p.blockedOn = reason
	e.current = nil
	e.yield <- struct{}{}
	<-p.resume
	e.current = p
	p.state = procRunning
}

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.engine.now }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.engine }

// Sleep suspends the process for d simulated seconds.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		p.faultf("Sleep(%g): negative duration", d)
	}
	e := p.engine
	e.afterWake(d, p)
	p.block(blockInfo{what: "sleep", amt: d})
}

// Execute simulates computing amount instructions at the host's calibrated
// speed.
func (p *Proc) Execute(amount float64) {
	p.ExecuteAtRate(amount, p.Host.Speed)
}

// ExecuteAtRate simulates computing amount instructions at rate instructions
// per second. The ground-truth cluster model uses per-segment rates to model
// cache effects (Section 2.3 of the paper).
func (p *Proc) ExecuteAtRate(amount, rate float64) {
	if amount < 0 {
		p.faultf("Execute(%g): negative amount", amount)
	}
	if rate <= 0 {
		p.faultf("Execute(%g) at non-positive rate %g", amount, rate)
	}
	if amount == 0 {
		return
	}
	p.Sleep(amount / rate)
}

// Put posts a send of size bytes on the given mailbox and blocks until the
// transfer fully completes (rendezvous semantics).
func (p *Proc) Put(mb string, size float64) *Comm {
	c := p.PutAsync(mb, size)
	p.WaitComm(c)
	return c
}

// PutAsync posts a send and returns immediately; the transfer starts when a
// matching receive is posted. Wait on the returned comm for completion.
func (p *Proc) PutAsync(mb string, size float64) *Comm {
	return p.PutAsyncBox(p.engine.namedBox(mb).box, size)
}

// PutPayload is PutAsync with an attached payload value delivered to the
// receiver.
func (p *Proc) PutPayload(mb string, size float64, payload any) *Comm {
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.namedBox(mb), p, size, payload, false)
}

// PutDetached posts a fire-and-forget send: the sender never waits and the
// transfer proceeds on its own. This models the eager protocol's sender side
// ("the send corresponds to the time of a copy of the data in the memory" —
// the copy itself, if modelled, is charged separately by the MPI layer).
func (p *Proc) PutDetached(mb string, size float64, payload any) *Comm {
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.namedBox(mb), p, size, payload, true)
}

// Get posts a receive on the mailbox and blocks until a matching transfer
// has fully arrived. It returns the completed comm (payload included).
func (p *Proc) Get(mb string) *Comm {
	c := p.GetAsync(mb)
	p.WaitComm(c)
	return c
}

// GetAsync posts a receive and returns immediately; wait on the returned
// comm for the data.
func (p *Proc) GetAsync(mb string) *Comm {
	return p.GetAsyncBox(p.engine.namedBox(mb).box)
}

// PutBox is Put on a pair mailbox (see Mbox/PairSpace).
func (p *Proc) PutBox(mb Mbox, size float64) *Comm {
	c := p.PutAsyncBox(mb, size)
	p.WaitComm(c)
	return c
}

// PutAsyncBox is PutAsync on a pair mailbox.
func (p *Proc) PutAsyncBox(mb Mbox, size float64) *Comm {
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.box(mb), p, size, nil, false)
}

// PutDetachedBox is PutDetached on a pair mailbox.
func (p *Proc) PutDetachedBox(mb Mbox, size float64, payload any) *Comm {
	if size < 0 {
		p.faultf("send of negative size %g", size)
	}
	e := p.engine
	return e.postSend(e.box(mb), p, size, payload, true)
}

// GetBox is Get on a pair mailbox.
func (p *Proc) GetBox(mb Mbox) *Comm {
	c := p.GetAsyncBox(mb)
	p.WaitComm(c)
	return c
}

// GetAsyncBox is GetAsync on a pair mailbox.
func (p *Proc) GetAsyncBox(mb Mbox) *Comm {
	e := p.engine
	return e.postRecv(e.box(mb), p)
}

// WaitComm blocks until c completes.
func (p *Proc) WaitComm(c *Comm) {
	if c == nil {
		p.faultf("wait on nil comm")
	}
	if c.engine != p.engine {
		p.faultf("wait on comm from another engine")
	}
	for !c.Done() {
		if c.waiters == nil {
			c.waiters = c.waiterBuf[:0]
		}
		c.waiters = append(c.waiters, p)
		p.block(blockInfo{what: "wait", comm: c})
	}
}

// WaitAll blocks until every comm in cs has completed.
func (p *Proc) WaitAll(cs []*Comm) {
	for _, c := range cs {
		p.WaitComm(c)
	}
}

// WaitAnyComm blocks until at least one comm in cs has completed and
// returns the index of the lowest-indexed completed one. While no comm is
// done it registers as a waiter on every comm; on each wake it deregisters
// from all of them before rescanning — a waiter entry left behind on a comm
// that completes later would falsely wake this process out of an unrelated
// block (the engine's wake only checks that the process is blocked, not
// what on).
func (p *Proc) WaitAnyComm(cs []*Comm) int {
	if len(cs) == 0 {
		p.faultf("wait-any on empty comm set")
	}
	for _, c := range cs {
		if c == nil {
			p.faultf("wait-any on nil comm")
		}
		if c.engine != p.engine {
			p.faultf("wait-any on comm from another engine")
		}
	}
	for {
		for i, c := range cs {
			if c.Done() {
				return i
			}
		}
		for _, c := range cs {
			if c.waiters == nil {
				c.waiters = c.waiterBuf[:0]
			}
			c.waiters = append(c.waiters, p)
		}
		p.block(blockInfo{what: "waitany", n: len(cs)})
		for _, c := range cs {
			c.removeWaiter(p)
		}
	}
}

// TestComm reports whether c has completed, without blocking.
func (p *Proc) TestComm(c *Comm) bool {
	if c == nil {
		p.faultf("test on nil comm")
	}
	return c.Done()
}
