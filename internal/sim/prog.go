package sim

// A Prog is a short straight-line program of kernel micro-ops — the
// compilation target for trace actions. Replay backends lower each action
// (compute, the eager/rendezvous protocol stages of a send, a whole
// collective schedule) into ops; the engine interprets them inline from the
// event loop via SpawnProg. Because the ops are exactly the calls the
// goroutine primitives would have made, in the same order, the schedule —
// and hence every simulated time and stat — is bit-identical between modes.

type progOpKind uint8

const (
	opExec        progOpKind = iota // compute amt instructions at host speed
	opSleep                         // sleep amt seconds
	opPut                           // post async send on mb; disposition per reg
	opPutDetached                   // post detached (eager) send on mb
	opGet                           // post async recv on mb; disposition per reg
	opPushDone                      // append an already-completed placeholder to pending
	opWaitReg                       // block until regs[reg] completes, then release it
	opWaitPend                      // block until the oldest pending op completes
	opWaitAllPend                   // block until every pending op completes, FIFO
	opWaitAnyPend                   // block until any pending op completes; consume the lowest-indexed
	opAwait                         // arrive at bar
)

// Register dispositions for opPut/opGet results.
const (
	regDiscard int8 = -1 // drop the comm (fire-and-forget)
	regPend    int8 = -2 // append to the cross-action pending FIFO
)

type progOp struct {
	kind progOpKind
	reg  int8
	mb   Mbox
	amt  float64
	bar  *Barrier
}

// Prog accumulates micro-ops. A backend's compiler appends one action's
// worth of ops per Feed call; the builder methods mirror the Proc
// primitives they stand for.
type Prog struct {
	ops  []progOp
	nreg int
}

// Reset clears the program for the next action, keeping capacity.
func (p *Prog) Reset() { p.ops = p.ops[:0] }

func (p *Prog) reg(r int) int8 {
	if r < 0 || r > 127 {
		panic("sim: Prog register out of range")
	}
	if r+1 > p.nreg {
		p.nreg = r + 1
	}
	return int8(r)
}

// Exec compiles Proc.Execute(instr) (compute at host speed).
func (p *Prog) Exec(instr float64) {
	p.ops = append(p.ops, progOp{kind: opExec, amt: instr})
}

// Sleep compiles Proc.Sleep(d).
func (p *Prog) Sleep(d float64) {
	p.ops = append(p.ops, progOp{kind: opSleep, amt: d})
}

// Put compiles Proc.PutAsync into register r (pair with WaitReg).
func (p *Prog) Put(mb Mbox, bytes float64, r int) {
	p.ops = append(p.ops, progOp{kind: opPut, reg: p.reg(r), mb: mb, amt: bytes})
}

// PutPending compiles Proc.PutAsync onto the pending FIFO (Isend).
func (p *Prog) PutPending(mb Mbox, bytes float64) {
	p.ops = append(p.ops, progOp{kind: opPut, reg: regPend, mb: mb, amt: bytes})
}

// PutDiscard compiles a fire-and-forget Proc.PutAsync (the MSG prototype's
// small-message send: asynchronous, never waited on).
func (p *Prog) PutDiscard(mb Mbox, bytes float64) {
	p.ops = append(p.ops, progOp{kind: opPut, reg: regDiscard, mb: mb, amt: bytes})
}

// PutDetached compiles Proc.PutDetached (the eager protocol's sender side).
func (p *Prog) PutDetached(mb Mbox, bytes float64) {
	p.ops = append(p.ops, progOp{kind: opPutDetached, reg: regDiscard, mb: mb, amt: bytes})
}

// Get compiles Proc.GetAsync into register r (pair with WaitReg).
func (p *Prog) Get(mb Mbox, r int) {
	p.ops = append(p.ops, progOp{kind: opGet, reg: p.reg(r), mb: mb})
}

// GetPending compiles Proc.GetAsync onto the pending FIFO (Irecv).
func (p *Prog) GetPending(mb Mbox) {
	p.ops = append(p.ops, progOp{kind: opGet, reg: regPend, mb: mb})
}

// PushPendingDone records an already-completed nonblocking operation (an
// eager Isend: the request is born done) so trace wait/waitall stay
// FIFO-aligned with the operations that produced them.
func (p *Prog) PushPendingDone() {
	p.ops = append(p.ops, progOp{kind: opPushDone})
}

// WaitReg compiles Proc.WaitComm on register r.
func (p *Prog) WaitReg(r int) {
	p.ops = append(p.ops, progOp{kind: opWaitReg, reg: p.reg(r)})
}

// WaitPending compiles waiting on the oldest pending operation (trace wait).
func (p *Prog) WaitPending() {
	p.ops = append(p.ops, progOp{kind: opWaitPend})
}

// WaitAllPending compiles waiting on every pending operation in FIFO order
// (trace waitall).
func (p *Prog) WaitAllPending() {
	p.ops = append(p.ops, progOp{kind: opWaitAllPend})
}

// WaitAnyPending compiles waiting until any pending operation completes
// (trace waitany); the lowest-indexed completed one is consumed, the rest
// stay outstanding. Trace waitsome lowers to a run of these.
func (p *Prog) WaitAnyPending() {
	p.ops = append(p.ops, progOp{kind: opWaitAnyPend})
}

// Await compiles Barrier.Await.
func (p *Prog) Await(b *Barrier) {
	p.ops = append(p.ops, progOp{kind: opAwait, bar: b})
}

// Feed refills prog with the micro-ops of the next trace action. It returns
// false when the rank's stream is exhausted (the task finishes) and a
// non-nil error to abort the whole simulation with that error (equivalent to
// Proc.Fail — the chain survives intact). A call that appends no ops (e.g.
// an init/finalize marker) is fine; the machine just asks again.
type Feed func(prog *Prog) (more bool, err error)

// SpawnProg creates a continuation process interpreting the micro-op
// programs produced by feed. Unlike SpawnTask, the machine provably releases
// every Comm it references, so comm/timer recycling stays enabled.
func (e *Engine) SpawnProg(name string, host *Host, feed Feed) *Proc {
	if feed == nil {
		panic("sim: SpawnProg with nil feed")
	}
	m := &progMachine{feed: feed}
	return e.spawnStep(name, host, m.step)
}

// progMachine interprets a rank's micro-op stream: it executes ops until one
// blocks, refilling the program from feed when all ops are consumed. pc is
// only advanced past an op once it no longer needs re-examination, so a
// blocked wait re-checks its comm on every wake — the same re-registration
// the goroutine WaitComm loop performs.
type progMachine struct {
	prog    Prog
	pc      int
	regs    []*Comm
	pending []*Comm // cross-action nonblocking ops, FIFO; nil = born done
	head    int     // consumed prefix of pending
	feed    Feed
}

func (m *progMachine) step(t *Task) Step {
	p := t.p
	e := p.engine
	for {
		if m.pc >= len(m.prog.ops) {
			// Program drained: this is exactly the moment the goroutine
			// driver would read the next trace action, so lowering here
			// keeps action counting and compile-time panics at identical
			// points in simulated time.
			m.prog.Reset()
			m.pc = 0
			for i, c := range m.regs {
				if c != nil { // scratch leaked past its action; drop the ref
					m.regs[i] = nil
					c.release()
				}
			}
			more, err := m.feed(&m.prog)
			if err != nil {
				panic(simFault{err})
			}
			if !more {
				return Done
			}
			if n := m.prog.nreg; n > len(m.regs) {
				m.regs = append(m.regs, make([]*Comm, n-len(m.regs))...)
			}
			continue
		}
		op := &m.prog.ops[m.pc]
		switch op.kind {
		case opExec:
			// Mirrors Proc.ExecuteAtRate at the host's calibrated speed,
			// faults included.
			if op.amt < 0 {
				p.faultf("Execute(%g): negative amount", op.amt)
			}
			rate := p.Host.Speed
			if rate <= 0 {
				p.faultf("Execute(%g) at non-positive rate %g", op.amt, rate)
			}
			m.pc++
			if op.amt == 0 {
				continue
			}
			d := op.amt / rate
			e.afterWake(d, p)
			p.state = procBlocked
			p.blockedOn = blockInfo{what: "sleep", amt: d}
			return Blocked
		case opSleep:
			if op.amt < 0 {
				p.faultf("Sleep(%g): negative duration", op.amt)
			}
			m.pc++
			e.afterWake(op.amt, p)
			p.state = procBlocked
			p.blockedOn = blockInfo{what: "sleep", amt: op.amt}
			return Blocked
		case opPut, opPutDetached:
			if op.amt < 0 {
				p.faultf("send of negative size %g", op.amt)
			}
			c := e.postSend(e.box(op.mb), p, op.amt, nil, op.kind == opPutDetached)
			m.dispose(c, op.reg)
			m.pc++
		case opGet:
			c := e.postRecv(e.box(op.mb), p)
			m.dispose(c, op.reg)
			m.pc++
		case opPushDone:
			m.pending = append(m.pending, nil)
			m.pc++
		case opWaitReg:
			c := m.regs[op.reg]
			if !c.Done() {
				m.block(p, c)
				return Blocked
			}
			m.regs[op.reg] = nil
			c.release()
			m.pc++
		case opWaitPend:
			c := m.pending[m.head]
			if c != nil {
				if !c.Done() {
					m.block(p, c)
					return Blocked
				}
				m.pending[m.head] = nil
				c.release()
			}
			m.popPending()
			m.pc++
		case opWaitAnyPend:
			if m.head >= len(m.pending) {
				p.faultf("wait-any with no outstanding operations")
			}
			// Scrub stale registrations from a previous block on this op:
			// the completion that woke us cleared its own waiter list, but
			// the other comms still hold ours, and a stale entry would wake
			// this process out of whatever it blocks on next. Mirrors the
			// deregistration pass in Proc.WaitAnyComm exactly.
			for i := m.head; i < len(m.pending); i++ {
				if c := m.pending[i]; c != nil && !c.Done() {
					c.removeWaiter(p)
				}
			}
			sel := -1
			for i := m.head; i < len(m.pending); i++ {
				if c := m.pending[i]; c == nil || c.Done() {
					sel = i
					break
				}
			}
			if sel < 0 {
				n := 0
				for i := m.head; i < len(m.pending); i++ {
					c := m.pending[i]
					if c.waiters == nil {
						c.waiters = c.waiterBuf[:0]
					}
					c.waiters = append(c.waiters, p)
					n++
				}
				p.state = procBlocked
				p.blockedOn = blockInfo{what: "waitany", n: n}
				return Blocked
			}
			if c := m.pending[sel]; c != nil {
				m.pending[sel] = nil
				c.release()
			}
			if sel == m.head {
				m.popPending()
			} else {
				// Consume a middle entry: shift the tail down so the FIFO
				// order of the survivors is preserved.
				copy(m.pending[sel:], m.pending[sel+1:])
				m.pending[len(m.pending)-1] = nil
				m.pending = m.pending[:len(m.pending)-1]
			}
			m.pc++
		case opWaitAllPend:
			blocked := false
			for m.head < len(m.pending) {
				c := m.pending[m.head]
				if c != nil {
					if !c.Done() {
						m.block(p, c)
						blocked = true
						break
					}
					m.pending[m.head] = nil
					c.release()
				}
				m.popPending()
			}
			if blocked {
				return Blocked
			}
			m.pc++
		case opAwait:
			// Advance before arriving: being woken IS the release, so the
			// machine must not re-arrive on resume.
			m.pc++
			if !op.bar.Arrive(t) {
				return Blocked
			}
		}
	}
}

// dispose routes a freshly posted comm per the op's register disposition.
func (m *progMachine) dispose(c *Comm, reg int8) {
	switch reg {
	case regDiscard:
	case regPend:
		c.retain()
		m.pending = append(m.pending, c)
	default:
		c.retain()
		m.regs[reg] = c
	}
}

// block registers the machine's process as a waiter on c, exactly like one
// iteration of the goroutine WaitComm loop.
func (m *progMachine) block(p *Proc, c *Comm) {
	if c.waiters == nil {
		c.waiters = c.waiterBuf[:0]
	}
	c.waiters = append(c.waiters, p)
	p.state = procBlocked
	p.blockedOn = blockInfo{what: "wait", comm: c}
}

// popPending advances past the consumed head, recycling the whole buffer
// once it empties.
func (m *progMachine) popPending() {
	m.head++
	if m.head == len(m.pending) {
		m.pending = m.pending[:0]
		m.head = 0
	}
}
