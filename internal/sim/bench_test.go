package sim

import "testing"

// BenchmarkContextSwitch measures the scheduler handoff — one process
// resumed through a long run of short sleeps — under both schedulers: the
// goroutine path pays two channel operations and a stack switch per resume,
// the continuation path a direct function call into the state machine.
func BenchmarkContextSwitch(b *testing.B) {
	b.Run("goroutine", func(b *testing.B) {
		e := NewEngine(pairRouter{&Link{Bandwidth: 1e9, Latency: 0}})
		h := &Host{Name: "h", Speed: 1e9}
		n := b.N
		e.Spawn("p", h, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(1e-9)
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("continuation", func(b *testing.B) {
		e := NewEngine(pairRouter{&Link{Bandwidth: 1e9, Latency: 0}})
		h := &Host{Name: "h", Speed: 1e9}
		n := b.N
		i := 0
		e.SpawnProg("p", h, func(p *Prog) (bool, error) {
			if i++; i > n {
				return false, nil
			}
			p.Sleep(1e-9)
			return true, nil
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkPingPong measures matched send/recv pairs between two hosts.
func BenchmarkPingPong(b *testing.B) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-6}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	n := b.N
	e.Spawn("a", hs[0], func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Put("ab", 1024)
			p.Get("ba")
		}
	})
	e.Spawn("b", hs[1], func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Get("ab")
			p.Put("ba", 1024)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMaxMinSharing measures the bandwidth-sharing solver with many
// concurrent flows over a shared backbone.
func BenchmarkMaxMinSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		link := &Link{Name: "bb", Bandwidth: 1e10, Latency: 1e-6}
		e := NewEngine(pairRouter{link})
		hs := newTestHosts(64, 1e9)
		for j := 0; j < 32; j++ {
			j := j
			mb := string(rune('A' + j))
			e.Spawn("s", hs[j], func(p *Proc) {
				for k := 0; k < 8; k++ {
					p.Put(mb, 1e6)
				}
			})
			e.Spawn("r", hs[32+j], func(p *Proc) {
				for k := 0; k < 8; k++ {
					p.Get(mb)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetachedSends measures eager-style fire-and-forget traffic.
func BenchmarkDetachedSends(b *testing.B) {
	link := &Link{Name: "l", Bandwidth: 1e9, Latency: 1e-6}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	e.PinMailbox("mb", hs[1])
	n := b.N
	e.Spawn("s", hs[0], func(p *Proc) {
		for i := 0; i < n; i++ {
			p.PutDetached("mb", 1024, nil)
			p.Sleep(1e-6)
		}
	})
	e.Spawn("r", hs[1], func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Get("mb")
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
