package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// solve runs the max-min solver on a synthetic flow set and returns the
// allocated rates.
func solve(flows []*flow) []float64 {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1, Latency: 0}})
	for _, f := range flows {
		e.addFlow(f)
	}
	e.recomputeShares()
	rates := make([]float64, len(flows))
	for i, f := range flows {
		rates[i] = f.rate
	}
	return rates
}

func mkComm(size float64) *Comm { return &Comm{Size: size} }

func TestMaxMinSingleFlowGetsFullLink(t *testing.T) {
	l := &Link{Name: "l", Bandwidth: 100}
	rates := solve([]*flow{{comm: mkComm(1), links: []*Link{l}, rem: 1}})
	if rates[0] != 100 {
		t.Fatalf("rate = %v, want 100", rates[0])
	}
}

func TestMaxMinEqualSharing(t *testing.T) {
	l := &Link{Name: "l", Bandwidth: 90}
	fs := []*flow{
		{comm: mkComm(1), links: []*Link{l}, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, rem: 1},
	}
	for i, r := range solve(fs) {
		if math.Abs(r-30) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want 30", i, r)
		}
	}
}

func TestMaxMinCapRedistribution(t *testing.T) {
	// Two flows on a 100-link; one capped at 10. The other should get 90.
	l := &Link{Name: "l", Bandwidth: 100}
	fs := []*flow{
		{comm: mkComm(1), links: []*Link{l}, cap: 10, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, rem: 1},
	}
	rates := solve(fs)
	if math.Abs(rates[0]-10) > 1e-9 || math.Abs(rates[1]-90) > 1e-9 {
		t.Fatalf("rates = %v, want [10 90]", rates)
	}
}

func TestMaxMinClassicExample(t *testing.T) {
	// The textbook three-flow example: l1 cap 10 carries f1,f2; l2 cap 5
	// carries f2,f3. Max-min: f2 and f3 get 2.5 (l2 bottleneck), f1 gets 7.5.
	l1 := &Link{Name: "l1", Bandwidth: 10}
	l2 := &Link{Name: "l2", Bandwidth: 5}
	fs := []*flow{
		{comm: mkComm(1), links: []*Link{l1}, rem: 1},
		{comm: mkComm(1), links: []*Link{l1, l2}, rem: 1},
		{comm: mkComm(1), links: []*Link{l2}, rem: 1},
	}
	rates := solve(fs)
	want := []float64{7.5, 2.5, 2.5}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMaxMinNoLinksUnbounded(t *testing.T) {
	rates := solve([]*flow{{comm: mkComm(1), rem: 1}})
	if !math.IsInf(rates[0], 1) {
		t.Fatalf("rate = %v, want +Inf for local flow", rates[0])
	}
}

// Property-based test: for random topologies, the allocation must satisfy
// (1) no link is over capacity, (2) every rate is positive, (3) every flow
// is bottlenecked: it is either at its cap or crosses a saturated link
// (otherwise its rate could grow, violating max-min optimality).
func TestMaxMinInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nLinks := 1 + rng.Intn(6)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = &Link{Name: "l", Bandwidth: 1 + 99*rng.Float64()}
		}
		nFlows := 1 + rng.Intn(10)
		fs := make([]*flow, nFlows)
		for i := range fs {
			n := 1 + rng.Intn(nLinks)
			perm := rng.Perm(nLinks)[:n]
			ls := make([]*Link, n)
			for j, k := range perm {
				ls[j] = links[k]
			}
			var cap float64
			if rng.Intn(2) == 0 {
				cap = 0.5 + 49*rng.Float64()
			}
			fs[i] = &flow{comm: mkComm(1), links: ls, cap: cap, rem: 1}
		}
		rates := solve(fs)

		const eps = 1e-6
		// (1) link capacities respected.
		load := map[*Link]float64{}
		for i, fl := range fs {
			for _, l := range fl.links {
				load[l] += rates[i]
			}
		}
		for _, l := range links {
			if load[l] > l.Bandwidth*(1+eps) {
				return false
			}
		}
		// (2) positive rates, caps respected.
		for i, fl := range fs {
			if rates[i] <= 0 {
				return false
			}
			if fl.cap > 0 && rates[i] > fl.cap*(1+eps) {
				return false
			}
		}
		// (3) every flow is bottlenecked somewhere.
		for i, fl := range fs {
			if fl.cap > 0 && rates[i] >= fl.cap*(1-eps) {
				continue
			}
			bottlenecked := false
			for _, l := range fl.links {
				if load[l] >= l.Bandwidth*(1-eps) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
