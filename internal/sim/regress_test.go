package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestCancelRemovesTimerFromHeap pins the fix for the unbounded-heap bug:
// canceling a timer must shrink the heap immediately via its stored index,
// not merely flag the entry and leave it behind until its deadline.
func TestCancelRemovesTimerFromHeap(t *testing.T) {
	e := NewEngine(pairRouter{&Link{Bandwidth: 1e9, Latency: 0}})
	h := &Host{Name: "h", Speed: 1e9}
	fired := make([]bool, 100)
	ts := make([]*timer, len(fired))
	for i := range fired {
		i := i
		ts[i] = e.at(float64(i+1), func() { fired[i] = true })
	}
	for i := 0; i < len(ts); i += 2 {
		e.cancel(ts[i])
	}
	if len(e.timers) != 50 {
		t.Fatalf("timer heap holds %d entries after canceling 50 of 100, want 50", len(e.timers))
	}
	e.cancel(ts[0]) // double-cancel is a no-op
	if len(e.timers) != 50 {
		t.Fatalf("double cancel changed the heap: %d entries", len(e.timers))
	}
	e.Spawn("p", h, func(p *Proc) { p.Sleep(200) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.cancel(ts[1]) // canceling an already-fired timer (index -1) is safe
	for i, f := range fired {
		if want := i%2 == 1; f != want {
			t.Fatalf("timer %d fired=%v, want %v", i, f, want)
		}
	}
	if got := e.Stats().TimersFired; got != 51 { // 50 survivors + the sleep
		t.Fatalf("TimersFired = %d, want 51", got)
	}
}

// TestProcRingFIFOAndRelease exercises the run-queue ring buffer through
// growth and wraparound, and checks that popped slots are nilled so
// finished processes do not stay reachable through the backing array.
func TestProcRingFIFOAndRelease(t *testing.T) {
	var q procRing
	mk := func(i int) *Proc { return &Proc{Name: fmt.Sprintf("p%d", i)} }
	var want []string
	next := 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			p := mk(next)
			want = append(want, p.Name)
			q.push(p)
			next++
		}
	}
	pop := func(k int) {
		for i := 0; i < k; i++ {
			p := q.pop()
			if p.Name != want[0] {
				t.Fatalf("pop = %s, want %s (FIFO violated)", p.Name, want[0])
			}
			want = want[1:]
		}
	}
	push(10)
	pop(7)
	push(30) // forces growth with a wrapped head
	pop(q.len())
	if q.len() != 0 {
		t.Fatalf("ring not empty: %d", q.len())
	}
	for i, p := range q.buf {
		if p != nil {
			t.Fatalf("slot %d still holds %s after pop: popped entries must be released", i, p.Name)
		}
	}
	push(3)
	pop(3)
}

// TestStalledFlowDeadlockDiagnostic pins the zero-rate-flow fix: a flow
// frozen at rate 0 must be visible in the deadlock report rather than the
// simulation silently reporting only the blocked processes.
//
// A zero allocation is unreachable through well-formed platforms (a
// progressive-filling level is always positive when bandwidths are), so the
// stall is injected white-box mid-flight, as a floating-point corner would.
func TestStalledFlowDeadlockDiagnostic(t *testing.T) {
	link := &Link{Name: "l", Bandwidth: 1e6, Latency: 0}
	e := NewEngine(pairRouter{link})
	hs := newTestHosts(2, 1e9)
	var c *Comm
	e.Spawn("s", hs[0], func(p *Proc) {
		c = p.PutAsync("mb", 1e6)
		p.WaitComm(c)
	})
	e.Spawn("r", hs[1], func(p *Proc) { p.Get("mb") })
	e.after(0.1, func() { e.applyRate(c.fl, 0) })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Stalled) != 1 {
		t.Fatalf("Stalled = %v, want exactly the frozen flow", d.Stalled)
	}
	if !strings.Contains(d.Stalled[0], "rate 0") || !strings.Contains(err.Error(), "stalled flow") {
		t.Fatalf("diagnostic does not describe the stalled flow: %v", err)
	}
	if len(d.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want both endpoints", d.Blocked)
	}
	approx(t, d.Time, 0.1, "deadlock time")
}

// TestStalledFlowReexaminedOnRecompute checks the other half of the fix: a
// stalled flow is re-fed to the solver on the next recompute — even one
// triggered in a different connected component — so freed or restored
// capacity revives it instead of leaving it invisible forever.
func TestStalledFlowReexaminedOnRecompute(t *testing.T) {
	hs := newTestHosts(4, 1e9)
	l1 := &Link{Name: "l1", Bandwidth: 1e6}
	l2 := &Link{Name: "l2", Bandwidth: 1e6}
	r := tableRouter{
		{hs[0], hs[1]}: {Links: []*Link{l1}},
		{hs[2], hs[3]}: {Links: []*Link{l2}},
	}
	e := NewEngine(r)
	var c *Comm
	var sendEnd float64
	e.Spawn("sA", hs[0], func(p *Proc) {
		c = p.PutAsync("a", 1e6)
		p.WaitComm(c)
		sendEnd = p.Now()
	})
	e.Spawn("rA", hs[1], func(p *Proc) { p.Get("a") })
	// Freeze A's flow at t=0.1 with 9e5 bytes left.
	e.after(0.1, func() { e.applyRate(c.fl, 0) })
	// An unrelated transfer on a disjoint link arrives at t=0.2; the
	// recompute it triggers must also re-solve A's component.
	e.Spawn("sB", hs[2], func(p *Proc) {
		p.Sleep(0.2)
		p.Put("b", 1e5)
	})
	e.Spawn("rB", hs[3], func(p *Proc) { p.Get("b") })
	if err := e.Run(); err != nil {
		t.Fatalf("expected recovery, got %v", err)
	}
	// 1e5 bytes done by 0.1, stalled until 0.2, then 9e5 bytes at 1e6 B/s.
	approx(t, sendEnd, 1.1, "stalled transfer resumes after recompute")
}

// TestForceFixRestrictedToMinimalConstraint pins the solver's numerical
// safety net. The force-fix branch is unreachable through well-formed
// inputs (the flows at the arg-min link always match the level within its
// epsilon), so it is driven with a degenerate negative-capacity link, for
// which the relative-epsilon comparison genuinely fails. The old behaviour
// force-fixed every remaining flow at the stuck level, freezing flows that
// cross only healthy, unsaturated links; only the flows whose own minimal
// constraint is at the stuck level may be frozen.
func TestForceFixRestrictedToMinimalConstraint(t *testing.T) {
	bad := &Link{Name: "bad", Bandwidth: -1} // degenerate by construction
	good := &Link{Name: "good", Bandwidth: 10}
	e := NewEngine(pairRouter{good})
	fA := &flow{comm: mkComm(1), links: []*Link{bad}, rem: 1}
	fC := &flow{comm: mkComm(1), links: []*Link{bad, good}, rem: 1}
	fB := &flow{comm: mkComm(1), links: []*Link{good}, rem: 1}
	e.addFlow(fA)
	e.addFlow(fC)
	e.addFlow(fB)
	e.recomputeShares() // must terminate
	// fA sits at the degenerate constraint and is force-fixed at the stuck
	// level; the bad link's capacity then clamps to 0, so fC — crossing it
	// too — ends at rate 0 and must land on the stalled list for
	// re-examination rather than vanish from event scheduling.
	if fA.rate != -0.5 {
		t.Fatalf("flow at the degenerate constraint: rate %v, want -0.5 (stuck level)", fA.rate)
	}
	if fC.rate != 0 {
		t.Fatalf("flow on the clamped link: rate %v, want 0", fC.rate)
	}
	if fC.stallIdx < 0 || len(e.stalled) != 1 {
		t.Fatalf("zero-rate flow not tracked as stalled (stallIdx=%d, stalled=%d)", fC.stallIdx, len(e.stalled))
	}
	// fB crosses only the healthy link; the historical force-fix froze it
	// at the stuck level (-0.5). It must instead receive the remaining
	// capacity of its own link.
	if fB.rate <= 0 {
		t.Fatalf("flow on the unsaturated link frozen at %v by the force-fix", fB.rate)
	}
	if fB.rate < 10 {
		t.Fatalf("flow on the unsaturated link got %v, want at least its link's full share (10)", fB.rate)
	}
}

// TestCapBoundSaturationCorner exercises a cap-heavy allocation where
// cap-bounded flows consume most of a link: the remaining flow must receive
// exactly the leftover capacity, never rate 0, and the allocation must stay
// bit-identical to the from-scratch reference.
func TestCapBoundSaturationCorner(t *testing.T) {
	l := &Link{Name: "l", Bandwidth: 10}
	fs := []*flow{
		{comm: mkComm(1), links: []*Link{l}, cap: 2, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, cap: 2.5, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, cap: 3, rem: 1},
		{comm: mkComm(1), links: []*Link{l}, rem: 1},
	}
	rates := solve(fs)
	want := referenceShares(fs)
	for i := range fs {
		if rates[i] != want[i] {
			t.Fatalf("rates[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
	if rates[3] <= 0 {
		t.Fatalf("uncapped flow starved: rate %v", rates[3])
	}
	// caps bind (2, 2.5) or not (3 > fair share of the leftover).
	approx(t, rates[0], 2, "cap-bound flow 0")
	approx(t, rates[1], 2.5, "cap-bound flow 1")
	approx(t, rates[2], 2.75, "flow 2 shares the leftover")
	approx(t, rates[3], 2.75, "flow 3 shares the leftover")
}
