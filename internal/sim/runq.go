package sim

// procRing is a growable ring-buffer FIFO of runnable processes. Unlike the
// historical `runq = runq[1:]` slice queue it reuses its backing array
// instead of sliding through an ever-growing one, and popped slots are
// nilled so finished processes become collectable during million-event
// replays.
type procRing struct {
	buf  []*Proc
	head int // index of the next pop
	n    int // number of queued processes
}

func (q *procRing) len() int { return q.n }

func (q *procRing) push(p *Proc) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

func (q *procRing) pop() *Proc {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

func (q *procRing) grow() {
	next := 2 * len(q.buf)
	if next == 0 {
		next = 16
	}
	buf := make([]*Proc, next)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
