package sim

import "math"

// flow is the fluid stage of a communication: an amount of bytes crossing a
// set of links, sharing their capacity with the other active flows.
//
// Progress is tracked lazily: rem is the number of bytes left as of lastT,
// and finish is the projected absolute completion time under the current
// rate. rem is only materialized when the rate changes or the flow
// completes, so advancing simulated time costs nothing per flow.
type flow struct {
	comm  *Comm
	links []*Link
	// cap bounds the rate of this flow regardless of link shares (0 = no
	// bound). The SMPI model uses it to apply bandwidth correction factors.
	cap float64
	// rate is the current max-min allocation, recomputed whenever the flow
	// set of this flow's connected component changes.
	rate float64
	// rem is the number of bytes still to transfer as of lastT.
	rem float64
	// lastT is the simulated time at which rem was last materialized.
	lastT float64
	// finish is the projected absolute completion time (lastT + rem/rate);
	// +Inf while the flow is stalled at rate 0.
	finish float64

	// seq is the arrival sequence number, breaking completion ties so that
	// same-instant completions wake waiters in arrival order (deterministic,
	// and identical to the historical scan order).
	seq int64
	// linkPos[i] is this flow's index in links[i]'s per-engine flow list,
	// for O(1) removal. lstates[i] caches the resolved linkState of
	// links[i], so the solver's traversals never touch the engine's link
	// map; both backing arrays are reused across a recycled comm's flows.
	linkPos  []int
	lstates  []*linkState
	heapIdx  int   // index in Engine.completions, -1 when absent
	listIdx  int   // index in Engine.active
	stallIdx int   // index in Engine.stalled, -1 when absent
	mark     int64 // component-traversal generation marker
	dirty    bool  // queued in Engine.dirtyFlows
}

// linkState is the engine-local registry for one link: the active flows
// crossing it plus solver scratch. It lives on the engine rather than on the
// Link because Link objects are shared by platforms across concurrently
// running engines.
type linkState struct {
	link  *Link
	flows []*flow
	mark  int64 // component-traversal generation marker
	dirty bool  // queued in Engine.dirtyLinks

	// progressive-filling scratch.
	rem float64
	n   int
}

func (e *Engine) linkState(l *Link) *linkState {
	ls, ok := e.linkStates[l]
	if !ok {
		ls = &linkState{link: l}
		e.linkStates[l] = ls
	}
	return ls
}

// addFlow registers a newly started flow and marks it for the next share
// recomputation. The flow starts at rate 0 and enters the completion heap
// once the solver assigns it a rate.
func (e *Engine) addFlow(f *flow) {
	e.flowSeq++
	f.seq = e.flowSeq
	f.lastT = e.now
	f.finish = math.Inf(1)
	f.heapIdx = -1
	f.stallIdx = -1
	f.listIdx = len(e.active)
	e.active = append(e.active, f)
	// Reuse the backing array across a recycled comm's successive flows.
	if cap(f.linkPos) >= len(f.links) {
		f.linkPos = f.linkPos[:len(f.links)]
	} else {
		f.linkPos = make([]int, len(f.links))
	}
	if cap(f.lstates) >= len(f.links) {
		f.lstates = f.lstates[:len(f.links)]
	} else {
		f.lstates = make([]*linkState, len(f.links))
	}
	for i, l := range f.links {
		ls := e.linkState(l)
		f.lstates[i] = ls
		f.linkPos[i] = len(ls.flows)
		ls.flows = append(ls.flows, f)
	}
	if !f.dirty {
		f.dirty = true
		e.dirtyFlows = append(e.dirtyFlows, f)
	}
	e.sharesDirty = true
}

// removeFlow unregisters a flow (normally on completion), releases its link
// capacity to its neighbours by marking the crossed links dirty, and drops
// it from the completion heap and stalled list.
func (e *Engine) removeFlow(f *flow) {
	last := len(e.active) - 1
	moved := e.active[last]
	e.active[f.listIdx] = moved
	moved.listIdx = f.listIdx
	e.active[last] = nil
	e.active = e.active[:last]

	for i, ls := range f.lstates {
		pos := f.linkPos[i]
		tail := len(ls.flows) - 1
		m := ls.flows[tail]
		ls.flows[pos] = m
		ls.flows[tail] = nil
		ls.flows = ls.flows[:tail]
		if pos != tail {
			// Fix the moved flow's back-pointer for this link (m may be f
			// itself when a route crosses the same link twice). A flow
			// crosses few links, so the scan is O(1) in practice.
			for j, ms := range m.lstates {
				if ms == ls && m.linkPos[j] == tail {
					m.linkPos[j] = pos
					break
				}
			}
		}
		if len(ls.flows) > 0 && !ls.dirty {
			ls.dirty = true
			e.dirtyLinks = append(e.dirtyLinks, ls)
		}
	}
	if f.heapIdx >= 0 {
		e.completions.remove(f)
	}
	e.dropStalled(f)
	f.dirty = false // a queued seed that no longer exists must not be solved
	e.sharesDirty = true
}

func (e *Engine) dropStalled(f *flow) {
	if f.stallIdx < 0 {
		return
	}
	last := len(e.stalled) - 1
	m := e.stalled[last]
	e.stalled[f.stallIdx] = m
	m.stallIdx = f.stallIdx
	e.stalled[last] = nil
	e.stalled = e.stalled[:last]
	f.stallIdx = -1
}

// recomputeShares restores the bounded max-min allocation after flow-set
// changes. Only the connected components (flows joined by shared links)
// containing a change are re-solved: flows elsewhere keep their rates, which
// are unaffected by construction. Stalled (rate 0) flows are re-examined on
// every recompute so freed capacity is never missed.
func (e *Engine) recomputeShares() {
	e.sharesDirty = false
	e.mark++
	m := e.mark
	if e.fromScratch {
		for _, f := range e.active {
			e.solveFrom(f, m)
		}
	} else {
		for _, f := range e.dirtyFlows {
			if f.dirty { // skip seeds removed since they were queued
				e.solveFrom(f, m)
			}
		}
		for _, ls := range e.dirtyLinks {
			for _, f := range ls.flows {
				e.solveFrom(f, m)
			}
		}
		// Re-examining stalled flows on every recompute is deliberately
		// redundant: any change that could revive one also dirties its
		// component, but a stalled flow is already a numerical corner, so
		// the recovery path must not depend on the dirtiness bookkeeping
		// being right. The extra solves cost nothing while nothing is
		// stalled (the common case: the list is empty).
		// Snapshot: solving mutates e.stalled as flows enter/leave it.
		e.stallSeeds = append(e.stallSeeds[:0], e.stalled...)
		for _, f := range e.stallSeeds {
			e.solveFrom(f, m)
		}
	}
	for _, f := range e.dirtyFlows {
		f.dirty = false
	}
	e.dirtyFlows = e.dirtyFlows[:0]
	for _, ls := range e.dirtyLinks {
		ls.dirty = false
	}
	e.dirtyLinks = e.dirtyLinks[:0]
}

// solveFrom gathers the connected component containing seed (unless already
// solved this generation) and re-runs progressive filling on it.
func (e *Engine) solveFrom(seed *flow, m int64) {
	if seed.mark == m {
		return
	}
	comp := e.compBuf[:0]
	links := e.compLinkBuf[:0]
	seed.mark = m
	comp = append(comp, seed)
	for i := 0; i < len(comp); i++ {
		for _, ls := range comp[i].lstates {
			if ls.mark == m {
				continue
			}
			ls.mark = m
			links = append(links, ls)
			for _, g := range ls.flows {
				if g.mark != m {
					g.mark = m
					comp = append(comp, g)
				}
			}
		}
	}
	e.compBuf, e.compLinkBuf = comp[:0], links[:0]
	e.solveComponent(comp, links)
	e.stats.ComponentsResolved++
	e.stats.FlowsResolved += int64(len(comp))
	if n := int64(len(comp)); n > e.stats.MaxComponentFlows {
		e.stats.MaxComponentFlows = n
	}
}

// solveComponent runs progressive filling (bounded max-min fairness) on one
// connected component: repeatedly find the most constrained resource —
// either a saturated link or a flow's own rate cap — fix the corresponding
// flows, remove their consumption, and continue. The result is the classic
// max-min allocation restricted to the component; because flows in other
// components share no link with it, the allocation is identical to what a
// from-scratch solve over all flows would produce.
func (e *Engine) solveComponent(comp []*flow, links []*linkState) {
	for _, ls := range links {
		ls.rem = ls.link.Bandwidth
		ls.n = 0
	}
	for _, f := range comp {
		for _, ls := range f.lstates {
			ls.n++
		}
	}

	rates := e.rateBuf[:0]
	fixed := e.fixedBuf[:0]
	for range comp {
		rates = append(rates, 0)
		fixed = append(fixed, false)
	}
	e.rateBuf, e.fixedBuf = rates, fixed

	unfixed := len(comp)
	for unfixed > 0 {
		// Candidate level: the smallest of link fair shares and flow caps.
		level := math.Inf(1)
		for _, ls := range links {
			if ls.n > 0 {
				if share := ls.rem / float64(ls.n); share < level {
					level = share
				}
			}
		}
		capBound := false
		for i, f := range comp {
			if !fixed[i] && f.cap > 0 && f.cap <= level {
				level = f.cap
				capBound = true
			}
		}
		if math.IsInf(level, 1) {
			// Flows with no links and no cap: local transfers. Mark them
			// unconstrained; completion is immediate after latency.
			for i := range comp {
				if !fixed[i] {
					rates[i] = math.Inf(1)
					fixed[i] = true
					unfixed--
				}
			}
			break
		}
		// Fix every unfixed flow that is constrained at this level: either
		// its cap equals the level, or it crosses a link whose fair share
		// equals the level (within rounding).
		progressed := false
		for i, f := range comp {
			if fixed[i] || !e.constrainedAt(f, level, capBound) {
				continue
			}
			rates[i] = level
			fixed[i] = true
			unfixed--
			progressed = true
			e.consume(f, level)
		}
		if !progressed {
			// Numerical corner: no flow matched the level within rounding.
			// Force-fix only the flows sitting at the minimal constraint —
			// force-fixing everything would freeze flows that still cross
			// unsaturated links at an arbitrary rate.
			forced := false
			for i, f := range comp {
				if fixed[i] || !e.atMinimalConstraint(f, level) {
					continue
				}
				rates[i] = level
				fixed[i] = true
				unfixed--
				forced = true
				e.consume(f, level)
			}
			if !forced {
				// Guarantee termination even if the constraint comparison
				// itself misbehaves (NaN bandwidths and the like): fix the
				// first unfixed flow alone and re-derive a level for the
				// rest.
				for i, f := range comp {
					if fixed[i] {
						continue
					}
					rates[i] = level
					fixed[i] = true
					unfixed--
					e.consume(f, level)
					break
				}
			}
		}
	}

	for i, f := range comp {
		e.applyRate(f, rates[i])
	}
}

// constrainedAt reports whether f is bottlenecked at the given fill level:
// its cap equals the level, or one of its links' fair shares does (within
// rounding).
func (e *Engine) constrainedAt(f *flow, level float64, capBound bool) bool {
	const relEps = 1e-12
	if capBound && f.cap > 0 && f.cap <= level*(1+relEps) {
		return true
	}
	for _, ls := range f.lstates {
		if ls.n > 0 && ls.rem/float64(ls.n) <= level*(1+relEps) {
			return true
		}
	}
	return false
}

// atMinimalConstraint reports whether f's own tightest constraint (its cap
// or one of its links' fair shares) is no larger than level. Used by the
// force-fix fallback to pick only the flows actually at the stuck level.
func (e *Engine) atMinimalConstraint(f *flow, level float64) bool {
	if f.cap > 0 && f.cap <= level {
		return true
	}
	for _, ls := range f.lstates {
		if ls.n > 0 && ls.rem/float64(ls.n) <= level {
			return true
		}
	}
	return false
}

// consume removes a fixed flow's allocation from its links' remaining
// capacity.
func (e *Engine) consume(f *flow, level float64) {
	for _, ls := range f.lstates {
		ls.rem -= level
		if ls.rem < 0 {
			ls.rem = 0
		}
		ls.n--
	}
}

// applyRate installs a freshly solved rate: it materializes the flow's
// remaining bytes at the current time under the old rate, reprojects the
// completion time, and maintains the completion heap and the stalled list.
// A no-op when the rate is unchanged, which keeps the flow's arithmetic —
// and hence its completion time — bit-identical whether or not unrelated
// components were re-solved around it.
func (e *Engine) applyRate(f *flow, r float64) {
	if r == 0 {
		// Handled before the unchanged-rate shortcut: a brand-new flow's
		// rate field is already 0, but it still must enter the stalled list
		// so it is re-examined on every recompute and shows up in deadlock
		// diagnostics.
		if f.rate > 0 && !math.IsInf(f.rate, 1) {
			f.rem -= f.rate * (e.now - f.lastT)
		}
		f.lastT = e.now
		f.rate = 0
		f.finish = math.Inf(1)
		if f.heapIdx >= 0 {
			e.completions.remove(f)
		}
		if f.stallIdx < 0 {
			f.stallIdx = len(e.stalled)
			e.stalled = append(e.stalled, f)
		}
		return
	}
	if r == f.rate {
		return
	}
	if f.rate > 0 && !math.IsInf(f.rate, 1) {
		f.rem -= f.rate * (e.now - f.lastT)
	}
	f.lastT = e.now
	f.rate = r
	if math.IsInf(r, 1) {
		f.finish = e.now
	} else {
		f.finish = f.lastT + f.rem/r
	}
	e.dropStalled(f)
	if f.heapIdx >= 0 {
		e.completions.fix(f)
	} else {
		e.completions.push(f)
	}
}
