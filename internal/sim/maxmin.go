package sim

import "math"

// flow is the fluid stage of a communication: an amount of bytes crossing a
// set of links, sharing their capacity with the other active flows.
type flow struct {
	comm  *Comm
	links []*Link
	// cap bounds the rate of this flow regardless of link shares (0 = no
	// bound). The SMPI model uses it to apply bandwidth correction factors.
	cap float64
	// rate is the current max-min allocation, recomputed whenever the flow
	// set changes.
	rate float64
	// rem is the number of bytes still to transfer.
	rem float64
}

// recomputeShares assigns a rate to every active flow using progressive
// filling (bounded max-min fairness): repeatedly find the most constrained
// resource — either a saturated link or a flow's own rate cap — fix the
// corresponding flows, remove their consumption, and continue. The result is
// the classic max-min allocation: no flow can increase its rate without
// decreasing that of a flow with an equal or smaller rate.
func (e *Engine) recomputeShares() {
	e.sharesDirty = false
	flows := e.flows
	if len(flows) == 0 {
		return
	}

	// Collect the links crossed by at least one flow, deterministically
	// (first-seen order).
	idx := e.linkIndex
	for k := range idx {
		delete(idx, k)
	}
	states := e.linkStates[:0]
	for _, f := range flows {
		f.rate = 0
		for _, l := range f.links {
			if _, ok := idx[l]; !ok {
				idx[l] = len(states)
				states = append(states, linkScratch{rem: l.Bandwidth})
			}
			states[idx[l]].n++
		}
	}
	e.linkStates = states

	unfixed := len(flows)
	fixed := make([]bool, len(flows))
	for unfixed > 0 {
		// Candidate level: the smallest of link fair shares and flow caps.
		level := math.Inf(1)
		for _, s := range states {
			if s.n > 0 {
				if share := s.rem / float64(s.n); share < level {
					level = share
				}
			}
		}
		capBound := false
		for i, f := range flows {
			if !fixed[i] && f.cap > 0 && f.cap <= level {
				level = f.cap
				capBound = true
			}
		}
		if math.IsInf(level, 1) {
			// Flows with no links and no cap: local transfers. Mark them
			// unconstrained; completion is immediate after latency.
			for i, f := range flows {
				if !fixed[i] {
					f.rate = math.Inf(1)
					fixed[i] = true
					unfixed--
				}
			}
			break
		}
		// Fix every unfixed flow that is constrained at this level: either
		// its cap equals the level, or it crosses a link whose fair share
		// equals the level (within rounding).
		const relEps = 1e-12
		progressed := false
		for i, f := range flows {
			if fixed[i] {
				continue
			}
			constrained := capBound && f.cap > 0 && f.cap <= level*(1+relEps)
			if !constrained {
				for _, l := range f.links {
					s := &states[idx[l]]
					if s.n > 0 && s.rem/float64(s.n) <= level*(1+relEps) {
						constrained = true
						break
					}
				}
			}
			if !constrained {
				continue
			}
			f.rate = level
			fixed[i] = true
			unfixed--
			progressed = true
			for _, l := range f.links {
				s := &states[idx[l]]
				s.rem -= level
				if s.rem < 0 {
					s.rem = 0
				}
				s.n--
			}
		}
		if !progressed {
			// Numerical corner: force-fix the flows at the level to
			// guarantee termination.
			for i, f := range flows {
				if fixed[i] {
					continue
				}
				f.rate = level
				fixed[i] = true
				unfixed--
				for _, l := range f.links {
					s := &states[idx[l]]
					s.rem -= level
					if s.rem < 0 {
						s.rem = 0
					}
					s.n--
				}
			}
		}
	}
}

// linkScratch is per-link working state for the max-min solver, kept on the
// engine to avoid per-recompute allocations.
type linkScratch struct {
	rem float64
	n   int
}
