package sim

import "fmt"

// CommState tracks the lifecycle of a communication.
type CommState int

// Communication lifecycle states.
const (
	// CommPending: one side (send or recv) has been posted, waiting for the
	// matching side.
	CommPending CommState = iota
	// CommLatency: both sides are known (or the send is detached); the
	// transfer is in its latency stage.
	CommLatency
	// CommFlowing: the transfer is in its fluid (bandwidth) stage.
	CommFlowing
	// CommDone: all bytes have been delivered.
	CommDone
)

func (s CommState) String() string {
	switch s {
	case CommPending:
		return "pending"
	case CommLatency:
		return "latency"
	case CommFlowing:
		return "flowing"
	case CommDone:
		return "done"
	}
	return fmt.Sprintf("CommState(%d)", int(s))
}

// Comm is a point-to-point data transfer between two hosts. It is created by
// the first side to post (send or receive) and completed when the last byte
// is delivered. The MPI layer composes Comms into the full MPI semantics
// (eager, rendezvous, collectives).
type Comm struct {
	// ID is a unique, monotonically increasing identifier (deterministic).
	ID int64
	// Mailbox is the rendezvous point name this comm was matched on.
	Mailbox string
	// Size is the payload size in bytes.
	Size float64
	// Payload is an arbitrary value carried from sender to receiver.
	Payload any
	// Detached reports whether the sender fire-and-forgot this transfer
	// (eager mode small messages in the paper: "the send corresponds to the
	// time of a copy of the data in the memory").
	Detached bool

	src, dst   *Host
	sender     *Proc // nil once detached
	receiver   *Proc // nil until recv posted
	state      CommState
	hasSend    bool
	hasRecv    bool
	fl         *flow
	engine     *Engine
	waiters    []*Proc
	startTime  float64
	finishTime float64

	// flowStore is the comm's fluid stage, embedded to avoid a separate
	// allocation per transfer; fl points at it while flowing. waiterBuf
	// similarly backs waiters for the common one-or-two-waiter case.
	flowStore flow
	waiterBuf [2]*Proc
}

// State returns the comm's lifecycle state.
func (c *Comm) State() CommState { return c.state }

// Done reports whether the transfer has fully completed.
func (c *Comm) Done() bool { return c.state == CommDone }

// Src returns the sending host (nil until the send side is posted).
func (c *Comm) Src() *Host { return c.src }

// Dst returns the receiving host (nil until the receive side is posted).
func (c *Comm) Dst() *Host { return c.dst }

// StartTime returns the simulated time at which the transfer started moving
// (both sides matched), and FinishTime the time of full delivery. They are
// meaningful only once the corresponding state has been reached.
func (c *Comm) StartTime() float64 { return c.startTime }

// FinishTime returns the simulated completion time of the transfer.
func (c *Comm) FinishTime() float64 { return c.finishTime }

// mailbox is a named rendezvous point where sends and receives match in
// FIFO order, as in SimGrid/SMPI.
type mailbox struct {
	name  string
	sends []*Comm // posted sends not yet matched by a recv
	recvs []*Comm // posted recvs not yet matched by a send
}

func (e *Engine) mailbox(name string) *mailbox {
	mb, ok := e.mailboxes[name]
	if !ok {
		mb = &mailbox{name: name}
		e.mailboxes[name] = mb
	}
	return mb
}

// postSend registers a send on mailbox mb. If a receive is already waiting
// the comm starts immediately; otherwise (or if detached) it is queued.
func (e *Engine) postSend(mbName string, p *Proc, size float64, payload any, detached bool) *Comm {
	mb := e.mailbox(mbName)
	if len(mb.recvs) > 0 {
		c := mb.recvs[0]
		mb.recvs = mb.recvs[1:]
		c.Size = size
		c.Payload = payload
		c.Detached = detached
		c.src = p.Host
		c.sender = p
		c.hasSend = true
		e.startComm(c)
		return c
	}
	e.commSeq++
	c := &Comm{
		ID:       e.commSeq,
		Mailbox:  mbName,
		Size:     size,
		Payload:  payload,
		Detached: detached,
		src:      p.Host,
		sender:   p,
		hasSend:  true,
		state:    CommPending,
		engine:   e,
	}
	if detached {
		// A detached send needs no matching receive to start moving: the
		// data is pushed toward the destination mailbox and buffered there.
		// The destination host is resolved when the receive is posted; until
		// then the transfer is held in the mailbox queue. To model the eager
		// protocol's behaviour — data travels immediately — we optimistically
		// start the transfer toward the mailbox's pinned host if one is
		// declared, and otherwise defer to match time.
		if dst, ok := e.mailboxHosts[mbName]; ok {
			c.dst = dst
			mb.sends = append(mb.sends, c)
			e.startComm(c)
			return c
		}
	}
	mb.sends = append(mb.sends, c)
	return c
}

// postRecv registers a receive on mailbox mb. If a send is waiting the comm
// starts (or, for an in-flight detached send, is simply claimed).
func (e *Engine) postRecv(mbName string, p *Proc) *Comm {
	mb := e.mailbox(mbName)
	if len(mb.sends) > 0 {
		c := mb.sends[0]
		mb.sends = mb.sends[1:]
		c.receiver = p
		c.hasRecv = true
		if c.state == CommPending {
			c.dst = p.Host
			e.startComm(c)
		}
		// If the detached transfer is already in flight (or done), the
		// receive just attaches to it.
		return c
	}
	e.commSeq++
	c := &Comm{
		ID:       e.commSeq,
		Mailbox:  mbName,
		dst:      p.Host,
		receiver: p,
		hasRecv:  true,
		state:    CommPending,
		engine:   e,
	}
	mb.recvs = append(mb.recvs, c)
	return c
}

// PinMailbox declares that receives on mailbox name will always be posted
// from host h. This lets detached (eager) sends start their transfer before
// the receive is posted, which is exactly the behaviour the paper's SMPI
// backend models for small messages. The MPI layer pins one mailbox per
// (src,dst) pair at initialization.
func (e *Engine) PinMailbox(name string, h *Host) {
	e.mailboxHosts[name] = h
}

// startComm moves a matched (or detached-started) comm into its latency
// stage and schedules the transition to the fluid stage.
func (e *Engine) startComm(c *Comm) {
	if c.src == nil || c.dst == nil {
		panic("sim: startComm with unresolved endpoints")
	}
	route := e.router.Route(c.src, c.dst)
	for _, l := range route.Links {
		if l.Bandwidth <= 0 {
			e.fail(fmt.Errorf("sim: comm %d crosses link %s with non-positive bandwidth", c.ID, l.Name))
			return
		}
	}
	latency, cap := e.netModel.Effective(route, c.Size)
	c.state = CommLatency
	c.startTime = e.now
	e.stats.CommsStarted++
	c.flowStore = flow{comm: c, links: route.Links, cap: cap, rem: c.Size}
	e.afterFlow(latency, c)
}

// flowStage moves a comm whose latency stage has elapsed into its fluid
// (bandwidth-shared) stage, or completes it outright when it carries no
// payload.
func (e *Engine) flowStage(c *Comm) {
	if c.Size <= 0 {
		e.completeComm(c)
		return
	}
	c.state = CommFlowing
	c.fl = &c.flowStore
	e.addFlow(c.fl)
}

// completeComm marks a transfer done and wakes every process waiting on it.
func (e *Engine) completeComm(c *Comm) {
	c.state = CommDone
	c.finishTime = e.now
	c.fl = nil
	e.stats.CommsCompleted++
	for _, p := range c.waiters {
		e.wake(p)
	}
	c.waiters = c.waiters[:0]
}
