package sim

import "fmt"

// CommState tracks the lifecycle of a communication.
type CommState int

// Communication lifecycle states.
const (
	// CommPending: one side (send or recv) has been posted, waiting for the
	// matching side.
	CommPending CommState = iota
	// CommLatency: both sides are known (or the send is detached); the
	// transfer is in its latency stage.
	CommLatency
	// CommFlowing: the transfer is in its fluid (bandwidth) stage.
	CommFlowing
	// CommDone: all bytes have been delivered.
	CommDone
)

func (s CommState) String() string {
	switch s {
	case CommPending:
		return "pending"
	case CommLatency:
		return "latency"
	case CommFlowing:
		return "flowing"
	case CommDone:
		return "done"
	}
	return fmt.Sprintf("CommState(%d)", int(s))
}

// Comm is a point-to-point data transfer between two hosts. It is created by
// the first side to post (send or receive) and completed when the last byte
// is delivered. The MPI layer composes Comms into the full MPI semantics
// (eager, rendezvous, collectives).
type Comm struct {
	// ID is a unique, monotonically increasing identifier (deterministic).
	ID int64
	// Size is the payload size in bytes.
	Size float64
	// Payload is an arbitrary value carried from sender to receiver.
	Payload any
	// Detached reports whether the sender fire-and-forgot this transfer
	// (eager mode small messages in the paper: "the send corresponds to the
	// time of a copy of the data in the memory").
	Detached bool

	// box identifies the mailbox this comm was posted on; the name is
	// materialized lazily (Mailbox) so rank-pair transfers never allocate a
	// string on the hot path.
	box        Mbox
	src, dst   *Host
	sender     *Proc // nil once detached
	receiver   *Proc // nil until recv posted
	state      CommState
	hasSend    bool
	hasRecv    bool
	queued     bool // sitting in a mailbox send/recv queue
	refs       int32
	fl         *flow
	engine     *Engine
	waiters    []*Proc
	startTime  float64
	finishTime float64

	// flowStore is the comm's fluid stage, embedded to avoid a separate
	// allocation per transfer; fl points at it while flowing. waiterBuf
	// similarly backs waiters for the common one-or-two-waiter case, and
	// linkBuf backs the route's link list when the router supports
	// RouterInto. All three survive recycling, so a pooled comm's transfers
	// stop allocating once the buffers have grown to their steady size.
	flowStore flow
	waiterBuf [2]*Proc
	linkBuf   []*Link
}

// State returns the comm's lifecycle state.
func (c *Comm) State() CommState { return c.state }

// Done reports whether the transfer has fully completed.
func (c *Comm) Done() bool { return c.state == CommDone }

// Src returns the sending host (nil until the send side is posted).
func (c *Comm) Src() *Host { return c.src }

// Dst returns the receiving host (nil until the receive side is posted).
func (c *Comm) Dst() *Host { return c.dst }

// Mailbox returns the name of the rendezvous point this comm was matched
// on. Pair-space names are formatted on demand: they exist only in
// diagnostics, so the quadratically many rank pairs of a large replay never
// pay for them.
func (c *Comm) Mailbox() string { return c.engine.boxName(c.box) }

// StartTime returns the simulated time at which the transfer started moving
// (both sides matched), and FinishTime the time of full delivery. They are
// meaningful only once the corresponding state has been reached.
func (c *Comm) StartTime() float64 { return c.startTime }

// FinishTime returns the simulated completion time of the transfer.
func (c *Comm) FinishTime() float64 { return c.finishTime }

// newComm hands out a Comm, recycling completed ones when the engine runs
// in pooled (pure continuation) mode.
func (e *Engine) newComm() *Comm {
	if n := len(e.commPool); n > 0 {
		c := e.commPool[n-1]
		e.commPool[n-1] = nil
		e.commPool = e.commPool[:n-1]
		linkPos := c.flowStore.linkPos[:0]
		lstates := c.flowStore.lstates[:0]
		linkBuf := c.linkBuf[:0]
		*c = Comm{engine: e}
		c.flowStore.linkPos = linkPos
		c.flowStore.lstates = lstates
		c.linkBuf = linkBuf
		return c
	}
	return &Comm{engine: e}
}

// retain marks one more holder of c (a continuation machine register or
// pending queue slot). Goroutine processes never retain, which keeps every
// Comm they can still reference out of the pool.
func (c *Comm) retain() { c.refs++ }

// removeWaiter deletes one registration of p from c's waiter list,
// preserving the wake order of the others. Wait-any registers a process on
// several comms at once and must scrub the losers after every wake.
func (c *Comm) removeWaiter(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// release drops one holder and recycles the comm if possible.
func (c *Comm) release() {
	c.refs--
	c.maybeRecycle()
}

// maybeRecycle returns a comm to the engine pool once it is completed,
// unreferenced, and out of every mailbox queue. Recycling is gated on the
// engine running only continuation machines: arbitrary goroutine bodies may
// legally hold a *Comm forever.
func (c *Comm) maybeRecycle() {
	e := c.engine
	if !e.pooled || c.refs != 0 || c.queued || c.state != CommDone {
		return
	}
	c.Payload = nil
	c.sender, c.receiver = nil, nil
	c.waiters = nil
	c.waiterBuf = [2]*Proc{}
	e.commPool = append(e.commPool, c)
}

// postSend registers a send on mailbox mb. If a receive is already waiting
// the comm starts immediately; otherwise (or if detached) it is queued.
func (e *Engine) postSend(mb *mailbox, p *Proc, size float64, payload any, detached bool) *Comm {
	if len(mb.recvs) > 0 {
		c := mb.recvs[0]
		// Pop by shifting rather than re-slicing the head off: the slice keeps
		// its base pointer, so the capacity survives reapBox's reset and the
		// recycled mailbox appends without reallocating. Queues are almost
		// always length one, so the copy is free.
		n := copy(mb.recvs, mb.recvs[1:])
		mb.recvs[n] = nil
		mb.recvs = mb.recvs[:n]
		c.queued = false
		c.Size = size
		c.Payload = payload
		c.Detached = detached
		c.src = p.Host
		c.sender = p
		c.hasSend = true
		e.reapBox(mb)
		e.startComm(c)
		return c
	}
	e.commSeq++
	c := e.newComm()
	c.ID = e.commSeq
	c.box = mb.box
	c.Size = size
	c.Payload = payload
	c.Detached = detached
	c.src = p.Host
	c.sender = p
	c.hasSend = true
	c.state = CommPending
	if detached {
		// A detached send needs no matching receive to start moving: the
		// data is pushed toward the destination mailbox and buffered there.
		// The destination host is resolved when the receive is posted; until
		// then the transfer is held in the mailbox queue. To model the eager
		// protocol's behaviour — data travels immediately — we optimistically
		// start the transfer toward the mailbox's pinned host if one is
		// declared, and otherwise defer to match time.
		if dst := e.pinnedHost(mb); dst != nil {
			c.dst = dst
			c.queued = true
			mb.sends = append(mb.sends, c)
			e.startComm(c)
			return c
		}
	}
	c.queued = true
	mb.sends = append(mb.sends, c)
	return c
}

// postRecv registers a receive on mailbox mb. If a send is waiting the comm
// starts (or, for an in-flight detached send, is simply claimed).
func (e *Engine) postRecv(mb *mailbox, p *Proc) *Comm {
	if len(mb.sends) > 0 {
		c := mb.sends[0]
		n := copy(mb.sends, mb.sends[1:])
		mb.sends[n] = nil
		mb.sends = mb.sends[:n]
		c.queued = false
		c.receiver = p
		c.hasRecv = true
		e.reapBox(mb)
		if c.state == CommPending {
			c.dst = p.Host
			e.startComm(c)
		}
		// If the detached transfer is already in flight (or done), the
		// receive just attaches to it.
		return c
	}
	e.commSeq++
	c := e.newComm()
	c.ID = e.commSeq
	c.box = mb.box
	c.dst = p.Host
	c.receiver = p
	c.hasRecv = true
	c.state = CommPending
	c.queued = true
	mb.recvs = append(mb.recvs, c)
	return c
}

// startComm moves a matched (or detached-started) comm into its latency
// stage and schedules the transition to the fluid stage.
func (e *Engine) startComm(c *Comm) {
	if c.src == nil || c.dst == nil {
		panic("sim: startComm with unresolved endpoints")
	}
	var route Route
	if e.routerInto != nil {
		// The route's links land in the comm's own buffer, which outlives the
		// flow (flowStore.links aliases it below) and is reused across
		// recycles — no per-transfer route allocation.
		route = e.routerInto.RouteInto(c.linkBuf[:0], c.src, c.dst)
		c.linkBuf = route.Links
	} else {
		route = e.router.Route(c.src, c.dst)
	}
	for _, l := range route.Links {
		if l.Bandwidth <= 0 {
			e.fail(fmt.Errorf("sim: comm %d crosses link %s with non-positive bandwidth", c.ID, l.Name))
			return
		}
	}
	latency, cap := e.netModel.Effective(route, c.Size)
	c.state = CommLatency
	c.startTime = e.now
	e.stats.CommsStarted++
	linkPos := c.flowStore.linkPos[:0]
	lstates := c.flowStore.lstates[:0]
	c.flowStore = flow{comm: c, links: route.Links, cap: cap, rem: c.Size, linkPos: linkPos, lstates: lstates}
	e.afterFlow(latency, c)
}

// flowStage moves a comm whose latency stage has elapsed into its fluid
// (bandwidth-shared) stage, or completes it outright when it carries no
// payload.
func (e *Engine) flowStage(c *Comm) {
	if c.Size <= 0 {
		e.completeComm(c)
		return
	}
	c.state = CommFlowing
	c.fl = &c.flowStore
	e.addFlow(c.fl)
}

// completeComm marks a transfer done and wakes every process waiting on it.
func (e *Engine) completeComm(c *Comm) {
	c.state = CommDone
	c.finishTime = e.now
	c.fl = nil
	e.stats.CommsCompleted++
	for _, p := range c.waiters {
		e.wake(p)
	}
	c.waiters = c.waiters[:0]
	// A transfer nobody holds a reference to (detached eager sends, the MSG
	// prototype's fire-and-forget small messages) recycles here; referenced
	// ones recycle when their last holder releases.
	c.maybeRecycle()
}
