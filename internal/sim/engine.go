package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// Stats accumulates engine-level counters, used by the efficiency
// benchmarks (the paper's second axis: how fast the replay itself runs).
type Stats struct {
	ContextSwitches int64 // process scheduling handoffs
	TimersFired     int64
	CommsStarted    int64
	CommsCompleted  int64
	ShareRecomputes int64
	Events          int64 // time-advance steps
}

// Engine is a sequential discrete-event simulator. Simulated processes run
// as goroutines but the engine resumes exactly one at a time, so simulated
// programs need no synchronization and runs are fully deterministic.
type Engine struct {
	now      float64
	router   Router
	netModel NetworkModel

	procs    []*Proc
	runq     []*Proc
	nalive   int
	timers   timerHeap
	flows    []*flow
	timerSeq int64
	commSeq  int64
	procSeq  int64

	mailboxes    map[string]*mailbox
	mailboxHosts map[string]*Host

	sharesDirty bool
	linkIndex   map[*Link]int
	linkStates  []linkScratch

	yield   chan struct{}
	current *Proc
	err     error
	stats   Stats
}

// Option configures an Engine.
type Option func(*Engine)

// WithNetworkModel installs a non-default network model (e.g. the SMPI
// piece-wise-linear factors).
func WithNetworkModel(m NetworkModel) Option {
	return func(e *Engine) { e.netModel = m }
}

// NewEngine creates an engine that routes communications with router.
func NewEngine(router Router, opts ...Option) *Engine {
	e := &Engine{
		router:       router,
		netModel:     DefaultModel{},
		mailboxes:    make(map[string]*mailbox),
		mailboxHosts: make(map[string]*Host),
		linkIndex:    make(map[*Link]int),
		yield:        make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// fail records a fatal simulation error; Run returns it after the current
// scheduling round.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// wake moves a blocked process back to the run queue.
func (e *Engine) wake(p *Proc) {
	if p.state != procBlocked {
		return
	}
	p.state = procRunnable
	p.blockedOn = ""
	e.runq = append(e.runq, p)
}

// DeadlockError is returned by Run when simulated processes remain blocked
// with no pending activity to wake them (e.g. a receive whose matching send
// is never posted — typically a malformed trace).
type DeadlockError struct {
	Time    float64
	Blocked []string // "name: reason" for each blocked process
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%g with %d blocked process(es): %s",
		d.Time, len(d.Blocked), strings.Join(d.Blocked, "; "))
}

// Run executes the simulation until every process has finished, a deadlock
// is detected, or a simulated program fails. It returns the first error.
func (e *Engine) Run() error {
	for {
		// Phase 1: let every runnable process advance until it blocks.
		for len(e.runq) > 0 && e.err == nil {
			p := e.runq[0]
			e.runq = e.runq[1:]
			e.resume(p)
		}
		if e.err != nil {
			return e.err
		}
		if e.nalive == 0 {
			return nil
		}
		// Phase 2: advance simulated time to the next event.
		if len(e.timers) == 0 && len(e.flows) == 0 {
			return e.deadlock()
		}
		if e.sharesDirty {
			e.recomputeShares()
			e.stats.ShareRecomputes++
		}
		dt := e.nextEventDelta()
		if math.IsInf(dt, 1) {
			return e.deadlock()
		}
		e.advance(dt)
		e.stats.Events++
	}
}

func (e *Engine) deadlock() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockedOn))
		}
	}
	return &DeadlockError{Time: e.now, Blocked: blocked}
}

// nextEventDelta returns the time until the earliest pending transition:
// the next timer deadline or the earliest flow completion.
func (e *Engine) nextEventDelta() float64 {
	dt := math.Inf(1)
	if len(e.timers) > 0 {
		if d := e.timers[0].deadline - e.now; d < dt {
			dt = d
		}
	}
	for _, f := range e.flows {
		if f.rate > 0 {
			if d := f.rem / f.rate; d < dt {
				dt = d
			}
		}
	}
	if dt < 0 {
		dt = 0
	}
	return dt
}

// advance moves simulated time forward by dt, progressing flows, completing
// finished transfers, and firing due timers.
func (e *Engine) advance(dt float64) {
	e.now += dt
	// Progress flows and collect completions. byteEps absorbs floating-point
	// residue: a flow within a few ULPs of empty is complete.
	if len(e.flows) > 0 {
		kept := e.flows[:0]
		for _, f := range e.flows {
			if f.rate > 0 && !math.IsInf(f.rate, 1) {
				f.rem -= f.rate * dt
			}
			byteEps := 1e-9 + 1e-12*f.comm.Size
			if math.IsInf(f.rate, 1) || f.rem <= byteEps {
				e.sharesDirty = true
				e.completeComm(f.comm)
			} else {
				kept = append(kept, f)
			}
		}
		e.flows = kept
	}
	// Fire due timers. A fired timer may schedule new timers or start flows;
	// both are picked up on the next loop iteration.
	const timeEps = 1e-12
	for len(e.timers) > 0 && e.timers[0].deadline <= e.now+timeEps {
		t := heap.Pop(&e.timers).(*timer)
		if t.canceled {
			continue
		}
		e.stats.TimersFired++
		t.fire()
	}
}
