package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// Stats accumulates engine-level counters, used by the efficiency
// benchmarks (the paper's second axis: how fast the replay itself runs).
type Stats struct {
	ContextSwitches int64 `json:"context_switches"` // process scheduling handoffs
	TimersFired     int64 `json:"timers_fired"`
	CommsStarted    int64 `json:"comms_started"`
	CommsCompleted  int64 `json:"comms_completed"`
	ShareRecomputes int64 `json:"share_recomputes"` // recompute passes (events with a dirty flow set)
	Events          int64 `json:"events"`           // time-advance steps
	// ComponentsResolved counts connected components re-solved by the
	// incremental max-min solver and FlowsResolved the flows they contained;
	// FlowsResolved/ComponentsResolved is the mean re-solve scope, the
	// measure of how much work incrementality avoids versus a from-scratch
	// solve (which re-solves every active flow on every pass).
	ComponentsResolved int64 `json:"components_resolved"`
	FlowsResolved      int64 `json:"flows_resolved"`
	// MaxComponentFlows is the largest single component (in flows) handed to
	// the solver over the whole run. Structured topologies (fat tree,
	// dragonfly, torus) are characterized by how large this grows relative
	// to the active flow count: a full-bisection crossbar keeps components
	// tiny, while a congested torus can fuse every active flow into one.
	MaxComponentFlows int64 `json:"max_component_flows"`
}

// Engine is a sequential discrete-event simulator. Simulated processes run
// as goroutines but the engine resumes exactly one at a time, so simulated
// programs need no synchronization and runs are fully deterministic.
type Engine struct {
	now        float64
	router     Router
	routerInto RouterInto // non-nil when router supports buffer-reusing routing
	netModel   NetworkModel

	procs    []*Proc
	runq     procRing
	nalive   int
	timers   timerHeap
	timerSeq int64
	commSeq  int64
	procSeq  int64

	// Mailbox registries: every live mailbox keyed by integer id, the pair
	// namespaces, the named-mailbox (space 0) name table, and the recycle
	// pool for drained mailboxes.
	boxes        map[Mbox]*mailbox
	spaces       []*PairSpace
	namedIDs     map[string]Mbox
	namedNames   []string
	mailboxHosts map[string]*Host

	// Object recycling for the continuation kernel. pooled starts true and
	// is permanently cleared the moment a goroutine process or an external
	// step function is spawned — those may retain *Comm (or timer) handles
	// forever, so their engines must never reuse the objects.
	pooled    bool
	commPool  []*Comm
	timerPool []*timer
	boxPool   []*mailbox

	// goroutineProcs records that WithGoroutineProcs selected the legacy
	// goroutine-per-process execution mode (layers above consult it when
	// choosing how to spawn ranks).
	goroutineProcs bool

	// Fluid-network state: all active flows, the per-link registries tying
	// them into connected components, the min-heap of projected completion
	// times, and the flows stalled at rate 0 (re-examined every recompute
	// and reported in deadlock diagnostics).
	active      []*flow
	linkStates  map[*Link]*linkState
	completions flowHeap
	stalled     []*flow
	flowSeq     int64

	// Incremental-solver bookkeeping: seeds accumulated since the last
	// recompute, the traversal generation, reusable scratch buffers, and
	// the from-scratch escape hatch.
	sharesDirty bool
	dirtyFlows  []*flow
	dirtyLinks  []*linkState
	mark        int64
	compBuf     []*flow
	compLinkBuf []*linkState
	rateBuf     []float64
	fixedBuf    []bool
	stallSeeds  []*flow
	fromScratch bool

	yield   chan struct{}
	current *Proc
	err     error
	stats   Stats
}

// Option configures an Engine.
type Option func(*Engine)

// WithNetworkModel installs a non-default network model (e.g. the SMPI
// piece-wise-linear factors).
func WithNetworkModel(m NetworkModel) Option {
	return func(e *Engine) { e.netModel = m }
}

// WithFromScratchSharing disables the incremental max-min solver: every
// recompute re-solves every active flow, as the kernel originally did. The
// allocation is identical by construction; the option exists as the
// reference for equivalence tests and before/after benchmarks.
func WithFromScratchSharing() Option {
	return func(e *Engine) { e.fromScratch = true }
}

// WithGoroutineProcs selects the legacy goroutine-per-process execution mode
// for layers that support both (the replay core spawns goroutine rank bodies
// instead of compiled continuation programs when set). The two modes produce
// bit-identical simulated times and stats; the goroutine mode exists for
// differential testing and as the ergonomic API for hand-written process
// bodies.
func WithGoroutineProcs() Option {
	return func(e *Engine) { e.goroutineProcs = true }
}

// GoroutineProcs reports whether WithGoroutineProcs was set.
func (e *Engine) GoroutineProcs() bool { return e.goroutineProcs }

// NewEngine creates an engine that routes communications with router.
func NewEngine(router Router, opts ...Option) *Engine {
	e := &Engine{
		router:       router,
		netModel:     DefaultModel{},
		boxes:        make(map[Mbox]*mailbox),
		namedIDs:     make(map[string]Mbox),
		mailboxHosts: make(map[string]*Host),
		linkStates:   make(map[*Link]*linkState),
		yield:        make(chan struct{}),
		pooled:       true,
	}
	e.routerInto, _ = router.(RouterInto)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// fail records a fatal simulation error; Run returns it after the current
// scheduling round.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// wake moves a blocked process back to the run queue.
func (e *Engine) wake(p *Proc) {
	if p.state != procBlocked {
		return
	}
	p.state = procRunnable
	p.blockedOn = blockInfo{}
	e.runq.push(p)
}

// DeadlockError is returned by Run when simulated processes remain blocked
// with no pending activity to wake them (e.g. a receive whose matching send
// is never posted — typically a malformed trace). Stalled lists in-flight
// transfers frozen at rate 0 (their links' capacity fully consumed by
// cap-bounded flows), which block their waiters just as surely as a missing
// match does.
type DeadlockError struct {
	Time    float64
	Blocked []string // "name: reason" for each blocked process
	Stalled []string // description of each zero-rate flow
}

func (d *DeadlockError) Error() string {
	msg := fmt.Sprintf("sim: deadlock at t=%g with %d blocked process(es): %s",
		d.Time, len(d.Blocked), strings.Join(d.Blocked, "; "))
	if len(d.Stalled) > 0 {
		msg += fmt.Sprintf("; %d stalled flow(s): %s", len(d.Stalled), strings.Join(d.Stalled, "; "))
	}
	return msg
}

// Run executes the simulation until every process has finished, a deadlock
// is detected, or a simulated program fails. It returns the first error.
func (e *Engine) Run() error {
	for {
		// Phase 1: let every runnable process advance until it blocks.
		for e.runq.len() > 0 && e.err == nil {
			e.resume(e.runq.pop())
		}
		if e.err != nil {
			return e.err
		}
		if e.nalive == 0 {
			return nil
		}
		// Phase 2: advance simulated time to the next event.
		if len(e.timers) == 0 && len(e.active) == 0 {
			return e.deadlock()
		}
		if e.sharesDirty {
			e.recomputeShares()
			e.stats.ShareRecomputes++
		}
		dt := e.nextEventDelta()
		if math.IsInf(dt, 1) {
			return e.deadlock()
		}
		e.advance(dt)
		e.stats.Events++
	}
}

func (e *Engine) deadlock() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == procBlocked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockedOn))
		}
	}
	var stalled []string
	for _, f := range e.stalled {
		stalled = append(stalled, fmt.Sprintf("comm %d on %q (%s -> %s): %g of %g bytes left at rate 0",
			f.comm.ID, f.comm.Mailbox(), f.comm.src, f.comm.dst, f.rem, f.comm.Size))
	}
	return &DeadlockError{Time: e.now, Blocked: blocked, Stalled: stalled}
}

// nextEventDelta returns the time until the earliest pending transition:
// the next timer deadline or the earliest projected flow completion.
func (e *Engine) nextEventDelta() float64 {
	dt := math.Inf(1)
	if len(e.timers) > 0 {
		if d := e.timers[0].deadline - e.now; d < dt {
			dt = d
		}
	}
	if len(e.completions) > 0 {
		if d := e.completions[0].finish - e.now; d < dt {
			dt = d
		}
	}
	if dt < 0 {
		dt = 0
	}
	return dt
}

// completable reports whether f's transfer is over at simulated time now.
// byteEps absorbs floating-point residue: a flow within a few ULPs of empty
// is complete. The finish <= now clause additionally catches projections so
// close that now+dt rounds to now, which would otherwise spin the event
// loop at zero dt.
func (f *flow) completable(now float64) bool {
	if math.IsInf(f.rate, 1) || f.finish <= now {
		return true
	}
	byteEps := 1e-9 + 1e-12*f.comm.Size
	return f.rem-f.rate*(now-f.lastT) <= byteEps
}

// advance moves simulated time forward by dt, completing finished transfers
// and firing due timers.
func (e *Engine) advance(dt float64) {
	e.now += dt
	for len(e.completions) > 0 && e.completions[0].completable(e.now) {
		f := e.completions.pop()
		e.removeFlow(f)
		e.completeComm(f.comm)
	}
	// Fire due timers. A fired timer may schedule new timers or start flows;
	// both are picked up on the next loop iteration. Canceled timers are
	// removed from the heap eagerly by cancel; the flag check is a backstop.
	const timeEps = 1e-12
	for len(e.timers) > 0 && e.timers[0].deadline <= e.now+timeEps {
		t := heap.Pop(&e.timers).(*timer)
		if t.canceled {
			continue
		}
		e.stats.TimersFired++
		e.dispatch(t)
	}
}
