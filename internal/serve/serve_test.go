package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tireplay/internal/platform"
	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

func flatSpec(hosts int) *platform.Spec {
	return &platform.Spec{
		Name: "test", Topology: "flat", Hosts: hosts, Speed: 1e9,
		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
	}
}

// luSweep builds an LU grid over procs x the given iteration values.
// Sweeps with overlapping iters share scenario fingerprints point for
// point, which is what the dedup tests exercise.
func luSweep(name string, iters ...any) *sweep.Sweep {
	return &sweep.Sweep{
		Name: name,
		Base: scenario.Scenario{
			Platform: flatSpec(4),
			Workload: &scenario.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 2, Iterations: 1},
		},
		NameFormat: "lu-{procs}p-i{iters}",
		Axes: []sweep.Axis{
			{Name: "procs", Values: []any{
				map[string]any{"workload.procs": 2, "platform.hosts": 2},
				map[string]any{"workload.procs": 4, "platform.hosts": 4},
			}, Labels: []string{"2", "4"}},
			{Name: "iters", Path: "workload.iterations", Values: iters},
		},
	}
}

// localBaseline replays the sweep in-process with sweep.Collect and
// returns fingerprint → (simulated time, actions).
func localBaseline(t *testing.T, sw *sweep.Sweep) map[string][2]float64 {
	t.Helper()
	results, err := sweep.Collect(context.Background(), sw)
	if err != nil {
		t.Fatalf("local collect: %v", err)
	}
	base := make(map[string][2]float64)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("local point %s failed: %v", r.Point.Scenario.Name, r.Err)
		}
		base[r.Point.Fingerprint] = [2]float64{r.Replay.SimulatedTime, float64(r.Replay.Actions)}
	}
	return base
}

// checkRecords asserts every streamed record matches the local baseline
// bit for bit on (fingerprint → simulated time, actions).
func checkRecords(t *testing.T, recs []*sweep.Record, base map[string][2]float64, wantLen int) {
	t.Helper()
	if len(recs) != wantLen {
		t.Fatalf("streamed %d records, want %d", len(recs), wantLen)
	}
	for _, rec := range recs {
		if rec.Err != "" {
			t.Fatalf("point %s failed: %s", rec.Name, rec.Err)
		}
		want, ok := base[rec.Fingerprint]
		if !ok {
			t.Fatalf("point %s has fingerprint %s not in the local baseline", rec.Name, rec.Fingerprint)
		}
		if rec.Replay.SimulatedTime != want[0] || float64(rec.Replay.Actions) != want[1] {
			t.Errorf("point %s: served (%v s, %v actions) != local (%v s, %v actions)",
				rec.Name, rec.Replay.SimulatedTime, rec.Replay.Actions, want[0], want[1])
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == "" {
		cfg.Store = t.TempDir()
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestEmbeddedWorkers: the server's own pool drains a sweep and the
// streamed records are bit-identical to a local sweep.Collect;
// resubmitting serves everything from the store.
func TestEmbeddedWorkers(t *testing.T) {
	ctx := context.Background()
	sw := luSweep("embedded", 1, 2)
	base := localBaseline(t, sw)

	s, ts := newTestServer(t, Config{Workers: 2})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Points != 4 || sub.Cached != 0 {
		t.Fatalf("submit accounting = %+v, want 4 points, 0 cached", sub)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, recs, base, 4)

	st := s.Stats()
	if st.Replayed != 4 {
		t.Fatalf("replayed %d points, want 4", st.Replayed)
	}

	// Resubmit: every point comes from the store, nothing replays again.
	sub2, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Cached != 4 || sub2.Pending != 0 {
		t.Fatalf("resubmit accounting = %+v, want 4 cached, 0 pending", sub2)
	}
	recs2, err := c.Collect(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, recs2, base, 4)
	for _, rec := range recs2 {
		if !rec.Cached {
			t.Errorf("resubmitted point %s not marked cached", rec.Name)
		}
	}
	if st := s.Stats(); st.Replayed != 4 {
		t.Fatalf("resubmit replayed %d extra points", st.Replayed-4)
	}
}

// TestStoreSurvivesRestart: a fresh server over the same store answers
// from it (the warm-answer-machine property).
func TestStoreSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sw := luSweep("restart", 1)

	s1, ts1 := newTestServer(t, Config{Store: dir, Workers: 1})
	c1 := NewClient(ts1.URL)
	sub, err := c1.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Collect(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{Store: dir, Workers: -1}) // no workers: cache only
	c2 := NewClient(ts2.URL)
	if st := s2.Stats(); st.StoreWarm != 2 {
		t.Fatalf("restarted server found %d warm records, want 2", st.StoreWarm)
	}
	sub2, err := c2.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Cached != 2 {
		t.Fatalf("restarted submit accounting = %+v, want 2 cached", sub2)
	}
	recs, err := c2.Collect(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

// TestDedupAcrossClientsAndWorkers is the acceptance end-to-end: two
// concurrent clients submit overlapping sweeps, two external worker
// processes (no embedded pool) drain the union, every distinct
// fingerprint replays exactly once, and both streams are bit-identical
// to a single-process sweep.Collect of the union grid.
func TestDedupAcrossClientsAndWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	swA := luSweep("client-a", 1, 2, 3)
	swB := luSweep("client-b", 2, 3, 4)
	union := luSweep("union", 1, 2, 3, 4)
	base := localBaseline(t, union)
	if len(base) != 8 {
		t.Fatalf("union grid has %d distinct fingerprints, want 8", len(base))
	}

	s, ts := newTestServer(t, Config{Workers: -1})

	// Two external workers, work-stealing from the shared queue.
	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			Work(ctx, ts.URL, WorkerOptions{Name: "w", Poll: 50 * time.Millisecond, Logf: t.Logf})
		}(i)
	}
	defer workers.Wait()
	defer cancel()

	// Two clients submit and stream concurrently.
	type out struct {
		recs []*sweep.Record
		err  error
	}
	run := func(sw *sweep.Sweep, ch chan<- out) {
		c := NewClient(ts.URL)
		sub, err := c.Submit(ctx, sw)
		if err != nil {
			ch <- out{err: err}
			return
		}
		recs, err := c.Collect(ctx, sub.ID)
		ch <- out{recs: recs, err: err}
	}
	chA, chB := make(chan out, 1), make(chan out, 1)
	go run(swA, chA)
	go run(swB, chB)
	outA, outB := <-chA, <-chB
	if outA.err != nil {
		t.Fatalf("client A: %v", outA.err)
	}
	if outB.err != nil {
		t.Fatalf("client B: %v", outB.err)
	}
	checkRecords(t, outA.recs, base, 6)
	checkRecords(t, outB.recs, base, 6)

	st := s.Stats()
	if st.Replayed != 8 {
		t.Fatalf("replayed %d points for 8 distinct fingerprints (stats %+v)", st.Replayed, st)
	}
	if st.Failed != 0 {
		t.Fatalf("%d points failed (stats %+v)", st.Failed, st)
	}
	// The 4 shared fingerprints were answered without replaying: merged
	// onto in-flight work or served from the store, depending on timing.
	if st.Merged+st.CacheHits != 4 {
		t.Fatalf("merged %d + cache hits %d, want 4 deduplicated points (stats %+v)",
			st.Merged, st.CacheHits, st)
	}
}

// TestLeaseExpiry: a worker that takes a lease and dies has its point
// reclaimed by the TTL janitor and re-leased, and the sweep still
// completes bit-identical to a local sweep.Collect.
func TestLeaseExpiry(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sw := luSweep("expiry", 1, 2)
	base := localBaseline(t, sw)

	s, ts := newTestServer(t, Config{Workers: -1, LeaseTTL: 80 * time.Millisecond})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases a point and is never heard from again.
	dead, err := c.Lease(ctx, "doomed", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dead == nil {
		t.Fatal("no lease for the doomed worker")
	}

	// A healthy worker drains the sweep, including the reclaimed point.
	var worker sync.WaitGroup
	worker.Add(1)
	go func() {
		defer worker.Done()
		Work(ctx, ts.URL, WorkerOptions{Name: "healthy", Poll: 30 * time.Millisecond, Logf: t.Logf})
	}()
	defer worker.Wait()
	defer cancel()

	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, recs, base, 4)

	st := s.Stats()
	if st.ExpiredLeases < 1 {
		t.Fatalf("no lease expired (stats %+v)", st)
	}
	var found bool
	for _, rec := range recs {
		if rec.Fingerprint == dead.Fingerprint {
			found = true
		}
	}
	if !found {
		t.Fatalf("the dead worker's point %s never completed", dead.Fingerprint)
	}
}

// TestLateResultIdempotent: a result posted after the lease expired (and
// after another worker already completed the point) is accepted and
// changes nothing.
func TestLateResultIdempotent(t *testing.T) {
	ctx := context.Background()
	// A single-point sweep (no axes): the slow worker is the only one
	// ever leased, so both posts target the same completed point.
	sw := &sweep.Sweep{
		Name: "late",
		Base: scenario.Scenario{
			Platform: flatSpec(2),
			Workload: &scenario.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 2, Iterations: 1},
		},
	}
	s, ts := newTestServer(t, Config{Workers: -1, LeaseTTL: 60 * time.Millisecond})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}

	l, err := c.Lease(ctx, "slow", time.Second)
	if err != nil || l == nil {
		t.Fatalf("lease: %v %v", l, err)
	}
	// Let it expire, have someone else finish the point...
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.ExpiredLeases >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res := runLease(ctx, c, l)
	if res.Err != "" {
		t.Fatalf("slow replay failed: %s", res.Err)
	}
	if err := c.PushResult(ctx, res); err != nil {
		t.Fatalf("first (late) post rejected: %v", err)
	}
	// ...and post again: idempotent.
	if err := c.PushResult(ctx, res); err != nil {
		t.Fatalf("duplicate post rejected: %v", err)
	}
	if st := s.Stats(); st.Replayed != 1 {
		t.Fatalf("replayed count %d after duplicate posts, want 1", st.Replayed)
	}
	if _, err := c.Collect(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPErrors: strict spec decoding and unknown IDs surface as
// client-readable HTTP errors.
func TestHTTPErrors(t *testing.T) {
	ctx := context.Background()
	_, ts := newTestServer(t, Config{Workers: -1})
	c := NewClient(ts.URL)

	// Typoed axis field → 400 naming the field (strict decoder).
	bad := &sweep.Sweep{
		Base: scenario.Scenario{
			Platform: flatSpec(2),
			Workload: &scenario.WorkloadSpec{Benchmark: "lu", Class: "S", Procs: 2},
		},
		Axes: []sweep.Axis{{Name: "procs", Path: "workload.procz", Values: []any{2}}},
	}
	if _, err := c.Submit(ctx, bad); err == nil || !strings.Contains(err.Error(), "procz") {
		t.Fatalf("typoed axis path error = %v, want mention of procz", err)
	}

	if _, err := c.Status(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("unknown sweep status error = %v", err)
	}
	if _, err := c.Collect(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("unknown sweep stream error = %v", err)
	}
	if err := c.Heartbeat(ctx, "nope"); err == nil {
		t.Fatal("heartbeat on unknown lease succeeded")
	}
	if err := c.PushResult(ctx, &WorkerResult{Fingerprint: "nope", Err: "x"}); err == nil {
		t.Fatal("result for unknown fingerprint accepted")
	}
}

// TestStatus: progress accounting over a sweep's lifetime.
func TestStatus(t *testing.T) {
	ctx := context.Background()
	sw := luSweep("status", 1)
	_, ts := newTestServer(t, Config{Workers: 1})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Collect(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 2 || st.Done != 2 || st.Failed != 0 {
		t.Fatalf("status = %+v, want 2/2 done", st)
	}
}
