package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tireplay/internal/core"
	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// restartable runs a Server behind a plain TCP listener whose address a
// later incarnation can re-bind — the restart tests need the "same
// server" to come back where the client expects it.
type restartable struct {
	s    *Server
	hs   *http.Server
	addr string
}

func startServerAt(t *testing.T, addr string, cfg Config) *restartable {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			s.Close()
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln) //nolint:errcheck // returns on Close
	return &restartable{s: s, hs: hs, addr: ln.Addr().String()}
}

// kill drops the listener (cutting every open connection) and stops the
// server. The journal and store stay on disk for the next incarnation.
func (r *restartable) kill() {
	r.hs.Close()
	r.s.Close()
}

func fastRetry() RetryPolicy {
	return RetryPolicy{Max: 40, Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond}
}

// TestKillRestartMidSweep is the crash-safety end-to-end: a sweep is
// half-drained, the server process dies mid-stream, a new server over
// the same store+journal re-registers the sweep under the same ID and
// requeues only the unfinished points, and the client's open Stream
// resumes transparently — final record set bit-identical to an
// uninterrupted sweep.Collect, each sequence number delivered exactly
// once.
func TestKillRestartMidSweep(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sw := luSweep("kill-restart", 1, 2) // 4 points
	base := localBaseline(t, sw)

	srv1 := startServerAt(t, "127.0.0.1:0", Config{Store: dir, Workers: -1, LeaseTTL: time.Second})
	c := NewClient("http://" + srv1.addr)
	c.Retry = fastRetry()
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}

	// Stream in the background, observing progress.
	var mu sync.Mutex
	var got []*sweep.Record
	streamDone := make(chan error, 1)
	go func() {
		for rec, err := range c.Stream(ctx, sub.ID) {
			if err != nil {
				streamDone <- err
				return
			}
			mu.Lock()
			got = append(got, rec)
			mu.Unlock()
		}
		streamDone <- nil
	}()

	// Hand-drain two points (no workers are running), then wait until the
	// stream has seen them.
	for i := 0; i < 2; i++ {
		l, err := c.Lease(ctx, "manual", 2*time.Second)
		if err != nil || l == nil {
			t.Fatalf("lease %d: %v %v", i, l, err)
		}
		res := runLease(ctx, c, l)
		if res.Err != "" {
			t.Fatalf("manual replay failed: %s", res.Err)
		}
		if err := c.PushResult(ctx, res); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "stream to see the pre-crash records", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 2
	})

	// Kill the server mid-stream, then bring a new one up at the same
	// address over the same store and journal, this time with embedded
	// workers to finish the job.
	srv1.kill()
	srv2 := startServerAt(t, srv1.addr, Config{Store: dir, Workers: 2, LeaseTTL: time.Second})
	defer srv2.kill()

	if st := srv2.s.Stats(); st.RecoveredSweeps != 1 {
		t.Fatalf("restarted server recovered %d sweeps, want 1 (stats %+v)", st.RecoveredSweeps, st)
	}

	select {
	case err := <-streamDone:
		if err != nil {
			t.Fatalf("stream across restart: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream never finished after the restart")
	}

	mu.Lock()
	defer mu.Unlock()
	checkRecords(t, got, base, 4)
	for i, rec := range got {
		if rec.Seq != int64(i+1) {
			t.Errorf("record %d has seq %d, want %d (duplicate or gap across restart)", i, rec.Seq, i+1)
		}
	}
	// Only the two unfinished points replayed on the new server.
	if st := srv2.s.Stats(); st.Replayed != 2 {
		t.Errorf("restarted server replayed %d points, want 2 (stats %+v)", st.Replayed, st)
	}
}

// TestStreamSequenceAndAfter: records carry 1-based sequence numbers and
// ?after=N resumes past them; a nonsense offset is a 400.
func TestStreamSequenceAndAfter(t *testing.T) {
	ctx := context.Background()
	sw := luSweep("seq", 1, 2) // 4 points
	_, ts := newTestServer(t, Config{Workers: 2})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}

	// Raw resume from the middle: exactly the records past seq 2, in order.
	resp, err := http.Get(ts.URL + "/sweeps/" + sub.ID + "/results?after=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tail []*sweep.Record
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var rec sweep.Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, &rec)
	}
	if len(tail) != 2 || tail[0].Seq != 3 || tail[1].Seq != 4 {
		t.Fatalf("after=2 returned %d records (%+v), want seqs 3,4", len(tail), tail)
	}
	for i, rec := range tail {
		if rec.Fingerprint != recs[i+2].Fingerprint {
			t.Errorf("after=2 record %d is %s, want %s", i, rec.Fingerprint, recs[i+2].Fingerprint)
		}
	}

	if resp, err := http.Get(ts.URL + "/sweeps/" + sub.ID + "/results?after=99"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("after=99 got status %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestChaosStream: a client whose every request runs through a seeded
// fault-injecting transport (drops, 500s, mid-body cuts, delays) still
// converges to the clean-run baseline — same records, each sequence
// number exactly once — because submissions are idempotent and streams
// resume by sequence.
func TestChaosStream(t *testing.T) {
	ctx := context.Background()
	sw := luSweep("chaos", 1, 2, 3) // 6 points
	base := localBaseline(t, sw)

	s, ts := newTestServer(t, Config{Workers: 2})
	// Seed 1's schedule opens with a dropped submit and cuts/500s across
	// the early stream attempts — every fault kind fires (the schedule is
	// deterministic, so this is a property of the seed, not luck).
	chaos := &ChaosTransport{
		Seed:  1,
		PDrop: 0.25, P500: 0.15, PCut: 0.20, PDelay: 0.3,
		MaxDelay: 4 * time.Millisecond,
	}
	c := NewClient(ts.URL)
	c.http = &http.Client{Transport: chaos}
	c.Retry = RetryPolicy{Max: 30, Base: 2 * time.Millisecond, Cap: 40 * time.Millisecond}

	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatalf("submit through chaos: %v", err)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatalf("stream through chaos: %v", err)
	}
	checkRecords(t, recs, base, 6)
	for i, rec := range recs {
		if rec.Seq != int64(i+1) {
			t.Errorf("record %d has seq %d, want %d (chaos duplicated or dropped a record)", i, rec.Seq, i+1)
		}
	}
	if st := chaos.Stats(); st.Dropped+st.Errored+st.Cut == 0 {
		t.Errorf("chaos transport injected no faults (%+v); the schedule is too tame to prove anything", st)
	} else {
		t.Logf("chaos: %+v", st)
	}
	if st := s.Stats(); st.Replayed != 6 {
		t.Errorf("server replayed %d points, want 6 (chaos caused recomputation?)", st.Replayed)
	}
}

// TestChaosWorkers: external workers whose transport drops leases,
// heartbeats, and result posts still drain the grid to the clean
// baseline — lost leases expire back to the queue (at-least-once),
// posted results dedup by fingerprint (exactly-once), and nothing is
// quarantined because the retry budget absorbs the flakiness.
func TestChaosWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw := luSweep("chaos-workers", 1, 2) // 4 points
	base := localBaseline(t, sw)

	s, ts := newTestServer(t, Config{Workers: -1, LeaseTTL: 150 * time.Millisecond, MaxAttempts: 25})

	var workers sync.WaitGroup
	for i := 0; i < 2; i++ {
		chaos := &ChaosTransport{
			Seed:  uint64(1000 + i),
			PDrop: 0.10, P500: 0.05, PCut: 0.05, PDelay: 0.2,
			MaxDelay: 3 * time.Millisecond,
		}
		wc := NewClient(ts.URL)
		wc.http = &http.Client{Transport: chaos}
		wc.Retry = RetryPolicy{Max: 10, Base: 2 * time.Millisecond, Cap: 30 * time.Millisecond}
		wc.Timeout = 5 * time.Second
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			Work(ctx, ts.URL, WorkerOptions{Name: fmt.Sprintf("chaotic-%d", i),
				Poll: 30 * time.Millisecond, Client: wc, Logf: t.Logf})
		}(i)
	}
	defer workers.Wait()
	defer cancel()

	c := NewClient(ts.URL)
	c.Retry = fastRetry()
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	checkRecords(t, recs, base, 4)
	if st := s.Stats(); st.Quarantined != 0 {
		t.Errorf("%d points quarantined under worker chaos (stats %+v)", st.Quarantined, st)
	}
}

// poisonedSweep is a single-point sweep whose replay fails
// deterministically (the trace description does not exist).
func poisonedSweep(t *testing.T) *sweep.Sweep {
	return &sweep.Sweep{
		Name: "poison",
		Base: scenario.Scenario{
			Platform:  flatSpec(2),
			TraceDesc: filepath.Join(t.TempDir(), "missing.desc"),
		},
	}
}

// TestQuarantinePoisonedPoint: a point that fails every attempt stops
// after the retry budget and surfaces as exactly one permanent-failure
// record — not an unbounded requeue loop.
func TestQuarantinePoisonedPoint(t *testing.T) {
	ctx := context.Background()
	s, ts := newTestServer(t, Config{Workers: 1, MaxAttempts: 2})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, poisonedSweep(t))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("poisoned sweep produced %d records, want exactly 1", len(recs))
	}
	if !strings.Contains(recs[0].Err, "quarantined after 2 attempts") {
		t.Fatalf("poisoned record error = %q, want a quarantine after 2 attempts", recs[0].Err)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Failed != 1 || st.Retried != 1 || st.Attempts != 2 {
		t.Errorf("stats = %+v, want 2 attempts, 1 retried, 1 quarantined, 1 failed", st)
	}
	status, err := c.Status(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.Done != 1 || status.Failed != 1 {
		t.Errorf("status = %+v, want 1 done, 1 failed", status)
	}
}

// TestPanicRecovered: a panicking replay is recovered into the point's
// error record — both in the embedded pool (the server survives) and in
// the worker-side runLease (the worker survives).
func TestPanicRecovered(t *testing.T) {
	old := replayFunc
	replayFunc = func(ctx context.Context, sc *scenario.Scenario) (*core.Result, error) {
		panic("kaboom")
	}
	defer func() { replayFunc = old }()

	ctx := context.Background()
	sw := luSweep("panic", 1)
	s, ts := newTestServer(t, Config{Workers: 1, MaxAttempts: 2})
	c := NewClient(ts.URL)
	sub, err := c.Submit(ctx, sw)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.Collect(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if !strings.Contains(rec.Err, "replay panicked: kaboom") {
			t.Fatalf("record error = %q, want the recovered panic", rec.Err)
		}
	}
	// The embedded pool survived the panics: the server still answers.
	if st := s.Stats(); st.Quarantined != 2 {
		t.Errorf("stats = %+v, want both points quarantined", st)
	}

	// Worker side: runLease recovers the panic into the posted result.
	// This server has no embedded pool, so the manual lease wins the point.
	_, ts2 := newTestServer(t, Config{Workers: -1, MaxAttempts: 2})
	c = NewClient(ts2.URL)
	if _, err := c.Submit(ctx, luSweep("panic-worker", 2)); err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(ctx, "w", 2*time.Second)
	if err != nil || l == nil {
		t.Fatalf("lease: %v %v", l, err)
	}
	res := runLease(ctx, c, l)
	if !strings.Contains(res.Err, "replay panicked: kaboom") {
		t.Fatalf("worker result error = %q, want the recovered panic", res.Err)
	}
	if err := c.PushResult(ctx, res); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrains: a draining server grants no new leases but lets
// the in-flight one post its result before closing.
func TestShutdownDrains(t *testing.T) {
	ctx := context.Background()
	sw := luSweep("drain", 1)
	s, ts := newTestServer(t, Config{Workers: -1, LeaseTTL: 10 * time.Second})
	c := NewClient(ts.URL)
	if _, err := c.Submit(ctx, sw); err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(ctx, "survivor", 2*time.Second)
	if err != nil || l == nil {
		t.Fatalf("lease: %v %v", l, err)
	}
	res := runLease(ctx, c, l)
	if res.Err != "" {
		t.Fatalf("replay: %s", res.Err)
	}

	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(sctx) }()
	waitFor(t, 5*time.Second, "drain to start", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	// No new leases while draining.
	if l2, err := c.Lease(ctx, "late", 100*time.Millisecond); err != nil || l2 != nil {
		t.Fatalf("lease while draining = %v, %v; want none", l2, err)
	}
	// The in-flight lease still posts, and the drain completes.
	if err := c.PushResult(ctx, res); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown never finished after the lease drained")
	}
	if st := s.Stats(); st.Replayed != 1 {
		t.Errorf("stats = %+v, want the drained point completed", st)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
