package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// ErrLeaseLost reports a heartbeat on a lease the server no longer
// holds (expired and reclaimed, or the point already completed).
var ErrLeaseLost = errors.New("serve: lease lost")

// Client talks to a sweep server. The zero HTTP client is replaced by
// http.DefaultClient; result streams and long-poll leases hold their
// connection as long as the passed context allows.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at base, e.g.
// "http://127.0.0.1:9411".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
}

// do issues one JSON request and decodes the response into out (when
// non-nil). A non-2xx status returns an error carrying the server's
// message; 204 returns (false, nil) with out untouched.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (bool, error) {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return false, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return false, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("serve: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusNotFound && strings.Contains(string(msg), "lease") {
			err = fmt.Errorf("%w: %s", ErrLeaseLost, strings.TrimSpace(string(msg)))
		}
		return false, err
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("serve: decoding %s response: %w", path, err)
		}
	}
	return true, nil
}

// Submit registers a sweep with the server and returns its ID and
// point accounting. Identical points already stored or in flight are
// not recomputed.
func (c *Client) Submit(ctx context.Context, sw *sweep.Sweep) (*SubmitResponse, error) {
	var resp SubmitResponse
	if _, err := c.do(ctx, http.MethodPost, "/sweeps", sw, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status reports a submitted sweep's progress.
func (c *Client) Status(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if _, err := c.do(ctx, http.MethodGet, "/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats reports the server's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if _, err := c.do(ctx, http.MethodGet, "/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stream yields a submitted sweep's records in completion order,
// blocking (server-side) until every point is done. A non-nil error
// ends the iteration; a stream that the server closed before all
// announced points arrived surfaces as a truncation error.
func (c *Client) Stream(ctx context.Context, id string) iter.Seq2[*sweep.Record, error] {
	return func(yield func(*sweep.Record, error) bool) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/sweeps/"+id+"/results", nil)
		if err != nil {
			yield(nil, err)
			return
		}
		resp, err := c.http.Do(req)
		if err != nil {
			yield(nil, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			yield(nil, fmt.Errorf("serve: streaming results: %s: %s", resp.Status, strings.TrimSpace(string(msg))))
			return
		}
		total, _ := strconv.Atoi(resp.Header.Get("X-Tireplay-Points"))
		dec := json.NewDecoder(resp.Body)
		got := 0
		for {
			var rec sweep.Record
			if err := dec.Decode(&rec); err == io.EOF {
				if got < total {
					yield(nil, fmt.Errorf("serve: result stream truncated: %d of %d records (server shut down?)", got, total))
				}
				return
			} else if err != nil {
				yield(nil, fmt.Errorf("serve: decoding result stream: %w", err))
				return
			}
			got++
			if !yield(&rec, nil) {
				return
			}
		}
	}
}

// Collect drains Stream into a slice.
func (c *Client) Collect(ctx context.Context, id string) ([]*sweep.Record, error) {
	var out []*sweep.Record
	for rec, err := range c.Stream(ctx, id) {
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Lease asks the server for one point of work, long-polling up to wait.
// No work within the window returns (nil, nil).
func (c *Client) Lease(ctx context.Context, worker string, wait time.Duration) (*Lease, error) {
	var l Lease
	ok, err := c.do(ctx, http.MethodPost, "/lease", &LeaseRequest{Worker: worker, WaitMS: int(wait.Milliseconds())}, &l)
	if err != nil || !ok {
		return nil, err
	}
	return &l, nil
}

// Heartbeat extends a lease's TTL; ErrLeaseLost means the server
// reclaimed it (the replay may still be posted — results are
// idempotent).
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	_, err := c.do(ctx, http.MethodPost, "/lease/"+leaseID+"/heartbeat", struct{}{}, nil)
	return err
}

// PushResult posts a completed point back to the server.
func (c *Client) PushResult(ctx context.Context, res *WorkerResult) error {
	_, err := c.do(ctx, http.MethodPost, "/results", res, nil)
	return err
}

// WorkerOptions configures a Work loop.
type WorkerOptions struct {
	// Name identifies the worker in server logs.
	Name string
	// Poll is the lease long-poll window and the retry backoff after a
	// transport error; 0 selects 2s.
	Poll time.Duration
	// Logf, when set, receives one line per lease/replay/retry.
	Logf func(format string, args ...any)
}

// Work runs one worker loop against a sweep server: lease a point,
// replay it locally (heartbeating the lease), post the record back,
// repeat. Transport errors back off and retry — a worker started before
// its server, or surviving a server restart, just keeps polling. Work
// returns when ctx is cancelled.
func Work(ctx context.Context, server string, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := NewClient(server)
	for {
		if ctx.Err() != nil {
			return nil
		}
		l, err := c.Lease(ctx, opts.Name, opts.Poll)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("work: lease: %v (retrying)", err)
			sleep(ctx, opts.Poll)
			continue
		}
		if l == nil {
			continue // long poll expired with no work
		}
		logf("work: leased %s", l.Fingerprint)
		res := runLease(ctx, c, l)
		for attempt := 0; ; attempt++ {
			err := c.PushResult(ctx, res)
			if err == nil {
				break
			}
			if ctx.Err() != nil || attempt >= 4 {
				logf("work: posting %s: %v (giving up; lease will expire)", l.Fingerprint, err)
				break
			}
			logf("work: posting %s: %v (retrying)", l.Fingerprint, err)
			sleep(ctx, opts.Poll)
		}
	}
}

// runLease replays a leased scenario, heartbeating until done.
func runLease(ctx context.Context, c *Client, l *Lease) *WorkerResult {
	res := &WorkerResult{Lease: l.ID, Fingerprint: l.Fingerprint}

	// The scenario arrives as strict JSON: a worker from a different
	// build that does not understand a field refuses the point (and the
	// lease expires back to the queue) instead of replaying it wrong.
	var sc scenario.Scenario
	dec := json.NewDecoder(bytes.NewReader(l.Scenario))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		res.Err = fmt.Sprintf("decoding leased scenario: %v", err)
		return res
	}

	hctx, stopHeartbeat := context.WithCancel(ctx)
	defer stopHeartbeat()
	go func() {
		interval := time.Duration(l.TTLMS) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hctx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(hctx, l.ID); errors.Is(err, ErrLeaseLost) {
					return // keep replaying; the posted result is still accepted
				}
			}
		}
	}()

	replay, err := sc.Run(ctx)
	stopHeartbeat()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Replay = replay
	return res
}

func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
