package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// ErrLeaseLost reports a heartbeat on a lease the server no longer
// holds (expired and reclaimed, or the point already completed).
var ErrLeaseLost = errors.New("serve: lease lost")

// RetryPolicy bounds the client's transparent retries of transport
// errors and 5xx responses: up to Max consecutive failures, backing off
// exponentially from Base to Cap with full jitter. The zero value
// selects the defaults (8 attempts, 100ms..3s) — enough to ride out a
// server restart, bounded enough that a server that never comes up
// fails in seconds, not forever.
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Max <= 0 {
		rp.Max = 8
	}
	if rp.Base <= 0 {
		rp.Base = 100 * time.Millisecond
	}
	if rp.Cap <= 0 {
		rp.Cap = 3 * time.Second
	}
	return rp
}

// backoff returns the jittered delay before retry number attempt
// (0-based): uniformly random in (0, min(Cap, Base<<attempt)], so
// colliding clients spread out instead of retrying in lockstep.
func (rp RetryPolicy) backoff(attempt int) time.Duration {
	d := rp.Base
	for i := 0; i < attempt && d < rp.Cap; i++ {
		d *= 2
	}
	if d > rp.Cap {
		d = rp.Cap
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// Client talks to a sweep server. The zero HTTP client is replaced by
// http.DefaultClient; result streams and long-poll leases hold their
// connection as long as the passed context allows.
type Client struct {
	base string
	http *http.Client
	// Timeout bounds each unary request end to end (long polls add
	// their wait window on top), so a hung server fails the call instead
	// of pinning it forever; 0 selects 30s.
	Timeout time.Duration
	// Retry bounds transparent retries of transport errors and 5xx
	// responses; every request the client sends is idempotent on the
	// server (submissions dedup by fingerprint, results are
	// content-addressed), so retrying is always safe.
	Retry RetryPolicy
}

// NewClient returns a client for the server at base, e.g.
// "http://127.0.0.1:9411".
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// do issues one JSON request — retrying transport errors and 5xx under
// the client's RetryPolicy, each attempt under its own deadline — and
// decodes the response into out (when non-nil). A non-2xx status
// returns an error carrying the server's message; 204 returns
// (false, nil) with out untouched. extraWait widens the per-attempt
// deadline for long-polling requests.
func (c *Client) do(ctx context.Context, method, path string, in, out any, extraWait time.Duration) (bool, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return false, err
		}
	}
	rp := c.Retry.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		ok, retryable, err := c.doOnce(ctx, method, path, body, out, extraWait)
		if err == nil {
			return ok, nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil || attempt+1 >= rp.Max {
			return false, lastErr
		}
		if !sleep(ctx, rp.backoff(attempt)) {
			return false, lastErr
		}
	}
}

// doOnce is a single request attempt; retryable reports whether the
// failure is worth another try (transport error or 5xx — never a 4xx,
// which will fail identically every time).
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any, extraWait time.Duration) (ok, retryable bool, err error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout()+extraWait)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return false, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, false, nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("serve: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusNotFound && strings.Contains(string(msg), "lease") {
			err = fmt.Errorf("%w: %s", ErrLeaseLost, strings.TrimSpace(string(msg)))
		}
		return false, resp.StatusCode/100 == 5, err
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, true, fmt.Errorf("serve: decoding %s response: %w", path, err)
		}
	}
	return true, false, nil
}

// Submit registers a sweep with the server and returns its ID and
// point accounting. Identical points already stored or in flight are
// not recomputed — which is also what makes retried submissions safe.
func (c *Client) Submit(ctx context.Context, sw *sweep.Sweep) (*SubmitResponse, error) {
	var resp SubmitResponse
	if _, err := c.do(ctx, http.MethodPost, "/sweeps", sw, &resp, 0); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Status reports a submitted sweep's progress.
func (c *Client) Status(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if _, err := c.do(ctx, http.MethodGet, "/sweeps/"+id, nil, &st, 0); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stats reports the server's counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if _, err := c.do(ctx, http.MethodGet, "/stats", nil, &st, 0); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stream yields a submitted sweep's records in completion order,
// blocking (server-side) until every point is done. A cut connection —
// network fault, server crash and restart — reconnects transparently
// with ?after=<last sequence number> under the client's RetryPolicy, so
// the caller sees each record exactly once with no duplicates and no
// gaps; only a retry budget spent without progress (or a 4xx) surfaces
// as a non-nil error ending the iteration.
func (c *Client) Stream(ctx context.Context, id string) iter.Seq2[*sweep.Record, error] {
	return func(yield func(*sweep.Record, error) bool) {
		rp := c.Retry.withDefaults()
		after := int64(0)
		failures := 0
		for {
			progressed, done, retryable, err := c.streamOnce(ctx, id, &after, yield)
			if done {
				return
			}
			if progressed {
				failures = 0
			}
			if ctx.Err() != nil {
				yield(nil, ctx.Err())
				return
			}
			failures++
			if !retryable || failures >= rp.Max {
				if err == nil {
					err = fmt.Errorf("serve: result stream ended early (server shut down?)")
				}
				yield(nil, err)
				return
			}
			if !sleep(ctx, rp.backoff(failures-1)) {
				yield(nil, ctx.Err())
				return
			}
		}
	}
}

// streamOnce holds one /results connection, yielding records past
// *after and advancing it as they arrive. done means the stream is
// finished — all records yielded, or the consumer broke out.
func (c *Client) streamOnce(ctx context.Context, id string, after *int64, yield func(*sweep.Record, error) bool) (progressed, done, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/sweeps/"+id+"/results?after="+strconv.FormatInt(*after, 10), nil)
	if err != nil {
		return false, false, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, false, true, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("serve: streaming results: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		return false, false, resp.StatusCode/100 == 5, err
	}
	total, _ := strconv.Atoi(resp.Header.Get("X-Tireplay-Points"))
	dec := json.NewDecoder(resp.Body)
	for {
		var rec sweep.Record
		if err := dec.Decode(&rec); err == io.EOF {
			// A clean EOF short of the announced total is a server that
			// shut down mid-stream: resume from *after.
			return progressed, *after >= int64(total), true, nil
		} else if err != nil {
			return progressed, false, true, fmt.Errorf("serve: decoding result stream: %w", err)
		}
		if rec.Seq > 0 {
			*after = rec.Seq
		} else {
			*after++ // pre-sequence server: count records instead
		}
		progressed = true
		if !yield(&rec, nil) {
			return progressed, true, false, nil
		}
	}
}

// Collect drains Stream into a slice.
func (c *Client) Collect(ctx context.Context, id string) ([]*sweep.Record, error) {
	var out []*sweep.Record
	for rec, err := range c.Stream(ctx, id) {
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Lease asks the server for one point of work, long-polling up to wait.
// No work within the window returns (nil, nil).
func (c *Client) Lease(ctx context.Context, worker string, wait time.Duration) (*Lease, error) {
	var l Lease
	ok, err := c.do(ctx, http.MethodPost, "/lease", &LeaseRequest{Worker: worker, WaitMS: int(wait.Milliseconds())}, &l, wait)
	if err != nil || !ok {
		return nil, err
	}
	return &l, nil
}

// Heartbeat extends a lease's TTL; ErrLeaseLost means the server
// reclaimed it (the replay may still be posted — results are
// idempotent).
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	_, err := c.do(ctx, http.MethodPost, "/lease/"+leaseID+"/heartbeat", struct{}{}, nil, 0)
	return err
}

// PushResult posts a completed point back to the server.
func (c *Client) PushResult(ctx context.Context, res *WorkerResult) error {
	_, err := c.do(ctx, http.MethodPost, "/results", res, nil, 0)
	return err
}

// WorkerOptions configures a Work loop.
type WorkerOptions struct {
	// Name identifies the worker in server logs.
	Name string
	// Poll is the lease long-poll window and the retry backoff after a
	// transport error; 0 selects 2s.
	Poll time.Duration
	// Client, when set, replaces the default client — e.g. one with a
	// tuned RetryPolicy or a fault-injecting transport.
	Client *Client
	// Logf, when set, receives one line per lease/replay/retry.
	Logf func(format string, args ...any)
}

// Work runs one worker loop against a sweep server: lease a point,
// replay it locally (heartbeating the lease), post the record back,
// repeat. A panicking replay is recovered into the point's error record
// — one poisoned scenario costs one point, not the process. Transport
// errors back off and retry — a worker started before its server, or
// surviving a server restart, just keeps polling. Work returns when ctx
// is cancelled.
func Work(ctx context.Context, server string, opts WorkerOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 2 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := opts.Client
	if c == nil {
		c = NewClient(server)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		l, err := c.Lease(ctx, opts.Name, opts.Poll)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("work: lease: %v (retrying)", err)
			sleep(ctx, opts.Poll)
			continue
		}
		if l == nil {
			continue // long poll expired with no work
		}
		logf("work: leased %s (attempt %d)", l.Fingerprint, l.Attempt)
		res := runLease(ctx, c, l)
		for attempt := 0; ; attempt++ {
			err := c.PushResult(ctx, res)
			if err == nil {
				break
			}
			if ctx.Err() != nil || attempt >= 4 {
				logf("work: posting %s: %v (giving up; lease will expire)", l.Fingerprint, err)
				break
			}
			logf("work: posting %s: %v (retrying)", l.Fingerprint, err)
			sleep(ctx, opts.Poll)
		}
	}
}

// runLease replays a leased scenario, heartbeating until done. Panics in
// the replay are recovered into the result's error so the worker
// survives to lease again.
func runLease(ctx context.Context, c *Client, l *Lease) *WorkerResult {
	res := &WorkerResult{Lease: l.ID, Fingerprint: l.Fingerprint}

	// The scenario arrives as strict JSON: a worker from a different
	// build that does not understand a field refuses the point (and the
	// lease expires back to the queue) instead of replaying it wrong.
	var sc scenario.Scenario
	dec := json.NewDecoder(bytes.NewReader(l.Scenario))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		res.Err = fmt.Sprintf("decoding leased scenario: %v", err)
		return res
	}

	hctx, stopHeartbeat := context.WithCancel(ctx)
	defer stopHeartbeat()
	go func() {
		interval := time.Duration(l.TTLMS) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hctx.Done():
				return
			case <-t.C:
				if err := c.Heartbeat(hctx, l.ID); errors.Is(err, ErrLeaseLost) {
					return // keep replaying; the posted result is still accepted
				}
			}
		}
	}()

	replay, err := safeRun(ctx, &sc)
	stopHeartbeat()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Replay = replay
	return res
}

// sleep waits d or until ctx ends, reporting whether it slept the full
// duration.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
