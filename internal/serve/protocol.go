// Package serve turns the sweep subsystem into a long-lived service: a
// Server exposes sweeps over HTTP — submit a Sweep spec, stream its
// results back as NDJSON in completion order — backed by one shared
// result store, so many clients submitting overlapping what-if grids
// cost exactly one replay per distinct scenario fingerprint. Points
// already in the store are served from cache; points currently being
// replayed for one client are joined, not recomputed, by every other
// client that wants them (a singleflight table keyed by fingerprint).
//
// Execution is decoupled from the HTTP layer by a work-stealing queue:
// the server can run an embedded worker pool, and any number of external
// worker processes (Work, or `tireplay work`) lease points over HTTP,
// replay them locally, and post the records back. Leases carry a TTL and
// are heartbeat-extended; a worker that dies has its point returned to
// the queue, so a grid always drains as long as one worker survives.
//
// The service is built to survive any single failure. A durable journal
// next to the store records submissions and per-point completion markers
// (CRC'd, torn-tail tolerant), so a restarted server re-registers every
// open sweep under the same ID, with the same record sequence, and
// requeues only the points without a stored result. Result records carry
// monotonic per-sweep sequence numbers and streams resume with ?after=N;
// failing points consume a per-point retry budget and then complete as a
// permanent-failure record instead of requeueing forever.
//
// Endpoints:
//
//	POST /sweeps                    submit a sweep spec (strict JSON) → SubmitResponse
//	GET  /sweeps/{id}               sweep progress → SweepStatus
//	GET  /sweeps/{id}/results       NDJSON stream of sweep.Record, completion order;
//	                                ?after=N resumes past sequence number N
//	POST /lease                     lease one point (long-poll) → Lease, or 204
//	POST /lease/{id}/heartbeat      extend a lease's TTL
//	POST /results                   post a completed point → 204
//	GET  /stats                     server counters → Stats
//	GET  /healthz                   liveness probe
package serve

import (
	"encoding/json"

	"tireplay/internal/core"
)

// SubmitResponse answers POST /sweeps.
type SubmitResponse struct {
	// ID names the registered sweep in the status/results endpoints.
	ID string `json:"id"`
	// Points is the expanded grid size.
	Points int `json:"points"`
	// Cached counts points whose result was already available at submit
	// time (from the store or an earlier in-memory completion).
	Cached int `json:"cached"`
	// Pending counts points queued or currently replaying.
	Pending int `json:"pending"`
	// Merged counts points that joined a computation already in flight
	// for another client instead of enqueueing their own.
	Merged int `json:"merged"`
}

// SweepStatus answers GET /sweeps/{id}.
type SweepStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Points int    `json:"points"`
	// Done counts points with a terminal result (success or failure).
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Cached counts points served from the store at submit time.
	Cached int `json:"cached"`
}

// LeaseRequest asks for one point of work.
type LeaseRequest struct {
	// Worker optionally identifies the worker in server logs.
	Worker string `json:"worker,omitempty"`
	// WaitMS long-polls: the server holds the request up to this long
	// waiting for work before answering 204.
	WaitMS int `json:"wait_ms,omitempty"`
}

// Lease hands one point to a worker.
type Lease struct {
	// ID names the lease in heartbeats and result posts.
	ID string `json:"id"`
	// Fingerprint is the point's scenario fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Attempt is this lease's position in the point's retry budget
	// (1-based): how many times the point has now been handed out.
	Attempt int `json:"attempt,omitempty"`
	// TTLMS is the lease's time-to-live; heartbeat within it or the point
	// returns to the queue.
	TTLMS int64 `json:"ttl_ms"`
	// Scenario is the serialized scenario to replay.
	Scenario json.RawMessage `json:"scenario"`
}

// WorkerResult posts a completed point back (POST /results). Results are
// content-addressed by fingerprint and idempotent: a result arriving
// after the lease expired (or after another worker already finished the
// point) is accepted and simply changes nothing.
type WorkerResult struct {
	// Lease is the originating lease ID; informational — an expired lease
	// does not invalidate the result.
	Lease string `json:"lease,omitempty"`
	// Fingerprint identifies the point.
	Fingerprint string `json:"fingerprint"`
	// Replay is the replay outcome, nil on failure.
	Replay *core.Result `json:"replay,omitempty"`
	// Err is the failure message, "" on success.
	Err string `json:"error,omitempty"`
}

// Stats answers GET /stats.
type Stats struct {
	// Sweeps counts submitted sweeps.
	Sweeps int `json:"sweeps"`
	// Fingerprints counts distinct scenario fingerprints seen.
	Fingerprints int `json:"fingerprints"`
	// Replayed counts live replays completed successfully — the number
	// the dedup guarantee is about: overlapping submissions never raise
	// it past the distinct-fingerprint count.
	Replayed int `json:"replayed"`
	// Failed counts points that completed with an error.
	Failed int `json:"failed"`
	// CacheHits counts point submissions answered from the result store.
	CacheHits int `json:"cache_hits"`
	// Merged counts point submissions that joined an in-flight replay.
	Merged int `json:"merged"`
	// ExpiredLeases counts leases reclaimed by the TTL janitor.
	ExpiredLeases int `json:"expired_leases"`
	// Attempts counts leases granted, over all points: Attempts minus
	// Replayed minus Failed is the work lost to retries so far.
	Attempts int `json:"attempts"`
	// Retried counts failed or expired executions that were requeued
	// because the point still had retry budget.
	Retried int `json:"retried"`
	// Quarantined counts points that exhausted their retry budget and
	// completed as a permanent-failure record (a subset of Failed).
	Quarantined int `json:"quarantined"`
	// RecoveredSweeps counts open sweeps re-registered from the journal
	// at startup.
	RecoveredSweeps int `json:"recovered_sweeps"`
	// Queued and Leased are current queue depths.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	// StoreWarm is the record count found in the store at startup.
	StoreWarm int `json:"store_warm"`
}
