package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The sweep journal is the server's durability story: an append-only log
// of submitted sweeps and per-point completion markers, kept next to the
// result store. The store alone already makes successful replays durable,
// but it cannot say which sweeps were open, in what order their results
// were emitted (the sequence numbers resumable streams depend on), or how
// failed points ended — the journal records exactly that, so a restarted
// server rebuilds every open sweep with the same IDs and the same record
// sequence a client saw before the crash.
//
// The format is deliberately dumb: an 8-byte magic header, then one frame
// per entry — uint32 payload length, uint32 IEEE CRC-32 of the payload,
// JSON payload. Appends are fsynced. On open the file is scanned frame by
// frame; the first short or CRC-failing frame marks a torn tail (a crash
// mid-append), everything before it is replayed, and the file is
// truncated back to the last good frame so appends continue from a clean
// boundary. A torn tail can therefore lose at most the single entry whose
// append never returned — never corrupt earlier entries, and never an
// entry a client was already shown (markers are journaled before streams
// are notified).

// journalMagic versions the file; bump it on incompatible entry changes.
var journalMagic = [8]byte{'T', 'I', 'R', 'E', 'P', 'J', 'L', '1'}

// journalEntry is one journal record. Kind selects which fields matter:
//
//	"sweep": a submission — ID, Name, Spec (the canonical sweep JSON)
//	"mark":  one emitted result — Sweep (owning ID), Index (grid index),
//	         Err (terminal failure message, "" for success), Cached
//
// A sweep's marks, in journal order, are its result sequence: the i-th
// mark for a sweep is the record with sequence number i+1.
type journalEntry struct {
	Kind   string          `json:"kind"`
	ID     string          `json:"id,omitempty"`
	Name   string          `json:"name,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Sweep  string          `json:"sweep,omitempty"`
	Index  int             `json:"index,omitempty"`
	Err    string          `json:"err,omitempty"`
	Cached bool            `json:"cached,omitempty"`
}

const (
	journalKindSweep = "sweep"
	journalKindMark  = "mark"
)

// journal is the open append handle. Appends are serialized and fsynced;
// concurrent appenders see a total order matching the file.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

// openJournal opens (creating if needed) the journal at path, replays the
// entries already in it, truncates any torn tail, and returns the handle
// positioned for appending. A corrupt header (wrong magic) is an error —
// the file is not a journal and is left untouched.
func openJournal(path string) (*journal, []journalEntry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	entries, good, err := replayJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		// Torn tail from a crash mid-append: cut back to the last whole
		// frame so the next append starts on a clean boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("serve: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: seeking journal: %w", err)
	}
	return &journal{f: f}, entries, nil
}

// replayJournal scans f from the start and returns the decodable entries
// plus the offset just past the last good frame. An empty file gets its
// header written here. Torn or CRC-failing tails end the scan silently —
// that is the crash-recovery contract, not an error.
func replayJournal(f *os.File) ([]journalEntry, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := f.Write(journalMagic[:]); err != nil {
			return nil, 0, fmt.Errorf("serve: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("serve: writing journal header: %w", err)
		}
		return nil, int64(len(journalMagic)), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != journalMagic {
		return nil, 0, fmt.Errorf("serve: %s is not a sweep journal (bad magic)", f.Name())
	}
	var entries []journalEntry
	good := int64(len(journalMagic))
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn length/CRC header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > 1<<26 {
			break // implausible frame: treat as tail corruption
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or torn overwrite: stop at the last good frame
		}
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			break // CRC passed but payload is not ours; refuse to guess
		}
		entries = append(entries, e)
		good += 8 + int64(length)
	}
	return entries, good, nil
}

// append frames, writes, and fsyncs one entry. Appending to a closed
// journal is a no-op returning an error the caller may log.
func (j *journal) append(e *journalEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: encoding journal entry: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("serve: journal closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("serve: appending journal entry: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing journal: %w", err)
	}
	return nil
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
