package serve

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// ChaosTransport is a deterministic fault-injecting http.RoundTripper
// for exercising the service's failure semantics: wrap a client's (or
// worker's) transport in one and every request draws from a seeded
// schedule of connection drops, added latency, injected 500s, and
// mid-body response cuts. The same seed over the same request sequence
// replays the same faults — a failing chaos run is reproducible from
// its seed, the same way a replay is reproducible from its trace.
//
// Faults are injected strictly on the client side of the wire: a
// "dropped" request never reaches the server (the error fires before
// forwarding), an injected 500 is synthesized without forwarding, and a
// cut body truncates a response the server already sent. The server's
// own state therefore stays honest — exactly what the delivery
// guarantees (idempotent submissions, content-addressed results,
// resume-by-sequence) are supposed to absorb.
type ChaosTransport struct {
	// Base handles the requests that survive; nil selects
	// http.DefaultTransport.
	Base http.RoundTripper
	// Seed fixes the fault schedule.
	Seed uint64
	// PDrop, P500, PCut, PDelay are per-request fault probabilities in
	// [0, 1]: fail before sending, synthesize a 500 without sending,
	// truncate the response body partway, or sleep up to MaxDelay before
	// forwarding. Drop/500/cut are mutually exclusive per request (drawn
	// in that order); delay composes with a clean forward.
	PDrop, P500, PCut, PDelay float64
	// MaxDelay bounds injected latency; 0 selects 20ms.
	MaxDelay time.Duration

	mu                                    sync.Mutex
	rng                                   *rand.Rand
	dropped, errored, cut, delayed, clean int
}

// ChaosStats counts the faults a transport has injected so far —
// assert on these to prove a test actually exercised the machinery.
type ChaosStats struct {
	Dropped, Errored, Cut, Delayed, Clean int
}

// Stats snapshots the injected-fault counters.
func (t *ChaosTransport) Stats() ChaosStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return ChaosStats{Dropped: t.dropped, Errored: t.errored, Cut: t.cut, Delayed: t.delayed, Clean: t.clean}
}

// draw picks this request's fate under the seeded schedule.
func (t *ChaosTransport) draw() (drop, err500, cut bool, delay time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewPCG(t.Seed, t.Seed^0x9e3779b97f4a7c15))
	}
	switch f := t.rng.Float64(); {
	case f < t.PDrop:
		t.dropped++
		return true, false, false, 0
	case f < t.PDrop+t.P500:
		t.errored++
		return false, true, false, 0
	case f < t.PDrop+t.P500+t.PCut:
		t.cut++
		return false, false, true, 0
	}
	if t.rng.Float64() < t.PDelay {
		max := t.MaxDelay
		if max <= 0 {
			max = 20 * time.Millisecond
		}
		t.delayed++
		return false, false, false, time.Duration(t.rng.Int64N(int64(max))) + 1
	}
	t.clean++
	return false, false, false, 0
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, err500, cut, delay := t.draw()
	if drop {
		return nil, fmt.Errorf("chaos: connection dropped (%s %s)", req.Method, req.URL.Path)
	}
	if err500 {
		return &http.Response{
			Status:     "500 chaos",
			StatusCode: http.StatusInternalServerError,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(bytes.NewReader([]byte("chaos: injected server error\n"))),
			Request: req,
		}, nil
	}
	if delay > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !cut || resp.Body == nil {
		return resp, err
	}
	// Mid-body cut: pass some bytes through, then fail the read — a
	// connection reset partway through an NDJSON stream.
	resp.Body = &cutBody{rc: resp.Body, remaining: 1 + t.cutLen()}
	return resp, nil
}

// cutLen draws how many bytes survive before the cut.
func (t *ChaosTransport) cutLen() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Int64N(512)
}

// cutBody forwards remaining bytes, then fails with ErrUnexpectedEOF.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		b.rc.Close()
		return 0, fmt.Errorf("chaos: connection cut mid-body: %w", io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }
