package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"tireplay/internal/core"
	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the shared result-store directory (required): every
	// completed point persists there, and submissions are answered from
	// it across server restarts. The sweep journal lives inside it
	// (journal.wal), so store + journal travel as one unit.
	Store string
	// Workers sizes the embedded worker pool: 0 selects GOMAXPROCS,
	// negative disables embedded execution (external workers only).
	Workers int
	// LeaseTTL is how long a leased point may go without a heartbeat
	// before it returns to the queue; 0 selects 30s.
	LeaseTTL time.Duration
	// MaxAttempts is the per-point retry budget: a point whose replay
	// has failed (or whose lease has expired) this many times completes
	// as a permanent-failure record instead of requeueing forever.
	// 0 selects 3.
	MaxAttempts int
	// Drain is how long a terminating Serve waits for in-flight leases
	// to post their results before closing (Shutdown callers pass their
	// own deadline); 0 selects 10s.
	Drain time.Duration
	// Logf, when set, receives one line per notable server event
	// (submissions, expired leases, retries, store failures).
	Logf func(format string, args ...any)
}

// Point lifecycle states.
const (
	pQueued = iota
	pLeased
	pDone
)

// point is the singleflight entry for one distinct scenario fingerprint:
// however many sweeps (from however many clients) contain it, it is
// queued, leased, replayed, and completed exactly once.
type point struct {
	fp           string
	scenario     *scenario.Scenario
	scenarioJSON json.RawMessage
	state        int
	// attempts counts leases granted for this point; when it reaches the
	// retry budget the next failure (or expiry) quarantines the point.
	attempts int
	// lastErr remembers the most recent failure, for the quarantine
	// record when the budget runs out.
	lastErr string
	// record is the canonical result (fingerprint, replay, error), set
	// once state is pDone. Per-sweep metadata is applied at emission.
	record  *sweep.Record
	leaseID string
	// expiry is the lease deadline; zero for embedded leases (same
	// process — a lost embedded worker means a lost server).
	expiry time.Time
	// subs are the sweeps waiting on this point.
	subs []*sweepRun
}

// sweepRun is one submitted sweep: its expanded grid plus the completion
// order its result streams replay. order's i-th entry is the record with
// sequence number i+1 — the durable contract resumable streams rely on.
type sweepRun struct {
	id     string
	name   string
	points []sweep.Point
	// fpIndex maps a fingerprint to the grid indices it satisfies (two
	// points of one grid can share a fingerprint, e.g. label-only axes).
	fpIndex map[string][]int
	// emitted marks grid indices already appended to order (and
	// journaled), so crash recovery and duplicate completions are
	// idempotent per index.
	emitted []bool
	// cached marks grid indices served from the store rather than
	// replayed for this sweep.
	cached []bool
	// order is the completion order of grid indices; streams index into
	// it and wait on notify for growth.
	order  []int
	failed int
	notify chan struct{}
}

func newRun(id, name string, points []sweep.Point) *sweepRun {
	run := &sweepRun{
		id:      id,
		name:    name,
		points:  points,
		fpIndex: make(map[string][]int),
		emitted: make([]bool, len(points)),
		cached:  make([]bool, len(points)),
		notify:  make(chan struct{}),
	}
	for _, pt := range points {
		run.fpIndex[pt.Fingerprint] = append(run.fpIndex[pt.Fingerprint], pt.Index)
	}
	return run
}

// Server is the sweep service: shared store, durable journal,
// singleflight dedup, work-stealing queue with retry budgets, lease
// janitor, and (optionally) embedded workers. Create with New, expose
// via Handler, drain with Shutdown or stop hard with Close.
type Server struct {
	cfg     Config
	store   *sweep.Store
	journal *journal
	mux     *http.ServeMux

	mu       sync.Mutex
	queue    []*point
	qnotify  chan struct{} // closed+replaced when the queue grows
	points   map[string]*point
	sweeps   map[string]*sweepRun
	leases   map[string]*point
	stats    Stats
	draining bool
	closed   bool

	drainCh chan struct{} // closed when draining starts
	closing chan struct{}
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server over the configured store, recovers open sweeps
// from the journal found next to it, and starts its embedded workers and
// lease janitor.
func New(cfg Config) (*Server, error) {
	if cfg.Store == "" {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	st, err := sweep.OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	warm, err := st.Len()
	if err != nil {
		return nil, fmt.Errorf("serve: scanning store: %w", err)
	}

	s := &Server{
		cfg:     cfg,
		store:   st,
		qnotify: make(chan struct{}),
		points:  make(map[string]*point),
		sweeps:  make(map[string]*sweepRun),
		leases:  make(map[string]*point),
		drainCh: make(chan struct{}),
		closing: make(chan struct{}),
	}
	s.stats.StoreWarm = warm

	jr, entries, err := openJournal(filepath.Join(cfg.Store, "journal.wal"))
	if err != nil {
		return nil, err
	}
	s.journal = jr
	s.recover(entries)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("POST /sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("POST /lease", s.handleLease)
	s.mux.HandleFunc("POST /lease/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /results", s.handleResult)
	s.mux.HandleFunc("GET /stats", s.handleStats)

	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.runEmbedded(ctx)
	}

	s.wg.Add(1)
	go s.runJanitor(ctx)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's result store.
func (s *Server) Store() *sweep.Store { return s.store }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Sweeps = len(s.sweeps)
	st.Fingerprints = len(s.points)
	st.Queued = len(s.queue)
	st.Leased = len(s.leases)
	return st
}

// Close stops the embedded workers and janitor, ends every open result
// stream, and closes the journal. In-flight external leases are
// abandoned (their posts will fail); the store and journal keep
// everything already completed — a fresh New over the same store picks
// the open sweeps back up.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return s.journal.Close()
}

// Shutdown drains the server gracefully: no new leases are granted
// (long-polls answer 204, embedded workers finish their current replay
// and exit), in-flight leases get until ctx's deadline to post their
// results, then the server closes. The journal is flushed on every
// append, so even a deadline overrun loses no completed record.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()

	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		s.mu.Lock()
		inflight := len(s.leases)
		s.mu.Unlock()
		if inflight == 0 {
			break
		}
		select {
		case <-ctx.Done():
			s.logf("serve: drain deadline passed with %d leases in flight (their points requeue on restart)", inflight)
			return s.Close()
		case <-t.C:
		}
	}
	return s.Close()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// emitLocked appends every not-yet-emitted grid index of fp to the run's
// completion order, journaling one marker per index before the stream
// wakeup — a record a client can observe is always reconstructible after
// a crash, with the same sequence number.
func (s *Server) emitLocked(run *sweepRun, fp string, rec *sweep.Record, cached bool) {
	grew := false
	for _, idx := range run.fpIndex[fp] {
		if run.emitted[idx] {
			continue
		}
		if s.journal != nil {
			if err := s.journal.append(&journalEntry{
				Kind: journalKindMark, Sweep: run.id, Index: idx, Err: rec.Err, Cached: cached,
			}); err != nil {
				s.logf("serve: journal: %v", err)
			}
		}
		run.emitted[idx] = true
		run.cached[idx] = cached
		run.order = append(run.order, idx)
		if rec.Err != "" {
			run.failed++
		}
		grew = true
	}
	if grew {
		close(run.notify)
		run.notify = make(chan struct{})
	}
}

// resolveLocked binds run to one grid point's fingerprint: emit
// immediately when the result is already known (dedup table or store),
// queue a fresh point, or subscribe the run to the in-flight one.
// Returns whether the queue grew; resp, when non-nil, receives
// submission accounting.
func (s *Server) resolveLocked(run *sweepRun, pt sweep.Point, resp *SubmitResponse) (grew bool) {
	fp := pt.Fingerprint
	p := s.points[fp]
	if p == nil {
		// First time this server sees the scenario: store, then queue.
		rec, err := s.store.Get(fp)
		if err == nil && rec != nil && rec.Replay != nil {
			p = &point{fp: fp, state: pDone,
				record: &sweep.Record{Fingerprint: fp, Replay: rec.Replay}}
			s.points[fp] = p
		} else {
			if err != nil {
				// A corrupt stored record is not fatal: re-replay it.
				s.logf("serve: store: %v (re-replaying)", err)
			}
			scJSON, merr := json.Marshal(pt.Scenario)
			if merr != nil {
				// Cannot happen for a sweep-expanded scenario; fail the
				// point rather than the submission.
				p = &point{fp: fp, state: pDone,
					record: &sweep.Record{Fingerprint: fp, Err: merr.Error()}}
				s.points[fp] = p
			} else {
				p = &point{fp: fp, scenario: pt.Scenario, scenarioJSON: scJSON, state: pQueued}
				s.points[fp] = p
				s.queue = append(s.queue, p)
				grew = true
			}
		}
	} else if p.state != pDone {
		s.stats.Merged++
		if resp != nil {
			resp.Merged++
		}
	}
	if p.state == pDone {
		fromStore := p.record.Err == "" // errors are never store hits
		hits := 0
		for _, idx := range run.fpIndex[fp] {
			if !run.emitted[idx] {
				hits++
			}
		}
		s.emitLocked(run, fp, p.record, fromStore)
		if fromStore {
			s.stats.CacheHits += hits
			if resp != nil {
				resp.Cached += hits
			}
		}
	} else {
		p.subs = append(p.subs, run)
		if resp != nil {
			resp.Pending += len(run.fpIndex[fp])
		}
	}
	return grew
}

// register journals and adds a sweep's expanded points to the dedup
// table and queue, answering from the store where possible.
func (s *Server) register(sw *sweep.Sweep, points []sweep.Point) (*sweepRun, SubmitResponse, error) {
	run := newRun(newID(), sw.Name, points)
	var resp SubmitResponse
	resp.ID = run.id
	resp.Points = len(points)

	spec, err := json.Marshal(sw)
	if err != nil {
		return nil, resp, fmt.Errorf("serve: encoding sweep spec: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Journal the submission before anything becomes observable: a crash
	// from here on re-registers the sweep under the same ID.
	if err := s.journal.append(&journalEntry{Kind: journalKindSweep, ID: run.id, Name: sw.Name, Spec: spec}); err != nil {
		return nil, resp, err
	}
	s.sweeps[run.id] = run
	grew := false
	seen := make(map[string]bool, len(points))
	for _, pt := range points {
		if seen[pt.Fingerprint] {
			continue
		}
		seen[pt.Fingerprint] = true
		if s.resolveLocked(run, pt, &resp) {
			grew = true
		}
	}
	if grew {
		close(s.qnotify)
		s.qnotify = make(chan struct{})
	}
	return run, resp, nil
}

// recover rebuilds open sweeps from journal entries: re-expand each
// journaled spec (expansion is deterministic, the paper's premise made
// infrastructure), replay its completion markers into the same order —
// so every sequence number a client saw before the crash denotes the
// same record — then answer still-unmarked points from the store and
// queue the rest. Called from New before any handler can run; takes the
// lock anyway so emitLocked's invariants hold.
func (s *Server) recover(entries []journalEntry) {
	if len(entries) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recCache := make(map[string]*sweep.Record)
	var recovered []*sweepRun
	for i := range entries {
		e := &entries[i]
		switch e.Kind {
		case journalKindSweep:
			sw, err := sweep.ReadSpec(bytes.NewReader(e.Spec))
			if err != nil {
				s.logf("serve: journal: sweep %s spec: %v (dropping)", e.ID, err)
				continue
			}
			points, err := sw.Expand()
			if err != nil {
				s.logf("serve: journal: sweep %s expand: %v (dropping)", e.ID, err)
				continue
			}
			run := newRun(e.ID, sw.Name, points)
			s.sweeps[run.id] = run
			recovered = append(recovered, run)
			s.stats.RecoveredSweeps++
		case journalKindMark:
			run := s.sweeps[e.Sweep]
			if run == nil || e.Index < 0 || e.Index >= len(run.points) || run.emitted[e.Index] {
				continue
			}
			fp := run.points[e.Index].Fingerprint
			p := s.points[fp]
			if p == nil {
				p = &point{fp: fp}
				s.points[fp] = p
			}
			if p.state != pDone {
				p.state = pDone
				p.record = s.recoveredRecord(fp, e.Err, recCache)
			}
			run.emitted[e.Index] = true
			run.cached[e.Index] = e.Cached
			run.order = append(run.order, e.Index)
			if e.Err != "" {
				run.failed++
			}
		default:
			s.logf("serve: journal: unknown entry kind %q (skipping)", e.Kind)
		}
	}
	// Second pass: points the journal never marked either completed
	// without their marker surviving (answer from the store, journaling a
	// fresh marker) or were still open (requeue them).
	grew := false
	for _, run := range recovered {
		seen := make(map[string]bool, len(run.points))
		for _, pt := range run.points {
			if seen[pt.Fingerprint] {
				continue
			}
			seen[pt.Fingerprint] = true
			all := true
			for _, idx := range run.fpIndex[pt.Fingerprint] {
				if !run.emitted[idx] {
					all = false
					break
				}
			}
			if all {
				continue
			}
			if s.resolveLocked(run, pt, nil) {
				grew = true
			}
		}
	}
	if grew {
		close(s.qnotify)
		s.qnotify = make(chan struct{})
	}
	for _, run := range recovered {
		s.logf("serve: recovered sweep %s (%s): %d/%d points done, %d requeued",
			run.id, run.name, len(run.order), len(run.points), len(s.queue))
	}
}

// recoveredRecord rebuilds the canonical record behind a journaled
// completion marker: failures carry their message in the marker itself,
// successes were persisted to the store before the marker was written.
func (s *Server) recoveredRecord(fp, errMsg string, cache map[string]*sweep.Record) *sweep.Record {
	if errMsg != "" {
		return &sweep.Record{Fingerprint: fp, Err: errMsg}
	}
	if rec, ok := cache[fp]; ok {
		return rec
	}
	stored, err := s.store.Get(fp)
	rec := &sweep.Record{Fingerprint: fp}
	if err != nil || stored == nil || stored.Replay == nil {
		// Persist-before-announce means this needs the store and the
		// journal to fail independently; surface it rather than guess.
		s.logf("serve: journal marks %s done but the store has no result (%v)", fp, err)
		rec.Err = fmt.Sprintf("stored result for %s lost after restart", fp)
	} else {
		rec.Replay = stored.Replay
	}
	cache[fp] = rec
	return rec
}

// markDoneLocked finalizes a point's canonical record and wakes every
// subscribed sweep. Idempotent: late or duplicate completions for an
// already-done point change nothing.
func (s *Server) markDoneLocked(p *point, canon *sweep.Record) {
	if p.state == pDone {
		return
	}
	if p.leaseID != "" {
		delete(s.leases, p.leaseID)
		p.leaseID = ""
	}
	p.state = pDone
	p.record = canon
	if canon.Err == "" {
		s.stats.Replayed++
	} else {
		s.stats.Failed++
	}
	for _, run := range p.subs {
		s.emitLocked(run, p.fp, canon, false)
	}
	p.subs = nil
}

// complete finalizes one point. Successes persist to the store before
// anything is announced; failures consume the retry budget — requeued
// while attempts remain, quarantined into a permanent-failure record
// once they run out.
func (s *Server) complete(p *point, replay *sweep.Record) error {
	canon := &sweep.Record{Fingerprint: p.fp, Replay: replay.Replay, Err: replay.Err}
	if canon.Err == "" && canon.Replay == nil {
		canon.Err = "worker posted an empty result"
	}
	if canon.Err != "" {
		s.mu.Lock()
		defer s.mu.Unlock()
		if p.state == pDone {
			return nil
		}
		p.lastErr = canon.Err
		if p.attempts < s.cfg.MaxAttempts {
			s.stats.Retried++
			s.logf("serve: %s failed (attempt %d/%d): %s (requeueing)",
				p.fp, p.attempts, s.cfg.MaxAttempts, canon.Err)
			s.requeueLocked(p)
			return nil
		}
		s.stats.Quarantined++
		canon.Err = fmt.Sprintf("quarantined after %d attempts: %s", p.attempts, canon.Err)
		s.logf("serve: %s %s", p.fp, canon.Err)
		s.markDoneLocked(p, canon)
		return nil
	}
	if err := s.store.Put(canon); err != nil {
		s.logf("serve: persisting %s: %v", p.fp, err)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markDoneLocked(p, canon)
	return nil
}

// popLocked removes the next queued point; requeue tombstones (entries
// whose state moved on) are skipped.
func (s *Server) popLocked() *point {
	for len(s.queue) > 0 {
		p := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		if p.state == pQueued {
			return p
		}
	}
	return nil
}

// waitLease blocks until a point can be leased, the wait budget runs
// out (wait >= 0), or ctx/the server ends. A draining server grants
// nothing. embedded leases carry no expiry and are exempt from the
// janitor.
func (s *Server) waitLease(ctx context.Context, wait time.Duration, embedded bool) (*Lease, *point) {
	var deadline time.Time
	if wait >= 0 {
		deadline = time.Now().Add(wait)
	}
	for {
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			return nil, nil
		}
		if p := s.popLocked(); p != nil {
			id := newID()
			p.state = pLeased
			p.leaseID = id
			p.attempts++
			s.stats.Attempts++
			if embedded {
				p.expiry = time.Time{}
			} else {
				p.expiry = time.Now().Add(s.cfg.LeaseTTL)
			}
			s.leases[id] = p
			l := &Lease{ID: id, Fingerprint: p.fp, Attempt: p.attempts,
				TTLMS: s.cfg.LeaseTTL.Milliseconds(), Scenario: p.scenarioJSON}
			s.mu.Unlock()
			return l, p
		}
		ch := s.qnotify
		s.mu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if wait >= 0 {
			rem := time.Until(deadline)
			if rem <= 0 {
				return nil, nil
			}
			timer = time.NewTimer(rem)
			timeout = timer.C
		}
		stop := false
		select {
		case <-ch:
		case <-timeout:
			stop = true
		case <-s.drainCh:
			stop = true
		case <-s.closing:
			stop = true
		case <-ctx.Done():
			stop = true
		}
		if timer != nil {
			timer.Stop()
		}
		if stop {
			return nil, nil
		}
	}
}

// requeueLocked returns a leased point to the queue.
func (s *Server) requeueLocked(p *point) {
	if p.leaseID != "" {
		delete(s.leases, p.leaseID)
		p.leaseID = ""
	}
	if p.state != pDone {
		p.state = pQueued
		s.queue = append(s.queue, p)
		close(s.qnotify)
		s.qnotify = make(chan struct{})
	}
}

// runEmbedded is one embedded worker: lease, replay, complete, repeat.
func (s *Server) runEmbedded(ctx context.Context) {
	defer s.wg.Done()
	for {
		_, p := s.waitLease(ctx, -1, true)
		if p == nil {
			return
		}
		if ctx.Err() != nil {
			s.mu.Lock()
			s.requeueLocked(p)
			s.mu.Unlock()
			return
		}
		rec := runScenario(ctx, p.scenario)
		rec.Fingerprint = p.fp
		if err := s.complete(p, rec); err != nil {
			// The replay succeeded but the store write failed; requeue so
			// the result is not silently lost.
			s.mu.Lock()
			s.requeueLocked(p)
			s.mu.Unlock()
		}
	}
}

// replayFunc executes one scenario; tests swap it to inject failures and
// panics on demand.
var replayFunc = func(ctx context.Context, sc *scenario.Scenario) (*core.Result, error) {
	return sc.Run(ctx)
}

// safeRun is replayFunc with panics recovered into errors: a poisoned
// scenario must cost its point (and its retry budget), never the worker
// process or the server.
func safeRun(ctx context.Context, sc *scenario.Scenario) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("replay panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return replayFunc(ctx, sc)
}

// runScenario replays one scenario into a canonical record.
func runScenario(ctx context.Context, sc *scenario.Scenario) *sweep.Record {
	res, err := safeRun(ctx, sc)
	rec := &sweep.Record{Replay: res}
	if err != nil {
		rec.Replay = nil
		rec.Err = err.Error()
	}
	return rec
}

// runJanitor reclaims expired leases, quarantining points whose retry
// budget is spent instead of requeueing them forever.
func (s *Server) runJanitor(ctx context.Context) {
	defer s.wg.Done()
	tick := s.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 2*time.Second {
		tick = 2 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.mu.Lock()
			for id, p := range s.leases {
				if p.expiry.IsZero() || now.Before(p.expiry) {
					continue
				}
				s.stats.ExpiredLeases++
				if p.attempts >= s.cfg.MaxAttempts {
					s.stats.Quarantined++
					reason := "worker never reported back"
					if p.lastErr != "" {
						reason = p.lastErr
					}
					canon := &sweep.Record{Fingerprint: p.fp,
						Err: fmt.Sprintf("quarantined after %d attempts: %s", p.attempts, reason)}
					s.logf("serve: lease %s on %s expired; %s", id, p.fp, canon.Err)
					s.markDoneLocked(p, canon)
				} else {
					s.logf("serve: lease %s on %s expired (attempt %d/%d); requeueing",
						id, p.fp, p.attempts, s.cfg.MaxAttempts)
					s.requeueLocked(p)
				}
			}
			s.mu.Unlock()
		}
	}
}

// --- HTTP handlers ---

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The strict decoder rejects typoed fields with an error naming them;
	// expansion validates every point before anything is enqueued.
	sw, err := sweep.ReadSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	points, err := sw.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, resp, err := s.register(sw, points)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.logf("serve: sweep %s (%s): %d points, %d cached, %d merged, %d pending",
		run.id, sw.Name, resp.Points, resp.Cached, resp.Merged, resp.Pending)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.sweeps[r.PathValue("id")]
	if run == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "serve: unknown sweep %q", r.PathValue("id"))
		return
	}
	st := SweepStatus{ID: run.id, Name: run.name, Points: len(run.points),
		Done: len(run.order), Failed: run.failed}
	for _, c := range run.cached {
		if c {
			st.Cached++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

// recordLocked renders the run's idx-th grid point with the sweep's own
// metadata around the shared canonical result. seq is the record's
// 1-based position in the completion order.
func (run *sweepRun) recordLocked(s *Server, idx, seq int) *sweep.Record {
	pt := run.points[idx]
	canon := s.points[pt.Fingerprint].record
	return &sweep.Record{
		Sweep:       run.name,
		Index:       pt.Index,
		Name:        pt.Scenario.Name,
		Fingerprint: pt.Fingerprint,
		Seq:         int64(seq),
		Values:      pt.Values,
		Labels:      pt.Labels,
		Cached:      run.cached[idx],
		Replay:      canon.Replay,
		Err:         canon.Err,
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if run == nil {
		httpError(w, http.StatusNotFound, "serve: unknown sweep %q", r.PathValue("id"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > len(run.points) {
			httpError(w, http.StatusBadRequest, "serve: bad after=%q (sweep has %d points)", v, len(run.points))
			return
		}
		after = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tireplay-Points", strconv.Itoa(len(run.points)))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := after
	for {
		s.mu.Lock()
		var recs []*sweep.Record
		for ; next < len(run.order); next++ {
			recs = append(recs, run.recordLocked(s, run.order[next], next+1))
		}
		done := len(run.order) == len(run.points)
		ch := run.notify
		s.mu.Unlock()

		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return // client went away
			}
		}
		if flusher != nil && len(recs) > 0 {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}

// maxLeaseWait caps long-poll holds so a dead client's request cannot
// pin a connection forever.
const maxLeaseWait = 30 * time.Second

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "serve: decoding lease request: %v", err)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	l, _ := s.waitLease(r.Context(), wait, false)
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.logf("serve: leased %s to %s (lease %s, attempt %d)", l.Fingerprint, req.Worker, l.ID, l.Attempt)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(l) //nolint:errcheck
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	p := s.leases[id]
	if p != nil {
		p.expiry = time.Now().Add(s.cfg.LeaseTTL)
	}
	s.mu.Unlock()
	if p == nil {
		httpError(w, http.StatusNotFound, "serve: unknown or expired lease %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var res WorkerResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		httpError(w, http.StatusBadRequest, "serve: decoding result: %v", err)
		return
	}
	if res.Fingerprint == "" || (res.Replay == nil && res.Err == "") {
		httpError(w, http.StatusBadRequest, "serve: result needs a fingerprint and a replay or an error")
		return
	}
	s.mu.Lock()
	p := s.points[res.Fingerprint]
	s.mu.Unlock()
	if p == nil {
		httpError(w, http.StatusNotFound, "serve: unknown fingerprint %q", res.Fingerprint)
		return
	}
	if err := s.complete(p, &sweep.Record{Fingerprint: res.Fingerprint, Replay: res.Replay, Err: res.Err}); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats()) //nolint:errcheck
}
