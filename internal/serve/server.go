package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// Config parameterizes a Server.
type Config struct {
	// Store is the shared result-store directory (required): every
	// completed point persists there, and submissions are answered from
	// it across server restarts.
	Store string
	// Workers sizes the embedded worker pool: 0 selects GOMAXPROCS,
	// negative disables embedded execution (external workers only).
	Workers int
	// LeaseTTL is how long a leased point may go without a heartbeat
	// before it returns to the queue; 0 selects 30s.
	LeaseTTL time.Duration
	// Logf, when set, receives one line per notable server event
	// (submissions, expired leases, store failures).
	Logf func(format string, args ...any)
}

// Point lifecycle states.
const (
	pQueued = iota
	pLeased
	pDone
)

// point is the singleflight entry for one distinct scenario fingerprint:
// however many sweeps (from however many clients) contain it, it is
// queued, leased, replayed, and completed exactly once.
type point struct {
	fp           string
	scenario     *scenario.Scenario
	scenarioJSON json.RawMessage
	state        int
	// record is the canonical result (fingerprint, replay, error), set
	// once state is pDone. Per-sweep metadata is applied at emission.
	record  *sweep.Record
	leaseID string
	// expiry is the lease deadline; zero for embedded leases (same
	// process — a lost embedded worker means a lost server).
	expiry time.Time
	// subs are the sweeps waiting on this point.
	subs []*sweepRun
}

// sweepRun is one submitted sweep: its expanded grid plus the completion
// order its result streams replay.
type sweepRun struct {
	id     string
	name   string
	points []sweep.Point
	// fpIndex maps a fingerprint to the grid indices it satisfies (two
	// points of one grid can share a fingerprint, e.g. label-only axes).
	fpIndex map[string][]int
	// cached marks grid indices served from the store at submit time.
	cached []bool
	// order is the completion order of grid indices; streams index into
	// it and wait on notify for growth.
	order  []int
	failed int
	notify chan struct{}
}

func (r *sweepRun) completeLocked(fp string, failed bool) {
	for _, idx := range r.fpIndex[fp] {
		r.order = append(r.order, idx)
		if failed {
			r.failed++
		}
	}
	close(r.notify)
	r.notify = make(chan struct{})
}

// Server is the sweep service: shared store, singleflight dedup,
// work-stealing queue, lease janitor, and (optionally) embedded workers.
// Create with New, expose via Handler, stop with Close.
type Server struct {
	cfg   Config
	store *sweep.Store
	mux   *http.ServeMux

	mu      sync.Mutex
	queue   []*point
	qnotify chan struct{} // closed+replaced when the queue grows
	points  map[string]*point
	sweeps  map[string]*sweepRun
	leases  map[string]*point
	stats   Stats
	closed  bool

	closing chan struct{}
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// New builds a Server over the configured store and starts its embedded
// workers and lease janitor.
func New(cfg Config) (*Server, error) {
	if cfg.Store == "" {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	st, err := sweep.OpenStore(cfg.Store)
	if err != nil {
		return nil, err
	}
	warm, err := st.Len()
	if err != nil {
		return nil, fmt.Errorf("serve: scanning store: %w", err)
	}

	s := &Server{
		cfg:     cfg,
		store:   st,
		qnotify: make(chan struct{}),
		points:  make(map[string]*point),
		sweeps:  make(map[string]*sweepRun),
		leases:  make(map[string]*point),
		closing: make(chan struct{}),
	}
	s.stats.StoreWarm = warm
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("POST /sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("POST /lease", s.handleLease)
	s.mux.HandleFunc("POST /lease/{id}/heartbeat", s.handleHeartbeat)
	s.mux.HandleFunc("POST /results", s.handleResult)
	s.mux.HandleFunc("GET /stats", s.handleStats)

	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel

	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.runEmbedded(ctx)
	}

	s.wg.Add(1)
	go s.runJanitor(ctx)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's result store.
func (s *Server) Store() *sweep.Store { return s.store }

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Sweeps = len(s.sweeps)
	st.Fingerprints = len(s.points)
	st.Queued = len(s.queue)
	st.Leased = len(s.leases)
	return st
}

// Close stops the embedded workers and janitor and ends every open
// result stream. In-flight external leases are abandoned (their posts
// will fail); the store keeps everything already completed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// register adds a sweep's expanded points to the dedup table and queue,
// answering from the store where possible. Called with s.mu NOT held.
func (s *Server) register(sw *sweep.Sweep, points []sweep.Point) (*sweepRun, SubmitResponse) {
	run := &sweepRun{
		id:      newID(),
		name:    sw.Name,
		points:  points,
		fpIndex: make(map[string][]int),
		cached:  make([]bool, len(points)),
		notify:  make(chan struct{}),
	}
	var resp SubmitResponse
	resp.ID = run.id
	resp.Points = len(points)

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, pt := range points {
		run.fpIndex[pt.Fingerprint] = append(run.fpIndex[pt.Fingerprint], pt.Index)
	}
	grew := false
	for _, pt := range points {
		if len(run.fpIndex[pt.Fingerprint]) > 0 && run.fpIndex[pt.Fingerprint][0] != pt.Index {
			continue // later duplicate of a fingerprint this sweep already handled
		}
		p := s.points[pt.Fingerprint]
		if p == nil {
			// First time this server sees the scenario: store, then queue.
			rec, err := s.store.Get(pt.Fingerprint)
			if err == nil && rec != nil && rec.Replay != nil {
				p = &point{fp: pt.Fingerprint, state: pDone,
					record: &sweep.Record{Fingerprint: pt.Fingerprint, Replay: rec.Replay}}
				s.points[pt.Fingerprint] = p
			} else {
				if err != nil {
					// A corrupt stored record is not fatal: re-replay it.
					s.logf("serve: store: %v (re-replaying)", err)
				}
				scJSON, merr := json.Marshal(pt.Scenario)
				if merr != nil {
					// Cannot happen for a sweep-expanded scenario; fail the
					// point rather than the submission.
					p = &point{fp: pt.Fingerprint, state: pDone,
						record: &sweep.Record{Fingerprint: pt.Fingerprint, Err: merr.Error()}}
					s.points[pt.Fingerprint] = p
				} else {
					p = &point{fp: pt.Fingerprint, scenario: pt.Scenario, scenarioJSON: scJSON, state: pQueued}
					s.points[pt.Fingerprint] = p
					s.queue = append(s.queue, p)
					grew = true
				}
			}
		} else if p.state != pDone {
			s.stats.Merged++
			resp.Merged++
		}
		if p.state == pDone {
			fromStore := p.record.Err == "" // errors are never store hits
			for _, idx := range run.fpIndex[pt.Fingerprint] {
				run.order = append(run.order, idx)
				if p.record.Err != "" {
					run.failed++
				}
				run.cached[idx] = fromStore
				if fromStore {
					s.stats.CacheHits++
					resp.Cached++
				}
			}
		} else {
			p.subs = append(p.subs, run)
			resp.Pending += len(run.fpIndex[pt.Fingerprint])
		}
	}
	if grew {
		close(s.qnotify)
		s.qnotify = make(chan struct{})
	}
	s.sweeps[run.id] = run
	return run, resp
}

// complete finalizes one point: persist (successes only — failures stay
// in memory so the service can retry them after a restart), then mark
// done and wake every subscribed sweep. Idempotent: late or duplicate
// results for an already-done point change nothing.
func (s *Server) complete(p *point, replay *sweep.Record) error {
	canon := &sweep.Record{Fingerprint: p.fp, Replay: replay.Replay, Err: replay.Err}
	if canon.Err == "" && canon.Replay != nil {
		if err := s.store.Put(canon); err != nil {
			s.logf("serve: persisting %s: %v", p.fp, err)
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.state == pDone {
		return nil
	}
	if p.leaseID != "" {
		delete(s.leases, p.leaseID)
		p.leaseID = ""
	}
	p.state = pDone
	p.record = canon
	if canon.Err == "" {
		s.stats.Replayed++
	} else {
		s.stats.Failed++
	}
	for _, run := range p.subs {
		run.completeLocked(p.fp, canon.Err != "")
	}
	p.subs = nil
	return nil
}

// popLocked removes the next queued point; requeue tombstones (entries
// whose state moved on) are skipped.
func (s *Server) popLocked() *point {
	for len(s.queue) > 0 {
		p := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		if p.state == pQueued {
			return p
		}
	}
	return nil
}

// waitLease blocks until a point can be leased, the wait budget runs
// out (wait >= 0), or ctx/the server ends. embedded leases carry no
// expiry and are exempt from the janitor.
func (s *Server) waitLease(ctx context.Context, wait time.Duration, embedded bool) (*Lease, *point) {
	var deadline time.Time
	if wait >= 0 {
		deadline = time.Now().Add(wait)
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, nil
		}
		if p := s.popLocked(); p != nil {
			id := newID()
			p.state = pLeased
			p.leaseID = id
			if embedded {
				p.expiry = time.Time{}
			} else {
				p.expiry = time.Now().Add(s.cfg.LeaseTTL)
			}
			s.leases[id] = p
			l := &Lease{ID: id, Fingerprint: p.fp, TTLMS: s.cfg.LeaseTTL.Milliseconds(), Scenario: p.scenarioJSON}
			s.mu.Unlock()
			return l, p
		}
		ch := s.qnotify
		s.mu.Unlock()

		var timeout <-chan time.Time
		var timer *time.Timer
		if wait >= 0 {
			rem := time.Until(deadline)
			if rem <= 0 {
				return nil, nil
			}
			timer = time.NewTimer(rem)
			timeout = timer.C
		}
		stop := false
		select {
		case <-ch:
		case <-timeout:
			stop = true
		case <-s.closing:
			stop = true
		case <-ctx.Done():
			stop = true
		}
		if timer != nil {
			timer.Stop()
		}
		if stop {
			return nil, nil
		}
	}
}

// requeueLocked returns a leased point to the queue.
func (s *Server) requeueLocked(p *point) {
	if p.leaseID != "" {
		delete(s.leases, p.leaseID)
		p.leaseID = ""
	}
	if p.state != pDone {
		p.state = pQueued
		s.queue = append(s.queue, p)
		close(s.qnotify)
		s.qnotify = make(chan struct{})
	}
}

// runEmbedded is one embedded worker: lease, replay, complete, repeat.
func (s *Server) runEmbedded(ctx context.Context) {
	defer s.wg.Done()
	for {
		_, p := s.waitLease(ctx, -1, true)
		if p == nil {
			return
		}
		if ctx.Err() != nil {
			s.mu.Lock()
			s.requeueLocked(p)
			s.mu.Unlock()
			return
		}
		rec := runScenario(ctx, p.scenario)
		rec.Fingerprint = p.fp
		if err := s.complete(p, rec); err != nil {
			// The replay succeeded but the store write failed; requeue so
			// the result is not silently lost.
			s.mu.Lock()
			s.requeueLocked(p)
			s.mu.Unlock()
		}
	}
}

// runScenario replays one scenario into a canonical record.
func runScenario(ctx context.Context, sc *scenario.Scenario) *sweep.Record {
	res, err := sc.Run(ctx)
	rec := &sweep.Record{Replay: res}
	if err != nil {
		rec.Replay = nil
		rec.Err = err.Error()
	}
	return rec
}

// runJanitor reclaims expired leases.
func (s *Server) runJanitor(ctx context.Context) {
	defer s.wg.Done()
	tick := s.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 2*time.Second {
		tick = 2 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.mu.Lock()
			for id, p := range s.leases {
				if p.expiry.IsZero() || now.Before(p.expiry) {
					continue
				}
				s.logf("serve: lease %s on %s expired; requeueing", id, p.fp)
				s.stats.ExpiredLeases++
				s.requeueLocked(p)
			}
			s.mu.Unlock()
		}
	}
}

// --- HTTP handlers ---

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The strict decoder rejects typoed fields with an error naming them;
	// expansion validates every point before anything is enqueued.
	sw, err := sweep.ReadSpec(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	points, err := sw.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	run, resp := s.register(sw, points)
	s.logf("serve: sweep %s (%s): %d points, %d cached, %d merged, %d pending",
		run.id, sw.Name, resp.Points, resp.Cached, resp.Merged, resp.Pending)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.sweeps[r.PathValue("id")]
	if run == nil {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "serve: unknown sweep %q", r.PathValue("id"))
		return
	}
	st := SweepStatus{ID: run.id, Name: run.name, Points: len(run.points),
		Done: len(run.order), Failed: run.failed}
	for _, c := range run.cached {
		if c {
			st.Cached++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

// recordLocked renders the run's idx-th grid point with the sweep's own
// metadata around the shared canonical result.
func (run *sweepRun) recordLocked(s *Server, idx int) *sweep.Record {
	pt := run.points[idx]
	canon := s.points[pt.Fingerprint].record
	return &sweep.Record{
		Sweep:       run.name,
		Index:       pt.Index,
		Name:        pt.Scenario.Name,
		Fingerprint: pt.Fingerprint,
		Values:      pt.Values,
		Labels:      pt.Labels,
		Cached:      run.cached[idx],
		Replay:      canon.Replay,
		Err:         canon.Err,
	}
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	run := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if run == nil {
		httpError(w, http.StatusNotFound, "serve: unknown sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tireplay-Points", strconv.Itoa(len(run.points)))
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	next := 0
	for {
		s.mu.Lock()
		var recs []*sweep.Record
		for ; next < len(run.order); next++ {
			recs = append(recs, run.recordLocked(s, run.order[next]))
		}
		done := len(run.order) == len(run.points)
		ch := run.notify
		s.mu.Unlock()

		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return // client went away
			}
		}
		if flusher != nil && len(recs) > 0 {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}

// maxLeaseWait caps long-poll holds so a dead client's request cannot
// pin a connection forever.
const maxLeaseWait = 30 * time.Second

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "serve: decoding lease request: %v", err)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	l, _ := s.waitLease(r.Context(), wait, false)
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.logf("serve: leased %s to %s (lease %s)", l.Fingerprint, req.Worker, l.ID)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(l) //nolint:errcheck
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	p := s.leases[id]
	if p != nil {
		p.expiry = time.Now().Add(s.cfg.LeaseTTL)
	}
	s.mu.Unlock()
	if p == nil {
		httpError(w, http.StatusNotFound, "serve: unknown or expired lease %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	var res WorkerResult
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		httpError(w, http.StatusBadRequest, "serve: decoding result: %v", err)
		return
	}
	if res.Fingerprint == "" || (res.Replay == nil && res.Err == "") {
		httpError(w, http.StatusBadRequest, "serve: result needs a fingerprint and a replay or an error")
		return
	}
	s.mu.Lock()
	p := s.points[res.Fingerprint]
	s.mu.Unlock()
	if p == nil {
		httpError(w, http.StatusNotFound, "serve: unknown fingerprint %q", res.Fingerprint)
		return
	}
	if err := s.complete(p, &sweep.Record{Fingerprint: res.Fingerprint, Replay: res.Replay, Err: res.Err}); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats()) //nolint:errcheck
}
