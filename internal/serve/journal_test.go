package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func mustOpenJournal(t *testing.T, path string) (*journal, []journalEntry) {
	t.Helper()
	j, entries, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	return j, entries
}

func markEntry(sweep string, idx int) *journalEntry {
	return &journalEntry{Kind: journalKindMark, Sweep: sweep, Index: idx}
}

// TestJournalRoundTrip: entries appended in one session replay in order
// in the next.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, entries := mustOpenJournal(t, path)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	want := []*journalEntry{
		{Kind: journalKindSweep, ID: "s1", Name: "grid", Spec: []byte(`{"name":"grid"}`)},
		{Kind: journalKindMark, Sweep: "s1", Index: 2, Cached: true},
		{Kind: journalKindMark, Sweep: "s1", Index: 0, Err: "boom"},
	}
	for _, e := range want {
		if err := j.append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpenJournal(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(got), len(want))
	}
	for i, e := range want {
		g := got[i]
		if g.Kind != e.Kind || g.ID != e.ID || g.Sweep != e.Sweep || g.Index != e.Index ||
			g.Err != e.Err || g.Cached != e.Cached || string(g.Spec) != string(e.Spec) {
			t.Errorf("entry %d = %+v, want %+v", i, g, *e)
		}
	}
}

// TestJournalTornTail: a crash mid-append (simulated by chopping bytes
// off the end) loses only the torn entry; the file is truncated back to
// the last whole frame and appends continue cleanly.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := mustOpenJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.append(markEntry("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	j2, entries := mustOpenJournal(t, path)
	if len(entries) != 2 {
		t.Fatalf("torn journal replayed %d entries, want 2", len(entries))
	}
	// The torn frame is gone; a new append lands on a clean boundary.
	if err := j2.append(markEntry("s", 9)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, entries := mustOpenJournal(t, path)
	defer j3.Close()
	if len(entries) != 3 || entries[2].Index != 9 {
		t.Fatalf("after torn-tail repair: %d entries (last %+v), want 3 ending in index 9", len(entries), entries[len(entries)-1])
	}
}

// TestJournalCorruptTail: a flipped bit fails the frame's CRC; entries
// before it survive, the corrupt frame and everything after are dropped.
func TestJournalCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _ := mustOpenJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.append(markEntry("s", i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame := (int64(len(data)) - int64(len(journalMagic))) / 3
	data[int64(len(journalMagic))+frame+frame/2] ^= 0x40 // middle of the 2nd frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, entries := mustOpenJournal(t, path)
	defer j2.Close()
	if len(entries) != 1 || entries[0].Index != 0 {
		t.Fatalf("corrupt journal replayed %d entries, want exactly the first", len(entries))
	}
}

// TestJournalBadMagic: a file that is not a journal is refused, not
// clobbered.
func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("openJournal accepted a non-journal file")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "definitely not a journal" {
		t.Fatalf("non-journal file was modified: %q, %v", data, err)
	}
}
