package experiments

import (
	"math"
	"strings"
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

// The experiment tests are regression locks on the *shapes* the paper
// reports; they run with reduced iteration counts and a subset of process
// counts to stay fast.

var fastOpt = Options{Iterations: 5, CalibrationIterations: 3}

func TestTableOverheadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	rows, err := TableOverhead(ground.Bordereau(), []npb.Class{npb.ClassB}, []int{8, 64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// -O3 shortens both versions.
		if r.NewOrig >= r.OldOrig {
			t.Errorf("%s: -O3 original %v not faster than -O0 %v", r.Instance, r.NewOrig, r.OldOrig)
		}
		// Instrumentation always costs time; the new acquisition costs less.
		if r.OldOverheadPct <= 0 || r.NewOverheadPct <= 0 {
			t.Errorf("%s: non-positive overheads %+v", r.Instance, r)
		}
		if r.NewOverheadPct >= r.OldOverheadPct {
			t.Errorf("%s: new overhead %.1f%% not below old %.1f%%",
				r.Instance, r.NewOverheadPct, r.OldOverheadPct)
		}
	}
	// Times decrease with process count.
	if rows[1].OldOrig >= rows[0].OldOrig {
		t.Errorf("B-64 (%v) not faster than B-8 (%v)", rows[1].OldOrig, rows[0].OldOrig)
	}
	// Overhead grows with process count (both pipelines).
	if rows[1].OldOverheadPct <= rows[0].OldOverheadPct {
		t.Errorf("old overhead did not grow with procs: %+v", rows)
	}
}

func TestDiscrepancyShapes(t *testing.T) {
	fine, err := FigureDiscrepancy(ground.Graphene(), FineVsCoarse, []npb.Class{npb.ClassB}, []int{8, 128}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	min, err := FigureDiscrepancy(ground.Graphene(), MinimalVsCoarse, []npb.Class{npb.ClassB}, []int{8, 128}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 band: ~10-16% at 8 procs, rising at 128.
	if fine[0].Dist.Mean < 8 || fine[0].Dist.Mean > 18 {
		t.Errorf("fine B-8 mean = %.2f%%, want ~10-16%%", fine[0].Dist.Mean)
	}
	if fine[1].Dist.Mean <= fine[0].Dist.Mean {
		t.Errorf("fine discrepancy did not grow with procs: %.2f vs %.2f",
			fine[1].Dist.Mean, fine[0].Dist.Mean)
	}
	// Figures 4/5: minimal instrumentation discrepancy far below fine.
	for i := range min {
		if min[i].Dist.Mean >= fine[i].Dist.Mean/2 {
			t.Errorf("%s: minimal %.2f%% not well below fine %.2f%%",
				min[i].Instance, min[i].Dist.Mean, fine[i].Dist.Mean)
		}
		if min[i].Dist.Min < 0 {
			t.Errorf("%s: negative discrepancy %v", min[i].Instance, min[i].Dist)
		}
	}
	// B-8 under the new settings is close to zero (Figure 5).
	if min[0].Dist.Mean > 3 {
		t.Errorf("minimal B-8 mean = %.2f%%, want near zero", min[0].Dist.Mean)
	}
}

func TestFigure3OldPipelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	rows, err := FigureAccuracy(ground.Bordereau(), OldPipeline,
		[]npb.Class{npb.ClassB, npb.ClassC}, []int{8, 64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AccuracyRow{}
	for _, r := range rows {
		byName[r.Instance] = r
	}
	// Linear error growth: strongly positive at 64 processes.
	if byName["B-64"].ErrPct < 20 {
		t.Errorf("old pipeline B-64 error = %.1f%%, want the large positive blowup (paper: +38.9%%)",
			byName["B-64"].ErrPct)
	}
	if byName["C-64"].ErrPct < 8 {
		t.Errorf("old pipeline C-64 error = %.1f%%, want clearly positive (paper: +32.5%%)",
			byName["C-64"].ErrPct)
	}
	// Underestimation at small process counts for class C (cache effect).
	if byName["C-8"].ErrPct > -3 {
		t.Errorf("old pipeline C-8 error = %.1f%%, want clearly negative (paper: -15.8%%)",
			byName["C-8"].ErrPct)
	}
	// Growth with process count for both classes.
	if byName["B-64"].ErrPct <= byName["B-8"].ErrPct ||
		byName["C-64"].ErrPct <= byName["C-8"].ErrPct {
		t.Errorf("old pipeline error does not grow with procs: %+v", rows)
	}
}

func TestFigure6And7NewPipelineBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	for _, tc := range []struct {
		cluster *ground.Cluster
		procs   []int
	}{
		{ground.Bordereau(), []int{8, 64}},
		{ground.Graphene(), []int{8, 64}},
	} {
		rows, err := FigureAccuracy(tc.cluster, NewPipeline,
			[]npb.Class{npb.ClassB, npb.ClassC}, tc.procs, fastOpt)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			// The paper's headline: bounded, stable errors (within ~±12%).
			if math.Abs(r.ErrPct) > 12 {
				t.Errorf("%s on %s: new pipeline error %.1f%% outside ±12%%",
					r.Instance, tc.cluster.Name, r.ErrPct)
			}
		}
	}
}

func TestNewPipelineBeatsOldAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	// The crossover claim: at 64 processes the new pipeline must be far
	// more accurate than the old one.
	oldRows, err := FigureAccuracy(ground.Bordereau(), OldPipeline, []npb.Class{npb.ClassB}, []int{64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	newRows, err := FigureAccuracy(ground.Bordereau(), NewPipeline, []npb.Class{npb.ClassB}, []int{64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(newRows[0].ErrPct) >= math.Abs(oldRows[0].ErrPct)/2 {
		t.Fatalf("new pipeline (%.1f%%) not clearly better than old (%.1f%%) at B-64",
			newRows[0].ErrPct, oldRows[0].ErrPct)
	}
}

func TestGrapheneNewPipelineUnderestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	// Figure 7: the missing sender-side memcpy makes the prediction drift
	// negative as the process count grows.
	rows, err := FigureAccuracy(ground.Graphene(), NewPipeline, []npb.Class{npb.ClassB}, []int{8, 64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].ErrPct >= rows[0].ErrPct {
		t.Errorf("graphene error did not drift down with procs: %.2f%% at 8, %.2f%% at 64",
			rows[0].ErrPct, rows[1].ErrPct)
	}
	if rows[1].ErrPct > 0 {
		t.Errorf("graphene B-64 error = %.2f%%, want negative (underestimation)", rows[1].ErrPct)
	}
}

func TestRenderers(t *testing.T) {
	var sb strings.Builder
	RenderOverhead(&sb, "T", []OverheadRow{{Instance: "B-8", OldOrig: 93.05, OldInstr: 98.64, OldOverheadPct: 6}})
	if !strings.Contains(sb.String(), "B-8") || !strings.Contains(sb.String(), "93.05") {
		t.Fatalf("overhead render: %q", sb.String())
	}
	sb.Reset()
	RenderAccuracy(&sb, "T", []AccuracyRow{{Instance: "C-64", Real: 61, Sim: 71, ErrPct: 16.1, ReplayWallSeconds: 1, ReplayActions: 100}})
	if !strings.Contains(sb.String(), "C-64") || !strings.Contains(sb.String(), "+16.1%") {
		t.Fatalf("accuracy render: %q", sb.String())
	}
	sb.Reset()
	RenderDiscrepancy(&sb, "T", []DiscrepancyRow{{Instance: "B-128"}})
	if !strings.Contains(sb.String(), "B-128") {
		t.Fatalf("discrepancy render: %q", sb.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.iters() != 25 || o.calIters() != 5 {
		t.Fatalf("defaults = %d, %d", o.iters(), o.calIters())
	}
	o = Options{Iterations: 3, CalibrationIterations: 2}
	if o.iters() != 3 || o.calIters() != 2 {
		t.Fatalf("overrides = %d, %d", o.iters(), o.calIters())
	}
}

func TestScaleToFull(t *testing.T) {
	// Class B itmax is 250: a 10-iteration time scales by 25.
	if got := scaleToFull(2.0, npb.ClassB, 10); math.Abs(got-50) > 1e-9 {
		t.Fatalf("scaleToFull = %v, want 50", got)
	}
}
