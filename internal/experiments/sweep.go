package experiments

// The sweep experiment is the declarative-grid showcase: the paper's whole
// {LU, CG} x classes x process-count x backend grid of perfect-trace
// replays, expressed as a sweep.Sweep spec — a base scenario plus axes —
// instead of hand-written nested loops, and executed concurrently on the
// worker pool. Per-scenario results are identical to sequential execution;
// only the wall-clock time shrinks.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"tireplay/internal/ground"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/runner"
	"tireplay/internal/scenario"
	"tireplay/internal/sweep"
)

// SweepRow is one scenario outcome of a batch sweep.
type SweepRow struct {
	Name    string
	Backend string
	// Sim is the predicted execution time, Wall the replay cost.
	Sim, Wall float64
	Actions   int64
	// Err is the scenario's failure message, "" on success.
	Err string
}

// SweepSpec declares the replay grid {LU, CG} x classes x procs x
// {SMPI, MSG} of perfect traces on the target cluster as a sweep: the
// paper's whole evaluation, as one serializable spec.
func SweepSpec(target *ground.Cluster, classes []npb.Class, procs []int, opt Options) (*sweep.Sweep, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("experiments: sweep needs at least one class")
	}
	replayMPI := target.MPI
	replayMPI.MemcpyBandwidth, replayMPI.MemcpyLatency = 0, 0 // paper-era SMPI (§4.3)

	classVals := make([]any, len(classes))
	for i, c := range classes {
		classVals[i] = c.String()
	}

	// Each procs value swaps in the whole platform description for that
	// scale (the cluster's spec differs per rank count), coupled with the
	// workload's process count.
	var procVals []any
	var procLabels []string
	for _, p := range procs {
		if p > target.Hosts {
			continue
		}
		spec, err := toDoc(target.Spec(p))
		if err != nil {
			return nil, err
		}
		procVals = append(procVals, map[string]any{
			"workload.procs": p,
			"platform":       spec,
		})
		procLabels = append(procLabels, fmt.Sprint(p))
	}
	if len(procVals) == 0 {
		return nil, fmt.Errorf("experiments: no process count in %v fits %s's %d hosts", procs, target.Name, target.Hosts)
	}

	msgCfg, err := toDoc(msgreplay.PrototypeConfig())
	if err != nil {
		return nil, err
	}

	return &sweep.Sweep{
		Name: "paper-grid-" + target.Name,
		Base: scenario.Scenario{
			Platform: target.Spec(1),
			Workload: &scenario.WorkloadSpec{
				Benchmark: "lu", Class: classes[0].String(), Procs: 1,
				Iterations: opt.iters(),
			},
			MPI: replayMPI,
		},
		NameFormat: "{bench} {class}-{procs}/{backend}",
		Axes: []sweep.Axis{
			{Name: "bench", Path: "workload.benchmark", Values: []any{"lu", "cg"}},
			{Name: "class", Path: "workload.class", Values: classVals},
			{Name: "procs", Values: procVals, Labels: procLabels},
			{Name: "backend", Values: []any{
				map[string]any{"backend": "smpi"},
				// The prototype's crude hard-coded network reference
				// figures, no piece-wise factors, and no SMPI model config
				// (it is inert for msg, but clearing it keeps the point's
				// fingerprint decoupled from SMPI knob changes).
				map[string]any{"backend": "msg", "msg": msgCfg, "mpi": map[string]any{}, "no_network_factors": true},
			}, Labels: []string{"smpi", "msg"}},
		},
	}, nil
}

// toDoc converts a serializable value to its generic JSON document form,
// usable as an axis assignment.
func toDoc(v any) (map[string]any, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Sweep expands the grid and runs it on a worker pool; workers < 1 selects
// GOMAXPROCS. observe, when non-nil, is called after each scenario
// completes.
func Sweep(ctx context.Context, target *ground.Cluster, classes []npb.Class, procs []int,
	workers int, opt Options, observe func(done, total int, name string)) ([]SweepRow, error) {

	spec, err := SweepSpec(target, classes, procs, opt)
	if err != nil {
		return nil, err
	}
	opts := []sweep.Option{sweep.WithWorkers(workers)}
	if observe != nil {
		opts = append(opts, sweep.WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Finished {
				observe(ev.Done, ev.Total, ev.Result.Scenario.Name)
			}
		}))
	}
	results, err := sweep.Collect(ctx, spec, opts...)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(results))
	for i, r := range results {
		rows[i] = SweepRow{Name: r.Point.Scenario.Name, Backend: r.Point.Scenario.Backend}
		if r.Err != nil {
			rows[i].Err = r.Err.Error()
			continue
		}
		rows[i].Sim = r.Replay.SimulatedTime
		rows[i].Wall = r.Replay.Wall.Seconds()
		rows[i].Actions = r.Replay.Actions
	}
	return rows, nil
}

// RenderSweep prints sweep rows as a table.
func RenderSweep(w io.Writer, title string, rows []SweepRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s | %12s %12s %10s\n", "Scenario", "Simulated", "ReplayWall", "Actions")
	fmt.Fprintf(w, "%s\n", lineOf(56))
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-16s | ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-16s | %11.3fs %11.3fs %10d\n", r.Name, r.Sim, r.Wall, r.Actions)
	}
}
