package experiments

// The sweep experiment is the batch-runner showcase: the paper's whole
// {LU, CG} x classes x process-count x backend grid of perfect-trace
// replays, declared as scenarios and executed concurrently on a worker
// pool. Per-scenario results are identical to sequential execution; only
// the wall-clock time shrinks.

import (
	"context"
	"fmt"
	"io"

	"tireplay/internal/ground"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/runner"
	"tireplay/internal/scenario"
)

// SweepRow is one scenario outcome of a batch sweep.
type SweepRow struct {
	Name    string
	Backend string
	// Sim is the predicted execution time, Wall the replay cost.
	Sim, Wall float64
	Actions   int64
	// Err is the scenario's failure message, "" on success.
	Err string
}

// SweepScenarios declares the replay grid {LU, CG} x classes x procs x
// {SMPI, MSG} of perfect traces on the target cluster's platform.
func SweepScenarios(target *ground.Cluster, classes []npb.Class, procs []int, opt Options) ([]*scenario.Scenario, error) {
	replayMPI := target.MPI
	replayMPI.MemcpyBandwidth, replayMPI.MemcpyLatency = 0, 0 // paper-era SMPI (§4.3)

	var scenarios []*scenario.Scenario
	for _, bench := range []string{"lu", "cg"} {
		for _, class := range classes {
			for _, p := range procs {
				if p > target.Hosts {
					continue
				}
				for _, backend := range []string{"smpi", "msg"} {
					plat, model, err := target.Platform(p)
					if err != nil {
						return nil, err
					}
					s := &scenario.Scenario{
						Name:    fmt.Sprintf("%s %s-%d/%s", bench, class, p, backend),
						Plat:    plat,
						Backend: backend,
						Workload: &scenario.WorkloadSpec{
							Benchmark: bench, Class: class.String(), Procs: p,
							Iterations: opt.iters(),
						},
					}
					if backend == "smpi" {
						s.Network = model
						s.MPI = replayMPI
					} else {
						s.MSG = msgreplay.PrototypeConfig()
					}
					scenarios = append(scenarios, s)
				}
			}
		}
	}
	return scenarios, nil
}

// Sweep runs the grid on a worker pool; workers < 1 selects GOMAXPROCS.
// observe, when non-nil, is called after each scenario completes.
func Sweep(ctx context.Context, target *ground.Cluster, classes []npb.Class, procs []int,
	workers int, opt Options, observe func(done, total int, name string)) ([]SweepRow, error) {

	scenarios, err := SweepScenarios(target, classes, procs, opt)
	if err != nil {
		return nil, err
	}
	opts := []runner.Option{runner.WithWorkers(workers)}
	if observe != nil {
		opts = append(opts, runner.WithObserver(func(ev runner.Event) {
			if ev.Kind == runner.Finished {
				observe(ev.Done, ev.Total, ev.Result.Scenario.Name)
			}
		}))
	}
	results, err := runner.Run(ctx, scenarios, opts...)
	if err != nil {
		return nil, err
	}
	rows := make([]SweepRow, len(results))
	for i, r := range results {
		rows[i] = SweepRow{Name: r.Scenario.Name, Backend: r.Scenario.Backend}
		if r.Err != nil {
			rows[i].Err = r.Err.Error()
			continue
		}
		rows[i].Sim = r.Replay.SimulatedTime
		rows[i].Wall = r.Replay.Wall.Seconds()
		rows[i].Actions = r.Replay.Actions
	}
	return rows, nil
}

// RenderSweep prints sweep rows as a table.
func RenderSweep(w io.Writer, title string, rows []SweepRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s | %12s %12s %10s\n", "Scenario", "Simulated", "ReplayWall", "Actions")
	fmt.Fprintf(w, "%s\n", lineOf(56))
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-16s | ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-16s | %11.3fs %11.3fs %10d\n", r.Name, r.Sim, r.Wall, r.Actions)
	}
}
