package experiments

import (
	"context"
	"strings"
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

func TestSweepGridShape(t *testing.T) {
	scenarios, err := SweepScenarios(ground.Graphene(), []npb.Class{npb.ClassS}, []int{4, 8}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	// {lu,cg} x {S} x {4,8} x {smpi,msg} = 8 scenarios.
	if len(scenarios) != 8 {
		t.Fatalf("grid has %d scenarios, want 8", len(scenarios))
	}
	for _, s := range scenarios {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestSweepRunsConcurrently(t *testing.T) {
	var events int
	rows, err := Sweep(context.Background(), ground.Graphene(), []npb.Class{npb.ClassS}, []int{4, 8},
		4, fastOpt, func(done, total int, name string) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || events != 8 {
		t.Fatalf("rows %d / events %d, want 8 each", len(rows), events)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Name, r.Err)
		}
		if r.Sim <= 0 || r.Actions <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Name, r)
		}
	}
	var sb strings.Builder
	RenderSweep(&sb, "T", rows)
	if !strings.Contains(sb.String(), "lu S-4/smpi") {
		t.Fatalf("render missing scenario name:\n%s", sb.String())
	}
}
