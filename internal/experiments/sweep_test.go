package experiments

import (
	"context"
	"strings"
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

func TestSweepGridShape(t *testing.T) {
	spec, err := SweepSpec(ground.Graphene(), []npb.Class{npb.ClassS}, []int{4, 8}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	points, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// {lu,cg} x {S} x {4,8} x {smpi,msg} = 8 scenarios.
	if len(points) != 8 {
		t.Fatalf("grid has %d points, want 8", len(points))
	}
	for _, pt := range points {
		if err := pt.Scenario.Validate(); err != nil {
			t.Fatalf("%s: %v", pt.Scenario.Name, err)
		}
	}
	// The grid keeps the hand-rolled loop's naming and order: backend
	// fastest, then procs, then class, then benchmark.
	if points[0].Scenario.Name != "lu S-4/smpi" || points[1].Scenario.Name != "lu S-4/msg" {
		t.Fatalf("unexpected leading points %q, %q", points[0].Scenario.Name, points[1].Scenario.Name)
	}
	// MSG points must not inherit the platform's factor model (the
	// prototype was factor-free) and must carry the prototype figures.
	for _, pt := range points {
		if pt.Scenario.Backend == "msg" {
			if !pt.Scenario.NoNetworkFactors {
				t.Fatalf("%s: msg point inherits network factors", pt.Scenario.Name)
			}
			if pt.Scenario.MSG.RefBandwidth == 0 {
				t.Fatalf("%s: msg point lost the prototype config", pt.Scenario.Name)
			}
		}
	}
	// Oversized process counts are dropped at spec build time.
	spec, err = SweepSpec(ground.Graphene(), []npb.Class{npb.ClassS}, []int{4, 100000}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if points, err = spec.Expand(); err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("oversized procs not dropped: %d points", len(points))
	}
}

func TestSweepRunsConcurrently(t *testing.T) {
	var events int
	rows, err := Sweep(context.Background(), ground.Graphene(), []npb.Class{npb.ClassS}, []int{4, 8},
		4, fastOpt, func(done, total int, name string) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || events != 8 {
		t.Fatalf("rows %d / events %d, want 8 each", len(rows), events)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Name, r.Err)
		}
		if r.Sim <= 0 || r.Actions <= 0 {
			t.Fatalf("%s: degenerate row %+v", r.Name, r)
		}
	}
	var sb strings.Builder
	RenderSweep(&sb, "T", rows)
	if !strings.Contains(sb.String(), "lu S-4/smpi") {
		t.Fatalf("render missing scenario name:\n%s", sb.String())
	}
}
