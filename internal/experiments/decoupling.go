package experiments

import (
	"fmt"
	"math"

	"tireplay/internal/calibrate"
	"tireplay/internal/core"
	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/stats"
)

// The decoupling experiment demonstrates the paper's central design claim
// (Sections 1 and 6): because time-independent traces contain only volumes,
// "heterogeneous and distributed platforms can then be used to get traces
// without impacting the quality of the simulation, which is not possible
// with any other tool". We acquire the same instance on *different*
// emulated machines — different speeds, different jitter, different
// instrumentation cost tables — and show that the replayed prediction for a
// fixed target platform is unchanged (the residual difference is only the
// probe-count term of the counters, which is machine-independent here and
// tiny by construction).

// DecouplingRow is one acquisition-site line.
type DecouplingRow struct {
	AcquiredOn string
	// Instructions is the mean per-rank counter total of the acquired
	// trace.
	Instructions float64
	// Sim is the predicted time for the fixed target platform.
	Sim float64
	// DeltaPct is the relative difference of Sim vs the first row.
	DeltaPct float64
}

// Decoupling acquires an LU instance on each cluster in sites and replays
// every acquired trace on the *target* cluster's platform with the target's
// calibration, returning one row per acquisition site.
func Decoupling(target *ground.Cluster, sites []*ground.Cluster, class npb.Class, procs int, opt Options) ([]DecouplingRow, error) {
	// Calibrate once against the target (prediction always targets it).
	rate, err := targetRate(target, class, opt)
	if err != nil {
		return nil, err
	}
	var rows []DecouplingRow
	for _, site := range sites {
		lu, err := npb.NewLU(class, procs, opt.iters())
		if err != nil {
			return nil, err
		}
		acq := site.InstrConfig(instrument.Minimal, instrument.O3, class)
		counters, err := instrument.Counters(lu, acq)
		if err != nil {
			return nil, err
		}
		meanInstr, err := stats.Mean(counters)
		if err != nil {
			return nil, err
		}
		prov := instrument.Acquired{W: lu, Cfg: acq}
		plat, model, err := target.Platform(procs)
		if err != nil {
			return nil, err
		}
		plat.SetSpeed(rate)
		replayMPI := target.MPI
		replayMPI.MemcpyBandwidth, replayMPI.MemcpyLatency = 0, 0
		res, err := core.Replay(prov, plat, core.Config{
			Backend: core.SMPI, Network: model, MPI: replayMPI,
		})
		if err != nil {
			return nil, err
		}
		row := DecouplingRow{
			AcquiredOn:   site.Name,
			Instructions: meanInstr,
			Sim:          scaleToFull(res.SimulatedTime, class, opt.iters()),
		}
		if len(rows) > 0 {
			row.DeltaPct = stats.RelErr(row.Sim, rows[0].Sim)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func targetRate(target *ground.Cluster, class npb.Class, opt Options) (float64, error) {
	ca, err := calibrate.NewCacheAware(target, []npb.Class{class}, opt.calIters())
	if err != nil {
		return 0, err
	}
	lu, err := npb.NewLU(class, 4, 1)
	if err != nil {
		return 0, err
	}
	return ca.RateFor(lu, class), nil
}

// MaxDecouplingDelta returns the largest |DeltaPct| across rows.
func MaxDecouplingDelta(rows []DecouplingRow) float64 {
	m := 0.0
	for _, r := range rows {
		if d := math.Abs(r.DeltaPct); d > m {
			m = d
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Efficiency: how fast the replay itself runs, per backend and scale.

// EfficiencyRow documents replay cost for one instance and backend.
type EfficiencyRow struct {
	Instance string
	Backend  string
	// Sim is the simulated time, Wall the wall-clock replay duration.
	Sim, Wall float64
	// Actions replayed and throughput.
	Actions          int64
	ActionsPerSecond float64
	// Speedup is simulated seconds per wall second (how much faster than
	// the machine being simulated the simulation runs).
	Speedup float64
}

// Efficiency replays perfect traces of the class across process counts on
// the target cluster's platform, for both backends.
func Efficiency(target *ground.Cluster, class npb.Class, procs []int, opt Options) ([]EfficiencyRow, error) {
	var rows []EfficiencyRow
	for _, p := range procs {
		if p > target.Hosts {
			continue
		}
		for _, backend := range []core.BackendKind{core.SMPI, core.MSG} {
			lu, err := npb.NewLU(class, p, opt.iters())
			if err != nil {
				return nil, err
			}
			plat, model, err := target.Platform(p)
			if err != nil {
				return nil, err
			}
			cfg := core.Config{Backend: backend}
			if backend == core.SMPI {
				cfg.Network = model
				cfg.MPI = target.MPI
			} else {
				cfg.MSG = msgreplay.PrototypeConfig()
			}
			res, err := core.Replay(npb.AsProvider(lu), plat, cfg)
			if err != nil {
				return nil, err
			}
			row := EfficiencyRow{
				Instance:         fmt.Sprintf("%s-%d", class, p),
				Backend:          backend,
				Sim:              res.SimulatedTime,
				Wall:             res.Wall.Seconds(),
				Actions:          res.Actions,
				ActionsPerSecond: res.ActionsPerSecond(),
			}
			if row.Wall > 0 {
				row.Speedup = row.Sim / row.Wall
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
