package experiments

import (
	"fmt"
	"io"
)

// RenderOverhead prints Table 1/2-style rows.
func RenderOverhead(w io.Writer, title string, rows []OverheadRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s | %10s %10s %8s | %10s %10s %8s\n",
		"Instance", "Orig(old)", "Instr(old)", "Ovh(old)", "Orig(new)", "Instr(new)", "Ovh(new)")
	fmt.Fprintf(w, "%s\n", lineOf(78))
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s | %9.2fs %9.2fs %+7.1f%% | %9.2fs %9.2fs %+7.1f%%\n",
			r.Instance, r.OldOrig, r.OldInstr, r.OldOverheadPct,
			r.NewOrig, r.NewInstr, r.NewOverheadPct)
	}
}

// RenderDiscrepancy prints Figure 1/2/4/5-style rows: the per-process
// distribution of the relative counter difference.
func RenderDiscrepancy(w io.Writer, title string, rows []DiscrepancyRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s | %8s %8s %8s %8s %8s | %8s\n",
		"Instance", "min%", "q1%", "med%", "q3%", "max%", "mean%")
	fmt.Fprintf(w, "%s\n", lineOf(72))
	for _, r := range rows {
		d := r.Dist
		fmt.Fprintf(w, "%-8s | %8.2f %8.2f %8.2f %8.2f %8.2f | %8.2f\n",
			r.Instance, d.Min, d.Q1, d.Median, d.Q3, d.Max, d.Mean)
	}
}

// RenderAccuracy prints Figure 3/6/7-style rows.
func RenderAccuracy(w io.Writer, title string, rows []AccuracyRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s | %10s %10s %8s | %10s %12s\n",
		"Instance", "Real", "Simulated", "Error", "ReplayWall", "Actions/s")
	fmt.Fprintf(w, "%s\n", lineOf(70))
	for _, r := range rows {
		aps := 0.0
		if r.ReplayWallSeconds > 0 {
			aps = float64(r.ReplayActions) / r.ReplayWallSeconds
		}
		fmt.Fprintf(w, "%-8s | %9.2fs %9.2fs %+7.1f%% | %9.3fs %12.0f\n",
			r.Instance, r.Real, r.Sim, r.ErrPct, r.ReplayWallSeconds, aps)
	}
}

// RenderAblation prints fix-combination error rows grouped by config.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-20s | %-8s | %8s\n", "Configuration", "Instance", "Error")
	fmt.Fprintf(w, "%s\n", lineOf(44))
	prev := ""
	for _, r := range rows {
		name := r.Config
		if name == prev {
			name = ""
		} else {
			prev = r.Config
		}
		fmt.Fprintf(w, "%-20s | %-8s | %+7.1f%%\n", name, r.Instance, r.ErrPct)
	}
}

// RenderDecoupling prints acquisition-site comparison rows.
func RenderDecoupling(w io.Writer, title string, rows []DecouplingRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s | %14s | %10s | %8s\n", "Acquired on", "Instr/process", "Predicted", "Delta")
	fmt.Fprintf(w, "%s\n", lineOf(54))
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | %14.4g | %9.2fs | %+7.2f%%\n",
			r.AcquiredOn, r.Instructions, r.Sim, r.DeltaPct)
	}
}

// RenderEfficiency prints replay-cost rows.
func RenderEfficiency(w io.Writer, title string, rows []EfficiencyRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s | %-5s | %10s %10s | %10s %12s %9s\n",
		"Instance", "Back", "Sim", "Wall", "Actions", "Actions/s", "Speedup")
	fmt.Fprintf(w, "%s\n", lineOf(76))
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s | %-5s | %9.3fs %9.3fs | %10d %12.0f %8.1fx\n",
			r.Instance, r.Backend, r.Sim, r.Wall, r.Actions, r.ActionsPerSecond, r.Speedup)
	}
}

func lineOf(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
