package experiments

import (
	"fmt"

	"tireplay/internal/calibrate"
	"tireplay/internal/core"
	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/stats"
)

// PipelineConfig decomposes the paper's "old vs new" comparison into its
// three independent fixes, enabling the ablation study the paper itself
// does not report (it only evaluates all fixes combined), plus the feature
// listed as future work in Section 6: modelling the eager-mode memory copy
// in the replay.
type PipelineConfig struct {
	// NewAcquisition selects minimal instrumentation + -O3 (Section 3.1/3.2)
	// instead of fine instrumentation + -O0.
	NewAcquisition bool
	// CacheAwareCalibration selects the Section 3.4 procedure instead of
	// the classic A-4-only one.
	CacheAwareCalibration bool
	// SMPIBackend selects the rewritten backend (Section 3.3) instead of
	// the MSG prototype.
	SMPIBackend bool
	// ModelMemcpy additionally gives the SMPI backend the sender-side eager
	// copy model — the paper's Section 6 future work ("implement the
	// missing feature to model the time taken in sends ... to copy data in
	// memory in the eager mode of MPI").
	ModelMemcpy bool
}

// Name renders a short label for result tables.
func (p PipelineConfig) Name() string {
	switch {
	case !p.NewAcquisition && !p.CacheAwareCalibration && !p.SMPIBackend:
		return "baseline (old)"
	case p.NewAcquisition && p.CacheAwareCalibration && p.SMPIBackend && p.ModelMemcpy:
		return "all fixes + memcpy"
	case p.NewAcquisition && p.CacheAwareCalibration && p.SMPIBackend:
		return "all fixes (new)"
	}
	s := "old"
	if p.NewAcquisition {
		s += "+acq"
	}
	if p.CacheAwareCalibration {
		s += "+cal"
	}
	if p.SMPIBackend {
		s += "+smpi"
	}
	if p.ModelMemcpy {
		s += "+memcpy"
	}
	return s
}

// AccuracyWithConfig runs the accuracy experiment for one instance under an
// arbitrary combination of fixes.
func AccuracyWithConfig(c *ground.Cluster, pcfg PipelineConfig, class npb.Class, procs int, opt Options) (*AccuracyRow, error) {
	mkLU := func() (*npb.LU, error) { return npb.NewLU(class, procs, opt.iters()) }

	// Real execution: the original binary at the acquisition pipeline's
	// optimization level (the paper compares against the build users run).
	lu, err := mkLU()
	if err != nil {
		return nil, err
	}
	realCompile := instrument.O0
	if pcfg.NewAcquisition {
		realCompile = instrument.O3
	}
	real, err := c.Run(lu, c.InstrConfig(instrument.None, realCompile, class))
	if err != nil {
		return nil, err
	}

	// Acquisition.
	lu, err = mkLU()
	if err != nil {
		return nil, err
	}
	var acq instrument.Config
	if pcfg.NewAcquisition {
		acq = c.InstrConfig(instrument.Minimal, instrument.O3, class)
	} else {
		acq = c.InstrConfig(instrument.Fine, instrument.O0, class)
	}
	prov := instrument.Acquired{W: lu, Cfg: acq}

	// Calibration.
	var rate float64
	if pcfg.CacheAwareCalibration {
		ca, err := calibrate.NewCacheAware(c, []npb.Class{class}, opt.calIters())
		if err != nil {
			return nil, err
		}
		rate = ca.RateFor(lu, class)
	} else {
		rate, err = calibrate.ClassicA4(c, opt.calIters())
		if err != nil {
			return nil, err
		}
	}

	// Replay.
	plat, pwModel, err := c.Platform(procs)
	if err != nil {
		return nil, err
	}
	plat.SetSpeed(rate)
	var cfg core.Config
	if pcfg.SMPIBackend {
		replayMPI := c.MPI
		if !pcfg.ModelMemcpy {
			replayMPI.MemcpyBandwidth = 0
			replayMPI.MemcpyLatency = 0
		}
		cfg = core.Config{Backend: core.SMPI, Network: pwModel, MPI: replayMPI}
	} else {
		cfg = core.Config{
			Backend: core.MSG,
			MSG:     msgreplay.PrototypeConfig(),
		}
	}
	res, err := core.Replay(prov, plat, cfg)
	if err != nil {
		return nil, err
	}

	return &AccuracyRow{
		Instance:          fmt.Sprintf("%s-%d", class, procs),
		Class:             class,
		Procs:             procs,
		Real:              scaleToFull(real.Time, class, opt.iters()),
		Sim:               scaleToFull(res.SimulatedTime, class, opt.iters()),
		ErrPct:            stats.RelErr(res.SimulatedTime, real.Time),
		ReplayWallSeconds: res.Wall.Seconds(),
		ReplayActions:     res.Actions,
	}, nil
}

// AblationRow holds the error of one fix combination on one instance.
type AblationRow struct {
	Config   string
	Instance string
	ErrPct   float64
}

// AblationConfigs is the sequence the ablation study evaluates: the
// baseline, each fix in isolation, and all fixes together.
var AblationConfigs = []PipelineConfig{
	{},
	{NewAcquisition: true},
	{CacheAwareCalibration: true},
	{SMPIBackend: true},
	{NewAcquisition: true, CacheAwareCalibration: true, SMPIBackend: true},
}

// Ablation quantifies each fix's individual contribution to the accuracy
// improvement between Figure 3 and Figure 6, on the given instances.
func Ablation(c *ground.Cluster, class npb.Class, procs []int, opt Options) ([]AblationRow, error) {
	var rows []AblationRow
	for _, pcfg := range AblationConfigs {
		for _, p := range procs {
			if p > c.Hosts {
				continue
			}
			row, err := AccuracyWithConfig(c, pcfg, class, p, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Config:   pcfg.Name(),
				Instance: row.Instance,
				ErrPct:   row.ErrPct,
			})
		}
	}
	return rows, nil
}

// FutureWorkMemcpy evaluates the Section 6 extension: the new pipeline with
// and without the eager-copy model in the replay. The paper predicts the
// systematic underestimation of Figures 6/7 "should be compensated by
// taking memory copy into account".
func FutureWorkMemcpy(c *ground.Cluster, classes []npb.Class, procs []int, opt Options) ([]AblationRow, error) {
	var rows []AblationRow
	for _, withCopy := range []bool{false, true} {
		pcfg := PipelineConfig{
			NewAcquisition:        true,
			CacheAwareCalibration: true,
			SMPIBackend:           true,
			ModelMemcpy:           withCopy,
		}
		for _, class := range classes {
			for _, p := range procs {
				if p > c.Hosts {
					continue
				}
				row, err := AccuracyWithConfig(c, pcfg, class, p, opt)
				if err != nil {
					return nil, err
				}
				rows = append(rows, AblationRow{
					Config:   pcfg.Name(),
					Instance: row.Instance,
					ErrPct:   row.ErrPct,
				})
			}
		}
	}
	return rows, nil
}
