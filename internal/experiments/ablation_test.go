package experiments

import (
	"math"
	"strings"
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

func TestPipelineConfigNames(t *testing.T) {
	cases := []struct {
		cfg  PipelineConfig
		want string
	}{
		{PipelineConfig{}, "baseline (old)"},
		{PipelineConfig{NewAcquisition: true}, "old+acq"},
		{PipelineConfig{CacheAwareCalibration: true}, "old+cal"},
		{PipelineConfig{SMPIBackend: true}, "old+smpi"},
		{PipelineConfig{NewAcquisition: true, CacheAwareCalibration: true, SMPIBackend: true}, "all fixes (new)"},
		{PipelineConfig{NewAcquisition: true, CacheAwareCalibration: true, SMPIBackend: true, ModelMemcpy: true}, "all fixes + memcpy"},
	}
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.cfg, got, c.want)
		}
	}
}

func TestAccuracyWithConfigMatchesPipelines(t *testing.T) {
	// The two named pipelines must be expressible via PipelineConfig.
	c := ground.Bordereau()
	viaCfg, err := AccuracyWithConfig(c, PipelineConfig{}, npb.ClassB, 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	viaFig, err := FigureAccuracy(c, OldPipeline, []npb.Class{npb.ClassB}, []int{8}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(viaCfg.ErrPct-viaFig[0].ErrPct) > 0.5 {
		t.Fatalf("config route %.2f%% != pipeline route %.2f%%", viaCfg.ErrPct, viaFig[0].ErrPct)
	}
}

func TestAblationBackendDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	// At 64 processes the backend swap must provide the bulk of the
	// improvement: |error(old+smpi)| << |error(baseline)|.
	c := ground.Bordereau()
	base, err := AccuracyWithConfig(c, PipelineConfig{}, npb.ClassB, 64, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	smpi, err := AccuracyWithConfig(c, PipelineConfig{SMPIBackend: true}, npb.ClassB, 64, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smpi.ErrPct) >= math.Abs(base.ErrPct)/2 {
		t.Fatalf("backend fix alone: %.1f%%, baseline %.1f%% — expected the backend to dominate",
			smpi.ErrPct, base.ErrPct)
	}
}

func TestFutureWorkMemcpyCompensates(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-second campaign test in -short mode")
	}
	// Section 6's prediction: modelling the copy compensates the
	// underestimation — the with-memcpy error must be algebraically larger
	// (less negative) than without.
	rows, err := FutureWorkMemcpy(ground.Graphene(), []npb.Class{npb.ClassB}, []int{64}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	without, with := rows[0].ErrPct, rows[1].ErrPct
	if with <= without {
		t.Fatalf("memcpy model did not raise the prediction: %.2f%% -> %.2f%%", without, with)
	}
}

func TestAblationRunsAllConfigs(t *testing.T) {
	rows, err := Ablation(ground.Bordereau(), npb.ClassB, []int{8}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationConfigs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(AblationConfigs))
	}
}

func TestRenderAblation(t *testing.T) {
	var sb strings.Builder
	RenderAblation(&sb, "T", []AblationRow{
		{Config: "baseline (old)", Instance: "B-8", ErrPct: 7.3},
		{Config: "baseline (old)", Instance: "B-64", ErrPct: 35.2},
	})
	out := sb.String()
	if !strings.Contains(out, "baseline (old)") || !strings.Contains(out, "+35.2%") {
		t.Fatalf("render: %q", out)
	}
	// Repeated config names are collapsed.
	if strings.Count(out, "baseline (old)") != 1 {
		t.Fatalf("config name not collapsed: %q", out)
	}
}
