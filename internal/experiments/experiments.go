// Package experiments reproduces every table and figure of the paper's
// evaluation. Each runner assembles the full tool chain — workload
// generation, emulated acquisition on the ground-truth cluster,
// calibration, trace replay — and returns structured rows; the render
// functions print them in a shape comparable to the paper's tables.
//
// The SSOR loop is steady-state, so runners default to a reduced iteration
// count and scale reported times back to the class itmax; relative
// overheads and errors are iteration-invariant (see DESIGN.md §5.6 and
// EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"tireplay/internal/calibrate"
	"tireplay/internal/core"
	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/stats"
)

// Options tunes experiment execution cost.
type Options struct {
	// Iterations is the SSOR iteration count per run; 0 selects the
	// default reduced count (25). Reported times are scaled to the class
	// itmax.
	Iterations int
	// CalibrationIterations for the class-4 calibration runs (default 5).
	CalibrationIterations int
}

func (o Options) iters() int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	return 25
}

func (o Options) calIters() int {
	if o.CalibrationIterations > 0 {
		return o.CalibrationIterations
	}
	return 5
}

// scaleToFull converts a reduced-run time to the full-instance equivalent.
func scaleToFull(t float64, class npb.Class, iters int) float64 {
	full, err := npb.NewLU(class, 4, 0) // class default itmax
	if err != nil {
		return t
	}
	return t * float64(full.ItMax()) / float64(iters)
}

// BordereauProcs and GrapheneProcs are the process counts of the paper's
// study on each cluster.
var (
	BordereauProcs = []int{8, 16, 32, 64}
	GrapheneProcs  = []int{8, 16, 32, 64, 128}
	StudyClasses   = []npb.Class{npb.ClassB, npb.ClassC}
)

// ---------------------------------------------------------------------------
// Tables 1 and 2: instrumentation time overhead, old vs new acquisition.

// OverheadRow is one instance line of Table 1/2.
type OverheadRow struct {
	Instance string
	// Old acquisition: -O0 build, fine-grain TAU instrumentation.
	OldOrig, OldInstr, OldOverheadPct float64
	// New acquisition: -O3 build, minimal instrumentation.
	NewOrig, NewInstr, NewOverheadPct float64
}

// TableOverhead reproduces Table 1 (bordereau) or Table 2 (graphene):
// original vs instrumented execution times under both acquisition setups.
func TableOverhead(c *ground.Cluster, classes []npb.Class, procs []int, opt Options) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, class := range classes {
		for _, p := range procs {
			if p > c.Hosts {
				continue
			}
			row := OverheadRow{Instance: fmt.Sprintf("%s-%d", class, p)}
			runs := []struct {
				dst  *float64
				mode instrument.Mode
				comp instrument.Compile
			}{
				{&row.OldOrig, instrument.None, instrument.O0},
				{&row.OldInstr, instrument.Fine, instrument.O0},
				{&row.NewOrig, instrument.None, instrument.O3},
				{&row.NewInstr, instrument.Minimal, instrument.O3},
			}
			for _, r := range runs {
				lu, err := npb.NewLU(class, p, opt.iters())
				if err != nil {
					return nil, err
				}
				res, err := c.Run(lu, c.InstrConfig(r.mode, r.comp, class))
				if err != nil {
					return nil, err
				}
				*r.dst = scaleToFull(res.Time, class, opt.iters())
			}
			row.OldOverheadPct = stats.RelErr(row.OldInstr, row.OldOrig)
			row.NewOverheadPct = stats.RelErr(row.NewInstr, row.NewOrig)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figures 1, 2, 4, 5: instruction counter discrepancy distributions.

// DiscrepancyKind selects which comparison a figure shows.
type DiscrepancyKind int

const (
	// FineVsCoarse at -O0: Figures 1 (bordereau) and 2 (graphene).
	FineVsCoarse DiscrepancyKind = iota
	// MinimalVsCoarse at -O3: Figures 4 and 5.
	MinimalVsCoarse
)

func (k DiscrepancyKind) String() string {
	if k == MinimalVsCoarse {
		return "minimal vs coarse (-O3)"
	}
	return "fine vs coarse (-O0)"
}

// DiscrepancyRow is one instance of a counter-discrepancy figure: the
// distribution across processes of the relative difference (in %) between
// the instrumented and reference counter readings.
type DiscrepancyRow struct {
	Instance string
	Dist     stats.Summary
}

// FigureDiscrepancy reproduces Figures 1/2/4/5.
func FigureDiscrepancy(c *ground.Cluster, kind DiscrepancyKind, classes []npb.Class, procs []int, opt Options) ([]DiscrepancyRow, error) {
	var rows []DiscrepancyRow
	for _, class := range classes {
		for _, p := range procs {
			if p > c.Hosts {
				continue
			}
			lu, err := npb.NewLU(class, p, opt.iters())
			if err != nil {
				return nil, err
			}
			var instCfg, refCfg instrument.Config
			switch kind {
			case FineVsCoarse:
				instCfg = c.InstrConfig(instrument.Fine, instrument.O0, class)
				refCfg = c.InstrConfig(instrument.Coarse, instrument.O0, class)
			case MinimalVsCoarse:
				instCfg = c.InstrConfig(instrument.Minimal, instrument.O3, class)
				refCfg = c.InstrConfig(instrument.Coarse, instrument.O3, class)
			}
			inst, err := instrument.Counters(lu, instCfg)
			if err != nil {
				return nil, err
			}
			ref, err := instrument.Counters(lu, refCfg)
			if err != nil {
				return nil, err
			}
			diffs := make([]float64, len(inst))
			for r := range inst {
				diffs[r] = stats.RelErr(inst[r], ref[r])
			}
			dist, err := stats.Summarize(diffs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DiscrepancyRow{
				Instance: fmt.Sprintf("%s-%d", class, p),
				Dist:     dist,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figures 3, 6, 7: accuracy of the simulated execution.

// Pipeline selects the whole tool-chain generation being evaluated.
type Pipeline int

const (
	// OldPipeline is the first implementation: fine instrumentation, -O0,
	// A-4-only calibration, MSG replay backend (Figure 3).
	OldPipeline Pipeline = iota
	// NewPipeline applies every fix of Section 3: minimal instrumentation,
	// -O3, cache-aware calibration, SMPI replay backend (Figures 6 and 7).
	NewPipeline
)

func (p Pipeline) String() string {
	if p == NewPipeline {
		return "new (minimal,-O3,cache-aware,SMPI)"
	}
	return "old (fine,-O0,A-4,MSG)"
}

// AccuracyRow is one instance of an accuracy figure.
type AccuracyRow struct {
	Instance string
	Class    npb.Class
	Procs    int
	// Real is the emulated real execution time, Sim the replayed
	// prediction (both scaled to the full instance).
	Real, Sim float64
	// ErrPct is the relative error of Sim w.r.t. Real, in percent.
	ErrPct float64
	// ReplayWallSeconds and ReplayActions document the efficiency axis.
	ReplayWallSeconds float64
	ReplayActions     int64
}

// FigureAccuracy reproduces Figure 3 (OldPipeline on bordereau) and
// Figures 6/7 (NewPipeline on bordereau/graphene).
func FigureAccuracy(c *ground.Cluster, pipe Pipeline, classes []npb.Class, procs []int, opt Options) ([]AccuracyRow, error) {
	// Calibration is done once per cluster and reused, as in practice.
	var classicRate float64
	var cacheAware *calibrate.CacheAware
	var err error
	switch pipe {
	case OldPipeline:
		classicRate, err = calibrate.ClassicA4(c, opt.calIters())
	case NewPipeline:
		cacheAware, err = calibrate.NewCacheAware(c, classes, opt.calIters())
	default:
		return nil, fmt.Errorf("experiments: unknown pipeline %d", int(pipe))
	}
	if err != nil {
		return nil, err
	}

	var rows []AccuracyRow
	for _, class := range classes {
		for _, p := range procs {
			if p > c.Hosts {
				continue
			}
			row, err := accuracyOne(c, pipe, class, p, classicRate, cacheAware, opt)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func accuracyOne(c *ground.Cluster, pipe Pipeline, class npb.Class, p int,
	classicRate float64, cacheAware *calibrate.CacheAware, opt Options) (*AccuracyRow, error) {

	mkLU := func() (*npb.LU, error) { return npb.NewLU(class, p, opt.iters()) }

	// 1. Real execution of the original application.
	lu, err := mkLU()
	if err != nil {
		return nil, err
	}
	realCompile := instrument.O0
	if pipe == NewPipeline {
		realCompile = instrument.O3
	}
	real, err := c.Run(lu, c.InstrConfig(instrument.None, realCompile, class))
	if err != nil {
		return nil, err
	}

	// 2. Acquire the trace with the pipeline's instrumentation settings.
	lu, err = mkLU()
	if err != nil {
		return nil, err
	}
	var acq instrument.Config
	if pipe == OldPipeline {
		acq = c.InstrConfig(instrument.Fine, instrument.O0, class)
	} else {
		acq = c.InstrConfig(instrument.Minimal, instrument.O3, class)
	}
	prov := instrument.Acquired{W: lu, Cfg: acq}

	// 3. Build the target platform and install the calibrated rate.
	plat, pwModel, err := c.Platform(p)
	if err != nil {
		return nil, err
	}
	var cfg core.Config
	if pipe == OldPipeline {
		plat.SetSpeed(classicRate)
		cfg = core.Config{
			Backend: core.MSG,
			// The MSG prototype's crude hard-coded network reference.
			MSG: msgreplay.PrototypeConfig(),
		}
	} else {
		plat.SetSpeed(cacheAware.RateFor(lu, class))
		replayMPI := c.MPI
		replayMPI.MemcpyBandwidth = 0 // SMPI does not model the eager copy yet (§4.3)
		replayMPI.MemcpyLatency = 0
		cfg = core.Config{
			Backend: core.SMPI,
			Network: pwModel,
			MPI:     replayMPI,
		}
	}

	// 4. Replay.
	res, err := core.Replay(prov, plat, cfg)
	if err != nil {
		return nil, err
	}

	return &AccuracyRow{
		Instance:          fmt.Sprintf("%s-%d", class, p),
		Class:             class,
		Procs:             p,
		Real:              scaleToFull(real.Time, class, opt.iters()),
		Sim:               scaleToFull(res.SimulatedTime, class, opt.iters()),
		ErrPct:            stats.RelErr(res.SimulatedTime, real.Time),
		ReplayWallSeconds: res.Wall.Seconds(),
		ReplayActions:     res.Actions,
	}, nil
}
