package experiments

import (
	"strings"
	"testing"

	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

// TestDecouplingInvariance locks the paper's central claim: predictions are
// independent of the machine the trace was acquired on.
func TestDecouplingInvariance(t *testing.T) {
	rows, err := Decoupling(ground.Graphene(),
		[]*ground.Cluster{ground.Graphene(), ground.Bordereau()},
		npb.ClassB, 8, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if d := MaxDecouplingDelta(rows); d > 0.5 {
		t.Fatalf("prediction depends on the acquisition machine: max delta %.3f%%", d)
	}
	for _, r := range rows {
		if r.Sim <= 0 || r.Instructions <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestEfficiencyRows(t *testing.T) {
	rows, err := Efficiency(ground.Graphene(), npb.ClassB, []int{8, 16}, fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 procs x 2 backends
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Actions == 0 || r.Wall <= 0 || r.ActionsPerSecond <= 0 {
			t.Fatalf("bad efficiency row %+v", r)
		}
	}
	// More ranks -> more actions.
	if rows[2].Actions <= rows[0].Actions {
		t.Fatalf("B-16 actions (%d) not above B-8 (%d)", rows[2].Actions, rows[0].Actions)
	}
}

func TestRenderDecouplingAndEfficiency(t *testing.T) {
	var sb strings.Builder
	RenderDecoupling(&sb, "T", []DecouplingRow{{AcquiredOn: "graphene", Instructions: 1e9, Sim: 14.6}})
	if !strings.Contains(sb.String(), "graphene") {
		t.Fatalf("decoupling render: %q", sb.String())
	}
	sb.Reset()
	RenderEfficiency(&sb, "T", []EfficiencyRow{{Instance: "B-8", Backend: "smpi", Sim: 2, Wall: 0.1, Actions: 58016, ActionsPerSecond: 5e5, Speedup: 19}})
	if !strings.Contains(sb.String(), "B-8") || !strings.Contains(sb.String(), "smpi") {
		t.Fatalf("efficiency render: %q", sb.String())
	}
}
