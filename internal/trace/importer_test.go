package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeDUMPISample lays out a two-rank dumpi2ascii dump set covering the
// importer's whole mapping: p2p calls with datatype sizes, vector
// collectives with counts arrays, wait-set drains, CPU-time compute gaps,
// and one PAPI_TOT_INS-delimited gap. The two ranks are cross-rank
// consistent, so the result also validates and replays.
func writeDUMPISample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	rank0 := `
MPI_Init entering at walltime 10.0, cputime 0 seconds in thread 0.
MPI_Init returning at walltime 10.5, cputime 1 seconds in thread 0.
MPI_Send entering at walltime 11.0, cputime 3 seconds in thread 0.
int count=256
datatype=11 (MPI_DOUBLE)
int dest=1
int tag=0
MPI_Comm comm=2 (MPI_COMM_WORLD)
MPI_Send returning at walltime 11.1, cputime 3 seconds in thread 0.
PAPI_TOT_INS = 5000000
MPI_Alltoallv entering at walltime 12.0, cputime 4 seconds in thread 0.
PAPI_TOT_INS = 8000000
int sendcounts[2]={16, 32}
int senddispls[2]={0, 16}
sendtype=11 (MPI_DOUBLE)
int recvcounts[2]={16, 32}
MPI_Alltoallv returning at walltime 12.5, cputime 4 seconds in thread 0.
MPI_Isend entering at walltime 13.0, cputime 4 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int dest=1
MPI_Isend returning at walltime 13.0, cputime 4 seconds in thread 0.
MPI_Irecv entering at walltime 13.1, cputime 4 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int source=1
MPI_Irecv returning at walltime 13.1, cputime 4 seconds in thread 0.
MPI_Waitany entering at walltime 13.2, cputime 4 seconds in thread 0.
MPI_Waitany returning at walltime 13.3, cputime 4 seconds in thread 0.
MPI_Wait entering at walltime 13.4, cputime 4 seconds in thread 0.
MPI_Wait returning at walltime 13.5, cputime 4 seconds in thread 0.
MPI_Allgatherv entering at walltime 14.0, cputime 5 seconds in thread 0.
int recvcounts[2]={8, 24}
recvtype=11 (MPI_DOUBLE)
MPI_Allgatherv returning at walltime 14.2, cputime 5 seconds in thread 0.
MPI_Finalize entering at walltime 15.0, cputime 6 seconds in thread 0.
MPI_Finalize returning at walltime 15.1, cputime 6 seconds in thread 0.
`
	rank1 := `
MPI_Init entering at walltime 10.0, cputime 0 seconds in thread 0.
MPI_Init returning at walltime 10.5, cputime 1 seconds in thread 0.
MPI_Recv entering at walltime 11.0, cputime 2 seconds in thread 0.
int count=256
datatype=11 (MPI_DOUBLE)
int source=0
MPI_Recv returning at walltime 11.2, cputime 2 seconds in thread 0.
MPI_Alltoallv entering at walltime 12.0, cputime 3 seconds in thread 0.
int sendcounts[2]={16, 32}
sendtype=11 (MPI_DOUBLE)
MPI_Alltoallv returning at walltime 12.5, cputime 3 seconds in thread 0.
MPI_Isend entering at walltime 13.0, cputime 3 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int dest=0
MPI_Isend returning at walltime 13.0, cputime 3 seconds in thread 0.
MPI_Irecv entering at walltime 13.1, cputime 3 seconds in thread 0.
int count=64
datatype=2 (MPI_CHAR)
int source=0
MPI_Irecv returning at walltime 13.1, cputime 3 seconds in thread 0.
MPI_Waitsome entering at walltime 13.2, cputime 3 seconds in thread 0.
int incount=2
int outcount=2
MPI_Waitsome returning at walltime 13.3, cputime 3 seconds in thread 0.
MPI_Allgatherv entering at walltime 14.0, cputime 4 seconds in thread 0.
int recvcounts[2]={8, 24}
recvtype=11 (MPI_DOUBLE)
MPI_Allgatherv returning at walltime 14.2, cputime 4 seconds in thread 0.
MPI_Finalize entering at walltime 15.0, cputime 5 seconds in thread 0.
MPI_Finalize returning at walltime 15.1, cputime 5 seconds in thread 0.
`
	for i, body := range []string{rank0, rank1} {
		name := filepath.Join(dir, "dumpi-2026.08.08-000"+string(rune('0'+i))+".txt")
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "dumpi-2026.08.08.meta"),
		[]byte("hostname=node0\nnumprocs=2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDUMPIImport(t *testing.T) {
	dir := writeDUMPISample(t)
	p, err := Import("dumpi", dir, ImportOptions{InstructionRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	got := materializeProvider(t, p)
	want := [][]Action{
		{
			{Rank: 0, Kind: Init, Peer: -1},
			{Rank: 0, Kind: Compute, Instructions: 2e6, Peer: -1}, // cputime gap 2 s at 1e6/s
			{Rank: 0, Kind: Send, Bytes: 2048, Peer: 1},           // 256 doubles
			{Rank: 0, Kind: Compute, Instructions: 3e6, Peer: -1}, // PAPI_TOT_INS delta, not the 1 s gap
			{Rank: 0, Kind: AllToAllV, Peer: -1, Volumes: []float64{128, 256}},
			{Rank: 0, Kind: ISend, Bytes: 64, Peer: 1}, // 64 chars
			{Rank: 0, Kind: IRecv, Bytes: 64, Peer: 1},
			{Rank: 0, Kind: WaitAny, Peer: -1},
			{Rank: 0, Kind: Wait, Peer: -1},
			{Rank: 0, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 0, Kind: AllGatherV, Peer: -1, Volumes: []float64{64, 192}},
			{Rank: 0, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 0, Kind: Finalize, Peer: -1},
		},
		{
			{Rank: 1, Kind: Init, Peer: -1},
			{Rank: 1, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 1, Kind: Recv, Bytes: 2048, Peer: 0},
			{Rank: 1, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 1, Kind: AllToAllV, Peer: -1, Volumes: []float64{128, 256}},
			{Rank: 1, Kind: ISend, Bytes: 64, Peer: 0},
			{Rank: 1, Kind: IRecv, Bytes: 64, Peer: 0},
			{Rank: 1, Kind: WaitSome, Peer: -1, Count: 2},
			{Rank: 1, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 1, Kind: AllGatherV, Peer: -1, Volumes: []float64{64, 192}},
			{Rank: 1, Kind: Compute, Instructions: 1e6, Peer: -1},
			{Rank: 1, Kind: Finalize, Peer: -1},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dumpi import mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// The folded streams are a well-formed trace: cross-rank validation and
	// the TIB compiler both accept them.
	if err := Validate(NewMemProvider(got)); err != nil {
		t.Fatalf("imported trace does not validate: %v", err)
	}
}

func TestDUMPIImportErrors(t *testing.T) {
	t.Run("missing rank", func(t *testing.T) {
		dir := t.TempDir()
		body := "MPI_Init entering at walltime 1.0, cputime 0 seconds in thread 0.\n" +
			"MPI_Init returning at walltime 1.1, cputime 0 seconds in thread 0.\n"
		if err := os.WriteFile(filepath.Join(dir, "d-0.txt"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "d-2.txt"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Import("dumpi", dir, ImportOptions{}); err == nil {
			t.Fatal("accepted a dump set with a missing rank")
		}
	})

	t.Run("meta mismatch", func(t *testing.T) {
		dir := writeDUMPISample(t)
		if err := os.WriteFile(filepath.Join(dir, "dumpi-2026.08.08.meta"),
			[]byte("numprocs=4\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Import("dumpi", dir, ImportOptions{}); err == nil {
			t.Fatal("accepted a dump set contradicting its .meta rank count")
		}
	})

	t.Run("truncated block", func(t *testing.T) {
		dir := t.TempDir()
		body := "MPI_Send entering at walltime 1.0, cputime 0 seconds in thread 0.\nint dest=1\n"
		if err := os.WriteFile(filepath.Join(dir, "d-0.txt"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := Import("dumpi", dir, ImportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Rank(0)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := st.Next()
			if err != nil {
				if !strings.Contains(err.Error(), "EOF inside MPI_Send") {
					t.Fatalf("unexpected error text: %v", err)
				}
				return
			}
			if !ok {
				t.Fatal("truncated call block decoded without error")
			}
		}
	})

	t.Run("bad counts arity", func(t *testing.T) {
		dir := writeDUMPISample(t)
		// A 3-entry sendcounts in a 2-rank world must fail, naming the line.
		body := `
MPI_Alltoallv entering at walltime 1.0, cputime 0 seconds in thread 0.
int sendcounts[3]={1, 2, 3}
MPI_Alltoallv returning at walltime 1.5, cputime 0 seconds in thread 0.
`
		if err := os.WriteFile(filepath.Join(dir, "dumpi-2026.08.08-0000.txt"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := Import("dumpi", dir, ImportOptions{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Rank(0)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = st.Next()
		if err == nil || !strings.Contains(err.Error(), "2 ranks") {
			t.Fatalf("want counts-arity error, got %v", err)
		}
	})
}

// writeTAUSample lays out a two-rank TAU profile folder.
func writeTAUSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	profile := `5 templated_functions_MULTI_TIME
# Name Calls Subrs Excl Incl ProfileCalls
".TAU application" 1 10 2000000 9000000 0 GROUP="TAU_DEFAULT"
"MPI_Allreduce()" 5 0 300000 300000 0 GROUP="MPI"
"MPI_Barrier()" 2 0 100000 100000 0 GROUP="MPI"
"MPI_Send()" 4 0 50000 50000 0 GROUP="MPI"
"MPI_Recv()" 4 0 60000 60000 0 GROUP="MPI"
0 aggregates
2 userevents
# eventname numevents max min mean sumsqr
"Message size for all-reduce" 5 40 40 40 0
"Message size for send" 4 100 100 100 0
`
	for r := 0; r < 2; r++ {
		name := filepath.Join(dir, "profile."+string(rune('0'+r))+".0.0")
		if err := os.WriteFile(name, []byte(profile), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestTAUImport(t *testing.T) {
	dir := writeTAUSample(t)
	p, err := Import("tau", dir, ImportOptions{InstructionRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks() != 2 {
		t.Fatalf("NumRanks = %d, want 2", p.NumRanks())
	}
	got := materializeProvider(t, p)
	// Per rank: init, the non-MPI exclusive time as compute (2 CPU seconds
	// at 1e6), the unpaired p2p volume folded into one symmetric alltoall
	// (4 sends x 100 B spread over world-1 = 400 B), the profiled
	// collectives at their call counts, finalize.
	want := []Action{
		{Rank: 0, Kind: Init, Peer: -1},
		{Rank: 0, Kind: Compute, Instructions: 2e6, Peer: -1},
		{Rank: 0, Kind: AllToAll, Bytes: 400, Peer: -1},
		{Rank: 0, Kind: Barrier, Peer: -1},
		{Rank: 0, Kind: Barrier, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: Finalize, Peer: -1},
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("tau import mismatch:\ngot  %+v\nwant %+v", got[0], want)
	}
	// Identical profiles on every rank: the synthesized trace is symmetric
	// and passes cross-rank validation.
	if err := Validate(NewMemProvider(got)); err != nil {
		t.Fatalf("synthesized trace does not validate: %v", err)
	}
}

func TestImportSniffing(t *testing.T) {
	dumpiDir := writeDUMPISample(t)
	tauDir := writeTAUSample(t)

	if name, ok := SniffImport(dumpiDir); !ok || name != "dumpi" {
		t.Fatalf("SniffImport(dumpi dir) = %q, %v", name, ok)
	}
	if name, ok := SniffImport(tauDir); !ok || name != "tau" {
		t.Fatalf("SniffImport(tau dir) = %q, %v", name, ok)
	}
	if _, ok := SniffImport(t.TempDir()); ok {
		t.Fatal("SniffImport accepted an empty directory")
	}

	// "auto" resolves through the same sniffing.
	p, err := Import("auto", tauDir, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks() != 2 {
		t.Fatalf("auto-sniffed tau import has %d ranks, want 2", p.NumRanks())
	}

	if _, err := Import("hpctoolkit", dumpiDir, ImportOptions{}); err == nil {
		t.Fatal("unknown format name accepted")
	}
	if _, err := Import("auto", t.TempDir(), ImportOptions{}); err == nil {
		t.Fatal("unsniffable path accepted")
	}
}

// ImportCompile is the -import -compile path: a foreign dump lands as a
// version-2 .tib whose decoded actions match the direct import.
func TestImportCompileToTIB(t *testing.T) {
	dir := writeDUMPISample(t)
	tibPath := filepath.Join(t.TempDir(), "imported.tib")
	ranks, err := ImportCompile("dumpi", dir, tibPath, ImportOptions{InstructionRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if ranks != 2 {
		t.Fatalf("ImportCompile ranks = %d, want 2", ranks)
	}

	direct, err := Import("dumpi", dir, ImportOptions{InstructionRate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	want := materializeProvider(t, direct)

	p, err := OpenTIB(tibPath)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Version() != 2 {
		t.Fatalf("compiled import Version = %d, want 2", p.Version())
	}
	if got := materializeProvider(t, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("compiled import decodes differently:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestImporterRegistry(t *testing.T) {
	names := Importers()
	for _, want := range []string{"dumpi", "tau"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in importer %q not registered (have %v)", want, names)
		}
	}
	if _, ok := LookupImporter("dumpi"); !ok {
		t.Fatal("LookupImporter(dumpi) failed")
	}
}

func TestSyntheticMixes(t *testing.T) {
	for _, mix := range SyntheticMixes() {
		perRank, err := SyntheticMix(mix, 4, 3, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(perRank) != 4 {
			t.Fatalf("%s: %d ranks, want 4", mix, len(perRank))
		}
		if err := Validate(NewMemProvider(perRank)); err != nil {
			t.Fatalf("%s mix does not validate: %v", mix, err)
		}
		again, err := SyntheticMix(mix, 4, 3, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(perRank, again) {
			t.Fatalf("%s mix is not deterministic", mix)
		}
	}
	if _, err := SyntheticMix("bogus", 4, 3, 1024); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, err := SyntheticMix("waitany", 1, 3, 1024); err == nil {
		t.Fatal("single-rank mix accepted")
	}
}
