package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace folding: iterative applications produce traces whose bulk is one
// block repeated once per iteration (LU's SSOR steps emit ~1000 identical
// actions 250 times). Folding stores each maximal consecutively-repeated
// block once together with its repetition count, shrinking trace files by
// the iteration count while remaining a plain text format:
//
//	@folded v1
//	p0 compute 956140
//	@loop 248 1030
//	p0 recv p1 2040
//	...1029 more body lines...
//
// A `@loop N L` directive says: the next L action lines repeat N times.
// Loops do not nest. Expansion is streaming — the replayer never
// materializes the unfolded trace.

// foldedHeader is the first line of a folded trace file.
const foldedHeader = "@folded v1"

// foldMinSavings is the minimum number of lines a loop must save to be
// worth the directive.
const foldMinSavings = 8

// foldMaxPeriod bounds the repeated-block length the folder searches for.
const foldMaxPeriod = 8192

// Fold compresses actions by detecting maximal consecutively repeated
// blocks. The result expands to exactly the input sequence (a property the
// tests enforce); folding is lossless.
func Fold(actions []Action) FoldedTrace {
	var blocks []FoldBlock
	var literal []Action
	flush := func() {
		if len(literal) > 0 {
			blocks = append(blocks, FoldBlock{Count: 1, Body: literal})
			literal = nil
		}
	}
	n := len(actions)
	for i := 0; i < n; {
		bestL, bestK := 0, 0
		// Candidate periods: distances to the next occurrences of
		// actions[i]. The first repetition of an iteration block starts
		// with the same action, so this finds application loop periods
		// without quadratic search.
		limit := foldMaxPeriod
		if i+limit > n {
			limit = n - i
		}
		for L := 1; L <= limit/2; L++ {
			if !actions[i+L].Equal(actions[i]) {
				continue
			}
			// Verify how many times the block [i, i+L) repeats.
			k := 1
			for i+(k+1)*L <= n && equalBlocks(actions[i:i+L], actions[i+k*L:i+(k+1)*L]) {
				k++
			}
			if k >= 2 && (k-1)*L >= foldMinSavings && (k-1)*L > (bestK-1)*bestL {
				bestL, bestK = L, k
			}
			// The first found period with a valid fold is almost always
			// the application loop; keep scanning only while no fold
			// qualifies, to stay near-linear.
			if bestK >= 2 {
				break
			}
		}
		if bestK >= 2 {
			flush()
			body := make([]Action, bestL)
			copy(body, actions[i:i+bestL])
			blocks = append(blocks, FoldBlock{Count: bestK, Body: body})
			i += bestL * bestK
			continue
		}
		literal = append(literal, actions[i])
		i++
	}
	flush()
	return FoldedTrace{Blocks: blocks}
}

func equalBlocks(a, b []Action) bool {
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// FoldBlock is Count consecutive repetitions of Body.
type FoldBlock struct {
	Count int
	Body  []Action
}

// FoldedTrace is a losslessly folded action sequence.
type FoldedTrace struct {
	Blocks []FoldBlock
}

// Len returns the expanded action count.
func (f FoldedTrace) Len() int {
	n := 0
	for _, b := range f.Blocks {
		n += b.Count * len(b.Body)
	}
	return n
}

// Lines returns the folded line count (directives + body lines).
func (f FoldedTrace) Lines() int {
	n := 1 // header
	for _, b := range f.Blocks {
		if b.Count > 1 {
			n++
		}
		n += len(b.Body)
	}
	return n
}

// Expand materializes the original sequence.
func (f FoldedTrace) Expand() []Action {
	out := make([]Action, 0, f.Len())
	for _, b := range f.Blocks {
		for k := 0; k < b.Count; k++ {
			out = append(out, b.Body...)
		}
	}
	return out
}

// WriteFolded folds actions and writes the folded text form.
func WriteFolded(w io.Writer, actions []Action) error {
	f := Fold(actions)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, foldedHeader); err != nil {
		return err
	}
	for _, b := range f.Blocks {
		if b.Count > 1 {
			if _, err := fmt.Fprintf(bw, "@loop %d %d\n", b.Count, len(b.Body)); err != nil {
				return err
			}
		}
		for _, a := range b.Body {
			if err := a.Validate(); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(bw, a.String()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// expandingReader streams a folded trace, expanding loops on the fly. It
// also accepts plain traces (no header), making it a drop-in reader.
type expandingReader struct {
	rd     *Reader
	filter int // < 0 keeps all ranks
	world  int // > 0 enables communicator-sized validation
	// current loop state.
	body      []Action
	remaining int // repetitions left after the buffered one
	pos       int
}

// NewExpandingReader reads a trace that may be folded (detected via the
// @folded header) or plain. filter < 0 keeps all ranks.
func NewExpandingReader(r io.Reader, filter int) Stream {
	return NewExpandingWorldReader(r, filter, 0)
}

// NewExpandingWorldReader is NewExpandingReader with communicator-sized
// validation: world > 0 rejects out-of-range peers, roots, and volume-vector
// lengths at read time, with the offending line number.
func NewExpandingWorldReader(r io.Reader, filter, world int) Stream {
	br := bufio.NewReaderSize(r, 64*1024)
	head, _ := br.Peek(len(foldedHeader))
	if string(head) != foldedHeader {
		rd := NewReader(br)
		rd.filter = filter
		rd.world = world
		return rd
	}
	// Consume the header line.
	if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
		return &errStream{err: err}
	}
	return &expandingReader{rd: NewReader(br), filter: filter, world: world}
}

type errStream struct{ err error }

func (s *errStream) Next() (Action, bool, error) { return Action{}, false, s.err }

// Next implements Stream.
func (e *expandingReader) Next() (Action, bool, error) {
	for {
		a, ok, err := e.next()
		if err != nil || !ok {
			return a, ok, err
		}
		if e.filter >= 0 && a.Rank != e.filter {
			continue
		}
		if e.world > 0 {
			if err := a.ValidateIn(e.world); err != nil {
				return Action{}, false, fmt.Errorf("line %d: %w", e.rd.line, err)
			}
		}
		return a, true, nil
	}
}

func (e *expandingReader) next() (Action, bool, error) {
	// Replaying a buffered loop body.
	if e.body != nil {
		if e.pos < len(e.body) {
			a := e.body[e.pos]
			e.pos++
			return a, true, nil
		}
		if e.remaining > 0 {
			e.remaining--
			e.pos = 1
			return e.body[0], true, nil
		}
		e.body = nil
		e.pos = 0
	}
	// Read the underlying stream, intercepting directives.
	line, readErr := e.rd.readRawLine()
	if readErr != nil {
		if readErr == io.EOF {
			return Action{}, false, nil
		}
		return Action{}, false, readErr
	}
	trimmed := strings.TrimSpace(line)
	if strings.HasPrefix(trimmed, "@loop") {
		fields := strings.Fields(trimmed)
		if len(fields) != 3 {
			return Action{}, false, fmt.Errorf("trace: malformed loop directive %q", trimmed)
		}
		count, err1 := strconv.Atoi(fields[1])
		length, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || count < 1 || length < 1 {
			return Action{}, false, fmt.Errorf("trace: bad loop directive %q", trimmed)
		}
		body := make([]Action, 0, length)
		for len(body) < length {
			bl, err := e.rd.readRawLine()
			if err != nil {
				return Action{}, false, fmt.Errorf("trace: truncated loop body (%d/%d lines): %w", len(body), length, err)
			}
			a, ok, err := ParseLine(bl)
			if err != nil {
				return Action{}, false, err
			}
			if !ok {
				continue // comments allowed inside bodies
			}
			body = append(body, a)
		}
		e.body = body
		e.remaining = count - 1
		e.pos = 1
		return body[0], true, nil
	}
	a, ok, err := ParseLine(trimmed)
	if err != nil {
		return Action{}, false, err
	}
	if !ok {
		return e.next() // skip blanks/comments
	}
	return a, true, nil
}
