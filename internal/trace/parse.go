package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// parseRank accepts "p12" or "12".
func parseRank(tok string) (int, error) {
	s := strings.TrimPrefix(tok, "p")
	r, err := strconv.Atoi(s)
	if err != nil || r < 0 {
		return 0, fmt.Errorf("trace: bad rank token %q", tok)
	}
	return r, nil
}

func parseVolume(tok string) (float64, error) {
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("trace: bad volume token %q", tok)
	}
	return v, nil
}

// ParseLine parses one trace line. Blank lines and lines starting with '#'
// yield ok=false with no error.
func ParseLine(line string) (a Action, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Action{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Action{}, false, fmt.Errorf("trace: malformed line %q", line)
	}
	rank, err := parseRank(fields[0])
	if err != nil {
		return Action{}, false, err
	}
	kind, known := kindByName[strings.ToLower(fields[1])]
	if !known {
		return Action{}, false, fmt.Errorf("trace: unknown action %q in line %q", fields[1], line)
	}
	a = Action{Rank: rank, Kind: kind, Peer: -1}
	args := fields[2:]
	switch kind {
	case Init, Finalize, Wait, WaitAll, WaitAny, Barrier:
		// no arguments

	case Compute:
		if len(args) != 1 {
			return Action{}, false, fmt.Errorf("trace: compute needs one volume in %q", line)
		}
		if a.Instructions, err = parseVolume(args[0]); err != nil {
			return Action{}, false, err
		}

	case Send, ISend:
		if len(args) != 2 {
			return Action{}, false, fmt.Errorf("trace: %s needs destination and size in %q", kind, line)
		}
		if a.Peer, err = parseRank(args[0]); err != nil {
			return Action{}, false, err
		}
		if a.Bytes, err = parseVolume(args[1]); err != nil {
			return Action{}, false, err
		}

	case Recv, IRecv:
		// v1: "recv p0"; v2: "recv p0 1240".
		if len(args) != 1 && len(args) != 2 {
			return Action{}, false, fmt.Errorf("trace: %s needs a source (and optional size) in %q", kind, line)
		}
		if a.Peer, err = parseRank(args[0]); err != nil {
			return Action{}, false, err
		}
		a.Bytes = -1
		if len(args) == 2 {
			if a.Bytes, err = parseVolume(args[1]); err != nil {
				return Action{}, false, err
			}
		}

	case Bcast, Reduce, Gather:
		if len(args) != 1 && len(args) != 2 {
			return Action{}, false, fmt.Errorf("trace: %s needs a size (and optional root) in %q", kind, line)
		}
		if a.Bytes, err = parseVolume(args[0]); err != nil {
			return Action{}, false, err
		}
		if len(args) == 2 {
			root, err := strconv.Atoi(args[1])
			if err != nil || root < 0 {
				return Action{}, false, fmt.Errorf("trace: bad root %q in %q", args[1], line)
			}
			a.Root = root
		}

	case AllReduce, AllToAll, AllGather:
		if len(args) != 1 {
			return Action{}, false, fmt.Errorf("trace: %s needs a size in %q", kind, line)
		}
		if a.Bytes, err = parseVolume(args[0]); err != nil {
			return Action{}, false, err
		}

	case AllToAllV, AllGatherV:
		// One volume per rank of the communicator:
		//	p0 alltoallv 1024 0 2048 512
		if len(args) == 0 {
			return Action{}, false, fmt.Errorf("trace: %s needs one volume per rank in %q", kind, line)
		}
		a.Volumes = make([]float64, len(args))
		for i, tok := range args {
			if a.Volumes[i], err = parseVolume(tok); err != nil {
				return Action{}, false, err
			}
		}

	case WaitSome:
		if len(args) != 1 {
			return Action{}, false, fmt.Errorf("trace: waitsome needs a completion count in %q", line)
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return Action{}, false, fmt.Errorf("trace: bad waitsome count %q in %q", args[0], line)
		}
		a.Count = n
	}
	if err := a.Validate(); err != nil {
		return Action{}, false, err
	}
	return a, true, nil
}

// Reader streams actions from a text trace. It reports I/O and syntax errors
// with line numbers.
type Reader struct {
	scanner *bufio.Scanner
	line    int
	// filter, when >= 0, keeps only actions of that rank (merged traces).
	filter int
	// world, when > 0, rejects actions whose peer, root, or volume-vector
	// length falls outside a communicator of that size — with the line
	// number, at parse time, instead of a hang or panic at replay.
	world int
}

// NewReader wraps r as a trace action stream over all ranks.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{scanner: sc, filter: -1}
}

// SetWorld enables communicator-sized validation (see ValidateIn) on every
// action the reader returns.
func (r *Reader) SetWorld(n int) { r.world = n }

// NewFilteredReader is NewReader restricted to actions of one rank; it is
// how a per-process replayer consumes the "single entry" merged-trace layout
// the paper's trace-description file supports.
func NewFilteredReader(r io.Reader, rank int) *Reader {
	rd := NewReader(r)
	rd.filter = rank
	return rd
}

// Next returns the next action. ok=false with nil error signals the end of
// the trace.
func (r *Reader) Next() (a Action, ok bool, err error) {
	for r.scanner.Scan() {
		r.line++
		a, ok, err := ParseLine(r.scanner.Text())
		if err != nil {
			return Action{}, false, fmt.Errorf("line %d: %w", r.line, err)
		}
		if !ok {
			continue
		}
		if r.filter >= 0 && a.Rank != r.filter {
			continue
		}
		if r.world > 0 {
			if err := a.ValidateIn(r.world); err != nil {
				return Action{}, false, fmt.Errorf("line %d: %w", r.line, err)
			}
		}
		return a, true, nil
	}
	if err := r.scanner.Err(); err != nil {
		return Action{}, false, err
	}
	return Action{}, false, nil
}

// ReadAll parses a whole trace into memory.
func ReadAll(r io.Reader) ([]Action, error) {
	rd := NewReader(r)
	var out []Action
	for {
		a, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, a)
	}
}

// Write renders actions in canonical text form, one per line.
func Write(w io.Writer, actions []Action) error {
	bw := bufio.NewWriter(w)
	for _, a := range actions {
		if err := a.Validate(); err != nil {
			return err
		}
		if _, err := bw.WriteString(a.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readRawLine returns the next raw line of the underlying input, without
// parsing. The folded-trace expander uses it to intercept directives.
func (r *Reader) readRawLine() (string, error) {
	if !r.scanner.Scan() {
		if err := r.scanner.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	r.line++
	return r.scanner.Text(), nil
}
