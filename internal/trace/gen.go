package trace

// Synthetic trace mixes exercising the extended action vocabulary. Real
// dumps carrying alltoallv/waitany patterns are bulky; these generators
// produce small, deterministic, cross-rank-consistent traces for robustness
// tests and tracegen's -mix mode, with no acquisition toolchain in the loop.

import "fmt"

// SyntheticMixes lists the supported generator names.
func SyntheticMixes() []string { return []string{"alltoallv", "waitany"} }

// SyntheticMix generates a per-rank action set for one of the named mixes:
//
//   - "alltoallv": iterations of compute + unevenly-loaded alltoallv +
//     allgatherv (every other iteration) + a scalar allreduce — the
//     transpose-style traffic of FT-class workloads.
//   - "waitany": iterations of isend/irecv bursts to the two nearest
//     neighbors drained by waitany + waitsome + wait — out-of-order
//     completion stress for the wait-set machinery.
//
// bytes scales the payloads (the alltoallv vectors are deliberately uneven
// multiples of it). The result is deterministic in its arguments.
func SyntheticMix(mix string, ranks, iters int, bytes float64) ([][]Action, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("trace: synthetic mix needs at least 2 ranks, got %d", ranks)
	}
	if iters < 1 {
		return nil, fmt.Errorf("trace: synthetic mix needs at least 1 iteration, got %d", iters)
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("trace: synthetic mix needs a positive payload, got %g", bytes)
	}
	switch mix {
	case "alltoallv":
		return mixAllToAllV(ranks, iters, bytes), nil
	case "waitany":
		return mixWaitAny(ranks, iters, bytes), nil
	default:
		return nil, fmt.Errorf("trace: unknown synthetic mix %q (have %v)", mix, SyntheticMixes())
	}
}

func mixAllToAllV(ranks, iters int, bytes float64) [][]Action {
	perRank := make([][]Action, ranks)
	for r := 0; r < ranks; r++ {
		actions := []Action{{Rank: r, Kind: Init, Peer: -1}}
		for it := 0; it < iters; it++ {
			actions = append(actions, Action{Rank: r, Kind: Compute, Peer: -1,
				Instructions: 1e5 * float64(1+(r+it)%4)})
			// Uneven per-peer volumes: each pair gets its own multiple of
			// the base payload, different per iteration.
			vols := make([]float64, ranks)
			for k := 0; k < ranks; k++ {
				if k == r {
					continue
				}
				vols[k] = bytes * float64(1+(r*31+k*17+it*7)%5)
			}
			actions = append(actions, Action{Rank: r, Kind: AllToAllV, Peer: -1, Volumes: vols})
			if it%2 == 1 {
				// Allgatherv contributions depend only on the contributing
				// rank (and the iteration), so every rank records the same
				// vector — the consistency replay requires.
				gvols := make([]float64, ranks)
				for k := 0; k < ranks; k++ {
					gvols[k] = bytes * float64(1+(k+it)%3)
				}
				actions = append(actions, Action{Rank: r, Kind: AllGatherV, Peer: -1, Volumes: gvols})
			}
			actions = append(actions, Action{Rank: r, Kind: AllReduce, Peer: -1, Bytes: 8})
		}
		perRank[r] = append(actions, Action{Rank: r, Kind: Finalize, Peer: -1})
	}
	return perRank
}

func mixWaitAny(ranks, iters int, bytes float64) [][]Action {
	perRank := make([][]Action, ranks)
	for r := 0; r < ranks; r++ {
		actions := []Action{{Rank: r, Kind: Init, Peer: -1}}
		for it := 0; it < iters; it++ {
			actions = append(actions, Action{Rank: r, Kind: Compute, Peer: -1,
				Instructions: 5e4 * float64(1+(r+2*it)%3)})
			next, prev := (r+1)%ranks, (r-1+ranks)%ranks
			actions = append(actions,
				Action{Rank: r, Kind: ISend, Peer: next, Bytes: bytes},
				Action{Rank: r, Kind: IRecv, Peer: prev, Bytes: bytes})
			if ranks > 2 {
				next2, prev2 := (r+2)%ranks, (r-2+ranks)%ranks
				actions = append(actions,
					Action{Rank: r, Kind: ISend, Peer: next2, Bytes: 2 * bytes},
					Action{Rank: r, Kind: IRecv, Peer: prev2, Bytes: 2 * bytes})
				// Four outstanding requests, drained out of order:
				// whichever finishes first, then two more, then the last.
				actions = append(actions,
					Action{Rank: r, Kind: WaitAny, Peer: -1},
					Action{Rank: r, Kind: WaitSome, Peer: -1, Count: 2},
					Action{Rank: r, Kind: Wait, Peer: -1})
			} else {
				actions = append(actions,
					Action{Rank: r, Kind: WaitAny, Peer: -1},
					Action{Rank: r, Kind: Wait, Peer: -1})
			}
		}
		actions = append(actions, Action{Rank: r, Kind: Barrier, Peer: -1})
		perRank[r] = append(actions, Action{Rank: r, Kind: Finalize, Peer: -1})
	}
	return perRank
}
