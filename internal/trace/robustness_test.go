package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: ParseLine never panics and never both errors and succeeds,
// whatever bytes it is fed.
func TestParseLineNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseLine panicked on %q: %v", raw, r)
			}
		}()
		a, ok, err := ParseLine(string(raw))
		if err != nil && ok {
			return false
		}
		if ok {
			// Anything accepted must re-validate.
			return a.Validate() == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the reader tolerates arbitrary garbage lines mixed with valid
// ones by reporting an error (never panicking, never mis-parsing).
func TestReaderGarbageLines(t *testing.T) {
	inputs := []string{
		"p0 compute\n",
		"p0 send p1 1e999\n", // overflow to +Inf — must be rejected or parsed finitely
		"\x00\x01\x02\n",
		"p99999999999999999999 compute 1\n",
		"p0 compute 1 # trailing comment is not supported\n",
		strings.Repeat("x", 100000) + "\n",
	}
	for _, in := range inputs {
		rd := NewReader(strings.NewReader(in))
		for {
			_, ok, err := rd.Next()
			if err != nil {
				break // error is the acceptable outcome
			}
			if !ok {
				break
			}
		}
	}
}

func TestParseOverflowVolume(t *testing.T) {
	a, ok, err := ParseLine("p0 compute 1e999")
	if err == nil && ok && (a.Instructions > 1e308) {
		t.Fatalf("accepted infinite volume: %+v", a)
	}
}

func TestReaderVeryLongLine(t *testing.T) {
	// A line longer than the initial scanner buffer must still parse.
	line := "p0 compute 123" + strings.Repeat(" ", 70000) + "\n"
	rd := NewReader(strings.NewReader(line))
	a, ok, err := rd.Next()
	if err != nil || !ok || a.Instructions != 123 {
		t.Fatalf("long line: %+v ok=%v err=%v", a, ok, err)
	}
}
