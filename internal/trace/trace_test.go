package trace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParsePaperSnippet(t *testing.T) {
	// The exact snippet from Section 3.2 of the paper.
	src := `p0 compute 956140
p0 send p1 1240
p0 compute 2110
p0 send p2 1240
p0 compute 3821`
	actions, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 5 {
		t.Fatalf("parsed %d actions, want 5", len(actions))
	}
	want := Action{Rank: 0, Kind: Send, Peer: 1, Bytes: 1240}
	if !actions[1].Equal(want) {
		t.Fatalf("action[1] = %+v, want %+v", actions[1], want)
	}
	if actions[0].Instructions != 956140 {
		t.Fatalf("compute volume = %v", actions[0].Instructions)
	}
}

func TestParseRecvV1AndV2(t *testing.T) {
	a1, ok, err := ParseLine("p1 recv p0")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if a1.Bytes != -1 {
		t.Fatalf("v1 recv bytes = %v, want -1 (unknown)", a1.Bytes)
	}
	a2, ok, err := ParseLine("p1 recv p0 1240")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if a2.Bytes != 1240 {
		t.Fatalf("v2 recv bytes = %v, want 1240", a2.Bytes)
	}
}

func TestParsePlainRankTokens(t *testing.T) {
	a, ok, err := ParseLine("3 send 4 100")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if a.Rank != 3 || a.Peer != 4 {
		t.Fatalf("a = %+v", a)
	}
}

func TestParseCollectives(t *testing.T) {
	cases := []struct {
		line string
		kind Kind
		root int
	}{
		{"p0 allreduce 40", AllReduce, 0},
		{"p0 bcast 1024", Bcast, 0},
		{"p0 bcast 1024 3", Bcast, 3},
		{"p0 reduce 8 2", Reduce, 2},
		{"p2 barrier", Barrier, 0},
		{"p1 alltoall 512", AllToAll, 0},
		{"p1 allgather 256", AllGather, 0},
		{"p1 gather 64 0", Gather, 0},
	}
	for _, c := range cases {
		a, ok, err := ParseLine(c.line)
		if err != nil || !ok {
			t.Fatalf("%q: %v", c.line, err)
		}
		if a.Kind != c.kind || a.Root != c.root {
			t.Fatalf("%q -> %+v", c.line, a)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n  \np0 compute 10\n# trailing\n"
	actions, err := ReadAll(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 {
		t.Fatalf("parsed %d actions, want 1", len(actions))
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	src := "p0 compute 10\np0 send\n"
	_, err := ReadAll(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line 2 info", err)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"p0 send p1",      // missing size
		"p0 send p1 -5",   // negative size
		"p0 compute -1",   // negative volume
		"p0 frobnicate 1", // unknown action
		"p0 send p0 10",   // self-send
		"p0 compute 1 2",  // extra args
		"px compute 1",    // bad rank
		"p0 allreduce",    // missing size
		"p0 bcast 10 x",   // bad root
	}
	for _, line := range bad {
		if _, ok, err := ParseLine(line); err == nil && ok {
			t.Errorf("ParseLine(%q) accepted", line)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	actions := []Action{
		{Rank: 0, Kind: Init, Peer: -1},
		{Rank: 0, Kind: Compute, Instructions: 956140, Peer: -1},
		{Rank: 0, Kind: Send, Peer: 1, Bytes: 1240},
		{Rank: 0, Kind: IRecv, Peer: 2, Bytes: 880},
		{Rank: 0, Kind: Wait, Peer: -1},
		{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
		{Rank: 0, Kind: Bcast, Bytes: 100, Root: 2, Peer: -1},
		{Rank: 0, Kind: Finalize, Peer: -1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, actions); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, actions) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, actions)
	}
}

// Property: any valid action round-trips through text unchanged.
func TestActionRoundTripProperty(t *testing.T) {
	f := func(rank uint8, kindSel uint8, vol uint32, peer uint8, root uint8) bool {
		kinds := []Kind{Compute, Send, ISend, Recv, IRecv, Barrier, Bcast, Reduce, AllReduce, AllToAll, Gather, AllGather, Init, Finalize, Wait, WaitAll}
		k := kinds[int(kindSel)%len(kinds)]
		a := Action{Rank: int(rank), Kind: k, Peer: -1}
		switch k {
		case Compute:
			a.Instructions = float64(vol)
		case Send, ISend, Recv, IRecv:
			a.Peer = int(peer)
			if a.Peer == a.Rank {
				a.Peer = a.Rank + 1
			}
			a.Bytes = float64(vol)
		case Bcast, Reduce, Gather:
			a.Bytes = float64(vol)
			a.Root = int(root)
		case AllReduce, AllToAll, AllGather:
			a.Bytes = float64(vol)
		}
		got, ok, err := ParseLine(a.String())
		return err == nil && ok && got.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilteredReader(t *testing.T) {
	src := "p0 compute 1\np1 compute 2\np0 compute 3\np2 compute 4\n"
	rd := NewFilteredReader(strings.NewReader(src), 0)
	var got []float64
	for {
		a, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, a.Instructions)
	}
	if !reflect.DeepEqual(got, []float64{1, 3}) {
		t.Fatalf("filtered = %v, want [1 3]", got)
	}
}

func TestSliceStreamAndMemProvider(t *testing.T) {
	p := NewMemProvider([][]Action{
		{{Rank: 0, Kind: Compute, Instructions: 5, Peer: -1}},
		{{Rank: 1, Kind: Compute, Instructions: 7, Peer: -1}},
	})
	if p.NumRanks() != 2 {
		t.Fatalf("ranks = %d", p.NumRanks())
	}
	st, err := p.Rank(1)
	if err != nil {
		t.Fatal(err)
	}
	a, ok, _ := st.Next()
	if !ok || a.Instructions != 7 {
		t.Fatalf("a = %+v ok=%v", a, ok)
	}
	if _, ok, _ := st.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
	if _, err := p.Rank(5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestWriteSetAndLoadDescription(t *testing.T) {
	dir := t.TempDir()
	perRank := [][]Action{
		{{Rank: 0, Kind: Compute, Instructions: 10, Peer: -1}, {Rank: 0, Kind: Send, Peer: 1, Bytes: 8}},
		{{Rank: 1, Kind: Recv, Peer: 0, Bytes: 8}, {Rank: 1, Kind: Compute, Instructions: 20, Peer: -1}},
	}
	desc, err := WriteSet(dir, "lu_b8", perRank)
	if err != nil {
		t.Fatal(err)
	}
	p, err := LoadDescription(desc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRanks() != 2 {
		t.Fatalf("ranks = %d", p.NumRanks())
	}
	st, err := p.Rank(1)
	if err != nil {
		t.Fatal(err)
	}
	a, ok, err := st.Next()
	if err != nil || !ok || a.Kind != Recv || a.Peer != 0 {
		t.Fatalf("a = %+v ok=%v err=%v", a, ok, err)
	}
}

func TestMergedFileProvider(t *testing.T) {
	dir := t.TempDir()
	merged := filepath.Join(dir, "all.trace")
	content := "p0 compute 1\np1 compute 2\np0 send p1 4\np1 recv p0 4\n"
	if err := os.WriteFile(merged, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	desc := filepath.Join(dir, "all.desc")
	if err := os.WriteFile(desc, []byte("all.trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadDescription(desc, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Rank(1)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for {
		a, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		kinds = append(kinds, a.Kind)
	}
	if !reflect.DeepEqual(kinds, []Kind{Compute, Recv}) {
		t.Fatalf("rank1 kinds = %v", kinds)
	}
}

func TestCollectStats(t *testing.T) {
	p := NewMemProvider([][]Action{
		{
			{Rank: 0, Kind: Compute, Instructions: 100, Peer: -1},
			{Rank: 0, Kind: Send, Peer: 1, Bytes: 1000},
			{Rank: 0, Kind: Send, Peer: 1, Bytes: 100000},
			{Rank: 0, Kind: AllReduce, Bytes: 8, Peer: -1},
		},
		{
			{Rank: 1, Kind: Compute, Instructions: 50, Peer: -1},
			{Rank: 1, Kind: Recv, Peer: 0, Bytes: 1000},
			{Rank: 1, Kind: Recv, Peer: 0, Bytes: 100000},
			{Rank: 1, Kind: AllReduce, Bytes: 8, Peer: -1},
		},
	})
	s, err := Collect(p, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions != 150 || s.P2PMessages != 2 || s.EagerMessages != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P2PBytes != 101000 {
		t.Fatalf("p2p bytes = %v", s.P2PBytes)
	}
	if math.Abs(s.InstructionsByRank[0]-100) > 0 || math.Abs(s.InstructionsByRank[1]-50) > 0 {
		t.Fatalf("per-rank instructions = %v", s.InstructionsByRank)
	}
	if s.ByKind[AllReduce] != 2 {
		t.Fatalf("allreduce count = %d", s.ByKind[AllReduce])
	}
}

func TestValidateAcceptsBalanced(t *testing.T) {
	p := NewMemProvider([][]Action{
		{{Rank: 0, Kind: Send, Peer: 1, Bytes: 8}, {Rank: 0, Kind: Barrier, Peer: -1}},
		{{Rank: 1, Kind: Recv, Peer: 0, Bytes: 8}, {Rank: 1, Kind: Barrier, Peer: -1}},
	})
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsMissingRecv(t *testing.T) {
	p := NewMemProvider([][]Action{
		{{Rank: 0, Kind: Send, Peer: 1, Bytes: 8}},
		{},
	})
	if err := Validate(p); err == nil {
		t.Fatal("expected send/recv mismatch error")
	}
}

func TestValidateDetectsOrphanRecv(t *testing.T) {
	p := NewMemProvider([][]Action{
		{},
		{{Rank: 1, Kind: Recv, Peer: 0, Bytes: 8}},
	})
	if err := Validate(p); err == nil {
		t.Fatal("expected orphan recv error")
	}
}

func TestValidateDetectsCollectiveImbalance(t *testing.T) {
	p := NewMemProvider([][]Action{
		{{Rank: 0, Kind: Barrier, Peer: -1}},
		{},
	})
	if err := Validate(p); err == nil {
		t.Fatal("expected collective imbalance error")
	}
}

func TestValidateDetectsPeerOutOfRange(t *testing.T) {
	p := NewMemProvider([][]Action{
		{{Rank: 0, Kind: Send, Peer: 9, Bytes: 8}},
	})
	if err := Validate(p); err == nil {
		t.Fatal("expected out-of-communicator error")
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if Send.String() != "send" || AllReduce.String() != "allreduce" {
		t.Fatal("kind names wrong")
	}
	if !Send.HasPeer() || Barrier.HasPeer() {
		t.Fatal("HasPeer wrong")
	}
	if !Bcast.IsCollective() || Compute.IsCollective() {
		t.Fatal("IsCollective wrong")
	}
}
