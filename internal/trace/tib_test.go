package trace

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// sampleTraceSet builds a canonical per-rank action set covering every
// action kind, both volume encodings (compact integral and raw float64,
// including the v1 recv's unknown size -1), and multi-byte varint values.
func sampleTraceSet(nranks int) [][]Action {
	perRank := make([][]Action, nranks)
	for r := 0; r < nranks; r++ {
		peer := (r + 1) % nranks
		from := (r + nranks - 1) % nranks
		perRank[r] = []Action{
			{Rank: r, Kind: Init, Peer: -1},
			{Rank: r, Kind: Compute, Instructions: 956140, Peer: -1},
			{Rank: r, Kind: Compute, Instructions: 1234.5678, Peer: -1}, // acquired (fractional) volume
			{Rank: r, Kind: Send, Peer: peer, Bytes: 1240},
			{Rank: r, Kind: Recv, Peer: from, Bytes: 1240},
			{Rank: r, Kind: ISend, Peer: peer, Bytes: 1 << 20},
			{Rank: r, Kind: IRecv, Peer: from, Bytes: -1}, // v1 recv: size unknown
			{Rank: r, Kind: Wait, Peer: -1},
			{Rank: r, Kind: Wait, Peer: -1},
			{Rank: r, Kind: WaitAll, Peer: -1},
			{Rank: r, Kind: Barrier, Peer: -1},
			{Rank: r, Kind: Bcast, Peer: -1, Bytes: 40},
			{Rank: r, Kind: Reduce, Peer: -1, Bytes: 8, Root: nranks - 1},
			{Rank: r, Kind: AllReduce, Peer: -1, Bytes: 40},
			{Rank: r, Kind: AllToAll, Peer: -1, Bytes: 65536},
			{Rank: r, Kind: Gather, Peer: -1, Bytes: 123456789012, Root: 0},
			{Rank: r, Kind: AllGather, Peer: -1, Bytes: 16},
			{Rank: r, Kind: Finalize, Peer: -1},
		}
	}
	return perRank
}

// sampleTraceSetV2 extends the canonical set with the version-2 vocabulary:
// wait-handle drains and per-peer vector collectives (uneven volumes, zero
// self-entries, and a fractional volume to force the raw float encoding).
func sampleTraceSetV2(nranks int) [][]Action {
	perRank := sampleTraceSet(nranks)
	for r := 0; r < nranks; r++ {
		vols := make([]float64, nranks)
		gvols := make([]float64, nranks)
		for k := 0; k < nranks; k++ {
			if k != r {
				vols[k] = float64(1024 * (1 + (r+k)%3))
			}
			gvols[k] = 256*float64(k+1) + 0.25
		}
		tail := []Action{
			{Rank: r, Kind: ISend, Peer: (r + 1) % nranks, Bytes: 4096},
			{Rank: r, Kind: IRecv, Peer: (r + nranks - 1) % nranks, Bytes: 4096},
			{Rank: r, Kind: WaitAny, Peer: -1},
			{Rank: r, Kind: WaitSome, Peer: -1, Count: 1},
			{Rank: r, Kind: AllToAllV, Peer: -1, Volumes: vols},
			{Rank: r, Kind: AllGatherV, Peer: -1, Volumes: gvols},
			{Rank: r, Kind: Finalize, Peer: -1},
		}
		perRank[r] = append(perRank[r][:len(perRank[r])-1], tail...)
	}
	return perRank
}

func materializeProvider(t *testing.T, p Provider) [][]Action {
	t.Helper()
	out := make([][]Action, p.NumRanks())
	for r := 0; r < p.NumRanks(); r++ {
		st, err := p.Rank(r)
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
			if !ok {
				break
			}
			out[r] = append(out[r], a)
		}
	}
	return out
}

func TestTIBRoundTrip(t *testing.T) {
	perRank := sampleTraceSet(4)
	path := filepath.Join(t.TempDir(), "set.tib")
	if err := WriteTIBFile(path, perRank); err != nil {
		t.Fatal(err)
	}
	p, err := OpenTIB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.NumRanks() != 4 {
		t.Fatalf("NumRanks = %d, want 4", p.NumRanks())
	}
	got := materializeProvider(t, p)
	if !reflect.DeepEqual(got, perRank) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, perRank)
	}
}

func TestTIBSmallerThanText(t *testing.T) {
	perRank := sampleTraceSet(8)
	dir := t.TempDir()
	desc, err := WriteSet(dir, "s", perRank)
	if err != nil {
		t.Fatal(err)
	}
	tibPath, rebuilt, err := CompileDescription(desc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("first compile reported a cache hit")
	}
	var textSize, tibSize int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Ext(e.Name()) == ".trace" {
			textSize += info.Size()
		}
	}
	st, err := os.Stat(tibPath)
	if err != nil {
		t.Fatal(err)
	}
	tibSize = st.Size()
	if tibSize >= textSize {
		t.Fatalf("compiled trace (%d bytes) not smaller than text (%d bytes)", tibSize, textSize)
	}
}

// The compiled cache must be reused while the sources are unchanged and
// rebuilt as soon as any source file's mtime or size moves.
func TestCompileDescriptionCacheInvalidation(t *testing.T) {
	perRank := sampleTraceSet(3)
	dir := t.TempDir()
	desc, err := WriteSet(dir, "c", perRank)
	if err != nil {
		t.Fatal(err)
	}

	if _, rebuilt, err := CompileDescription(desc, 0, 0); err != nil || !rebuilt {
		t.Fatalf("first compile: rebuilt=%v err=%v", rebuilt, err)
	}
	if _, rebuilt, err := CompileDescription(desc, 0, 0); err != nil || rebuilt {
		t.Fatalf("second compile: rebuilt=%v err=%v (want cache hit)", rebuilt, err)
	}

	victim := filepath.Join(dir, "c_1.trace")
	future := time.Now().Add(3 * time.Second)
	if err := os.Chtimes(victim, future, future); err != nil {
		t.Fatal(err)
	}
	if _, rebuilt, err := CompileDescription(desc, 0, 0); err != nil || !rebuilt {
		t.Fatalf("after touch: rebuilt=%v err=%v (want rebuild)", rebuilt, err)
	}
	if _, rebuilt, err := CompileDescription(desc, 0, 0); err != nil || rebuilt {
		t.Fatalf("after rebuild: rebuilt=%v err=%v (want cache hit)", rebuilt, err)
	}
}

// Compiling a merged single-file trace must yield exactly what per-rank
// filtered text reading yields, and folded traces must compile from their
// expanded form.
func TestCompileMergedAndFoldedEquivalence(t *testing.T) {
	perRank := sampleTraceSet(3)

	t.Run("merged", func(t *testing.T) {
		dir := t.TempDir()
		var merged []Action
		for i := range perRank[0] {
			for r := range perRank {
				merged = append(merged, perRank[r][i])
			}
		}
		f, err := os.Create(filepath.Join(dir, "m.trace"))
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(f, merged); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if err := os.WriteFile(filepath.Join(dir, "m.desc"), []byte("m.trace\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		desc := filepath.Join(dir, "m.desc")

		text, err := LoadDescription(desc, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := materializeProvider(t, text)

		p, err := OpenDescriptionCached(desc, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if got := materializeProvider(t, p); !reflect.DeepEqual(got, want) {
			t.Fatalf("merged compile mismatch:\ngot  %+v\nwant %+v", got, want)
		}
	})

	t.Run("folded", func(t *testing.T) {
		dir := t.TempDir()
		// Make the trace foldable: repeat an iteration block.
		iterated := make([][]Action, len(perRank))
		for r := range perRank {
			for i := 0; i < 20; i++ {
				iterated[r] = append(iterated[r], perRank[r][1:len(perRank[r])-1]...)
			}
		}
		desc, err := WriteFoldedSet(dir, "f", iterated)
		if err != nil {
			t.Fatal(err)
		}
		// Text rendering rounds volumes (%.0f), so compare against what the
		// folded *text* expands to, which is what the compiler consumed.
		text, err := LoadDescription(desc, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := materializeProvider(t, text)
		if len(want[0]) != len(iterated[0]) {
			t.Fatalf("folded expansion has %d actions, want %d", len(want[0]), len(iterated[0]))
		}
		p, err := OpenDescriptionCached(desc, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if got := materializeProvider(t, p); !reflect.DeepEqual(got, want) {
			t.Fatal("folded compile mismatch")
		}
	})
}

// drainTIB opens path and reads every rank to the end, returning the first
// error encountered.
func drainTIB(path string) error {
	p, err := OpenTIB(path)
	if err != nil {
		return err
	}
	defer p.Close()
	for r := 0; r < p.NumRanks(); r++ {
		st, err := p.Rank(r)
		if err != nil {
			return err
		}
		for {
			_, ok, err := st.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
	}
	return nil
}

// The new vocabulary must survive the binary format: wait sets and vector
// collectives round-trip bit-for-bit and stamp the file as version 2.
func TestTIBV2RoundTripNewKinds(t *testing.T) {
	perRank := sampleTraceSetV2(3)
	path := filepath.Join(t.TempDir(), "v2.tib")
	if err := WriteTIBFile(path, perRank); err != nil {
		t.Fatal(err)
	}
	p, err := OpenTIB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Version() != 2 {
		t.Fatalf("Version = %d, want 2", p.Version())
	}
	if got := materializeProvider(t, p); !reflect.DeepEqual(got, perRank) {
		t.Fatalf("v2 round trip mismatch:\ngot  %+v\nwant %+v", got, perRank)
	}
}

// The committed v1 fixture must decode byte-for-byte to the same actions
// forever: v2 extended the format, readers must never reinterpret old
// files. Do NOT regenerate testdata/sample_v1.tib.
func TestTIBV1FixtureBitIdentical(t *testing.T) {
	p, err := OpenTIB(filepath.Join("testdata", "sample_v1.tib"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Version() != 1 {
		t.Fatalf("Version = %d, want 1", p.Version())
	}
	want := [][]Action{
		{
			{Rank: 0, Kind: Init, Peer: -1},
			{Rank: 0, Kind: Compute, Instructions: 956140, Peer: -1},
			{Rank: 0, Kind: Compute, Instructions: 1234.5, Peer: -1},
			{Rank: 0, Kind: Send, Bytes: 1240, Peer: 1},
			{Rank: 0, Kind: ISend, Bytes: 65536, Peer: 2},
			{Rank: 0, Kind: Wait, Peer: -1},
			{Rank: 0, Kind: Bcast, Bytes: 2048, Peer: -1, Root: 2},
			{Rank: 0, Kind: Reduce, Bytes: 64, Peer: -1},
			{Rank: 0, Kind: AllReduce, Bytes: 40, Peer: -1},
			{Rank: 0, Kind: Finalize, Peer: -1},
		},
		{
			{Rank: 1, Kind: Init, Peer: -1},
			{Rank: 1, Kind: Recv, Bytes: -1, Peer: 0},
			{Rank: 1, Kind: IRecv, Bytes: 512, Peer: 2},
			{Rank: 1, Kind: WaitAll, Peer: -1},
			{Rank: 1, Kind: Barrier, Peer: -1},
			{Rank: 1, Kind: Bcast, Bytes: 2048, Peer: -1, Root: 2},
			{Rank: 1, Kind: Reduce, Bytes: 64, Peer: -1},
			{Rank: 1, Kind: AllReduce, Bytes: 40, Peer: -1},
			{Rank: 1, Kind: Finalize, Peer: -1},
		},
		{
			{Rank: 2, Kind: Init, Peer: -1},
			{Rank: 2, Kind: Recv, Bytes: 0, Peer: 0},
			{Rank: 2, Kind: Send, Bytes: 512, Peer: 1},
			{Rank: 2, Kind: Gather, Bytes: 128, Peer: -1, Root: 1},
			{Rank: 2, Kind: AllToAll, Bytes: 4096, Peer: -1},
			{Rank: 2, Kind: AllGather, Bytes: 256, Peer: -1},
			{Rank: 2, Kind: Bcast, Bytes: 2048, Peer: -1, Root: 2},
			{Rank: 2, Kind: Reduce, Bytes: 64, Peer: -1},
			{Rank: 2, Kind: AllReduce, Bytes: 40, Peer: -1},
			{Rank: 2, Kind: Finalize, Peer: -1},
		},
	}
	if got := materializeProvider(t, p); !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 fixture decode drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

// Every truncation and every single-bit flip of a .tib file must surface
// as a *TraceError — never a panic, never silently decoded: each file
// region is covered by a checksum.
func TestTIBCorruptionRobustness(t *testing.T) {
	tibCorruptionCheck(t, sampleTraceSet(2))
}

// The version-2 records (counts arrays, wait-set counts) get the same
// every-truncation/every-bitflip treatment as the v1 vocabulary.
func TestTIBV2CorruptionRobustness(t *testing.T) {
	tibCorruptionCheck(t, sampleTraceSetV2(2))
}

func tibCorruptionCheck(t *testing.T, perRank [][]Action) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.tib")
	if err := WriteTIBFile(path, perRank); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := drainTIB(path); err != nil {
		t.Fatalf("pristine file failed to read: %v", err)
	}

	check := func(t *testing.T, mutated []byte, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: panic: %v", what, r)
			}
		}()
		bad := filepath.Join(dir, "bad.tib")
		if err := os.WriteFile(bad, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		err := drainTIB(bad)
		if err == nil {
			t.Fatalf("%s: corruption went undetected", what)
		}
		var te *TraceError
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %v is not a *TraceError", what, err)
		}
	}

	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			check(t, good[:n], "truncated to "+strconv.Itoa(n))
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < len(good); i++ {
			mutated := append([]byte(nil), good...)
			mutated[i] ^= 1 << uint(rng.Intn(8))
			check(t, mutated, "bit flipped at "+strconv.Itoa(i))
		}
	})

	t.Run("garbage", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50; i++ {
			mutated := make([]byte, rng.Intn(2*len(good)))
			rng.Read(mutated)
			check(t, mutated, "random garbage")
		}
	})
}

// A non-TIB file must be rejected at open, and SniffTIB must classify by
// magic, not extension.
func TestOpenTIBRejectsTextTraces(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "fake.tib")
	if err := os.WriteFile(text, []byte("p0 compute 1000\np0 send p1 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTIB(text); err == nil {
		t.Fatal("OpenTIB accepted a text trace")
	}
	if SniffTIB(text) {
		t.Fatal("SniffTIB misclassified a text trace")
	}
	realPath := filepath.Join(dir, "real.bin")
	if err := WriteTIBFile(realPath, sampleTraceSet(2)); err != nil {
		t.Fatal(err)
	}
	if !SniffTIB(realPath) {
		t.Fatal("SniffTIB missed a compiled trace with a foreign extension")
	}
}

// Abandoned file streams must be closable (fd-leak fix): Close is
// idempotent and a closed stream refuses further reads.
func TestFileStreamClose(t *testing.T) {
	dir := t.TempDir()
	desc, err := WriteSet(dir, "x", sampleTraceSet(2))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := LoadDescription(desc, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := fp.Rank(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first action: ok=%v err=%v", ok, err)
	}
	closer, ok := st.(interface{ Close() error })
	if !ok {
		t.Fatal("file-backed stream is not Close-capable")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closer.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := st.Next(); err == nil {
		t.Fatal("Next succeeded on a closed stream")
	}
}

// Concurrent Rank calls on one CompiledProvider must be safe — the batch
// runner replays scenarios sharing nothing but the cache file.
func TestCompiledProviderConcurrentRanks(t *testing.T) {
	perRank := sampleTraceSet(8)
	path := filepath.Join(t.TempDir(), "p.tib")
	if err := WriteTIBFile(path, perRank); err != nil {
		t.Fatal(err)
	}
	p, err := OpenTIB(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		go func(i int) {
			st, err := p.Rank(i % 8)
			if err != nil {
				errs <- err
				return
			}
			n := 0
			for {
				_, ok, err := st.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					break
				}
				n++
			}
			if n != len(perRank[i%8]) {
				errs <- errors.New("short read")
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 64; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
