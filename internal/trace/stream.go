package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Stream is a pull-based source of actions for one rank. ok=false with nil
// error signals end of stream.
type Stream interface {
	Next() (a Action, ok bool, err error)
}

// Provider hands out one action stream per rank. Both file-backed traces and
// in-memory generators (the NPB workload models) implement it, so the replay
// engine never needs to materialize a full trace.
type Provider interface {
	// NumRanks is the number of processes in the traced application.
	NumRanks() int
	// Rank opens the action stream of one rank. Each call returns a fresh
	// stream positioned at the beginning.
	Rank(rank int) (Stream, error)
}

// SliceStream streams from an in-memory action slice.
type SliceStream struct {
	actions []Action
	pos     int
}

// NewSliceStream wraps actions as a Stream.
func NewSliceStream(actions []Action) *SliceStream {
	return &SliceStream{actions: actions}
}

// Next implements Stream.
func (s *SliceStream) Next() (Action, bool, error) {
	if s.pos >= len(s.actions) {
		return Action{}, false, nil
	}
	a := s.actions[s.pos]
	s.pos++
	return a, true, nil
}

// MemProvider serves per-rank in-memory traces.
type MemProvider struct {
	perRank [][]Action
}

// NewMemProvider builds a provider over per-rank action slices.
func NewMemProvider(perRank [][]Action) *MemProvider {
	return &MemProvider{perRank: perRank}
}

// NumRanks implements Provider.
func (m *MemProvider) NumRanks() int { return len(m.perRank) }

// Rank implements Provider.
func (m *MemProvider) Rank(rank int) (Stream, error) {
	if rank < 0 || rank >= len(m.perRank) {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", rank, len(m.perRank))
	}
	return NewSliceStream(m.perRank[rank]), nil
}

// fileStream streams a trace file, closing it at EOF, on error, or — for
// streams abandoned mid-trace, e.g. when another rank aborts the replay or
// the runner is cancelled — when the driver calls Close. Without the
// explicit Close path an abandoned stream leaked its descriptor for the
// life of the process.
type fileStream struct {
	f      *os.File
	rd     Stream
	rank   int
	closed bool
}

func (s *fileStream) Next() (Action, bool, error) {
	if s.closed {
		return Action{}, false, fmt.Errorf("trace: %s: stream already closed", s.f.Name())
	}
	a, ok, err := s.rd.Next()
	if err != nil || !ok {
		s.Close()
	}
	if err != nil {
		// Attach the file and rank so parse and validation failures carry
		// their full location ("file: rank N: line L: ...") up to replay.
		var te *TraceError
		if !errors.As(err, &te) {
			err = &TraceError{Path: s.f.Name(), Rank: s.rank, Err: err}
		}
	}
	return a, ok, err
}

// Close releases the underlying file; it is idempotent.
func (s *fileStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// FileProvider serves traces stored as files, as produced by the acquisition
// tool chain: either one file per rank, or a single merged file shared by
// all ranks (each rank filters its own actions), matching the two layouts of
// the paper's trace-description file.
type FileProvider struct {
	files  []string // len 1 (merged) or NumRanks (per-rank)
	nranks int
}

// NewFileProvider builds a provider over explicit per-rank files.
func NewFileProvider(files []string) (*FileProvider, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("trace: no trace files")
	}
	return &FileProvider{files: files, nranks: len(files)}, nil
}

// NewMergedFileProvider serves nranks ranks from one merged trace file.
func NewMergedFileProvider(file string, nranks int) (*FileProvider, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("trace: merged provider needs a positive rank count, got %d", nranks)
	}
	return &FileProvider{files: []string{file}, nranks: nranks}, nil
}

// LoadDescription reads a trace-description file: a list of trace file
// names, one per rank. As in the paper, "if this file contains a single
// entry, all the processes will look for the actions they have to perform
// into the same trace" — in that case nranks tells how many ranks to serve.
// Relative trace paths are resolved against the description file's
// directory.
func LoadDescription(path string, nranks int) (*FileProvider, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dir := filepath.Dir(path)
	var files []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !filepath.IsAbs(line) {
			line = filepath.Join(dir, line)
		}
		files = append(files, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch {
	case len(files) == 0:
		return nil, fmt.Errorf("trace: empty description file %s", path)
	case len(files) == 1 && nranks > 1:
		return NewMergedFileProvider(files[0], nranks)
	default:
		return NewFileProvider(files)
	}
}

// NumRanks implements Provider.
func (p *FileProvider) NumRanks() int { return p.nranks }

// Rank implements Provider.
func (p *FileProvider) Rank(rank int) (Stream, error) {
	if rank < 0 || rank >= p.nranks {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", rank, p.nranks)
	}
	var path string
	merged := len(p.files) == 1 && p.nranks > 1
	if merged {
		path = p.files[0]
	} else {
		path = p.files[rank]
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	filter := -1
	if merged {
		filter = rank
	}
	// The expanding reader transparently handles both plain and folded
	// (@folded v1) trace files; the provider's rank count arms the
	// communicator-sized validation (out-of-range roots, peers, vector
	// lengths fail here, with a line number, not at replay).
	return &fileStream{f: f, rd: NewExpandingWorldReader(f, filter, p.nranks), rank: rank}, nil
}

// WriteSet writes per-rank traces plus a description file into dir, using
// the naming scheme <prefix>_<rank>.trace and <prefix>.desc. It returns the
// description file path.
func WriteSet(dir, prefix string, perRank [][]Action) (string, error) {
	return writeSet(dir, prefix, perRank, Write)
}

// WriteFoldedSet is WriteSet with loop-folded trace files (see Fold); the
// file provider expands them transparently on read.
func WriteFoldedSet(dir, prefix string, perRank [][]Action) (string, error) {
	return writeSet(dir, prefix, perRank, WriteFolded)
}

func writeSet(dir, prefix string, perRank [][]Action, write func(io.Writer, []Action) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	descPath := filepath.Join(dir, prefix+".desc")
	desc, err := os.Create(descPath)
	if err != nil {
		return "", err
	}
	defer desc.Close()
	for rank, actions := range perRank {
		name := fmt.Sprintf("%s_%d.trace", prefix, rank)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		if err := write(f, actions); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
		if _, err := fmt.Fprintln(desc, name); err != nil {
			return "", err
		}
	}
	return descPath, nil
}
