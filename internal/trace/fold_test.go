package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func computeA(rank int, v float64) Action {
	return Action{Rank: rank, Kind: Compute, Instructions: v, Peer: -1}
}

func sendA(rank, peer int, b float64) Action {
	return Action{Rank: rank, Kind: Send, Peer: peer, Bytes: b}
}

func repeatBlock(block []Action, k int) []Action {
	var out []Action
	for i := 0; i < k; i++ {
		out = append(out, block...)
	}
	return out
}

func TestFoldDetectsSimpleLoop(t *testing.T) {
	block := []Action{computeA(0, 100), sendA(0, 1, 8), computeA(0, 200)}
	actions := repeatBlock(block, 10)
	f := Fold(actions)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1: %+v", len(f.Blocks), f.Blocks)
	}
	if f.Blocks[0].Count != 10 || len(f.Blocks[0].Body) != 3 {
		t.Fatalf("block = count %d, body %d", f.Blocks[0].Count, len(f.Blocks[0].Body))
	}
	if !reflect.DeepEqual(f.Expand(), actions) {
		t.Fatal("expansion differs from input")
	}
}

func TestFoldPreservesPrologueAndEpilogue(t *testing.T) {
	block := []Action{computeA(0, 1), sendA(0, 1, 8), computeA(0, 2), sendA(0, 1, 16)}
	actions := []Action{computeA(0, 999)}
	actions = append(actions, repeatBlock(block, 5)...)
	actions = append(actions, computeA(0, 888))
	f := Fold(actions)
	if !reflect.DeepEqual(f.Expand(), actions) {
		t.Fatal("expansion differs from input")
	}
	if f.Len() != len(actions) {
		t.Fatalf("Len = %d, want %d", f.Len(), len(actions))
	}
	if f.Lines() >= len(actions) {
		t.Fatalf("no compression: %d lines for %d actions", f.Lines(), len(actions))
	}
}

func TestFoldNoRepeatsIsIdentity(t *testing.T) {
	var actions []Action
	for i := 0; i < 50; i++ {
		actions = append(actions, computeA(0, float64(i)))
	}
	f := Fold(actions)
	if !reflect.DeepEqual(f.Expand(), actions) {
		t.Fatal("expansion differs from input")
	}
}

// Property: folding is lossless for arbitrary generated sequences that mix
// random actions with injected repetitions.
func TestFoldLosslessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var actions []Action
		for len(actions) < 300 {
			if rng.Intn(3) == 0 {
				// Inject a repeated block.
				blockLen := 1 + rng.Intn(6)
				count := 2 + rng.Intn(8)
				var block []Action
				for i := 0; i < blockLen; i++ {
					block = append(block, computeA(0, float64(rng.Intn(5))))
				}
				actions = append(actions, repeatBlock(block, count)...)
			} else {
				actions = append(actions, computeA(0, float64(rng.Intn(1000)+1000)))
			}
		}
		return reflect.DeepEqual(Fold(actions).Expand(), actions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFoldedRoundTrip(t *testing.T) {
	block := []Action{computeA(3, 100), sendA(3, 1, 2040), Action{Rank: 3, Kind: Recv, Peer: 1, Bytes: 2040}}
	actions := append([]Action{computeA(3, 7)}, repeatBlock(block, 20)...)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, actions); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "@folded v1\n") {
		t.Fatalf("missing header: %q", buf.String()[:40])
	}
	if !strings.Contains(buf.String(), "@loop 20 3") {
		t.Fatalf("missing loop directive:\n%s", buf.String())
	}
	st := NewExpandingReader(&buf, -1)
	var got []Action
	for {
		a, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, a)
	}
	if !reflect.DeepEqual(got, actions) {
		t.Fatalf("round trip differs: %d vs %d actions", len(got), len(actions))
	}
}

func TestExpandingReaderHandlesPlainTraces(t *testing.T) {
	src := "p0 compute 10\np0 send p1 8\n"
	st := NewExpandingReader(strings.NewReader(src), -1)
	var got []Action
	for {
		a, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, a)
	}
	if len(got) != 2 {
		t.Fatalf("plain trace through expander: %d actions", len(got))
	}
}

func TestExpandingReaderFilters(t *testing.T) {
	var buf bytes.Buffer
	actions := repeatBlock([]Action{computeA(0, 5), computeA(1, 6), computeA(0, 7), computeA(1, 8)}, 4)
	if err := WriteFolded(&buf, actions); err != nil {
		t.Fatal(err)
	}
	st := NewExpandingReader(&buf, 1)
	count := 0
	for {
		a, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if a.Rank != 1 {
			t.Fatalf("filter leaked rank %d", a.Rank)
		}
		count++
	}
	if count != 8 {
		t.Fatalf("filtered count = %d, want 8", count)
	}
}

func TestExpandingReaderRejectsBadDirectives(t *testing.T) {
	for _, src := range []string{
		"@folded v1\n@loop\n",
		"@folded v1\n@loop x 3\n",
		"@folded v1\n@loop 2 0\n",
		"@folded v1\n@loop 2 3\np0 compute 1\n", // truncated body
	} {
		st := NewExpandingReader(strings.NewReader(src), -1)
		var err error
		for {
			var ok bool
			_, ok, err = st.Next()
			if err != nil || !ok {
				break
			}
		}
		if err == nil {
			t.Errorf("accepted malformed folded trace %q", src)
		}
	}
}

func TestFoldedFileSetReplaysIdentically(t *testing.T) {
	// Write the same trace plain and folded; the file provider must serve
	// identical streams.
	block := []Action{
		{Rank: 0, Kind: Compute, Instructions: 100, Peer: -1},
		{Rank: 0, Kind: Send, Peer: 1, Bytes: 2040},
		{Rank: 0, Kind: Recv, Peer: 1, Bytes: 2040},
	}
	rank0 := repeatBlock(block, 30)
	rank1 := repeatBlock([]Action{
		{Rank: 1, Kind: Recv, Peer: 0, Bytes: 2040},
		{Rank: 1, Kind: Compute, Instructions: 50, Peer: -1},
		{Rank: 1, Kind: Send, Peer: 0, Bytes: 2040},
	}, 30)
	perRank := [][]Action{rank0, rank1}

	dir := t.TempDir()
	plainDesc, err := WriteSet(dir, "plain", perRank)
	if err != nil {
		t.Fatal(err)
	}
	foldedDesc, err := WriteFoldedSet(dir, "folded", perRank)
	if err != nil {
		t.Fatal(err)
	}
	read := func(desc string) [][]Action {
		p, err := LoadDescription(desc, 2)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]Action, 2)
		for r := 0; r < 2; r++ {
			st, err := p.Rank(r)
			if err != nil {
				t.Fatal(err)
			}
			for {
				a, ok, err := st.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				out[r] = append(out[r], a)
			}
		}
		return out
	}
	if !reflect.DeepEqual(read(plainDesc), read(foldedDesc)) {
		t.Fatal("folded file set differs from plain")
	}
}

// TestFoldCompressionOnLUTrace measures the ratio on a real workload trace:
// the SSOR structure must fold by at least 5x.
func TestFoldCompressionOnLUTrace(t *testing.T) {
	// Build a synthetic LU-like stream: 30 identical iterations of a
	// 40-action body after a 10-action prologue.
	var body []Action
	for k := 0; k < 10; k++ {
		body = append(body,
			Action{Rank: 0, Kind: Recv, Peer: 1, Bytes: 2040},
			Action{Rank: 0, Kind: Compute, Instructions: 1e6, Peer: -1},
			Action{Rank: 0, Kind: Send, Peer: 1, Bytes: 2040},
			Action{Rank: 0, Kind: Compute, Instructions: 2e6, Peer: -1},
		)
	}
	var actions []Action
	for i := 0; i < 10; i++ {
		actions = append(actions, computeA(0, float64(1000+i)))
	}
	actions = append(actions, repeatBlock(body, 30)...)
	f := Fold(actions)
	ratio := float64(len(actions)) / float64(f.Lines())
	if ratio < 5 {
		t.Fatalf("compression ratio %.1fx, want >= 5x (lines %d for %d actions)",
			ratio, f.Lines(), len(actions))
	}
	if !reflect.DeepEqual(f.Expand(), actions) {
		t.Fatal("lossless check failed")
	}
}
