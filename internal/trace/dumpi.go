package trace

// SST DUMPI importer. DUMPI (the MPI tracer of Sandia's SST toolkit) writes
// one binary dump per rank; `dumpi2ascii` renders each as a text stream of
// call blocks:
//
//	MPI_Send entering at walltime 11651.697763, cputime 0.000233 seconds in thread 0.
//	int count=256
//	datatype=11 (MPI_DOUBLE)
//	int dest=1
//	int tag=0
//	MPI_Comm comm=2 (MPI_COMM_WORLD)
//	MPI_Send returning at walltime 11651.697769, cputime 0.000239 seconds in thread 0.
//
// The importer accepts a folder of such per-rank files (suffix "-<rank>.txt",
// as produced by dumpi2ascii over a dump set) and folds them into
// time-independent streams: the CPU-time gap between one call's return and
// the next call's entry becomes a compute action (scaled by the calibrated
// instruction rate, or measured directly when PAPI_TOT_INS counter lines are
// present), and each recognized MPI call becomes its action — including the
// vector collectives (MPI_Alltoallv/MPI_Allgatherv carry their counts
// arrays) and the wait-set completions (MPI_Waitany/MPI_Waitsome).
// Unrecognized calls contribute their CPU time to the surrounding compute
// and are otherwise skipped.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func init() {
	RegisterImporter("dumpi", sniffDUMPI, openDUMPI)
}

// dumpiFilePat matches dumpi2ascii per-rank file names: anything ending in
// a dash, the decimal rank, and ".txt" ("dumpi-2026.08.08-0003.txt").
var dumpiFilePat = regexp.MustCompile(`-(\d+)\.txt$`)

// dumpiRankFiles lists dir's per-rank ASCII dumps indexed by rank.
func dumpiRankFiles(dir string) (map[int]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[int]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := dumpiFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		rank, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if prev, dup := files[rank]; dup {
			return nil, fmt.Errorf("trace: dumpi: rank %d appears twice (%s, %s)", rank, filepath.Base(prev), e.Name())
		}
		files[rank] = filepath.Join(dir, e.Name())
	}
	return files, nil
}

// sniffDUMPI accepts a directory holding at least one "-<rank>.txt" file
// whose first line is an "MPI_... entering" header.
func sniffDUMPI(path string) bool {
	st, err := os.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	files, err := dumpiRankFiles(path)
	if err != nil || len(files) == 0 {
		return false
	}
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return false
		}
		sc := bufio.NewScanner(f)
		ok := false
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			ok = strings.HasPrefix(line, "MPI_") && strings.Contains(line, " entering at ")
			break
		}
		f.Close()
		return ok
	}
	return false
}

func openDUMPI(path string, opts ImportOptions) (Provider, error) {
	byRank, err := dumpiRankFiles(path)
	if err != nil {
		return nil, err
	}
	if len(byRank) == 0 {
		return nil, fmt.Errorf("trace: dumpi: no per-rank ASCII dumps (*-<rank>.txt) in %s", path)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	files := make([]string, len(ranks))
	for i, r := range ranks {
		if r != i {
			return nil, fmt.Errorf("trace: dumpi: rank files not contiguous: missing rank %d in %s", i, path)
		}
		files[i] = byRank[r]
	}
	// A dumpi .meta file, when present, must agree with the file count.
	if metas, _ := filepath.Glob(filepath.Join(path, "*.meta")); len(metas) > 0 {
		if np, ok := dumpiMetaProcs(metas[0]); ok && np != len(files) {
			return nil, fmt.Errorf("trace: dumpi: %s declares numprocs=%d but %d rank dumps found",
				filepath.Base(metas[0]), np, len(files))
		}
	}
	return &dumpiProvider{files: files, rate: opts.rate()}, nil
}

// dumpiMetaProcs extracts "numprocs=N" from a dumpi .meta file.
func dumpiMetaProcs(path string) (int, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "numprocs="); ok {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			return n, err == nil
		}
	}
	return 0, false
}

type dumpiProvider struct {
	files []string
	rate  float64
}

func (p *dumpiProvider) NumRanks() int { return len(p.files) }

func (p *dumpiProvider) Rank(rank int) (Stream, error) {
	if rank < 0 || rank >= len(p.files) {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", rank, len(p.files))
	}
	f, err := os.Open(p.files[rank])
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	ds := &dumpiStream{
		path: p.files[rank], rank: rank, world: len(p.files), rate: p.rate,
		sc: sc, lastCPU: -1, lastPAPI: -1,
	}
	return &fileStream{f: f, rd: ds, rank: rank}, nil
}

// dumpiDatatypeSize maps the named MPI datatypes dumpi2ascii annotates onto
// byte sizes; unknown types default to 4 bytes.
func dumpiDatatypeSize(name string) float64 {
	switch name {
	case "MPI_CHAR", "MPI_BYTE", "MPI_SIGNED_CHAR", "MPI_UNSIGNED_CHAR", "MPI_PACKED":
		return 1
	case "MPI_SHORT", "MPI_UNSIGNED_SHORT":
		return 2
	case "MPI_LONG", "MPI_UNSIGNED_LONG", "MPI_DOUBLE", "MPI_LONG_LONG",
		"MPI_UNSIGNED_LONG_LONG", "MPI_LONG_LONG_INT", "MPI_DOUBLE_INT":
		return 8
	case "MPI_LONG_DOUBLE":
		return 16
	default: // MPI_INT, MPI_FLOAT, MPI_UNSIGNED, ...
		return 4
	}
}

// dumpiCall is one parsed entering...returning block.
type dumpiCall struct {
	name     string
	cpuEnter float64 // seconds
	cpuRet   float64
	papiIn   float64 // PAPI_TOT_INS at entry; -1 when absent
	ints     map[string]int
	arrays   map[string][]float64
	dtype    string // last annotated datatype name
}

var dumpiHeaderPat = regexp.MustCompile(`^(MPI_\w+)\s+(entering|returning)\s+at\s+walltime\s+([0-9.eE+-]+),\s*cputime\s+([0-9.eE+-]+)\s+seconds`)

// dumpiIntPat matches scalar arguments: "int dest=1", "int root=0 (...)".
var dumpiIntPat = regexp.MustCompile(`^(?:int|MPI_\w+)\s+(\w+)=(-?\d+)`)

// dumpiArrayPat matches counts arrays: "int sendcounts[4]={1, 2, 3, 4}".
var dumpiArrayPat = regexp.MustCompile(`^int\s+(\w+)\[\d*\]=\{([^}]*)\}`)

// dumpiTypePat matches datatype annotations: "datatype=11 (MPI_DOUBLE)".
var dumpiTypePat = regexp.MustCompile(`(?:^|\s)(?:send|recv)?(?:data)?type=\d+\s+\((MPI_\w+)\)`)

// dumpiPAPIPat matches an instruction-counter sample in a perfcounter
// listing: "PAPI_TOT_INS = 12345" or "PAPI_TOT_INS=12345".
var dumpiPAPIPat = regexp.MustCompile(`PAPI_TOT_INS\s*=\s*(\d+)`)

// dumpiStream folds one rank's ASCII dump into actions on the fly.
type dumpiStream struct {
	path  string
	rank  int
	world int
	rate  float64
	sc    *bufio.Scanner
	line  int

	queue []Action // actions ready to hand out
	qpos  int

	cur      *dumpiCall // open block, nil between calls
	lastCPU  float64    // cputime at the previous call's return; -1 before the first
	lastPAPI float64    // PAPI_TOT_INS at the previous return; -1 when absent
	done     bool
}

func (s *dumpiStream) fail(format string, args ...any) error {
	return &TraceError{Path: s.path, Rank: s.rank,
		Err: fmt.Errorf("line %d: dumpi: %s", s.line, fmt.Sprintf(format, args...))}
}

func (s *dumpiStream) Next() (Action, bool, error) {
	for {
		if s.qpos < len(s.queue) {
			a := s.queue[s.qpos]
			s.qpos++
			return a, true, nil
		}
		s.queue = s.queue[:0]
		s.qpos = 0
		if s.done {
			return Action{}, false, nil
		}
		if err := s.advance(); err != nil {
			return Action{}, false, err
		}
	}
}

// advance consumes input lines until it has enqueued at least one action or
// reached EOF.
func (s *dumpiStream) advance() error {
	for len(s.queue) == 0 {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				return err
			}
			if s.cur != nil {
				return s.fail("EOF inside %s call block", s.cur.name)
			}
			s.done = true
			return nil
		}
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if m := dumpiHeaderPat.FindStringSubmatch(line); m != nil {
			cpu, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return s.fail("bad cputime in %q", line)
			}
			switch m[2] {
			case "entering":
				if s.cur != nil {
					return s.fail("%s entering inside %s call block", m[1], s.cur.name)
				}
				s.cur = &dumpiCall{name: m[1], cpuEnter: cpu, papiIn: -1,
					ints: make(map[string]int), arrays: make(map[string][]float64)}
			case "returning":
				if s.cur == nil || s.cur.name != m[1] {
					return s.fail("%s returning without matching entering", m[1])
				}
				s.cur.cpuRet = cpu
				if err := s.emit(s.cur); err != nil {
					return err
				}
				s.cur = nil
			}
			continue
		}
		if m := dumpiPAPIPat.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				return s.fail("bad PAPI_TOT_INS value in %q", line)
			}
			if s.cur != nil {
				if s.cur.papiIn < 0 {
					s.cur.papiIn = v
				}
			} else {
				s.lastPAPI = v // sample taken at the previous call's return
			}
			continue
		}
		if s.cur == nil {
			continue // prose between blocks
		}
		if m := dumpiArrayPat.FindStringSubmatch(line); m != nil {
			var vals []float64
			for _, tok := range strings.Split(m[2], ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return s.fail("bad %s array element %q", m[1], tok)
				}
				vals = append(vals, v)
			}
			s.cur.arrays[m[1]] = vals
			continue
		}
		if m := dumpiTypePat.FindStringSubmatch(line); m != nil {
			s.cur.dtype = m[1]
			// fall through: the scalar pattern may also match this line
		}
		if m := dumpiIntPat.FindStringSubmatch(line); m != nil {
			v, err := strconv.Atoi(m[2])
			if err == nil {
				s.cur.ints[m[1]] = v
			}
		}
	}
	return nil
}

// emit appends the compute gap preceding call and the call's own action.
func (s *dumpiStream) emit(call *dumpiCall) error {
	// Compute volume since the previous call returned: a PAPI_TOT_INS delta
	// when both boundary samples exist, the CPU-time gap at the calibrated
	// rate otherwise. Before the first call (usually MPI_Init) there is no
	// meaningful baseline.
	if s.lastCPU >= 0 {
		var instr float64
		if s.lastPAPI >= 0 && call.papiIn >= 0 {
			instr = call.papiIn - s.lastPAPI
		} else if gap := call.cpuEnter - s.lastCPU; gap > 0 {
			instr = gap * s.rate
		}
		if instr > 0 {
			s.push(Action{Rank: s.rank, Kind: Compute, Peer: -1, Instructions: instr})
		}
	}
	s.lastCPU = call.cpuRet
	s.lastPAPI = -1

	size := dumpiDatatypeSize(call.dtype)
	count := func(names ...string) int {
		for _, n := range names {
			if v, ok := call.ints[n]; ok {
				return v
			}
		}
		return 0
	}
	vector := func(names ...string) ([]float64, error) {
		for _, n := range names {
			if vals, ok := call.arrays[n]; ok {
				if len(vals) != s.world {
					return nil, s.fail("%s %s has %d entries for %d ranks", call.name, n, len(vals), s.world)
				}
				vols := make([]float64, len(vals))
				for i, v := range vals {
					vols[i] = v * size
				}
				return vols, nil
			}
		}
		return nil, s.fail("%s without a counts array", call.name)
	}

	a := Action{Rank: s.rank, Peer: -1}
	switch call.name {
	case "MPI_Init", "MPI_Init_thread":
		a.Kind = Init
	case "MPI_Finalize":
		a.Kind = Finalize
	case "MPI_Send", "MPI_Ssend", "MPI_Rsend", "MPI_Bsend":
		a.Kind, a.Peer, a.Bytes = Send, count("dest"), float64(count("count"))*size
	case "MPI_Isend", "MPI_Issend", "MPI_Irsend", "MPI_Ibsend":
		a.Kind, a.Peer, a.Bytes = ISend, count("dest"), float64(count("count"))*size
	case "MPI_Recv":
		a.Kind, a.Peer, a.Bytes = Recv, count("source"), float64(count("count"))*size
	case "MPI_Irecv":
		a.Kind, a.Peer, a.Bytes = IRecv, count("source"), float64(count("count"))*size
	case "MPI_Wait":
		a.Kind = Wait
	case "MPI_Waitall":
		a.Kind = WaitAll
	case "MPI_Waitany":
		a.Kind = WaitAny
	case "MPI_Waitsome":
		a.Kind = WaitSome
		if a.Count = count("outcount"); a.Count < 1 {
			a.Count = 1
		}
	case "MPI_Barrier":
		a.Kind = Barrier
	case "MPI_Bcast":
		a.Kind, a.Bytes, a.Root = Bcast, float64(count("count"))*size, count("root")
	case "MPI_Reduce":
		a.Kind, a.Bytes, a.Root = Reduce, float64(count("count"))*size, count("root")
	case "MPI_Allreduce":
		a.Kind, a.Bytes = AllReduce, float64(count("count"))*size
	case "MPI_Alltoall":
		a.Kind, a.Bytes = AllToAll, float64(count("sendcount", "count"))*size
	case "MPI_Gather":
		a.Kind, a.Bytes, a.Root = Gather, float64(count("sendcount", "count"))*size, count("root")
	case "MPI_Allgather":
		a.Kind, a.Bytes = AllGather, float64(count("sendcount", "count"))*size
	case "MPI_Alltoallv":
		vols, err := vector("sendcounts")
		if err != nil {
			return err
		}
		a.Kind, a.Volumes = AllToAllV, vols
	case "MPI_Allgatherv":
		vols, err := vector("recvcounts")
		if err != nil {
			return err
		}
		a.Kind, a.Volumes = AllGatherV, vols
	default:
		return nil // unrecognized call: its CPU time still advanced lastCPU
	}
	if err := a.ValidateIn(s.world); err != nil {
		return s.fail("%s maps to invalid action: %v", call.name, err)
	}
	s.push(a)
	return nil
}

func (s *dumpiStream) push(a Action) { s.queue = append(s.queue, a) }
