// Package trace defines the time-independent trace format at the heart of
// the paper: per-rank streams of actions that carry only volumes — numbers
// of instructions computed between MPI calls and bytes exchanged by each MPI
// call — and no timestamps. Traces in this format can be acquired anywhere
// and replayed on any simulated platform.
//
// The text encoding follows the paper (Section 3.2/3.3):
//
//	p0 compute 956140
//	p0 send p1 1240
//	p1 recv p0 1240
//	p0 allreduce 40
//
// Both the v1 form of recv (no size: "p1 recv p0") and the v2 form with the
// message size appended — the format change introduced by the SMPI rewrite —
// are accepted. Rank tokens may be written "p3" or plain "3".
package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the action types of the time-independent format.
type Kind int

// Action kinds. New kinds append after AllGather: the numeric values are the
// TIB wire encoding, so reordering would silently re-interpret old files.
const (
	Init Kind = iota
	Finalize
	Compute
	Send
	ISend
	Recv
	IRecv
	Wait
	WaitAll
	Barrier
	Bcast
	Reduce
	AllReduce
	AllToAll
	Gather
	AllGather
	// Kinds below require TIB v2 (vector collectives and wait-handle sets).
	AllToAllV
	AllGatherV
	WaitAny
	WaitSome
)

// maxKindV1 and maxKindV2 bound the kinds each TIB format version may carry.
const (
	maxKindV1 = AllGather
	maxKindV2 = WaitSome
)

var kindNames = map[Kind]string{
	Init:       "init",
	Finalize:   "finalize",
	Compute:    "compute",
	Send:       "send",
	ISend:      "isend",
	Recv:       "recv",
	IRecv:      "irecv",
	Wait:       "wait",
	WaitAll:    "waitall",
	Barrier:    "barrier",
	Bcast:      "bcast",
	Reduce:     "reduce",
	AllReduce:  "allreduce",
	AllToAll:   "alltoall",
	Gather:     "gather",
	AllGather:  "allgather",
	AllToAllV:  "alltoallv",
	AllGatherV: "allgatherv",
	WaitAny:    "waitany",
	WaitSome:   "waitsome",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// HasPeer reports whether actions of this kind carry a peer rank.
func (k Kind) HasPeer() bool {
	switch k {
	case Send, ISend, Recv, IRecv:
		return true
	}
	return false
}

// IsCollective reports whether the kind is a collective operation.
func (k Kind) IsCollective() bool {
	switch k {
	case Barrier, Bcast, Reduce, AllReduce, AllToAll, Gather, AllGather,
		AllToAllV, AllGatherV:
		return true
	}
	return false
}

// HasVolumes reports whether actions of this kind carry a per-peer byte
// vector (one entry per rank of the communicator).
func (k Kind) HasVolumes() bool {
	return k == AllToAllV || k == AllGatherV
}

// Action is one event of a time-independent trace.
type Action struct {
	// Rank is the MPI rank performing the action.
	Rank int
	// Kind is the action type.
	Kind Kind
	// Instructions is the compute volume (Compute actions only).
	Instructions float64
	// Peer is the destination (sends) or source (receives) rank; -1 when
	// not applicable.
	Peer int
	// Bytes is the message size for point-to-point actions and the per-rank
	// payload for collectives. For v1 recv actions the size is unknown and
	// recorded as -1: the replayer then uses the size of the matching send.
	Bytes float64
	// Root is the root rank of rooted collectives (Bcast, Reduce, Gather).
	Root int
	// Volumes is the per-peer byte vector of vector collectives: for
	// AllToAllV, Volumes[k] is what this rank sends to rank k; for
	// AllGatherV, Volumes[k] is rank k's contribution (identical on every
	// rank). One entry per rank of the communicator.
	Volumes []float64
	// Count is the completion count of WaitSome (how many of the oldest
	// outstanding requests to wait for).
	Count int
}

// Equal reports whether two actions are identical, comparing the volume
// vectors element-wise. Action is not a comparable type (Volumes is a
// slice); every structural comparison must go through Equal.
func (a Action) Equal(b Action) bool {
	if a.Rank != b.Rank || a.Kind != b.Kind || a.Instructions != b.Instructions ||
		a.Peer != b.Peer || a.Bytes != b.Bytes || a.Root != b.Root || a.Count != b.Count {
		return false
	}
	if len(a.Volumes) != len(b.Volumes) {
		return false
	}
	for i := range a.Volumes {
		if a.Volumes[i] != b.Volumes[i] {
			return false
		}
	}
	return true
}

// String renders the action in the canonical trace text form.
func (a Action) String() string {
	switch a.Kind {
	case Compute:
		return fmt.Sprintf("p%d compute %.0f", a.Rank, a.Instructions)
	case Send, ISend:
		return fmt.Sprintf("p%d %s p%d %.0f", a.Rank, a.Kind, a.Peer, a.Bytes)
	case Recv, IRecv:
		if a.Bytes < 0 {
			return fmt.Sprintf("p%d %s p%d", a.Rank, a.Kind, a.Peer)
		}
		return fmt.Sprintf("p%d %s p%d %.0f", a.Rank, a.Kind, a.Peer, a.Bytes)
	case Bcast, Reduce, Gather:
		if a.Root != 0 {
			return fmt.Sprintf("p%d %s %.0f %d", a.Rank, a.Kind, a.Bytes, a.Root)
		}
		return fmt.Sprintf("p%d %s %.0f", a.Rank, a.Kind, a.Bytes)
	case AllReduce, AllToAll, AllGather:
		return fmt.Sprintf("p%d %s %.0f", a.Rank, a.Kind, a.Bytes)
	case AllToAllV, AllGatherV:
		var sb strings.Builder
		fmt.Fprintf(&sb, "p%d %s", a.Rank, a.Kind)
		for _, v := range a.Volumes {
			fmt.Fprintf(&sb, " %s", strconv.FormatFloat(v, 'f', -1, 64))
		}
		return sb.String()
	case WaitSome:
		return fmt.Sprintf("p%d %s %d", a.Rank, a.Kind, a.Count)
	default:
		return fmt.Sprintf("p%d %s", a.Rank, a.Kind)
	}
}

// Validate checks the internal consistency of a single action.
func (a Action) Validate() error {
	if a.Rank < 0 {
		return fmt.Errorf("trace: negative rank %d", a.Rank)
	}
	switch a.Kind {
	case Compute:
		if a.Instructions < 0 {
			return fmt.Errorf("trace: p%d compute with negative volume %g", a.Rank, a.Instructions)
		}
	case Send, ISend:
		if a.Peer < 0 {
			return fmt.Errorf("trace: p%d %s without destination", a.Rank, a.Kind)
		}
		if a.Bytes < 0 {
			return fmt.Errorf("trace: p%d %s with negative size %g", a.Rank, a.Kind, a.Bytes)
		}
		if a.Peer == a.Rank {
			return fmt.Errorf("trace: p%d %s to itself", a.Rank, a.Kind)
		}
	case Recv, IRecv:
		if a.Peer < 0 {
			return fmt.Errorf("trace: p%d %s without source", a.Rank, a.Kind)
		}
		if a.Peer == a.Rank {
			return fmt.Errorf("trace: p%d %s from itself", a.Rank, a.Kind)
		}
	case Bcast, Reduce, AllReduce, AllToAll, Gather, AllGather:
		if a.Bytes < 0 {
			return fmt.Errorf("trace: p%d %s with negative size %g", a.Rank, a.Kind, a.Bytes)
		}
		if a.Root < 0 {
			return fmt.Errorf("trace: p%d %s with negative root %d", a.Rank, a.Kind, a.Root)
		}
	case AllToAllV, AllGatherV:
		if len(a.Volumes) == 0 {
			return fmt.Errorf("trace: p%d %s without volume vector", a.Rank, a.Kind)
		}
		for i, v := range a.Volumes {
			if v < 0 {
				return fmt.Errorf("trace: p%d %s with negative volume %g for rank %d", a.Rank, a.Kind, v, i)
			}
		}
	case WaitSome:
		if a.Count < 1 {
			return fmt.Errorf("trace: p%d waitsome with non-positive count %d", a.Rank, a.Count)
		}
	}
	return nil
}

// ValidateIn is Validate plus the checks that need the communicator size:
// peers and roots must name ranks inside the world, and volume vectors must
// carry exactly one entry per rank. world <= 0 skips the sized checks.
func (a Action) ValidateIn(world int) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if world <= 0 {
		return nil
	}
	if a.Rank >= world {
		return fmt.Errorf("trace: rank p%d outside communicator of size %d", a.Rank, world)
	}
	if a.Kind.HasPeer() && a.Peer >= world {
		return fmt.Errorf("trace: p%d %s peer p%d outside communicator of size %d",
			a.Rank, a.Kind, a.Peer, world)
	}
	switch a.Kind {
	case Bcast, Reduce, Gather:
		if a.Root >= world {
			return fmt.Errorf("trace: p%d %s root p%d outside communicator of size %d",
				a.Rank, a.Kind, a.Root, world)
		}
	case AllToAllV, AllGatherV:
		if len(a.Volumes) != world {
			return fmt.Errorf("trace: p%d %s carries %d volumes for a communicator of size %d",
				a.Rank, a.Kind, len(a.Volumes), world)
		}
	}
	return nil
}
