package trace

// Importer registry: the pluggable front door of the action pipeline. A
// trace acquired by a foreign toolchain (an SST DUMPI ASCII dump, a TAU
// profile folder) is folded into per-rank time-independent action streams by
// an Importer, after which the rest of the pipeline — validation, TIB
// compilation, replay — treats it exactly like a native trace set.

import (
	"fmt"
	"sort"
	"sync"
)

// ImportOptions tunes how foreign volumes are mapped onto trace actions.
type ImportOptions struct {
	// InstructionRate converts CPU seconds into instruction volumes when the
	// dump carries no hardware instruction counter (the paper calibrates
	// this per machine; PAPI_TOT_INS deltas are used directly when present).
	// Zero selects DefaultInstructionRate.
	InstructionRate float64
}

// DefaultInstructionRate is the CPU-time-to-instructions conversion used
// when a dump has no instruction counter and the caller gives no rate:
// one giga-instruction per CPU second, the order of magnitude of the
// paper's calibrated machines.
const DefaultInstructionRate = 1e9

func (o ImportOptions) rate() float64 {
	if o.InstructionRate > 0 {
		return o.InstructionRate
	}
	return DefaultInstructionRate
}

// Importer converts one foreign trace layout into a trace Provider.
type Importer struct {
	// Name identifies the format ("dumpi", "tau").
	Name string
	// Sniff reports whether path (a file or directory) looks like this
	// format. It must be cheap: registry sniffing probes every importer.
	Sniff func(path string) bool
	// Open folds the foreign trace at path into per-rank action streams.
	Open func(path string, opts ImportOptions) (Provider, error)
}

var (
	importerMu  sync.RWMutex
	importers   = make(map[string]Importer)
	importOrder []string
)

// RegisterImporter adds a trace importer to the registry. Importers
// self-register from init functions; registering a duplicate name panics.
func RegisterImporter(name string, sniff func(string) bool, open func(string, ImportOptions) (Provider, error)) {
	if name == "" || sniff == nil || open == nil {
		panic("trace: RegisterImporter with empty name or nil hooks")
	}
	importerMu.Lock()
	defer importerMu.Unlock()
	if _, dup := importers[name]; dup {
		panic(fmt.Sprintf("trace: importer %q registered twice", name))
	}
	importers[name] = Importer{Name: name, Sniff: sniff, Open: open}
	importOrder = append(importOrder, name)
}

// Importers lists the registered importer names, sorted.
func Importers() []string {
	importerMu.RLock()
	defer importerMu.RUnlock()
	names := make([]string, 0, len(importers))
	for n := range importers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupImporter returns the importer registered under name.
func LookupImporter(name string) (Importer, bool) {
	importerMu.RLock()
	defer importerMu.RUnlock()
	imp, ok := importers[name]
	return imp, ok
}

// SniffImport probes every registered importer (in registration order) and
// returns the name of the first whose Sniff accepts path.
func SniffImport(path string) (string, bool) {
	importerMu.RLock()
	defer importerMu.RUnlock()
	for _, name := range importOrder {
		if importers[name].Sniff(path) {
			return name, true
		}
	}
	return "", false
}

// Import opens a foreign trace. format names a registered importer, or "" /
// "auto" to sniff the path against every importer.
func Import(format, path string, opts ImportOptions) (Provider, error) {
	if format == "" || format == "auto" {
		name, ok := SniffImport(path)
		if !ok {
			return nil, fmt.Errorf("trace: no registered importer recognizes %s (have %v)", path, Importers())
		}
		format = name
	}
	imp, ok := LookupImporter(format)
	if !ok {
		return nil, fmt.Errorf("trace: unknown trace format %q (have %v)", format, Importers())
	}
	return imp.Open(path, opts)
}

// ImportCompile imports a foreign trace and compiles it straight to a .tib
// file — the ingestion path of `tireplay -import`: pay the foreign parse
// once, replay from the binary form ever after.
func ImportCompile(format, path, tibPath string, opts ImportOptions) (ranks int, err error) {
	p, err := Import(format, path, opts)
	if err != nil {
		return 0, err
	}
	if c, ok := p.(interface{ Close() error }); ok {
		defer c.Close()
	}
	if err := Compile(p, tibPath, [32]byte{}, 0); err != nil {
		return 0, err
	}
	return p.NumRanks(), nil
}
