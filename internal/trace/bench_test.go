package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// benchActions is the 4000-action trace both the text-parsing and the
// TIB-decoding throughput benchmarks consume, so their ns/op compare
// directly (same actions per iteration).
func benchActions() []Action {
	actions := make([]Action, 0, 4000)
	for i := 0; i < 1000; i++ {
		actions = append(actions,
			Action{Rank: 0, Kind: Compute, Instructions: 956140, Peer: -1},
			Action{Rank: 0, Kind: Send, Peer: 1, Bytes: 1240},
			Action{Rank: 0, Kind: IRecv, Peer: 2, Bytes: 880},
			Action{Rank: 0, Kind: Wait, Peer: -1},
		)
	}
	return actions
}

func BenchmarkParseLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ParseLine("p0 send p1 1240"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComputeLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ParseLine("p0 compute 956140"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("p0 compute 956140\np0 send p1 1240\np0 irecv p2 880\np0 wait\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(strings.NewReader(src))
		for {
			_, ok, err := rd.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

// BenchmarkTIBDecode measures compiled-trace ingestion on the same trace
// as BenchmarkReaderThroughput: one iteration reads the full 4000-action
// rank section (positioned read + checksum + varint decode), so the ns/op
// ratio against the text benchmark is the ingestion speedup.
func BenchmarkTIBDecode(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.tib")
	if err := WriteTIBFile(path, [][]Action{benchActions()}); err != nil {
		b.Fatal(err)
	}
	p, err := OpenTIB(path)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.SetBytes(int64(p.index[0].length))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := p.Rank(0)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, ok, err := st.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != 4000 {
			b.Fatalf("decoded %d actions, want 4000", n)
		}
	}
}

// BenchmarkTIBCompile measures the one-time compile cost the cache
// amortizes away.
func BenchmarkTIBCompile(b *testing.B) {
	actions := benchActions()
	path := filepath.Join(b.TempDir(), "bench.tib")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteTIBFile(path, [][]Action{actions}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	actions := benchActions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, actions); err != nil {
			b.Fatal(err)
		}
	}
}
