package trace

import (
	"bytes"
	"strings"
	"testing"
)

func BenchmarkParseLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ParseLine("p0 send p1 1240"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComputeLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ParseLine("p0 compute 956140"); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("p0 compute 956140\np0 send p1 1240\np0 irecv p2 880\np0 wait\n")
	}
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := NewReader(strings.NewReader(src))
		for {
			_, ok, err := rd.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	actions := make([]Action, 0, 4000)
	for i := 0; i < 1000; i++ {
		actions = append(actions,
			Action{Rank: 0, Kind: Compute, Instructions: 956140, Peer: -1},
			Action{Rank: 0, Kind: Send, Peer: 1, Bytes: 1240},
			Action{Rank: 0, Kind: IRecv, Peer: 2, Bytes: 880},
			Action{Rank: 0, Kind: Wait, Peer: -1},
		)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, actions); err != nil {
			b.Fatal(err)
		}
	}
}
