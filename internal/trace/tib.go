package trace

// TIB — the time-independent binary trace format. Text traces are cheap to
// acquire but expensive to replay: every scenario re-parses the same files,
// and the merged single-file layout is re-scanned once per rank, making
// ingestion O(ranks x file size). A .tib file is the compiled form of a
// whole trace set: a compact varint action encoding laid out as one
// contiguous section per rank behind an offset index, so Rank(r) seeks
// straight to its actions and decodes them with no text parsing.
//
// File layout (all fixed-width integers little-endian):
//
//	header (48 bytes):
//	  [4]byte  magic "TIB1"
//	  uint32   version (1 or 2; v2 adds the vector-collective and
//	           wait-set action kinds, every v1 record unchanged)
//	  uint32   rank count
//	  uint32   reserved (zero)
//	  [32]byte source key — SHA-256 over the source trace files'
//	           names, sizes, and mtimes; zero for standalone files
//	index (28 bytes per rank):
//	  uint64   section offset (absolute)
//	  uint64   section length (bytes)
//	  uint64   action count
//	  uint32   CRC-32 (IEEE) of the section bytes
//	uint32   CRC-32 (IEEE) of header+index
//	rank sections, back to back
//
// Every region is covered by a checksum, so truncated or bit-flipped files
// are reported as *TraceError — never decoded silently, never a panic.
//
// Action encoding, per action: one kind byte, the rank as a uvarint, then
// the kind's fields — peers and roots as uvarints, volumes (instructions or
// bytes) in a hybrid form: a uvarint whose low bit 0 means "integral value,
// shifted left one bit", while the single byte 0x01 announces a raw
// little-endian IEEE-754 float64 (fractional acquired volumes, and the v1
// recv's unknown size recorded as -1). Typical actions take 3-6 bytes
// against ~20 bytes of text.
//
// Version 2 appends four kinds: alltoallv and allgatherv carry a uvarint
// vector length followed by that many volumes (one per rank); waitsome
// carries its completion count as a uvarint; waitany has no fields.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
)

const (
	tibMagic = "TIB1"
	// tibVersion is the version written by the compiler. v2 extends v1 with
	// the vector-collective and wait-set kinds (varint-prefixed volume
	// vectors, a uvarint waitsome count); every v1 record encoding is
	// unchanged, so the reader accepts both versions.
	tibVersion    = 2
	tibMinVersion = 1
	tibHeaderSize = 48
	tibEntrySize  = 28
	// tibMaxRanks bounds the rank count a header may declare, so a
	// corrupted count cannot drive a huge index allocation.
	tibMaxRanks = 1 << 22
)

// TIBExt is the file extension of compiled binary traces.
const TIBExt = ".tib"

// TraceError reports a structurally invalid, truncated, or corrupted trace
// file. Replay surfaces it wrapped (core's replay error carries the rank),
// so callers can match it with errors.As.
type TraceError struct {
	// Path is the offending file, when known.
	Path string
	// Rank is the rank section being read, or -1 for file-level damage.
	Rank int
	// Err is the underlying cause.
	Err error
}

func (e *TraceError) Error() string {
	where := e.Path
	if where == "" {
		where = "trace"
	}
	if e.Rank >= 0 {
		return fmt.Sprintf("%s: rank %d: %v", where, e.Rank, e.Err)
	}
	return fmt.Sprintf("%s: %v", where, e.Err)
}

func (e *TraceError) Unwrap() error { return e.Err }

// ErrCorrupt is the sentinel cause of checksum and structure failures in
// compiled traces, matchable with errors.Is.
var ErrCorrupt = errors.New("corrupt TIB trace")

// ---------------------------------------------------------------------------
// Encoding

// appendVolume encodes a volume (instruction or byte count). Non-negative
// integral values below 2^62 take the compact uvarint path; everything else
// (fractional acquired volumes, the v1 recv's -1) is a 0x01 byte followed
// by the raw float64 bits.
func appendVolume(buf []byte, v float64) []byte {
	if v >= 0 && v < (1<<62) && math.Trunc(v) == v {
		return binary.AppendUvarint(buf, uint64(v)<<1)
	}
	buf = append(buf, 0x01)
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// appendAction encodes one action. Fields a kind does not carry are not
// stored: decoding canonicalizes them (Peer -1, volumes 0), exactly as the
// text parser does.
func appendAction(buf []byte, a *Action) []byte {
	buf = append(buf, byte(a.Kind))
	buf = binary.AppendUvarint(buf, uint64(a.Rank))
	switch a.Kind {
	case Compute:
		buf = appendVolume(buf, a.Instructions)
	case Send, ISend, Recv, IRecv:
		buf = binary.AppendUvarint(buf, uint64(a.Peer))
		buf = appendVolume(buf, a.Bytes)
	case Bcast, Reduce, Gather:
		buf = appendVolume(buf, a.Bytes)
		buf = binary.AppendUvarint(buf, uint64(a.Root))
	case AllReduce, AllToAll, AllGather:
		buf = appendVolume(buf, a.Bytes)
	case AllToAllV, AllGatherV:
		buf = binary.AppendUvarint(buf, uint64(len(a.Volumes)))
		for _, v := range a.Volumes {
			buf = appendVolume(buf, v)
		}
	case WaitSome:
		buf = binary.AppendUvarint(buf, uint64(a.Count))
	}
	return buf
}

// tibSection is one rank's encoded actions.
type tibSection struct {
	data  []byte
	count uint64
}

// encodeStream drains one rank's stream into a section. Each action is
// validated against the communicator size before encoding, so a .tib file
// only ever holds actions replay can execute.
func encodeStream(st Stream, world int) (tibSection, error) {
	var sec tibSection
	for {
		a, ok, err := st.Next()
		if err != nil {
			return tibSection{}, err
		}
		if !ok {
			return sec, nil
		}
		if err := a.ValidateIn(world); err != nil {
			return tibSection{}, err
		}
		sec.data = appendAction(sec.data, &a)
		sec.count++
	}
}

// compileSections encodes every rank of src concurrently on a worker pool.
// workers < 1 selects GOMAXPROCS. This is where the merged single-file
// layout's O(ranks x file size) scan cost is paid once, in parallel,
// instead of once per replay.
func compileSections(src Provider, workers int) ([]tibSection, error) {
	n := src.NumRanks()
	if n <= 0 {
		return nil, fmt.Errorf("trace: compiling a provider with no ranks")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	secs := make([]tibSection, n)
	errs := make([]error, n)
	ranks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ranks {
				st, err := src.Rank(r)
				if err != nil {
					errs[r] = err
					continue
				}
				secs[r], errs[r] = encodeStream(st, n)
				if c, ok := st.(io.Closer); ok {
					c.Close()
				}
			}
		}()
	}
	for r := 0; r < n; r++ {
		ranks <- r
	}
	close(ranks)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trace: compiling rank %d: %w", r, err)
		}
	}
	return secs, nil
}

// writeTIB assembles header, index, and sections and writes them to path
// atomically (temp file + rename), so a crashed compile never leaves a
// half-written cache behind.
func writeTIB(path string, key [32]byte, secs []tibSection) error {
	n := len(secs)
	indexEnd := tibHeaderSize + n*tibEntrySize
	head := make([]byte, indexEnd, indexEnd+4)
	copy(head, tibMagic)
	binary.LittleEndian.PutUint32(head[4:], tibVersion)
	binary.LittleEndian.PutUint32(head[8:], uint32(n))
	copy(head[16:48], key[:])
	offset := uint64(indexEnd + 4)
	for r, sec := range secs {
		e := head[tibHeaderSize+r*tibEntrySize:]
		binary.LittleEndian.PutUint64(e[0:], offset)
		binary.LittleEndian.PutUint64(e[8:], uint64(len(sec.data)))
		binary.LittleEndian.PutUint64(e[16:], sec.count)
		binary.LittleEndian.PutUint32(e[24:], crc32.ChecksumIEEE(sec.data))
		offset += uint64(len(sec.data))
	}
	head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(head))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(head); err != nil {
		tmp.Close()
		return err
	}
	for _, sec := range secs {
		if _, err := tmp.Write(sec.data); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteTIBFile compiles per-rank action slices directly into a standalone
// .tib file (no source key). tracegen's -tib mode uses it to skip the text
// intermediate entirely.
func WriteTIBFile(path string, perRank [][]Action) error {
	secs, err := compileSections(NewMemProvider(perRank), 0)
	if err != nil {
		return err
	}
	return writeTIB(path, [32]byte{}, secs)
}

// Compile encodes any provider into a .tib file with the given source key.
func Compile(src Provider, path string, key [32]byte, workers int) error {
	secs, err := compileSections(src, workers)
	if err != nil {
		return err
	}
	return writeTIB(path, key, secs)
}

// ---------------------------------------------------------------------------
// Decoding

type tibEntry struct {
	offset, length, count uint64
	crc                   uint32
}

// CompiledProvider serves ranks of a compiled .tib trace. Rank(r) reads the
// rank's section with one positioned read — no scan of other ranks' data —
// verifies its checksum, and streams decoded actions from memory. It is
// safe for concurrent Rank calls (the batch runner replays scenarios in
// parallel) and holds one file descriptor until Close.
type CompiledProvider struct {
	path    string
	f       *os.File
	key     [32]byte
	version uint32
	index   []tibEntry
}

func tibFileError(path string, rank int, err error) *TraceError {
	return &TraceError{Path: path, Rank: rank, Err: err}
}

// OpenTIB opens and validates a compiled trace: magic, version, and the
// header/index checksum are checked here; each section's checksum is
// checked when the rank is read.
func OpenTIB(path string) (*CompiledProvider, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p, err := readTIBHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func readTIBHeader(f *os.File, path string) (*CompiledProvider, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < tibHeaderSize+4 {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: file too short (%d bytes)", ErrCorrupt, size))
	}
	head := make([]byte, tibHeaderSize)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, tibFileError(path, -1, err)
	}
	if string(head[:4]) != tibMagic {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head[:4]))
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version < tibMinVersion || version > tibVersion {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version))
	}
	n := binary.LittleEndian.Uint32(head[8:])
	if n == 0 || n > tibMaxRanks {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: implausible rank count %d", ErrCorrupt, n))
	}
	indexEnd := int64(tibHeaderSize) + int64(n)*tibEntrySize
	if size < indexEnd+4 {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: truncated index", ErrCorrupt))
	}
	headIndex := make([]byte, indexEnd+4)
	if _, err := f.ReadAt(headIndex, 0); err != nil {
		return nil, tibFileError(path, -1, err)
	}
	wantCRC := binary.LittleEndian.Uint32(headIndex[indexEnd:])
	if got := crc32.ChecksumIEEE(headIndex[:indexEnd]); got != wantCRC {
		return nil, tibFileError(path, -1, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt))
	}
	p := &CompiledProvider{path: path, f: f, version: version, index: make([]tibEntry, n)}
	copy(p.key[:], headIndex[16:48])
	dataStart := uint64(indexEnd + 4)
	for r := range p.index {
		e := headIndex[tibHeaderSize+r*tibEntrySize:]
		ent := tibEntry{
			offset: binary.LittleEndian.Uint64(e[0:]),
			length: binary.LittleEndian.Uint64(e[8:]),
			count:  binary.LittleEndian.Uint64(e[16:]),
			crc:    binary.LittleEndian.Uint32(e[24:]),
		}
		if ent.offset < dataStart || ent.offset+ent.length < ent.offset ||
			ent.offset+ent.length > uint64(size) || ent.count > ent.length {
			return nil, tibFileError(path, r, fmt.Errorf("%w: index entry out of bounds", ErrCorrupt))
		}
		p.index[r] = ent
	}
	return p, nil
}

// NumRanks implements Provider.
func (p *CompiledProvider) NumRanks() int { return len(p.index) }

// SourceKey returns the source-trace fingerprint recorded at compile time
// (zero for standalone files).
func (p *CompiledProvider) SourceKey() [32]byte { return p.key }

// Version returns the format version recorded in the file header.
func (p *CompiledProvider) Version() int { return int(p.version) }

// Rank implements Provider: one ReadAt of the rank's section, a checksum
// verification, then in-memory varint decoding.
func (p *CompiledProvider) Rank(rank int) (Stream, error) {
	if rank < 0 || rank >= len(p.index) {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", rank, len(p.index))
	}
	ent := p.index[rank]
	data := make([]byte, ent.length)
	if _, err := p.f.ReadAt(data, int64(ent.offset)); err != nil {
		return nil, tibFileError(p.path, rank, err)
	}
	if got := crc32.ChecksumIEEE(data); got != ent.crc {
		return nil, tibFileError(p.path, rank, fmt.Errorf("%w: section checksum mismatch", ErrCorrupt))
	}
	maxKind := maxKindV1
	if p.version >= 2 {
		maxKind = maxKindV2
	}
	return &tibStream{path: p.path, rank: rank, buf: data, remaining: ent.count,
		maxKind: maxKind, world: len(p.index)}, nil
}

// Close releases the underlying file. Streams already returned by Rank keep
// working: they hold their section in memory.
func (p *CompiledProvider) Close() error { return p.f.Close() }

// tibStream decodes one rank section from memory.
type tibStream struct {
	path      string
	rank      int
	buf       []byte
	pos       int
	remaining uint64
	maxKind   Kind // highest kind the file's format version may carry
	world     int  // rank count, for communicator-sized validation
}

func (s *tibStream) fail(format string, args ...any) (Action, bool, error) {
	return Action{}, false, tibFileError(s.path, s.rank, fmt.Errorf("%w: offset %d: %s", ErrCorrupt, s.pos, fmt.Sprintf(format, args...)))
}

func (s *tibStream) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(s.buf[s.pos:])
	if n <= 0 {
		return 0, false
	}
	s.pos += n
	return v, true
}

func (s *tibStream) volume() (float64, bool) {
	v, ok := s.uvarint()
	if !ok {
		return 0, false
	}
	if v&1 == 0 {
		return float64(v >> 1), true
	}
	if v != 1 || s.pos+8 > len(s.buf) {
		return 0, false
	}
	bits := binary.LittleEndian.Uint64(s.buf[s.pos:])
	s.pos += 8
	return math.Float64frombits(bits), true
}

// Next implements Stream. The section checksum was verified when the
// stream was opened, so the per-field checks here are pure defense; they
// turn any decoder desync into a *TraceError rather than a panic.
func (s *tibStream) Next() (Action, bool, error) {
	if s.remaining == 0 {
		if s.pos != len(s.buf) {
			return s.fail("%d trailing bytes after last action", len(s.buf)-s.pos)
		}
		return Action{}, false, nil
	}
	if s.pos >= len(s.buf) {
		return s.fail("section exhausted with %d actions missing", s.remaining)
	}
	kind := Kind(s.buf[s.pos])
	s.pos++
	if kind < Init || kind > s.maxKind {
		return s.fail("invalid action kind %d", int(kind))
	}
	rank, ok := s.uvarint()
	if !ok || rank > math.MaxInt32 {
		return s.fail("bad rank field")
	}
	a := Action{Rank: int(rank), Kind: kind, Peer: -1}
	switch kind {
	case Compute:
		if a.Instructions, ok = s.volume(); !ok {
			return s.fail("bad compute volume")
		}
	case Send, ISend, Recv, IRecv:
		peer, ok := s.uvarint()
		if !ok || peer > math.MaxInt32 {
			return s.fail("bad peer field")
		}
		a.Peer = int(peer)
		if a.Bytes, ok = s.volume(); !ok {
			return s.fail("bad message size")
		}
	case Bcast, Reduce, Gather:
		if a.Bytes, ok = s.volume(); !ok {
			return s.fail("bad message size")
		}
		root, ok := s.uvarint()
		if !ok || root > math.MaxInt32 {
			return s.fail("bad root field")
		}
		a.Root = int(root)
	case AllReduce, AllToAll, AllGather:
		if a.Bytes, ok = s.volume(); !ok {
			return s.fail("bad message size")
		}
	case AllToAllV, AllGatherV:
		n, ok := s.uvarint()
		if !ok || n == 0 || n > tibMaxRanks {
			return s.fail("bad volume-vector length")
		}
		if uint64(len(s.buf)-s.pos) < n {
			// Each volume takes at least one byte; reject before allocating
			// a vector a corrupted length field asked for.
			return s.fail("volume vector overruns section")
		}
		a.Volumes = make([]float64, n)
		for i := range a.Volumes {
			if a.Volumes[i], ok = s.volume(); !ok {
				return s.fail("bad volume %d of %d", i, n)
			}
		}
	case WaitSome:
		cnt, ok := s.uvarint()
		if !ok || cnt == 0 || cnt > math.MaxInt32 {
			return s.fail("bad waitsome count")
		}
		a.Count = int(cnt)
	}
	if err := a.ValidateIn(s.world); err != nil {
		return Action{}, false, tibFileError(s.path, s.rank, fmt.Errorf("%w: offset %d: %v", ErrCorrupt, s.pos, err))
	}
	s.remaining--
	return a, true, nil
}

// ---------------------------------------------------------------------------
// Cache

// SniffTIB reports whether path is a compiled .tib trace (by magic, not
// extension). It is how the scenario layer accepts a .tib anywhere a
// trace-description file is expected.
func SniffTIB(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [4]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == tibMagic
}

// sourceKey fingerprints the text trace set a cache was compiled from: the
// format version, the rank count, and each source file's base name, size,
// and mtime. Editing, regenerating, or renaming any source file changes
// the key and invalidates the cache.
func sourceKey(files []string, nranks int) ([32]byte, error) {
	h := sha256.New()
	fmt.Fprintf(h, "tib:%d:%d\n", tibVersion, nranks)
	for _, file := range files {
		st, err := os.Stat(file)
		if err != nil {
			return [32]byte{}, err
		}
		fmt.Fprintf(h, "%s:%d:%d\n", filepath.Base(file), st.Size(), st.ModTime().UnixNano())
	}
	var key [32]byte
	h.Sum(key[:0])
	return key, nil
}

// CompileDescription compiles the trace set named by a description file —
// merged or per-rank, folded or plain — into a sibling cache at
// descPath+".tib". A cache whose recorded source key still matches the
// current files is reused untouched; rebuilt reports whether a compile
// actually ran. nranks is the merged-layout rank count (as in
// LoadDescription); workers < 1 selects GOMAXPROCS.
func CompileDescription(descPath string, nranks, workers int) (tibPath string, rebuilt bool, err error) {
	fp, err := LoadDescription(descPath, nranks)
	if err != nil {
		return "", false, err
	}
	key, err := sourceKey(fp.files, fp.nranks)
	if err != nil {
		return "", false, err
	}
	tibPath = descPath + TIBExt
	if cached, err := OpenTIB(tibPath); err == nil {
		match := cached.SourceKey() == key && cached.NumRanks() == fp.nranks
		cached.Close()
		if match {
			return tibPath, false, nil
		}
	}
	// Fail fast when the cache directory is not writable (read-only trace
	// stores are common): probing costs one syscall, while discovering it
	// after encoding would waste a full parse of the trace set — per
	// scenario, in a sweep falling back to text every time.
	probe, err := os.CreateTemp(filepath.Dir(tibPath), filepath.Base(tibPath)+".probe*")
	if err != nil {
		return "", false, fmt.Errorf("trace: cache directory not writable: %w", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	if err := Compile(fp, tibPath, key, workers); err != nil {
		return "", false, err
	}
	return tibPath, true, nil
}

// DescriptionEntries returns how many trace files a description file
// lists. A single entry means the merged layout (all ranks in one file)
// unless the trace really has one rank — callers that cannot infer a rank
// count elsewhere (tireplay -compile) use this to demand an explicit one
// instead of silently compiling a wrong single-rank cache.
func DescriptionEntries(descPath string) (int, error) {
	fp, err := LoadDescription(descPath, 0)
	if err != nil {
		return 0, err
	}
	return len(fp.files), nil
}

// OpenDescriptionCached is the transparent ingestion path the scenario
// layer uses: ensure a fresh compiled cache for the description file, then
// open it. The returned provider must be Closed by the caller.
func OpenDescriptionCached(descPath string, nranks, workers int) (*CompiledProvider, error) {
	path, _, err := CompileDescription(descPath, nranks, workers)
	if err != nil {
		return nil, err
	}
	return OpenTIB(path)
}
