package trace

// TAU profile importer. A TAU profile folder holds one "profile.<rank>.0.0"
// file per rank:
//
//	42 templated_functions_MULTI_TIME
//	# Name Calls Subrs Excl Incl ProfileCalls
//	".TAU application" 1 68 1234 987654 0 GROUP="TAU_DEFAULT"
//	"MPI_Allreduce()" 250 0 34567 34567 0 GROUP="MPI"
//	...
//	2 userevents
//	# eventname numevents max min mean sumsqr
//	"Message size for all-reduce" 250 40 40 40 0
//
// Unlike a DUMPI dump, a profile is an unordered aggregate — per-function
// call counts and times, not an event sequence — so only order-insensitive
// actions can be reconstructed. The importer synthesizes a representative
// per-rank stream: init, one compute action carrying the rank's non-MPI
// exclusive time (scaled by the instruction rate), then each profiled
// collective repeated its call count with the mean payload from the
// matching "Message size ..." user event (zero when the profile recorded no
// sizes), and finalize. Point-to-point calls cannot be paired up from
// aggregates and are folded into a synthetic alltoall carrying the rank's
// mean send size, preserving total volume; collectives — which SPMD codes
// call symmetrically, satisfying replay's participation check — are
// reconstructed faithfully.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func init() {
	RegisterImporter("tau", sniffTAU, openTAU)
}

// tauProfilePat matches TAU's per-rank profile files: profile.<node>.<context>.<thread>.
var tauProfilePat = regexp.MustCompile(`^profile\.(\d+)\.0\.0$`)

func tauRankFiles(dir string) (map[int]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := make(map[int]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := tauProfilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		rank, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		files[rank] = filepath.Join(dir, e.Name())
	}
	return files, nil
}

func sniffTAU(path string) bool {
	st, err := os.Stat(path)
	if err != nil || !st.IsDir() {
		return false
	}
	files, err := tauRankFiles(path)
	if err != nil || len(files) == 0 {
		return false
	}
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return false
		}
		sc := bufio.NewScanner(f)
		ok := sc.Scan() && strings.Contains(sc.Text(), "templated_functions")
		f.Close()
		return ok
	}
	return false
}

func openTAU(path string, opts ImportOptions) (Provider, error) {
	byRank, err := tauRankFiles(path)
	if err != nil {
		return nil, err
	}
	if len(byRank) == 0 {
		return nil, fmt.Errorf("trace: tau: no profile.<rank>.0.0 files in %s", path)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	files := make([]string, len(ranks))
	for i, r := range ranks {
		if r != i {
			return nil, fmt.Errorf("trace: tau: profiles not contiguous: missing rank %d in %s", i, path)
		}
		files[i] = byRank[r]
	}
	perRank := make([][]Action, len(files))
	for rank, file := range files {
		prof, err := parseTAUProfile(file)
		if err != nil {
			return nil, &TraceError{Path: file, Rank: rank, Err: err}
		}
		perRank[rank] = prof.synthesize(rank, len(files), opts.rate())
	}
	return NewMemProvider(perRank), nil
}

// tauFn is one function row of a profile.
type tauFn struct {
	calls int
	excl  float64 // exclusive microseconds
	mpi   bool
}

// tauProfile is the parsed aggregate of one rank.
type tauProfile struct {
	fns    map[string]tauFn  // by bare name ("MPI_Allreduce")
	events map[string]tauEvt // user events by lowercased name
}

type tauEvt struct {
	num  int
	mean float64
}

var tauFnPat = regexp.MustCompile(`^"([^"]+)"\s+(\d+)\s+(\d+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)`)
var tauEvtPat = regexp.MustCompile(`^"([^"]+)"\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)`)

func parseTAUProfile(path string) (*tauProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	if !sc.Scan() || !strings.Contains(sc.Text(), "templated_functions") {
		return nil, fmt.Errorf("tau: not a profile file (missing templated_functions header)")
	}
	p := &tauProfile{fns: make(map[string]tauFn), events: make(map[string]tauEvt)}
	inEvents := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "userevents") && !strings.HasPrefix(line, `"`) {
			inEvents = true
			continue
		}
		if strings.Contains(line, "aggregates") && !strings.HasPrefix(line, `"`) {
			continue
		}
		if inEvents {
			if m := tauEvtPat.FindStringSubmatch(line); m != nil {
				num, _ := strconv.ParseFloat(m[2], 64)
				mean, _ := strconv.ParseFloat(m[5], 64)
				p.events[strings.ToLower(m[1])] = tauEvt{num: int(num), mean: mean}
			}
			continue
		}
		if m := tauFnPat.FindStringSubmatch(line); m != nil {
			name := strings.TrimSuffix(strings.TrimSpace(m[1]), "()")
			calls, _ := strconv.Atoi(m[2])
			excl, _ := strconv.ParseFloat(m[4], 64)
			p.fns[name] = tauFn{calls: calls, excl: excl,
				mpi: strings.HasPrefix(name, "MPI_") || strings.Contains(line, `GROUP="MPI"`)}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// meanSize looks up the mean payload of a "Message size for <op>" user
// event (TAU's -PROFILEMSGSIZE events), zero when the profile has none.
func (p *tauProfile) meanSize(op string) float64 {
	for name, evt := range p.events {
		if strings.Contains(name, "message size") && strings.Contains(name, op) {
			return evt.mean
		}
	}
	return 0
}

// tauCollectives maps profiled MPI collectives onto action kinds and the
// user-event keyword their payload is recorded under.
var tauCollectives = []struct {
	fn    string
	kind  Kind
	event string
}{
	{"MPI_Barrier", Barrier, ""},
	{"MPI_Bcast", Bcast, "broadcast"},
	{"MPI_Reduce", Reduce, "reduce"},
	{"MPI_Allreduce", AllReduce, "all-reduce"},
	{"MPI_Alltoall", AllToAll, "all-to-all"},
	{"MPI_Gather", Gather, "gather"},
	{"MPI_Allgather", AllGather, "all-gather"},
}

// synthesize builds the representative action stream of one rank.
func (p *tauProfile) synthesize(rank, world int, rate float64) []Action {
	actions := []Action{{Rank: rank, Kind: Init, Peer: -1}}
	// Non-MPI exclusive time (microseconds) becomes one compute volume.
	var usec float64
	for _, fn := range p.fns {
		if !fn.mpi {
			usec += fn.excl
		}
	}
	if instr := usec / 1e6 * rate; instr > 0 {
		actions = append(actions, Action{Rank: rank, Kind: Compute, Peer: -1, Instructions: instr})
	}
	// Point-to-point aggregates cannot be paired into send/recv sequences;
	// fold the total sent volume into one alltoall so the traffic (and its
	// contention) survives, symmetrically on every rank.
	sends := p.fns["MPI_Send"].calls + p.fns["MPI_Isend"].calls
	if sends > 0 {
		if mean := p.meanSize("sen"); mean > 0 && world > 1 {
			total := float64(sends) * mean
			actions = append(actions, Action{Rank: rank, Kind: AllToAll, Peer: -1,
				Bytes: total / float64(world-1)})
		}
	}
	for _, c := range tauCollectives {
		fn, ok := p.fns[c.fn]
		if !ok || fn.calls == 0 {
			continue
		}
		a := Action{Rank: rank, Kind: c.kind, Peer: -1}
		if c.event != "" {
			a.Bytes = p.meanSize(c.event)
		}
		for i := 0; i < fn.calls; i++ {
			actions = append(actions, a)
		}
	}
	return append(actions, Action{Rank: rank, Kind: Finalize, Peer: -1})
}
