package trace

import "fmt"

// Stats summarizes the volumes in a trace, per rank and overall. The
// acquisition tools print it so users can sanity-check traces before replay,
// and the experiments use the instruction totals to measure counter
// discrepancies (Figures 1/2/4/5 of the paper).
type Stats struct {
	Ranks int
	// ByKind counts actions per kind.
	ByKind map[Kind]int64
	// Instructions is the total compute volume.
	Instructions float64
	// InstructionsByRank is indexed by rank.
	InstructionsByRank []float64
	// P2PBytes is the total point-to-point volume (sends only, to avoid
	// double counting).
	P2PBytes float64
	// P2PMessages counts sends and isends.
	P2PMessages int64
	// EagerMessages counts messages strictly below threshold (see Collect).
	EagerMessages int64
	// CollectiveBytes is the per-rank payload summed over collective calls.
	CollectiveBytes float64
}

// Collect gathers statistics over per-rank streams obtained from p.
// eagerThreshold classifies messages (the paper uses 64 KiB).
func Collect(p Provider, eagerThreshold float64) (*Stats, error) {
	s := &Stats{
		Ranks:              p.NumRanks(),
		ByKind:             make(map[Kind]int64),
		InstructionsByRank: make([]float64, p.NumRanks()),
	}
	for rank := 0; rank < p.NumRanks(); rank++ {
		st, err := p.Rank(rank)
		if err != nil {
			return nil, err
		}
		for {
			a, ok, err := st.Next()
			if err != nil {
				return nil, fmt.Errorf("trace: rank %d: %w", rank, err)
			}
			if !ok {
				break
			}
			s.ByKind[a.Kind]++
			switch a.Kind {
			case Compute:
				s.Instructions += a.Instructions
				s.InstructionsByRank[a.Rank%len(s.InstructionsByRank)] += a.Instructions
			case Send, ISend:
				s.P2PBytes += a.Bytes
				s.P2PMessages++
				if a.Bytes < eagerThreshold {
					s.EagerMessages++
				}
			case Bcast, Reduce, AllReduce, AllToAll, Gather, AllGather:
				s.CollectiveBytes += a.Bytes
			case AllToAllV, AllGatherV:
				for _, v := range a.Volumes {
					s.CollectiveBytes += v
				}
			}
		}
	}
	return s, nil
}

// Validate checks cross-rank consistency of a full trace: every send must
// have a matching receive on the peer (and vice versa), and collective
// participation counts must agree across ranks. It streams each rank once.
func Validate(p Provider) error {
	n := p.NumRanks()
	// sendCount[src][dst] counts messages; recvCount[dst][src] likewise.
	sendCount := make(map[[2]int]int64)
	recvCount := make(map[[2]int]int64)
	collCount := make(map[Kind][]int64)
	for rank := 0; rank < n; rank++ {
		st, err := p.Rank(rank)
		if err != nil {
			return err
		}
		for {
			a, ok, err := st.Next()
			if err != nil {
				return fmt.Errorf("trace: rank %d: %w", rank, err)
			}
			if !ok {
				break
			}
			// ValidateIn also catches roots and volume-vector lengths
			// outside the communicator (the old per-action Validate only
			// rejected negative roots).
			if err := a.ValidateIn(n); err != nil {
				return err
			}
			switch a.Kind {
			case Send, ISend:
				sendCount[[2]int{a.Rank, a.Peer}]++
			case Recv, IRecv:
				recvCount[[2]int{a.Peer, a.Rank}]++
			default:
				if a.Kind.IsCollective() {
					if collCount[a.Kind] == nil {
						collCount[a.Kind] = make([]int64, n)
					}
					collCount[a.Kind][rank]++
				}
			}
		}
	}
	for pair, ns := range sendCount {
		if nr := recvCount[pair]; nr != ns {
			return fmt.Errorf("trace: p%d sends %d message(s) to p%d but p%d posts %d receive(s)",
				pair[0], ns, pair[1], pair[1], nr)
		}
	}
	for pair, nr := range recvCount {
		if _, ok := sendCount[pair]; !ok && nr > 0 {
			return fmt.Errorf("trace: p%d posts %d receive(s) from p%d with no matching send",
				pair[1], nr, pair[0])
		}
	}
	for kind, counts := range collCount {
		for r := 1; r < n; r++ {
			if counts[r] != counts[0] {
				return fmt.Errorf("trace: collective %s called %d time(s) on p0 but %d on p%d",
					kind, counts[0], counts[r], r)
			}
		}
	}
	return nil
}
