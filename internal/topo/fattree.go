package topo

import "fmt"

// FatTree is a k-ary n-tree (Petrini & Vanneschi): radix^levels hosts under
// `levels` tiers of radix^(levels-1) switches, every switch with radix up
// and radix down ports. Host h (an n-digit base-k number) hangs off the
// tier-1 switch labelled h/k; a tier-l switch labelled w (n-1 base-k
// digits) connects upward to exactly the tier-(l+1) switches that agree
// with w on every digit except digit l-1.
//
// Routing is deterministic destination-based up*/down* ("d-mod-k" style):
// the ascent from src rewrites the switch label's low digits to the
// destination's, so by the nearest-common-ancestor tier the path stands on
// an ancestor of dst and descends along the same label. All flows toward
// one destination converge on one ancestor set — the in-cast tree real
// deterministic fat-tree routing produces — while flows to destinations
// differing in a digit spread across distinct cables.
type FatTree struct {
	radix, levels int
	hosts         int   // radix^levels
	tier          int   // switches per tier: radix^(levels-1)
	pow           []int // pow[i] = radix^i, i in 0..levels
}

// NewFatTree builds a k-ary n-tree shape. Field names in errors refer to
// the platform.Spec JSON fields that carry the values.
func NewFatTree(radix, levels int) (*FatTree, error) {
	if radix < 2 {
		return nil, fmt.Errorf(`topo: fat tree "radix" must be at least 2, got %d`, radix)
	}
	if levels < 1 {
		return nil, fmt.Errorf(`topo: fat tree "levels" must be at least 1, got %d`, levels)
	}
	hosts := 1
	for i := 0; i < levels; i++ {
		hosts *= radix
		if hosts > maxHosts {
			return nil, fmt.Errorf(`topo: fat tree "radix"^"levels" = %d^%d exceeds the %d-host limit`, radix, levels, maxHosts)
		}
	}
	t := &FatTree{radix: radix, levels: levels, hosts: hosts, tier: hosts / radix}
	t.pow = make([]int, levels+1)
	t.pow[0] = 1
	for i := 1; i <= levels; i++ {
		t.pow[i] = t.pow[i-1] * radix
	}
	return t, nil
}

// Hosts implements Topology.
func (t *FatTree) Hosts() int { return t.hosts }

// Radix returns k and Levels n of the k-ary n-tree.
func (t *FatTree) Radix() int  { return t.radix }
func (t *FatTree) Levels() int { return t.levels }

// cable returns the up-direction link id of the cable crossing tier
// boundary l (tiers l and l+1, l in 1..levels-1) between the lower switch
// labelled w and the upper switch whose free digit (digit l-1) is x. The
// down direction is cable(...)+1. Each boundary carries tier*radix =
// radix^levels cables.
func (t *FatTree) cable(l, w, x int) int {
	return 2*t.hosts + (((l-1)*t.tier+w)*t.radix+x)*2
}

// Links implements Topology: 2*hosts NIC links followed, boundary by
// boundary, by the up/down pair of every switch cable — 2*hosts*levels
// links in total.
func (t *FatTree) Links() []LinkDesc {
	descs := appendHostLinks(make([]LinkDesc, 0, 2*t.hosts*t.levels), t.hosts)
	for l := 1; l < t.levels; l++ {
		for w := 0; w < t.tier; w++ {
			for x := 0; x < t.radix; x++ {
				name := fmt.Sprintf("l%d-w%d-x%d", l, w, x)
				descs = append(descs,
					LinkDesc{Name: name + "-up", Class: ClassFabric},
					LinkDesc{Name: name + "-down", Class: ClassFabric},
				)
			}
		}
	}
	return descs
}

// digit returns base-radix digit i of v.
func (t *FatTree) digit(v, i int) int { return (v / t.pow[i]) % t.radix }

// AppendRoute implements Topology. The route climbs from src's tier-1
// switch to the nearest-common-ancestor tier L (L-1 cables, each rewriting
// one label digit to the destination's), then descends L-1 cables along
// the now-exact ancestor label of dst; with the two NIC links that is 2L
// links, at most 2*levels.
func (t *FatTree) AppendRoute(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	// Nearest common ancestor tier: one above the highest differing digit.
	diff := 0
	for i, s, d := 0, src, dst; s != d; i++ {
		if s%t.radix != d%t.radix {
			diff = i
		}
		s, d = s/t.radix, d/t.radix
	}
	nca := diff + 1

	buf = append(buf, hostUp(src))
	w := src / t.radix
	// Ascent: crossing boundary l frees label digit l-1; set it to the
	// destination's host digit l so the label converges on dst's ancestry.
	for l := 1; l < nca; l++ {
		x := t.digit(dst, l)
		buf = append(buf, t.cable(l, w, x))
		w += (x - t.digit(w, l-1)) * t.pow[l-1]
	}
	// The ascent rewrote digits 0..nca-2 to dst's and the rest already
	// agreed, so w now equals dst's tier-1 label: descend straight down it.
	for l := nca - 1; l >= 1; l-- {
		buf = append(buf, t.cable(l, w, t.digit(w, l-1))+1)
	}
	return append(buf, hostDown(dst))
}

var _ Topology = (*FatTree)(nil)
