// Package topo implements the structured interconnect topologies real HPC
// machines use — k-ary fat trees, dragonflies, and 2D/3D tori — as pure
// routing graphs. A Topology owns a dense integer id space of hosts and
// directional links and computes deterministic routes as link-id sequences
// appended into a caller-owned buffer, so the hot routing path allocates
// nothing. The platform package materializes a Topology into sim.Host and
// sim.Link objects and adapts its routes to sim.RouterInto; this package
// deliberately knows nothing about the simulation kernel, which keeps the
// routing algorithms independently property-testable (symmetry, loop
// freedom, hop bounds, physical adjacency).
//
// All routing here is deterministic per (src, dst) pair: the same pair
// always yields the same link sequence, which is what makes whole replays
// bit-reproducible across schedulers and backends. Where a real machine
// would pick among paths adaptively (dragonfly), the choice is derived from
// a symmetric hash of the pair, i.e. per flow rather than per packet.
package topo

import "fmt"

// Class partitions a topology's links into the families that platform
// configuration assigns bandwidth and latency to.
type Class int

const (
	// ClassHost links attach an endpoint to its first switch or router (the
	// NIC cable): every route starts on the source's up link and ends on
	// the destination's down link, so same-endpoint flows contend here.
	ClassHost Class = iota
	// ClassFabric links join switches of the interconnect proper: fat-tree
	// level-to-level cables and torus neighbor links.
	ClassFabric
	// ClassLocal links join routers inside one dragonfly group.
	ClassLocal
	// ClassGlobal links join dragonfly groups (the long optical cables).
	ClassGlobal
)

func (c Class) String() string {
	switch c {
	case ClassHost:
		return "host"
	case ClassFabric:
		return "fabric"
	case ClassLocal:
		return "local"
	case ClassGlobal:
		return "global"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// LinkDesc describes one directional link of a topology: a stable
// human-readable name (unique within the topology) and the class that
// selects its bandwidth/latency parameters.
type LinkDesc struct {
	Name  string
	Class Class
}

// Topology is a routable interconnect: hosts 0..Hosts()-1 joined by the
// directional links of Links(), with a deterministic route between every
// ordered host pair.
type Topology interface {
	// Hosts returns the number of endpoints.
	Hosts() int
	// Links enumerates every directional link; the slice index is the link
	// id AppendRoute emits.
	Links() []LinkDesc
	// AppendRoute appends the link ids of the route from src to dst (two
	// distinct, in-range hosts) to buf and returns the extended buffer. The
	// sequence always starts with src's host up link and ends with dst's
	// host down link, and never repeats a link.
	AppendRoute(buf []int, src, dst int) []int
}

// pairMix hashes an unordered host pair into 64 well-mixed bits
// (splitmix64 finalizer). It is symmetric — pairMix(a,b) == pairMix(b,a) —
// so per-flow routing decisions derived from it (dragonfly path selection)
// give forward and reverse flows mirrored paths.
func pairMix(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(a)<<32 | uint64(b)&0xffffffff
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// maxHosts bounds topology sizes so malformed shapes (huge radices, dim
// products) are rejected with an error instead of exhausting memory.
const maxHosts = 1 << 22

// hostUp and hostDown are the link ids of an endpoint's NIC links; every
// topology here lays its id space out with the 2*Hosts() host links first.
func hostUp(h int) int   { return 2 * h }
func hostDown(h int) int { return 2*h + 1 }

// appendHostLinks emits the shared host-link prefix of a topology's link
// table: up and down per endpoint, in id order.
func appendHostLinks(descs []LinkDesc, hosts int) []LinkDesc {
	for h := 0; h < hosts; h++ {
		descs = append(descs,
			LinkDesc{Name: fmt.Sprintf("h%d-up", h), Class: ClassHost},
			LinkDesc{Name: fmt.Sprintf("h%d-down", h), Class: ClassHost},
		)
	}
	return descs
}
