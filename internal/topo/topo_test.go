package topo

import (
	"fmt"
	"testing"
)

// checkLinkTable validates the Links() table itself: unique names, ids in
// range, and the host-link prefix layout every topology shares.
func checkLinkTable(t *testing.T, tp Topology) []LinkDesc {
	t.Helper()
	descs := tp.Links()
	seen := make(map[string]bool, len(descs))
	for i, d := range descs {
		if d.Name == "" {
			t.Fatalf("link %d has empty name", i)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate link name %q", d.Name)
		}
		seen[d.Name] = true
	}
	for h := 0; h < tp.Hosts(); h++ {
		if descs[hostUp(h)].Class != ClassHost || descs[hostDown(h)].Class != ClassHost {
			t.Fatalf("host %d NIC links not ClassHost", h)
		}
	}
	return descs
}

// checkRoute validates the invariants shared by every topology: the route
// exists for every distinct pair, starts at src's up link, ends at dst's
// down link, stays in range, never repeats a link (loop freedom), and is
// hop-symmetric with the reverse route. walk additionally verifies physical
// adjacency hop by hop and that the path really ends at dst. It returns the
// route for topology-specific bounds.
func checkRoute(t *testing.T, tp Topology, src, dst int, walk func(t *testing.T, route []int, src, dst int)) []int {
	t.Helper()
	route := tp.AppendRoute(nil, src, dst)
	if len(route) < 2 {
		t.Fatalf("route %d->%d too short: %v", src, dst, route)
	}
	if route[0] != hostUp(src) || route[len(route)-1] != hostDown(dst) {
		t.Fatalf("route %d->%d does not span NIC links: %v", src, dst, route)
	}
	nlinks := len(tp.Links())
	seen := make(map[int]bool, len(route))
	for _, id := range route {
		if id < 0 || id >= nlinks {
			t.Fatalf("route %d->%d has out-of-range link %d", src, dst, id)
		}
		if seen[id] {
			t.Fatalf("route %d->%d repeats link %d: %v", src, dst, id, route)
		}
		seen[id] = true
	}
	if rev := tp.AppendRoute(nil, dst, src); len(rev) != len(route) {
		t.Fatalf("route %d->%d has %d links but reverse has %d", src, dst, len(route), len(rev))
	}
	walk(t, route, src, dst)
	return route
}

// --- fat tree ---

// ftWalk follows a fat-tree route through the physical switch graph,
// decoding every cable id back into (boundary, lower label, upper digit)
// and checking adjacency at each hop.
func ftWalk(ft *FatTree) func(t *testing.T, route []int, src, dst int) {
	return func(t *testing.T, route []int, src, dst int) {
		t.Helper()
		// Position: tier 0 = at a host, tier l >= 1 = at switch (l, label).
		tier, label := 0, src
		for _, id := range route {
			if id < 2*ft.hosts {
				h, down := id/2, id%2 == 1
				if !down {
					if tier != 0 || label != h {
						t.Fatalf("up NIC link of host %d crossed at tier %d label %d", h, tier, label)
					}
					tier, label = 1, h/ft.radix
				} else {
					if tier != 1 || label != h/ft.radix {
						t.Fatalf("down NIC link of host %d crossed at tier %d label %d", h, tier, label)
					}
					tier, label = 0, h
				}
				continue
			}
			c := id - 2*ft.hosts
			down := c%2 == 1
			c /= 2
			x := c % ft.radix
			c /= ft.radix
			w := c % ft.tier
			l := c/ft.tier + 1
			upper := w + (x-ft.digit(w, l-1))*ft.pow[l-1]
			if !down {
				if tier != l || label != w {
					t.Fatalf("up cable (l=%d w=%d x=%d) crossed at tier %d label %d", l, w, x, tier, label)
				}
				tier, label = l+1, upper
			} else {
				if tier != l+1 || label != upper {
					t.Fatalf("down cable (l=%d w=%d x=%d) crossed at tier %d label %d", l, w, x, tier, label)
				}
				tier, label = l, w
			}
		}
		if tier != 0 || label != dst {
			t.Fatalf("route %d->%d ends at tier %d label %d", src, dst, tier, label)
		}
	}
}

func TestFatTreeRouteProperties(t *testing.T) {
	for _, shape := range []struct{ k, n int }{{2, 1}, {2, 2}, {2, 4}, {3, 2}, {4, 3}} {
		t.Run(fmt.Sprintf("k=%d/n=%d", shape.k, shape.n), func(t *testing.T) {
			ft, err := NewFatTree(shape.k, shape.n)
			if err != nil {
				t.Fatal(err)
			}
			descs := checkLinkTable(t, ft)
			if want := 2 * ft.Hosts() * shape.n; len(descs) != want {
				t.Fatalf("links = %d, want %d", len(descs), want)
			}
			walk := ftWalk(ft)
			for src := 0; src < ft.Hosts(); src++ {
				for dst := 0; dst < ft.Hosts(); dst++ {
					if src == dst {
						continue
					}
					route := checkRoute(t, ft, src, dst, walk)
					if len(route) > 2*shape.n {
						t.Fatalf("route %d->%d has %d links, bound 2*levels = %d", src, dst, len(route), 2*shape.n)
					}
				}
			}
		})
	}
}

// TestFatTreeDestinationConvergence pins the deterministic up*/down*
// discipline: all flows toward one destination descend through the same
// ancestor cables (the in-cast tree), so their down paths coincide.
func TestFatTreeDestinationConvergence(t *testing.T) {
	ft, err := NewFatTree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dst := 5
	var downTail []int
	for src := 0; src < ft.Hosts(); src++ {
		if src == dst {
			continue
		}
		route := ft.AppendRoute(nil, src, dst)
		// The descent from the common top tier is the last levels links.
		if len(route) < 2*ft.Levels() {
			continue // pair under a lower ancestor
		}
		tail := route[len(route)-ft.Levels():]
		if downTail == nil {
			downTail = append([]int(nil), tail...)
			continue
		}
		for i := range tail {
			if tail[i] != downTail[i] {
				t.Fatalf("src %d descends via %v, others via %v", src, tail, downTail)
			}
		}
	}
}

// --- dragonfly ---

// dfWalk follows a dragonfly route through the router graph.
func dfWalk(df *Dragonfly) func(t *testing.T, route []int, src, dst int) {
	return func(t *testing.T, route []int, src, dst int) {
		t.Helper()
		atHost, pos := true, src // pos = host id, or global router index when !atHost
		for _, id := range route {
			switch {
			case id < 2*df.hosts:
				h, down := id/2, id%2 == 1
				if !down {
					if !atHost || pos != h {
						t.Fatalf("up NIC of host %d crossed at atHost=%v pos=%d", h, atHost, pos)
					}
					atHost, pos = false, h/df.hostsPer
				} else {
					if atHost || pos != h/df.hostsPer {
						t.Fatalf("down NIC of host %d crossed at atHost=%v pos=%d", h, atHost, pos)
					}
					atHost, pos = true, h
				}
			case id < df.globalBase:
				v := id - df.localBase
				o := v % (df.routers - 1)
				v /= df.routers - 1
				rs := v % df.routers
				g := v / df.routers
				rd := o
				if rd >= rs {
					rd++
				}
				if atHost || pos != g*df.routers+rs {
					t.Fatalf("local link g%d r%d->r%d crossed at atHost=%v pos=%d", g, rs, rd, atHost, pos)
				}
				pos = g*df.routers + rd
			default:
				v := id - df.globalBase
				o := v % (df.groups - 1)
				gs := v / (df.groups - 1)
				gd := o
				if gd >= gs {
					gd++
				}
				if atHost || pos != gs*df.routers+df.gateway(gs, gd) {
					t.Fatalf("global link g%d->g%d crossed at atHost=%v pos=%d", gs, gd, atHost, pos)
				}
				pos = gd*df.routers + df.gateway(gd, gs)
			}
		}
		if !atHost || pos != dst {
			t.Fatalf("route %d->%d ends at atHost=%v pos=%d", src, dst, atHost, pos)
		}
	}
}

func TestDragonflyRouteProperties(t *testing.T) {
	for _, shape := range []struct{ g, a, p int }{{1, 2, 2}, {2, 1, 3}, {2, 2, 2}, {3, 4, 2}, {5, 2, 3}} {
		for _, mode := range []Routing{RouteMinimal, RouteValiant, RouteAdaptive} {
			t.Run(fmt.Sprintf("g=%d/a=%d/p=%d/%s", shape.g, shape.a, shape.p, mode), func(t *testing.T) {
				df, err := NewDragonfly(shape.g, shape.a, shape.p, mode)
				if err != nil {
					t.Fatal(err)
				}
				checkLinkTable(t, df)
				bound := 5 // NIC, local, global, local, NIC
				if mode != RouteMinimal {
					bound = 7 // one extra global and local for the detour
				}
				walk := dfWalk(df)
				for src := 0; src < df.Hosts(); src++ {
					for dst := 0; dst < df.Hosts(); dst++ {
						if src == dst {
							continue
						}
						route := checkRoute(t, df, src, dst, walk)
						if len(route) > bound {
							t.Fatalf("route %d->%d has %d links, bound %d", src, dst, len(route), bound)
						}
					}
				}
			})
		}
	}
}

// TestDragonflyAdaptiveIsMinimalOrValiant pins the per-flow selection: an
// adaptive route always equals the pair's minimal route or its Valiant
// route, never a third path, and the choice is deterministic.
func TestDragonflyAdaptiveIsMinimalOrValiant(t *testing.T) {
	mk := func(mode Routing) *Dragonfly {
		df, err := NewDragonfly(4, 3, 2, mode)
		if err != nil {
			t.Fatal(err)
		}
		return df
	}
	min, val, ad := mk(RouteMinimal), mk(RouteValiant), mk(RouteAdaptive)
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	sawMin, sawVal := false, false
	for src := 0; src < ad.Hosts(); src++ {
		for dst := 0; dst < ad.Hosts(); dst++ {
			if src == dst {
				continue
			}
			r := ad.AppendRoute(nil, src, dst)
			if again := ad.AppendRoute(nil, src, dst); !eq(r, again) {
				t.Fatalf("adaptive route %d->%d not deterministic", src, dst)
			}
			m, v := min.AppendRoute(nil, src, dst), val.AppendRoute(nil, src, dst)
			switch {
			case eq(r, m):
				sawMin = true
			case eq(r, v):
				sawVal = true
			default:
				t.Fatalf("adaptive route %d->%d is neither minimal %v nor valiant %v: %v", src, dst, m, v, r)
			}
		}
	}
	if !sawMin || !sawVal {
		t.Fatalf("adaptive selection degenerate: minimal=%v valiant=%v", sawMin, sawVal)
	}
}

// --- torus ---

// torusWalk follows a torus route node by node through the grid.
func torusWalk(ts *Torus) func(t *testing.T, route []int, src, dst int) {
	nd := len(ts.dims)
	return func(t *testing.T, route []int, src, dst int) {
		t.Helper()
		atHost, node := true, src
		for _, id := range route {
			if id < 2*ts.hosts {
				h, down := id/2, id%2 == 1
				if !down {
					if !atHost || node != h {
						t.Fatalf("up NIC of %d crossed at atHost=%v node=%d", h, atHost, node)
					}
					atHost = false
				} else {
					if atHost || node != h {
						t.Fatalf("down NIC of %d crossed at atHost=%v node=%d", h, atHost, node)
					}
					atHost = true
				}
				continue
			}
			v := id - 2*ts.hosts
			minus := v%2 == 1
			v /= 2
			d := v % nd
			from := v / nd
			if atHost || node != from {
				t.Fatalf("neighbor link of node %d crossed at atHost=%v node=%d", from, atHost, node)
			}
			stride := 1
			for i := 0; i < d; i++ {
				stride *= ts.dims[i]
			}
			c := (from / stride) % ts.dims[d]
			if minus {
				if c == 0 {
					node = from + (ts.dims[d]-1)*stride
				} else {
					node = from - stride
				}
			} else {
				if c == ts.dims[d]-1 {
					node = from - (ts.dims[d]-1)*stride
				} else {
					node = from + stride
				}
			}
		}
		if !atHost || node != dst {
			t.Fatalf("route %d->%d ends at atHost=%v node=%d", src, dst, atHost, node)
		}
	}
}

func TestTorusRouteProperties(t *testing.T) {
	for _, dims := range [][]int{{2, 2}, {4, 4}, {3, 5}, {2, 2, 2}, {4, 3, 2}, {5, 4, 3}} {
		t.Run(fmt.Sprintf("%v", dims), func(t *testing.T) {
			ts, err := NewTorus(dims)
			if err != nil {
				t.Fatal(err)
			}
			descs := checkLinkTable(t, ts)
			if want := 2 * ts.Hosts() * (1 + len(dims)); len(descs) != want {
				t.Fatalf("links = %d, want %d", len(descs), want)
			}
			bound := 2 // NIC links
			for _, d := range dims {
				bound += d / 2
			}
			walk := torusWalk(ts)
			for src := 0; src < ts.Hosts(); src++ {
				for dst := 0; dst < ts.Hosts(); dst++ {
					if src == dst {
						continue
					}
					route := checkRoute(t, ts, src, dst, walk)
					if len(route) > bound {
						t.Fatalf("route %d->%d has %d links, bound %d", src, dst, len(route), bound)
					}
				}
			}
		})
	}
}

// --- shape validation ---

func TestShapeValidation(t *testing.T) {
	if _, err := NewFatTree(1, 2); err == nil {
		t.Error("radix 1 accepted")
	}
	if _, err := NewFatTree(2, 0); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := NewFatTree(1000, 10); err == nil {
		t.Error("overflow shape accepted")
	}
	if _, err := NewDragonfly(0, 1, 1, RouteMinimal); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewDragonfly(1, 0, 1, RouteMinimal); err == nil {
		t.Error("zero routers accepted")
	}
	if _, err := NewDragonfly(1, 1, 0, RouteMinimal); err == nil {
		t.Error("zero hosts-per-router accepted")
	}
	if _, err := NewDragonfly(1<<12, 1<<12, 1<<12, RouteMinimal); err == nil {
		t.Error("overflow dragonfly accepted")
	}
	if _, err := NewTorus([]int{4}); err == nil {
		t.Error("1D torus accepted")
	}
	if _, err := NewTorus([]int{2, 2, 2, 2}); err == nil {
		t.Error("4D torus accepted")
	}
	if _, err := NewTorus([]int{4, 1}); err == nil {
		t.Error("dim 1 accepted")
	}
	if _, err := NewTorus([]int{1 << 12, 1 << 12, 1 << 12}); err == nil {
		t.Error("overflow torus accepted")
	}
	if _, err := ParseRouting("bogus"); err == nil {
		t.Error("bogus routing accepted")
	}
	for _, s := range []string{"", "minimal", "valiant", "adaptive"} {
		if _, err := ParseRouting(s); err != nil {
			t.Errorf("ParseRouting(%q): %v", s, err)
		}
	}
}

// TestPairMixSymmetric pins the symmetry the adaptive/Valiant selection
// depends on for hop-symmetric reverse routes.
func TestPairMixSymmetric(t *testing.T) {
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			if pairMix(a, b) != pairMix(b, a) {
				t.Fatalf("pairMix(%d,%d) != pairMix(%d,%d)", a, b, b, a)
			}
		}
	}
}
