package topo

import "fmt"

// Torus is a 2D or 3D torus: every host is a node with a router, nodes are
// arranged in a wrap-around grid, and each node has one directional link to
// each neighbor per dimension and direction. Dimension-order routing
// corrects coordinates one dimension at a time, taking the shorter way
// around each ring (ties go the positive direction), which is deterministic
// and trivially deadlock-/loop-free. Injection and ejection links model the
// NIC, so flows sharing an endpoint contend there like on the other
// topologies.
type Torus struct {
	dims  []int
	hosts int
}

// NewTorus builds a torus shape from 2 or 3 dimension radii. Field names
// in errors refer to the platform.Spec JSON fields that carry the values.
func NewTorus(dims []int) (*Torus, error) {
	if len(dims) != 2 && len(dims) != 3 {
		return nil, fmt.Errorf(`topo: "torus_dims" must list 2 or 3 dimensions, got %d`, len(dims))
	}
	hosts := 1
	for i, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf(`topo: "torus_dims"[%d] must be at least 2, got %d`, i, d)
		}
		if hosts > maxHosts/d {
			return nil, fmt.Errorf(`topo: "torus_dims" product exceeds the %d-host limit`, maxHosts)
		}
		hosts *= d
	}
	return &Torus{dims: append([]int(nil), dims...), hosts: hosts}, nil
}

// Hosts implements Topology.
func (t *Torus) Hosts() int { return t.hosts }

// Dims returns the dimension radii.
func (t *Torus) Dims() []int { return append([]int(nil), t.dims...) }

// neighbor returns the id of node's directional link in dimension d: the
// positive-direction link when dir is 0, negative when 1.
func (t *Torus) neighbor(node, d, dir int) int {
	return 2*t.hosts + (node*len(t.dims)+d)*2 + dir
}

// Links implements Topology: NIC links, then per node and dimension the
// +/- neighbor links.
func (t *Torus) Links() []LinkDesc {
	nd := len(t.dims)
	descs := appendHostLinks(make([]LinkDesc, 0, 2*t.hosts*(1+nd)), t.hosts)
	coord := make([]int, nd)
	for node := 0; node < t.hosts; node++ {
		for d := 0; d < nd; d++ {
			descs = append(descs,
				LinkDesc{Name: fmt.Sprintf("n%v-d%d-plus", coord, d), Class: ClassFabric},
				LinkDesc{Name: fmt.Sprintf("n%v-d%d-minus", coord, d), Class: ClassFabric},
			)
		}
		for d := 0; d < nd; d++ { // advance the mixed-radix coordinate
			if coord[d]++; coord[d] < t.dims[d] {
				break
			}
			coord[d] = 0
		}
	}
	return descs
}

// AppendRoute implements Topology: dimension-order routing, shortest way
// around each ring. Network hops are bounded by the sum of the dimension
// radii halved (floor(d_i/2) per dimension).
func (t *Torus) AppendRoute(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	buf = append(buf, hostUp(src))
	node, rem, dstRem := src, src, dst
	stride := 1
	for d, dim := range t.dims {
		sc, dc := rem%dim, dstRem%dim
		rem, dstRem = rem/dim, dstRem/dim
		if sc != dc {
			fwd := (dc - sc + dim) % dim
			if back := dim - fwd; fwd <= back {
				for i := 0; i < fwd; i++ {
					buf = append(buf, t.neighbor(node, d, 0))
					if sc++; sc == dim {
						sc = 0
						node -= (dim - 1) * stride
					} else {
						node += stride
					}
				}
			} else {
				for i := 0; i < back; i++ {
					buf = append(buf, t.neighbor(node, d, 1))
					if sc--; sc < 0 {
						sc = dim - 1
						node += (dim - 1) * stride
					} else {
						node -= stride
					}
				}
			}
		}
		stride *= dim
	}
	return append(buf, hostDown(dst))
}

var _ Topology = (*Torus)(nil)
