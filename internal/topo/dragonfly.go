package topo

import "fmt"

// Routing selects how a Dragonfly picks paths for inter-group flows.
type Routing int

const (
	// RouteMinimal always takes the direct path: at most local cable,
	// global cable, local cable.
	RouteMinimal Routing = iota
	// RouteValiant always detours through a deterministically chosen
	// intermediate group (Valiant load balancing), trading path length for
	// spread under adversarial traffic. Falls back to minimal when fewer
	// than three groups exist.
	RouteValiant
	// RouteAdaptive decides per flow: a symmetric hash of the host pair
	// picks minimal or Valiant with equal probability — a deterministic
	// stand-in for congestion-adaptive (UGAL-style) selection that keeps
	// replays reproducible.
	RouteAdaptive
)

// ParseRouting maps the platform.Spec "routing" field to a Routing mode.
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "", "minimal":
		return RouteMinimal, nil
	case "valiant":
		return RouteValiant, nil
	case "adaptive":
		return RouteAdaptive, nil
	}
	return 0, fmt.Errorf(`topo: unknown dragonfly "routing" %q (want minimal, valiant, or adaptive)`, s)
}

func (r Routing) String() string {
	switch r {
	case RouteMinimal:
		return "minimal"
	case RouteValiant:
		return "valiant"
	case RouteAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("Routing(%d)", int(r))
}

// Dragonfly is the Kim/Dally hierarchical topology: groups of fully
// connected routers, each router carrying hostsPer endpoints, and every
// group pair joined by one global cable. The router terminating the global
// cable from group g to group x is chosen round-robin over the group's
// routers, so global traffic spreads across routers the way distributed
// global ports do on real machines.
//
// All links are directional: a local cable rs->rd is a different link from
// rd->rs, and each group pair has one global link per direction, so
// opposing traffic never falsely contends.
type Dragonfly struct {
	groups, routers, hostsPer int
	routing                   Routing
	hosts                     int
	localBase, globalBase     int
}

// NewDragonfly builds a dragonfly shape. Field names in errors refer to
// the platform.Spec JSON fields that carry the values.
func NewDragonfly(groups, routersPerGroup, hostsPerRouter int, routing Routing) (*Dragonfly, error) {
	if groups < 1 {
		return nil, fmt.Errorf(`topo: dragonfly "groups" must be at least 1, got %d`, groups)
	}
	if routersPerGroup < 1 {
		return nil, fmt.Errorf(`topo: dragonfly "routers_per_group" must be at least 1, got %d`, routersPerGroup)
	}
	if hostsPerRouter < 1 {
		return nil, fmt.Errorf(`topo: dragonfly "hosts_per_router" must be at least 1, got %d`, hostsPerRouter)
	}
	switch routing {
	case RouteMinimal, RouteValiant, RouteAdaptive:
	default:
		return nil, fmt.Errorf(`topo: dragonfly "routing" mode %d unknown`, int(routing))
	}
	hosts := groups * routersPerGroup
	if hosts > maxHosts/hostsPerRouter {
		return nil, fmt.Errorf(`topo: dragonfly "groups"*"routers_per_group"*"hosts_per_router" = %d*%d*%d exceeds the %d-host limit`,
			groups, routersPerGroup, hostsPerRouter, maxHosts)
	}
	hosts *= hostsPerRouter
	t := &Dragonfly{
		groups: groups, routers: routersPerGroup, hostsPer: hostsPerRouter,
		routing: routing, hosts: hosts,
	}
	t.localBase = 2 * hosts
	t.globalBase = t.localBase + groups*routersPerGroup*(routersPerGroup-1)
	return t, nil
}

// Hosts implements Topology.
func (t *Dragonfly) Hosts() int { return t.hosts }

// Groups, RoutersPerGroup, HostsPerRouter, and RoutingMode expose the shape.
func (t *Dragonfly) Groups() int          { return t.groups }
func (t *Dragonfly) RoutersPerGroup() int { return t.routers }
func (t *Dragonfly) HostsPerRouter() int  { return t.hostsPer }
func (t *Dragonfly) RoutingMode() Routing { return t.routing }

// local returns the id of the directional intra-group link rs->rd (local
// router indices, rs != rd) in group g.
func (t *Dragonfly) local(g, rs, rd int) int {
	o := rd
	if rd > rs {
		o--
	}
	return t.localBase + (g*t.routers+rs)*(t.routers-1) + o
}

// global returns the id of the directional inter-group link gs->gd.
func (t *Dragonfly) global(gs, gd int) int {
	o := gd
	if gd > gs {
		o--
	}
	return t.globalBase + gs*(t.groups-1) + o
}

// gateway returns the local index of the router in group g that terminates
// the global cable between g and group x.
func (t *Dragonfly) gateway(g, x int) int {
	s := x
	if x > g {
		s--
	}
	return s % t.routers
}

// Links implements Topology: NIC links, then the directional local links
// of every group, then the directional global links of every group pair.
func (t *Dragonfly) Links() []LinkDesc {
	n := 2*t.hosts + t.groups*t.routers*(t.routers-1) + t.groups*(t.groups-1)
	descs := appendHostLinks(make([]LinkDesc, 0, n), t.hosts)
	for g := 0; g < t.groups; g++ {
		for rs := 0; rs < t.routers; rs++ {
			for rd := 0; rd < t.routers; rd++ {
				if rd == rs {
					continue
				}
				descs = append(descs, LinkDesc{Name: fmt.Sprintf("g%d-r%d-r%d", g, rs, rd), Class: ClassLocal})
			}
		}
	}
	for gs := 0; gs < t.groups; gs++ {
		for gd := 0; gd < t.groups; gd++ {
			if gd == gs {
				continue
			}
			descs = append(descs, LinkDesc{Name: fmt.Sprintf("g%d-g%d", gs, gd), Class: ClassGlobal})
		}
	}
	return descs
}

// hop moves from local router cur in group g to the gateway for next and
// crosses the global cable g->next, returning the extended buffer and the
// arrival router's local index in next.
func (t *Dragonfly) hop(buf []int, g, cur, next int) ([]int, int) {
	if gw := t.gateway(g, next); cur != gw {
		buf = append(buf, t.local(g, cur, gw))
		cur = gw
	}
	buf = append(buf, t.global(g, next))
	return buf, t.gateway(next, g)
}

// AppendRoute implements Topology. Minimal routes are NIC, (local), global,
// (local), NIC — at most 5 links; Valiant routes add one global and at most
// one local for the intermediate group — at most 7.
func (t *Dragonfly) AppendRoute(buf []int, src, dst int) []int {
	if src == dst {
		return buf
	}
	rs, rd := src/t.hostsPer, dst/t.hostsPer
	gs, gd := rs/t.routers, rd/t.routers
	ls, ld := rs%t.routers, rd%t.routers

	buf = append(buf, hostUp(src))
	switch {
	case rs == rd:
		// Same router: NIC links only.
	case gs == gd:
		buf = append(buf, t.local(gs, ls, ld))
	default:
		valiant := false
		switch t.routing {
		case RouteValiant:
			valiant = t.groups > 2
		case RouteAdaptive:
			valiant = t.groups > 2 && pairMix(src, dst)&1 == 1
		}
		cur := ls
		if valiant {
			// Deterministic intermediate group, skipping src's and dst's.
			gi := int((pairMix(src, dst) >> 8) % uint64(t.groups-2))
			lo, hi := gs, gd
			if lo > hi {
				lo, hi = hi, lo
			}
			if gi >= lo {
				gi++
			}
			if gi >= hi {
				gi++
			}
			buf, cur = t.hop(buf, gs, cur, gi)
			buf, cur = t.hop(buf, gi, cur, gd)
		} else {
			buf, cur = t.hop(buf, gs, cur, gd)
		}
		if cur != ld {
			buf = append(buf, t.local(gd, cur, ld))
		}
	}
	return append(buf, hostDown(dst))
}

var _ Topology = (*Dragonfly)(nil)
