// Package tireplay is an off-line simulator for MPI applications driven by
// time-independent traces, reproducing "Improving the Accuracy and
// Efficiency of Time-Independent Trace Replay" (Desprez, Markomanolis,
// Suter — INRIA RR-8092, 2012).
//
// A time-independent trace records, per rank, only *volumes*: numbers of
// instructions computed between MPI calls and bytes moved by each MPI call
// — no timestamps. Such traces can be acquired on any machine (even several
// heterogeneous ones) and replayed on a simulated target platform to
// predict the application's execution time there.
//
// The package exposes the full tool chain:
//
//   - platform description (flat, hierarchical, and crossbar clusters plus
//     the topology zoo — k-ary fat trees, dragonflies, and 2D/3D tori with
//     real deterministic routing — and piece-wise linear network factor
//     models);
//   - the trace format: parsing, writing, validation, streaming, the
//     compiled TIB binary cache, and an importer registry (DUMPI ASCII,
//     TAU profiles, custom formats) folding foreign acquisitions into the
//     same pipeline;
//   - replay backends behind a uniform interface: the accurate SMPI-style
//     backend (eager/rendezvous protocols, collectives as point-to-point
//     trees), the legacy MSG-style baseline the paper improves upon, and
//     any custom backend plugged in with RegisterBackend;
//   - workload models of the NAS Parallel Benchmarks (LU, CG, EP, MG, BT,
//     SP, FT) that generate traces of any class/process count;
//   - emulated ground-truth clusters (bordereau, graphene) and the
//     instrumentation model used to study acquisition overheads;
//   - the two calibration procedures (classic A-4 and cache-aware);
//   - a declarative, JSON-serializable Scenario description (platform,
//     trace source, backend, model knobs) and a concurrent batch runner;
//   - a first-class Sweep subsystem: parameter grids declared as a base
//     scenario plus axes, expanded deterministically, streamed through a
//     worker pool into pluggable sinks (JSONL, CSV), and persisted in a
//     fingerprint-keyed result store so interrupted or edited sweeps
//     resume instead of re-running;
//   - the sweep service (Serve, SubmitSweep, StreamResults, Work): sweeps
//     over HTTP against one shared result store, identical points
//     deduplicated across concurrent clients by scenario fingerprint, and
//     a work-stealing lease protocol so external worker processes on any
//     machine help drain the queue with crash tolerance.
//
// Single replay quick start:
//
//	plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
//		Name: "mycluster", Hosts: 8, Speed: 2e9,
//		LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
//		BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
//	})
//	prov, err := tireplay.LoadTraces("traces/lu_b8.desc", 8)
//	res, err := tireplay.Replay(prov, plat, tireplay.ReplayConfig{})
//	fmt.Printf("predicted time: %.2f s\n", res.SimulatedTime)
//
// Sweep quick start — declare the grid once (no nested loops), stream
// results as they complete, and persist them so a re-run only replays
// what is missing; one failing point never aborts the rest:
//
//	sw := &tireplay.Sweep{
//		Name: "lu-scaling",
//		Base: tireplay.Scenario{
//			Platform: &tireplay.PlatformSpec{Topology: "flat", Hosts: 64,
//				Speed: 2e9, LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
//				BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6},
//			Workload: &tireplay.WorkloadSpec{Benchmark: "lu", Class: "B", Procs: 8},
//		},
//		NameFormat: "lu-b-{procs}",
//		Axes: []tireplay.SweepAxis{{Name: "procs", Values: []any{
//			map[string]any{"workload.procs": 8, "platform.hosts": 8},
//			map[string]any{"workload.procs": 16, "platform.hosts": 16},
//			map[string]any{"workload.procs": 32, "platform.hosts": 32},
//			map[string]any{"workload.procs": 64, "platform.hosts": 64},
//		}, Labels: []string{"8", "16", "32", "64"}}},
//		Store: "results.store", // resume from here on the next run
//	}
//	for r, err := range tireplay.RunSweep(ctx, sw, tireplay.WithSweepWorkers(4)) {
//		if err != nil {
//			log.Fatal(err) // spec/store/sink failure
//		}
//		if r.Err != nil {
//			fmt.Printf("%s: %v\n", r.Point.Scenario.Name, r.Err)
//			continue
//		}
//		fmt.Printf("%s: %.2f s\n", r.Point.Scenario.Name, r.Replay.SimulatedTime)
//	}
//
// The same grid as a JSON file runs with the command-line driver:
//
//	tireplay -sweep grid.json -out results.jsonl -resume
package tireplay

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"net/http"
	"time"

	"tireplay/internal/calibrate"
	"tireplay/internal/core"
	"tireplay/internal/ground"
	"tireplay/internal/instrument"
	"tireplay/internal/mpi"
	"tireplay/internal/msgreplay"
	"tireplay/internal/npb"
	"tireplay/internal/platform"
	"tireplay/internal/runner"
	"tireplay/internal/scenario"
	"tireplay/internal/serve"
	"tireplay/internal/sim"
	"tireplay/internal/sweep"
	"tireplay/internal/trace"
)

// Core trace types.
type (
	// Action is one event of a time-independent trace.
	Action = trace.Action
	// ActionKind enumerates trace action types.
	ActionKind = trace.Kind
	// TraceProvider hands out per-rank action streams.
	TraceProvider = trace.Provider
	// TraceStream is a pull-based per-rank action source.
	TraceStream = trace.Stream
	// TraceStats summarizes trace volumes.
	TraceStats = trace.Stats
)

// Platform and network types.
type (
	// Platform is a simulated execution platform.
	Platform = platform.Platform
	// ClusterSpec configures a single-switch cluster.
	ClusterSpec = platform.FlatConfig
	// HierClusterSpec configures a cabinet-based hierarchical cluster.
	HierClusterSpec = platform.HierConfig
	// NetworkSegment is one piece of a piece-wise-linear network model.
	NetworkSegment = platform.Segment
	// NetworkModel adjusts latency/bandwidth per message size.
	NetworkModel = sim.NetworkModel
	// PlatformSpec is the serializable platform description.
	PlatformSpec = platform.Spec
)

// Replay types.
type (
	// ReplayConfig parameterizes a replay (backend, network model, MPI
	// model knobs).
	ReplayConfig = core.Config
	// ReplayResult reports the simulated time and replay statistics.
	ReplayResult = core.Result
	// MPIModelConfig tunes the SMPI backend's communication model.
	MPIModelConfig = mpi.ModelConfig
	// MSGConfig tunes the legacy backend.
	MSGConfig = msgreplay.Config
)

// MSGPrototypeConfig returns the reference network figures the original MSG
// prototype hard-coded, for paper-faithful replays of the first
// implementation.
func MSGPrototypeConfig() MSGConfig { return msgreplay.PrototypeConfig() }

// Backend selection.
const (
	// SMPI is the accurate backend introduced by the paper (Section 3.3).
	SMPI = core.SMPI
	// MSG is the first-prototype baseline backend (Section 2.4).
	MSG = core.MSG
)

// Backend extension surface: every replay implementation is driven through
// the RankOps interface by one shared driver loop, and selected by
// registered name.
type (
	// RankOps is the per-rank operation set a replay backend provides.
	RankOps = core.RankOps
	// Request is an opaque handle to an outstanding nonblocking operation.
	Request = core.Request
	// BackendWorld is one backend's replay context (ranks bound to hosts).
	BackendWorld = core.World
	// Backend builds replay worlds and is selected by name.
	Backend = core.Backend
	// TraceError reports a malformed trace detected during replay.
	TraceError = core.TraceError
)

// Malformed-trace error causes, matchable with errors.Is on the error
// returned by Replay or Scenario.Run.
var (
	ErrNoOutstandingRequest = core.ErrNoOutstandingRequest
	ErrUnsupportedAction    = core.ErrUnsupportedAction
)

// RegisterBackend makes a custom replay backend selectable by name in
// ReplayConfig.Backend and Scenario.Backend.
func RegisterBackend(name string, b Backend) { core.Register(name, b) }

// Backends returns the sorted names of all registered replay backends.
func Backends() []string { return core.Backends() }

// Scenario and batch-runner types.
type (
	// Scenario is a declarative, JSON-serializable replay description with
	// Validate and Run(ctx) methods.
	Scenario = scenario.Scenario
	// WorkloadSpec selects an NPB workload model as a scenario's trace
	// source.
	WorkloadSpec = scenario.WorkloadSpec
	// AcquisitionSpec asks for the instrumented acquisition's trace.
	AcquisitionSpec = scenario.AcquisitionSpec
	// ScenarioResult is the outcome of one scenario of a batch.
	ScenarioResult = runner.Result
	// RunnerEvent is a batch progress notification.
	RunnerEvent = runner.Event
	// RunnerOption configures RunScenarios.
	RunnerOption = runner.Option
)

// Runner event kinds.
const (
	ScenarioStarted  = runner.Started
	ScenarioFinished = runner.Finished
)

// RunScenarios executes a batch of scenarios on a worker pool and returns
// one result per scenario, in input order. Per-scenario results are
// bit-identical to sequential execution regardless of the worker count; a
// failing scenario is reported in its result and does not abort the batch.
// The returned error is non-nil only when ctx is cancelled.
func RunScenarios(ctx context.Context, scenarios []*Scenario, opts ...RunnerOption) ([]ScenarioResult, error) {
	return runner.Run(ctx, scenarios, opts...)
}

// WithWorkers sets the batch worker-pool size; n < 1 selects GOMAXPROCS.
func WithWorkers(n int) RunnerOption { return runner.WithWorkers(n) }

// WithObserver installs a serialized per-scenario progress callback.
func WithObserver(f func(RunnerEvent)) RunnerOption { return runner.WithObserver(f) }

// LoadScenarios reads a JSON array of scenarios from a file.
func LoadScenarios(path string) ([]*Scenario, error) { return scenario.Load(path) }

// Sweep subsystem types: declarative parameter grids over a base scenario.
type (
	// Sweep is a JSON-serializable parameter grid: a base Scenario
	// template plus axes expanded as a cartesian product, with optional
	// skip constraints, a name template, and a persistent result store.
	Sweep = sweep.Sweep
	// SweepAxis is one named parameter dimension of a sweep.
	SweepAxis = sweep.Axis
	// SweepPoint is one expanded grid point: a concrete scenario plus its
	// axis values and deterministic fingerprint.
	SweepPoint = sweep.Point
	// SweepResult is the outcome of one grid point.
	SweepResult = sweep.Result
	// SweepRecord is the serialized result form shared by the result store
	// and the JSONL sink.
	SweepRecord = sweep.Record
	// SweepStore is the persistent fingerprint-keyed result store.
	SweepStore = sweep.Store
	// SweepSink consumes streamed sweep results (JSONL, CSV, or custom).
	SweepSink = sweep.Sink
	// SweepOption configures RunSweep.
	SweepOption = sweep.Option
)

// RunSweep expands the sweep and executes it on a worker pool, yielding
// results as they complete: stored results first (when resuming), then
// live replays in completion order. Per-point failures ride in
// SweepResult.Err; a non-nil iterator error (spec, store, or sink failure)
// is fatal and ends the iteration. With a result store configured, every
// successful replay persists under its scenario fingerprint and re-running
// the sweep replays only the missing points.
func RunSweep(ctx context.Context, sw *Sweep, opts ...SweepOption) iter.Seq2[SweepResult, error] {
	return sweep.Run(ctx, sw, opts...)
}

// CollectSweep drains RunSweep into a slice ordered by grid index.
func CollectSweep(ctx context.Context, sw *Sweep, opts ...SweepOption) ([]SweepResult, error) {
	return sweep.Collect(ctx, sw, opts...)
}

// LoadSweep strictly decodes a JSON sweep spec from a file: unknown fields
// anywhere in the spec fail with an error naming the offending field.
func LoadSweep(path string) (*Sweep, error) { return sweep.Load(path) }

// WithSweepWorkers sets the sweep worker-pool size; n < 1 selects
// GOMAXPROCS.
func WithSweepWorkers(n int) SweepOption { return sweep.WithWorkers(n) }

// WithSink attaches a result sink; every streamed result is written to
// each attached sink in completion order.
func WithSink(s SweepSink) SweepOption { return sweep.WithSink(s) }

// WithStore overrides the sweep's result-store directory.
func WithStore(dir string) SweepOption { return sweep.WithStore(dir) }

// WithResume overrides the sweep's resume mode: "auto" (default — reuse
// stored results when a store is configured), "on" (require a store), or
// "off" (re-run everything, overwriting stored results).
func WithResume(mode string) SweepOption { return sweep.WithResume(mode) }

// NewJSONLSink writes one JSON SweepRecord per line to w; the lines read
// back with ReadSweepRecords and round-trip through the result store.
func NewJSONLSink(w io.Writer) SweepSink { return sweep.NewJSONLSink(w) }

// NewCSVSink writes results as CSV rows to w, with one extra column per
// named axis.
func NewCSVSink(w io.Writer, axes ...string) SweepSink { return sweep.NewCSVSink(w, axes...) }

// ReadSweepRecords decodes a JSONL stream of sweep records (the JSONL
// sink's output).
func ReadSweepRecords(r io.Reader) ([]*SweepRecord, error) { return sweep.ReadRecords(r) }

// OpenSweepStore opens (creating if needed) a sweep result store.
func OpenSweepStore(dir string) (*SweepStore, error) { return sweep.OpenStore(dir) }

// ScenarioFingerprint returns the deterministic identity of a scenario's
// replay-relevant configuration (hex SHA-256 of its canonical JSON, display
// name excluded) — the key sweeps store results under.
func ScenarioFingerprint(s *Scenario) (string, error) { return sweep.Fingerprint(s) }

// Sweep service types: sweeps as a long-lived HTTP service with a shared
// result store and work-stealing workers.
type (
	// ServeConfig parameterizes a sweep server (store directory, embedded
	// worker count, lease TTL).
	ServeConfig = serve.Config
	// SweepServer is the sweep service: submitted sweeps are deduplicated
	// by scenario fingerprint against one shared store, streamed back as
	// NDJSON, and drained by embedded and external workers.
	SweepServer = serve.Server
	// SweepClient talks to a sweep server (submit, stream, lease).
	SweepClient = serve.Client
	// SweepSubmit is the server's accounting for one submission.
	SweepSubmit = serve.SubmitResponse
	// SweepServiceStatus is one submitted sweep's progress.
	SweepServiceStatus = serve.SweepStatus
	// ServeStats are the server's dedup/queue counters.
	ServeStats = serve.Stats
	// WorkerOptions configures a Work loop.
	WorkerOptions = serve.WorkerOptions
)

// NewSweepServer builds a sweep server over a shared result store and
// starts its embedded workers; expose it with Handler (any http mux) or
// let Serve listen for you, and stop it with Close.
func NewSweepServer(cfg ServeConfig) (*SweepServer, error) { return serve.New(cfg) }

// NewSweepClient returns a client for the sweep server at base, e.g.
// "http://127.0.0.1:9411".
func NewSweepClient(base string) *SweepClient { return serve.NewClient(base) }

// Serve runs a sweep server on addr until ctx is cancelled. Submitted
// sweeps share one result store: points already stored are served from
// cache, points in flight for one client are joined by every other, so N
// clients submitting overlapping grids cost one replay per distinct
// scenario fingerprint. A durable journal next to the store makes open
// sweeps survive restarts, and cancellation drains gracefully: no new
// leases, in-flight work gets cfg.Drain (default 10s) to post, the
// journal is flushed, then the listener closes.
func Serve(ctx context.Context, addr string, cfg ServeConfig) error {
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			drain := cfg.Drain
			if drain <= 0 {
				drain = 10 * time.Second
			}
			dctx, cancel := context.WithTimeout(context.Background(), drain)
			s.Shutdown(dctx) //nolint:errcheck // drains leases, ends streams, closes the journal
			cancel()
			srv.Shutdown(context.Background()) //nolint:errcheck
		case <-done:
		}
	}()
	defer close(done)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// SubmitSweep registers a sweep with a running sweep server and returns
// its ID and point accounting (cached, merged with in-flight work, or
// newly queued).
func SubmitSweep(ctx context.Context, server string, sw *Sweep) (*SweepSubmit, error) {
	return serve.NewClient(server).Submit(ctx, sw)
}

// StreamResults yields a submitted sweep's records in completion order,
// blocking until every point has a terminal result. Pair with
// SubmitSweep's returned ID.
func StreamResults(ctx context.Context, server, id string) iter.Seq2[*SweepRecord, error] {
	return serve.NewClient(server).Stream(ctx, id)
}

// Work runs a worker loop against a sweep server: lease a point, replay
// it locally, post the record back, repeat until ctx is cancelled.
// Leases are heartbeat-extended; a worker that dies has its points
// reclaimed by the server's lease TTL.
func Work(ctx context.Context, server string, opts WorkerOptions) error {
	return serve.Work(ctx, server, opts)
}

// Workload types.
type (
	// Workload generates per-rank operation streams (LU, CG, or custom).
	Workload = npb.Workload
	// LU is the NAS LU benchmark model.
	LU = npb.LU
	// CG is the NAS CG benchmark model.
	CG = npb.CG
	// EP is the NAS EP benchmark model (compute-only extreme).
	EP = npb.EP
	// MG is the NAS MG benchmark model (multigrid V-cycles, 3D halos).
	MG = npb.MG
	// BT is the NAS BT benchmark model (block-tridiagonal sweeps, waitsome
	// face drains).
	BT = npb.BT
	// SP is the NAS SP benchmark model (scalar pentadiagonal sweeps, waitany
	// face drains).
	SP = npb.SP
	// FT is the NAS FT benchmark model (3D FFT, alltoallv transposes).
	FT = npb.FT
	// NPBClass is an NPB problem class (S, W, A, B, C, D).
	NPBClass = npb.Class
)

// NPB classes.
const (
	ClassS = npb.ClassS
	ClassW = npb.ClassW
	ClassA = npb.ClassA
	ClassB = npb.ClassB
	ClassC = npb.ClassC
	ClassD = npb.ClassD
)

// Ground-truth and acquisition types.
type (
	// GroundCluster is an emulated real cluster.
	GroundCluster = ground.Cluster
	// InstrumentationMode selects probe granularity.
	InstrumentationMode = instrument.Mode
	// AcquisitionConfig describes how a trace acquisition run is built and
	// instrumented.
	AcquisitionConfig = instrument.Config
	// CacheAwareCalibration is the per-class rate table of Section 3.4.
	CacheAwareCalibration = calibrate.CacheAware
)

// Instrumentation modes.
const (
	Uninstrumented         = instrument.None
	CoarseInstrumentation  = instrument.Coarse
	MinimalInstrumentation = instrument.Minimal
	FineInstrumentation    = instrument.Fine
)

// CompileLevel is the optimization level of an acquisition build.
type CompileLevel = instrument.Compile

// Compile levels.
const (
	CompileO0 = instrument.O0
	CompileO3 = instrument.O3
)

// Cluster builds a flat (single switch) cluster platform, optionally with a
// piece-wise-linear network model built from segments.
func Cluster(spec ClusterSpec, segments ...NetworkSegment) (*Platform, NetworkModel, error) {
	p, err := platform.NewFlatCluster(spec)
	if err != nil {
		return nil, nil, err
	}
	if len(segments) == 0 {
		return p, nil, nil
	}
	m, err := platform.NewPiecewiseModel(segments)
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// HierCluster builds a hierarchical (cabinet) cluster platform.
func HierCluster(spec HierClusterSpec, segments ...NetworkSegment) (*Platform, NetworkModel, error) {
	p, err := platform.NewHierarchicalCluster(spec)
	if err != nil {
		return nil, nil, err
	}
	if len(segments) == 0 {
		return p, nil, nil
	}
	m, err := platform.NewPiecewiseModel(segments)
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// LoadPlatform reads a JSON platform description (the replay equivalent of
// the paper's platform.xml) and builds it.
func LoadPlatform(path string) (*Platform, NetworkModel, error) {
	spec, err := platform.LoadSpec(path)
	if err != nil {
		return nil, nil, err
	}
	p, m, err := spec.Build()
	if err != nil {
		return nil, nil, err
	}
	if m == nil {
		return p, nil, nil
	}
	return p, m, nil
}

// LoadTraces opens a trace-description file (one trace file per line; a
// single entry serves all nranks ranks from a merged trace, as in the
// paper).
func LoadTraces(descPath string, nranks int) (TraceProvider, error) {
	return trace.LoadDescription(descPath, nranks)
}

// TracesInMemory wraps per-rank action slices as a provider.
func TracesInMemory(perRank [][]Action) TraceProvider {
	return trace.NewMemProvider(perRank)
}

// WriteTraces writes per-rank trace files plus a description file and
// returns the description path.
func WriteTraces(dir, prefix string, perRank [][]Action) (string, error) {
	return trace.WriteSet(dir, prefix, perRank)
}

// WriteFoldedTraces is WriteTraces with loop-folded files: consecutively
// repeated action blocks (an iterative application's time steps) are stored
// once with a repetition count, typically shrinking traces by the iteration
// count. LoadTraces expands folded files transparently.
func WriteFoldedTraces(dir, prefix string, perRank [][]Action) (string, error) {
	return trace.WriteFoldedSet(dir, prefix, perRank)
}

// CompileTraces compiles the trace set named by a description file into a
// sibling binary cache at descPath+".tib" (the TIB format: varint-encoded
// actions behind a per-rank offset index, every region checksummed).
// Ingesting a compiled trace seeks straight to each rank's section instead
// of re-parsing — and, for merged single-file traces, re-scanning — the
// text, which is what makes large batch sweeps cheap to feed. A cache
// whose recorded source fingerprint (file names, sizes, mtimes) still
// matches is reused; rebuilt reports whether a compile actually ran.
// Scenario replays with the default TraceCache ("auto") build and use this
// cache transparently.
func CompileTraces(descPath string, nranks int) (tibPath string, rebuilt bool, err error) {
	return trace.CompileDescription(descPath, nranks, 0)
}

// TraceDescriptionEntries returns how many trace files a description file
// lists; a single entry is the merged layout and needs an explicit rank
// count to compile or replay.
func TraceDescriptionEntries(descPath string) (int, error) {
	return trace.DescriptionEntries(descPath)
}

// LoadTIB opens a compiled .tib trace as a provider. The provider holds a
// file descriptor; close it (it is an io.Closer) when done.
func LoadTIB(path string) (TraceProvider, error) {
	return trace.OpenTIB(path)
}

// WriteTIB writes per-rank actions directly as a standalone compiled .tib
// file, usable anywhere a trace description is accepted.
func WriteTIB(path string, perRank [][]Action) error {
	return trace.WriteTIBFile(path, perRank)
}

// TraceImportOptions tunes how a foreign trace's volumes are mapped onto
// actions (e.g. the CPU-time-to-instructions rate used when the dump carries
// no hardware counter).
type TraceImportOptions = trace.ImportOptions

// TraceImporter converts one foreign trace layout into a TraceProvider.
type TraceImporter = trace.Importer

// ImportTraces opens a foreign trace (an SST DUMPI ASCII dump, a TAU profile
// folder, or any format added with RegisterTraceImporter) as a provider.
// format names a registered importer; "" or "auto" sniffs the path against
// every importer. The result feeds the rest of the pipeline — validation,
// TIB compilation, replay — exactly like a native trace set.
func ImportTraces(format, path string, opts TraceImportOptions) (TraceProvider, error) {
	return trace.Import(format, path, opts)
}

// ImportCompileTraces imports a foreign trace and compiles it straight to a
// .tib file, returning the rank count: pay the foreign parse once, replay
// from the binary form ever after.
func ImportCompileTraces(format, path, tibPath string, opts TraceImportOptions) (int, error) {
	return trace.ImportCompile(format, path, tibPath, opts)
}

// RegisterTraceImporter makes a custom trace format importable by name (and
// by sniffing) in ImportTraces and Scenario.TraceFormat, mirroring
// RegisterBackend on the ingestion side.
func RegisterTraceImporter(name string, sniff func(path string) bool, open func(path string, opts TraceImportOptions) (TraceProvider, error)) {
	trace.RegisterImporter(name, sniff, open)
}

// TraceImporters returns the sorted names of all registered trace importers.
func TraceImporters() []string { return trace.Importers() }

// SyntheticTraceMixes lists the synthetic generator names accepted by
// SyntheticMixTraces (and tracegen's -mix flag).
func SyntheticTraceMixes() []string { return trace.SyntheticMixes() }

// SyntheticMixTraces generates a small deterministic cross-rank-consistent
// trace set exercising the extended action vocabulary: "alltoallv" (uneven
// vector collectives) or "waitany" (nonblocking bursts drained out of
// order). bytes scales the payloads.
func SyntheticMixTraces(mix string, ranks, iters int, bytes float64) ([][]Action, error) {
	return trace.SyntheticMix(mix, ranks, iters, bytes)
}

// ValidateTraces checks cross-rank consistency (matched sends/receives,
// balanced collectives).
func ValidateTraces(p TraceProvider) error {
	return trace.Validate(p)
}

// CollectTraceStats summarizes the volumes of a trace; eagerThreshold
// classifies point-to-point messages (64 KiB in the paper).
func CollectTraceStats(p TraceProvider, eagerThreshold float64) (*TraceStats, error) {
	return trace.Collect(p, eagerThreshold)
}

// Replay runs the trace on the platform and returns the predicted time.
func Replay(prov TraceProvider, plat *Platform, cfg ReplayConfig) (*ReplayResult, error) {
	return core.Replay(prov, plat, cfg)
}

// NewLU builds an LU workload instance; iterations 0 selects the class
// default (250 for A/B/C).
func NewLU(class NPBClass, procs, iterations int) (*LU, error) {
	return npb.NewLU(class, procs, iterations)
}

// NewCG builds a CG workload instance.
func NewCG(class NPBClass, procs, iterations int) (*CG, error) {
	return npb.NewCG(class, procs, iterations)
}

// NewEP builds an EP workload instance.
func NewEP(class NPBClass, procs int) (*EP, error) {
	return npb.NewEP(class, procs)
}

// NewMG builds an MG workload instance.
func NewMG(class NPBClass, procs, iterations int) (*MG, error) {
	return npb.NewMG(class, procs, iterations)
}

// NewBT builds a BT workload instance; the process count must be a perfect
// square.
func NewBT(class NPBClass, procs, iterations int) (*BT, error) {
	return npb.NewBT(class, procs, iterations)
}

// NewSP builds an SP workload instance; the process count must be a perfect
// square.
func NewSP(class NPBClass, procs, iterations int) (*SP, error) {
	return npb.NewSP(class, procs, iterations)
}

// NewFT builds an FT workload instance; the process count must not exceed
// the class's smallest transpose dimension.
func NewFT(class NPBClass, procs, iterations int) (*FT, error) {
	return npb.NewFT(class, procs, iterations)
}

// PerfectTrace exposes a workload's exact action streams (what a
// distortion-free acquisition would record).
func PerfectTrace(w Workload) TraceProvider {
	return npb.AsProvider(w)
}

// AcquiredTrace exposes the trace an instrumented run of w would produce:
// compute volumes carry the counter inflation of the chosen
// instrumentation, exactly as in the paper's acquisition study.
func AcquiredTrace(w Workload, cfg AcquisitionConfig) (TraceProvider, error) {
	if cfg.Mode == instrument.None {
		return nil, fmt.Errorf("tireplay: acquisition requires an instrumented build")
	}
	return instrument.Acquired{W: w, Cfg: cfg}, nil
}

// Bordereau returns the emulated model of the paper's aging Opteron
// cluster.
func Bordereau() *GroundCluster { return ground.Bordereau() }

// Graphene returns the emulated model of the paper's Xeon cluster.
func Graphene() *GroundCluster { return ground.Graphene() }

// CalibrateClassic runs the first implementation's A-4 calibration and
// returns the measured instruction rate.
func CalibrateClassic(c *GroundCluster, iterations int) (float64, error) {
	return calibrate.ClassicA4(c, iterations)
}

// CalibrateCacheAware runs the cache-aware calibration of Section 3.4 for
// the given classes.
func CalibrateCacheAware(c *GroundCluster, classes []NPBClass, iterations int) (*CacheAwareCalibration, error) {
	return calibrate.NewCacheAware(c, classes, iterations)
}

// Materialize drains a provider into per-rank action slices (useful before
// WriteTraces). Large instances are better streamed; see TraceProvider.
func Materialize(p TraceProvider) ([][]Action, error) {
	out := make([][]Action, p.NumRanks())
	for rank := 0; rank < p.NumRanks(); rank++ {
		st, err := p.Rank(rank)
		if err != nil {
			return nil, err
		}
		for {
			a, ok, err := st.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			out[rank] = append(out[rank], a)
		}
	}
	return out, nil
}
