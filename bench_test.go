// Benchmarks regenerating every table and figure of the paper, plus
// efficiency benchmarks of the replay engine itself (the second axis of the
// paper's title). Each evaluation bench runs a reduced-size version of the
// corresponding experiment; `cmd/experiments` prints the full rows.
//
// Run with:
//
//	go test -bench=. -benchmem
package tireplay_test

import (
	"testing"

	"tireplay"
	"tireplay/internal/experiments"
	"tireplay/internal/ground"
	"tireplay/internal/npb"
)

// benchOpt keeps the evaluation benches fast; shapes are iteration-count
// invariant.
var benchOpt = experiments.Options{Iterations: 3, CalibrationIterations: 2}

var benchProcs = []int{8, 16}

func benchClasses() []npb.Class { return []npb.Class{npb.ClassB} }

// BenchmarkTable1Bordereau regenerates Table 1 rows (acquisition overhead,
// bordereau).
func BenchmarkTable1Bordereau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableOverhead(ground.Bordereau(), benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Graphene regenerates Table 2 rows (acquisition overhead,
// graphene).
func BenchmarkTable2Graphene(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableOverhead(ground.Graphene(), benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Discrepancy regenerates Figure 1 (fine-vs-coarse counter
// discrepancy, bordereau).
func BenchmarkFigure1Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureDiscrepancy(ground.Bordereau(), experiments.FineVsCoarse, benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Discrepancy regenerates Figure 2 (fine-vs-coarse,
// graphene, incl. 128 procs).
func BenchmarkFigure2Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureDiscrepancy(ground.Graphene(), experiments.FineVsCoarse, benchClasses(), []int{8, 128}, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3OldPipeline regenerates Figure 3 (accuracy of the first
// implementation, bordereau).
func BenchmarkFigure3OldPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureAccuracy(ground.Bordereau(), experiments.OldPipeline, benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Discrepancy regenerates Figure 4 (minimal-vs-coarse,
// bordereau).
func BenchmarkFigure4Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureDiscrepancy(ground.Bordereau(), experiments.MinimalVsCoarse, benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Discrepancy regenerates Figure 5 (minimal-vs-coarse,
// graphene).
func BenchmarkFigure5Discrepancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureDiscrepancy(ground.Graphene(), experiments.MinimalVsCoarse, benchClasses(), []int{8, 128}, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6NewPipeline regenerates Figure 6 (accuracy of the new
// implementation, bordereau).
func BenchmarkFigure6NewPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureAccuracy(ground.Bordereau(), experiments.NewPipeline, benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7NewPipeline regenerates Figure 7 (accuracy of the new
// implementation, graphene).
func BenchmarkFigure7NewPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigureAccuracy(ground.Graphene(), experiments.NewPipeline, benchClasses(), benchProcs, benchOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// replayBench measures raw replay throughput for one backend.
func replayBench(b *testing.B, backend tireplay.ReplayConfig) {
	b.ReportAllocs()
	var actions int64
	for i := 0; i < b.N; i++ {
		lu, err := tireplay.NewLU(tireplay.ClassA, 16, 5)
		if err != nil {
			b.Fatal(err)
		}
		plat, _, err := tireplay.Cluster(tireplay.ClusterSpec{
			Name: "bench", Hosts: 16, Speed: 2.5e9,
			LinkBandwidth: 1.25e8, LinkLatency: 2e-5,
			BackboneBandwidth: 1.25e9, BackboneLatency: 1e-6,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := tireplay.Replay(tireplay.PerfectTrace(lu), plat, backend)
		if err != nil {
			b.Fatal(err)
		}
		actions = res.Actions
	}
	b.ReportMetric(float64(actions)*float64(b.N)/b.Elapsed().Seconds(), "actions/s")
}

// BenchmarkReplayEngineSMPI measures the accurate backend's throughput on
// LU A-16 (the efficiency axis of the paper's title).
func BenchmarkReplayEngineSMPI(b *testing.B) {
	replayBench(b, tireplay.ReplayConfig{Backend: tireplay.SMPI})
}

// BenchmarkReplayEngineMSG measures the legacy backend's throughput.
func BenchmarkReplayEngineMSG(b *testing.B) {
	replayBench(b, tireplay.ReplayConfig{
		Backend: tireplay.MSG,
		MSG:     tireplay.MSGPrototypeConfig(),
	})
}

// BenchmarkTraceGeneration measures the LU op-stream generator.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lu, err := tireplay.NewLU(tireplay.ClassB, 8, 5)
		if err != nil {
			b.Fatal(err)
		}
		prov := tireplay.PerfectTrace(lu)
		for rank := 0; rank < 8; rank++ {
			st, err := prov.Rank(rank)
			if err != nil {
				b.Fatal(err)
			}
			for {
				_, ok, err := st.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
		}
	}
}

// BenchmarkGroundEmulation measures the ground-truth cluster emulation
// (B-8, uninstrumented) — the cost of one "real execution".
func BenchmarkGroundEmulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lu, err := tireplay.NewLU(tireplay.ClassB, 8, 3)
		if err != nil {
			b.Fatal(err)
		}
		cluster := tireplay.Bordereau()
		if _, err := cluster.Run(lu, cluster.InstrConfig(tireplay.Uninstrumented, tireplay.CompileO0, tireplay.ClassB)); err != nil {
			b.Fatal(err)
		}
	}
}
